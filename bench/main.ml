(* Benchmark entry point: regenerates every data figure of the paper
   (Figure 4 schedule counting; Figures 5, 7, 9 collection-throughput
   sweeps), prints the headline paper-vs-measured ratios, and runs a
   Bechamel micro-benchmark table of per-operation STM overheads (the
   "metadata management overhead" of Section 3.3) on real hardware.

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- --quick      # smaller sweep (CI-sized)
     dune exec bench/main.exe -- --paper      # paper-scale parameters
     dune exec bench/main.exe -- fig5 micro   # selected sections only
     dune exec bench/main.exe -- --json r.json  # machine-readable results
   Sections: fig4 fig5 fig7 fig9 summary bank ablations micro.
   --json FILE writes every figure's points (throughput, speedup, and
   the per-site abort breakdown from telemetry) plus the headline
   claims as one JSON document.

   The full parameter space (list size, ratios, duration, threads,
   seed, cores) is exposed by bin/tmbench.exe. *)

module F = Polytm_bench_kit.Figures
module Report = Polytm_bench_kit.Report
module Workload = Polytm_bench_kit.Workload

(* ---- micro benchmarks (Bechamel, real time, one domain) --------------- *)

module D = Polytm_runtime.Domain_runtime
module SD = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)

let micro_tests () =
  let open Bechamel in
  let stm = SD.create () in
  let cell = SD.tvar stm 0 in
  let cells = Array.init 64 (fun i -> SD.tvar stm i) in
  let nstm = SD.create ~algo:`Norec () in
  let ncell = SD.tvar nstm 0 in
  let ncells = Array.init 64 (fun i -> SD.tvar nstm i) in
  let raw = Atomic.make 0 in
  let read_many sem n =
    Test.make
      ~name:(Printf.sprintf "tx %s: %d reads" (Polytm.Semantics.to_string sem) n)
      (Staged.stage (fun () ->
           SD.atomically ~sem stm (fun tx ->
               let acc = ref 0 in
               for i = 0 to n - 1 do
                 acc := !acc + SD.read tx cells.(i)
               done;
               !acc)))
  in
  [
    (* Write-set stressors: many buffered writes, read-own-writes
       lookups, and reads that miss a non-empty write set (the case
       the paper's "metadata management overhead" argument is about:
       every transactional read must consult the write set). *)
    Test.make ~name:"tx classic: 64 writes"
      (Staged.stage (fun () ->
           SD.atomically stm (fun tx ->
               for i = 0 to 63 do
                 SD.write tx cells.(i) i
               done)));
    Test.make ~name:"tx classic: 64 reads of own writes"
      (Staged.stage (fun () ->
           SD.atomically stm (fun tx ->
               for i = 0 to 63 do
                 SD.write tx cells.(i) i
               done;
               let acc = ref 0 in
               for i = 0 to 63 do
                 acc := !acc + SD.read tx cells.(i)
               done;
               !acc)));
    Test.make ~name:"tx classic: 1 write + 64 read misses"
      (Staged.stage (fun () ->
           SD.atomically stm (fun tx ->
               SD.write tx cell 1;
               let acc = ref 0 in
               for i = 0 to 63 do
                 acc := !acc + SD.read tx cells.(i)
               done;
               !acc)));
    Test.make ~name:"raw atomic read" (Staged.stage (fun () -> Atomic.get raw));
    Test.make ~name:"raw atomic write" (Staged.stage (fun () -> Atomic.set raw 1));
    Test.make ~name:"tx begin+commit (empty)"
      (Staged.stage (fun () -> SD.atomically stm (fun _ -> ())));
    Test.make ~name:"tx classic: 1 read"
      (Staged.stage (fun () -> SD.atomically stm (fun tx -> SD.read tx cell)));
    Test.make ~name:"tx classic: 1 write"
      (Staged.stage (fun () -> SD.atomically stm (fun tx -> SD.write tx cell 1)));
    read_many Polytm.Semantics.Classic 64;
    read_many Polytm.Semantics.Elastic 64;
    read_many Polytm.Semantics.Snapshot 64;
    Test.make ~name:"tx classic: read-modify-write"
      (Staged.stage (fun () ->
           SD.atomically stm (fun tx -> SD.write tx cell (SD.read tx cell + 1))));
    (* NORec rows (E7/E9 companion): the same probes on the
       sequence-lock backend.  Uncontended single-domain runs isolate
       the metadata cost difference: value logging on reads, no
       per-location lock words at commit. *)
    Test.make ~name:"tx norec: 1 read"
      (Staged.stage (fun () ->
           SD.atomically nstm (fun tx -> SD.read tx ncell)));
    Test.make ~name:"tx norec: 64 reads"
      (Staged.stage (fun () ->
           SD.atomically nstm (fun tx ->
               let acc = ref 0 in
               for i = 0 to 63 do
                 acc := !acc + SD.read tx ncells.(i)
               done;
               !acc)));
    Test.make ~name:"tx norec: 1 write"
      (Staged.stage (fun () ->
           SD.atomically nstm (fun tx -> SD.write tx ncell 1)));
    Test.make ~name:"tx norec: 64 writes"
      (Staged.stage (fun () ->
           SD.atomically nstm (fun tx ->
               for i = 0 to 63 do
                 SD.write tx ncells.(i) i
               done)));
    Test.make ~name:"tx norec: read-modify-write"
      (Staged.stage (fun () ->
           SD.atomically nstm (fun tx ->
               SD.write tx ncell (SD.read tx ncell + 1))));
  ]

(* The CI perf-smoke assertion behind the "zero metadata traffic on
   reads" claim: a NORec read-only transaction must commit without
   acquiring any per-location lock word (no [Lock_acquire] telemetry
   event) and without a single lock-busy abort, with every commit
   taking the free read-only path.  Emitted under "norec_ro" in the
   micro JSON for the workflow's python check. *)
let norec_ro_probe () =
  let stm = SD.create ~algo:`Norec () in
  let agg = Polytm_telemetry.Agg.create () in
  SD.set_sink stm (Some (Polytm_telemetry.Agg.sink agg));
  let cells = Array.init 64 (fun i -> SD.tvar stm i) in
  let iters = 1_000 in
  for _ = 1 to iters do
    ignore
      (SD.atomically stm (fun tx ->
           let acc = ref 0 in
           for i = 0 to 63 do
             acc := !acc + SD.read tx cells.(i)
           done;
           !acc))
  done;
  let st = SD.stats stm in
  let total = (Polytm_telemetry.Agg.snapshot agg).Polytm_telemetry.Agg.total in
  Format.printf
    "norec read-only probe: %d iters, ro_commits=%d lock_acquires=%d@."
    iters st.SD.ro_commits total.Polytm_telemetry.Agg.lock_acquires;
  let open Polytm_telemetry.Json in
  Obj
    [
      ("iters", Int iters);
      ("commits", Int st.SD.commits);
      ("ro_commits", Int st.SD.ro_commits);
      ("aborts", Int st.SD.aborts);
      ("lock_busy", Int st.SD.lock_busy);
      ("lock_acquires", Int total.Polytm_telemetry.Agg.lock_acquires);
    ]

(* Runs the micro table and returns (name, ns/op) rows, sorted by
   name, for both the pretty printer and the machine-readable E6
   output ([micro --json FILE], the perf-trajectory seed). *)
let run_micro () =
  let open Bechamel in
  Format.printf
    "@.== MICRO: per-operation cost on real hardware (%s), 1 domain@.@."
    Polytm_runtime.Domain_runtime.name;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let grouped = Test.make_grouped ~name:"micro" (micro_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | Some [] | None -> acc)
      results []
  in
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b) rows
  in
  Format.printf "%-40s %14s@." "operation" "ns/op";
  Format.printf "%s@." (String.make 56 '-');
  List.iter
    (fun (name, est) -> Format.printf "%-40s %14.1f@." name est)
    rows;
  rows

let micro_json rows =
  let open Polytm_telemetry.Json in
  Arr
    (List.map
       (fun (name, est) ->
         Obj [ ("name", Str name); ("ns_per_op", Float est) ])
       rows)

(* ---- driver ------------------------------------------------------------ *)

let wants args what = args = [] || List.mem what args

(* Pull "--json FILE" out of the argument list before the flag/section
   split (it is the only option taking a value). *)
let rec extract_json acc = function
  | [] -> (None, List.rev acc)
  | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
  | a :: rest -> extract_json (a :: acc) rest

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let json_file, argv = extract_json [] argv in
  let flags, sections = List.partition (fun a -> String.length a > 0 && a.[0] = '-') argv in
  let params =
    if List.mem "--paper" flags then F.paper_params
    else if List.mem "--quick" flags then
      {
        F.default_params with
        F.spec = Workload.spec_of_size 256;
        duration = 60_000;
        threads_list = [ 1; 4; 16; 64 ];
      }
    else F.default_params
  in
  let t0 = Unix.gettimeofday () in
  (* Accumulated machine-readable output: the figure matrix and/or the
     micro rows, depending on which sections ran ([--json FILE]). *)
  let json_parts = ref [] in
  if wants sections "fig4" then Format.printf "%a" Report.pp_fig4 ();
  let need_matrix =
    List.exists (wants sections) [ "fig5"; "fig7"; "fig9"; "summary" ]
  in
  if need_matrix then begin
    Format.printf
      "@.collection benchmark: %d initial elements, %d%% updates, %d%% size, \
       %d virtual ticks per run, %d effective cores@."
      params.F.spec.Workload.initial_size params.F.spec.Workload.update_pct
      params.F.spec.Workload.size_pct params.F.duration params.F.cores;
    let m =
      F.run_all
        ~progress:(fun msg ->
          Format.eprintf "[%6.1fs] %s@." (Unix.gettimeofday () -. t0) msg)
        params
    in
    if wants sections "fig5" then begin
      Format.printf "%a" Report.pp_figure (F.fig5_of m);
      Format.printf "%a" Report.pp_chart (F.fig5_of m);
      Format.printf "%a" Report.pp_abort_breakdown (F.fig5_of m)
    end;
    if wants sections "fig7" then begin
      Format.printf "%a" Report.pp_figure (F.fig7_of m);
      Format.printf "%a" Report.pp_abort_breakdown (F.fig7_of m)
    end;
    if wants sections "fig9" then begin
      Format.printf "%a" Report.pp_figure (F.fig9_of m);
      Format.printf "%a" Report.pp_abort_breakdown (F.fig9_of m)
    end;
    if wants sections "summary" then
      Format.printf "%a" Report.pp_claims (F.claims m);
    json_parts :=
      !json_parts
      @
      match Report.matrix_json m with
      | Polytm_telemetry.Json.Obj fields -> fields
      | j -> [ ("matrix", j) ]
  end;
  if wants sections "bank" then
    Format.printf "%a" Polytm_bench_kit.Bank.pp_results
      (Polytm_bench_kit.Bank.compare_semantics ());
  if wants sections "ablations" then
    List.iter
      (fun t -> Format.printf "%a" Polytm_bench_kit.Ablations.pp_table t)
      (Polytm_bench_kit.Ablations.all ());
  if wants sections "micro" then begin
    let rows = run_micro () in
    json_parts :=
      !json_parts @ [ ("micro", micro_json rows); ("norec_ro", norec_ro_probe ()) ]
  end;
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc
        (Polytm_telemetry.Json.to_string (Polytm_telemetry.Json.Obj !json_parts));
      output_char oc '\n';
      close_out oc;
      Format.printf "@.machine-readable results written to %s@." file
  | None -> ());
  Format.printf "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0)
