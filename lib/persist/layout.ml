(** Directory layout and the generation manifest.

    A data directory holds numbered generations:

    {v
      MANIFEST                   current generation G (text)
      checkpoint-<G>.ptmckp      state as of G's bound vector (G >= 1)
      log-<G>.ptmlog             ops committed after that cut
      log-<G+1>.ptmlog           present only mid-checkpoint
    v}

    A checkpoint run writes [checkpoint-<G+1>] (from a snapshot), logs
    new commits to [log-<G+1>] (rotated at the start of the run), then
    atomically publishes by rewriting MANIFEST to [G+1] (tmp + rename
    + directory fsync) and deleting generation [G]'s files.  A crash
    at any point leaves either generation fully recoverable: recovery
    loads MANIFEST's checkpoint, then replays [log-<G>] {e then}
    [log-<G+1>] (stamp filtering against the checkpoint's bound vector
    makes the overlap harmless — see DESIGN §S21). *)

let manifest_name = "MANIFEST"
let manifest_magic = "PTMMANIFEST1"
let log_name gen = Printf.sprintf "log-%08d.ptmlog" gen
let ckpt_name gen = Printf.sprintf "checkpoint-%08d.ptmckp" gen
let log_path ~dir gen = Filename.concat dir (log_name gen)
let ckpt_path ~dir gen = Filename.concat dir (ckpt_name gen)

let fsync_dir dir =
  match Unix.openfile dir [ O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ ->
      (* Some filesystems refuse O_RDONLY on directories; the rename
         is still atomic, we just lose the durability of the rename
         itself — acceptable on such systems. *)
      ()

(* MANIFEST contents: two lines, magic then "gen <G>". *)
let read_manifest ~dir =
  let path = Filename.concat dir manifest_name in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (* the two reads must be sequenced lets: a tuple literal
             would evaluate them right to left *)
          match
            let magic = input_line ic in
            let gen_line = input_line ic in
            (magic, gen_line)
          with
          | magic, gen_line when String.equal magic manifest_magic -> (
              match String.split_on_char ' ' gen_line with
              | [ "gen"; g ] -> int_of_string_opt g
              | _ -> None)
          | _ -> None
          | exception End_of_file -> None)

let write_manifest ~dir ~gen =
  let path = Filename.concat dir manifest_name in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Printf.fprintf oc "%s\ngen %d\n" manifest_magic gen;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc)
   with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path;
  fsync_dir dir

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()
