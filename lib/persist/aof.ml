(** The append-only op log writer.

    Records are appended by the STM commit hook {e inside} the commit
    critical section, so the append path must never block on disk:
    [append] serialises the record into an in-memory buffer under the
    append mutex and returns a sequence number; the actual
    [write]+[fsync] happens later, under a {e separate} sync mutex, on
    whichever thread needs durability first — the event-loop flush
    path ([`Always]), the once-a-second tick ([`Everysec]), or
    shutdown ([`No]).

    Group commit falls out of the split: while one thread is inside
    [fsync], every other session keeps appending to the buffer; when
    the sync finishes, the next waiter's [wait_durable] re-check
    usually finds its sequence number already covered (the sync it
    waited on swallowed the whole batch), so N pipelined acks cost one
    [fsync], not N. *)

type policy = [ `Always | `Everysec | `No ]

let policy_to_string = function
  | `Always -> "always"
  | `Everysec -> "everysec"
  | `No -> "no"

let policy_of_string = function
  | "always" -> Some `Always
  | "everysec" -> Some `Everysec
  | "no" -> Some `No
  | _ -> None

type t = {
  path : string;
  fd : Unix.file_descr;
  mu : Mutex.t;  (** guards [buf], [seq], [bytes] — the append side *)
  mutable buf : Buffer.t;
  mutable spare : Buffer.t;  (** double buffer: swapped in under [mu],
                                 drained to the fd outside it *)
  mutable seq : int;  (** records appended (buffered or written) *)
  mutable bytes : int;  (** bytes appended since open *)
  sync_mu : Mutex.t;  (** serialises write+fsync and [closed] *)
  mutable synced_seq : int;  (** highest seq covered by an [fsync] *)
  mutable closed : bool;
  mutable syncs : int;  (** fsyncs issued, for INFO / telemetry *)
}

(* Open (creating if absent) for append; an empty file gets the
   magic.  The caller is responsible for having scanned/truncated the
   file first — this writer only ever moves forward. *)
let open_log path =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_APPEND ] 0o644 in
  let size = (Unix.fstat fd).st_size in
  if size = 0 then begin
    let m = Bytes.of_string Frame.log_magic in
    let n = Unix.write fd m 0 (Bytes.length m) in
    assert (n = Bytes.length m)
  end;
  {
    path;
    fd;
    mu = Mutex.create ();
    buf = Buffer.create 4096;
    spare = Buffer.create 4096;
    seq = 0;
    bytes = (if size = 0 then Frame.magic_len else size);
    sync_mu = Mutex.create ();
    synced_seq = 0;
    closed = false;
    syncs = 0;
  }

let append t hdr ~payload =
  Mutex.lock t.mu;
  let before = Buffer.length t.buf in
  Frame.encode t.buf hdr ~payload;
  t.bytes <- t.bytes + (Buffer.length t.buf - before);
  t.seq <- t.seq + 1;
  let seq = t.seq in
  Mutex.unlock t.mu;
  seq

let write_all fd b pos len =
  let pos = ref pos and len = ref len in
  while !len > 0 do
    match Unix.write fd b !pos !len with
    | n ->
        pos := !pos + n;
        len := !len - n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

(* Drain the buffer to the fd and fsync; must hold [sync_mu]. *)
let sync_locked t =
  if not t.closed then begin
    Mutex.lock t.mu;
    let target = t.seq in
    let pending = t.buf in
    t.buf <- t.spare;
    t.spare <- pending;
    Mutex.unlock t.mu;
    (* Appends continue into the other buffer while we do I/O. *)
    if Buffer.length pending > 0 then begin
      let b = Buffer.to_bytes pending in
      Buffer.clear pending;
      write_all t.fd b 0 (Bytes.length b)
    end;
    Unix.fsync t.fd;
    t.syncs <- t.syncs + 1;
    if target > t.synced_seq then t.synced_seq <- target
  end

let sync t =
  Mutex.lock t.sync_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.sync_mu)
    (fun () -> sync_locked t)

(* Block until record [seq] is on disk.  The unlocked fast-path read
   of [synced_seq] can at worst be stale (too small), which only sends
   us to the locked re-check. *)
let wait_durable t seq =
  if t.synced_seq < seq then begin
    Mutex.lock t.sync_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.sync_mu)
      (fun () -> if t.synced_seq < seq then sync_locked t)
  end

let seq t =
  Mutex.lock t.mu;
  let s = t.seq in
  Mutex.unlock t.mu;
  s

let synced_seq t = t.synced_seq
let syncs t = t.syncs

let bytes t =
  Mutex.lock t.mu;
  let b = t.bytes in
  Mutex.unlock t.mu;
  b

(* Final sync then close.  Safe against concurrent [wait_durable]:
   after the final [sync_locked], [synced_seq = seq], so no later
   waiter can reach the fd, and [closed] stops any racing slow path
   already queued on [sync_mu]. *)
let close t =
  Mutex.lock t.sync_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.sync_mu)
    (fun () ->
      if not t.closed then begin
        sync_locked t;
        t.closed <- true;
        Unix.close t.fd
      end)
