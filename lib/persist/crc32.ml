(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]),
    table-driven, one table lookup per byte.  Every record in the op
    log and checkpoint files carries the CRC of its body so recovery
    can distinguish "clean end of log" from "torn tail" from
    "corrupted middle" without trusting lengths alone.

    Hand-rolled because the container ships no checksum library and a
    32-entry-per-byte table is 40 lines; the constants are the
    standard ones (zlib, PNG, ethernet), so any external tool can
    re-verify a log file. *)

let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
         else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

(* Running update: feed [len] bytes of [s] starting at [pos] into an
   accumulator previously returned by [update] (or [0] to start).  The
   pre/post conditioning (xor with 0xFFFFFFFF) happens in [finish] /
   here via the standard one's-complement trick. *)
let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s 0 (String.length s)
