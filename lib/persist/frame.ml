(** The on-disk record format shared by the op log and checkpoint
    files.

    A persist file is an 8-byte magic followed by a sequence of
    records:

    {v
      record  = u32_le body_len | u32_le crc32(body) | body
      body    = u8 rtype | u8 algo | u16_le shard | u64_le stamp | payload
    v}

    [rtype] distinguishes ops ([rt_op], payload = the mutation's wire
    request frame, exactly as the client sent it), structure creations
    ([rt_new], payload = a [NEW] wire frame), a checkpoint's bound
    vector ([rt_bounds]) and its trailer ([rt_trailer]).  [algo] and
    [shard] locate the STM instance the record committed on; [stamp]
    is that instance's commit version, which is what log compaction
    filters against (replay a record iff its stamp exceeds the
    checkpoint's bound for that instance).

    Scanning never raises on malformed input: a file is parsed as the
    longest valid prefix plus a typed {!tear} describing where and why
    parsing stopped — the caller decides whether a tear is a benign
    crash artifact (end of the active log) or grounds to refuse
    service (middle of a checkpoint). *)

let log_magic = "PTMLOG1\n"
let ckpt_magic = "PTMCKP1\n"
let magic_len = 8

let rt_op = 1
let rt_new = 2
let rt_bounds = 3
let rt_trailer = 4

(* Body length sanity bound: header fields plus the server's largest
   admissible wire frame (8 MiB default [max_frame]) with headroom for
   a full MULTI batch.  A length above this is corruption, not data. *)
let max_body = 256 * 1024 * 1024
let body_hdr_len = 1 + 1 + 2 + 8
let min_body = body_hdr_len

type header = { rtype : int; algo : int; shard : int; stamp : int }
type record = { hdr : header; payload : string }

let encode_body hdr ~payload =
  let b = Buffer.create (body_hdr_len + String.length payload) in
  Buffer.add_uint8 b hdr.rtype;
  Buffer.add_uint8 b hdr.algo;
  Buffer.add_uint16_le b hdr.shard;
  Buffer.add_int64_le b (Int64.of_int hdr.stamp);
  Buffer.add_string b payload;
  Buffer.contents b

(* Append one framed record to [buf]. *)
let encode buf hdr ~payload =
  let body = encode_body hdr ~payload in
  Buffer.add_int32_le buf (Int32.of_int (String.length body));
  Buffer.add_int32_le buf (Int32.of_int (Crc32.string body));
  Buffer.add_string buf body

let decode_body body =
  let n = String.length body in
  if n < min_body then None
  else
    Some
      {
        hdr =
          {
            rtype = Char.code body.[0];
            algo = Char.code body.[1];
            shard = String.get_uint16_le body 2;
            stamp = Int64.to_int (String.get_int64_le body 4);
          };
        payload = String.sub body body_hdr_len (n - body_hdr_len);
      }

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)

type tear_reason =
  | Bad_magic  (** file does not start with the expected 8 bytes *)
  | Truncated_header  (** EOF inside a record's len/crc prefix *)
  | Truncated_body  (** EOF inside a record body *)
  | Crc_mismatch  (** body bytes present but checksum wrong *)
  | Bad_length  (** length field outside [min_body, max_body] *)

let tear_reason_to_string = function
  | Bad_magic -> "bad-magic"
  | Truncated_header -> "truncated-header"
  | Truncated_body -> "truncated-body"
  | Crc_mismatch -> "crc-mismatch"
  | Bad_length -> "bad-length"

type tear = { at : int;  (** byte offset of the record that failed *)
              reason : tear_reason }

type scan = {
  records : int;  (** valid records delivered to the callback *)
  valid_bytes : int;
      (** offset one past the last valid record — the truncation
          point that keeps exactly the longest valid prefix *)
  tear : tear option;  (** [None] iff the file ended cleanly *)
}

let pp_tear ppf t =
  Format.fprintf ppf "%s at byte %d" (tear_reason_to_string t.reason) t.at

(* Scan [path], calling [f index record] for each valid record in
   order.  Stops at the first malformed record; never raises on
   malformed {e content} (I/O errors — [ENOENT], permissions — do
   raise [Sys_error], which callers treat as "no such file"). *)
let scan_file ~magic ~path ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let file_len = in_channel_length ic in
      let read_exactly n =
        (* [really_input_string] raises [End_of_file] on a short read;
           we want the short read to be a typed tear instead. *)
        let pos = pos_in ic in
        if file_len - pos < n then None
        else Some (really_input_string ic n)
      in
      let tear_at at reason records valid_bytes =
        { records; valid_bytes; tear = Some { at; reason } }
      in
      match read_exactly magic_len with
      | None -> tear_at 0 Bad_magic 0 0
      | Some m when not (String.equal m magic) -> tear_at 0 Bad_magic 0 0
      | Some _ ->
          let rec loop records valid_bytes =
            let at = pos_in ic in
            if at = file_len then { records; valid_bytes; tear = None }
            else
              match read_exactly 8 with
              | None -> tear_at at Truncated_header records valid_bytes
              | Some prefix -> (
                  let len = Int32.to_int (String.get_int32_le prefix 0) in
                  let crc =
                    Int32.to_int (String.get_int32_le prefix 4)
                    land 0xFFFFFFFF
                  in
                  if len < min_body || len > max_body then
                    tear_at at Bad_length records valid_bytes
                  else
                    match read_exactly len with
                    | None -> tear_at at Truncated_body records valid_bytes
                    | Some body -> (
                        if Crc32.string body <> crc then
                          tear_at at Crc_mismatch records valid_bytes
                        else
                          match decode_body body with
                          | None -> tear_at at Bad_length records valid_bytes
                          | Some r ->
                              f records r;
                              loop (records + 1) (pos_in ic)))
          in
          loop 0 magic_len)

(* ------------------------------------------------------------------ *)
(* Checkpoint bound-vector and trailer payloads                        *)

(* bounds payload = u16_le count, then count * (u8 algo | u16_le shard
   | u64_le bound); trailer payload = u64_le record count (records
   between the magic and the trailer, trailer excluded). *)

let encode_bounds entries =
  let b = Buffer.create (2 + (11 * List.length entries)) in
  Buffer.add_uint16_le b (List.length entries);
  List.iter
    (fun (algo, shard, bound) ->
      Buffer.add_uint8 b algo;
      Buffer.add_uint16_le b shard;
      Buffer.add_int64_le b (Int64.of_int bound))
    entries;
  Buffer.contents b

let decode_bounds s =
  if String.length s < 2 then None
  else
    let count = String.get_uint16_le s 0 in
    if String.length s <> 2 + (11 * count) then None
    else
      let entry i =
        let off = 2 + (11 * i) in
        ( Char.code s.[off],
          String.get_uint16_le s (off + 1),
          Int64.to_int (String.get_int64_le s (off + 3)) )
      in
      Some (List.init count entry)

let encode_count n =
  let b = Buffer.create 8 in
  Buffer.add_int64_le b (Int64.of_int n);
  Buffer.contents b

let decode_count s =
  if String.length s <> 8 then None
  else Some (Int64.to_int (String.get_int64_le s 0))
