(** Commit-driven waiter registry: the wait/notify half of [Stm.retry].

    A transaction that calls [retry] registers a {!waiter} here, keyed
    by the location ids of its read set (TL2), or on a single coarse
    global list (NORec, which has no per-location metadata — every
    committed write wakes every waiter, a documented deviation; see
    DESIGN.md §S18).  Committing writers consult the registry {e after}
    releasing their locks and wake the waiters parked on the locations
    they wrote.

    Lost-wakeup freedom is the caller's protocol, not the registry's:
    the waiter registers {e first}, then re-validates its read set, and
    only then parks — so a commit that lands before registration is
    caught by validation, and one that lands after deposits a permit in
    the waiter's parker (see {!Runtime_intf.RUNTIME}).

    All registry operations are uncharged: registration and
    notification live outside the transactional cost model, so enabling
    blocking changes no virtual-time schedule unless a waiter actually
    parks.  The waiter count is an uncharged counter so commit hot
    paths can skip notification entirely when nobody waits.

    Concurrency discipline: the table is mutated only under the
    runtime's exclusion, and bodies are tick-free by that contract.
    [unpark] is always called {e outside} the exclusion — under the
    simulator a wakeup reschedules the wakee, and under domains it
    takes the parker's own mutex; neither may happen while holding the
    registry lock. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  type waiter = {
    parker : R.parker;
    mutable locs : int array;  (** registered location ids; [[||]] = global *)
    mutable active : bool;
  }

  type t = {
    lock : R.exclusion;
    tbl : (int, waiter list ref) Hashtbl.t;  (** per-location wait lists *)
    mutable global : waiter list;  (** coarse list for NORec waiters *)
    count : R.counter;  (** currently registered waiters, uncharged *)
  }

  let create () =
    {
      lock = R.exclusion ();
      tbl = Hashtbl.create 64;
      global = [];
      count = R.counter ();
    }

  let waiter () = { parker = R.parker (); locs = [||]; active = false }

  let waiting t = R.read_counter t.count

  (* Register [w] on every location in [ids] (duplicates are tolerated:
     a double entry means a double unpark, which permit semantics absorb,
     and [cancel] removes all copies). *)
  let register t w ids =
    R.exclusive t.lock (fun () ->
        w.active <- true;
        w.locs <- ids;
        Array.iter
          (fun id ->
            match Hashtbl.find_opt t.tbl id with
            | Some l -> l := w :: !l
            | None -> Hashtbl.replace t.tbl id (ref [ w ]))
          ids);
    R.add_counter t.count 1

  let register_global t w =
    R.exclusive t.lock (fun () ->
        w.active <- true;
        w.locs <- [||];
        t.global <- w :: t.global);
    R.add_counter t.count 1

  (* Deregister after the wait round (wakeup, timeout, or pre-park
     validation failure).  Idempotent. *)
  let cancel t w =
    let was_active =
      R.exclusive t.lock (fun () ->
          if not w.active then false
          else begin
            w.active <- false;
            (if Array.length w.locs = 0 then
               t.global <- List.filter (fun x -> x != w) t.global
             else
               Array.iter
                 (fun id ->
                   match Hashtbl.find_opt t.tbl id with
                   | Some l ->
                       l := List.filter (fun x -> x != w) !l;
                       if !l = [] then Hashtbl.remove t.tbl id
                   | None -> ())
                 w.locs);
            w.locs <- [||];
            true
          end)
    in
    if was_active then R.add_counter t.count (-1)

  (* Wake everyone parked on location [id].  Waiters are collected under
     the exclusion but unparked outside it (see the module comment). *)
  let notify t id =
    let ws =
      R.exclusive t.lock (fun () ->
          match Hashtbl.find_opt t.tbl id with Some l -> !l | None -> [])
    in
    List.iter (fun w -> R.unpark w.parker) ws

  (* Wake every globally-registered waiter (NORec commits). *)
  let notify_global t =
    let ws = R.exclusive t.lock (fun () -> t.global) in
    List.iter (fun w -> R.unpark w.parker) ws

  (* Wake everybody, per-location and global alike (shutdown drains). *)
  let notify_all t =
    let ws =
      R.exclusive t.lock (fun () ->
          Hashtbl.fold (fun _ l acc -> !l @ acc) t.tbl t.global)
    in
    List.iter (fun w -> R.unpark w.parker) ws
end
