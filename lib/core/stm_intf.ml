(** Public signature of the polymorphic STM produced by {!Stm.Make}. *)

module type S = sig
  type t
  (** An STM instance: a version clock, configuration and statistics
      shared by a set of transactional variables.  Transactions of one
      instance must only touch that instance's variables. *)

  type 'a tvar
  (** A transactional variable holding values of type ['a].  Each
      variable keeps its current value, its version, and one backup
      version for snapshot transactions (paper, Section 5.1: “in our
      case two versions were maintained”). *)

  type tx
  (** An in-flight transaction, passed to every transactional
      operation.  Obtain one with {!atomically}; never store it. *)

  type abort_reason =
    | Lock_busy  (** a needed write lock was held too long *)
    | Read_invalid  (** classic validation failed: a read location changed *)
    | Window_broken  (** elastic cut impossible: a window entry changed *)
    | Snapshot_too_old  (** both stored versions are newer than the snapshot *)
    | Killed  (** a contention manager decided this transaction dies *)
    | Explicit  (** the user called {!abort}, or [orelse] rolled back *)
    | Retry
        (** the user called {!retry}: abort, then {e park} until a
            later commit writes one of the locations this attempt read *)

  exception Too_many_attempts of abort_reason * int
  (** Raised by {!atomically} when the retry budget is spent and the
      serial fallback cannot help: the last abort was [Explicit] (a
      user decision the serialization token cannot override), the
      instance was created with [on_exhaustion:`Raise], or a
      [deadline] passed.  Carries the last abort reason and the number
      of attempts made.  Under the default configuration, conflict
      exhaustion falls back to serial-irrevocable execution instead of
      raising — see {!create}. *)

  exception Invalid_operation of string
  (** Misuse: writing inside a snapshot transaction, using a [tx]
      outside its dynamic extent, or mixing instances. *)

  (** {1 Instance management} *)

  val create :
    ?cm:Contention.t ->
    ?elastic_window:int ->
    ?max_attempts:int ->
    ?on_exhaustion:[ `Serialize | `Raise ] ->
    ?extend_on_stale:bool ->
    ?versions:int ->
    ?gv:[ `Gv1 | `Gv4 ] ->
    ?algo:[ `Tl2 | `Norec ] ->
    ?unsafe_skip_validation:bool ->
    ?unsafe_skip_wake_validation:bool ->
    unit ->
    t
  (** [create ()] makes a fresh STM instance.  [cm] is the contention
      manager (default {!Contention.default}; it is validated with
      {!Contention.validate}, so a degenerate policy is rejected here
      rather than misbehaving at runtime); [elastic_window] the
      number of trailing reads an elastic transaction keeps validating
      across cuts (default 2, as in E-STM); [max_attempts] bounds
      optimistic retries of one {!atomically} (default 10_000).

      [on_exhaustion] decides what happens when a transaction spends
      its whole retry budget ([max_attempts], or the call's [budget])
      on conflict aborts.  [`Serialize] (default) escalates to the
      serial-irrevocable fallback: the transaction takes the global
      serialization token, waits out in-flight commits, and re-runs
      with a guaranteed commit — so [Too_many_attempts] never escapes
      for conflict aborts and every transaction is livelock-free.
      [`Raise] restores the historical behaviour of raising
      {!Too_many_attempts}.  [Explicit] aborts always raise once the
      budget is spent: serializing cannot commit a transaction that
      aborts itself.

      [extend_on_stale] (default [true]) selects the TinySTM-style
      timestamp extension: a classic read past the transaction's
      timestamp revalidates the read set and moves the timestamp
      forward instead of aborting.  Pass [false] for faithful TL2
      behaviour — the library the paper benchmarks as “classic
      transactions” — where such reads abort outright.

      [versions] (default 2, the paper's choice in §5.1: “two versions
      were maintained, this was actually sufficient”) is how many
      values every location retains, including the current one.
      Snapshot transactions fall back through the chain; [1] disables
      multiversioning (snapshots abort on any location overwritten
      since they started), larger values let snapshots survive heavier
      update traffic at the cost of memory per location.  The
      version-depth ablation quantifies the trade-off.

      [gv] selects the global-version-clock scheme (TL2's naming).
      [`Gv1] (default) fetch-and-adds the clock on every write commit.
      [`Gv4] — “pass on failure” — tries one CAS and, when it loses,
      adopts the newer clock value another committer just published as
      its own write version: under commit storms the clock cache line
      is contended once instead of once per commit.  Two transactions
      may then share a write version; that is safe because overlapping
      write sets are already serialised by per-location locks, but the
      adopting transaction must always validate its read set (the
      skip-validation fast path is reserved for commits whose clock
      increment was exclusively theirs).  Read-only transactions never
      touch the clock under either scheme.  The E7 ablation compares
      the two.

      [algo] selects the {e ownership/validation policy} the instance
      runs (DESIGN.md, S17).  [`Tl2] (default) is the word-based TL2
      algorithm described above: per-location lock words, commit-time
      lock acquisition in ascending location order, version-based read
      validation.  [`Norec] is NOrec (Dalessandro, Spear & Scott,
      PPoPP'10): one global sequence lock (the clock doubles as it),
      value-based revalidation of the read set on every clock change,
      and commit-time write-back under the lock.  NOrec transactions
      never touch a per-location lock word, so read-dominated small
      transactions carry no per-location metadata traffic; the price
      is one serialized write commit at a time.  All three semantics,
      the liveness machinery and telemetry work identically under
      either policy, with two provisos: [extend_on_stale] governs TL2
      only (revalidate-on-stale {e is} the NOrec read rule), and [gv]
      is moot under NOrec (the sequence lock fixes the clock
      discipline).  Under NOrec the [Lock_busy] and [Killed] abort
      reasons cannot occur — no per-location lock or owner is ever
      published for a contention manager to spin on or kill.

      [unsafe_skip_validation] (NOrec only) disables the value
      comparison during revalidation, yielding a backend that loses
      updates under contention.  It exists solely as the conformance
      harness's standing self-test — proof the differential battery
      rejects a broken validation — and must never be used
      otherwise.

      [unsafe_skip_wake_validation] (either algorithm) makes a
      {!retry}ing transaction park {e without} re-validating its wait
      set after registering — the classic lost-wakeup bug: a commit
      that lands between the aborting read and the registration is
      never noticed, and the waiter can sleep forever.  It exists
      solely so the [Explore] model check can demonstrate it {e would}
      catch that bug (the broken variant deadlocks, the correct
      protocol never does) and must never be used otherwise. *)

  val tvar : t -> 'a -> 'a tvar
  (** Allocate a transactional variable with an initial value
      (version 0). *)

  val gv_scheme : t -> [ `Gv1 | `Gv4 ]
  (** The configured clock scheme. *)

  val algo : t -> [ `Tl2 | `Norec ]
  (** The configured ownership/validation policy. *)

  val elastic_window_size : t -> int
  (** The configured window length.  Elastic data structures check it
      against the width of their write neighbourhoods: a sorted-list
      remove touches two adjacent pointers, so it needs at least 2 —
      a smaller window silently loses the hand-over-hand protection
      (caught by the library at construction time). *)

  (** {1 Running transactions} *)

  val atomically :
    ?sem:Semantics.t ->
    ?irrevocable:bool ->
    ?label:string ->
    ?budget:int ->
    ?deadline:int ->
    t ->
    (tx -> 'a) ->
    'a
  (** [atomically stm f] runs [f] as a transaction with semantics
      [sem] (default [Classic]) and commits its writes atomically,
      retrying on conflict aborts under the instance's contention
      manager.  Exceptions raised by [f] (other than the internal abort
      signal) propagate after the transaction's effects are discarded.

      [budget] caps optimistic retries for this call alone, overriding
      the instance's [max_attempts] (values below 1 are treated as 1);
      what happens at exhaustion is the instance's [on_exhaustion]
      policy.  [deadline] is an absolute time in the runtime's clock —
      virtual ticks under the simulator, nanoseconds under domains
      (compare with [R.now ()]) — checked between attempts: once
      passed, the call stops retrying and raises {!Too_many_attempts}
      with the last abort reason.  Prefer {!try_atomically} when a
      deadline or budget is in play — it reports these outcomes as
      data instead of an exception.  Both are ignored under flat
      nesting (the outer call's limits govern) and by irrevocable
      transactions (which never retry).

      [label] names the call site for telemetry: every lifecycle event
      the transaction emits carries it, so abort causes and retry
      counts can be attributed per operation (["contains"], ["size"],
      …).  It has no semantic effect, costs nothing when no sink is
      installed, and under flat nesting the outer label prevails along
      with the outer semantics.

      Nested calls on the same instance are flattened into the outer
      transaction, whose semantics prevails
      ({!Semantics.compose}) — this is what makes Alice's elastic
      operations composable into Bob's classic ones.

      [irrevocable:true] requests {e serial-irrevocable} execution: the
      transaction acquires a global token, waits for in-flight commits
      to drain, and then runs with a guarantee that it will never
      abort — other transactions keep executing but cannot commit until
      it finishes.  This is the standard escape hatch for transactions
      with side effects that cannot be compensated (I/O); it is
      mutually exclusive with [sem:Snapshot] (which never aborts
      updaters anyway) and expensive by design — everything else's
      commits stall.  [f] runs exactly once.

      The same machinery backs the {e serial fallback}: with the
      default [on_exhaustion:`Serialize], a transaction that spends
      its whole retry budget on conflicts re-runs under the token with
      a guaranteed commit (counted in [serial_commits]), so no
      workload can livelock a transaction out of existence. *)

  type 'a outcome =
    | Committed of 'a
    | Exhausted of { reason : abort_reason; attempts : int }
        (** the retry budget ran out; [reason] is the last abort's *)
    | Deadline_exceeded of { reason : abort_reason; attempts : int }
        (** the deadline passed before an attempt committed *)

  val try_atomically :
    ?sem:Semantics.t ->
    ?label:string ->
    ?budget:int ->
    ?deadline:int ->
    t ->
    (tx -> 'a) ->
    'a outcome
  (** [try_atomically stm f] is {!atomically} with a structured
      outcome: budget exhaustion and deadline expiry come back as
      {!Exhausted} / {!Deadline_exceeded} values instead of a raised
      {!Too_many_attempts}, leaving the response policy to the caller.
      It never escalates to the serial fallback — returning the
      exhaustion {e is} its exhaustion policy — and never raises
      [Too_many_attempts]; exceptions from [f] still propagate.  Under
      flat nesting it joins the outer transaction and returns
      [Committed] of [f]'s result (the outer call reports the fate of
      the merged transaction). *)

  (** {1 Cross-instance transactions}

      The sharded store's commit engine (DESIGN §S20).  A shard router
      owns one instance per shard; single-shard operations use plain
      {!atomically} on the owner instance, and only operations that
      genuinely span shards pay for the protocols below. *)

  val atomically_multi :
    ?sem:Semantics.t ->
    ?label:string ->
    ?budget:int ->
    t list ->
    (unit -> 'a) ->
    'a
  (** [atomically_multi stms f] runs [f] as one atomic transaction
      spanning every instance in [stms]: nested {!atomically} calls on
      a member instance flatten into that member's sub-transaction,
      and all members commit together via a two-phase commit over
      their clocks — per-member commit intents acquired in canonical
      (creation-order) instance order, every member's read set
      validated against its own clock, then every member's values
      written back before any intent is released.  A reader can never
      observe one member's writes without the others'.

      Conflicts abort and re-run the whole multi under backoff;
      [budget] (default 16) optimistic rounds later it {e escalates}:
      the serialization token of every member is taken in canonical
      order, in-flight commits drain, and the re-run commits
      guaranteed — the same slow path as the single-instance serial
      fallback, so cross-shard batches are livelock-free.

      With zero or one (distinct) instances this is exactly
      {!atomically} — the single-shard path is untouched.

      @raise Invalid_operation for [sem:Snapshot] (use
      {!snapshot_multi}), for {!retry} inside [f] (a parked waiter
      cannot span instances), or when the calling thread already has a
      live transaction on a member instance.
      @raise Too_many_attempts when [f] aborts explicitly on every
      attempt (a user decision escalation cannot override). *)

  val snapshot_multi :
    ?label:string ->
    ?unsafe_no_stabilize:bool ->
    ?bounds:(t * int) list ref ->
    t list ->
    (unit -> 'a) ->
    'a
  (** [snapshot_multi stms f] runs [f] as a read-only snapshot
      spanning every instance in [stms]: nested calls on a member
      flatten into a [Snapshot]-semantics sub-transaction whose bound
      is that member's slot in a {e consistent bound vector} — drawn
      by double collect (read every member's stable clock while no
      serial token is held and no cross-instance commit is in flight
      there, then re-check all of them unchanged), so the reads across
      all members form one consistent cut of the whole store.  Like
      single-instance snapshots it never impedes updaters; unlike
      them it may redraw its bounds (update storms outrunning the
      backup chains) and, after 64 redraws, escalates to the
      serialization tokens.

      [unsafe_no_stabilize] skips the re-check pass, deliberately
      allowing a torn cross-instance read; it exists solely so the
      Explore model check can prove it would catch that bug, and must
      never be used otherwise.

      [bounds], when supplied, receives the committed attempt's
      per-instance clock bounds: a commit on a member instance is
      inside the snapshot iff its stamp is [<=] the member's bound.
      This is the cut vector the checkpointer hands to log compaction
      (every logged record with a larger stamp must be replayed on
      recovery, every smaller one is already in the checkpoint).

      @raise Invalid_operation on a write inside [f], or when the
      calling thread already has a live transaction on a member. *)

  val read : tx -> 'a tvar -> 'a
  (** Transactional read, honouring the transaction's semantics. *)

  val write : tx -> 'a tvar -> 'a -> unit
  (** Buffered transactional write; takes effect at commit.
      @raise Invalid_operation inside a snapshot transaction. *)

  val semantics : tx -> Semantics.t

  val abort : tx -> 'a
  (** Explicitly abort and retry the whole transaction (after the
      contention manager's backoff). *)

  val retry : tx -> 'a
  (** Haskell-style blocking retry (Harris et al., reference [30]):
      abort this attempt and {e park} the thread until a later commit
      writes one of the locations the attempt read — its {e wait set}:
      the flat read set, the elastic window, and the reads of any
      {!orelse} branch that retried — then re-run.  No polling: under
      the simulator the thread is descheduled and woken in virtual
      time; under domains it sleeps on a [Mutex]/[Condition] pair.
      Wakeups are conservative (a wake re-runs and may retry again; a
      NOrec instance wakes on {e every} commit — it has no
      per-location metadata), but never lost: the waiter registers,
      re-validates its wait set, and only then parks, so a racing
      commit either fails the validation or deposits a wakeup permit.

      Liveness bounds compose: [atomically ~deadline] / [~budget] cap
      the wait — a deadline wakes the parked thread and surfaces as
      {!Too_many_attempts} (or [Deadline_exceeded] from
      {!try_atomically}); each wakeup's re-run spends one attempt of
      the budget, and an exhausted waiter is {e never} serialized
      (parking under the global token would block its own waker) —
      exhaustion surfaces as data/exception instead.

      @raise Invalid_operation inside a snapshot transaction (snapshot
      reads are not tracked in a wait set), inside an irrevocable or
      serial-fallback transaction (the token holder blocks every
      committer, including its would-be waker), or when the attempt
      read nothing (an empty wait set would wait forever). *)

  val waiting : t -> int
  (** Number of transactions currently registered as [retry] waiters
      (parked or about to park).  Uncharged read; used by shutdown
      drains and admission control.  With no transaction in flight it
      must be 0 — no waiter outlives its [atomically] call. *)

  val orelse : tx -> (tx -> 'a) -> (tx -> 'a) -> 'a
  (** [orelse tx f g] runs [f]; if [f] aborts explicitly via {!abort}
      or blocks via {!retry}, its effects are rolled back and [g] runs
      instead (composable alternatives in the style of Harris et al.,
      reference [30]).  Conflict aborts ([Read_invalid], …) restart
      the whole transaction, not just [f] — and since the savepoint
      rollback discards the failed branch's reads and buffered writes
      entirely, a rolled-back branch leaks nothing into a later wait
      set.  The exception: a {e retrying} left branch deliberately
      contributes its reads — if [g] then retries too, the transaction
      waits on the {e union} of both branches' read sets, so a write
      enabling either branch wakes it. *)

  (** {1 Lifecycle hooks}

      The integration points {e transactional boosting} (Herlihy &
      Koskinen, PPoPP'08 — reference [39] of the paper) needs: eager
      operations register a compensating inverse to run if the
      transaction aborts, and abstract locks register their release to
      run when it finishes either way. *)

  val on_abort : tx -> (unit -> unit) -> unit
  (** Register a compensation, run (newest first) if this transaction
      aborts — including when {!orelse} rolls back its left branch. *)

  val on_cleanup : tx -> (unit -> unit) -> unit
  (** Register a finaliser, run (newest first) after the transaction
      commits or aborts, after any compensations. *)

  val serial : tx -> int
  (** Unique identifier of this transaction attempt (used by boosted
      structures to implement transaction-scoped abstract locks). *)

  val release : tx -> 'a tvar -> unit
  (** {e Early release} (Herlihy et al., reference [15]): stop
      validating an earlier read of the given variable.  Increases
      concurrency but, as Section 4.1 of the paper warns, breaks
      composition; the test suite demonstrates the hazard.  No effect
      on variables in the write set or never read. *)

  (** {1 Telemetry}

      The STM emits one {!Polytm_telemetry.event} per lifecycle point
      — begin, shared read, buffered write, commit-time lock
      acquisition, commit, abort — into the installed sink.  The hook
      is a single mutable-field test when no sink is installed: no
      allocation, no clock read, no event construction.  Under the
      simulator events are stamped with virtual time and virtual
      thread ids, so a seeded run yields a byte-identical trace;
      under domains install a {!Polytm_telemetry.Ring} and drain it
      after joining. *)

  val set_sink : t -> Polytm_telemetry.sink option -> unit
  (** Install (or remove) the telemetry sink.  Install before the
      measured section; swapping sinks concurrently with running
      transactions is not synchronised. *)

  val sink : t -> Polytm_telemetry.sink option

  val set_commit_hook : t -> (int -> unit) option -> unit
  (** Install (or remove) the durability hook: called once per write
      commit with the commit stamp (the version written back), {e
      inside} the commit critical section — after validation decides
      the commit will succeed, before any lock or sequence-lock
      release.  Because no dependent commit can start until this
      commit releases, invocation order equals serialization order:
      appending a record per invocation yields a log whose replay
      reproduces the store.  Cross-instance (2PC) commits fire the
      hook once per written member, all members' intents still held.
      The callback must be fast, must never raise, and must not run
      transactions on any instance.  Like {!set_sink}, the hook is a
      single mutable-field test when absent — the default path charges
      nothing and sim schedules are untouched. *)

  val commit_hook : t -> (int -> unit) option

  val cause_of_reason : abort_reason -> Polytm_telemetry.cause
  (** Total mapping from the STM's abort reasons onto the telemetry
      taxonomy — exhaustive by construction, so adding an
      [abort_reason] constructor without classifying it is a compile
      error. *)

  (** {1 Statistics} *)

  type stats = {
    starts : int;
    commits : int;
    aborts : int;
    lock_busy : int;
    read_invalid : int;
    window_broken : int;
    snapshot_too_old : int;
    killed : int;
    explicit_aborts : int;
    cuts : int;  (** elastic cuts performed *)
    extensions : int;  (** successful classic timestamp extensions *)
    stale_reads : int;  (** snapshot reads served from the old version *)
    fast_commits : int;  (** write commits that skipped validation *)
    ro_commits : int;  (** read-only commits (no clock access, no locks) *)
    serial_commits : int;
        (** commits made under the serialization token: irrevocable
            transactions and serial-fallback escalations *)
    budget_exhaustions : int;
        (** times a transaction spent its whole optimistic retry
            budget (whether it then serialized or raised) *)
    retry_waits : int;  (** attempts aborted by {!retry} *)
    parks : int;
        (** times a retrying thread actually parked (a pre-park
            validation failure re-runs immediately without parking) *)
    wakes : int;  (** parks ended by a committing writer's notify *)
    wake_timeouts : int;  (** parks ended by the call's deadline *)
    multi_commits : int;
        (** commits this instance took part in as a member of a
            cross-instance transaction ({!atomically_multi} /
            {!snapshot_multi}) *)
    multi_escalations : int;
        (** times a cross-instance transaction on this instance gave
            up optimism and escalated to the serialization tokens *)
  }

  val stats : t -> stats
  val reset_stats : t -> unit
  val pp_stats : Format.formatter -> stats -> unit

  (** {1 History recording (single-scheduler runs only)}

      When enabled, every shared access performed by committed and
      aborted transactions is appended, in execution order, to an
      event log that tests convert into a {!Polytm_history.History.t}
      and feed to the opacity/elastic checkers.  Recording uses plain
      mutable state: enable it only under the deterministic simulator
      or in single-threaded code. *)

  type recorded = {
    rec_tx : int;  (** transaction serial *)
    rec_loc : int;  (** tvar identifier *)
    rec_write : bool;
    rec_sem : Semantics.t;
  }

  val record : t -> bool -> unit
  (** Turn recording on or off (clears the log when turned on). *)

  val recorded_events : t -> recorded list
  (** Events in execution order. *)

  val recorded_aborted : t -> int list
  (** Serials of transactions that aborted (each retry attempt is a
      distinct serial). *)

  val tvar_id : 'a tvar -> int

  val tvar_locked : 'a tvar -> bool
  (** Quiescence probe: whether the variable's lock word is currently
      held by a committing transaction.  With no transaction in
      flight, every variable must answer [false] — the stress
      harnesses assert exactly that after joining all threads.  Racy
      by nature while transactions run. *)
end
