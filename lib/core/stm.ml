(** The polymorphic software transactional memory.

    The algorithm is a word-based, TL2-style STM (Dice, Shalev &
    Shavit, DISC'06 — reference [16] of the paper: the very library the
    paper benchmarks against) extended with the paper's two relaxed
    semantics:

    - {b classic}: lazy versioning with a global version clock;
      read-set validation at commit, with TinySTM-style timestamp
      extension on stale reads;
    - {b elastic} (E-STM, DISC'09): before its first write a
      transaction only keeps a sliding window of its most recent reads;
      a stale read triggers a {e cut} — the window is revalidated and
      the timestamp advanced — instead of an abort;
    - {b snapshot}: every committing writer backs up the previous
      (value, version) pair in the location itself, so a read-only
      snapshot transaction whose start time [ub] predates the current
      version can fall back to the backup and never aborts updaters
      (paper, Section 5.1: two versions suffice).

    All three semantics share the same locations, locks and clock —
    that co-existence is the paper's challenge — and the commit
    protocol guarantees each transaction its own guarantee.

    Locks are per-location and held only during commit, acquired in
    ascending location order (no deadlock); contention policies decide
    spinning, backoff, and (for [Greedy]) cross-transaction kills.

    {b Hot-path engineering} (DESIGN.md, S14).  The paper's Section
    3.3 attributes classic transactions' cost to "metadata management
    overhead"; this implementation keeps that overhead at the level of
    the original TL2 library rather than an idiomatic-but-slow
    placeholder:

    - the read set is a pair of reusable flat arrays
      ({!Polytm_util.Vec}): a read appends without allocating, and
      validation is a cache-friendly array scan (newest entry first,
      matching the cons-list behaviour it replaced);
    - the elastic window is a fixed ring buffer of the window size;
    - the write set is an open-addressed int-keyed table
      ({!Polytm_util.Flat_table}) whose 63-bit location-id signature
      lets a read of an unwritten location skip the read-own-writes
      lookup entirely; commit still locks in ascending location order;
    - the global clock can run TL2's GV4 "pass on failure" scheme
      ([create ~gv:`Gv4]) to halve CAS pressure under commit storms,
      and read-only transactions of every semantics never touch the
      clock at commit (counted by [ro_commits]);
    - the transaction descriptor (arrays, table, undo/cleanup vectors)
      is reused across the retry attempts of one [atomically] call.

    The simulator charges {e virtual} cost per shared access, so none
    of this changes a charge sequence: same seed ⇒ byte-identical
    telemetry traces (enforced by the goldens test suite).

    {b Algorithm polymorphism} (DESIGN.md, S17).  The TL2 machinery
    above — per-location lock words, commit-time lock acquisition,
    version-based read validation — is one {e ownership/validation
    policy}.  [create ~algo:`Norec] selects the second: NOrec
    (Dalessandro, Spear & Scott, PPoPP'10), built on a single global
    sequence lock (the instance's clock doubles as it: even =
    quiescent, odd = a write commit in flight), value-based
    revalidation of the flat read set on every clock change, and
    commit-time write-back under the lock.  Per-location lock words
    are never touched, so read-dominated workloads carry zero
    per-location metadata traffic; the price is one serialized write
    commit at a time.  Both policies share the semantics (classic /
    elastic / snapshot), liveness (budgets, serial fallback,
    contention managers) and telemetry layers; under NOrec the abort
    taxonomy shrinks to the value-validation causes — [Lock_busy] and
    [Killed] cannot occur because no per-location lock or owner is
    ever published.

    Extensions beyond the paper's core proposal, all exposed through
    {!Stm_intf.S}: [orelse] alternatives, early release, lifecycle
    hooks (compensations and finalisers, the basis of transactional
    boosting), serial-irrevocable transactions, and an execution-order
    event recorder that the test suite feeds to the formal opacity and
    elastic-opacity checkers. *)

module Vec = Polytm_util.Vec
module Flat_table = Polytm_util.Flat_table
module T = Polytm_telemetry

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) : Stm_intf.S = struct
  module Wq = Waitq.Make (R)

  type abort_reason =
    | Lock_busy
    | Read_invalid
    | Window_broken
    | Snapshot_too_old
    | Killed
    | Explicit
    | Retry

  exception Too_many_attempts of abort_reason * int
  exception Invalid_operation of string

  (* Internal control-flow signal; [atomically] is the only catcher. *)
  exception Abort_tx of abort_reason

  type owner = { serial : int; killed : bool R.atomic }

  type lock_state = Unlocked of int  (** version *) | Locked of owner

  type 'a versioned = {
    value : 'a;
    version : int;
    older : ('a * int) list;
        (** previous (value, version) pairs, newest first, bounded by
            the instance's [versions - 1] (paper §5.1 keeps exactly
            one backup: [versions = 2]) *)
  }

  type 'a tvar = {
    id : int;
    lock : lock_state R.atomic;
    data : 'a versioned R.atomic;
  }

  (* The flat read set stores type-erased tvars: validation only
     touches [id] and [lock], never ['a]-typed data, so one untyped
     array serves every location type without a per-read box. *)
  let erase (type a) (v : a tvar) : Obj.t tvar = Obj.magic v

  let dummy_tvar : Obj.t tvar =
    {
      id = -1;
      lock = R.atomic (Unlocked 0);
      data = R.atomic { value = Obj.repr (); version = 0; older = [] };
    }

  type 'a wrec = {
    wvar : 'a tvar;
    mutable wvalue : 'a;
    mutable locked_version : int;
  }

  type wentry = WEntry : 'a wrec -> wentry

  (* A write entry paired with a saved value of the same type — the
     [orelse] savepoint for writes the rolled-back branch overwrote. *)
  type wsave = WSave : 'a wrec * 'a -> wsave

  let dummy_wentry =
    WEntry { wvar = dummy_tvar; wvalue = Obj.repr (); locked_version = -1 }

  let nop () = ()

  (* Shared placeholder for an unarmed descriptor's owner; never
     published into a lock word. *)
  let dummy_owner : owner = { serial = -1; killed = R.atomic false }

  type recorded = {
    rec_tx : int;
    rec_loc : int;
    rec_write : bool;
    rec_sem : Semantics.t;
  }

  (* The descriptor's backing stores — read-set arrays, window ring,
     write table, hook vectors — pooled per thread (TLS) and shared by
     every [atomically] call that thread makes on the instance.  Flat
     nesting guarantees at most one transaction per thread per
     instance, so the pool is never contended; [arm_tx] resets the
     stores (keeping their capacity) at each attempt.  The [tx] record
     itself stays per-call, so a handle leaked out of its extent is
     still caught by [check_live]. *)
  type stores = {
    sr_vars : Obj.t tvar Vec.t;
    sr_vers : int Vec.t;
    sr_vals : Obj.t Vec.t;
        (** NOrec only: values parallel to [sr_vars], compared
            physically at validation; stays empty under TL2 *)
    sw_vars : Obj.t tvar array;
    sw_vers : int array;
    s_writes : wentry Flat_table.t;
    s_undo : (unit -> unit) Vec.t;
    s_cleanup : (unit -> unit) Vec.t;
    s_retry_vars : Obj.t tvar Vec.t;
        (** wait-set contributions from retrying [orelse] branches *)
    s_retry_vers : int Vec.t;
  }

  (* A transaction descriptor.  One is allocated per [atomically] call
     and re-armed across its retry attempts: the read-set arrays, the
     write table, the window ring and the hook vectors come from the
     thread-local pool above. *)
  type tx = {
    stm : t;
    mutable serial : int;
    mutable sem : Semantics.t;
    mutable label : string;  (** call-site label for telemetry, "" if none *)
    mutable owner : owner;
    mutable rv : int;  (** validity timestamp *)
    mutable snapshot_ub : int;  (** snapshot upper bound, fixed at start *)
    r_vars : Obj.t tvar Vec.t;  (** flat read set, append order *)
    r_vers : int Vec.t;  (** versions parallel to [r_vars] *)
    r_vals : Obj.t Vec.t;  (** NOrec: values parallel to [r_vars] *)
    w_vars : Obj.t tvar array;  (** elastic window: fixed ring buffer *)
    w_vers : int array;
    mutable w_count : int;
    mutable w_head : int;  (** ring index of the newest entry; -1 if none *)
    writes : wentry Flat_table.t;  (** hashed write set, keyed by tvar id *)
    mutable wrote : bool;  (** an elastic tx stops cutting after a write *)
    undo : (unit -> unit) Vec.t;  (** compensations, oldest first *)
    cleanup : (unit -> unit) Vec.t;  (** finalisers, oldest first *)
    retry_vars : Obj.t tvar Vec.t;
        (** reads accumulated from [orelse] branches that {e retried}:
            a rolled-back branch's reads leave the live read set, but a
            retrying branch's must still be waited on (union rule) *)
    retry_vers : int Vec.t;
    mutable live : bool;
    mutable attempt : int;  (** 1-based attempt number of this arming *)
    mutable holds_token : bool;
        (** running under the serialization token (irrevocable or the
            serial fallback): commits skip the token stall, and the
            contention manager may neither kill this transaction nor
            abort it on its behalf *)
  }

  and t = {
    uid : int;
        (** creation-order identifier; fixes the canonical instance
            order every cross-instance commit acquires intents in, so
            two multis over overlapping instance sets never deadlock *)
    clock : int R.atomic;
        (** TL2: the global version clock.  NOrec: the global sequence
            lock — even values are quiescent timestamps, an odd value
            means a write commit is writing back. *)
    multi_inflight : int R.atomic;
        (** cross-instance commits currently spanning this instance:
            set on every member {e before} its validation, cleared
            after the last member unlocks.  [snapshot_multi] refuses to
            draw a clock bound while nonzero — the privatization fence
            that keeps a reader from observing half of a multi. *)
    algo : [ `Tl2 | `Norec ];  (** the ownership/validation policy *)
    skip_validation : bool;
        (** testing backdoor: a NOrec instance that skips the value
            comparison during revalidation — the deliberately-broken
            backend the conformance self-test must reject *)
    skip_wake_validation : bool;
        (** testing backdoor: park without re-validating the wait set —
            the classic lost-wakeup bug, kept so the Explore model
            check can prove it would catch one *)
    waitq : Wq.t;  (** registry of parked [retry] waiters *)
    gv : [ `Gv1 | `Gv4 ];  (** write-version scheme, see [draw_wv] *)
    serials : int R.atomic;
    tvar_ids : int R.atomic;
    serial_token : R.token;  (** a serial-irrevocable transaction runs *)
    active_commits : int R.atomic;  (** write commits currently in flight *)
    cm : Contention.t;
    elastic_window : int;
    max_attempts : int;
    on_exhaustion : [ `Serialize | `Raise ];
        (** what a conflict-aborted transaction does once its retry
            budget is spent: fall back to the guaranteed serial mode
            (default) or raise [Too_many_attempts] *)
    extend_on_stale : bool;
    versions : int;  (** values retained per location, including current *)
    current : thread_ctx R.tls;  (** per-thread state, one TLS lookup *)
    (* statistics *)
    c_starts : R.counter;
    c_commits : R.counter;
    c_aborts : R.counter;
    c_lock_busy : R.counter;
    c_read_invalid : R.counter;
    c_window_broken : R.counter;
    c_snapshot_too_old : R.counter;
    c_killed : R.counter;
    c_explicit : R.counter;
    c_cuts : R.counter;
    c_extensions : R.counter;
    c_stale_reads : R.counter;
    c_fast_commits : R.counter;
    c_ro_commits : R.counter;
    c_serial_commits : R.counter;
    c_budget_exhaustions : R.counter;
    c_retry_waits : R.counter;
    c_parks : R.counter;
    c_wakes : R.counter;
    c_wake_timeouts : R.counter;
    c_multi_commits : R.counter;
    c_multi_escalations : R.counter;
    (* history recording: single-scheduler runs only *)
    mutable recording : bool;
    mutable log_rev : recorded list;
    mutable aborted_rev : int list;
    (* telemetry: the lifecycle hook is a single field test when no
       sink is installed — no clock read, no allocation *)
    mutable telemetry : T.sink option;
    (* durability: fired once per write commit with the commit stamp,
       inside the commit critical section (locks / sequence lock still
       held), so invocation order equals serialization order.  Same
       discipline as [telemetry]: a single field test when absent, so
       the default server path charges nothing and sim schedules are
       untouched.  The hook must not raise and must not run
       transactions. *)
    mutable commit_hook : (int -> unit) option;
  }

  (* Everything a thread keeps between [atomically] calls, fetched
     with a single TLS lookup: the innermost live transaction (flat
     nesting) and the pooled descriptor stores. *)
  and thread_ctx = {
    mutable cur_tx : tx option;
    stores : stores;
    waiter : Wq.waiter;  (** pooled like the stores: flat nesting means
                             at most one waiter per thread per instance *)
  }

  (* Creation order defines the canonical instance order (a plain
     Stdlib atomic: instance creation is setup-time, never on a
     transactional path, and charging it would shift sim schedules). *)
  let instance_uids = Atomic.make 0

  let create ?(cm = Contention.default) ?(elastic_window = 2)
      ?(max_attempts = 10_000) ?(on_exhaustion = `Serialize)
      ?(extend_on_stale = true) ?(versions = 2) ?(gv = `Gv1)
      ?(algo = `Tl2) ?(unsafe_skip_validation = false)
      ?(unsafe_skip_wake_validation = false) () =
    Contention.validate cm;
    if elastic_window < 1 then
      raise (Invalid_operation "elastic_window must be at least 1");
    if versions < 1 then
      raise (Invalid_operation "versions must be at least 1");
    if unsafe_skip_validation && algo <> `Norec then
      raise
        (Invalid_operation
           "unsafe_skip_validation is the NOrec conformance self-test knob");
    {
      uid = Atomic.fetch_and_add instance_uids 1;
      clock = R.atomic 0;
      multi_inflight = R.atomic 0;
      algo;
      skip_validation = unsafe_skip_validation;
      skip_wake_validation = unsafe_skip_wake_validation;
      waitq = Wq.create ();
      gv;
      serials = R.atomic 0;
      tvar_ids = R.atomic 0;
      serial_token = R.token ();
      active_commits = R.atomic 0;
      cm;
      elastic_window;
      max_attempts;
      on_exhaustion;
      extend_on_stale;
      versions;
      current =
        R.tls (fun () ->
            {
              cur_tx = None;
              stores =
                {
                  sr_vars = Vec.create dummy_tvar;
                  sr_vers = Vec.create 0;
                  sr_vals = Vec.create (Obj.repr ());
                  sw_vars = Array.make elastic_window dummy_tvar;
                  sw_vers = Array.make elastic_window 0;
                  s_writes = Flat_table.create dummy_wentry;
                  s_undo = Vec.create nop;
                  s_cleanup = Vec.create nop;
                  s_retry_vars = Vec.create dummy_tvar;
                  s_retry_vers = Vec.create 0;
                };
              waiter = Wq.waiter ();
            });
      c_starts = R.counter ();
      c_commits = R.counter ();
      c_aborts = R.counter ();
      c_lock_busy = R.counter ();
      c_read_invalid = R.counter ();
      c_window_broken = R.counter ();
      c_snapshot_too_old = R.counter ();
      c_killed = R.counter ();
      c_explicit = R.counter ();
      c_cuts = R.counter ();
      c_extensions = R.counter ();
      c_stale_reads = R.counter ();
      c_fast_commits = R.counter ();
      c_ro_commits = R.counter ();
      c_serial_commits = R.counter ();
      c_budget_exhaustions = R.counter ();
      c_retry_waits = R.counter ();
      c_parks = R.counter ();
      c_wakes = R.counter ();
      c_wake_timeouts = R.counter ();
      c_multi_commits = R.counter ();
      c_multi_escalations = R.counter ();
      recording = false;
      log_rev = [];
      aborted_rev = [];
      telemetry = None;
      commit_hook = None;
    }

  let tvar stm v =
    {
      id = R.fetch_and_add stm.tvar_ids 1;
      lock = R.atomic (Unlocked 0);
      data = R.atomic { value = v; version = 0; older = [] };
    }

  let tvar_id v = v.id

  (* Quiescence probe for the stress harnesses: with no transaction in
     flight, every lock word must read [Unlocked].  Uses the charged
     [R.get] — call it outside measured regions. *)
  let tvar_locked v =
    match R.get v.lock with Locked _ -> true | Unlocked _ -> false

  let elastic_window_size stm = stm.elastic_window
  let gv_scheme stm = stm.gv
  let algo stm = stm.algo

  let semantics tx = tx.sem
  let serial tx = tx.serial

  let check_live tx =
    if not tx.live then
      raise (Invalid_operation "transaction handle used outside its extent")

  let on_abort tx f =
    check_live tx;
    Vec.push tx.undo f

  let on_cleanup tx f =
    check_live tx;
    Vec.push tx.cleanup f

  let record_event tx v ~is_write =
    if tx.stm.recording then
      tx.stm.log_rev <-
        { rec_tx = tx.serial; rec_loc = v.id; rec_write = is_write;
          rec_sem = tx.sem }
        :: tx.stm.log_rev

  let record_aborted tx =
    if tx.stm.recording then tx.stm.aborted_rev <- tx.serial :: tx.stm.aborted_rev

  let abort_with reason = raise (Abort_tx reason)

  (* ------------------------------------------------------------------ *)
  (* Telemetry                                                           *)

  let cause_of_reason : abort_reason -> T.cause = function
    | Lock_busy -> T.Lock_busy
    | Read_invalid -> T.Read_validation
    | Window_broken -> T.Elastic_cut
    | Snapshot_too_old -> T.Snapshot_overwrite
    | Killed -> T.Cm_kill
    | Explicit -> T.Explicit
    (* A [retry] is a user decision like [abort]; what distinguishes it
       — the park and the wakeup — gets its own Park/Wake events, so
       the cause taxonomy (and with it the Agg snapshot layout the
       figure goldens embed) stays unchanged. *)
    | Retry -> T.Explicit

  let set_sink stm s = stm.telemetry <- s
  let sink stm = stm.telemetry
  let set_commit_hook stm h = stm.commit_hook <- h
  let commit_hook stm = stm.commit_hook

  (* Event payloads are built inside the [Some] branch at every call
     site, so with no sink installed the hook costs one load and one
     branch — no allocation, no [R.now ()]. *)
  let send tx (s : T.sink) kind =
    s.T.emit
      {
        T.time = R.now ();
        thread = R.self_id ();
        serial = tx.serial;
        label = tx.label;
        kind;
      }

  let emit_read tx v =
    match tx.stm.telemetry with
    | None -> ()
    | Some s -> send tx s (T.Read { loc = v.id })

  (* Final set sizes, reported on commit and abort events.  The
     elastic window counts as part of the read set: those entries are
     still being validated. *)
  let tx_sets tx =
    (Vec.length tx.r_vars + tx.w_count, Flat_table.length tx.writes)

  (* Abort events report the set sizes at abort time; they are captured
     before the lifecycle hooks run, because a hook may itself run a
     transaction and that transaction reuses the pooled stores. *)
  let abort_sets tx =
    match tx.stm.telemetry with None -> (0, 0) | Some _ -> tx_sets tx

  let emit_abort tx reason (reads, writes) =
    match tx.stm.telemetry with
    | None -> ()
    | Some s -> send tx s (T.Abort { cause = cause_of_reason reason; reads; writes })

  let emit_park tx locs =
    match tx.stm.telemetry with
    | None -> ()
    | Some s -> send tx s (T.Park { locs })

  let emit_wake tx result =
    match tx.stm.telemetry with
    | None -> ()
    | Some s -> send tx s (T.Wake { timed_out = result = `Timeout })

  (* ------------------------------------------------------------------ *)
  (* Consistent reads                                                    *)

  (* Instance-wide streaming abort-rate signal feeding the adaptive
     contention manager: aborts per hundred starts since the last
     counter reset.  Plain counter reads — uncharged, so consulting it
     never perturbs a schedule. *)
  let abort_rate_pct stm =
    let starts = R.read_counter stm.c_starts in
    if starts = 0 then 0 else 100 * R.read_counter stm.c_aborts / starts

  (* Spin briefly on a busy lock; under a killing policy ([Greedy], or
     [Adaptive] past its escalation threshold) an older transaction
     kills the younger owner and keeps waiting (the victim aborts at
     its next conflict check, or finishes write-back and releases).

     Under those same policies the spinner also watches its own flag:
     a victim killed while waiting on a busy lock would otherwise burn
     its whole spin budget before noticing — and when the killer is
     the very transaction whose lock it is spinning on, each side is
     waiting for the other until the budget runs out, with the abort
     then mis-attributed to [Lock_busy] instead of [Killed].  Token
     holders are exempt: the serial fallback guarantees its attempt
     commits, so nothing may abort it. *)
  let wait_or_die tx (o : owner) budget =
    if o.serial = tx.serial then
      raise (Invalid_operation "location accessed during its own commit");
    if
      Contention.may_kill tx.stm.cm
      && (not tx.holds_token)
      && R.get tx.owner.killed
    then abort_with Killed;
    if budget > 0 then R.pause 1
    else
      match tx.stm.cm with
      | Contention.Greedy when tx.serial < o.serial ->
          R.set o.killed true;
          R.pause 1
      | Contention.Adaptive _
        when tx.serial < o.serial
             && Contention.kills_at tx.stm.cm ~attempt:tx.attempt
                  ~abort_rate_pct:(abort_rate_pct tx.stm) ->
          R.set o.killed true;
          R.pause 1
      | Contention.Greedy | Contention.Adaptive _ | Contention.Suicide
      | Contention.Backoff _ | Contention.Polite _ ->
          abort_with Lock_busy

  (* Read a (value, version) pair that was current at its version:
     re-read while a commit is in flight on this location.  The spin
     is a top-level recursion with explicit arguments: reads are the
     hottest operation in the system and a per-call closure (or a
     [ref] for the budget) costs a minor allocation on every one. *)
  let rec read_versioned_spin tx v budget =
    let d = R.get v.data in
    match R.get v.lock with
    | Unlocked ver when ver = d.version -> d
    | Unlocked _ -> read_versioned_spin tx v budget
    | Locked o ->
        wait_or_die tx o budget;
        read_versioned_spin tx v (budget - 1)

  let read_versioned tx v =
    read_versioned_spin tx v (Contention.lock_spins tx.stm.cm)

  (* ------------------------------------------------------------------ *)
  (* Validation                                                          *)

  (* One read entry against the current lock state; a location we
     locked ourselves at commit is checked against the version seen at
     lock acquisition. *)
  let rentry_valid tx (v : Obj.t tvar) rversion =
    let e = Flat_table.find tx.writes v.id in
    let locked_version =
      if e >= 0 then
        match Flat_table.value_at tx.writes e with
        | WEntry w -> w.locked_version
      else -1
    in
    if locked_version >= 0 then locked_version = rversion
    else
      match R.get v.lock with
      | Unlocked ver -> ver = rversion
      | Locked _ -> false

  (* Newest-first scans, matching the cons-list iteration order they
     replaced: the charged lock reads happen in the same sequence, and
     an invalid entry short-circuits at the same point. *)
  let reads_valid tx =
    let ok = ref true in
    let i = ref (Vec.length tx.r_vars - 1) in
    while !ok && !i >= 0 do
      if rentry_valid tx (Vec.get tx.r_vars !i) (Vec.get tx.r_vers !i) then
        decr i
      else ok := false
    done;
    !ok

  let window_valid tx =
    let cap = Array.length tx.w_vars in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < tx.w_count do
      let idx = (tx.w_head - !k + cap) mod cap in
      if rentry_valid tx tx.w_vars.(idx) tx.w_vers.(idx) then incr k
      else ok := false
    done;
    !ok

  let validate tx =
    if not (reads_valid tx) then abort_with Read_invalid;
    if not (window_valid tx) then abort_with Window_broken

  (* TinySTM-style timestamp extension: move [rv] forward to the
     current clock if every read so far is still valid. *)
  let extend tx =
    let new_rv = R.get tx.stm.clock in
    validate tx;
    tx.rv <- new_rv;
    R.add_counter tx.stm.c_extensions 1

  (* ------------------------------------------------------------------ *)
  (* Reads, by semantics                                                 *)

  let push_read tx v version =
    Vec.push tx.r_vars (erase v);
    Vec.push tx.r_vers version

  let push_window tx v version =
    let cap = Array.length tx.w_vars in
    tx.w_head <- (tx.w_head + 1) mod cap;
    tx.w_vars.(tx.w_head) <- erase v;
    tx.w_vers.(tx.w_head) <- version;
    if tx.w_count < cap then tx.w_count <- tx.w_count + 1

  let rec classic_fetch tx v =
    let d = read_versioned tx v in
    if d.version <= tx.rv then d
    else if not tx.stm.extend_on_stale then
      (* Faithful TL2 (the paper's comparator): a read past the
         transaction's timestamp aborts outright. *)
      abort_with Read_invalid
    else begin
      (* TinySTM-style refinement: extend instead of aborting, then
         RE-READ — the location may have changed again between our
         data read and the extension's clock read, and that change
         would be invisible to commit-time validation when the
         fast-commit path triggers. *)
      extend tx;
      classic_fetch tx v
    end

  let classic_read tx v =
    let d = classic_fetch tx v in
    (* Read-set logging is a real cost of word-based STMs (an append
       and its cache pressure on every read); charge it so the
       simulator sees the overhead the paper attributes to classic
       transactions.  The elastic window below is a fixed ring buffer
       and charges half as much — E-STM's bounded log is one of its
       design points.  [charge] (not [pause]): the cost is the model's,
       the real append is the [push_read] itself. *)
    R.charge 2;
    push_read tx v d.version;
    record_event tx v ~is_write:false;
    emit_read tx v;
    d.value

  (* Hoisted fetch loops for the elastic paths (see
     [read_versioned_spin] for why these are top-level). *)
  let rec elastic_closing_fetch tx v =
    let d = read_versioned tx v in
    if d.version <= tx.rv then d
    else begin
      (* Extend, then re-read (see classic_fetch). *)
      extend tx;
      elastic_closing_fetch tx v
    end

  let rec elastic_open_fetch tx v =
    let d = read_versioned tx v in
    if d.version <= tx.rv then d
    else begin
      (* Cut: the window must still be intact, then this read opens
         a new piece with a fresh timestamp. *)
      let new_rv = R.get tx.stm.clock in
      if not (window_valid tx) then abort_with Window_broken;
      tx.rv <- new_rv;
      Vec.clear tx.r_vars;
      Vec.clear tx.r_vers;
      R.add_counter tx.stm.c_cuts 1;
      (* Re-read after the cut (see classic_fetch). *)
      elastic_open_fetch tx v
    end

  let elastic_read tx v =
    if tx.wrote then begin
      (* Closing mode: behave classically, the window joins the
         validation set. *)
      let d = elastic_closing_fetch tx v in
      R.charge 2;
      push_read tx v d.version;
      record_event tx v ~is_write:false;
      emit_read tx v;
      d.value
    end
    else begin
      let d = elastic_open_fetch tx v in
      R.charge 1;
      push_window tx v d.version;
      record_event tx v ~is_write:false;
      emit_read tx v;
      d.value
    end

  let rec snapshot_chain tx ub = function
    | [] -> abort_with Snapshot_too_old
    | (v, ver) :: rest ->
        if ver <= ub then begin
          R.add_counter tx.stm.c_stale_reads 1;
          v
        end
        else snapshot_chain tx ub rest

  let rec snapshot_fetch tx ub v =
    let d = R.get v.data in
    if d.version > ub then
      (* Any in-flight commit on this location carries a version
         above [d.version] > [ub], so it cannot affect the value at
         [ub]: the backup chain is usable without looking at the
         lock — this is why snapshots never impede updaters. *)
      snapshot_chain tx ub d.older
    else
      (* The current version fits the snapshot, but a commit already
         holding the lock may have drawn its write version before we
         drew [ub]; taking [d.value] now could observe half of that
         transaction (one location written back, another not yet).
         Wait out the brief write-back and re-read. *)
      match R.get v.lock with
      | Unlocked ver when ver = d.version -> d.value
      | Unlocked _ -> snapshot_fetch tx ub v
      | Locked _ ->
          R.pause 1;
          snapshot_fetch tx ub v

  let snapshot_read tx v =
    let value = snapshot_fetch tx tx.snapshot_ub v in
    record_event tx v ~is_write:false;
    emit_read tx v;
    value

  (* ------------------------------------------------------------------ *)
  (* NOrec: the value-validation ownership policy                        *)

  (* Wait out an in-flight write-back (odd clock) and return the even
     clock value.  The only charged operations a NOrec transaction
     ever performs on shared metadata are these clock probes — no
     per-location lock word is read or written on any NOrec path. *)
  let norec_stable_clock stm =
    let rec wait () =
      let time = R.get stm.clock in
      if time land 1 = 1 then begin
        R.pause 1;
        wait ()
      end
      else time
    in
    wait ()

  (* Value comparison for NOrec validation, newest entry first like
     the TL2 scans.  Write-back publishes the buffered value itself
     into a fresh versioned record, so a location is unchanged iff its
     current value is physically the recorded one.  Physical equality
     of equal immediates (an ABA re-write of the same int) passes —
     which is exactly NOrec's point: a read set whose {e values} still
     hold is consistent at the new timestamp, whatever versions flowed
     underneath it. *)
  let norec_reads_hold tx =
    let ok = ref true in
    let i = ref (Vec.length tx.r_vars - 1) in
    while !ok && !i >= 0 do
      let v = Vec.get tx.r_vars !i in
      if (R.get v.data).value == Vec.get tx.r_vals !i then decr i
      else ok := false
    done;
    !ok

  (* The elastic window, by contrast, is validated by VERSION, not by
     value.  Value checks are only sound for the {e full} read set: a
     same-value rewrite elsewhere must then show up as a changed value
     somewhere in the prefix.  An elastic cut throws that prefix away,
     so the window's two entries are all the evidence left — and the
     structures' conflict-materialising writes (e.g. the list remove's
     same-value rewrite of the unlinked node, stm_list_set.ml) are
     deliberately value-invisible.  Two adjacent removes would both
     pass a value-checked window and resurrect the second victim.
     E-STM's window soundness argument is stated over versions, and
     every write-back bumps the version, so version equality is
     exactly "no commit has touched this entry since it was read". *)
  let norec_window_holds tx =
    let cap = Array.length tx.w_vars in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < tx.w_count do
      let idx = (tx.w_head - !k + cap) mod cap in
      if (R.get tx.w_vars.(idx).data).version = tx.w_vers.(idx) then incr k
      else ok := false
    done;
    !ok

  (* NOrec's Validate(): wait for a quiescent clock, value-check the
     read set and the elastic window, and confirm no commit slipped in
     during the check; returns the new validity timestamp.  The
     [skip_validation] backdoor returns a fresh timestamp without
     checking anything — the deliberately-broken backend that loses
     updates, kept so the conformance harness can prove it would catch
     a validation bug. *)
  let norec_validate tx =
    if tx.stm.skip_validation then norec_stable_clock tx.stm
    else
      let rec loop () =
        let time = norec_stable_clock tx.stm in
        if not (norec_reads_hold tx) then abort_with Read_invalid;
        if not (norec_window_holds tx) then abort_with Window_broken;
        if R.get tx.stm.clock = time then time else loop ()
      in
      loop ()

  (* An elastic cut only needs the window to still hold. *)
  let norec_revalidate_window tx =
    if tx.stm.skip_validation then norec_stable_clock tx.stm
    else
      let rec loop () =
        let time = norec_stable_clock tx.stm in
        if not (norec_window_holds tx) then abort_with Window_broken;
        if R.get tx.stm.clock = time then time else loop ()
      in
      loop ()

  (* A consistent read: take the value and, while the clock has moved
     past the transaction's timestamp, revalidate the whole read set
     at the newer time and re-take the value.  Revalidate-on-change is
     the algorithm itself under NOrec, not the TinySTM option
     ([extend_on_stale] governs TL2 only), so each advance counts as
     an extension. *)
  let norec_read_consistent tx v =
    let rec loop () =
      let d = R.get v.data in
      if R.get tx.stm.clock = tx.rv then d
      else begin
        tx.rv <- norec_validate tx;
        R.add_counter tx.stm.c_extensions 1;
        loop ()
      end
    in
    loop ()

  (* Same charge profile as the TL2 read paths — the read-set append
     is the classic metadata cost whichever policy later validates it
     — so TL2-vs-NOrec figures compare algorithms, not accounting. *)
  let norec_log_read tx v d =
    R.charge 2;
    push_read tx v d.version;
    Vec.push tx.r_vals (Obj.repr d.value);
    record_event tx v ~is_write:false;
    emit_read tx v;
    d.value

  let norec_classic_read tx v = norec_log_read tx v (norec_read_consistent tx v)

  let norec_elastic_read tx v =
    if tx.wrote then
      (* Closing mode: behave classically, the window joins the
         validation set. *)
      norec_log_read tx v (norec_read_consistent tx v)
    else begin
      let rec loop () =
        let d = R.get v.data in
        if R.get tx.stm.clock = tx.rv then d
        else begin
          (* Cut: the window's versions must still hold at a newer
             timestamp; the read prefix before the window is dropped
             and this read opens a new piece. *)
          tx.rv <- norec_revalidate_window tx;
          Vec.clear tx.r_vars;
          Vec.clear tx.r_vers;
          Vec.clear tx.r_vals;
          R.add_counter tx.stm.c_cuts 1;
          loop ()
        end
      in
      let d = loop () in
      R.charge 1;
      push_window tx v d.version;
      record_event tx v ~is_write:false;
      emit_read tx v;
      d.value
    end

  (* Snapshot reads under NOrec never consult a lock word.  The bound
     [ub] is drawn from a quiescent (even) clock, and a committer
     writes back version [rv + 2] for an [rv] no older than every
     bound drawn while it was in flight — only one committer holds the
     sequence lock at a time, so a current version at or below [ub] is
     a fully-written-back value and can be taken directly; newer
     versions fall back through the backup chain exactly as under
     TL2.  Snapshots never wait and never impede updaters. *)
  let norec_snapshot_read tx v =
    let ub = tx.snapshot_ub in
    let d = R.get v.data in
    let value =
      if d.version > ub then
        let rec from_chain = function
          | [] -> abort_with Snapshot_too_old
          | (v, ver) :: rest ->
              if ver <= ub then begin
                R.add_counter tx.stm.c_stale_reads 1;
                v
              end
              else from_chain rest
        in
        from_chain d.older
      else d.value
    in
    record_event tx v ~is_write:false;
    emit_read tx v;
    value

  let read : type a. tx -> a tvar -> a =
   fun tx v ->
    check_live tx;
    match tx.sem with
    | Semantics.Snapshot ->
        (* A snapshot transaction cannot write ([write] refuses), so
           its write set is empty by construction and the
           read-own-writes probe below can never hit.  Skipping it
           matters: a full-structure snapshot fold is thousands of
           reads with nothing but this dispatch between them. *)
        (match tx.stm.algo with
        | `Tl2 -> snapshot_read tx v
        | `Norec -> norec_snapshot_read tx v)
    | sem -> (
        (* Read-own-writes: the signature inside [Flat_table.find]
           screens out unwritten locations without probing the
           table. *)
        let e = Flat_table.find tx.writes v.id in
        if e >= 0 then
          match Flat_table.value_at tx.writes e with
          (* Same id implies same tvar, hence the same value type. *)
          | WEntry w -> (Obj.magic w.wvalue : a)
        else
          match tx.stm.algo with
          | `Tl2 -> (
              match sem with
              | Semantics.Classic -> classic_read tx v
              | Semantics.Elastic -> elastic_read tx v
              | Semantics.Snapshot -> snapshot_read tx v)
          | `Norec -> (
              match sem with
              | Semantics.Classic -> norec_classic_read tx v
              | Semantics.Elastic -> norec_elastic_read tx v
              | Semantics.Snapshot -> norec_snapshot_read tx v))

  let write tx v x =
    check_live tx;
    if not (Semantics.allows_write tx.sem) then
      raise (Invalid_operation "write inside a snapshot transaction");
    let e = Flat_table.find tx.writes v.id in
    (if e >= 0 then
       match Flat_table.value_at tx.writes e with
       | WEntry w -> w.wvalue <- Obj.magic x
     else
       ignore
         (Flat_table.add tx.writes v.id
            (WEntry { wvar = v; wvalue = x; locked_version = -1 })));
    tx.wrote <- true;
    match tx.stm.telemetry with
    | None -> ()
    | Some s -> send tx s (T.Write { loc = v.id })

  let release tx v =
    check_live tx;
    let id = v.id in
    (* Compact the flat read set in place, preserving append order.
       [r_vals] is parallel to [r_vars] under NOrec and empty under
       TL2 — compact it only when populated. *)
    let has_vals = Vec.length tx.r_vals > 0 in
    let n = Vec.length tx.r_vars in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let rvar = Vec.get tx.r_vars i in
      if rvar.id <> id then begin
        if !j < i then begin
          Vec.set tx.r_vars !j rvar;
          Vec.set tx.r_vers !j (Vec.get tx.r_vers i);
          if has_vals then Vec.set tx.r_vals !j (Vec.get tx.r_vals i)
        end;
        incr j
      end
    done;
    Vec.truncate tx.r_vars !j;
    Vec.truncate tx.r_vers !j;
    if has_vals then Vec.truncate tx.r_vals !j;
    (* Rebuild the window ring without the released location (cold
       path: early release is an expert escape hatch). *)
    if tx.w_count > 0 then begin
      let cap = Array.length tx.w_vars in
      let kept_vars = Array.make cap dummy_tvar in
      let kept_vers = Array.make cap 0 in
      let kept = ref 0 in
      for k = tx.w_count - 1 downto 0 do
        (* oldest to newest *)
        let idx = (tx.w_head - k + cap) mod cap in
        if tx.w_vars.(idx).id <> id then begin
          kept_vars.(!kept) <- tx.w_vars.(idx);
          kept_vers.(!kept) <- tx.w_vers.(idx);
          incr kept
        end
      done;
      Array.blit kept_vars 0 tx.w_vars 0 cap;
      Array.blit kept_vers 0 tx.w_vers 0 cap;
      tx.w_count <- !kept;
      tx.w_head <- !kept - 1
    end

  let abort _tx = abort_with Explicit

  (* Blocking retry: abort and (in the transaction loop, after the
     standard abort accounting) park until a commit writes a wait-set
     location.  Refused where parking could never end or would
     deadlock: snapshot reads are not tracked in a wait set, and a
     token holder blocks every committer — including its waker. *)
  let retry tx =
    check_live tx;
    if tx.sem = Semantics.Snapshot then
      raise
        (Invalid_operation
           "retry inside a snapshot transaction: snapshot reads are not \
            tracked in a wait set");
    if tx.holds_token then
      raise
        (Invalid_operation
           "retry inside an irrevocable or serialized transaction: the \
            token holder would block its own waker");
    abort_with Retry

  let waiting stm = Wq.waiting stm.waitq

  let orelse tx f g =
    check_live tx;
    (* Savepoint: copies of the read set and window, the write-set
       length plus every buffered value (the branch may overwrite
       entries that predate it), and the hook-vector lengths.
       Deliberately NOT saved: [tx.rv] / [tx.snapshot_ub].  A timestamp
       extension or elastic cut performed by the failed branch survives
       into [g] — matching the historical cons-list implementation, and
       conservative: an advanced timestamp can only cause extra aborts
       or extensions, never an inconsistent read. *)
    let s_r_vars = Vec.to_array tx.r_vars in
    let s_r_vers = Vec.to_array tx.r_vers in
    let s_r_vals = Vec.to_array tx.r_vals in
    let s_w_vars = Array.copy tx.w_vars in
    let s_w_vers = Array.copy tx.w_vers in
    let s_w_count = tx.w_count and s_w_head = tx.w_head in
    let s_writes = Flat_table.length tx.writes in
    let s_wvalues =
      Array.init s_writes (fun e ->
          match Flat_table.value_at tx.writes e with
          | WEntry w -> WSave (w, w.wvalue))
    in
    let s_wrote = tx.wrote in
    let s_undo = Vec.length tx.undo in
    let s_cleanup = Vec.length tx.cleanup in
    try f tx
    with Abort_tx ((Explicit | Retry) as branch_exit) ->
      (* A {e retrying} branch falls through to [g] like an explicit
         rollback, but its reads must survive into the final wait set:
         if [g] also retries, the transaction waits on the UNION of
         both branches' read sets, so a write enabling either branch
         wakes it.  Accumulate them (flat reads + window, with their
         versions) before the savepoint rollback discards them.  The
         [Explicit] path adds nothing — savepoint restoration leaks no
         rolled-back entries into a later wait set — and every other
         reason (a conflict abort) propagates past the savepoint,
         restarting the whole transaction rather than falling through. *)
      if branch_exit = Retry then begin
        for i = 0 to Vec.length tx.r_vars - 1 do
          Vec.push tx.retry_vars (Vec.get tx.r_vars i);
          Vec.push tx.retry_vers (Vec.get tx.r_vers i)
        done;
        let cap = Array.length tx.w_vars in
        for k = 0 to tx.w_count - 1 do
          let idx = (tx.w_head - k + cap) mod cap in
          Vec.push tx.retry_vars tx.w_vars.(idx);
          Vec.push tx.retry_vers tx.w_vers.(idx)
        done
      end;
      (* Compensate the branch's eager (boosted) effects, release its
         abstract locks (newest first), then restore the buffered
         state. *)
      for i = Vec.length tx.undo - 1 downto s_undo do
        (Vec.get tx.undo i) ()
      done;
      for i = Vec.length tx.cleanup - 1 downto s_cleanup do
        (Vec.get tx.cleanup i) ()
      done;
      Vec.truncate tx.undo s_undo;
      Vec.truncate tx.cleanup s_cleanup;
      Vec.load tx.r_vars s_r_vars;
      Vec.load tx.r_vers s_r_vers;
      Vec.load tx.r_vals s_r_vals;
      Array.blit s_w_vars 0 tx.w_vars 0 (Array.length s_w_vars);
      Array.blit s_w_vers 0 tx.w_vers 0 (Array.length s_w_vers);
      tx.w_count <- s_w_count;
      tx.w_head <- s_w_head;
      Flat_table.truncate tx.writes s_writes;
      Array.iter (fun (WSave (w, v)) -> w.wvalue <- v) s_wvalues;
      tx.wrote <- s_wrote;
      g tx

  (* ------------------------------------------------------------------ *)
  (* Commit                                                              *)

  let release_lock (WEntry w) =
    if w.locked_version >= 0 then begin
      R.set w.wvar.lock (Unlocked w.locked_version);
      w.locked_version <- -1
    end

  let release_all tx =
    Flat_table.iter_ascending (fun _ e -> release_lock e) tx.writes

  let acquire tx (WEntry w) =
    let budget = ref (Contention.lock_spins tx.stm.cm) in
    let rec loop () =
      match R.get w.wvar.lock with
      | Unlocked ver as l ->
          if R.cas w.wvar.lock l (Locked tx.owner) then begin
            w.locked_version <- ver;
            match tx.stm.telemetry with
            | None -> ()
            | Some s -> send tx s (T.Lock_acquire { loc = w.wvar.id })
          end
          else loop ()
      | Locked o ->
          wait_or_die tx o !budget;
          decr budget;
          loop ()
    in
    loop ()

  (* Keep at most [n] elements of a backup chain. *)
  let rec take_chain n l =
    if n <= 0 then []
    else match l with [] -> [] | x :: rest -> x :: take_chain (n - 1) rest

  let write_back tx wv =
    Flat_table.iter_ascending
      (fun _ (WEntry w) ->
        let d = R.get w.wvar.data in
        R.set w.wvar.data
          {
            value = w.wvalue;
            version = wv;
            older =
              take_chain (tx.stm.versions - 1) ((d.value, d.version) :: d.older);
          };
        record_event tx w.wvar ~is_write:true;
        R.set w.wvar.lock (Unlocked wv);
        w.locked_version <- -1)
      tx.writes

  (* Draw the commit's write version, validate (or prove validation
     unnecessary), and write back.  GV1 is TL2's baseline: every write
     commit fetch-and-adds the shared clock.  GV4 ("pass on failure")
     CASes the clock once; when the CAS loses, another committer
     already advanced the clock, and that newer value is adopted as
     this commit's write version without retrying — two commits may
     then share a wv, which is safe because per-location locks already
     serialise overlapping write sets.  The wv = rv + 1 fast path
     (nothing committed since this transaction started, reads cannot
     have been invalidated) requires the clock increment to be
     exclusively ours: a GV4 adopter always validates, since the
     committer it shares wv with could have invalidated its reads. *)
  (* The durability hook fires after validation succeeds and before
     write-back: the per-location locks are still held, so no
     dependent commit can start until this one's record is handed to
     the logger — hook invocation order is serialization order. *)
  let fire_commit_hook stm wv =
    match stm.commit_hook with None -> () | Some h -> h wv

  let version_and_write_back tx =
    match tx.stm.gv with
    | `Gv1 ->
        let wv = R.fetch_and_add tx.stm.clock 1 + 1 in
        if wv = tx.rv + 1 then R.add_counter tx.stm.c_fast_commits 1
        else validate tx;
        fire_commit_hook tx.stm wv;
        write_back tx wv
    | `Gv4 ->
        let cur = R.get tx.stm.clock in
        let wv, exclusive =
          if R.cas tx.stm.clock cur (cur + 1) then (cur + 1, true)
          else (R.get tx.stm.clock, false)
        in
        if exclusive && wv = tx.rv + 1 then
          R.add_counter tx.stm.c_fast_commits 1
        else validate tx;
        fire_commit_hook tx.stm wv;
        write_back tx wv

  (* NOrec write commit: acquire the sequence lock by CASing the clock
     from the transaction's timestamp to odd; a failed CAS means
     someone committed, so revalidate (read set by value, window by
     version) and retry at the new timestamp.  Write-back happens under the lock — locations are
     stamped with the new even version for the snapshot chain, but no
     per-location lock word is ever acquired, so no [Lock_acquire]
     event fires and no lock spin can happen — and releasing the lock
     publishes the new clock.  A first-try CAS is this policy's fast
     path: the reads were valid at [rv] and nothing has committed
     since, so no commit-time validation is needed at all. *)
  let norec_commit_writes tx =
    let stm = tx.stm in
    let rec acquire_seqlock first =
      if R.cas stm.clock tx.rv (tx.rv + 1) then begin
        if first then R.add_counter stm.c_fast_commits 1
      end
      else begin
        tx.rv <- norec_validate tx;
        acquire_seqlock false
      end
    in
    acquire_seqlock true;
    let wv = tx.rv + 2 in
    fire_commit_hook stm wv;
    Flat_table.iter_ascending
      (fun _ (WEntry w) ->
        let d = R.get w.wvar.data in
        R.set w.wvar.data
          {
            value = w.wvalue;
            version = wv;
            older =
              take_chain (stm.versions - 1) ((d.value, d.version) :: d.older);
          };
        record_event tx w.wvar ~is_write:true)
      tx.writes;
    R.set stm.clock wv

  (* Wake parked [retry]ers whose wait sets this commit may have
     enabled.  Runs after write-back, with every lock released.  The
     guard is an uncharged counter read, so the overwhelmingly common
     no-waiter case costs nothing and perturbs no schedule (the figure
     goldens depend on that).  TL2 notifies per written location;
     NOrec has no per-location metadata, so its waiters sit on one
     coarse list and every write commit wakes them all — conservative
     (each wake re-validates by re-running) but never lost. *)
  let notify_waiters tx =
    if Wq.waiting tx.stm.waitq > 0 then
      match tx.stm.algo with
      | `Tl2 ->
          Flat_table.iter_ascending
            (fun _ (WEntry w) -> Wq.notify tx.stm.waitq w.wvar.id)
            tx.writes
      | `Norec -> Wq.notify_global tx.stm.waitq

  let commit tx =
    if Flat_table.is_empty tx.writes then begin
      (* Read-only transactions of every semantics commit for free —
         no clock fetch-and-add, no locks: every read was validated
         against a single coherent timestamp when it happened. *)
      R.add_counter tx.stm.c_ro_commits 1;
      match tx.stm.telemetry with
      | None -> ()
      | Some s ->
          let reads, _ = tx_sets tx in
          send tx s (T.Commit { reads; writes = 0; lock_hold = 0 })
    end
    else begin
      (* Serial mode: while some serialized transaction (irrevocable
         or fallback) holds the token, ordinary write commits stall
         here — before taking any lock, so there is no hold-and-wait. *)
      if not tx.holds_token then
        while R.token_held tx.stm.serial_token do
          R.pause 4
        done;
      ignore (R.fetch_and_add tx.stm.active_commits 1);
      let t_acquire =
        match tx.stm.telemetry with None -> 0 | Some _ -> R.now ()
      in
      match
        match tx.stm.algo with
        | `Norec -> norec_commit_writes tx
        | `Tl2 ->
            (* Ascending id order keeps locking deadlock-free.  A token
               holder skips the kill check: a straggling [Greedy] killer
               must not be able to abort the guaranteed serial attempt. *)
            Flat_table.iter_ascending (fun _ e -> acquire tx e) tx.writes;
            if (not tx.holds_token) && R.get tx.owner.killed then
              abort_with Killed;
            version_and_write_back tx
      with
      | () ->
          ignore (R.fetch_and_add tx.stm.active_commits (-1));
          (match tx.stm.telemetry with
          | None -> ()
          | Some s ->
              let reads, writes = tx_sets tx in
              send tx s
                (T.Commit { reads; writes; lock_hold = R.now () - t_acquire }));
          notify_waiters tx
      | exception e ->
          release_all tx;
          ignore (R.fetch_and_add tx.stm.active_commits (-1));
          raise e
    end

  (* ------------------------------------------------------------------ *)
  (* The transaction loop                                                *)

  let fresh_tx stm s sem label =
    {
      stm;
      serial = -1;
      sem;
      label;
      owner = dummy_owner;
      rv = 0;
      snapshot_ub = 0;
      r_vars = s.sr_vars;
      r_vers = s.sr_vers;
      r_vals = s.sr_vals;
      w_vars = s.sw_vars;
      w_vers = s.sw_vers;
      w_count = 0;
      w_head = -1;
      writes = s.s_writes;
      wrote = false;
      undo = s.s_undo;
      cleanup = s.s_cleanup;
      retry_vars = s.s_retry_vars;
      retry_vers = s.s_retry_vers;
      live = false;
      attempt = 0;
      holds_token = false;
    }

  (* Arm the descriptor for one attempt: a fresh serial and timestamp
     (the same charged operations, in the same order, as the
     allocate-per-attempt scheme this replaces), with every set
     cleared but its backing store retained. *)
  let arm_tx tx =
    let serial = R.fetch_and_add tx.stm.serials 1 in
    tx.serial <- serial;
    tx.owner <- { serial; killed = R.atomic false };
    (tx.rv <-
       (* NOrec must start from a quiescent clock: an odd timestamp
          could never pass the read-time clock check or the commit
          CAS.  The TL2 arm is the identical single charged clock read
          it has always been. *)
       match tx.stm.algo with
       | `Tl2 -> R.get tx.stm.clock
       | `Norec -> norec_stable_clock tx.stm);
    tx.snapshot_ub <- tx.rv;
    Vec.clear tx.r_vars;
    Vec.clear tx.r_vers;
    Vec.clear tx.r_vals;
    if tx.w_head >= 0 then
      Array.fill tx.w_vars 0 (Array.length tx.w_vars) dummy_tvar;
    tx.w_count <- 0;
    tx.w_head <- -1;
    Flat_table.reset tx.writes;
    tx.wrote <- false;
    Vec.clear tx.undo;
    Vec.clear tx.cleanup;
    Vec.clear tx.retry_vars;
    Vec.clear tx.retry_vers;
    tx.live <- true

  let abort_counter stm = function
    | Lock_busy -> stm.c_lock_busy
    | Read_invalid -> stm.c_read_invalid
    | Window_broken -> stm.c_window_broken
    | Snapshot_too_old -> stm.c_snapshot_too_old
    | Killed -> stm.c_killed
    | Explicit -> stm.c_explicit
    | Retry -> stm.c_retry_waits

  (* Acquire the global serialization token and wait for in-flight
     write commits to drain: afterwards no transaction can commit
     until the token is released, so the holder's reads can (almost)
     never be invalidated.  "Almost": a committer that passed the
     token stall before we took the token may still be drained here
     while holding locks, so one serial-fallback attempt can lose a
     race and retry — see [serial_fallback], which keeps the token
     across that retry so the second attempt truly runs alone. *)
  let enter_serial_mode stm =
    let rec take () =
      if not (R.token_try_acquire stm.serial_token) then begin
        R.pause 8;
        take ()
      end
    in
    take ();
    while R.get stm.active_commits > 0 do
      R.pause 2
    done

  let exit_serial_mode stm = R.token_release stm.serial_token

  let emit_begin tx attempt =
    match tx.stm.telemetry with
    | None -> ()
    | Some s ->
        send tx s (T.Begin { sem = Semantics.to_string tx.sem; attempt })

  let emit_serialize tx attempt =
    match tx.stm.telemetry with
    | None -> ()
    | Some s -> send tx s (T.Serialize { attempt })

  let emit_budget_exhausted tx ~attempts reason =
    match tx.stm.telemetry with
    | None -> ()
    | Some s ->
        send tx s
          (T.Budget_exhausted { attempts; cause = cause_of_reason reason })

  (* Lifecycle hooks, after the attempt's extent: compensations
     (newest first) when aborted, then finalisers (newest first).
     The hook vectors are pooled per thread, and a hook may itself run
     a transaction on this STM — [fresh_tx]/[arm_tx] would then reuse
     and clear the very vectors being iterated.  Snapshot both and
     clear them before invoking anything, so every hook registered by
     this attempt runs exactly once. *)
  let run_hooks tx ~aborted =
    if not (Vec.is_empty tx.undo && Vec.is_empty tx.cleanup) then begin
      let undo = Vec.to_array tx.undo in
      let fins = Vec.to_array tx.cleanup in
      Vec.clear tx.undo;
      Vec.clear tx.cleanup;
      if aborted then
        for i = Array.length undo - 1 downto 0 do
          undo.(i) ()
        done;
      for i = Array.length fins - 1 downto 0 do
        fins.(i) ()
      done
    end

  type 'a outcome =
    | Committed of 'a
    | Exhausted of { reason : abort_reason; attempts : int }
    | Deadline_exceeded of { reason : abort_reason; attempts : int }

  (* The wait set of a [retry]: every location the attempt read — the
     flat read set, the elastic window, and the reads accumulated from
     retrying [orelse] branches — each with the version it was read at,
     plus the NOrec validity timestamp.  Captured from the pooled
     stores BEFORE the lifecycle hooks run: a hook may itself start a
     transaction that re-arms (and clears) those stores. *)
  let capture_wait_set tx =
    let n = Vec.length tx.r_vars in
    let cap = Array.length tx.w_vars in
    let extra = Vec.length tx.retry_vars in
    let total = n + tx.w_count + extra in
    let vars = Array.make total dummy_tvar in
    let vers = Array.make total 0 in
    for i = 0 to n - 1 do
      vars.(i) <- Vec.get tx.r_vars i;
      vers.(i) <- Vec.get tx.r_vers i
    done;
    for k = 0 to tx.w_count - 1 do
      let idx = (tx.w_head - k + cap) mod cap in
      vars.(n + k) <- tx.w_vars.(idx);
      vers.(n + k) <- tx.w_vers.(idx)
    done;
    for i = 0 to extra - 1 do
      vars.(n + tx.w_count + i) <- Vec.get tx.retry_vars i;
      vers.(n + tx.w_count + i) <- Vec.get tx.retry_vers i
    done;
    (vars, vers, tx.rv)

  (* Park until a commit plausibly changed the wait set, the deadline
     passes, or a (harmless) spurious wakeup.  The lost-wakeup-free
     order is: clear stale permits, REGISTER, then re-validate, then
     park.  A commit that finished before registration left a version
     (TL2) or clock (NOrec) change behind, which the validation sees —
     skip the park, re-run now.  A commit after registration finds the
     waiter in the table and deposits a permit, which makes the park
     return even if it wins the race to run first.  TL2 validates each
     wait-set entry against its lock word ([Locked] counts as changed:
     the committer is writing that very location); NOrec can only
     compare the clock against the timestamp the aborted attempt was
     valid at — coarser, but wrong only towards extra re-runs. *)
  let park_for_wakeup stm ctx tx ~deadline ~wvars ~wvers ~wrv =
    let w = ctx.waiter in
    R.park_prepare w.Wq.parker;
    (match stm.algo with
    | `Tl2 ->
        Wq.register stm.waitq w
          (Array.map (fun (v : Obj.t tvar) -> v.id) wvars)
    | `Norec -> Wq.register_global stm.waitq w);
    let unchanged =
      if stm.skip_wake_validation then true
      else
        match stm.algo with
        | `Tl2 ->
            let ok = ref true in
            let i = ref 0 in
            let n = Array.length wvars in
            while !ok && !i < n do
              (match R.get wvars.(!i).lock with
              | Unlocked ver when ver = wvers.(!i) -> incr i
              | Unlocked _ | Locked _ -> ok := false)
            done;
            !ok
        | `Norec -> R.get stm.clock = wrv
    in
    let result =
      if unchanged then begin
        R.add_counter stm.c_parks 1;
        emit_park tx (Array.length wvars);
        let r = R.park w.Wq.parker ~deadline in
        R.add_counter
          (match r with `Woken -> stm.c_wakes | `Timeout -> stm.c_wake_timeouts)
          1;
        emit_wake tx r;
        r
      end
      else `Woken
    in
    Wq.cancel stm.waitq w;
    result

  (* Abort accounting — history record, counters, telemetry — always
     runs before the lifecycle hooks, on every exit path: a hook may
     itself raise (or run a transaction that inspects the stats), and
     an attempt must never vanish from the books because its hook
     blew up.  The abort-event set sizes are still captured first,
     before anything can reuse the pooled stores. *)

  (* One guaranteed attempt under the serialization token, entered when
     a transaction's optimistic retry budget is spent (or the adaptive
     CM decides optimism is hopeless).  With the token held and
     in-flight commits drained, no other transaction can commit, so
     the attempt cannot lose a conflict — except to a committer that
     had already passed the token stall when the token was taken.
     Such stragglers can abort at most the first serial attempt (the
     drain in [enter_serial_mode] waits them out), and the retry
     reacquires the token, so a later attempt runs alone.

     Hooks never run while the token is held: a hook may itself run a
     transaction on this instance, and a write commit made from under
     the token would stall on the holder — ourselves.  Every path
     releases the token before invoking hooks; the conflict-retry path
     re-enters afterwards. *)
  let serial_fallback stm ctx sem label f n0 =
    enter_serial_mode stm;
    let tx = fresh_tx stm ctx.stores sem label in
    let rec go n =
      arm_tx tx;
      tx.attempt <- n;
      tx.holds_token <- true;
      R.add_counter stm.c_starts 1;
      emit_begin tx n;
      emit_serialize tx n;
      ctx.cur_tx <- Some tx;
      let cleanup () =
        tx.live <- false;
        ctx.cur_tx <- None
      in
      match
        let result = f tx in
        commit tx;
        result
      with
      | result ->
          cleanup ();
          exit_serial_mode stm;
          R.add_counter stm.c_commits 1;
          R.add_counter stm.c_serial_commits 1;
          run_hooks tx ~aborted:false;
          result
      | exception Abort_tx reason ->
          let sets = abort_sets tx in
          cleanup ();
          record_aborted tx;
          R.add_counter stm.c_aborts 1;
          R.add_counter (abort_counter stm reason) 1;
          emit_abort tx reason sets;
          exit_serial_mode stm;
          run_hooks tx ~aborted:true;
          (match reason with
          | Explicit ->
              (* A user abort is a decision, not contention: the token
                 cannot make it commit.  The budget was already spent,
                 so surface the exhaustion. *)
              raise (Too_many_attempts (Explicit, n))
          | _ ->
              enter_serial_mode stm;
              go (n + 1))
      | exception e ->
          let sets = abort_sets tx in
          cleanup ();
          record_aborted tx;
          R.add_counter stm.c_aborts 1;
          R.add_counter stm.c_explicit 1;
          emit_abort tx Explicit sets;
          exit_serial_mode stm;
          run_hooks tx ~aborted:true;
          raise e
    in
    go n0

  (* The optimistic retry loop shared by [atomically] (which unwraps
     the outcome, raising on exhaustion) and [try_atomically] (which
     returns it).  [serial_ok] gates the serial fallback: the
     structured API never serializes — it hands the exhaustion back to
     the caller as data instead. *)
  let run_optimistic (type a) stm ctx sem label ~budget ~deadline ~serial_ok
      (f : tx -> a) : a outcome =
    let cap =
      match budget with Some b -> max 1 b | None -> stm.max_attempts
    in
    let past_deadline () =
      match deadline with Some d -> R.now () >= d | None -> false
    in
    (* One descriptor for the whole call, re-armed across attempts. *)
    let tx = fresh_tx stm ctx.stores sem label in
    let rec attempt n =
      arm_tx tx;
      tx.attempt <- n;
      R.add_counter stm.c_starts 1;
      emit_begin tx n;
      ctx.cur_tx <- Some tx;
      let cleanup () =
        tx.live <- false;
        ctx.cur_tx <- None
      in
      match
        let result = f tx in
        commit tx;
        result
      with
      | result ->
          cleanup ();
          R.add_counter stm.c_commits 1;
          run_hooks tx ~aborted:false;
          Committed result
      | exception Abort_tx reason ->
          let sets = abort_sets tx in
          (* The wait set must also outlive the pooled stores (hooks,
             next arming); capture alongside the abort-event sets. *)
          let wait =
            match reason with
            | Retry -> Some (capture_wait_set tx)
            | _ -> None
          in
          cleanup ();
          record_aborted tx;
          R.add_counter stm.c_aborts 1;
          R.add_counter (abort_counter stm reason) 1;
          emit_abort tx reason sets;
          run_hooks tx ~aborted:true;
          decide n reason wait
      | exception e ->
          (* User exception: discard effects, count the attempt as
             aborted, propagate. *)
          let sets = abort_sets tx in
          cleanup ();
          record_aborted tx;
          R.add_counter stm.c_aborts 1;
          R.add_counter stm.c_explicit 1;
          emit_abort tx Explicit sets;
          run_hooks tx ~aborted:true;
          raise e
    (* After an aborted attempt [n]: give up, serialize, park, or back
       off and go round again.  [Explicit] aborts never serialize — the
       token cannot change a user's decision to abort — and a deadline
       outranks the budget: the caller asked to be done by then. *)
    and decide n reason wait =
      match wait with
      | Some (wvars, wvers, wrv) ->
          (* A [retry] waiter.  Never serialized: a parked token holder
             would stall every committer, including its own waker.  An
             exhausted or deadline-bounded waiter surfaces as data. *)
          if Array.length wvars = 0 then
            raise
              (Invalid_operation
                 "retry with an empty read set would wait forever")
          else if past_deadline () then
            Deadline_exceeded { reason; attempts = n }
          else if n >= cap then begin
            R.add_counter stm.c_budget_exhaustions 1;
            emit_budget_exhausted tx ~attempts:n reason;
            Exhausted { reason; attempts = n }
          end
          else begin
            match park_for_wakeup stm ctx tx ~deadline ~wvars ~wvers ~wrv with
            | `Woken -> attempt (n + 1)
            | `Timeout -> Deadline_exceeded { reason; attempts = n }
          end
      | None ->
          if past_deadline () then Deadline_exceeded { reason; attempts = n }
          else if n >= cap then begin
            R.add_counter stm.c_budget_exhaustions 1;
            emit_budget_exhausted tx ~attempts:n reason;
            if serial_ok && reason <> Explicit && stm.on_exhaustion = `Serialize
            then Committed (serial_fallback stm ctx sem label f (n + 1))
            else Exhausted { reason; attempts = n }
          end
          else if
            serial_ok && reason <> Explicit
            && Contention.serializes_at stm.cm ~attempt:n
                 ~abort_rate_pct:(abort_rate_pct stm)
          then begin
            (* The adaptive CM concluded optimism is hopeless before the
               budget ran out. *)
            Committed (serial_fallback stm ctx sem label f (n + 1))
          end
          else begin
            let pause = Contention.retry_pause stm.cm ~attempt:n in
            if pause > 0 then R.pause pause;
            attempt (n + 1)
          end
    in
    attempt 1

  let atomically ?(sem = Semantics.Classic) ?(irrevocable = false)
      ?(label = "") ?budget ?deadline stm f =
    let ctx = R.tls_get stm.current in
    match ctx.cur_tx with
    | Some outer when outer.live && outer.stm == stm ->
        (* Flat nesting: the outer label prevails (Section 4.2). *)
        let (_ : Semantics.t) = Semantics.compose ~outer:outer.sem ~inner:sem in
        f outer
    | Some _ | None when irrevocable ->
        if sem = Semantics.Snapshot then
          raise
            (Invalid_operation "irrevocable snapshot transactions are pointless");
        enter_serial_mode stm;
        let tx = fresh_tx stm ctx.stores sem label in
        arm_tx tx;
        tx.attempt <- 1;
        tx.holds_token <- true;
        R.add_counter stm.c_starts 1;
        emit_begin tx 1;
        ctx.cur_tx <- Some tx;
        let cleanup () =
          tx.live <- false;
          ctx.cur_tx <- None;
          exit_serial_mode stm
        in
        (match
           let result = f tx in
           commit tx;
           result
         with
        | result ->
            cleanup ();
            R.add_counter stm.c_commits 1;
            R.add_counter stm.c_serial_commits 1;
            run_hooks tx ~aborted:false;
            result
        | exception Abort_tx reason ->
            let sets = abort_sets tx in
            cleanup ();
            record_aborted tx;
            R.add_counter stm.c_aborts 1;
            R.add_counter (abort_counter stm reason) 1;
            emit_abort tx reason sets;
            run_hooks tx ~aborted:true;
            raise
              (Invalid_operation
                 "explicit abort inside an irrevocable transaction")
        | exception e ->
            (* A user exception: with the world stopped, conflict
               aborts are impossible, so nothing else reaches here. *)
            let sets = abort_sets tx in
            cleanup ();
            record_aborted tx;
            R.add_counter stm.c_aborts 1;
            R.add_counter stm.c_explicit 1;
            emit_abort tx Explicit sets;
            run_hooks tx ~aborted:true;
            raise e)
    | Some _ | None -> (
        match
          run_optimistic stm ctx sem label ~budget ~deadline ~serial_ok:true f
        with
        | Committed result -> result
        | Exhausted { reason; attempts } ->
            raise (Too_many_attempts (reason, attempts))
        | Deadline_exceeded { reason; attempts } ->
            raise (Too_many_attempts (reason, attempts)))

  let try_atomically ?(sem = Semantics.Classic) ?(label = "") ?budget
      ?deadline stm f =
    let ctx = R.tls_get stm.current in
    match ctx.cur_tx with
    | Some outer when outer.live && outer.stm == stm ->
        (* Flat nesting joins the outer transaction; its fate is the
           outer call's to report. *)
        let (_ : Semantics.t) = Semantics.compose ~outer:outer.sem ~inner:sem in
        Committed (f outer)
    | Some _ | None ->
        run_optimistic stm ctx sem label ~budget ~deadline ~serial_ok:false f

  (* ------------------------------------------------------------------ *)
  (* Cross-instance transactions — the sharded store's commit engine     *)

  (* Canonical member order: sort by creation uid and drop duplicates.
     Every cross-instance operation touches its members in this order
     (intent acquisition, token acquisition), so two overlapping multis
     can never deadlock through each other's instances. *)
  let canonical_instances stms =
    let arr = Array.of_list stms in
    Array.sort (fun (a : t) b -> compare a.uid b.uid) arr;
    let n = Array.length arr in
    let uniq = ref 0 in
    for i = 0 to n - 1 do
      if !uniq = 0 || arr.(i) != arr.(!uniq - 1) then begin
        arr.(!uniq) <- arr.(i);
        incr uniq
      end
    done;
    Array.sub arr 0 !uniq

  (* Value-validate a read-only NOrec member at a pinned even clock,
     never waiting: while a multi holds intents on other members,
     waiting out another instance's write-back could deadlock two
     multis against each other, so an in-flight commit aborts this
     attempt instead (the retry loop, and ultimately the token
     escalation, restore progress). *)
  let multi_norec_validate tx =
    let stm = tx.stm in
    if not stm.skip_validation then begin
      let time = R.get stm.clock in
      if time land 1 = 1 then abort_with Lock_busy;
      if not (norec_reads_hold tx) then abort_with Read_invalid;
      if not (norec_window_holds tx) then abort_with Window_broken;
      if R.get stm.clock <> time then abort_with Read_invalid;
      tx.rv <- time
    end

  (* Seize a NOrec member's sequence lock without blocking.  A CAS from
     the current even clock both locks out every other commit on that
     instance and freezes its read validity; when the clock moved past
     the member's timestamp, the read set is value-checked under the
     held lock (the clock cannot move again), releasing on failure. *)
  let multi_norec_seize tx =
    let stm = tx.stm in
    let rec go () =
      let time = R.get stm.clock in
      if time land 1 = 1 then abort_with Lock_busy
      else if R.cas stm.clock time (time + 1) then begin
        if
          time <> tx.rv
          && (not stm.skip_validation)
          && not (norec_reads_hold tx && norec_window_holds tx)
        then begin
          R.set stm.clock time;
          abort_with Read_invalid
        end;
        tx.rv <- time
      end
      else go ()
    in
    go ()

  (* The TL2 pieces of [write_back]/[version_and_write_back], split so
     a multi can publish EVERY member's values before releasing ANY
     lock.  No fast path: a multi always validated in phase 1b, so the
     wv draw never needs the exclusive-increment proof. *)
  let multi_draw_wv tx =
    match tx.stm.gv with
    | `Gv1 -> R.fetch_and_add tx.stm.clock 1 + 1
    | `Gv4 ->
        let cur = R.get tx.stm.clock in
        if R.cas tx.stm.clock cur (cur + 1) then cur + 1
        else R.get tx.stm.clock

  let multi_write_back tx wv =
    Flat_table.iter_ascending
      (fun _ (WEntry w) ->
        let d = R.get w.wvar.data in
        R.set w.wvar.data
          {
            value = w.wvalue;
            version = wv;
            older =
              take_chain (tx.stm.versions - 1) ((d.value, d.version) :: d.older);
          };
        record_event tx w.wvar ~is_write:true)
      tx.writes

  let multi_unlock tx wv =
    Flat_table.iter_ascending
      (fun _ (WEntry w) ->
        R.set w.wvar.lock (Unlocked wv);
        w.locked_version <- -1)
      tx.writes

  (* Commit a cross-instance transaction: two-phase commit over the
     member instances' clocks.  Phase 1 acquires every member's commit
     intent in canonical order — TL2 write locks in ascending location
     order, the NOrec sequence lock — then validates every member,
     including read-only ones, refusing to block on foreign state
     while holding any intent.  Phase 2 is the commit point: draw each
     member's write version, publish every member's values, and only
     then release any intent, so no reader can observe one member's
     writes without the others'.

     [multi_inflight] is raised on every member before validation and
     dropped after the last release.  Validation treats a foreign
     raised flag as a conflict, and [snapshot_multi] refuses to draw a
     bound while one is raised: without that fence, a third
     transaction could close a serialization cycle through an instance
     this multi only reads — commit on a member after our validation,
     be observed by a reader that then validates against another
     member we have not written back yet (the privatization-safety
     argument, DESIGN §S20). *)
  let multi_commit txs =
    let n = Array.length txs in
    (* Admission, member order: respect a serial-token holder (before
       holding any intent — no hold-and-wait), then join the in-flight
       count [enter_serial_mode] drains, and raise the flag. *)
    Array.iter
      (fun tx ->
        if not tx.holds_token then
          while R.token_held tx.stm.serial_token do
            R.pause 4
          done)
      txs;
    Array.iter
      (fun tx ->
        ignore (R.fetch_and_add tx.stm.active_commits 1);
        ignore (R.fetch_and_add tx.stm.multi_inflight 1))
      txs;
    let seized = Array.make n false in
    let leave () =
      Array.iter
        (fun tx ->
          ignore (R.fetch_and_add tx.stm.multi_inflight (-1));
          ignore (R.fetch_and_add tx.stm.active_commits (-1)))
        txs
    in
    let release_intents () =
      Array.iteri
        (fun i tx ->
          match tx.stm.algo with
          | `Tl2 -> release_all tx
          | `Norec -> if seized.(i) then R.set tx.stm.clock tx.rv)
        txs
    in
    match
      (* Phase 1: intents, canonical instance order. *)
      Array.iteri
        (fun i tx ->
          match tx.stm.algo with
          | `Tl2 ->
              Flat_table.iter_ascending (fun _ e -> acquire tx e) tx.writes;
              if (not tx.holds_token) && R.get tx.owner.killed then
                abort_with Killed
          | `Norec ->
              if not (Flat_table.is_empty tx.writes) then begin
                multi_norec_seize tx;
                seized.(i) <- true
              end)
        txs;
      (* Phase 1b: validate every member (a seized NOrec member was
         already value-checked under its held sequence lock). *)
      Array.iteri
        (fun i tx ->
          if R.get tx.stm.multi_inflight > 1 then abort_with Lock_busy;
          if not seized.(i) then
            match tx.stm.algo with
            | `Tl2 -> validate tx
            | `Norec -> multi_norec_validate tx)
        txs
    with
    | exception e ->
        release_intents ();
        leave ();
        raise e
    | () ->
        let wvs =
          Array.map
            (fun tx ->
              if Flat_table.is_empty tx.writes then -1
              else
                match tx.stm.algo with
                | `Tl2 -> multi_draw_wv tx
                | `Norec -> tx.rv + 2)
            txs
        in
        (* Durability hooks before any member writes back: every
           member still holds its intents, so a dependent commit (or a
           snapshot bound, via the [multi_inflight] fence) cannot
           interleave between the members' log records. *)
        Array.iteri
          (fun i tx -> if wvs.(i) >= 0 then fire_commit_hook tx.stm wvs.(i))
          txs;
        Array.iteri
          (fun i tx -> if wvs.(i) >= 0 then multi_write_back tx wvs.(i))
          txs;
        Array.iteri
          (fun i tx ->
            if wvs.(i) >= 0 then
              match tx.stm.algo with
              | `Tl2 -> multi_unlock tx wvs.(i)
              | `Norec -> R.set tx.stm.clock wvs.(i))
          txs;
        leave ();
        Array.iteri (fun i tx -> if wvs.(i) >= 0 then notify_waiters tx) txs

  (* The optimistic budget before a multi escalates to the token slow
     path.  Deliberately small: a multi's conflict window spans every
     member, so a few rounds of backoff tell us what thousands would. *)
  let multi_optimistic_cap = 16

  let atomically_multi ?(sem = Semantics.Classic) ?(label = "") ?budget stms f
      =
    if Semantics.equal sem Semantics.Snapshot then
      raise
        (Invalid_operation
           "atomically_multi is for updating transactions; use snapshot_multi");
    match stms with
    | [] -> raise (Invalid_operation "atomically_multi: no instances")
    | [ stm ] -> atomically ~sem ~label ?budget stm (fun _tx -> f ())
    | _ ->
        let arr = canonical_instances stms in
        if Array.length arr = 1 then
          atomically ~sem ~label ?budget arr.(0) (fun _tx -> f ())
        else begin
          let k = Array.length arr in
          let ctxs = Array.map (fun stm -> R.tls_get stm.current) arr in
          let live (ctx : thread_ctx) =
            match ctx.cur_tx with Some o when o.live -> true | _ -> false
          in
          if Array.for_all live ctxs then
            (* Every member already carries a live transaction: an
               enclosing cross-instance transaction spans (at least)
               these instances, so this call flattens into it exactly
               as a nested [atomically] flattens into its outer
               transaction — the enclosing commit provides the
               atomicity.  This is what lets a sharded structure's
               aggregate run unchanged inside a cross-shard [MULTI]. *)
            f ()
          else begin
          Array.iter
            (fun (ctx : thread_ctx) ->
              match ctx.cur_tx with
              | Some outer when outer.live ->
                  raise
                    (Invalid_operation
                       "atomically_multi inside a live transaction on a \
                        member instance")
              | Some _ | None -> ())
            ctxs;
          (* One descriptor per member, re-armed across attempts; the
             thunk's nested [atomically] calls flatten into them. *)
          let txs =
            Array.mapi (fun i stm -> fresh_tx stm ctxs.(i).stores sem label) arr
          in
          let cap =
            match budget with Some b -> max 1 b | None -> multi_optimistic_cap
          in
          let arm_all ~token n =
            Array.iteri
              (fun i tx ->
                arm_tx tx;
                tx.attempt <- n;
                tx.holds_token <- token;
                R.add_counter tx.stm.c_starts 1;
                emit_begin tx n;
                if token then emit_serialize tx n;
                ctxs.(i).cur_tx <- Some tx)
              txs
          in
          let cleanup_all () =
            Array.iteri
              (fun i tx ->
                tx.live <- false;
                ctxs.(i).cur_tx <- None)
              txs
          in
          let account_commit () =
            Array.iter
              (fun tx ->
                R.add_counter tx.stm.c_commits 1;
                R.add_counter tx.stm.c_multi_commits 1;
                if tx.holds_token then R.add_counter tx.stm.c_serial_commits 1)
              txs
          in
          let account_abort reason =
            Array.iter
              (fun tx ->
                let sets = abort_sets tx in
                record_aborted tx;
                R.add_counter tx.stm.c_aborts 1;
                R.add_counter (abort_counter tx.stm reason) 1;
                emit_abort tx reason sets)
              txs
          in
          let run_all_hooks ~aborted =
            Array.iter (fun tx -> run_hooks tx ~aborted) txs
          in
          let fail_retry () =
            raise
              (Invalid_operation
                 "retry inside a cross-instance transaction (a parked \
                  waiter cannot span instances)")
          in
          let enter_all () = Array.iter enter_serial_mode arr in
          let exit_all () =
            for i = k - 1 downto 0 do
              exit_serial_mode arr.(i)
            done
          in
          (* The slow path: serialize every member — tokens in
             canonical order, in-flight commits drained — then re-run
             with a commit that cannot lose a conflict (bar the same
             straggler race [serial_fallback] tolerates; the loop
             re-enters and a later attempt truly runs alone). *)
          let rec escalate n0 =
            Array.iter
              (fun (stm : t) ->
                R.add_counter stm.c_multi_escalations 1;
                R.add_counter stm.c_budget_exhaustions 1)
              arr;
            enter_all ();
            let rec go n =
              arm_all ~token:true n;
              match
                let result = f () in
                multi_commit txs;
                result
              with
              | result ->
                  cleanup_all ();
                  exit_all ();
                  account_commit ();
                  run_all_hooks ~aborted:false;
                  result
              | exception Abort_tx reason -> (
                  account_abort reason;
                  cleanup_all ();
                  exit_all ();
                  run_all_hooks ~aborted:true;
                  match reason with
                  | Explicit -> raise (Too_many_attempts (Explicit, n))
                  | Retry -> fail_retry ()
                  | _ ->
                      enter_all ();
                      go (n + 1))
              | exception e ->
                  account_abort Explicit;
                  cleanup_all ();
                  exit_all ();
                  run_all_hooks ~aborted:true;
                  raise e
            in
            go n0
          and attempt n =
            arm_all ~token:false n;
            match
              let result = f () in
              multi_commit txs;
              result
            with
            | result ->
                cleanup_all ();
                account_commit ();
                run_all_hooks ~aborted:false;
                result
            | exception Abort_tx reason -> (
                account_abort reason;
                cleanup_all ();
                run_all_hooks ~aborted:true;
                match reason with
                | Retry -> fail_retry ()
                | Explicit when n >= cap ->
                    raise (Too_many_attempts (Explicit, n))
                | reason ->
                    if n >= cap && reason <> Explicit then escalate (n + 1)
                    else begin
                      let pause =
                        Contention.retry_pause arr.(0).cm ~attempt:n
                      in
                      if pause > 0 then R.pause pause;
                      attempt (n + 1)
                    end)
            | exception e ->
                account_abort Explicit;
                cleanup_all ();
                run_all_hooks ~aborted:true;
                raise e
          in
          attempt 1
          end
        end

  (* A consistent cross-instance read-only snapshot.  The bound vector
     comes from a double collect: pass 1 draws every member's stable
     clock while that member has no serial-token holder and no
     cross-instance commit in flight; pass 2 re-checks that every
     member's clock and both flags are unchanged.  Success means every
     bound was simultaneously current throughout a common interval
     (between the end of pass 1 and the start of pass 2), so the
     vector is a consistent cut of the whole store; per-location
     in-flight write-backs below a bound are absorbed by the ordinary
     single-instance snapshot reads.  [unsafe_no_stabilize] skips
     pass 2 — the deliberately-torn ordering the Explore model check
     must catch — and must never be used otherwise. *)
  let snapshot_collect arr ~unsafe =
    let k = Array.length arr in
    let ubs = Array.make k 0 in
    let stable_clock (stm : t) =
      match stm.algo with
      | `Tl2 -> R.get stm.clock
      | `Norec -> norec_stable_clock stm
    in
    let quiescent (stm : t) =
      (not (R.token_held stm.serial_token)) && R.get stm.multi_inflight = 0
    in
    let rec collect () =
      for i = 0 to k - 1 do
        let stm = arr.(i) in
        while not (quiescent stm) do
          R.pause 2
        done;
        ubs.(i) <- stable_clock stm
      done;
      if not unsafe then begin
        let ok = ref true in
        for i = 0 to k - 1 do
          let stm = arr.(i) in
          if not (quiescent stm && stable_clock stm = ubs.(i)) then ok := false
        done;
        if not !ok then begin
          R.pause 2;
          collect ()
        end
      end
    in
    collect ();
    ubs

  (* Bound-vector redraws before a cross-instance snapshot escalates to
     the token path (each redraw is cheap; only a sustained update
     storm outrunning the backup chains ever gets this far). *)
  let snapshot_multi_cap = 64

  let snapshot_multi ?(label = "") ?(unsafe_no_stabilize = false) ?bounds stms
      f =
    (* [bounds], when supplied, receives the committed attempt's
       per-instance clock bound — the vector the checkpointer hands to
       log compaction: every commit with stamp <= bound for its
       instance is inside the snapshot, every stamp > bound is not
       (the [multi_inflight] fence in [snapshot_collect] makes the cut
       atomic even across 2PC commits). *)
    let put_bounds l = match bounds with None -> () | Some b -> b := l in
    let single stm =
      atomically ~sem:Semantics.Snapshot ~label stm (fun tx ->
          let r = f () in
          put_bounds [ (stm, tx.snapshot_ub) ];
          r)
    in
    match stms with
    | [] -> raise (Invalid_operation "snapshot_multi: no instances")
    | [ stm ] -> single stm
    | _ ->
        let arr = canonical_instances stms in
        if Array.length arr = 1 then single arr.(0)
        else begin
          let k = Array.length arr in
          let ctxs = Array.map (fun stm -> R.tls_get stm.current) arr in
          let live (ctx : thread_ctx) =
            match ctx.cur_tx with Some o when o.live -> true | _ -> false
          in
          if Array.for_all live ctxs then begin
            (* Flatten into an enclosing cross-instance transaction
               spanning every member (see [atomically_multi]); its
               bound vector / commit governs consistency. *)
            put_bounds
              (Array.to_list
                 (Array.map
                    (fun (ctx : thread_ctx) ->
                      match ctx.cur_tx with
                      | Some tx -> (tx.stm, tx.snapshot_ub)
                      | None -> assert false)
                    ctxs));
            f ()
          end
          else begin
          Array.iter
            (fun (ctx : thread_ctx) ->
              match ctx.cur_tx with
              | Some outer when outer.live ->
                  raise
                    (Invalid_operation
                       "snapshot_multi inside a live transaction on a member \
                        instance")
              | Some _ | None -> ())
            ctxs;
          let txs =
            Array.mapi
              (fun i stm ->
                fresh_tx stm ctxs.(i).stores Semantics.Snapshot label)
              arr
          in
          let arm_all ~token n =
            Array.iteri
              (fun i tx ->
                arm_tx tx;
                tx.attempt <- n;
                tx.holds_token <- token;
                R.add_counter tx.stm.c_starts 1;
                emit_begin tx n;
                if token then emit_serialize tx n;
                ctxs.(i).cur_tx <- Some tx)
              txs
          in
          let cleanup_all () =
            Array.iteri
              (fun i tx ->
                tx.live <- false;
                ctxs.(i).cur_tx <- None)
              txs
          in
          let capture_bounds () =
            put_bounds
              (Array.to_list
                 (Array.map (fun tx -> (tx.stm, tx.snapshot_ub)) txs))
          in
          let account_commit () =
            Array.iter
              (fun tx ->
                (* Read-only by construction: the free commit path. *)
                commit tx;
                R.add_counter tx.stm.c_commits 1;
                R.add_counter tx.stm.c_multi_commits 1;
                if tx.holds_token then R.add_counter tx.stm.c_serial_commits 1)
              txs
          in
          let account_abort reason =
            Array.iter
              (fun tx ->
                let sets = abort_sets tx in
                record_aborted tx;
                R.add_counter tx.stm.c_aborts 1;
                R.add_counter (abort_counter tx.stm reason) 1;
                emit_abort tx reason sets)
              txs
          in
          let run_all_hooks ~aborted =
            Array.iter (fun tx -> run_hooks tx ~aborted) txs
          in
          let enter_all () = Array.iter enter_serial_mode arr in
          let exit_all () =
            for i = k - 1 downto 0 do
              exit_serial_mode arr.(i)
            done
          in
          (* Token slow path: with every member serialized nothing can
             commit, so freshly-armed bounds are trivially consistent
             and every read is a current version. *)
          let rec escalate n =
            Array.iter
              (fun (stm : t) -> R.add_counter stm.c_multi_escalations 1)
              arr;
            enter_all ();
            arm_all ~token:true n;
            match f () with
            | result ->
                capture_bounds ();
                cleanup_all ();
                exit_all ();
                account_commit ();
                run_all_hooks ~aborted:false;
                result
            | exception Abort_tx reason -> (
                account_abort reason;
                cleanup_all ();
                exit_all ();
                run_all_hooks ~aborted:true;
                match reason with
                | Snapshot_too_old ->
                    (* A straggler committed past a chain: re-enter. *)
                    escalate (n + 1)
                | reason -> raise (Too_many_attempts (reason, n)))
            | exception e ->
                account_abort Explicit;
                cleanup_all ();
                exit_all ();
                run_all_hooks ~aborted:true;
                raise e
          and attempt n =
            if n > snapshot_multi_cap then escalate n
            else begin
              arm_all ~token:false n;
              let ubs = snapshot_collect arr ~unsafe:unsafe_no_stabilize in
              Array.iteri
                (fun i tx ->
                  tx.rv <- ubs.(i);
                  tx.snapshot_ub <- ubs.(i))
                txs;
              match f () with
              | result ->
                  capture_bounds ();
                  cleanup_all ();
                  account_commit ();
                  run_all_hooks ~aborted:false;
                  result
              | exception Abort_tx reason -> (
                  account_abort reason;
                  cleanup_all ();
                  run_all_hooks ~aborted:true;
                  match reason with
                  | Snapshot_too_old -> attempt (n + 1)
                  | reason -> raise (Too_many_attempts (reason, n)))
              | exception e ->
                  account_abort Explicit;
                  cleanup_all ();
                  run_all_hooks ~aborted:true;
                  raise e
            end
          in
          attempt 1
          end
        end

  (* ------------------------------------------------------------------ *)
  (* Statistics and recording                                            *)

  type stats = {
    starts : int;
    commits : int;
    aborts : int;
    lock_busy : int;
    read_invalid : int;
    window_broken : int;
    snapshot_too_old : int;
    killed : int;
    explicit_aborts : int;
    cuts : int;
    extensions : int;
    stale_reads : int;
    fast_commits : int;
    ro_commits : int;
    serial_commits : int;
    budget_exhaustions : int;
    retry_waits : int;
    parks : int;
    wakes : int;
    wake_timeouts : int;
    multi_commits : int;
    multi_escalations : int;
  }

  let stats stm =
    {
      starts = R.read_counter stm.c_starts;
      commits = R.read_counter stm.c_commits;
      aborts = R.read_counter stm.c_aborts;
      lock_busy = R.read_counter stm.c_lock_busy;
      read_invalid = R.read_counter stm.c_read_invalid;
      window_broken = R.read_counter stm.c_window_broken;
      snapshot_too_old = R.read_counter stm.c_snapshot_too_old;
      killed = R.read_counter stm.c_killed;
      explicit_aborts = R.read_counter stm.c_explicit;
      cuts = R.read_counter stm.c_cuts;
      extensions = R.read_counter stm.c_extensions;
      stale_reads = R.read_counter stm.c_stale_reads;
      fast_commits = R.read_counter stm.c_fast_commits;
      ro_commits = R.read_counter stm.c_ro_commits;
      serial_commits = R.read_counter stm.c_serial_commits;
      budget_exhaustions = R.read_counter stm.c_budget_exhaustions;
      retry_waits = R.read_counter stm.c_retry_waits;
      parks = R.read_counter stm.c_parks;
      wakes = R.read_counter stm.c_wakes;
      wake_timeouts = R.read_counter stm.c_wake_timeouts;
      multi_commits = R.read_counter stm.c_multi_commits;
      multi_escalations = R.read_counter stm.c_multi_escalations;
    }

  let reset_counter c = R.add_counter c (-R.read_counter c)

  let reset_stats stm =
    List.iter reset_counter
      [
        stm.c_starts; stm.c_commits; stm.c_aborts; stm.c_lock_busy;
        stm.c_read_invalid; stm.c_window_broken; stm.c_snapshot_too_old;
        stm.c_killed; stm.c_explicit; stm.c_cuts; stm.c_extensions;
        stm.c_stale_reads; stm.c_fast_commits; stm.c_ro_commits;
        stm.c_serial_commits; stm.c_budget_exhaustions; stm.c_retry_waits;
        stm.c_parks; stm.c_wakes; stm.c_wake_timeouts; stm.c_multi_commits;
        stm.c_multi_escalations;
      ]

  let pp_stats ppf s =
    Format.fprintf ppf
      "@[<v>starts=%d commits=%d aborts=%d@ lock_busy=%d read_invalid=%d \
       window_broken=%d snapshot_too_old=%d killed=%d explicit=%d@ cuts=%d \
       extensions=%d stale_reads=%d fast_commits=%d ro_commits=%d@ \
       serial_commits=%d budget_exhaustions=%d@ retry_waits=%d parks=%d \
       wakes=%d wake_timeouts=%d@ multi_commits=%d multi_escalations=%d@]"
      s.starts s.commits s.aborts s.lock_busy s.read_invalid s.window_broken
      s.snapshot_too_old s.killed s.explicit_aborts s.cuts s.extensions
      s.stale_reads s.fast_commits s.ro_commits s.serial_commits
      s.budget_exhaustions s.retry_waits s.parks s.wakes s.wake_timeouts
      s.multi_commits s.multi_escalations

  let record stm on =
    stm.recording <- on;
    if on then begin
      stm.log_rev <- [];
      stm.aborted_rev <- []
    end

  let recorded_events stm = List.rev stm.log_rev
  let recorded_aborted stm = List.sort_uniq Int.compare stm.aborted_rev
end
