(** The polymorphic software transactional memory.

    The algorithm is a word-based, TL2-style STM (Dice, Shalev &
    Shavit, DISC'06 — reference [16] of the paper: the very library the
    paper benchmarks against) extended with the paper's two relaxed
    semantics:

    - {b classic}: lazy versioning with a global version clock;
      read-set validation at commit, with TinySTM-style timestamp
      extension on stale reads;
    - {b elastic} (E-STM, DISC'09): before its first write a
      transaction only keeps a sliding window of its most recent reads;
      a stale read triggers a {e cut} — the window is revalidated and
      the timestamp advanced — instead of an abort;
    - {b snapshot}: every committing writer backs up the previous
      (value, version) pair in the location itself, so a read-only
      snapshot transaction whose start time [ub] predates the current
      version can fall back to the backup and never aborts updaters
      (paper, Section 5.1: two versions suffice).

    All three semantics share the same locations, locks and clock —
    that co-existence is the paper's challenge — and the commit
    protocol guarantees each transaction its own guarantee.

    Locks are per-location and held only during commit, acquired in
    ascending location order (no deadlock); contention policies decide
    spinning, backoff, and (for [Greedy]) cross-transaction kills.

    Extensions beyond the paper's core proposal, all exposed through
    {!Stm_intf.S}: [orelse] alternatives, early release, lifecycle
    hooks (compensations and finalisers, the basis of transactional
    boosting), serial-irrevocable transactions, and an execution-order
    event recorder that the test suite feeds to the formal opacity and
    elastic-opacity checkers. *)

module IMap = Map.Make (Int)
module T = Polytm_telemetry

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) : Stm_intf.S = struct
  type abort_reason =
    | Lock_busy
    | Read_invalid
    | Window_broken
    | Snapshot_too_old
    | Killed
    | Explicit

  exception Too_many_attempts of abort_reason * int
  exception Invalid_operation of string

  (* Internal control-flow signal; [atomically] is the only catcher. *)
  exception Abort_tx of abort_reason

  type owner = { serial : int; killed : bool R.atomic }

  type lock_state = Unlocked of int  (** version *) | Locked of owner

  type 'a versioned = {
    value : 'a;
    version : int;
    older : ('a * int) list;
        (** previous (value, version) pairs, newest first, bounded by
            the instance's [versions - 1] (paper §5.1 keeps exactly
            one backup: [versions = 2]) *)
  }

  type 'a tvar = {
    id : int;
    lock : lock_state R.atomic;
    data : 'a versioned R.atomic;
  }

  type rentry = REntry : { rvar : 'a tvar; rversion : int } -> rentry

  type wentry =
    | WEntry : {
        wvar : 'a tvar;
        mutable wvalue : 'a;
        mutable locked_version : int;
      }
        -> wentry

  type recorded = {
    rec_tx : int;
    rec_loc : int;
    rec_write : bool;
    rec_sem : Semantics.t;
  }

  type tx = {
    stm : t;
    serial : int;
    sem : Semantics.t;
    label : string;  (** call-site label for telemetry, "" if none *)
    owner : owner;
    mutable rv : int;  (** validity timestamp *)
    snapshot_ub : int;  (** snapshot upper bound, fixed at start *)
    mutable reads : rentry list;
    mutable window : rentry list;  (** elastic window, newest first *)
    mutable writes : wentry IMap.t;
    mutable wrote : bool;  (** an elastic tx stops cutting after a write *)
    mutable undo : (unit -> unit) list;  (** compensations, newest first *)
    mutable cleanup : (unit -> unit) list;  (** finalisers, newest first *)
    mutable live : bool;
  }

  and t = {
    clock : int R.atomic;
    serials : int R.atomic;
    tvar_ids : int R.atomic;
    serial_token : bool R.atomic;  (** an irrevocable transaction runs *)
    active_commits : int R.atomic;  (** write commits currently in flight *)
    cm : Contention.t;
    elastic_window : int;
    max_attempts : int;
    extend_on_stale : bool;
    versions : int;  (** values retained per location, including current *)
    current : tx option R.tls;
    (* statistics *)
    c_starts : R.counter;
    c_commits : R.counter;
    c_aborts : R.counter;
    c_lock_busy : R.counter;
    c_read_invalid : R.counter;
    c_window_broken : R.counter;
    c_snapshot_too_old : R.counter;
    c_killed : R.counter;
    c_explicit : R.counter;
    c_cuts : R.counter;
    c_extensions : R.counter;
    c_stale_reads : R.counter;
    c_fast_commits : R.counter;
    (* history recording: single-scheduler runs only *)
    mutable recording : bool;
    mutable log_rev : recorded list;
    mutable aborted_rev : int list;
    (* telemetry: the lifecycle hook is a single field test when no
       sink is installed — no clock read, no allocation *)
    mutable telemetry : T.sink option;
  }

  let create ?(cm = Contention.default) ?(elastic_window = 2)
      ?(max_attempts = 10_000) ?(extend_on_stale = true) ?(versions = 2) () =
    if elastic_window < 1 then
      raise (Invalid_operation "elastic_window must be at least 1");
    if versions < 1 then
      raise (Invalid_operation "versions must be at least 1");
    {
      clock = R.atomic 0;
      serials = R.atomic 0;
      tvar_ids = R.atomic 0;
      serial_token = R.atomic false;
      active_commits = R.atomic 0;
      cm;
      elastic_window;
      max_attempts;
      extend_on_stale;
      versions;
      current = R.tls (fun () -> None);
      c_starts = R.counter ();
      c_commits = R.counter ();
      c_aborts = R.counter ();
      c_lock_busy = R.counter ();
      c_read_invalid = R.counter ();
      c_window_broken = R.counter ();
      c_snapshot_too_old = R.counter ();
      c_killed = R.counter ();
      c_explicit = R.counter ();
      c_cuts = R.counter ();
      c_extensions = R.counter ();
      c_stale_reads = R.counter ();
      c_fast_commits = R.counter ();
      recording = false;
      log_rev = [];
      aborted_rev = [];
      telemetry = None;
    }

  let tvar stm v =
    {
      id = R.fetch_and_add stm.tvar_ids 1;
      lock = R.atomic (Unlocked 0);
      data = R.atomic { value = v; version = 0; older = [] };
    }

  let tvar_id v = v.id
  let elastic_window_size stm = stm.elastic_window

  let semantics tx = tx.sem
  let serial tx = tx.serial

  let check_live tx =
    if not tx.live then
      raise (Invalid_operation "transaction handle used outside its extent")

  let on_abort tx f =
    check_live tx;
    tx.undo <- f :: tx.undo

  let on_cleanup tx f =
    check_live tx;
    tx.cleanup <- f :: tx.cleanup

  let record_event tx v ~is_write =
    if tx.stm.recording then
      tx.stm.log_rev <-
        { rec_tx = tx.serial; rec_loc = v.id; rec_write = is_write;
          rec_sem = tx.sem }
        :: tx.stm.log_rev

  let record_aborted tx =
    if tx.stm.recording then tx.stm.aborted_rev <- tx.serial :: tx.stm.aborted_rev

  let abort_with reason = raise (Abort_tx reason)

  (* ------------------------------------------------------------------ *)
  (* Telemetry                                                           *)

  let cause_of_reason : abort_reason -> T.cause = function
    | Lock_busy -> T.Lock_busy
    | Read_invalid -> T.Read_validation
    | Window_broken -> T.Elastic_cut
    | Snapshot_too_old -> T.Snapshot_overwrite
    | Killed -> T.Cm_kill
    | Explicit -> T.Explicit

  let set_sink stm s = stm.telemetry <- s
  let sink stm = stm.telemetry

  (* Event payloads are built inside the [Some] branch at every call
     site, so with no sink installed the hook costs one load and one
     branch — no allocation, no [R.now ()]. *)
  let send tx (s : T.sink) kind =
    s.T.emit
      {
        T.time = R.now ();
        thread = R.self_id ();
        serial = tx.serial;
        label = tx.label;
        kind;
      }

  let emit_read tx v =
    match tx.stm.telemetry with
    | None -> ()
    | Some s -> send tx s (T.Read { loc = v.id })

  (* Final set sizes, reported on commit and abort events.  The
     elastic window counts as part of the read set: those entries are
     still being validated. *)
  let tx_sets tx =
    (List.length tx.reads + List.length tx.window, IMap.cardinal tx.writes)

  let emit_abort tx reason =
    match tx.stm.telemetry with
    | None -> ()
    | Some s ->
        let reads, writes = tx_sets tx in
        send tx s (T.Abort { cause = cause_of_reason reason; reads; writes })

  (* ------------------------------------------------------------------ *)
  (* Consistent reads                                                    *)

  (* Spin briefly on a busy lock; under [Greedy] an older transaction
     kills the younger owner and keeps waiting (the victim aborts at
     its next conflict check, or finishes write-back and releases). *)
  let wait_or_die tx (o : owner) budget =
    if o.serial = tx.serial then
      raise (Invalid_operation "location accessed during its own commit");
    if budget > 0 then R.pause 1
    else
      match tx.stm.cm with
      | Contention.Greedy when tx.serial < o.serial ->
          R.set o.killed true;
          R.pause 1
      | Contention.Greedy | Contention.Suicide | Contention.Backoff _
      | Contention.Polite _ ->
          abort_with Lock_busy

  (* Read a (value, version) pair that was current at its version:
     re-read while a commit is in flight on this location. *)
  let read_versioned tx v =
    let budget = ref (Contention.lock_spins tx.stm.cm) in
    let rec loop () =
      let d = R.get v.data in
      match R.get v.lock with
      | Unlocked ver when ver = d.version -> d
      | Unlocked _ -> loop ()
      | Locked o ->
          wait_or_die tx o !budget;
          decr budget;
          loop ()
    in
    loop ()

  (* ------------------------------------------------------------------ *)
  (* Validation                                                          *)

  let entry_valid tx (REntry e) =
    match IMap.find_opt e.rvar.id tx.writes with
    | Some (WEntry w) when w.locked_version >= 0 ->
        (* Locked by us at commit: compare against the version seen at
           lock acquisition. *)
        w.locked_version = e.rversion
    | Some _ | None -> (
        match R.get e.rvar.lock with
        | Unlocked ver -> ver = e.rversion
        | Locked _ -> false)

  let validate tx =
    if not (List.for_all (entry_valid tx) tx.reads) then
      abort_with Read_invalid;
    if not (List.for_all (entry_valid tx) tx.window) then
      abort_with Window_broken

  (* TinySTM-style timestamp extension: move [rv] forward to the
     current clock if every read so far is still valid. *)
  let extend tx =
    let new_rv = R.get tx.stm.clock in
    validate tx;
    tx.rv <- new_rv;
    R.add_counter tx.stm.c_extensions 1

  (* ------------------------------------------------------------------ *)
  (* Reads, by semantics                                                 *)

  let push_window tx entry =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | e :: rest -> e :: take (n - 1) rest
    in
    tx.window <- entry :: take (tx.stm.elastic_window - 1) tx.window

  let classic_read tx v =
    let rec loop () =
      let d = read_versioned tx v in
      if d.version <= tx.rv then d
      else if not tx.stm.extend_on_stale then
        (* Faithful TL2 (the paper's comparator): a read past the
           transaction's timestamp aborts outright. *)
        abort_with Read_invalid
      else begin
        (* TinySTM-style refinement: extend instead of aborting, then
           RE-READ — the location may have changed again between our
           data read and the extension's clock read, and that change
           would be invisible to commit-time validation when the
           fast-commit path triggers. *)
        extend tx;
        loop ()
      end
    in
    let d = loop () in
    (* Read-set logging is a real cost of word-based STMs (an append
       and its cache pressure on every read); charge it so the
       simulator sees the overhead the paper attributes to classic
       transactions.  The elastic window below is a fixed two-slot
       buffer and charges half as much — E-STM's bounded log is one of
       its design points. *)
    R.pause 2;
    tx.reads <- REntry { rvar = v; rversion = d.version } :: tx.reads;
    record_event tx v ~is_write:false;
    emit_read tx v;
    d.value

  let elastic_read tx v =
    if tx.wrote then begin
      (* Closing mode: behave classically, the window joins the
         validation set. *)
      let d =
        let rec loop () =
          let d = read_versioned tx v in
          if d.version <= tx.rv then d
          else begin
            (* Extend, then re-read (see classic_read). *)
            extend tx;
            loop ()
          end
        in
        loop ()
      in
      R.pause 2;
      tx.reads <- REntry { rvar = v; rversion = d.version } :: tx.reads;
      record_event tx v ~is_write:false;
      emit_read tx v;
      d.value
    end
    else begin
      let rec loop () =
        let d = read_versioned tx v in
        if d.version <= tx.rv then d
        else begin
          (* Cut: the window must still be intact, then this read opens
             a new piece with a fresh timestamp. *)
          let new_rv = R.get tx.stm.clock in
          if not (List.for_all (entry_valid tx) tx.window) then
            abort_with Window_broken;
          tx.rv <- new_rv;
          tx.reads <- [];
          R.add_counter tx.stm.c_cuts 1;
          (* Re-read after the cut (see classic_read). *)
          loop ()
        end
      in
      let d = loop () in
      R.pause 1;
      push_window tx (REntry { rvar = v; rversion = d.version });
      record_event tx v ~is_write:false;
      emit_read tx v;
      d.value
    end

  let snapshot_read tx v =
    let ub = tx.snapshot_ub in
    let rec loop () =
      let d = R.get v.data in
      if d.version > ub then
        (* Any in-flight commit on this location carries a version
           above [d.version] > [ub], so it cannot affect the value at
           [ub]: the backup chain is usable without looking at the
           lock — this is why snapshots never impede updaters. *)
        let rec from_chain = function
          | [] -> abort_with Snapshot_too_old
          | (v, ver) :: rest ->
              if ver <= ub then begin
                R.add_counter tx.stm.c_stale_reads 1;
                v
              end
              else from_chain rest
        in
        from_chain d.older
      else
        (* The current version fits the snapshot, but a commit already
           holding the lock may have drawn its write version before we
           drew [ub]; taking [d.value] now could observe half of that
           transaction (one location written back, another not yet).
           Wait out the brief write-back and re-read. *)
        match R.get v.lock with
        | Unlocked ver when ver = d.version -> d.value
        | Unlocked _ -> loop ()
        | Locked _ ->
            R.pause 1;
            loop ()
    in
    let value = loop () in
    record_event tx v ~is_write:false;
    emit_read tx v;
    value

  let read : type a. tx -> a tvar -> a =
   fun tx v ->
    check_live tx;
    match IMap.find_opt v.id tx.writes with
    | Some (WEntry w) ->
        (* Same id implies same tvar, hence the same value type. *)
        (Obj.magic w.wvalue : a)
    | None -> (
        match tx.sem with
        | Semantics.Classic -> classic_read tx v
        | Semantics.Elastic -> elastic_read tx v
        | Semantics.Snapshot -> snapshot_read tx v)

  let write tx v x =
    check_live tx;
    if not (Semantics.allows_write tx.sem) then
      raise (Invalid_operation "write inside a snapshot transaction");
    (match IMap.find_opt v.id tx.writes with
    | Some (WEntry w) -> w.wvalue <- Obj.magic x
    | None ->
        tx.writes <-
          IMap.add v.id
            (WEntry { wvar = v; wvalue = x; locked_version = -1 })
            tx.writes);
    tx.wrote <- true;
    match tx.stm.telemetry with
    | None -> ()
    | Some s -> send tx s (T.Write { loc = v.id })

  let release tx v =
    check_live tx;
    let keep (REntry e) = e.rvar.id <> v.id in
    tx.reads <- List.filter keep tx.reads;
    tx.window <- List.filter keep tx.window

  let abort _tx = abort_with Explicit

  (* Run the newest entries of [l] down to (but excluding) the saved
     tail [upto] — the delta registered by a rolled-back branch. *)
  let run_delta l ~upto =
    let rec go = function
      | rest when rest == upto -> ()
      | [] -> ()
      | f :: rest ->
          f ();
          go rest
    in
    go l

  let orelse tx f g =
    check_live tx;
    let reads = tx.reads
    and window = tx.window
    and writes = tx.writes
    and wrote = tx.wrote
    and undo = tx.undo
    and cleanup = tx.cleanup in
    try f tx
    with Abort_tx Explicit ->
      (* Compensate the branch's eager (boosted) effects, release its
         abstract locks, then restore the buffered state. *)
      run_delta tx.undo ~upto:undo;
      run_delta tx.cleanup ~upto:cleanup;
      tx.reads <- reads;
      tx.window <- window;
      tx.writes <- writes;
      tx.wrote <- wrote;
      tx.undo <- undo;
      tx.cleanup <- cleanup;
      g tx

  (* ------------------------------------------------------------------ *)
  (* Commit                                                              *)

  let release_lock (WEntry w) =
    if w.locked_version >= 0 then begin
      R.set w.wvar.lock (Unlocked w.locked_version);
      w.locked_version <- -1
    end

  let release_all tx = IMap.iter (fun _ e -> release_lock e) tx.writes

  let acquire tx (WEntry w) =
    let budget = ref (Contention.lock_spins tx.stm.cm) in
    let rec loop () =
      match R.get w.wvar.lock with
      | Unlocked ver as l ->
          if R.cas w.wvar.lock l (Locked tx.owner) then begin
            w.locked_version <- ver;
            match tx.stm.telemetry with
            | None -> ()
            | Some s -> send tx s (T.Lock_acquire { loc = w.wvar.id })
          end
          else loop ()
      | Locked o ->
          wait_or_die tx o !budget;
          decr budget;
          loop ()
    in
    loop ()

  (* Keep at most [n] elements of a backup chain. *)
  let rec take_chain n l =
    if n <= 0 then []
    else match l with [] -> [] | x :: rest -> x :: take_chain (n - 1) rest

  let write_back tx wv =
    IMap.iter
      (fun _ (WEntry w) ->
        let d = R.get w.wvar.data in
        R.set w.wvar.data
          {
            value = w.wvalue;
            version = wv;
            older =
              take_chain (tx.stm.versions - 1) ((d.value, d.version) :: d.older);
          };
        record_event tx w.wvar ~is_write:true;
        R.set w.wvar.lock (Unlocked wv);
        w.locked_version <- -1)
      tx.writes

  let commit ?(holds_token = false) tx =
    if IMap.is_empty tx.writes then
      (* Read-only transactions of every semantics commit for free:
         every read was validated against a single coherent timestamp
         when it happened. *)
      (match tx.stm.telemetry with
      | None -> ()
      | Some s ->
          let reads, _ = tx_sets tx in
          send tx s (T.Commit { reads; writes = 0; lock_hold = 0 }))
    else begin
      (* Serial-irrevocable mode: while some irrevocable transaction
         holds the token, ordinary write commits stall here — before
         taking any lock, so there is no hold-and-wait. *)
      if not holds_token then
        while R.get tx.stm.serial_token do
          R.pause 4
        done;
      ignore (R.fetch_and_add tx.stm.active_commits 1);
      let t_acquire =
        match tx.stm.telemetry with None -> 0 | Some _ -> R.now ()
      in
      match
        (* Ascending id order (IMap.iter) keeps locking deadlock-free. *)
        IMap.iter (fun _ e -> acquire tx e) tx.writes;
        if R.get tx.owner.killed then abort_with Killed;
        let wv = R.fetch_and_add tx.stm.clock 1 + 1 in
        if wv = tx.rv + 1 then R.add_counter tx.stm.c_fast_commits 1
        else validate tx;
        write_back tx wv
      with
      | () -> (
          ignore (R.fetch_and_add tx.stm.active_commits (-1));
          match tx.stm.telemetry with
          | None -> ()
          | Some s ->
              let reads, writes = tx_sets tx in
              send tx s
                (T.Commit { reads; writes; lock_hold = R.now () - t_acquire }))
      | exception e ->
          release_all tx;
          ignore (R.fetch_and_add tx.stm.active_commits (-1));
          raise e
    end

  (* ------------------------------------------------------------------ *)
  (* The transaction loop                                                *)

  let make_tx stm sem label =
    let serial = R.fetch_and_add stm.serials 1 in
    let rv = R.get stm.clock in
    {
      stm;
      serial;
      sem;
      label;
      owner = { serial; killed = R.atomic false };
      rv;
      snapshot_ub = rv;
      reads = [];
      window = [];
      writes = IMap.empty;
      wrote = false;
      undo = [];
      cleanup = [];
      live = true;
    }

  let abort_counter stm = function
    | Lock_busy -> stm.c_lock_busy
    | Read_invalid -> stm.c_read_invalid
    | Window_broken -> stm.c_window_broken
    | Snapshot_too_old -> stm.c_snapshot_too_old
    | Killed -> stm.c_killed
    | Explicit -> stm.c_explicit

  (* Acquire the global serial token and wait for in-flight write
     commits to drain: afterwards no transaction can commit until the
     token is released, so the holder's reads can never be invalidated
     and it is guaranteed to run exactly once. *)
  let enter_serial_mode stm =
    let rec take () =
      if not (R.cas stm.serial_token false true) then begin
        R.pause 8;
        take ()
      end
    in
    take ();
    while R.get stm.active_commits > 0 do
      R.pause 2
    done

  let exit_serial_mode stm = R.set stm.serial_token false

  let emit_begin tx attempt =
    match tx.stm.telemetry with
    | None -> ()
    | Some s ->
        send tx s (T.Begin { sem = Semantics.to_string tx.sem; attempt })

  let atomically ?(sem = Semantics.Classic) ?(irrevocable = false)
      ?(label = "") stm f =
    match R.tls_get stm.current with
    | Some outer when outer.live && outer.stm == stm ->
        (* Flat nesting: the outer label prevails (Section 4.2). *)
        let (_ : Semantics.t) = Semantics.compose ~outer:outer.sem ~inner:sem in
        f outer
    | Some _ | None when irrevocable ->
        if sem = Semantics.Snapshot then
          raise
            (Invalid_operation "irrevocable snapshot transactions are pointless");
        enter_serial_mode stm;
        let tx = make_tx stm sem label in
        R.add_counter stm.c_starts 1;
        emit_begin tx 1;
        R.tls_set stm.current (Some tx);
        let cleanup () =
          tx.live <- false;
          R.tls_set stm.current None;
          exit_serial_mode stm
        in
        (match
           let result = f tx in
           commit ~holds_token:true tx;
           result
         with
        | result ->
            cleanup ();
            List.iter (fun g -> g ()) tx.cleanup;
            R.add_counter stm.c_commits 1;
            result
        | exception Abort_tx reason ->
            cleanup ();
            List.iter (fun g -> g ()) tx.undo;
            List.iter (fun g -> g ()) tx.cleanup;
            emit_abort tx reason;
            raise
              (Invalid_operation
                 "explicit abort inside an irrevocable transaction")
        | exception e ->
            (* A user exception: with the world stopped, conflict
               aborts are impossible, so nothing else reaches here. *)
            cleanup ();
            List.iter (fun g -> g ()) tx.undo;
            List.iter (fun g -> g ()) tx.cleanup;
            record_aborted tx;
            R.add_counter stm.c_aborts 1;
            R.add_counter stm.c_explicit 1;
            emit_abort tx Explicit;
            raise e)
    | Some _ | None ->
        let rec attempt n =
          let tx = make_tx stm sem label in
          R.add_counter stm.c_starts 1;
          emit_begin tx n;
          R.tls_set stm.current (Some tx);
          let cleanup () =
            tx.live <- false;
            R.tls_set stm.current None
          in
          let run_hooks ~aborted =
            if aborted then List.iter (fun f -> f ()) tx.undo;
            List.iter (fun f -> f ()) tx.cleanup
          in
          match
            let result = f tx in
            commit tx;
            result
          with
          | result ->
              cleanup ();
              run_hooks ~aborted:false;
              R.add_counter stm.c_commits 1;
              result
          | exception Abort_tx reason ->
              cleanup ();
              run_hooks ~aborted:true;
              record_aborted tx;
              R.add_counter stm.c_aborts 1;
              R.add_counter (abort_counter stm reason) 1;
              emit_abort tx reason;
              if n >= stm.max_attempts then
                raise (Too_many_attempts (reason, n));
              let pause = Contention.retry_pause stm.cm ~attempt:n in
              if pause > 0 then R.pause pause;
              attempt (n + 1)
          | exception e ->
              (* User exception: discard effects, count the attempt as
                 aborted, propagate. *)
              cleanup ();
              run_hooks ~aborted:true;
              record_aborted tx;
              R.add_counter stm.c_aborts 1;
              R.add_counter stm.c_explicit 1;
              emit_abort tx Explicit;
              raise e
        in
        attempt 1

  (* ------------------------------------------------------------------ *)
  (* Statistics and recording                                            *)

  type stats = {
    starts : int;
    commits : int;
    aborts : int;
    lock_busy : int;
    read_invalid : int;
    window_broken : int;
    snapshot_too_old : int;
    killed : int;
    explicit_aborts : int;
    cuts : int;
    extensions : int;
    stale_reads : int;
    fast_commits : int;
  }

  let stats stm =
    {
      starts = R.read_counter stm.c_starts;
      commits = R.read_counter stm.c_commits;
      aborts = R.read_counter stm.c_aborts;
      lock_busy = R.read_counter stm.c_lock_busy;
      read_invalid = R.read_counter stm.c_read_invalid;
      window_broken = R.read_counter stm.c_window_broken;
      snapshot_too_old = R.read_counter stm.c_snapshot_too_old;
      killed = R.read_counter stm.c_killed;
      explicit_aborts = R.read_counter stm.c_explicit;
      cuts = R.read_counter stm.c_cuts;
      extensions = R.read_counter stm.c_extensions;
      stale_reads = R.read_counter stm.c_stale_reads;
      fast_commits = R.read_counter stm.c_fast_commits;
    }

  let reset_counter c = R.add_counter c (-R.read_counter c)

  let reset_stats stm =
    List.iter reset_counter
      [
        stm.c_starts; stm.c_commits; stm.c_aborts; stm.c_lock_busy;
        stm.c_read_invalid; stm.c_window_broken; stm.c_snapshot_too_old;
        stm.c_killed; stm.c_explicit; stm.c_cuts; stm.c_extensions;
        stm.c_stale_reads; stm.c_fast_commits;
      ]

  let pp_stats ppf s =
    Format.fprintf ppf
      "@[<v>starts=%d commits=%d aborts=%d@ lock_busy=%d read_invalid=%d \
       window_broken=%d snapshot_too_old=%d killed=%d explicit=%d@ cuts=%d \
       extensions=%d stale_reads=%d fast_commits=%d@]"
      s.starts s.commits s.aborts s.lock_busy s.read_invalid s.window_broken
      s.snapshot_too_old s.killed s.explicit_aborts s.cuts s.extensions
      s.stale_reads s.fast_commits

  let record stm on =
    stm.recording <- on;
    if on then begin
      stm.log_rev <- [];
      stm.aborted_rev <- []
    end

  let recorded_events stm = List.rev stm.log_rev
  let recorded_aborted stm = List.sort_uniq compare stm.aborted_rev
end
