(** Transaction semantics — the heart of the paper's proposal.

    A {e polymorphic} transactional memory lets every transaction pick
    its own semantics at [tx-begin] while sharing data with
    transactions of other semantics (paper, Section 5).  The default is
    the strongest one, so novices can ignore the choice entirely. *)

type t =
  | Classic
      (** Opacity / single-global-lock atomicity: all accesses appear
          to take effect at one indivisible point.  The default. *)
  | Elastic
      (** Elastic-opacity (DISC'09): the transaction may be cut into
          consecutive pieces when no conflict spans a cut boundary.
          Intended for search-structure parses; composes with the
          other semantics. *)
  | Snapshot
      (** Read-only atomic snapshot via multiversioning: reads may
          return slightly stale but mutually consistent values, so the
          transaction neither aborts updaters nor is aborted by them
          (paper, Section 5.1).  Writing inside a snapshot transaction
          is an error. *)

let to_string = function
  | Classic -> "classic"
  | Elastic -> "elastic"
  | Snapshot -> "snapshot"

let pp ppf s = Format.pp_print_string ppf (to_string s)

let equal (a : t) (b : t) = a = b

(* When transactions nest, the outer label wins (paper, Section 4.2:
   Bob composes Alice's elastic add into a classic addIfAbsent by
   labelling the outer block). *)
let compose ~outer ~inner:_ = outer

let allows_write = function
  | Classic | Elastic -> true
  | Snapshot -> false
