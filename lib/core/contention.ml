(** Contention-management policies (paper, Section 2.2: “Deciding upon
    the conflict resolution strategy is the task of a dedicated
    service, called a contention manager” — Scherer & Scott, PODC'05).

    A policy answers two questions: how long to wait for a busy write
    lock before giving up, and how long to back off before re-running
    an aborted transaction.  [Greedy] additionally arbitrates by age:
    the older transaction may kill the younger lock holder instead of
    aborting itself. *)

type t =
  | Suicide  (** abort self immediately on conflict, retry at once *)
  | Backoff of { base : int; cap : int }
      (** abort self, wait [min cap (base * 2^attempt)] before retrying
          (randomised jitter is deliberately avoided: runs stay
          deterministic under the simulator) *)
  | Polite of { spins : int }
      (** spin up to [spins] pauses on a busy lock before aborting;
          retry immediately *)
  | Greedy
      (** timestamp priority: on a busy lock, the older transaction
          requests the younger owner's death and waits; the younger
          aborts itself.  Livelock-free by age monotonicity. *)

let default = Backoff { base = 4; cap = 1024 }

let to_string = function
  | Suicide -> "suicide"
  | Backoff { base; cap } -> Printf.sprintf "backoff(%d,%d)" base cap
  | Polite { spins } -> Printf.sprintf "polite(%d)" spins
  | Greedy -> "greedy"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* How many pauses to spend spinning on a busy lock before the abort
   decision. *)
let lock_spins = function
  | Suicide -> 0
  | Backoff _ -> 1
  | Polite { spins } -> spins
  | Greedy -> 1

(* Backoff duration before re-running attempt [attempt] (1-based). *)
let retry_pause policy ~attempt =
  match policy with
  | Suicide | Polite _ | Greedy -> 0
  | Backoff { base; cap } ->
      let rec shifted acc n = if n <= 0 || acc >= cap then acc else shifted (acc * 2) (n - 1) in
      min cap (shifted base (attempt - 1))
