(** Contention-management policies (paper, Section 2.2: “Deciding upon
    the conflict resolution strategy is the task of a dedicated
    service, called a contention manager” — Scherer & Scott, PODC'05).

    A policy answers two questions: how long to wait for a busy write
    lock before giving up, and how long to back off before re-running
    an aborted transaction.  [Greedy] additionally arbitrates by age:
    the older transaction may kill the younger lock holder instead of
    aborting itself.

    [Adaptive] composes the static policies into an escalation ladder
    (DESIGN.md, S15).  A transaction starts cautious (exponential
    backoff, no kills); past [greedy_after] consecutive aborts of one
    [atomically] call it turns aggressive (Greedy-style kills, no
    backoff); past [serialize_after] aborts it asks the STM to stop
    being optimistic altogether and re-run it under the global
    serialization token, which guarantees the commit.  The instance's
    streaming abort-rate signal — the same per-event feed the
    telemetry aggregator consumes — modulates the ladder: when at
    least [hot_abort_pct] percent of started attempts abort, both
    thresholds halve, so a thrashing system degrades to the guaranteed
    mode sooner. *)

type t =
  | Suicide  (** abort self immediately on conflict, retry at once *)
  | Backoff of { base : int; cap : int }
      (** abort self, wait [min cap (base * 2^attempt)] before retrying
          (randomised jitter is deliberately avoided: runs stay
          deterministic under the simulator) *)
  | Polite of { spins : int }
      (** spin up to [spins] pauses on a busy lock before aborting;
          retry immediately *)
  | Greedy
      (** timestamp priority: on a busy lock, the older transaction
          requests the younger owner's death and waits; the younger
          aborts itself.  Livelock-free by age monotonicity. *)
  | Adaptive of {
      base : int;  (** backoff base while cautious *)
      cap : int;  (** backoff cap while cautious *)
      greedy_after : int;  (** attempt count that turns on Greedy kills *)
      serialize_after : int;  (** attempt count that requests the token *)
      hot_abort_pct : int;
          (** instance abort rate (percent of starts) at which both
              thresholds halve; [> 100] disables the modulation *)
    }  (** escalate Backoff → Greedy → serialize (see module doc) *)

let default = Backoff { base = 4; cap = 1024 }

(* Escalate quickly enough that a bounded starvation scenario resolves
   within tens of retries, but leave the cautious phase long enough
   that ordinary conflict bursts never pay for the token. *)
let default_adaptive =
  Adaptive
    { base = 4; cap = 1024; greedy_after = 8; serialize_after = 24;
      hot_abort_pct = 50 }

let to_string = function
  | Suicide -> "suicide"
  | Backoff { base; cap } -> Printf.sprintf "backoff(%d,%d)" base cap
  | Polite { spins } -> Printf.sprintf "polite(%d)" spins
  | Greedy -> "greedy"
  | Adaptive { base; cap; greedy_after; serialize_after; hot_abort_pct } ->
      Printf.sprintf "adaptive(%d,%d,g%d,s%d,h%d%%)" base cap greedy_after
        serialize_after hot_abort_pct

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Parameter validation, called by [Stm.create] so misconfigured
   policies fail at construction instead of degenerating silently
   ([Backoff { base = 0 }] used to mean "never back off at all"). *)
let validate t =
  let backoff_ok ~what ~base ~cap =
    if base < 1 then
      invalid_arg (Printf.sprintf "Contention.%s: base must be >= 1" what);
    if cap < base then
      invalid_arg (Printf.sprintf "Contention.%s: cap must be >= base" what)
  in
  match t with
  | Suicide | Greedy -> ()
  | Polite { spins } ->
      if spins < 0 then invalid_arg "Contention.Polite: spins must be >= 0"
  | Backoff { base; cap } -> backoff_ok ~what:"Backoff" ~base ~cap
  | Adaptive { base; cap; greedy_after; serialize_after; _ } ->
      backoff_ok ~what:"Adaptive" ~base ~cap;
      if greedy_after < 1 then
        invalid_arg "Contention.Adaptive: greedy_after must be >= 1";
      if serialize_after < greedy_after then
        invalid_arg
          "Contention.Adaptive: serialize_after must be >= greedy_after"

(* How many pauses to spend spinning on a busy lock before the abort
   decision. *)
let lock_spins = function
  | Suicide -> 0
  | Backoff _ -> 1
  | Polite { spins } -> spins
  | Greedy -> 1
  | Adaptive _ -> 1

(* Can this policy ever set another transaction's killed flag?  The
   victim-side flag check in the STM's spin loops is gated on this, so
   non-killing configurations keep a byte-identical charge sequence. *)
let may_kill = function
  | Greedy | Adaptive _ -> true
  | Suicide | Backoff _ | Polite _ -> false

(* Effective escalation threshold: the hot-instance signal halves it
   (never below 1). *)
let effective ~threshold ~hot_abort_pct ~abort_rate_pct =
  if abort_rate_pct >= hot_abort_pct then max 1 (threshold / 2) else threshold

(* May an older transaction on its [attempt]-th try kill a younger
   lock holder right now?  [Greedy] always does; [Adaptive] only once
   escalated past its (rate-modulated) greedy threshold. *)
let kills_at policy ~attempt ~abort_rate_pct =
  match policy with
  | Greedy -> true
  | Adaptive { greedy_after; hot_abort_pct; _ } ->
      attempt >= effective ~threshold:greedy_after ~hot_abort_pct ~abort_rate_pct
  | Suicide | Backoff _ | Polite _ -> false

(* Should the [attempt]-th consecutive abort of one [atomically] call
   escalate to the serial-irrevocable fallback?  Only [Adaptive]
   requests it; every policy still falls back when the retry budget is
   exhausted (the instance-level exhaustion policy). *)
let serializes_at policy ~attempt ~abort_rate_pct =
  match policy with
  | Adaptive { serialize_after; hot_abort_pct; _ } ->
      attempt
      >= effective ~threshold:serialize_after ~hot_abort_pct ~abort_rate_pct
  | Suicide | Backoff _ | Polite _ | Greedy -> false

(* Exponential backoff before re-running attempt [attempt] (1-based),
   shared by [Backoff] and [Adaptive]'s cautious phase.  The doubling
   saturates at [cap] *before* it can overflow: once [acc] passes
   [cap / 2] the next doubling would reach or exceed [cap] anyway (for
   any validated [base >= 1]), so we clamp instead of multiplying —
   [acc * 2] on a large un-validated [base] used to wrap negative and
   slip past the [>= cap] test. *)
let backoff_pause ~base ~cap ~attempt =
  let rec shifted acc n =
    if n <= 0 || acc >= cap then acc
    else if acc > cap asr 1 then cap
    else shifted (acc * 2) (n - 1)
  in
  min cap (shifted base (attempt - 1))

let retry_pause policy ~attempt =
  match policy with
  | Suicide | Polite _ | Greedy -> 0
  | Backoff { base; cap } -> backoff_pause ~base ~cap ~attempt
  | Adaptive { base; cap; greedy_after; _ } ->
      (* Aggressive phase: retry immediately, like [Greedy] — the kill
         already cleared the way.  (Unmodulated by the abort rate so
         the pause sequence of one call stays monotone in [attempt].) *)
      if attempt >= greedy_after then 0 else backoff_pause ~base ~cap ~attempt
