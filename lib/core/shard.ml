(** Shard router: [K] independent STM instances behind one store.

    Everything in a single instance funnels through one clock word
    (TL2's version clock, NOrec's sequence lock), one wait queue and
    one contention manager; under multi-domain load those words are
    the scalability ceiling.  The router owns [K] instances — each
    with its own clock, waiter registry and contention manager, TL2 or
    NOrec per shard — and hash-routes keys to their {e owner} shard,
    so single-key operations touch exactly one instance and proceed
    lock-free with respect to every other shard.

    Operations that genuinely span shards (cross-shard [MULTI]
    batches, whole-store aggregates) use the cross-instance protocols
    the STM itself provides: {!Stm_intf.S.atomically_multi} (two-phase
    commit over the member shard clocks, escalating to the
    serialization tokens) and {!Stm_intf.S.snapshot_multi} (a
    consistent bound vector).  The router's job is purely {e
    placement}: deciding which instances are involved and keeping that
    decision deterministic.  With [K = 1] every routed call lands on
    the single instance and the cross-shard paths collapse to the
    ordinary single-instance ones, so a 1-shard router is
    behaviourally identical to no router at all.

    Patterned after the per-locale descriptor tables of the Chapel
    distributed-object exemplars: a fixed array of homes plus a pure
    placement function, never a global lock. *)

module Make (S : Stm_intf.S) = struct
  type t = { shards : S.t array }

  let create ?(shards = 1) mk =
    if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
    { shards = Array.init shards mk }

  let count t = Array.length t.shards
  let shard t i = t.shards.(i)

  (* Canonical member list, creation order — the same order
     [atomically_multi] acquires intents in. *)
  let all t = Array.to_list t.shards

  (* Placement.  Integer keys get a Fibonacci mix (consecutive keys
     spread across shards, so range-partitioned workloads still
     balance); strings get FNV-1a.  Both are deterministic across
     runs and processes — a client may precompute its key's shard. *)
  let index_of_hash t h =
    let h = h * 0x9E3779B1 in
    let h = h lxor (h lsr 16) in
    (h land max_int) mod Array.length t.shards

  let hash_string s =
    let h = ref 0x811c9dc5 in
    String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193) s;
    !h land max_int

  let index_of_key t key = index_of_hash t (hash_string key)
  let owner_of_hash t h = t.shards.(index_of_hash t h)
  let owner t key = t.shards.(index_of_key t key)

  (* Whole-store transactions: one atomic update (or one consistent
     snapshot) spanning every shard.  Delegates to the STM's
     cross-instance engine; with one shard these are exactly
     [atomically]. *)
  let atomically_all ?sem ?label ?budget t f =
    S.atomically_multi ?sem ?label ?budget (all t) f

  let snapshot_all ?label ?unsafe_no_stabilize t f =
    S.snapshot_multi ?label ?unsafe_no_stabilize (all t) f
end
