(** PolyTM — a polymorphic software transactional memory.

    OCaml reproduction of {e Democratizing Transactional Programming}
    (Gramoli & Guerraoui, Middleware 2011): one STM runtime, several
    transaction semantics, chosen per transaction and co-existing on
    shared data.

    {1 Entry points}

    - {!Stm.Make} builds the STM over an execution substrate
      ({!Polytm_runtime.Sim_runtime} for deterministic simulation and
      model checking, {!Polytm_runtime.Domain_runtime} for real
      parallelism).  Its signature is {!Stm_intf.S}.
    - {!Semantics} lists the available transaction semantics
      ([Classic], [Elastic], [Snapshot]) and the composition rule for
      nesting.
    - {!Contention} is the pluggable contention-management policy.

    {1 Sixty-second tour}

    {[
      module S = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)

      let stm = S.create ()
      let account = S.tvar stm 100

      (* novice: delimit sequential code *)
      let deposit n =
        S.atomically stm (fun tx -> S.write tx account (S.read tx account + n))

      (* expert: a read-only audit that never aborts the deposits *)
      let audit () =
        S.atomically ~sem:Polytm.Semantics.Snapshot stm (fun tx ->
            S.read tx account)
    ]}

    Transactional data structures with per-operation semantics live in
    [Polytm_structs]; benchmarks reproducing the paper's figures in
    [Polytm_bench_kit]; the formal history checkers in
    [Polytm_history]. *)

module Semantics = Semantics
module Contention = Contention
module Stm_intf = Stm_intf
module Stm = Stm
module Shard = Shard
