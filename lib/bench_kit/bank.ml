(** The bank benchmark (Harmanci, Gramoli, Felber & Fetzer, JPDC 2010 —
    reference [40]; Section 4.3 likens the aborting classic [size] to
    the bank's {e balance} operations).

    Threads transfer money between accounts (short read-2/write-2
    classic transactions) while auditors compute the global balance
    (read-everything transactions).  A classic balance aborts whenever
    any transfer commits under it — the “toxic transaction” pattern
    [41] — while a snapshot balance reads a consistent past and never
    conflicts.  The run also checks correctness on the fly: every
    balance observed must equal the initial total. *)

module A = Polytm_structs.Adapters
module AM = Polytm_structs.Adapters.Make (Polytm_runtime.Sim_runtime)
module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim

type config = {
  accounts : int;
  initial : int;  (** per-account starting balance *)
  balance_pct : int;  (** percentage of balance operations *)
  threads : int;
  duration : int;
  seed : int;
}

let default_config =
  {
    accounts = 64;
    initial = 100;
    balance_pct = 10;
    threads = 32;
    duration = 150_000;
    seed = 21;
  }

type result = {
  label : string;
  transfers : int;
  balances : int;
  bad_balances : int;  (** balances that did not see the invariant total *)
  failed_ops : int;  (** operations abandoned after too many aborts *)
  throughput : float;  (** completed ops per 1000 virtual ticks *)
  aborts : int;
  stale_reads : int;
}

(* One benchmark run with the given semantics for balance operations. *)
let run ?(config = default_config) ~balance_sem ~label () =
  let stm = AM.S.create ~max_attempts:200 () in
  let accounts = Array.init config.accounts (fun _ -> AM.S.tvar stm config.initial) in
  let expected_total = config.accounts * config.initial in
  let transfers = ref 0
  and balances = ref 0
  and bad = ref 0
  and failed = ref 0 in
  let master = Polytm_util.Rng.create config.seed in
  let bodies =
    List.init config.threads (fun _ ->
        let rng = Polytm_util.Rng.split master in
        fun () ->
          while Sim.now () < config.duration do
            match
              if Polytm_util.Rng.int rng 100 < config.balance_pct then begin
                let total =
                  AM.S.atomically ~sem:balance_sem stm (fun tx ->
                      Array.fold_left
                        (fun acc a -> acc + AM.S.read tx a)
                        0 accounts)
                in
                incr balances;
                if total <> expected_total then incr bad
              end
              else begin
                let src = Polytm_util.Rng.int rng config.accounts
                and dst = Polytm_util.Rng.int rng config.accounts
                and amount = Polytm_util.Rng.int rng 20 in
                AM.S.atomically stm (fun tx ->
                    let s = AM.S.read tx accounts.(src) in
                    AM.S.write tx accounts.(src) (s - amount);
                    let d = AM.S.read tx accounts.(dst) in
                    AM.S.write tx accounts.(dst) (d + amount));
                incr transfers
              end
            with
            | () -> ()
            | exception AM.S.Too_many_attempts _ -> incr failed
          done)
  in
  let (), _info = Sim.run (fun () -> R.parallel bodies) in
  let st = AM.S.stats stm in
  {
    label;
    transfers = !transfers;
    balances = !balances;
    bad_balances = !bad;
    failed_ops = !failed;
    throughput =
      1000.0
      *. float_of_int (!transfers + !balances)
      /. (float_of_int config.duration
          *. max 1.0 (float_of_int config.threads /. 16.));
    aborts = st.AM.S.aborts;
    stale_reads = st.AM.S.stale_reads;
  }

let compare_semantics ?config () =
  [
    run ?config ~balance_sem:Polytm.Semantics.Classic ~label:"classic balance" ();
    run ?config ~balance_sem:Polytm.Semantics.Snapshot ~label:"snapshot balance" ();
  ]

let pp_results ppf results =
  Format.fprintf ppf
    "@.== BANK: transfers vs whole-bank balance (Section 4.3's toxic \
     read-only transactions)@.@.";
  Format.fprintf ppf "%-18s %10s %10s %10s %8s %8s %8s %8s@." "balance mode"
    "ops/ktick" "transfers" "balances" "bad" "failed" "aborts" "stale";
  Format.fprintf ppf "%s@." (String.make 88 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-18s %10.2f %10d %10d %8d %8d %8d %8d@." r.label
        r.throughput r.transfers r.balances r.bad_balances r.failed_ops
        r.aborts r.stale_reads)
    results
