(** Ablation studies for the design choices DESIGN.md calls out:

    - contention-management policy (Section 2.2's “dedicated service”):
      same classic workload under Suicide / Backoff / Polite / Greedy /
      Adaptive (the escalating policy behind the liveness guarantee);
    - elastic window size: E-STM uses a bounded window (default 2);
      larger windows validate more and cut less;
    - timestamp extension: the TinySTM refinement our classic system
      disables to stay faithful to TL2 — how much it buys back;
    - mixed-semantics decomposition: which of the two relaxations
      (elastic parses, snapshot size) contributes what, by toggling
      them independently. *)

module A = Polytm_structs.Adapters
module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module AM = Polytm_structs.Adapters.Make (R)

type row = {
  row_label : string;
  row_throughput : float;  (** ops per 1000 virtual ticks *)
  row_completed : int;
  row_aborts : int;
  row_detail : string;
}

type table = { table_title : string; rows : row list }

let run_stm_config ~label ~spec ~threads ~duration ~seed ~profile ?cm
    ?elastic_window ?versions ?(extend_on_stale = true) ?gv ?algo () =
  let stm = ref None in
  let make () =
    let s =
      AM.S.create ~max_attempts:200 ?cm ?elastic_window ?versions
        ~extend_on_stale ?gv ?algo ()
    in
    stm := Some s;
    ( AM.stm_list ~profile s,
      (function AM.S.Too_many_attempts _ -> true | _ -> false),
      fun () -> None )
  in
  let r = Harness.run ~label ~make ~spec ~threads ~duration ~seed () in
  let st = AM.S.stats (Option.get !stm) in
  {
    row_label = label;
    row_throughput = r.Harness.throughput;
    row_completed = r.Harness.completed;
    row_aborts = st.AM.S.aborts;
    row_detail =
      Printf.sprintf
        "lock_busy=%d read_invalid=%d window_broken=%d snap_old=%d cuts=%d \
         extensions=%d fast_commits=%d ro_commits=%d serial=%d exhaust=%d \
         failed_ops=%d"
        st.AM.S.lock_busy st.AM.S.read_invalid st.AM.S.window_broken
        st.AM.S.snapshot_too_old st.AM.S.cuts st.AM.S.extensions
        st.AM.S.fast_commits st.AM.S.ro_commits st.AM.S.serial_commits
        st.AM.S.budget_exhaustions r.Harness.failed;
  }

(* High-contention setting: a small hot list exposes the policies. *)
let contention_managers ?(threads = 32) ?(duration = 150_000) ?(seed = 11) () =
  let spec = Workload.spec_of_size 64 in
  let spec = { spec with Workload.update_pct = 40; size_pct = 5 } in
  let policies =
    [
      ("suicide", Polytm.Contention.Suicide);
      ("backoff", Polytm.Contention.Backoff { base = 4; cap = 1024 });
      ("polite", Polytm.Contention.Polite { spins = 16 });
      ("greedy", Polytm.Contention.Greedy);
      (* Backoff -> Greedy -> serialize escalation driven by the
         streaming abort-rate signal; the serial=… column shows how
         often it gave up on optimism entirely. *)
      ("adaptive", Polytm.Contention.default_adaptive);
    ]
  in
  {
    table_title =
      Printf.sprintf
        "Contention managers (classic, %d-element hot list, 40%% updates, %d \
         threads)"
        spec.Workload.initial_size threads;
    rows =
      List.map
        (fun (name, cm) ->
          run_stm_config ~label:name ~spec ~threads ~duration ~seed
            ~profile:A.classic_profile ~cm ())
        policies;
  }

let window_sizes ?(threads = 32) ?(duration = 150_000) ?(seed = 12) () =
  let spec = Workload.default_spec in
  {
    table_title =
      Printf.sprintf "Elastic window size (elastic+classic profile, %d threads)"
        threads;
    rows =
      List.map
        (fun w ->
          run_stm_config
            ~label:(Printf.sprintf "window=%d" w)
            ~spec ~threads ~duration ~seed ~profile:A.elastic_classic_profile
            ~elastic_window:w ())
        (* window=1 is rejected by the list structure (a remove's
           write neighbourhood spans two pointers). *)
        [ 2; 4; 8 ];
  }

let timestamp_extension ?(threads = 32) ?(duration = 150_000) ?(seed = 13) () =
  let spec = Workload.default_spec in
  {
    table_title =
      Printf.sprintf
        "Timestamp extension (classic profile, %d threads): TL2 vs TinySTM"
        threads;
    rows =
      [
        run_stm_config ~label:"TL2 (abort on stale read)" ~spec ~threads
          ~duration ~seed ~profile:A.classic_profile ~extend_on_stale:false ();
        run_stm_config ~label:"TinySTM (extend on stale read)" ~spec ~threads
          ~duration ~seed ~profile:A.classic_profile ~extend_on_stale:true ();
      ];
  }

let semantics_decomposition ?(threads = 64) ?(duration = 150_000) ?(seed = 14)
    () =
  let spec = Workload.default_spec in
  let profiles =
    [
      ("classic parses + classic size", A.classic_profile);
      ("elastic parses + classic size", A.elastic_classic_profile);
      ( "classic parses + snapshot size",
        { A.profile_name = "classic+snapshot"; parse_sem = Classic;
          size_sem = Snapshot } );
      ("elastic parses + snapshot size", A.mixed_profile);
    ]
  in
  {
    table_title =
      Printf.sprintf
        "Which relaxation pays?  Semantics decomposition at %d threads" threads;
    rows =
      List.map
        (fun (label, profile) ->
          run_stm_config ~label ~spec ~threads ~duration ~seed ~profile ())
        profiles;
  }

(* How much of the mixed model's advantage survives as the update
   ratio grows (more updates = more version churn, more snapshot
   fallbacks, shorter useful windows). *)
let update_sensitivity ?(threads = 32) ?(duration = 150_000) ?(seed = 15) () =
  let rows =
    List.concat_map
      (fun update_pct ->
        let spec =
          { Workload.default_spec with Workload.update_pct; size_pct = 10 }
        in
        List.map
          (fun (name, profile, extend) ->
            run_stm_config
              ~label:(Printf.sprintf "%s @ %d%% updates" name update_pct)
              ~spec ~threads ~duration ~seed ~profile ~extend_on_stale:extend
              ())
          [
            ("classic", A.classic_profile, false);
            ("mixed", A.mixed_profile, true);
          ])
      [ 2; 10; 40 ]
  in
  {
    table_title =
      Printf.sprintf "Update-ratio sensitivity (%d threads, 10%% size)" threads;
    rows;
  }

(* Probing §5.1's claim that two versions suffice: snapshot-heavy
   workload under 1 / 2 / 4 retained versions per location. *)
let version_depth ?(threads = 32) ?(duration = 150_000) ?(seed = 16) () =
  let spec =
    { Workload.default_spec with Workload.update_pct = 20; size_pct = 20 }
  in
  {
    table_title =
      Printf.sprintf
        "Multiversion depth (mixed profile, %d%% updates, %d%% snapshot size, %d threads) - the paper keeps 2"
        spec.Workload.update_pct spec.Workload.size_pct threads;
    rows =
      List.map
        (fun k ->
          run_stm_config
            ~label:(Printf.sprintf "versions=%d" k)
            ~spec ~threads ~duration ~seed ~profile:A.mixed_profile
            ~versions:k ())
        [ 1; 2; 4 ];
  }

(* E7: the global-version-clock scheme.  GV1 fetch-and-adds the clock
   on every write commit; GV4 "pass on failure" CASes once and adopts
   the winner's value when it loses.  Under the simulator the clock is
   just another shared location, so commit storms (high update ratio,
   many threads) show GV4 absorbing clock traffic — at the price of
   fewer skip-validation fast commits, since an adopted write version
   must always validate. *)
let clock_scheme ?(threads = 64) ?(duration = 150_000) ?(seed = 17) () =
  let rows =
    List.concat_map
      (fun update_pct ->
        let spec =
          { Workload.default_spec with Workload.update_pct; size_pct = 5 }
        in
        List.map
          (fun (name, gv) ->
            run_stm_config
              ~label:(Printf.sprintf "%s @ %d%% updates" name update_pct)
              ~spec ~threads ~duration ~seed ~profile:A.classic_profile ~gv ())
          [ ("gv1 (fetch-and-add)", `Gv1); ("gv4 (pass on failure)", `Gv4) ])
      [ 10; 40 ]
  in
  {
    table_title =
      Printf.sprintf
        "Global clock scheme (classic profile, %d threads): GV1 vs GV4"
        threads;
    rows;
  }

(* TL2 vs NORec under the same workloads (E7/E9 companion): NORec's
   single sequence lock trades per-location metadata traffic for
   whole-read-set value revalidation on every clock change, so it
   shines on read-dominated mixes and degrades as the commit rate —
   and hence the revalidation rate — climbs.  The lock_busy=… column
   is structurally zero for NORec: there are no per-location locks to
   find busy. *)
let algorithm ?(threads = 32) ?(duration = 150_000) ?(seed = 23) () =
  let rows =
    List.concat_map
      (fun update_pct ->
        let spec =
          { Workload.default_spec with Workload.update_pct; size_pct = 5 }
        in
        List.map
          (fun (name, algo) ->
            run_stm_config
              ~label:(Printf.sprintf "%s @ %d%% updates" name update_pct)
              ~spec ~threads ~duration ~seed ~profile:A.classic_profile ~algo
              ())
          [ ("tl2 (per-location locks)", `Tl2); ("norec (sequence lock)", `Norec) ])
      [ 0; 10; 40 ]
  in
  {
    table_title =
      Printf.sprintf
        "Algorithm (classic profile, %d threads): TL2 vs NORec" threads;
    rows;
  }

(* E9 companion: what parking buys over polling.  One producer feeds
   [items] values through an STM queue, one every [gap] virtual ticks;
   [consumers] drain it either by spinning — non-blocking dequeue,
   re-poll one tick later on empty — or by parking, the retry-based
   blocking take behind [Adapters.stm_queue_blocking].  A parked
   consumer charges nothing while it waits (the simulator only
   advances it on a wake), so the steps=… column is the price of
   polling: charged shared-memory accesses that found the queue empty.
   Throughput barely moves — the producer's gap is the bottleneck
   either way — which is exactly the point: parking buys back wasted
   work, not latency. *)
let blocking ?(consumers = 4) ?(items = 400) ?(gap = 25) () =
  let run_mode ~label ~mode ~algo =
    let stm = ref None in
    let completed = ref 0 in
    let (), info =
      Sim.run (fun () ->
          let s = AM.S.create ~algo () in
          stm := Some s;
          let q =
            match mode with
            | `Spin -> AM.stm_queue s
            | `Park -> AM.stm_queue_blocking ~deadline_delta:100_000 s
          in
          let producer () =
            for i = 1 to items do
              Sim.tick gap;
              q.A.enq i
            done;
            (* One poison pill per consumer ends the run cleanly. *)
            for _ = 1 to consumers do
              q.A.enq (-1)
            done
          in
          let consumer () =
            let stop = ref false in
            while not !stop do
              match q.A.deq () with
              | Some v when v >= 0 -> incr completed
              | Some _ -> stop := true
              | None -> (
                  match mode with `Spin -> Sim.tick 1 | `Park -> stop := true)
            done
          in
          R.parallel (producer :: List.init consumers (fun _ -> consumer)))
    in
    let st = AM.S.stats (Option.get !stm) in
    {
      row_label = label;
      row_throughput =
        1000.0 *. float_of_int !completed /. float_of_int info.Sim.makespan;
      row_completed = !completed;
      row_aborts = st.AM.S.aborts;
      row_detail =
        Printf.sprintf
          "steps=%d makespan=%d parks=%d wakes=%d wake_timeouts=%d \
           retry_waits=%d"
          info.Sim.steps info.Sim.makespan st.AM.S.parks st.AM.S.wakes
          st.AM.S.wake_timeouts st.AM.S.retry_waits;
    }
  in
  {
    table_title =
      Printf.sprintf
        "Park vs spin (1 producer every %d ticks, %d blocking consumers, %d \
         items)"
        gap consumers items;
    rows =
      List.concat_map
        (fun (aname, algo) ->
          [
            run_mode ~label:(Printf.sprintf "%s spin (poll every tick)" aname)
              ~mode:`Spin ~algo;
            run_mode ~label:(Printf.sprintf "%s park (retry + wait list)" aname)
              ~mode:`Park ~algo;
          ])
        [ ("tl2", `Tl2); ("norec", `Norec) ];
  }

let all () =
  [
    contention_managers ();
    window_sizes ();
    timestamp_extension ();
    semantics_decomposition ();
    update_sensitivity ();
    version_depth ();
    clock_scheme ();
    algorithm ();
    blocking ();
  ]

let pp_table ppf t =
  Format.fprintf ppf "@.== ABLATION: %s@.@." t.table_title;
  Format.fprintf ppf "%-32s %10s %10s %8s@." "configuration" "ops/ktick"
    "completed" "aborts";
  Format.fprintf ppf "%s@." (String.make 64 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-32s %10.2f %10d %8d@.    %s@." r.row_label
        r.row_throughput r.row_completed r.row_aborts r.row_detail)
    t.rows
