(** Plain-text rendering of figures: a speedup table (threads down,
    systems across), a small ASCII chart per series, an abort-cause
    breakdown for the transactional systems, and the headline claim
    comparison. *)

module T = Polytm_telemetry

let hrule ppf width = Format.fprintf ppf "%s@." (String.make width '-')

let pp_figure ppf (f : Figures.figure) =
  Format.fprintf ppf "@.== %s: %s@." (String.uppercase_ascii f.Figures.fig_id)
    f.Figures.title.Figures.caption;
  Format.fprintf ppf "   paper: %s@.@." f.Figures.title.Figures.paper_claim;
  let labels = List.map (fun s -> s.Figures.series_label) f.Figures.series in
  let col_width =
    List.fold_left (fun acc l -> max acc (String.length l)) 10 labels + 2
  in
  Format.fprintf ppf "%8s" "threads";
  List.iter (fun l -> Format.fprintf ppf " | %*s" col_width l) labels;
  Format.fprintf ppf "@.";
  hrule ppf (8 + ((col_width + 3) * List.length labels));
  let threads =
    match f.Figures.series with
    | [] -> []
    | s :: _ -> List.map (fun p -> p.Figures.threads) s.Figures.points
  in
  List.iter
    (fun t ->
      Format.fprintf ppf "%8d" t;
      List.iter
        (fun s ->
          match
            List.find_opt
              (fun p -> p.Figures.threads = t)
              s.Figures.points
          with
          | Some p -> Format.fprintf ppf " | %*.2f" col_width p.Figures.speedup
          | None -> Format.fprintf ppf " | %*s" col_width "-")
        f.Figures.series;
      Format.fprintf ppf "@.")
    threads;
  Format.fprintf ppf "@.(speedup over the 1-thread sequential list; baseline \
                      throughput %.3f ops/ktick)@."
    f.Figures.baseline_throughput

(* Fixed-height ASCII chart: one line per system, speedup scaled to the
   figure's maximum. *)
let pp_chart ppf (f : Figures.figure) =
  let max_speedup =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun a p -> max a p.Figures.speedup) acc s.Figures.points)
      1e-9 f.Figures.series
  in
  Format.fprintf ppf "@.%s (bar = speedup, full scale %.1fx)@."
    (String.uppercase_ascii f.Figures.fig_id)
    max_speedup;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %s@." s.Figures.series_label;
      List.iter
        (fun p ->
          let bar =
            int_of_float (40. *. p.Figures.speedup /. max_speedup)
          in
          Format.fprintf ppf "  %4d | %s %.2fx%s@." p.Figures.threads
            (String.make (max 0 bar) '#')
            p.Figures.speedup
            (if p.Figures.failed > 0 then
               Printf.sprintf "  (%d ops abandoned)" p.Figures.failed
             else ""))
        s.Figures.points)
    f.Figures.series

(* Compact one-line summary of a run's telemetry totals, for sweep
   output: commits, aborts, retries, and the non-zero causes. *)
let pp_point_telemetry ppf (snap : T.Agg.snapshot) =
  let t = snap.T.Agg.total in
  Format.fprintf ppf "commits=%d aborts=%d retries=%d" t.T.Agg.commits
    t.T.Agg.aborts t.T.Agg.retries;
  List.iter
    (fun (c, n) ->
      if n > 0 then Format.fprintf ppf " %s=%d" (T.cause_label c) n)
    t.T.Agg.aborts_by_cause

(* One row per (system, thread count): total commits and aborts split
   by cause, from the telemetry snapshots the harness attached.  Only
   transactional systems carry telemetry; baselines are skipped. *)
let pp_abort_breakdown ppf (f : Figures.figure) =
  let rows =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun p ->
            Option.map
              (fun snap -> (s.Figures.series_label, p.Figures.threads, snap))
              p.Figures.telemetry)
          s.Figures.points)
      f.Figures.series
  in
  if rows <> [] then begin
    Format.fprintf ppf "@.%s: abort breakdown (transactional systems)@.@."
      (String.uppercase_ascii f.Figures.fig_id);
    Format.fprintf ppf "%-30s %7s %9s %8s" "system" "threads" "commits"
      "aborts";
    List.iter (fun c -> Format.fprintf ppf " %6s" (T.cause_short c)) T.all_causes;
    Format.fprintf ppf " %8s@." "retries";
    hrule ppf (30 + 8 + 10 + 9 + (7 * T.num_causes) + 9);
    List.iter
      (fun (label, threads, snap) ->
        let t = snap.T.Agg.total in
        Format.fprintf ppf "%-30s %7d %9d %8d" label threads t.T.Agg.commits
          t.T.Agg.aborts;
        List.iter
          (fun c -> Format.fprintf ppf " %6d" (T.Agg.abort_count t c))
          T.all_causes;
        Format.fprintf ppf " %8d@." t.T.Agg.retries)
      rows
  end

let pp_claims ppf claims =
  Format.fprintf ppf "@.== Headline ratios: paper vs measured@.@.";
  Format.fprintf ppf "%-55s %10s %10s@." "claim" "paper" "measured";
  hrule ppf 77;
  List.iter
    (fun c ->
      Format.fprintf ppf "%-55s %9.1fx %9.2fx@." c.Figures.claim_label
        c.Figures.paper_value c.Figures.measured)
    claims

(* ---- machine-readable output ------------------------------------------- *)

let figure_json (f : Figures.figure) =
  let open T.Json in
  Obj
    [
      ("id", Str f.Figures.fig_id);
      ("caption", Str f.Figures.title.Figures.caption);
      ("baseline_throughput", Float f.Figures.baseline_throughput);
      ( "series",
        Arr
          (List.map
             (fun s ->
               Obj
                 [
                   ("system", Str s.Figures.series_label);
                   ( "points",
                     Arr
                       (List.map
                          (fun p ->
                            let base =
                              [
                                ("threads", Int p.Figures.threads);
                                ("throughput", Float p.Figures.throughput);
                                ("speedup", Float p.Figures.speedup);
                                ("completed", Int p.Figures.completed);
                                ("failed", Int p.Figures.failed);
                              ]
                            in
                            match p.Figures.telemetry with
                            | None -> Obj base
                            | Some snap ->
                                Obj
                                  (base
                                  @ [
                                      ( "telemetry",
                                        T.Export.snapshot_json snap );
                                    ]))
                          s.Figures.points) );
                 ])
             f.Figures.series) );
    ]

(* The whole benchmark matrix — every figure's points with their abort
   breakdowns, plus the headline claims — as one JSON document
   ([bench/main.exe --json FILE]). *)
let matrix_json (m : Figures.matrix) =
  let open T.Json in
  Obj
    [
      ( "figures",
        Arr
          (List.map figure_json
             [ Figures.fig5_of m; Figures.fig7_of m; Figures.fig9_of m ]) );
      ( "claims",
        Arr
          (List.map
             (fun c ->
               Obj
                 [
                   ("claim", Str c.Figures.claim_label);
                   ("paper", Float c.Figures.paper_value);
                   ("measured", Float c.Figures.measured);
                 ])
             (Figures.claims m)) );
    ]

let pp_fig4 ppf () =
  let r = Polytm_history.Program.fig4 () in
  Format.fprintf ppf
    "@.== FIG4: proportion of correct linked-list schedules precluded by \
     opacity@.@.";
  Format.fprintf ppf "   programs: Pt = tx{r(x) r(y) r(z)}, P1 = tx{w(x)}, \
                      P2 = tx{w(z)}@.@.";
  Format.fprintf ppf "   total interleavings          %4d   (paper: 20)@."
    r.Polytm_history.Program.schedules;
  Format.fprintf ppf "   accepted by opacity          %4d   (paper: 16)@."
    r.Polytm_history.Program.accepted_by_opacity;
  Format.fprintf ppf "   precluded                    %4d   (paper: 4)@."
    r.Polytm_history.Program.precluded;
  Format.fprintf ppf "   precluded ratio             %4.0f%%   (paper: 20%%)@."
    (100. *. r.Polytm_history.Program.precluded_ratio);
  Format.fprintf ppf
    "@.   note: the paper's own preclusion rule (Pt<P1, P1<P2, P2<Pt) is@.\
    \   satisfied by exactly 3 of the 20 interleavings; both the conflict-@.\
    \   graph checker and the brute-force checker agree on 3/20 = 15%%.@.\
    \   See EXPERIMENTS.md (E1) for the placement analysis.@.";
  let a =
    Polytm_history.Program.count_accepted
      [
        Polytm_history.Program.elastic 0
          [ Polytm_history.History.Read 0; Read 1; Read 2 ];
        Polytm_history.Program.classic 1 [ Polytm_history.History.Write 0 ];
        Polytm_history.Program.classic 2 [ Polytm_history.History.Write 2 ];
      ]
  in
  Format.fprintf ppf
    "@.   with Pt elastic instead: %d/%d schedules accepted — elasticity@.\
    \   recovers every correct schedule of this workload.@."
    a.Polytm_history.Program.elastic_opaque a.Polytm_history.Program.total
