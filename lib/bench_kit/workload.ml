(** Workload generation for the collection benchmark.

    The paper's setting (Sections 3.3, 4.3, 5.2): a collection of 2^12
    elements with [contains], [add], [remove] and [size], “with an
    update and a size ratio of 10% each” — i.e. 10% updates (split
    evenly between add and remove so the size stays near its initial
    value), 10% size, 80% contains.  Keys are drawn uniformly from a
    range twice the initial cardinality; the prefill inserts every
    even key, so adds and removes hit present and absent keys with
    equal probability. *)

type op = Contains of int | Add of int | Remove of int | Size

type spec = {
  initial_size : int;  (** elements prefilled (paper: 4096) *)
  key_range : int;  (** keys drawn from [0, key_range) *)
  update_pct : int;  (** percentage of add+remove operations *)
  size_pct : int;  (** percentage of size operations *)
}

let paper_spec =
  { initial_size = 4096; key_range = 8192; update_pct = 10; size_pct = 10 }

(** Scaled-down default keeping the paper's ratios: 2^10 elements. *)
let default_spec =
  { initial_size = 1024; key_range = 2048; update_pct = 10; size_pct = 10 }

let spec_of_size n =
  { default_spec with initial_size = n; key_range = 2 * n }

let prefill_keys spec = List.init spec.initial_size (fun i -> 2 * i)

let next_op spec rng =
  let d = Polytm_util.Rng.int rng 100 in
  if d < spec.size_pct then Size
  else if d < spec.size_pct + spec.update_pct then
    let key = Polytm_util.Rng.int rng spec.key_range in
    if Polytm_util.Rng.bool rng then Add key else Remove key
  else Contains (Polytm_util.Rng.int rng spec.key_range)

let pp_op ppf = function
  | Contains k -> Format.fprintf ppf "contains(%d)" k
  | Add k -> Format.fprintf ppf "add(%d)" k
  | Remove k -> Format.fprintf ppf "remove(%d)" k
  | Size -> Format.fprintf ppf "size()"
