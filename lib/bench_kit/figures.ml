(** Reproduction of the paper's data figures.

    Figure 4 is the schedule-enumeration result (delegated to
    {!Polytm_history.Program}); Figures 5, 7 and 9 are the collection
    benchmark sweeps.  All three throughput figures share the same
    workload and differ only in which systems they plot, so {!run_all}
    executes the full matrix once and the figure builders slice it. *)

module A = Polytm_structs.Adapters
module AM = Polytm_structs.Adapters.Make (Polytm_runtime.Sim_runtime)
module T = Polytm_telemetry

(** Which transactional search structure backs the STM systems.  The
    paper benchmarks the linked list; the hash and skip-list variants
    are extra explorations (operations are O(n/buckets) and O(log n),
    so their absolute speedups over the sequential *list* baseline run
    higher — the interesting part is how the semantics mix behaves on
    different conflict footprints). *)
type structure = List_structure | Hash_structure | Skiplist_structure

let structure_name = function
  | List_structure -> "list"
  | Hash_structure -> "hash"
  | Skiplist_structure -> "skiplist"

type params = {
  spec : Workload.spec;
  duration : int;  (** virtual ticks per run *)
  threads_list : int list;
  seed : int;
  cores : int;  (** effective hardware parallelism (see {!Harness}) *)
  structure : structure;
}

let default_params =
  {
    spec = Workload.default_spec;
    duration = 300_000;
    threads_list = [ 1; 2; 4; 8; 16; 32; 64 ];
    seed = 42;
    cores = 16;
    structure = List_structure;
  }

let paper_params =
  {
    default_params with
    spec = Workload.paper_spec;
    duration = 1_000_000;
  }

(* ---- systems ---------------------------------------------------------- *)

type system = {
  sys_label : string;
  make : unit -> A.set * (exn -> bool) * (unit -> T.Agg.snapshot option);
}

let plain make_set =
  fun () -> (make_set (), (fun _ -> false), fun () -> None)

let seq_system = { sys_label = "sequential"; make = plain AM.seq }

let collection_system =
  { sys_label = "concurrent collection (COW)"; make = plain AM.cow }

(* STM transactions abandoned after [max_attempts] retries surface as
   Too_many_attempts; the harness counts the operation as failed and
   moves on, mimicking the paper's forever-retrying size operations
   without hanging the run. *)
let stm_system ?(structure = List_structure) ?(extend_on_stale = true) ?trace
    sys_label profile =
  {
    sys_label;
    make =
      (fun () ->
        let stm = AM.S.create ~max_attempts:200 ~extend_on_stale () in
        (* Streaming aggregation sink: per-site commit/abort/retry
           counters, no event storage.  Emission is uncharged under the
           simulator, so installing it does not perturb the measured
           virtual time.  [trace] additionally records the full event
           stream (for Chrome-trace export). *)
        let agg = T.Agg.create () in
        let sink =
          match trace with
          | None -> T.Agg.sink agg
          | Some r -> T.fan_out [ T.Agg.sink agg; T.Recorder.sink r ]
        in
        AM.S.set_sink stm (Some sink);
        let set =
          match structure with
          | List_structure -> AM.stm_list ~profile stm
          | Hash_structure -> AM.stm_hash ~profile stm
          | Skiplist_structure -> AM.stm_skiplist ~profile stm
        in
        ( set,
          (function AM.S.Too_many_attempts _ -> true | _ -> false),
          fun () -> Some (T.Agg.snapshot agg) ));
  }

(* The paper's comparator is plain TL2, which has no timestamp
   extension: stale reads abort.  The relaxed systems keep their own
   mechanisms (cuts, multiversion reads). *)
let classic_system_of ?trace structure =
  stm_system ?trace ~structure ~extend_on_stale:false
    "classic transactions (TL2)" A.classic_profile

let elastic_system_of ?trace structure =
  stm_system ?trace ~structure "elastic + classic transactions"
    A.elastic_classic_profile

let mixed_system_of ?trace structure =
  stm_system ?trace ~structure "mixed (elastic + snapshot)" A.mixed_profile

let classic_system = classic_system_of List_structure
let elastic_system = elastic_system_of List_structure
let mixed_system = mixed_system_of List_structure

(* ---- sweeping --------------------------------------------------------- *)

type point = {
  threads : int;
  throughput : float;
  speedup : float;  (** normalised over the sequential baseline *)
  completed : int;
  failed : int;
  latency : Polytm_util.Stats.Hist.t;
      (** per-operation virtual-tick latency distribution *)
  telemetry : T.Agg.snapshot option;
}

type series = { series_label : string; points : point list }

type figure = {
  fig_id : string;
  title : title_info;
  series : series list;
  baseline_throughput : float;
}

and title_info = { caption : string; paper_claim : string }

let sequential_baseline p =
  let r =
    Harness.run ~cores:p.cores ~make:seq_system.make ~spec:p.spec ~threads:1
      ~duration:p.duration ~seed:p.seed ()
  in
  r.Harness.throughput

let run_series ?(progress = fun _ -> ()) p ~baseline sys =
  let points =
    List.map
      (fun threads ->
        progress (Printf.sprintf "%s @ %d threads" sys.sys_label threads);
        let r =
          Harness.run ~cores:p.cores ~label:sys.sys_label ~make:sys.make
            ~spec:p.spec ~threads ~duration:p.duration ~seed:(p.seed + threads)
            ()
        in
        {
          threads;
          throughput = r.Harness.throughput;
          speedup = r.Harness.throughput /. baseline;
          completed = r.Harness.completed;
          failed = r.Harness.failed;
          latency = r.Harness.latency;
          telemetry = r.Harness.telemetry;
        })
      p.threads_list
  in
  { series_label = sys.sys_label; points }

type matrix = {
  params : params;
  baseline : float;
  classic : series;
  collection : series;
  elastic : series;
  mixed : series;
}

let run_all ?(progress = fun _ -> ()) p =
  let baseline = sequential_baseline p in
  let sweep sys = run_series ~progress p ~baseline sys in
  {
    params = p;
    baseline;
    classic = sweep (classic_system_of p.structure);
    collection = sweep collection_system;
    elastic = sweep (elastic_system_of p.structure);
    mixed = sweep (mixed_system_of p.structure);
  }

(* ---- figures ---------------------------------------------------------- *)

let fig5_of m =
  {
    fig_id = "fig5";
    title =
      {
        caption =
          "Throughput (normalised over sequential) of classic transactions \
           and the existing concurrent collection";
        paper_claim =
          "the existing collection performs ~2.2x faster than classic \
           transactions on 64 threads";
      };
    series = [ m.classic; m.collection ];
    baseline_throughput = m.baseline;
  }

let fig7_of m =
  {
    fig_id = "fig7";
    title =
      {
        caption =
          "Throughput (normalised over sequential) of elastic+classic \
           transactions, classic transactions alone, and the concurrent \
           collection";
        paper_claim =
          "elastic+classic peaks ~3.5x above classic alone and ~1.6x above \
           the collection, but degrades between 32 and 64 threads because \
           the classic size keeps aborting";
      };
    series = [ m.classic; m.collection; m.elastic ];
    baseline_throughput = m.baseline;
  }

let fig9_of m =
  {
    fig_id = "fig9";
    title =
      {
        caption =
          "Throughput (normalised over sequential) of the mixed transactions \
           (elastic parses + snapshot size), classic transactions and the \
           collection";
        paper_claim =
          "the mixed model runs ~4.3x faster than classic and ~1.9x above \
           the collection on 64 threads, and keeps scaling to the maximum \
           thread count";
      };
    series = [ m.classic; m.collection; m.mixed ];
    baseline_throughput = m.baseline;
  }

let fig5 ?progress p = fig5_of (run_all ?progress p)
let fig7 ?progress p = fig7_of (run_all ?progress p)
let fig9 ?progress p = fig9_of (run_all ?progress p)

(* ---- headline ratios (Section 3.3 / 4.3 / 5.2 claims) ------------------ *)

type claim = {
  claim_label : string;
  paper_value : float;
  measured : float;
}

let speedup_at s threads =
  match List.find_opt (fun pt -> pt.threads = threads) s.points with
  | Some pt -> pt.speedup
  | None -> nan

let peak s = List.fold_left (fun acc pt -> max acc pt.speedup) 0. s.points

let claims m =
  let top = List.fold_left max 1 m.params.threads_list in
  let at s = speedup_at s top in
  [
    {
      claim_label =
        Printf.sprintf "Fig.5: collection / classic at %d threads" top;
      paper_value = 2.2;
      measured = at m.collection /. at m.classic;
    };
    {
      claim_label = "Fig.7: peak elastic+classic / peak classic";
      paper_value = 3.5;
      measured = peak m.elastic /. peak m.classic;
    };
    {
      claim_label = "Fig.7: peak elastic+classic / peak collection";
      paper_value = 1.6;
      measured = peak m.elastic /. peak m.collection;
    };
    {
      claim_label = Printf.sprintf "Fig.9: mixed / classic at %d threads" top;
      paper_value = 4.3;
      measured = at m.mixed /. at m.classic;
    };
    {
      claim_label = Printf.sprintf "Fig.9: mixed / collection at %d threads" top;
      paper_value = 1.9;
      measured = at m.mixed /. at m.collection;
    };
  ]
