(** Virtual-time throughput harness.

    A run prefs a set implementation (uncharged, outside the timed
    section), then lets [threads] virtual threads execute workload
    operations until the virtual clock reaches [duration].  The
    simulator's event policy models the threads as truly parallel
    (DESIGN.md, substitution S1), so

      throughput = completed operations / duration

    plays the role of the paper's operations-per-second, and the
    figures report it normalised by the sequential baseline measured
    the same way (one thread, unsynchronised list).

    {b Hardware parallelism cap.}  The simulator gives every virtual
    thread its own full-speed processor, but the paper's Niagara 2 has
    64 hardware {e contexts} over 8 cores: beyond the machine's
    effective parallelism, threads share pipelines.  The harness
    applies Brent's bound — makespan >= total work / P — by dividing
    throughput at T threads by [max 1 (T / cores)].  [cores] models
    the effective parallel units (default 16: 8 cores whose
    fine-grained multithreading roughly doubles memory-bound
    utilisation). *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module A = Polytm_structs.Adapters

type result = {
  label : string;
  threads : int;
  completed : int;  (** operations that finished *)
  failed : int;  (** operations abandoned after too many aborts *)
  duration : int;  (** virtual ticks *)
  throughput : float;  (** completed ops per 1000 ticks *)
  steps : int;  (** charged shared-memory accesses *)
  latency : Polytm_util.Stats.Hist.t;
      (** per-operation completion latency in virtual ticks (abandoned
          operations excluded), shared log-bucketed histogram — the
          same accumulator [tmload] uses for wire latencies *)
  telemetry : Polytm_telemetry.Agg.snapshot option;
      (** per-site commit/abort breakdown when the implementation is
          transactional (the system installed an {!Polytm_telemetry.Agg}
          sink); [None] for the baselines *)
}

(* [make ()] returns the set, a predicate recognising the exception an
   abandoned operation raises (retry budget exhausted), and a thunk
   producing the telemetry snapshot of the run. *)
let run ?(label = "") ?(cores = 16) ~make ~spec ~threads ~duration ~seed () =
  let set, too_many_attempts, telemetry = make () in
  let label = if label = "" then set.A.name else label in
  List.iter (fun k -> ignore (set.A.add k)) (Workload.prefill_keys spec);
  let completed = ref 0 and failed = ref 0 in
  (* Single accumulator: the simulator interleaves virtual threads on
     one real thread, so unsynchronised recording is safe.  [Sim.now]
     is an uncharged clock read — sampling it cannot perturb the
     schedule, so the goldens stay byte-identical. *)
  let latency = Polytm_util.Stats.Hist.create () in
  let master = Polytm_util.Rng.create seed in
  let rngs = List.init threads (fun _ -> Polytm_util.Rng.split master) in
  let (), info =
    Sim.run (fun () ->
        let body rng () =
          while Sim.now () < duration do
            match Workload.next_op spec rng with
            | op -> (
                let t0 = Sim.now () in
                match
                  match op with
                  | Workload.Contains k -> ignore (set.A.contains k)
                  | Workload.Add k -> ignore (set.A.add k)
                  | Workload.Remove k -> ignore (set.A.remove k)
                  | Workload.Size -> ignore (set.A.size ())
                with
                | () ->
                    incr completed;
                    Polytm_util.Stats.Hist.record latency (Sim.now () - t0)
                | exception e when too_many_attempts e -> incr failed)
          done
        in
        R.parallel (List.map (fun rng -> body rng) rngs))
  in
  (* Brent's bound: with T threads all busy until [duration], the
     total work is T * duration; on [cores] parallel units it cannot
     complete faster than work / cores. *)
  let slowdown = max 1.0 (float_of_int threads /. float_of_int cores) in
  let wall = float_of_int duration *. slowdown in
  {
    label;
    threads;
    completed = !completed;
    failed = !failed;
    duration;
    throughput = 1000.0 *. float_of_int !completed /. wall;
    steps = info.Sim.steps;
    latency;
    telemetry = telemetry ();
  }
