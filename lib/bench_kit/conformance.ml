(** Cross-runtime conformance stress harness.

    The benchmark harness measures {e how fast} the collections run;
    this module checks {e that they are collections at all}: every
    implementation — STM structures under the paper's mixed-semantics
    profiles, the boosted set, the lock-based and lock-free baselines —
    is driven by seeded randomized concurrent workloads through the
    recording adapters ({!Polytm_structs.Adapters.Make.record_set}) and
    the resulting operation histories are fed to the structure-level
    checker ({!Polytm_history.Linearizability}).

    Rounds alternate between a {e mixed} workload (the paper's
    contains/add/remove/size mix, scaled down so histories stay
    checkable) and a {e churn} workload engineered to expose non-atomic
    [size]: movers migrate elements from low to high keys while a
    reader keeps asking for the cardinality, so a traversal count can
    observe an element at both its old and its new position — a value
    no instantaneous state ever had, which interval consistency
    rejects.  The genuinely non-atomic sizes (lazy and lock-free
    lists, whose traversals are unsynchronised and can be overtaken)
    are exercised without [size] operations; the pseudo-implementation
    ["buggy-lazy-size"] deliberately claims the lazy list's traversal
    count is atomic and must be rejected — the standing self-test that
    the checker has teeth.

    A finding the harness itself produced: the hand-over-hand list's
    [size], despite being a traversal count, {e is} linearizable.
    Every operation first takes the head sentinel's lock, and lock
    coupling prevents any traversal from overtaking another, so
    operations drain through the list in head-acquisition order — the
    count equals the cardinality at the instant the sweep left the
    head.  It is therefore checked with [size] enabled, churn rounds
    included.  The folklore “traversal counts are not atomic” needs
    traversals that can be overtaken.

    Every failure reproduces from its printed seed: the same
    [(impl, seed, iteration)] triple regenerates both the workload and
    (under the simulator's [Random_sched]) the exact interleaving. *)

module Lin = Polytm_history.Linearizability
module Ad = Polytm_structs.Adapters
module Rng = Polytm_util.Rng

let default_impls =
  [
    "stm-list";
    "stm-hash";
    "stm-skiplist";
    "sharded-map";
    "sharded-hash";
    "sharded-queue";
    "boosted-set";
    "coarse-lock-list";
    "cow-array-set";
    "hand-over-hand-list";
    "lazy-list";
    "lock-free-list";
    "stm-queue";
    "stm-queue-blocking";
    "stm-stack";
    "treiber-stack";
  ]

let all_impls = default_impls @ [ "buggy-lazy-size"; "buggy-norec-validation" ]

let algo_name = function `Tl2 -> "tl2" | `Norec -> "norec"

(* Churn-round geometry: [churn_keys] elements migrate one way from a
   low band (k) to a high band (k + churn_band), across a static
   middle band of [churn_middle] untouched keys that stretches the
   traversal window between the two.  A traversal-count size that sees
   a key at its low position, then sees its migrated copy at the high
   position, reports a cardinality no instant ever had: the migration
   is one-way, so at every instant at most [churn_keys] of the 2 *
   [churn_keys] band slots can possibly be occupied. *)
let churn_keys = 8

let churn_middle = 24

let churn_band = 100

type outcome = Pass of int  (** rounds run *) | Fail of string

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  module AM = Polytm_structs.Adapters.Make (R)

  type made =
    | Set_impl of Ad.set * bool  (** size claimed atomic *)
    | Queue_impl of
        Ad.queue * (unit -> (Lin.queue_op, Lin.queue_res) Lin.event list)
    | Stack_impl of
        Ad.stack * (unit -> (Lin.stack_op, Lin.stack_res) Lin.event list)

  (* [cm] parameterizes the STM-backed structures' contention manager:
     the liveness stress rounds re-run the same workloads under
     [Contention.default_adaptive] (kills, escalations, serial
     fallbacks) and must still produce linearizable histories.
     [algo] selects the ownership/validation policy backing the STM
     structures, so every structure × runtime cell of the matrix runs
     under both TL2 and NOrec.  Baseline structures have neither and
     ignore both. *)
  let build ?cm ?algo name =
    let set ?(atomic_size = true) s = Set_impl (s, atomic_size) in
    let stm () = AM.S.create ?cm ?algo () in
    match name with
    | "stm-list" -> set (AM.stm_list ~profile:Ad.mixed_profile (stm ()))
    | "stm-hash" -> set (AM.stm_hash ~profile:Ad.mixed_profile (stm ()))
    | "stm-skiplist" ->
        set (AM.stm_skiplist ~profile:Ad.mixed_profile (stm ()))
    | "sharded-map" ->
        (* Keyspace partitioned across 8 per-shard instances: point
           ops route to owners, [size] is a cross-shard snapshot — the
           churn rounds hammer exactly the bound-vector protocol. *)
        set
          (AM.sharded_map ~profile:Ad.mixed_profile ~shards:8 (fun _ ->
               stm ()))
    | "sharded-hash" ->
        set
          (AM.sharded_hash ~profile:Ad.mixed_profile ~shards:8 (fun _ ->
               stm ()))
    | "boosted-set" -> set (AM.boosted (stm ()))
    | "coarse-lock-list" -> set (AM.coarse ())
    | "cow-array-set" -> set (AM.cow ())
    | "hand-over-hand-list" ->
        (* Lock-coupled size is a traversal count yet linearizable:
           every op serialises on the head sentinel's lock and can
           never be overtaken, so the count is the cardinality at the
           instant the sweep left the head. *)
        set (AM.hand_over_hand ())
    | "lazy-list" -> set ~atomic_size:false (AM.lazy_list ())
    | "lock-free-list" -> set ~atomic_size:false (AM.lockfree ())
    | "buggy-norec-validation" ->
        (* The second standing self-test, this one aimed at the STM
           layer itself: a NOrec backend whose revalidation skips the
           value comparison.  A transaction whose commit CAS loses
           adopts the new timestamp without checking its reads, then
           commits values computed from state another transaction
           already overwrote — classic lost updates.  The harness must
           reject it with a minimal counterexample, proving the
           differential battery would catch a broken validation. *)
        set
          (AM.stm_list ~profile:Ad.mixed_profile
             (AM.S.create ?cm ~algo:`Norec ~unsafe_skip_validation:true ()))
    | "buggy-lazy-size" ->
        (* The deliberate bug: the lazy list's unsynchronised traversal
           count passed off as an atomic size.  Unlike hand-over-hand,
           lazy traversals hold no locks and updates overtake them
           freely, so a churning element really can be counted at both
           its old and its new position. *)
        set ~atomic_size:true (AM.lazy_list ())
    | "stm-queue" ->
        let q, events = AM.record_queue (AM.stm_queue (stm ())) in
        Queue_impl (q, events)
    | "sharded-queue" ->
        (* Pinned whole to its key's owner shard: FIFO order cannot be
           hash-partitioned, so the history must be indistinguishable
           from a single-instance queue's. *)
        let q, events =
          AM.record_queue (AM.sharded_queue ~shards:8 (fun _ -> stm ()))
        in
        Queue_impl (q, events)
    | "stm-queue-blocking" ->
        (* Consumers park on empty instead of returning [None]
           immediately; the deadline (virtual ticks under the
           simulator, nanoseconds under domains) turns an
           unreplenished queue into a [None] rather than a hang, so
           drained workloads terminate.  The histories must be
           indistinguishable from the spinning queue's. *)
        let deadline_delta = if R.name = "sim" then 2_000 else 20_000_000 in
        let q, events =
          AM.record_queue (AM.stm_queue_blocking ~deadline_delta (stm ()))
        in
        Queue_impl (q, events)
    | "stm-stack" ->
        let s, events = AM.record_stack (AM.stm_stack (stm ())) in
        Stack_impl (s, events)
    | "treiber-stack" ->
        let s, events = AM.record_stack (AM.treiber ()) in
        Stack_impl (s, events)
    | other ->
        invalid_arg
          (Printf.sprintf "unknown implementation %S; known: %s" other
             (String.concat ", " all_impls))

  (* An operation abandoned because its transaction exhausted its retry
     budget had no effect and produced no response: skip it. *)
  let attempt f = try f () with AM.S.Too_many_attempts _ -> ()

  let set_spec_small atomic_size =
    {
      Workload.initial_size = 8;
      key_range = 16;
      update_pct = 40;
      size_pct = (if atomic_size then 10 else 0);
    }

  let mixed_set_workers ~threads ~ops ~seed ~atomic_size (set : Ad.set) =
    let spec = set_spec_small atomic_size in
    List.init threads (fun t () ->
        let rng = Rng.create ((seed * 31) + t + 1) in
        for _ = 1 to ops do
          attempt (fun () ->
              match Workload.next_op spec rng with
              | Workload.Contains k -> ignore (set.Ad.contains k)
              | Workload.Add k -> ignore (set.Ad.add k)
              | Workload.Remove k -> ignore (set.Ad.remove k)
              | Workload.Size -> ignore (set.Ad.size ()))
        done)

  (* The migration is strictly one-way (low key [i] dies, high key
     [churn_band + i] is born, never the reverse), so at every instant
     each (low, high) pair contributes at most one possible member.  A
     traversal that counts some pair at both positions therefore
     exceeds the possible cardinality of every instant — had the
     movers restored keys afterwards, the re-added low keys would be
     possibly-present again late in the size interval and mask the
     inflation. *)
  let churn_set_workers ~seed:_ (set : Ad.set) =
    let sizer () =
      for _ = 1 to 6 do
        attempt (fun () -> ignore (set.Ad.size ()))
      done
    in
    let mover parity () =
      for i = 0 to churn_keys - 1 do
        if i mod 2 = parity then begin
          attempt (fun () -> ignore (set.Ad.remove i));
          attempt (fun () -> ignore (set.Ad.add (churn_band + i)))
        end
      done
    in
    [ sizer; mover 0; mover 1 ]

  let render_generic pp events =
    Format.asprintf "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf e ->
           Format.fprintf ppf "    %a" pp e))
      events

  let check_generic spec pp events =
    match Lin.witness spec events with
    | Some _ -> Ok ()
    | None ->
        let still_fails evs = Lin.witness spec evs = None in
        let minimal =
          Lin.shrink ~keep:(fun _ -> false) ~still_fails events
        in
        Error
          (Printf.sprintf
             "NOT linearizable: no valid linearization\n\
             \  minimal counterexample history:\n%s"
             (render_generic pp minimal))

  let queue_workers ~threads ~ops ~seed (q : Ad.queue) =
    List.init threads (fun t () ->
        let rng = Rng.create ((seed * 37) + t + 1) in
        for i = 1 to ops do
          attempt (fun () ->
              if Rng.int rng 100 < 55 then q.Ad.enq ((t * 1000) + i)
              else ignore (q.Ad.deq ()))
        done)

  let stack_workers ~threads ~ops ~seed (s : Ad.stack) =
    List.init threads (fun t () ->
        let rng = Rng.create ((seed * 41) + t + 1) in
        for i = 1 to ops do
          attempt (fun () ->
              if Rng.int rng 100 < 55 then s.Ad.push ((t * 1000) + i)
              else ignore (s.Ad.pop ()))
        done)

  (* One conformance round: build a fresh structure, prefill the raw
     structure (prefill is sequential, so it goes into the checker's
     [init] rather than the recorded history — histories stay small and
     counterexamples only show the concurrent phase), wrap it in the
     recording adapter, run the workers (under [wrap], which the
     simulator driver uses to pin the scheduling seed), and check the
     recorded history. *)
  let run_round ?cm ?algo ~wrap ~name ~threads ~ops ~seed ~round () =
    match build ?cm ?algo name with
    | Set_impl (raw, atomic_size) ->
        let churn = atomic_size && round mod 2 = 1 in
        let prefill =
          if churn then
            (* Low band plus static middle-band ballast: the ballast
               lengthens the stretch of list a traversal crosses after
               the low keys and before the high keys, widening the
               window in which a migration can be double-counted. *)
            List.init churn_keys Fun.id
            @ List.init churn_middle (fun k -> churn_keys + k)
          else Workload.prefill_keys (set_spec_small atomic_size)
        in
        List.iter (fun k -> ignore (raw.Ad.add k)) prefill;
        let set, events = AM.record_set raw in
        if churn then wrap (fun () -> R.parallel (churn_set_workers ~seed set))
        else
          wrap (fun () ->
              R.parallel (mixed_set_workers ~threads ~ops ~seed ~atomic_size set));
        (match Lin.check_set ~init:prefill (events ()) with
        | Lin.Linearizable -> Ok ()
        | Lin.Violation _ as v -> Error (Format.asprintf "%a" Lin.pp_verdict v))
    | Queue_impl (q, events) ->
        for i = 1 to 2 do
          q.Ad.enq (-i)
        done;
        wrap (fun () -> R.parallel (queue_workers ~threads ~ops ~seed q));
        check_generic Lin.queue_spec Lin.pp_queue_event (events ())
    | Stack_impl (s, events) ->
        for i = 1 to 2 do
          s.Ad.push (-i)
        done;
        wrap (fun () -> R.parallel (stack_workers ~threads ~ops ~seed s));
        check_generic Lin.stack_spec Lin.pp_stack_event (events ())

  let run_impl ?(threads = 3) ?(ops = 10) ?(wrap = fun _seed f -> f ()) ?cm
      ?(algo = `Tl2) ~name ~seed ~iters () =
    let rec loop i =
      if i >= iters then Pass i
      else begin
        let round_seed = seed + (997 * i) in
        match
          run_round ?cm ~algo ~wrap:(wrap round_seed) ~name ~threads ~ops
            ~seed:round_seed ~round:i ()
        with
        | Ok () -> loop (i + 1)
        | Error msg ->
            Fail
              (Printf.sprintf
                 "conformance failure: impl %s, algo %s, iteration %d, seed %d\n\
                  reproduce: tmcheck conformance --impl %s --algo %s --seed \
                  %d --iters %d\n\
                  %s"
                 name (algo_name algo) i round_seed name (algo_name algo) seed
                 (i + 1) msg)
      end
    in
    loop 0
end

(** Prebuilt drivers for the two runtimes. *)

module Sim_conf = Make (Polytm_runtime.Sim_runtime)
module Domain_conf = Make (Polytm_runtime.Domain_runtime)

let sim_wrap seed f =
  ignore
    (Polytm_runtime.Sim.run ~policy:(Polytm_runtime.Sim.Random_sched seed) f)

let run_sim ?threads ?ops ?cm ?algo ~name ~seed ~iters () =
  Sim_conf.run_impl ?threads ?ops ~wrap:sim_wrap ?cm ?algo ~name ~seed ~iters ()

let run_domains ?threads ?ops ?cm ?algo ~name ~seed ~iters () =
  Domain_conf.run_impl ?threads ?ops ?cm ?algo ~name ~seed ~iters ()
