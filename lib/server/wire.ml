(* Pure codec for the polytmd wire protocol.  See wire.mli for the
   grammar.  No I/O, no sockets: Buffers in, byte slices out. *)

type kind = Kmap | Kset | Kqueue

let kind_to_string = function Kmap -> "map" | Kset -> "set" | Kqueue -> "queue"

let kind_of_string = function
  | "map" -> Some Kmap
  | "set" -> Some Kset
  | "queue" -> Some Kqueue
  | _ -> None

type cmd =
  | Ping
  | New of kind * string
  | Get of string * int
  | Put of string * int * string
  | Del of string * int
  | Contains of string * int
  | Add of string * int
  | Remove of string * int
  | Size of string
  | Snapshot_iter of string
  | Enq of string * string
  | Deq of string
  | Blpop of string * int
  | Btake of string * int
  | Watch of string
  | Unwatch of string
  | Multi
  | Multi_end
  | Info
  | Bgsave
  | Lastsave
  | Debug_abort of { budget : int option; deadline_us : int option }

type request = { hint : Polytm.Semantics.t option; cmd : cmd }

let cmd_name = function
  | Ping -> "PING"
  | New _ -> "NEW"
  | Get _ -> "GET"
  | Put _ -> "PUT"
  | Del _ -> "DEL"
  | Contains _ -> "CONTAINS"
  | Add _ -> "ADD"
  | Remove _ -> "REMOVE"
  | Size _ -> "SIZE"
  | Snapshot_iter _ -> "SNAPSHOT-ITER"
  | Enq _ -> "ENQ"
  | Deq _ -> "DEQ"
  | Blpop _ -> "BLPOP"
  | Btake _ -> "BTAKE"
  | Watch _ -> "WATCH"
  | Unwatch _ -> "UNWATCH"
  | Multi -> "MULTI"
  | Multi_end -> "MULTI-END"
  | Info -> "INFO"
  | Bgsave -> "BGSAVE"
  | Lastsave -> "LASTSAVE"
  | Debug_abort _ -> "DEBUG-ABORT"

(* Commands the durability layer must log: everything that can change
   a structure's contents.  [Deq]/[Blpop]/[Btake] are conditional
   mutations — a pop of an empty queue commits read-only and the
   commit hook never fires, so arming them is harmless. *)
let is_mutation = function
  | Put _ | Del _ | Add _ | Remove _ | Enq _ | Deq _ | Blpop _ | Btake _ ->
      true
  | Ping | New _ | Get _ | Contains _ | Size _ | Snapshot_iter _ | Watch _
  | Unwatch _ | Multi | Multi_end | Info | Bgsave | Lastsave
  | Debug_abort _ ->
      false

type err_code =
  | Proto
  | Busy
  | Deadline
  | Exhausted
  | No_struct
  | Bad_op
  | Sem_violation

let err_code_to_string = function
  | Proto -> "ERR"
  | Busy -> "BUSY"
  | Deadline -> "DEADLINE"
  | Exhausted -> "EXHAUSTED"
  | No_struct -> "NOSTRUCT"
  | Bad_op -> "BADOP"
  | Sem_violation -> "SEM"

let err_code_of_string = function
  | "ERR" -> Some Proto
  | "BUSY" -> Some Busy
  | "DEADLINE" -> Some Deadline
  | "EXHAUSTED" -> Some Exhausted
  | "NOSTRUCT" -> Some No_struct
  | "BADOP" -> Some Bad_op
  | "SEM" -> Some Sem_violation
  | _ -> None

type response =
  | Simple of string
  | Int of int
  | Bulk of string
  | Nil
  | Error of err_code * string
  | Array of response list
  | Push of string

let ok = Simple "OK"
let pong = Simple "PONG"
let queued = Simple "QUEUED"

(* ---- output buffer ------------------------------------------------------ *)

(* A grow-only byte sink for the reply path.  Unlike [Buffer.t] it
   exposes its backing store, so a session can hand the pending region
   straight to [Unix.write] — no [Buffer.contents] copy, no per-frame
   string.  [start] tracks the flushed prefix: a partial write just
   advances it, and the buffer resets to offset 0 once drained. *)
module Obuf = struct
  type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

  let create ?(initial = 4096) () =
    { buf = Bytes.create initial; start = 0; len = 0 }

  let clear t =
    t.start <- 0;
    t.len <- 0

  let length t = t.len
  let pending t = t.len - t.start

  let contents t = Bytes.sub_string t.buf t.start (t.len - t.start)

  (* The pending region, for the caller's own [write]. *)
  let peek t = (t.buf, t.start, t.len - t.start)

  (* [n] pending bytes were written out. *)
  let consumed t n =
    t.start <- t.start + n;
    if t.start = t.len then begin
      t.start <- 0;
      t.len <- 0
    end

  let reserve t n =
    let need = t.len + n in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while need > !cap do
        cap := !cap * 2
      done;
      let dst = Bytes.create !cap in
      Bytes.blit t.buf 0 dst 0 t.len;
      t.buf <- dst
    end

  let add_char t c =
    reserve t 1;
    Bytes.unsafe_set t.buf t.len c;
    t.len <- t.len + 1

  let add_string t s =
    let n = String.length s in
    reserve t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let add_obuf t (src : t) =
    reserve t src.len;
    Bytes.blit src.buf 0 t.buf t.len src.len;
    t.len <- t.len + src.len
end

(* ---- encoding ---------------------------------------------------------- *)

let digits n =
  (* Decimal width of a non-negative int. *)
  let rec go acc n = if n < 10 then acc else go (acc + 1) (n / 10) in
  go 1 (if n < 0 then 0 else n)

(* Decimal width of any int, sign included. *)
let int_width n = if n < 0 then 1 + digits (-n) else digits n

(* Append the decimal form of [n] without going through
   [string_of_int] — the reply hot path must not allocate. *)
let obuf_add_int (t : Obuf.t) n =
  let w = int_width n in
  Obuf.reserve t w;
  let buf = t.Obuf.buf in
  let base = t.Obuf.len in
  let neg = n < 0 in
  if neg then Bytes.unsafe_set buf base '-';
  let fin = if neg then base + 1 else base in
  let v = ref (if neg then -n else n) in
  let i = ref (base + w - 1) in
  while !i >= fin do
    Bytes.unsafe_set buf !i (Char.unsafe_chr (Char.code '0' + (!v mod 10)));
    v := !v / 10;
    decr i
  done;
  t.Obuf.len <- base + w

let sem_field = function
  | Polytm.Semantics.Classic -> "~classic"
  | Polytm.Semantics.Elastic -> "~elastic"
  | Polytm.Semantics.Snapshot -> "~snapshot"

let sem_of_field = function
  | "~classic" -> Some Polytm.Semantics.Classic
  | "~elastic" -> Some Polytm.Semantics.Elastic
  | "~snapshot" -> Some Polytm.Semantics.Snapshot
  | _ -> None

let opt_int_field = function None -> "_" | Some n -> string_of_int n

let fields_of_request r =
  let base =
    match r.cmd with
    | Ping -> [ "PING" ]
    | New (k, name) -> [ "NEW"; kind_to_string k; name ]
    | Get (s, k) -> [ "GET"; s; string_of_int k ]
    | Put (s, k, v) -> [ "PUT"; s; string_of_int k; v ]
    | Del (s, k) -> [ "DEL"; s; string_of_int k ]
    | Contains (s, k) -> [ "CONTAINS"; s; string_of_int k ]
    | Add (s, k) -> [ "ADD"; s; string_of_int k ]
    | Remove (s, k) -> [ "REMOVE"; s; string_of_int k ]
    | Size s -> [ "SIZE"; s ]
    | Snapshot_iter s -> [ "SNAPSHOT-ITER"; s ]
    | Enq (s, v) -> [ "ENQ"; s; v ]
    | Deq s -> [ "DEQ"; s ]
    | Blpop (s, ms) -> [ "BLPOP"; s; string_of_int ms ]
    | Btake (s, ms) -> [ "BTAKE"; s; string_of_int ms ]
    | Watch s -> [ "WATCH"; s ]
    | Unwatch s -> [ "UNWATCH"; s ]
    | Multi -> [ "MULTI" ]
    | Multi_end -> [ "MULTI-END" ]
    | Info -> [ "INFO" ]
    | Bgsave -> [ "BGSAVE" ]
    | Lastsave -> [ "LASTSAVE" ]
    | Debug_abort { budget; deadline_us } ->
        [ "DEBUG-ABORT"; opt_int_field budget; opt_int_field deadline_us ]
  in
  match r.hint with None -> base | Some s -> sem_field s :: base

let bulk_len s = 1 + digits (String.length s) + 1 + String.length s + 1

let request_body_len fields =
  1 + digits (List.length fields) + 1
  + List.fold_left (fun acc f -> acc + bulk_len f) 0 fields

let add_bulk buf s =
  Buffer.add_char buf '$';
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf '\n';
  Buffer.add_string buf s;
  Buffer.add_char buf '\n'

let add_frame_header buf body_len =
  Buffer.add_char buf '#';
  Buffer.add_string buf (string_of_int body_len);
  Buffer.add_char buf '\n'

let write_request buf r =
  let fields = fields_of_request r in
  add_frame_header buf (request_body_len fields);
  Buffer.add_char buf '*';
  Buffer.add_string buf (string_of_int (List.length fields));
  Buffer.add_char buf '\n';
  List.iter (add_bulk buf) fields

let no_newline what s =
  if String.contains s '\n' then
    invalid_arg (Printf.sprintf "Wire.write_response: newline in %s" what)

let rec response_body_len = function
  | Simple s -> 1 + String.length s + 1
  | Int n -> 1 + String.length (string_of_int n) + 1
  | Bulk s -> bulk_len s
  | Nil -> 2
  | Error (c, m) ->
      1 + String.length (err_code_to_string c) + 1 + String.length m + 1
  | Array l ->
      1 + digits (List.length l) + 1
      + List.fold_left (fun acc r -> acc + response_body_len r) 0 l
  | Push s -> 1 + String.length s + 1

let rec add_response_body buf = function
  | Simple s ->
      no_newline "simple string" s;
      Buffer.add_char buf '+';
      Buffer.add_string buf s;
      Buffer.add_char buf '\n'
  | Int n ->
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int n);
      Buffer.add_char buf '\n'
  | Bulk s -> add_bulk buf s
  | Nil -> Buffer.add_string buf "_\n"
  | Error (c, m) ->
      no_newline "error message" m;
      Buffer.add_char buf '-';
      Buffer.add_string buf (err_code_to_string c);
      Buffer.add_char buf ' ';
      Buffer.add_string buf m;
      Buffer.add_char buf '\n'
  | Array l ->
      Buffer.add_char buf '*';
      Buffer.add_string buf (string_of_int (List.length l));
      Buffer.add_char buf '\n';
      List.iter (add_response_body buf) l
  | Push s ->
      no_newline "push name" s;
      Buffer.add_char buf '>';
      Buffer.add_string buf s;
      Buffer.add_char buf '\n'

let write_response buf r =
  add_frame_header buf (response_body_len r);
  add_response_body buf r

(* ---- direct-to-buffer encoding ------------------------------------------ *)

(* Same grammar as [add_response_body]/[write_response], emitted
   straight into an {!Obuf} with inlined integer formatting: the
   steady-state reply path allocates nothing (buffer growth amortizes
   to zero on a reused session buffer).  Byte-for-byte identical to
   the [Buffer] encoders — the protocol tests hold both to the same
   goldens. *)

(* Body length without [string_of_int]: the frame header needs it
   before the body is written. *)
let rec response_len = function
  | Simple s -> 1 + String.length s + 1
  | Int n -> 1 + int_width n + 1
  | Bulk s -> bulk_len s
  | Nil -> 2
  | Error (c, m) ->
      1 + String.length (err_code_to_string c) + 1 + String.length m + 1
  | Array l ->
      let rec items acc = function
        | [] -> acc
        | r :: rest -> items (acc + response_len r) rest
      in
      items (1 + digits (List.length l) + 1) l
  | Push s -> 1 + String.length s + 1

let obuf_add_bulk ob s =
  Obuf.add_char ob '$';
  obuf_add_int ob (String.length s);
  Obuf.add_char ob '\n';
  Obuf.add_string ob s;
  Obuf.add_char ob '\n'

let obuf_add_int_item ob n =
  Obuf.add_char ob ':';
  obuf_add_int ob n;
  Obuf.add_char ob '\n'

let obuf_add_array_header ob n =
  Obuf.add_char ob '*';
  obuf_add_int ob n;
  Obuf.add_char ob '\n'

let obuf_add_frame_header ob body_len =
  Obuf.add_char ob '#';
  obuf_add_int ob body_len;
  Obuf.add_char ob '\n'

let rec obuf_add_response_body ob = function
  | Simple s ->
      no_newline "simple string" s;
      Obuf.add_char ob '+';
      Obuf.add_string ob s;
      Obuf.add_char ob '\n'
  | Int n -> obuf_add_int_item ob n
  | Bulk s -> obuf_add_bulk ob s
  | Nil -> Obuf.add_string ob "_\n"
  | Error (c, m) ->
      no_newline "error message" m;
      Obuf.add_char ob '-';
      Obuf.add_string ob (err_code_to_string c);
      Obuf.add_char ob ' ';
      Obuf.add_string ob m;
      Obuf.add_char ob '\n'
  | Array l ->
      obuf_add_array_header ob (List.length l);
      let rec go = function
        | [] -> ()
        | r :: rest ->
            obuf_add_response_body ob r;
            go rest
      in
      go l
  | Push s ->
      no_newline "push name" s;
      Obuf.add_char ob '>';
      Obuf.add_string ob s;
      Obuf.add_char ob '\n'

let write_response_obuf ob r =
  obuf_add_frame_header ob (response_len r);
  obuf_add_response_body ob r

(* Frame a pre-encoded array body: [items] holds [count] response
   bodies already encoded (the snapshot fast path streams entries into
   it during its fold, skipping the intermediate response tree).  The
   emitted bytes equal [write_response ob (Array [...])]. *)
let write_framed_array ob ~count ~(items : Obuf.t) =
  let body_len = 1 + digits count + 1 + Obuf.length items in
  obuf_add_frame_header ob body_len;
  obuf_add_array_header ob count;
  Obuf.add_obuf ob items

(* ---- body parsing ------------------------------------------------------ *)

(* Body parsers work on a complete frame body; any failure raises
   [Bad], which the decoder turns into a [`Bad] item.  Because the
   frame boundary came from the outer length prefix, a bad body never
   costs more than its own frame. *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* The cursor walks a frame body {e in place}: [body] is (a view of)
   the decoder's internal buffer, [base]/[limit] bound this frame.
   Field payloads are copied out with [String.sub]; the frame body
   itself is never copied into a per-frame string. *)
type cursor = { body : string; base : int; mutable pos : int; limit : int }

let peek c = if c.pos >= c.limit then bad "truncated body" else c.body.[c.pos]

let advance c = c.pos <- c.pos + 1

let expect c ch =
  let got = peek c in
  if got <> ch then bad "expected %C, got %C at byte %d" ch got c.pos;
  advance c

(* Unsigned decimal int followed by '\n'; bounded to 15 digits so no
   overflow games are possible. *)
let parse_nat c =
  let start = c.pos in
  let n = ref 0 in
  while (match peek c with '0' .. '9' -> true | _ -> false) do
    n := (!n * 10) + (Char.code c.body.[c.pos] - Char.code '0');
    advance c;
    if c.pos - start > 15 then bad "integer too long"
  done;
  if c.pos = start then bad "expected digit at byte %d" c.pos;
  expect c '\n';
  !n

(* Signed decimal int line (for ':' integer responses). *)
let parse_int_line c =
  let neg = peek c = '-' in
  if neg then advance c;
  let start = c.pos in
  let n = ref 0 in
  while (match peek c with '0' .. '9' -> true | _ -> false) do
    n := (!n * 10) + (Char.code c.body.[c.pos] - Char.code '0');
    advance c;
    (* string_of_int of a 63-bit int is at most 19 digits *)
    if c.pos - start > 19 then bad "integer too long"
  done;
  if c.pos = start then bad "expected digit at byte %d" c.pos;
  expect c '\n';
  if neg then - !n else !n

let parse_line c =
  (* Bytes up to the next '\n' (consumed). *)
  match String.index_from_opt c.body c.pos '\n' with
  | Some i when i < c.limit ->
      let s = String.sub c.body c.pos (i - c.pos) in
      c.pos <- i + 1;
      s
  | Some _ | None -> bad "unterminated line"

let parse_bulk c =
  expect c '$';
  let len = parse_nat c in
  if c.pos + len + 1 > c.limit then bad "bulk overruns frame";
  let s = String.sub c.body c.pos len in
  c.pos <- c.pos + len;
  expect c '\n';
  s

let at_end c = c.pos = c.limit

let int_arg what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> bad "%s must be an integer, got %S" what s

let opt_int_arg what = function
  | "_" -> None
  | s -> Some (int_arg what s)

let request_of_fields fields =
  let hint, fields =
    match fields with
    | f :: rest when String.length f > 0 && f.[0] = '~' -> (
        match sem_of_field f with
        | Some s -> (Some s, rest)
        | None -> bad "unknown semantics hint %S" f)
    | fields -> (None, fields)
  in
  let cmd =
    match fields with
    | [ "PING" ] -> Ping
    | [ "NEW"; k; name ] -> (
        match kind_of_string k with
        | Some k -> New (k, name)
        | None -> bad "unknown structure kind %S" k)
    | [ "GET"; s; k ] -> Get (s, int_arg "key" k)
    | [ "PUT"; s; k; v ] -> Put (s, int_arg "key" k, v)
    | [ "DEL"; s; k ] -> Del (s, int_arg "key" k)
    | [ "CONTAINS"; s; k ] -> Contains (s, int_arg "key" k)
    | [ "ADD"; s; k ] -> Add (s, int_arg "key" k)
    | [ "REMOVE"; s; k ] -> Remove (s, int_arg "key" k)
    | [ "SIZE"; s ] -> Size s
    | [ "SNAPSHOT-ITER"; s ] -> Snapshot_iter s
    | [ "ENQ"; s; v ] -> Enq (s, v)
    | [ "DEQ"; s ] -> Deq s
    | [ "BLPOP"; s; ms ] -> Blpop (s, int_arg "timeout" ms)
    | [ "BTAKE"; s; ms ] -> Btake (s, int_arg "timeout" ms)
    | [ "WATCH"; s ] -> Watch s
    | [ "UNWATCH"; s ] -> Unwatch s
    | [ "MULTI" ] -> Multi
    | [ "MULTI-END" ] -> Multi_end
    | [ "INFO" ] -> Info
    | [ "BGSAVE" ] -> Bgsave
    | [ "LASTSAVE" ] -> Lastsave
    | [ "DEBUG-ABORT"; b; d ] ->
        Debug_abort
          {
            budget = opt_int_arg "budget" b;
            deadline_us = opt_int_arg "deadline" d;
          }
    | op :: _ -> bad "unknown op or arity: %S (%d fields)" op (List.length fields)
    | [] -> bad "empty request"
  in
  { hint; cmd }

let parse_request_body ~off ~len body =
  let limit = off + len in
  let c = { body; base = off; pos = off; limit } in
  expect c '*';
  let n = parse_nat c in
  if n = 0 then bad "empty request array";
  if n > 64 then bad "request array too long (%d)" n;
  let fields = List.init n (fun _ -> parse_bulk c) in
  if not (at_end c) then bad "trailing bytes in frame";
  request_of_fields fields

let max_response_depth = 8

let rec parse_response c depth =
  if depth > max_response_depth then bad "response nested too deeply";
  match peek c with
  | '+' ->
      advance c;
      Simple (parse_line c)
  | ':' ->
      advance c;
      Int (parse_int_line c)
  | '$' -> Bulk (parse_bulk c)
  | '_' ->
      advance c;
      expect c '\n';
      Nil
  | '-' ->
      advance c;
      let line = parse_line c in
      let code, msg =
        match String.index_opt line ' ' with
        | Some i ->
            ( String.sub line 0 i,
              String.sub line (i + 1) (String.length line - i - 1) )
        | None -> (line, "")
      in
      (match err_code_of_string code with
      | Some c -> Error (c, msg)
      | None -> bad "unknown error code %S" code)
  | '*' ->
      advance c;
      let n = parse_nat c in
      if n > c.limit - c.base then bad "array longer than frame";
      Array (List.init n (fun _ -> parse_response c (depth + 1)))
  | '>' ->
      advance c;
      Push (parse_line c)
  | ch -> bad "unknown response type byte %C" ch

let parse_response_body ~off ~len body =
  let limit = off + len in
  let c = { body; base = off; pos = off; limit } in
  let r = parse_response c 0 in
  if not (at_end c) then bad "trailing bytes in frame";
  r

(* ---- incremental decoder ----------------------------------------------- *)

module Decoder = struct
  type t = {
    mutable buf : Bytes.t;
    mutable pos : int;  (* consumed prefix *)
    mutable len : int;  (* filled prefix *)
    max_frame : int;
    mutable dead : string option;
  }

  let create ?(max_frame = 8 * 1024 * 1024) () =
    { buf = Bytes.create 4096; pos = 0; len = 0; max_frame; dead = None }

  let buffered t = t.len - t.pos

  let feed t b off n =
    if n < 0 || off < 0 || off + n > Bytes.length b then
      invalid_arg "Wire.Decoder.feed";
    let need = t.len - t.pos + n in
    if t.len + n > Bytes.length t.buf then begin
      (* Compact, growing if the live bytes plus input still overflow. *)
      let cap = ref (Bytes.length t.buf) in
      while need > !cap do
        cap := !cap * 2
      done;
      let dst = if !cap > Bytes.length t.buf then Bytes.create !cap else t.buf in
      Bytes.blit t.buf t.pos dst 0 (t.len - t.pos);
      t.buf <- dst;
      t.len <- t.len - t.pos;
      t.pos <- 0
    end;
    Bytes.blit b off t.buf t.len n;
    t.len <- t.len + n

  let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

  type 'a item =
    [ `Ok of 'a | `Bad of string | `Await | `Corrupt of string ]

  let die t msg =
    t.dead <- Some msg;
    `Corrupt msg

  (* Longest header: '#' + digits of max_frame + '\n'. *)
  let max_header = 2 + 10

  (* Direct-fill API: [reserve t n] compacts/grows so at least [n]
     writable bytes exist past the filled prefix and returns the
     buffer with the fill offset — a [Unix.read] can land bytes
     straight in the decoder, skipping the intermediate read buffer
     and its [feed] blit.  [commit t n] publishes [n] filled bytes. *)
  let reserve t n =
    if t.len + n > Bytes.length t.buf then begin
      let live = t.len - t.pos in
      let need = live + n in
      let cap = ref (Bytes.length t.buf) in
      while need > !cap do
        cap := !cap * 2
      done;
      let dst = if !cap > Bytes.length t.buf then Bytes.create !cap else t.buf in
      Bytes.blit t.buf t.pos dst 0 live;
      t.buf <- dst;
      t.len <- live;
      t.pos <- 0
    end;
    (t.buf, t.len)

  let commit t n = t.len <- t.len + n

  (* Scan (and consume) the next complete frame, returning the body's
     bounds inside [t.buf].  The region stays valid only until the
     next [feed]/[reserve] — callers parse immediately. *)
  let next_frame t : (int * int) item =
    match t.dead with
    | Some m -> `Corrupt m
    | None ->
        if buffered t = 0 then `Await
        else if Bytes.get t.buf t.pos <> '#' then
          die t
            (Printf.sprintf "bad frame header byte %C"
               (Bytes.get t.buf t.pos))
        else begin
          (* Scan the bounded header region for the terminating '\n'. *)
          let limit = min t.len (t.pos + max_header) in
          let i = ref (t.pos + 1) in
          while
            !i < limit
            && (match Bytes.get t.buf !i with '0' .. '9' -> true | _ -> false)
          do
            incr i
          done;
          if !i >= limit then
            if limit = t.pos + max_header then die t "frame header too long"
            else `Await
          else if Bytes.get t.buf !i <> '\n' then
            die t
              (Printf.sprintf "bad byte %C in frame header" (Bytes.get t.buf !i))
          else if !i = t.pos + 1 then die t "frame header without length"
          else begin
            (* Digits only, bounded width: accumulate directly. *)
            let body_len = ref 0 in
            for j = t.pos + 1 to !i - 1 do
              body_len := (!body_len * 10) + (Char.code (Bytes.get t.buf j) - Char.code '0')
            done;
            let body_len = !body_len in
            if body_len > t.max_frame then
              die t (Printf.sprintf "frame of %d bytes exceeds limit" body_len)
            else begin
              let total = !i + 1 - t.pos + body_len in
              if buffered t < total then `Await
              else begin
                let off = !i + 1 in
                t.pos <- t.pos + total;
                if t.pos = t.len then begin
                  t.pos <- 0;
                  t.len <- 0
                end;
                `Ok (off, body_len)
              end
            end
          end
        end

  (* Parse a consumed frame in place.  [Bytes.unsafe_to_string] is
     sound here: the buffer is not mutated between the scan and the
     parse, and every byte sequence that escapes the parser is copied
     out with [String.sub]. *)
  let next_with parse t =
    match next_frame t with
    | (`Await | `Corrupt _ | `Bad _) as r -> r
    | `Ok (off, len) -> (
        match parse ~off ~len (Bytes.unsafe_to_string t.buf) with
        | v -> `Ok v
        | exception Bad m -> `Bad m)

  let next_request t = next_with parse_request_body t
  let next_response t = next_with parse_response_body t

  (* Frame-level classification without building the response tree:
     load generators only need the reply's type byte (was it an
     error?), not its payload, and skipping the tree keeps the client
     from becoming the bottleneck it is trying to measure. *)
  let next_response_class t : char item =
    match next_frame t with
    | (`Await | `Corrupt _ | `Bad _) as r -> r
    | `Ok (_, 0) -> `Bad "truncated body"
    | `Ok (off, _) -> `Ok (Bytes.get t.buf off)

  (* One notch richer than [next_response_class]: split the error
     class on the BUSY code (load generators count backpressure
     refusals separately from application errors) and surface [Nil]
     (miss / blocking-op timeout).  Still skips the body — a framed
     snapshot reply of thousands of items costs one length-prefixed
     hop, not a tree of allocations. *)
  let next_response_brief t : [ `Value | `Nil | `Busy | `Err ] item =
    match next_frame t with
    | (`Await | `Corrupt _ | `Bad _) as r -> r
    | `Ok (_, 0) -> `Bad "truncated body"
    | `Ok (off, len) -> (
        match Bytes.get t.buf off with
        | '_' -> `Ok `Nil
        | '-' ->
            if
              len >= 5
              && Bytes.get t.buf (off + 1) = 'B'
              && Bytes.get t.buf (off + 2) = 'U'
              && Bytes.get t.buf (off + 3) = 'S'
              && Bytes.get t.buf (off + 4) = 'Y'
            then `Ok `Busy
            else `Ok `Err
        | _ -> `Ok `Value)
end
