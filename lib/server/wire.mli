(** Wire protocol of [polytmd] — a pure, incremental codec.

    The protocol is RESP-inspired, length-prefixed text: every message
    travels in a {e frame}

    {v #<body-bytes>\n<body> v}

    whose header states the exact byte length of the body.  A request
    body is an array of bulk strings ([*<n>\n] then [n] fields, each
    [$<len>\n<bytes>\n]); the first field may be a semantics hint
    ([~classic] / [~elastic] / [~snapshot]) — the paper's tx-begin
    hint, carried across the process boundary — followed by the
    operation name and its arguments.  A response body is typed by its
    first byte: [+] simple string, [:] integer, [$] bulk, [_] nil,
    [-<CODE> <msg>] error, [*] array.

    The outer length prefix is what keeps a malformed body from
    desynchronising the stream: the decoder always knows where the
    next frame starts, so a frame whose body fails to parse is
    consumed whole and surfaced as a typed [`Bad] item — the session
    answers with a protocol-error reply and keeps going.  Only a
    corrupt {e header} (the framing itself is gone) is unrecoverable:
    the decoder latches [`Corrupt] and the session closes the
    connection.

    This module performs no I/O and touches no sockets: encoders
    append to a caller-supplied [Buffer.t], the decoder is fed byte
    slices and hands back parsed frames.  That is what makes it
    testable by the qcheck round-trip/fuzz suite without a file
    descriptor in sight. *)

(** {1 Requests} *)

type kind = Kmap | Kset | Kqueue
(** The three hostable structure families, backed by
    [Polytm_structs]'s [Stm_map], [Stm_hash_set] and [Stm_queue]. *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type cmd =
  | Ping
  | New of kind * string  (** create (idempotently) a named structure *)
  | Get of string * int  (** map lookup *)
  | Put of string * int * string  (** map bind; replies 1 if the key is new *)
  | Del of string * int  (** map unbind; replies 1 if the key existed *)
  | Contains of string * int  (** membership: map or set *)
  | Add of string * int  (** set insert; replies 1 if absent before *)
  | Remove of string * int  (** set delete; replies 1 if present before *)
  | Size of string  (** element count: map, set or queue *)
  | Snapshot_iter of string
      (** consistent full iteration; defaults to [Snapshot] semantics *)
  | Enq of string * string  (** queue push-back *)
  | Deq of string  (** queue pop-front; bulk or nil *)
  | Blpop of string * int
      (** blocking queue pop-front with a timeout in milliseconds
          ([0] = wait indefinitely): parks the session's transaction on
          the empty queue until a producer's commit fills it, then
          replies [Array [Bulk name; Bulk value]]; replies [Nil] on
          timeout or server drain.  Refused inside [MULTI] and bounced
          [BUSY] when the instance's wait table is full. *)
  | Btake of string * int
      (** like {!Blpop} but replies the bare [Bulk value] *)
  | Watch of string
      (** subscribe to change notifications for a structure: after a
          transaction that mutates it commits, the session emits a
          [Push] frame carrying the structure's name (at most one per
          poll interval — notifications coalesce, they do not queue) *)
  | Unwatch of string  (** drop a {!Watch} subscription *)
  | Multi  (** open a batch: following commands queue up *)
  | Multi_end
      (** execute the queued batch as {e one} transaction; replies an
          array with one element per queued command *)
  | Info
      (** server introspection: replies one [Bulk] of "key:value"
          lines — uptime, per-structure op counts, waiting gauge, and
          (when durability is on) persist stats — so smoke jobs and
          operators need not scrape [--stats-json] files *)
  | Bgsave
      (** force a checkpoint now: folds every structure inside a
          snapshot transaction (writers stay live) and truncates the
          op log up to the captured bound vector; replies [Simple
          "OK"] when the checkpoint is published, an [Err] when
          persistence is off or a checkpoint is already running *)
  | Lastsave
      (** unix time (seconds) of the last published checkpoint, [Int
          0] if none yet; [Err] when persistence is off *)
  | Debug_abort of { budget : int option; deadline_us : int option }
      (** test/probe op (disabled unless the server enables debug ops):
          a transaction that explicitly aborts every attempt, so the
          budget-exhaustion and deadline reply paths can be exercised
          deterministically *)

type request = { hint : Polytm.Semantics.t option; cmd : cmd }
(** [hint] is the per-request transaction-semantics hint; [None] lets
    the server pick the operation's default ([Snapshot] for
    {!Snapshot_iter}, [Classic] otherwise). *)

val cmd_name : cmd -> string
(** Wire operation name, e.g. ["SNAPSHOT-ITER"]. *)

val is_mutation : cmd -> bool
(** Whether the command can change a structure's contents — the set
    the durability layer arms for op-log appends.  Conditional
    mutations ([DEQ] of an empty queue) count: arming is free when the
    transaction commits read-only. *)

(** {1 Responses} *)

(** Typed error codes, one per failure family the session can report. *)
type err_code =
  | Proto  (** malformed frame or unparsable command *)
  | Busy  (** backpressure: the in-flight limit was exceeded *)
  | Deadline  (** the per-op deadline passed ([Deadline_exceeded]) *)
  | Exhausted  (** the per-op retry budget ran out ([Exhausted]) *)
  | No_struct  (** unknown structure name *)
  | Bad_op  (** operation/structure kind mismatch, or misuse *)
  | Sem_violation
      (** the semantics hint forbids the operation (e.g. a write under
          a [~snapshot] hint) *)

val err_code_to_string : err_code -> string
val err_code_of_string : string -> err_code option

type response =
  | Simple of string  (** status line; must contain no newline *)
  | Int of int
  | Bulk of string  (** arbitrary bytes *)
  | Nil
  | Error of err_code * string
  | Array of response list
  | Push of string
      (** server-initiated notification ([>name] on the wire): the
          watched structure [name] changed.  Unlike every other
          response it is {e not} paired with a request — clients with
          active watches must tolerate [Push] frames between replies
          (replies to their own requests still arrive in order). *)

val ok : response
val pong : response
val queued : response

(** {1 Encoding}

    Encoders append one complete frame.  Body sizes are computed
    up front, so encoding is a single pass with no intermediate
    buffers. *)

val write_request : Buffer.t -> request -> unit

val write_response : Buffer.t -> response -> unit
(** @raise Invalid_argument if a {!Simple} or {!Error} payload
    contains a newline (they are line-delimited on the wire). *)

(** {1 Zero-copy output}

    {!Obuf} is the reply path's output sink: a grow-only byte buffer
    whose backing store is handed straight to [Unix.write] — no
    [Buffer.contents] copy, no per-frame string.  [start] tracks the
    flushed prefix so a partial write resumes where it stopped. *)

module Obuf : sig
  type t

  val create : ?initial:int -> unit -> t
  val clear : t -> unit

  val length : t -> int
  (** Total encoded bytes (including any already-flushed prefix). *)

  val pending : t -> int
  (** Bytes encoded but not yet consumed. *)

  val contents : t -> string
  (** Copy of the pending region — tests and diagnostics only. *)

  val peek : t -> Bytes.t * int * int
  (** [(buf, off, len)] of the pending region, for the caller's own
      [write].  Valid until the next mutation. *)

  val consumed : t -> int -> unit
  (** Mark [n] pending bytes written; the buffer resets to offset 0
      once fully drained. *)

  val add_char : t -> char -> unit
  val add_string : t -> string -> unit
end

val write_response_obuf : Obuf.t -> response -> unit
(** One complete frame, byte-identical to {!write_response}, with no
    intermediate allocation (inlined integer formatting, direct byte
    stores). *)

val response_len : response -> int
(** Body length of the encoded response, allocation-free. *)

(** Body-fragment writers for streaming encoders: a producer that
    knows its output is one big array (the snapshot fast path) can
    encode items into a scratch {!Obuf} as it walks the structure and
    wrap them with {!write_framed_array}, never materialising the
    response tree.  The emitted bytes equal
    [write_response ob (Array items)]. *)

val obuf_add_int_item : Obuf.t -> int -> unit
(** [:n\n] *)

val obuf_add_bulk : Obuf.t -> string -> unit
(** [$len\nbytes\n] *)

val obuf_add_array_header : Obuf.t -> int -> unit
(** [*n\n] *)

val write_framed_array : Obuf.t -> count:int -> items:Obuf.t -> unit
(** Frame header + [*count\n] + the pre-encoded [items] body. *)

(** {1 Incremental decoding} *)

module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t
  (** [max_frame] (default 8 MiB) bounds a single frame's body; a
      header announcing more is treated as corrupt, so a hostile peer
      cannot make the decoder buffer unboundedly. *)

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed t b off len] appends bytes; call after every read. *)

  val feed_string : t -> string -> unit

  val reserve : t -> int -> Bytes.t * int
  (** [reserve t n] makes room for [n] more bytes and returns the
      internal buffer with its fill offset, so a [read] can deposit
      bytes directly (no intermediate buffer, no {!feed} blit).
      Follow with {!commit}.  The pair is invalidated by any other
      decoder call. *)

  val commit : t -> int -> unit
  (** Publish [n] bytes deposited after {!reserve}. *)

  val buffered : t -> int
  (** Bytes held but not yet consumed by a complete frame. *)

  type 'a item =
    [ `Ok of 'a  (** a well-formed frame *)
    | `Bad of string
      (** a complete frame whose body is malformed; the frame has been
          consumed and the stream remains synchronised *)
    | `Await  (** no complete frame buffered yet *)
    | `Corrupt of string
      (** the framing itself is broken; the decoder is latched dead
          and every further call returns [`Corrupt] *) ]

  val next_request : t -> request item
  val next_response : t -> response item

  val next_response_class : t -> char item
  (** Consume the next response frame returning only its type byte
      ([+ : $ _ - * >]), without building the response tree — for
      load generators that count reply classes at full rate. *)

  val next_response_brief : t -> [ `Value | `Nil | `Busy | `Err ] item
  (** Like {!next_response_class} but splits errors on the [BUSY]
      code and surfaces [Nil], the classes a load generator counts.
      The body is skipped in O(1): a snapshot reply of thousands of
      items costs one frame-length hop, so the measuring client never
      becomes the bottleneck it is measuring. *)
end
