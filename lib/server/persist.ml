(** The durability glue between the payload-agnostic [lib/persist]
    writers and the server: wire-encoded payloads, the commit-hook
    arming protocol, snapshot checkpoints, and crash recovery.

    {2 The op log}

    Every acknowledged mutation becomes one log record whose payload
    is the mutation's {e wire frame} — the same bytes the client sent,
    re-encoded through {!Wire.write_request} — so replay is simply
    "parse the frame, resolve it against the registry, run the
    transaction", one code path shared by log replay and checkpoint
    loading, exercised by the same codec fuzzers as the live server.

    Append order must equal commit (serialization) order or replay
    diverges, and no post-commit scheme can guarantee that: two
    sessions can commit dependent transactions and reach their append
    calls in the opposite order.  So the append happens {e inside} the
    STM commit, via {!Registry.S.set_commit_hook}, while the commit
    still holds its locks (TL2) or sequence lock (NOrec): no dependent
    commit can start until the record is buffered, so the log is a
    linear extension of the store's serialization order.  The hook
    only learns the commit stamp; {e what} to log is armed per thread
    beforehand ([p_arm]) and collected after ([p_finish]) — a
    transaction that never write-commits (a [DEL] of an absent key, a
    failed op) leaves its armed payload unconsumed and nothing is
    logged, which is exactly right because nothing changed.

    {2 Checkpoints}

    A checkpoint folds every registered structure inside {e one}
    [snapshot_multi] spanning every shard of both routers.  Writers
    stay live throughout — snapshots never impede updaters — and the
    captured bound vector is an {e exact} cut: the STM's snapshot
    reads wait out in-flight write-backs, and the [multi_inflight]
    fence keeps cross-shard commits atomic with respect to the bound
    draw (this is the privatization argument of DESIGN §S21: the
    checkpointer observes memory only through transactional reads, so
    a half-committed transaction can never leak into the file).  Log
    compaction is then stamp-based: a log record is replayed iff its
    stamp exceeds the checkpoint's bound for its (algo, shard).

    {2 Generations}

    See {!Polytm_persist.Layout}.  On startup, recovery loads the
    manifest generation's checkpoint, replays its log then (if a
    checkpoint was interrupted) the next generation's log, and then
    {e always} publishes a fresh generation before serving — which
    collapses every crash interleaving into the one invariant the
    runtime needs: while serving, the active log's generation equals
    the manifest's. *)

module P = Polytm_persist
module S = Registry.S
module T = Polytm_telemetry

type t = {
  dir : string;
  policy : P.Aof.policy;
  reg : Registry.t;
  log_mu : Mutex.t;
      (** guards [aof]/[active_gen]; held across the (buffer-only)
          append so a rotation never strands a record in a closed log *)
  mutable aof : P.Aof.t;
  mutable gen : int;  (** published (manifest) generation *)
  mutable active_gen : int;  (** generation of the log [aof] writes *)
  pending_mu : Mutex.t;
  pending : (int * int, string) Hashtbl.t;
      (** per-thread armed payloads, keyed by (domain id, thread id) *)
  appended : (int * int, P.Aof.t * int) Hashtbl.t;
      (** per-thread append tickets, same key *)
  ckpt_mu : Mutex.t;  (** one checkpoint at a time *)
  mutable last_save : float;  (** unix time of last published checkpoint *)
  mutable replayed : int;
  mutable recover_ms : float;
  mutable tear : string;  (** "none", or where recovery cut the log *)
  (* totals carried across log rotations (the per-[Aof] counters die
     with their file) *)
  mutable retired_appends : int;
  mutable retired_syncs : int;
  mutable retired_bytes : int;
}

let algo_code = function `Tl2 -> 0 | `Norec -> 1
let algo_of_code = function 0 -> Some `Tl2 | 1 -> Some `Norec | _ -> None

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let frame_of_cmds cmds =
  let b = Buffer.create 64 in
  List.iter (fun cmd -> Wire.write_request b { Wire.hint = None; cmd }) cmds;
  Buffer.contents b

let thread_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

(* ---- arming protocol --------------------------------------------------- *)

let arm t payload =
  let key = thread_key () in
  Mutex.lock t.pending_mu;
  Hashtbl.replace t.pending key payload;
  Hashtbl.remove t.appended key;
  Mutex.unlock t.pending_mu

let finish t =
  let key = thread_key () in
  Mutex.lock t.pending_mu;
  Hashtbl.remove t.pending key;
  let ticket = Hashtbl.find_opt t.appended key in
  if ticket <> None then Hashtbl.remove t.appended key;
  Mutex.unlock t.pending_mu;
  ticket

(* The commit hook for instance (algo, shard).  Runs inside the commit
   critical section: must be brief, must never raise, must not run
   transactions.  Unarmed threads (internal commits: dirty marks,
   drain flags, watch polls) pay one mutex + hashtable miss. *)
let hook t ~algo ~shard stamp =
  try
    let key = thread_key () in
    Mutex.lock t.pending_mu;
    match Hashtbl.find_opt t.pending key with
    | None -> Mutex.unlock t.pending_mu
    | Some payload ->
        Hashtbl.remove t.pending key;
        Mutex.unlock t.pending_mu;
        Mutex.lock t.log_mu;
        let aof = t.aof in
        let seq =
          P.Aof.append aof
            { P.Frame.rtype = P.Frame.rt_op; algo; shard; stamp }
            ~payload
        in
        Mutex.unlock t.log_mu;
        Atomic.incr T.Persist.appends;
        ignore
          (Atomic.fetch_and_add T.Persist.append_bytes
             (String.length payload));
        Mutex.lock t.pending_mu;
        Hashtbl.replace t.appended key (aof, seq);
        Mutex.unlock t.pending_mu
  with _ -> Atomic.incr T.Persist.hook_errors

(* Structure creations are registry CAS publications, not commits, so
   they are logged directly ({!Registry.ensure} calls this {e before}
   the CAS publishes the name — a racing session can only reach the
   structure after the CAS, so its op records always follow the NEW
   record; the CAS loser's duplicate NEW replays as an idempotent
   ensure). *)
let log_new t kind name algo =
  try
    Mutex.lock t.log_mu;
    ignore
      (P.Aof.append t.aof
         {
           P.Frame.rtype = P.Frame.rt_new;
           algo = algo_code algo;
           shard = 0;
           stamp = 0;
         }
         ~payload:(frame_of_cmds [ Wire.New (kind, name) ]));
    Mutex.unlock t.log_mu;
    Atomic.incr T.Persist.appends
  with _ -> Atomic.incr T.Persist.hook_errors

(* ---- checkpointing ----------------------------------------------------- *)

type contents =
  | Cmap of (int * string) list
  | Cset of int list
  | Cqueue of string list

(* One consistent cut of the whole store: every shard of both routers
   inside a single [snapshot_multi].  The nested per-structure folds
   flatten into the live member transactions.  Only the in-memory
   collection happens inside the snapshot — file writing happens
   after, so an aborted attempt (bound redraw) re-collects instead of
   leaving a half-written file. *)
let collect t =
  let bounds = ref [] in
  let insts =
    Registry.instances t.reg `Tl2 @ Registry.instances t.reg `Norec
  in
  let state =
    S.snapshot_multi ~label:"checkpoint" ~bounds insts (fun () ->
        List.map
          (fun (name, (slot : Registry.slot)) ->
            let c =
              match slot.entry with
              | Registry.Emap m -> Cmap (Registry.Shd.Map.to_list m)
              | Registry.Eset h -> Cset (Registry.Shd.Hash_set.to_list h)
              | Registry.Equeue (q, _) -> Cqueue (Registry.Squeue.to_list q)
            in
            (name, Registry.kind_of_entry slot.entry, slot.algo, c))
          (Registry.slots t.reg))
  in
  (state, !bounds)

(* Map a bound's instance back to its (algo code, shard index). *)
let locate t stm =
  let find algo =
    let rec idx i = function
      | [] -> None
      | s :: rest ->
          if s == stm then Some (algo_code algo, i) else idx (i + 1) rest
    in
    idx 0 (Registry.instances t.reg algo)
  in
  match find `Tl2 with Some x -> Some x | None -> find `Norec

let write_file_durably path contents =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.unsafe_of_string contents in
      let pos = ref 0 in
      while !pos < Bytes.length b do
        pos := !pos + Unix.write fd b !pos (Bytes.length b - !pos)
      done;
      Unix.fsync fd)

let write_checkpoint t ~gen =
  let t0 = now_us () in
  let state, bounds = collect t in
  let bound_entries =
    List.filter_map
      (fun (stm, b) ->
        Option.map (fun (a, s) -> (a, s, b)) (locate t stm))
      bounds
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf P.Frame.ckpt_magic;
  let nrecords = ref 0 in
  let emit hdr payload =
    P.Frame.encode buf hdr ~payload;
    incr nrecords
  in
  let zero rtype = { P.Frame.rtype; algo = 0; shard = 0; stamp = 0 } in
  emit (zero P.Frame.rt_bounds) (P.Frame.encode_bounds bound_entries);
  List.iter
    (fun (name, kind, algo, c) ->
      emit
        {
          P.Frame.rtype = P.Frame.rt_new;
          algo = algo_code algo;
          shard = 0;
          stamp = 0;
        }
        (frame_of_cmds [ Wire.New (kind, name) ]);
      let ops =
        match c with
        | Cmap kvs -> List.map (fun (k, v) -> Wire.Put (name, k, v)) kvs
        | Cset ks -> List.map (fun k -> Wire.Add (name, k)) ks
        | Cqueue vs -> List.map (fun v -> Wire.Enq (name, v)) vs
      in
      List.iter (fun cmd -> emit (zero P.Frame.rt_op) (frame_of_cmds [ cmd ])) ops)
    state;
  let body_records = !nrecords in
  emit (zero P.Frame.rt_trailer) (P.Frame.encode_count body_records);
  write_file_durably (P.Layout.ckpt_path ~dir:t.dir gen) (Buffer.contents buf);
  Atomic.incr T.Persist.checkpoints;
  T.Persist.span ~name:"checkpoint" ~ts_us:t0 ~dur_us:(now_us () - t0)

let retire_log t old =
  t.retired_appends <- t.retired_appends + P.Aof.seq old;
  t.retired_syncs <- t.retired_syncs + P.Aof.syncs old;
  t.retired_bytes <- t.retired_bytes + P.Aof.bytes old;
  P.Aof.close old;
  t.retired_syncs <- t.retired_syncs + 1 (* the close's final fsync *)

(* Checkpoint + publish + compact.  Rotation happens first, so every
   commit from here on lands in the new generation's log; the ones
   that slip in before the snapshot's cut carry stamps within the
   bound vector and are filtered out on replay.  A failed attempt
   (e.g. disk full writing the checkpoint) leaves the manifest — and
   therefore recovery — on the old generation, with the old log intact
   and the already-rotated new log replayed after it; the next attempt
   reuses the rotated log rather than rotating again. *)
let bgsave t =
  if not (Mutex.try_lock t.ckpt_mu) then
    Wire.Error (Wire.Busy, "checkpoint already running")
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.ckpt_mu)
      (fun () ->
        try
          let g = t.gen in
          let g' = g + 1 in
          if t.active_gen = g then begin
            let fresh = P.Aof.open_log (P.Layout.log_path ~dir:t.dir g') in
            Mutex.lock t.log_mu;
            let old = t.aof in
            t.aof <- fresh;
            t.active_gen <- g';
            Mutex.unlock t.log_mu;
            retire_log t old
          end;
          write_checkpoint t ~gen:g';
          P.Layout.write_manifest ~dir:t.dir ~gen:g';
          P.Layout.remove_if_exists (P.Layout.ckpt_path ~dir:t.dir g);
          P.Layout.remove_if_exists (P.Layout.log_path ~dir:t.dir g);
          t.gen <- g';
          t.last_save <- Unix.gettimeofday ();
          Wire.ok
        with e ->
          Wire.Error
            (Wire.Proto, "checkpoint failed: " ^ Printexc.to_string e))

(* ---- recovery ---------------------------------------------------------- *)

exception Refuse of string

let refuse fmt = Printf.ksprintf (fun m -> raise (Refuse m)) fmt

(* Parse a record payload back into its wire request frames. *)
let requests_of_payload payload =
  let dec = Wire.Decoder.create () in
  Wire.Decoder.feed_string dec payload;
  let rec loop acc =
    match Wire.Decoder.next_request dec with
    | `Await ->
        if Wire.Decoder.buffered dec > 0 then
          refuse "trailing bytes in record payload"
        else List.rev acc
    | `Ok req -> loop (req :: acc)
    | `Bad m | `Corrupt m -> refuse "bad frame in record payload: %s" m
  in
  loop []

(* Replay one mutation through the normal resolve-and-run path —
   single-threaded, so a MULTI batch record's frames can be applied
   one by one. *)
let apply_op reg (req : Wire.request) =
  match Registry.resolve reg req.cmd with
  | Error (Wire.Error (_, msg)) -> refuse "unreplayable record: %s" msg
  | Error _ -> refuse "unreplayable record"
  | Ok r -> (
      match r.site with
      | Registry.Single stm ->
          ignore (S.atomically ~label:"replay" stm (fun _tx -> r.run ()))
      | Registry.Spanning stms ->
          ignore (S.atomically_multi ~label:"replay" stms (fun () -> r.run ())))

let apply_new reg ~algo (req : Wire.request) =
  match req.cmd with
  | Wire.New (kind, name) ->
      (* Best-effort: [Error] here means a CAS-losing NEW whose
         runtime ensure also failed — its op records never existed. *)
      ignore (Registry.ensure ?algo reg kind name)
  | _ -> refuse "structure record without NEW frame"

let apply_record reg ~bounds (r : P.Frame.record) =
  if r.hdr.rtype = P.Frame.rt_new then begin
    List.iter (apply_new reg ~algo:(algo_of_code r.hdr.algo)) (requests_of_payload r.payload);
    true
  end
  else if r.hdr.rtype = P.Frame.rt_op then begin
    let bound =
      match Hashtbl.find_opt bounds (r.hdr.algo, r.hdr.shard) with
      | Some b -> b
      | None -> -1
    in
    if r.hdr.stamp > bound then begin
      List.iter (apply_op reg) (requests_of_payload r.payload);
      true
    end
    else false
  end
  else refuse "unexpected record type %d in log" r.hdr.rtype

(* A checkpoint file is all-or-nothing: validated end to end (clean
   scan, bounds first, matching trailer) before any record is
   applied.  An invalid named checkpoint refuses service — unlike a
   log tail, there is no "longest valid prefix" story for a file that
   claims to be a complete state. *)
let load_checkpoint reg ~path =
  let records = ref [] in
  let scan =
    try
      P.Frame.scan_file ~magic:P.Frame.ckpt_magic ~path ~f:(fun _ r ->
          records := r :: !records)
    with Sys_error m -> refuse "checkpoint unreadable: %s" m
  in
  (match scan.tear with
  | Some tear ->
      refuse "checkpoint %s: %s" path
        (Format.asprintf "%a" P.Frame.pp_tear tear)
  | None -> ());
  let records = List.rev !records in
  match records with
  | { P.Frame.hdr = { rtype; _ }; payload } :: rest
    when rtype = P.Frame.rt_bounds -> (
      let bounds_list =
        match P.Frame.decode_bounds payload with
        | Some l -> l
        | None -> refuse "checkpoint bounds record malformed"
      in
      match List.rev rest with
      | { P.Frame.hdr = { rtype = tr; _ }; payload = tp } :: body_rev
        when tr = P.Frame.rt_trailer -> (
          match P.Frame.decode_count tp with
          | Some n when n = List.length body_rev + 1 ->
              List.iter
                (fun (r : P.Frame.record) ->
                  if r.hdr.rtype = P.Frame.rt_new then
                    List.iter
                      (apply_new reg ~algo:(algo_of_code r.hdr.algo))
                      (requests_of_payload r.payload)
                  else if r.hdr.rtype = P.Frame.rt_op then
                    List.iter (apply_op reg) (requests_of_payload r.payload)
                  else refuse "unexpected record type in checkpoint")
                (List.rev body_rev);
              let bounds = Hashtbl.create 16 in
              List.iter
                (fun (a, s, b) -> Hashtbl.replace bounds (a, s) b)
                bounds_list;
              (bounds, scan.records)
          | Some _ -> refuse "checkpoint trailer count mismatch"
          | None -> refuse "checkpoint trailer malformed")
      | _ -> refuse "checkpoint missing trailer")
  | _ -> refuse "checkpoint missing bounds record"

(* Replay a log file against the bound vector.  A missing file is an
   empty log.  Returns (records applied, tear description option). *)
let replay_log reg ~bounds ~path =
  let applied = ref 0 in
  match
    P.Frame.scan_file ~magic:P.Frame.log_magic ~path ~f:(fun _ r ->
        if apply_record reg ~bounds r then incr applied)
  with
  | scan ->
      let tear =
        Option.map
          (fun tr -> Format.asprintf "%s: %a" (Filename.basename path) P.Frame.pp_tear tr)
          scan.tear
      in
      (!applied, tear)
  | exception Sys_error _ -> (0, None)

type recovered = {
  r_replayed : int;  (** records applied (checkpoint + log tail) *)
  r_tear : string option;  (** where the log tail was cut, if it was *)
  r_ms : float;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

(* Phase 1 of startup: rebuild the registry's contents from the data
   directory.  No hooks are installed yet, so nothing replayed is
   re-logged.  Run this on a {e fresh} registry, before pre-created
   structures are ensured (recovered structures win ties). *)
let recover ~dir reg =
  let t0 = Unix.gettimeofday () in
  mkdir_p dir;
  try
    let result =
      match P.Layout.read_manifest ~dir with
      | None -> { r_replayed = 0; r_tear = None; r_ms = 0.0 }
      | Some gen ->
          let bounds, ckpt_records =
            load_checkpoint reg ~path:(P.Layout.ckpt_path ~dir gen)
          in
          let n1, tear1 =
            replay_log reg ~bounds ~path:(P.Layout.log_path ~dir gen)
          in
          (* The next generation's log exists only when a checkpoint
             was interrupted; its records strictly follow the old
             log's.  A tear in the {e old} log means that file was cut
             short of what the new log depends on, so the new log must
             not be replayed past it. *)
          let n2, tear2 =
            match tear1 with
            | Some _ -> (0, None)
            | None ->
                replay_log reg ~bounds ~path:(P.Layout.log_path ~dir (gen + 1))
          in
          {
            r_replayed = ckpt_records + n1 + n2;
            r_tear = (match tear1 with Some _ -> tear1 | None -> tear2);
            r_ms = 0.0;
          }
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    ignore (Atomic.fetch_and_add T.Persist.replayed result.r_replayed);
    T.Persist.span ~name:"recovery" ~ts_us:(int_of_float (t0 *. 1e6))
      ~dur_us:(int_of_float (ms *. 1000.));
    Ok { result with r_ms = ms }
  with
  | Refuse m -> Error m
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))

(* ---- activation -------------------------------------------------------- *)

let existing_gens dir =
  let parse name prefix suffix =
    if
      String.length name > String.length prefix + String.length suffix
      && String.sub name 0 (String.length prefix) = prefix
      && Filename.check_suffix name suffix
    then
      int_of_string_opt
        (String.sub name (String.length prefix)
           (String.length name - String.length prefix - String.length suffix))
    else None
  in
  Array.fold_left
    (fun acc name ->
      match parse name "log-" ".ptmlog" with
      | Some g -> g :: acc
      | None -> (
          match parse name "checkpoint-" ".ptmckp" with
          | Some g -> g :: acc
          | None -> acc))
    []
    (try Sys.readdir dir with Sys_error _ -> [||])

let install_hooks t =
  List.iter
    (fun algo ->
      List.iteri
        (fun shard stm ->
          let algo = algo_code algo in
          S.set_commit_hook stm (Some (fun stamp -> hook t ~algo ~shard stamp)))
        (Registry.instances t.reg algo))
    [ `Tl2; `Norec ]

let uninstall_hooks t =
  List.iter
    (fun algo ->
      List.iter
        (fun stm -> S.set_commit_hook stm None)
        (Registry.instances t.reg algo))
    [ `Tl2; `Norec ]

let total_appends t = t.retired_appends + P.Aof.seq t.aof
let total_syncs t = t.retired_syncs + P.Aof.syncs t.aof
let total_bytes t = t.retired_bytes + P.Aof.bytes t.aof

let info t =
  (* Mirror the rolled-up totals into the telemetry counters so one
     source of truth feeds INFO, --stats-json and the trace lane. *)
  Atomic.set T.Persist.fsyncs (total_syncs t);
  [
    ("persist_dir", t.dir);
    ("persist_fsync", P.Aof.policy_to_string t.policy);
    ("persist_gen", string_of_int t.gen);
    ("persist_appends", string_of_int (total_appends t));
    ("persist_bytes", string_of_int (total_bytes t));
    ("persist_fsyncs", string_of_int (total_syncs t));
    ("persist_synced_seq", string_of_int (P.Aof.synced_seq t.aof));
    ("persist_last_save", string_of_int (int_of_float t.last_save));
    ("persist_replayed", string_of_int t.replayed);
    ("persist_recover_ms", Printf.sprintf "%.1f" t.recover_ms);
    ("persist_tear", t.tear);
    ( "persist_hook_errors",
      string_of_int (Atomic.get T.Persist.hook_errors) );
  ]

(* Phase 2 of startup: publish a fresh generation (checkpoint of the
   recovered + pre-created state), open its log, install the commit
   hooks, and hand the registry its closure record.  Always starting a
   fresh generation collapses every crash interleaving recovery can
   leave behind — stale logs, orphan checkpoints from failed BGSAVEs —
   into one invariant: while serving, active log gen = manifest gen. *)
let activate ~dir ~policy reg (recovered : recovered) =
  try
    let gens = existing_gens dir in
    let manifest_gen =
      match P.Layout.read_manifest ~dir with Some g -> g | None -> 0
    in
    let g' = 1 + List.fold_left max manifest_gen gens in
    P.Layout.remove_if_exists (P.Layout.log_path ~dir g');
    let t =
      {
        dir;
        policy;
        reg;
        log_mu = Mutex.create ();
        aof = P.Aof.open_log (P.Layout.log_path ~dir g');
        gen = g';
        active_gen = g';
        pending_mu = Mutex.create ();
        pending = Hashtbl.create 64;
        appended = Hashtbl.create 64;
        ckpt_mu = Mutex.create ();
        last_save = 0.0;
        replayed = recovered.r_replayed;
        recover_ms = recovered.r_ms;
        tear =
          (match recovered.r_tear with None -> "none" | Some m -> m);
        retired_appends = 0;
        retired_syncs = 0;
        retired_bytes = 0;
      }
    in
    write_checkpoint t ~gen:g';
    P.Layout.write_manifest ~dir ~gen:g';
    List.iter
      (fun g ->
        if g <> g' then begin
          P.Layout.remove_if_exists (P.Layout.log_path ~dir g);
          P.Layout.remove_if_exists (P.Layout.ckpt_path ~dir g)
        end)
      (List.sort_uniq compare (manifest_gen :: gens));
    t.last_save <- Unix.gettimeofday ();
    install_hooks t;
    reg.Registry.persist <-
      Some
        {
          Registry.p_arm = arm t;
          p_finish = (fun () -> finish t);
          p_wait_durable =
            (fun aof seq ->
              let t0 = now_us () in
              P.Aof.wait_durable aof seq;
              let dur = now_us () - t0 in
              if dur > 50 then
                T.Persist.span ~name:"fsync-wait" ~ts_us:t0 ~dur_us:dur);
          p_always = (policy = `Always);
          p_log_new = log_new t;
          p_bgsave = (fun () -> bgsave t);
          p_lastsave =
            (fun () -> Wire.Int (int_of_float t.last_save));
          p_info = (fun () -> info t);
        };
    Ok t
  with
  | Refuse m -> Error m
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))
  | Sys_error m -> Error m

(* The once-a-second group sync behind [`Everysec]: called from the
   server's background thread.  Syncing a just-rotated-out log is a
   harmless no-op (rotation's close already synced it). *)
let tick t =
  Mutex.lock t.log_mu;
  let aof = t.aof in
  Mutex.unlock t.log_mu;
  let t0 = now_us () in
  let before = P.Aof.synced_seq aof in
  P.Aof.sync aof;
  if P.Aof.synced_seq aof > before then
    T.Persist.span ~name:"fsync" ~ts_us:t0 ~dur_us:(now_us () - t0)

(* Shutdown: flush and sync whatever the final acks left buffered,
   then drop the hooks (late internal commits on the drain path would
   otherwise probe freed state). *)
let stop t =
  uninstall_hooks t;
  t.reg.Registry.persist <- None;
  Mutex.lock t.log_mu;
  let aof = t.aof in
  Mutex.unlock t.log_mu;
  P.Aof.close aof
