(** Named transactional structures hosted by the server, plus the
    translation from wire commands to STM operations.

    One registry owns two STM instances (over the domains runtime) —
    one per algorithm, TL2 and NORec — and a name -> structure table,
    so a server can host a NORec map next to a TL2 queue (DESIGN.md
    §S17).  Each structure is pinned at creation to one instance; the
    session runs the per-request transaction on the instance of the
    structure(s) it touches, which is what lets nested structure
    operations flatten into it.  The table itself is a persistent
    association list behind an [Atomic]: lookups on the request hot
    path are a single atomic load, and the rare creations CAS a new
    list in.  The {e contents} of every structure are transactional —
    the registry only maps names to roots.

    Command execution is split in two phases on purpose:

    - {!resolve} runs {e outside} any transaction: it checks the
      structure exists and the operation matches its kind, returning
      either an error response or a thunk.
    - the thunk runs {e inside} the session's [try_atomically]; the
      structure operations it calls open nested transactions that
      flatten into the session's outer one, which is how a whole
      [MULTI] batch, or a single hinted op, executes under exactly one
      transaction of the hinted semantics.

    Pre-resolving keeps failures atomic: a [MULTI] batch either
    resolves completely or executes not at all, so no partial batch is
    ever visible. *)

module S = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)
module Smap = Polytm_structs.Stm_map.Make (S)
module Sset = Polytm_structs.Stm_hash_set.Make (S)
module Squeue = Polytm_structs.Stm_queue.Make (S)

type entry =
  | Emap of string Smap.t
  | Eset of Sset.t
  | Equeue of string Squeue.t

type algo = [ `Tl2 | `Norec ]

(* A structure is pinned to the instance it was created on. *)
type slot = { entry : entry; algo : algo }

type t = {
  stm : S.t;  (** the TL2 instance *)
  stm_norec : S.t;
  default_algo : algo;  (** applied to wire [NEW] (no algo on the wire) *)
  entries : (string * slot) list Atomic.t;
}

let create ?stm ?stm_norec ?(default_algo = `Tl2) () =
  let stm = match stm with Some s -> s | None -> S.create () in
  let stm_norec =
    match stm_norec with Some s -> s | None -> S.create ~algo:`Norec ()
  in
  if S.algo stm <> `Tl2 then invalid_arg "Registry: stm must be a TL2 instance";
  if S.algo stm_norec <> `Norec then
    invalid_arg "Registry: stm_norec must be a NORec instance";
  { stm; stm_norec; default_algo; entries = Atomic.make [] }

let stm t = t.stm
let stm_for t = function `Tl2 -> t.stm | `Norec -> t.stm_norec
let default_algo t = t.default_algo
let algo_name = function `Tl2 -> "tl2" | `Norec -> "norec"

let algo_of_name = function
  | "tl2" -> Some `Tl2
  | "norec" -> Some `Norec
  | _ -> None

let find t name =
  Option.map (fun s -> s.entry) (List.assoc_opt name (Atomic.get t.entries))

let algo_of t name =
  Option.map (fun s -> s.algo) (List.assoc_opt name (Atomic.get t.entries))

let kind_of_entry = function
  | Emap _ -> Wire.Kmap
  | Eset _ -> Wire.Kset
  | Equeue _ -> Wire.Kqueue

(* Idempotent creation: NEW of an existing name succeeds when the kind
   matches (so clients can ensure their structures without
   coordination) and is a typed error when it does not.  The algorithm
   is fixed at first creation — the wire carries no algo, so an
   ensure of an existing name never migrates it between instances. *)
let ensure ?algo t kind name =
  let algo = Option.value algo ~default:t.default_algo in
  let stm = stm_for t algo in
  let fresh () =
    let entry =
      match kind with
      | Wire.Kmap -> Emap (Smap.create stm)
      | Wire.Kset -> Eset (Sset.create stm)
      | Wire.Kqueue -> Equeue (Squeue.create stm)
    in
    { entry; algo }
  in
  let rec go () =
    let cur = Atomic.get t.entries in
    match List.assoc_opt name cur with
    | Some s ->
        if kind_of_entry s.entry = kind then Ok `Existed
        else
          Error
            (Wire.Error
               ( Wire.Bad_op,
                 Printf.sprintf "%s exists with kind %s" name
                   (Wire.kind_to_string (kind_of_entry s.entry)) ))
    | None ->
        if Atomic.compare_and_set t.entries cur ((name, fresh ()) :: cur) then
          Ok `Created
        else go ()
  in
  go ()

let names t =
  List.sort compare (List.map fst (Atomic.get t.entries))

(* ---- command resolution ------------------------------------------------ *)

let err code fmt = Printf.ksprintf (fun m -> Wire.Error (code, m)) fmt

let bool_resp b = Wire.Int (if b then 1 else 0)

let mismatch cmd entry =
  err Wire.Bad_op "%s does not apply to a %s" (Wire.cmd_name cmd)
    (Wire.kind_to_string (kind_of_entry entry))

(* [resolve t cmd] is either an immediate error response or a thunk to
   run inside the session's transaction, paired with the algorithm of
   the instance the transaction must run on.  Only plain structure
   operations resolve here — PING/NEW/MULTI/DEBUG-ABORT are session
   concerns. *)
let resolve t cmd : (algo * (unit -> Wire.response), Wire.response) result =
  let with_entry name k =
    match List.assoc_opt name (Atomic.get t.entries) with
    | None -> Error (err Wire.No_struct "no structure named %S" name)
    | Some s -> Result.map (fun thunk -> (s.algo, thunk)) (k s.entry)
  in
  match cmd with
  | Wire.Get (name, key) ->
      with_entry name (function
        | Emap m ->
            Ok
              (fun () ->
                match Smap.find_opt m key with
                | Some v -> Wire.Bulk v
                | None -> Wire.Nil)
        | e -> Error (mismatch cmd e))
  | Wire.Put (name, key, v) ->
      with_entry name (function
        | Emap m -> Ok (fun () -> bool_resp (Smap.add m key v))
        | e -> Error (mismatch cmd e))
  | Wire.Del (name, key) ->
      with_entry name (function
        | Emap m -> Ok (fun () -> bool_resp (Smap.remove m key))
        | e -> Error (mismatch cmd e))
  | Wire.Contains (name, key) ->
      with_entry name (function
        | Emap m -> Ok (fun () -> bool_resp (Smap.mem m key))
        | Eset s -> Ok (fun () -> bool_resp (Sset.contains s key))
        | e -> Error (mismatch cmd e))
  | Wire.Add (name, key) ->
      with_entry name (function
        | Eset s -> Ok (fun () -> bool_resp (Sset.add s key))
        | e -> Error (mismatch cmd e))
  | Wire.Remove (name, key) ->
      with_entry name (function
        | Eset s -> Ok (fun () -> bool_resp (Sset.remove s key))
        | e -> Error (mismatch cmd e))
  | Wire.Size name ->
      with_entry name (function
        | Emap m -> Ok (fun () -> Wire.Int (Smap.size m))
        | Eset s -> Ok (fun () -> Wire.Int (Sset.size s))
        | Equeue q -> Ok (fun () -> Wire.Int (Squeue.length q)))
  | Wire.Snapshot_iter name ->
      with_entry name (function
        | Emap m ->
            Ok
              (fun () ->
                Wire.Array
                  (List.map
                     (fun (k, v) -> Wire.Array [ Wire.Int k; Wire.Bulk v ])
                     (Smap.to_list m)))
        | Eset s ->
            Ok
              (fun () ->
                Wire.Array (List.map (fun k -> Wire.Int k) (Sset.to_list s)))
        | Equeue q ->
            Ok
              (fun () ->
                Wire.Array (List.map (fun v -> Wire.Bulk v) (Squeue.to_list q))))
  | Wire.Enq (name, v) ->
      with_entry name (function
        | Equeue q ->
            Ok
              (fun () ->
                Squeue.enqueue q v;
                Wire.ok)
        | e -> Error (mismatch cmd e))
  | Wire.Deq name ->
      with_entry name (function
        | Equeue q ->
            Ok
              (fun () ->
                match Squeue.dequeue_opt q with
                | Some v -> Wire.Bulk v
                | None -> Wire.Nil)
        | e -> Error (mismatch cmd e))
  | Wire.Ping | Wire.New _ | Wire.Multi | Wire.Multi_end | Wire.Debug_abort _
    ->
      Error (err Wire.Bad_op "%s is not a structure operation" (Wire.cmd_name cmd))

(* Default transaction semantics when the request carries no hint: the
   paper's novice default, except consistent iteration which is the
   snapshot showcase. *)
let default_sem = function
  | Wire.Snapshot_iter _ -> Polytm.Semantics.Snapshot
  | _ -> Polytm.Semantics.Classic
