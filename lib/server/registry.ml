(** Named transactional structures hosted by the server, plus the
    translation from wire commands to STM operations.

    One registry owns one STM instance (over the domains runtime) and
    a name -> structure table.  The table itself is a persistent
    association list behind an [Atomic]: lookups on the request hot
    path are a single atomic load, and the rare creations CAS a new
    list in.  The {e contents} of every structure are transactional —
    the registry only maps names to roots.

    Command execution is split in two phases on purpose:

    - {!resolve} runs {e outside} any transaction: it checks the
      structure exists and the operation matches its kind, returning
      either an error response or a thunk.
    - the thunk runs {e inside} the session's [try_atomically]; the
      structure operations it calls open nested transactions that
      flatten into the session's outer one, which is how a whole
      [MULTI] batch, or a single hinted op, executes under exactly one
      transaction of the hinted semantics.

    Pre-resolving keeps failures atomic: a [MULTI] batch either
    resolves completely or executes not at all, so no partial batch is
    ever visible. *)

module S = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)
module Smap = Polytm_structs.Stm_map.Make (S)
module Sset = Polytm_structs.Stm_hash_set.Make (S)
module Squeue = Polytm_structs.Stm_queue.Make (S)

type entry =
  | Emap of string Smap.t
  | Eset of Sset.t
  | Equeue of string Squeue.t

type t = { stm : S.t; entries : (string * entry) list Atomic.t }

let create ?stm () =
  let stm = match stm with Some s -> s | None -> S.create () in
  { stm; entries = Atomic.make [] }

let stm t = t.stm

let find t name = List.assoc_opt name (Atomic.get t.entries)

let kind_of_entry = function
  | Emap _ -> Wire.Kmap
  | Eset _ -> Wire.Kset
  | Equeue _ -> Wire.Kqueue

(* Idempotent creation: NEW of an existing name succeeds when the kind
   matches (so clients can ensure their structures without
   coordination) and is a typed error when it does not. *)
let ensure t kind name =
  let fresh () =
    match kind with
    | Wire.Kmap -> Emap (Smap.create t.stm)
    | Wire.Kset -> Eset (Sset.create t.stm)
    | Wire.Kqueue -> Equeue (Squeue.create t.stm)
  in
  let rec go () =
    let cur = Atomic.get t.entries in
    match List.assoc_opt name cur with
    | Some e ->
        if kind_of_entry e = kind then Ok `Existed
        else
          Error
            (Wire.Error
               ( Wire.Bad_op,
                 Printf.sprintf "%s exists with kind %s" name
                   (Wire.kind_to_string (kind_of_entry e)) ))
    | None ->
        if Atomic.compare_and_set t.entries cur ((name, fresh ()) :: cur) then
          Ok `Created
        else go ()
  in
  go ()

let names t =
  List.sort compare (List.map fst (Atomic.get t.entries))

(* ---- command resolution ------------------------------------------------ *)

let err code fmt = Printf.ksprintf (fun m -> Wire.Error (code, m)) fmt

let bool_resp b = Wire.Int (if b then 1 else 0)

let mismatch cmd entry =
  err Wire.Bad_op "%s does not apply to a %s" (Wire.cmd_name cmd)
    (Wire.kind_to_string (kind_of_entry entry))

(* [resolve t cmd] is either an immediate error response or a thunk to
   run inside the session's transaction.  Only plain structure
   operations resolve here — PING/NEW/MULTI/DEBUG-ABORT are session
   concerns. *)
let resolve t cmd : (unit -> Wire.response, Wire.response) result =
  let with_entry name k =
    match find t name with
    | None -> Error (err Wire.No_struct "no structure named %S" name)
    | Some e -> k e
  in
  match cmd with
  | Wire.Get (name, key) ->
      with_entry name (function
        | Emap m ->
            Ok
              (fun () ->
                match Smap.find_opt m key with
                | Some v -> Wire.Bulk v
                | None -> Wire.Nil)
        | e -> Error (mismatch cmd e))
  | Wire.Put (name, key, v) ->
      with_entry name (function
        | Emap m -> Ok (fun () -> bool_resp (Smap.add m key v))
        | e -> Error (mismatch cmd e))
  | Wire.Del (name, key) ->
      with_entry name (function
        | Emap m -> Ok (fun () -> bool_resp (Smap.remove m key))
        | e -> Error (mismatch cmd e))
  | Wire.Contains (name, key) ->
      with_entry name (function
        | Emap m -> Ok (fun () -> bool_resp (Smap.mem m key))
        | Eset s -> Ok (fun () -> bool_resp (Sset.contains s key))
        | e -> Error (mismatch cmd e))
  | Wire.Add (name, key) ->
      with_entry name (function
        | Eset s -> Ok (fun () -> bool_resp (Sset.add s key))
        | e -> Error (mismatch cmd e))
  | Wire.Remove (name, key) ->
      with_entry name (function
        | Eset s -> Ok (fun () -> bool_resp (Sset.remove s key))
        | e -> Error (mismatch cmd e))
  | Wire.Size name ->
      with_entry name (function
        | Emap m -> Ok (fun () -> Wire.Int (Smap.size m))
        | Eset s -> Ok (fun () -> Wire.Int (Sset.size s))
        | Equeue q -> Ok (fun () -> Wire.Int (Squeue.length q)))
  | Wire.Snapshot_iter name ->
      with_entry name (function
        | Emap m ->
            Ok
              (fun () ->
                Wire.Array
                  (List.map
                     (fun (k, v) -> Wire.Array [ Wire.Int k; Wire.Bulk v ])
                     (Smap.to_list m)))
        | Eset s ->
            Ok
              (fun () ->
                Wire.Array (List.map (fun k -> Wire.Int k) (Sset.to_list s)))
        | Equeue q ->
            Ok
              (fun () ->
                Wire.Array (List.map (fun v -> Wire.Bulk v) (Squeue.to_list q))))
  | Wire.Enq (name, v) ->
      with_entry name (function
        | Equeue q ->
            Ok
              (fun () ->
                Squeue.enqueue q v;
                Wire.ok)
        | e -> Error (mismatch cmd e))
  | Wire.Deq name ->
      with_entry name (function
        | Equeue q ->
            Ok
              (fun () ->
                match Squeue.dequeue_opt q with
                | Some v -> Wire.Bulk v
                | None -> Wire.Nil)
        | e -> Error (mismatch cmd e))
  | Wire.Ping | Wire.New _ | Wire.Multi | Wire.Multi_end | Wire.Debug_abort _
    ->
      Error (err Wire.Bad_op "%s is not a structure operation" (Wire.cmd_name cmd))

(* Default transaction semantics when the request carries no hint: the
   paper's novice default, except consistent iteration which is the
   snapshot showcase. *)
let default_sem = function
  | Wire.Snapshot_iter _ -> Polytm.Semantics.Snapshot
  | _ -> Polytm.Semantics.Classic
