(** Named transactional structures hosted by the server, plus the
    translation from wire commands to STM operations.

    One registry owns two {e shard routers} over the domains runtime —
    one per algorithm, TL2 and NORec — each holding [shards]
    independent STM instances (own clock, wait queue, contention
    manager; DESIGN.md §S20).  Structures are sharded: a map or set
    partitions its key range across the owner router's instances
    behind the unchanged structure API, and a queue (whose FIFO order
    cannot be hash-partitioned) is pinned whole to the shard owning
    its name.  Each structure is pinned at creation to one algorithm;
    the session runs the per-request transaction on the instance(s)
    the operation touches — the owner shard for a point operation, the
    whole router for a cross-shard aggregate — which is what lets
    nested structure operations flatten into it.  With [shards = 1]
    (the default) every path degenerates to the single-instance code
    the pre-sharding server ran.  The name table itself is a
    persistent association list behind an [Atomic]: lookups on the
    request hot path are a single atomic load, and the rare creations
    CAS a new list in.  The {e contents} of every structure are
    transactional — the registry only maps names to roots.

    Command execution is split in two phases on purpose:

    - {!resolve} runs {e outside} any transaction: it checks the
      structure exists and the operation matches its kind, returning
      either an error response or a {!resolved} record naming the
      {!site} (which instances are involved) and the thunk.
    - the thunk runs {e inside} the session's transaction — a plain
      [try_atomically] on the owner instance for a {!Single} site, a
      cross-instance [atomically_multi]/[snapshot_multi] for a
      {!Spanning} one; the structure operations it calls open nested
      transactions that flatten into it either way.

    Pre-resolving keeps failures atomic: a [MULTI] batch either
    resolves completely or executes not at all, so no partial batch is
    ever visible. *)

module S = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)
module Shd = Polytm_structs.Sharded.Make (S)
module Router = Shd.Router
module Squeue = Shd.Queue_part

type entry =
  | Emap of string Shd.Map.t
  | Eset of Shd.Hash_set.t
  | Equeue of string Squeue.t * int
      (** the queue and the index of the shard it is pinned to *)

type algo = [ `Tl2 | `Norec ]

(* A structure is pinned to the algorithm (and router) it was created
   on.  [dirty] and [watchers] drive WATCH push subscriptions: the
   dirty flag lives on the router's {e control shard} (shard 0), where
   watch waits park; mutating operations mark it — inside their own
   transaction when the server runs one shard (so the mark is atomic
   with the mutation, exactly the pre-sharding behaviour), after the
   commit when it runs several (the mutation's owner shard cannot
   host a transaction over the control shard's tvar, and marking
   {e before} the data commit could let a watcher consume the
   notification, re-read stale data, and never hear about the actual
   change).  A watching session's poll transaction reads (and clears)
   the flag, parking via [S.retry] until the next mark's commit wakes
   it. *)
type slot = {
  entry : entry;
  algo : algo;
  dirty : bool S.tvar;
  watchers : int Atomic.t;
  ops : int Atomic.t;
      (** structure operations resolved against this slot, for [INFO]
          — counted at {!resolve} time (admitted, whether or not the
          transaction later succeeds) *)
}

(* The durability subsystem, seen from the session and registry side
   as a record of closures: [lib/persist] cannot depend on the server
   (the server depends on it), and threading a concrete handle through
   every session/evloop signature would churn every test.  [None]
   (the default) disables persistence: each field is consulted behind
   an option test, so the non-persistent server charges nothing.  See
   [Persist] for the implementation and the arm/finish protocol. *)
type persist_ops = {
  p_arm : string -> unit;
      (** arm the calling thread's pending-record slot with an encoded
          wire frame; the next committing write transaction {e on this
          thread} appends it to the op log (from inside the STM commit
          hook, stamped with the commit version) *)
  p_finish : unit -> (Polytm_persist.Aof.t * int) option;
      (** disarm: returns the log writer and record sequence number
          when the armed payload was appended (the op mutated and
          committed), [None] when it never reached a write commit
          (read-only / failed op).  The writer is part of the ticket
          because a checkpoint can rotate the active log between the
          append and the ack. *)
  p_wait_durable : Polytm_persist.Aof.t -> int -> unit;
      (** block until record [seq] of that log writer is fsynced
          (group commit: one [fsync] covers every record buffered
          before it) *)
  p_always : bool;  (** fsync policy is [`Always]: sessions must call
                        [p_wait_durable] before acking mutations *)
  p_log_new : Wire.kind -> string -> algo -> unit;
      (** append a structure-creation record (registry creations are
          CAS-published outside any transaction, so the commit hook
          never sees them) *)
  p_bgsave : unit -> Wire.response;
  p_lastsave : unit -> Wire.response;
  p_info : unit -> (string * string) list;
}

type t = {
  tl2 : Router.t;
  norec : Router.t;
  default_algo : algo;  (** applied to wire [NEW] (no algo on the wire) *)
  entries : (string * slot) list Atomic.t;
  draining : bool S.tvar array;  (** per TL2 shard, element [i] on shard [i] *)
  draining_norec : bool S.tvar array;
  waiters : int Atomic.t;
      (** parked blocking ops, server-wide: one budget across every
          instance of both routers (see {!reserve_waiter}) *)
  started_at : float;  (** wall-clock creation time, for [INFO] uptime *)
  mutable persist : persist_ops option;
      (** installed once, after recovery and before the listeners
          open; [None] while recovering and on non-persistent servers *)
}

let create ?(shards = 1) ?stm ?stm_norec ?(default_algo = `Tl2) () =
  if shards < 1 then invalid_arg "Registry: shards must be >= 1";
  (match stm with
  | Some s when S.algo s <> `Tl2 ->
      invalid_arg "Registry: stm must be a TL2 instance"
  | _ -> ());
  (match stm_norec with
  | Some s when S.algo s <> `Norec ->
      invalid_arg "Registry: stm_norec must be a NORec instance"
  | _ -> ());
  (* An injected instance (tests pin instances for determinism)
     becomes shard 0; further shards are fresh siblings. *)
  let tl2 =
    Router.create ~shards (fun i ->
        match (i, stm) with 0, Some s -> s | _ -> S.create ())
  in
  let norec =
    Router.create ~shards (fun i ->
        match (i, stm_norec) with
        | 0, Some s -> s
        | _ -> S.create ~algo:`Norec ())
  in
  {
    tl2;
    norec;
    default_algo;
    entries = Atomic.make [];
    draining = Array.init shards (fun i -> S.tvar (Router.shard tl2 i) false);
    draining_norec =
      Array.init shards (fun i -> S.tvar (Router.shard norec i) false);
    waiters = Atomic.make 0;
    started_at = Unix.gettimeofday ();
    persist = None;
  }

let router_for t = function `Tl2 -> t.tl2 | `Norec -> t.norec
let shard_count t = Router.count t.tl2

(* The control shard: shard 0, home of the dirty and drain flags.
   With one shard it {e is} the instance, so these accessors keep
   their pre-sharding meaning. *)
let stm t = Router.shard t.tl2 0
let stm_for t algo = Router.shard (router_for t algo) 0
let instances t algo = Router.all (router_for t algo)
let default_algo t = t.default_algo
let drains_for t = function `Tl2 -> t.draining | `Norec -> t.draining_norec

(* Flip the drain flag of every shard of both routers, each in a
   transaction of its own: the commits wake every parked waiter whose
   read set includes its shard's flag (all blocking server ops read
   their home shard's flag first), so parked sessions resurface and
   answer [Nil] instead of sleeping through shutdown. *)
let set_draining t =
  List.iter
    (fun algo ->
      let router = router_for t algo in
      Array.iteri
        (fun i flag ->
          S.atomically ~label:"set-draining" (Router.shard router i) (fun tx ->
              S.write tx flag true))
        (drains_for t algo))
    [ `Tl2; `Norec ]

(* ---- the server-wide waiter budget ------------------------------------- *)

(* One atomic budget for every parked blocking op on the server,
   whatever instance it parks on.  The pre-sharding admission check
   compared [S.waiting] of the {e one} instance the op targeted
   against the cap, which (a) let TL2 and NORec waiters each fill a
   whole cap — and K shards fill K caps — and (b) raced: two sessions
   could both pass the check and both park past the limit.  Reserving
   a slot {e before} parking (and releasing it on wake or timeout)
   closes both holes: the CAS admits at most [limit] reservations no
   matter how many instances exist or how the checks interleave. *)
let reserve_waiter t ~limit =
  let rec go () =
    let n = Atomic.get t.waiters in
    if n >= limit then false
    else if Atomic.compare_and_set t.waiters n (n + 1) then true
    else go ()
  in
  go ()

let release_waiter t = Atomic.decr t.waiters
let waiting t = Atomic.get t.waiters
let algo_name = function `Tl2 -> "tl2" | `Norec -> "norec"

let algo_of_name = function
  | "tl2" -> Some `Tl2
  | "norec" -> Some `Norec
  | _ -> None

let find t name =
  Option.map (fun s -> s.entry) (List.assoc_opt name (Atomic.get t.entries))

let algo_of t name =
  Option.map (fun s -> s.algo) (List.assoc_opt name (Atomic.get t.entries))

let kind_of_entry = function
  | Emap _ -> Wire.Kmap
  | Eset _ -> Wire.Kset
  | Equeue _ -> Wire.Kqueue

(* Idempotent creation: NEW of an existing name succeeds when the kind
   matches (so clients can ensure their structures without
   coordination) and is a typed error when it does not.  The algorithm
   is fixed at first creation — the wire carries no algo, so an
   ensure of an existing name never migrates it between instances.

   First-touch race audit: two sessions racing to create ["map:x"]
   both build a fresh slot, but the CAS linearises them — exactly one
   swaps its slot in; the loser re-runs [go], finds the winner's slot
   under the name, and converges on it ([Ok `Existed]).  The loser's
   orphan structure was never published and is collected.  A lookup
   racing the creation either sees the old list (NOSTRUCT — the
   structure did not exist yet at its linearisation point) or the new
   one; it can never see a half-initialised slot because the slot is
   fully built before the CAS publishes it.  The socketpair e2e test
   hammers this with racing first-touch creation from four
   connections. *)
let ensure ?algo t kind name =
  let algo = Option.value algo ~default:t.default_algo in
  let router = router_for t algo in
  let fresh () =
    let entry =
      match kind with
      | Wire.Kmap -> Emap (Shd.Map.create router)
      | Wire.Kset -> Eset (Shd.Hash_set.create router)
      | Wire.Kqueue ->
          let home = Router.index_of_key router name in
          Equeue (Squeue.create (Router.shard router home), home)
    in
    {
      entry;
      algo;
      dirty = S.tvar (Router.shard router 0) false;
      watchers = Atomic.make 0;
      ops = Atomic.make 0;
    }
  in
  let rec go () =
    let cur = Atomic.get t.entries in
    match List.assoc_opt name cur with
    | Some s ->
        if kind_of_entry s.entry = kind then Ok `Existed
        else
          Error
            (Wire.Error
               ( Wire.Bad_op,
                 Printf.sprintf "%s exists with kind %s" name
                   (Wire.kind_to_string (kind_of_entry s.entry)) ))
    | None ->
        (* Log the creation {e before} the CAS publishes the name: a
           racing session can only reach the structure (and append op
           records for it) after the CAS, so the NEW record always
           precedes the ops that need it.  A CAS loser's duplicate NEW
           replays as an idempotent ensure. *)
        (match t.persist with
        | Some p -> p.p_log_new kind name algo
        | None -> ());
        if Atomic.compare_and_set t.entries cur ((name, fresh ()) :: cur) then
          Ok `Created
        else go ()
  in
  go ()

let names t =
  List.sort compare (List.map fst (Atomic.get t.entries))

(* ---- command resolution ------------------------------------------------ *)

let err code fmt = Printf.ksprintf (fun m -> Wire.Error (code, m)) fmt

let bool_resp b = Wire.Int (if b then 1 else 0)

let mismatch cmd entry =
  err Wire.Bad_op "%s does not apply to a %s" (Wire.cmd_name cmd)
    (Wire.kind_to_string (kind_of_entry entry))

(* Where a resolved command's transaction must run: one owner instance
   (point operations, anything on a pinned queue, every operation of a
   1-shard server) or the set of instances a cross-shard aggregate
   spans.  The session opens the matching transaction shape and the
   thunk flattens into it. *)
type site = Single of S.t | Spanning of S.t list

type resolved = {
  algo : algo;
  site : site;
  touched : slot option;
      (** mark this slot dirty once the transaction committed — only
          set on mutating commands of a multi-shard server; 1-shard
          mutators mark inline, inside their own transaction *)
  run : unit -> Wire.response;
}

(* Mark [slot] changed.  On a 1-shard server this is called inside the
   mutating transaction (the nested transaction flattens into it, so
   the mark commits atomically with the mutation); on a multi-shard
   server the session calls it after the commit, as its own small
   transaction on the control shard.  Watch-free structures pay one
   atomic load and no transactional write — enabling subscriptions
   costs nothing until someone subscribes. *)
let touch t slot =
  if Atomic.get slot.watchers > 0 then
    S.atomically ~label:"mark-dirty" (stm_for t slot.algo) (fun tx ->
        S.write tx slot.dirty true)

let home_of t (s : slot) home = Router.shard (router_for t s.algo) home

(* The aggregate site of a sharded structure: its whole router, unless
   the server runs one shard (then the aggregate is an ordinary
   single-instance transaction — exactly the pre-sharding path). *)
let span insts = match insts with [ s ] -> Single s | l -> Spanning l

let resolve t cmd : (resolved, Wire.response) result =
  let with_slot name k =
    match List.assoc_opt name (Atomic.get t.entries) with
    | None -> Error (err Wire.No_struct "no structure named %S" name)
    | Some s ->
        Atomic.incr s.ops;
        k s
  in
  let ok (s : slot) site run = Ok { algo = s.algo; site; touched = None; run } in
  (* A mutating thunk also marks the slot dirty for its watchers:
     inline when one shard (atomic with the mutation), deferred to
     the session's post-commit hook when several (see [touch]). *)
  let mutating (s : slot) site thunk =
    if shard_count t = 1 then
      Ok
        {
          algo = s.algo;
          site;
          touched = None;
          run =
            (fun () ->
              let r = thunk () in
              touch t s;
              r);
        }
    else Ok { algo = s.algo; site; touched = Some s; run = thunk }
  in
  match cmd with
  | Wire.Get (name, key) ->
      with_slot name (fun s ->
          match s.entry with
          | Emap m ->
              ok s
                (Single (Shd.Map.owner m key))
                (fun () ->
                  match Shd.Map.find_opt m key with
                  | Some v -> Wire.Bulk v
                  | None -> Wire.Nil)
          | e -> Error (mismatch cmd e))
  | Wire.Put (name, key, v) ->
      with_slot name (fun s ->
          match s.entry with
          | Emap m ->
              mutating s
                (Single (Shd.Map.owner m key))
                (fun () -> bool_resp (Shd.Map.add m key v))
          | e -> Error (mismatch cmd e))
  | Wire.Del (name, key) ->
      with_slot name (fun s ->
          match s.entry with
          | Emap m ->
              mutating s
                (Single (Shd.Map.owner m key))
                (fun () -> bool_resp (Shd.Map.remove m key))
          | e -> Error (mismatch cmd e))
  | Wire.Contains (name, key) ->
      with_slot name (fun s ->
          match s.entry with
          | Emap m ->
              ok s
                (Single (Shd.Map.owner m key))
                (fun () -> bool_resp (Shd.Map.mem m key))
          | Eset hs ->
              ok s
                (Single (Shd.Hash_set.owner hs key))
                (fun () -> bool_resp (Shd.Hash_set.contains hs key))
          | e -> Error (mismatch cmd e))
  | Wire.Add (name, key) ->
      with_slot name (fun s ->
          match s.entry with
          | Eset hs ->
              mutating s
                (Single (Shd.Hash_set.owner hs key))
                (fun () -> bool_resp (Shd.Hash_set.add hs key))
          | e -> Error (mismatch cmd e))
  | Wire.Remove (name, key) ->
      with_slot name (fun s ->
          match s.entry with
          | Eset hs ->
              mutating s
                (Single (Shd.Hash_set.owner hs key))
                (fun () -> bool_resp (Shd.Hash_set.remove hs key))
          | e -> Error (mismatch cmd e))
  | Wire.Size name ->
      with_slot name (fun s ->
          match s.entry with
          | Emap m ->
              ok s
                (span (Shd.Map.instances m))
                (fun () -> Wire.Int (Shd.Map.size m))
          | Eset hs ->
              ok s
                (span (Shd.Hash_set.instances hs))
                (fun () -> Wire.Int (Shd.Hash_set.size hs))
          | Equeue (q, home) ->
              ok s
                (Single (home_of t s home))
                (fun () -> Wire.Int (Squeue.length q)))
  | Wire.Snapshot_iter name ->
      with_slot name (fun s ->
          match s.entry with
          | Emap m ->
              ok s
                (span (Shd.Map.instances m))
                (fun () ->
                  Wire.Array
                    (List.map
                       (fun (k, v) -> Wire.Array [ Wire.Int k; Wire.Bulk v ])
                       (Shd.Map.to_list m)))
          | Eset hs ->
              ok s
                (span (Shd.Hash_set.instances hs))
                (fun () ->
                  Wire.Array
                    (List.map (fun k -> Wire.Int k) (Shd.Hash_set.to_list hs)))
          | Equeue (q, home) ->
              ok s
                (Single (home_of t s home))
                (fun () ->
                  Wire.Array
                    (List.map (fun v -> Wire.Bulk v) (Squeue.to_list q))))
  | Wire.Enq (name, v) ->
      with_slot name (fun s ->
          match s.entry with
          | Equeue (q, home) ->
              mutating s
                (Single (home_of t s home))
                (fun () ->
                  Squeue.enqueue q v;
                  Wire.ok)
          | e -> Error (mismatch cmd e))
  | Wire.Deq name ->
      with_slot name (fun s ->
          match s.entry with
          | Equeue (q, home) ->
              mutating s
                (Single (home_of t s home))
                (fun () ->
                  match Squeue.dequeue_opt q with
                  | Some v -> Wire.Bulk v
                  | None -> Wire.Nil)
          | e -> Error (mismatch cmd e))
  | Wire.Ping | Wire.New _ | Wire.Multi | Wire.Multi_end | Wire.Debug_abort _
  | Wire.Blpop _ | Wire.Btake _ | Wire.Watch _ | Wire.Unwatch _ | Wire.Info
  | Wire.Bgsave | Wire.Lastsave ->
      Error
        (err Wire.Bad_op "%s is not a structure operation" (Wire.cmd_name cmd))

(* ---- streaming snapshot fast path -------------------------------------- *)

(* Resolve SNAPSHOT-ITER into an encoder thunk that runs inside the
   session's transaction and writes each element straight into the
   caller's scratch {!Wire.Obuf} — never materialising the
   [Wire.Array] response tree.  The emitted bytes, once wrapped by
   [Wire.write_framed_array] with the returned element count, are
   byte-identical to [Wire.write_response] of the tree the slow path
   builds.  The thunk clears the scratch first so an aborted attempt's
   partial output never leaks into the retry.  A sharded map streams
   the k-way merge of its parts' ascending-order lists, so global key
   order on the wire is unchanged. *)
let snapshot_stream t name (items : Wire.Obuf.t) :
    (site * (unit -> int), Wire.response) result =
  match List.assoc_opt name (Atomic.get t.entries) with
  | None -> Error (err Wire.No_struct "no structure named %S" name)
  | Some s -> (
      match s.entry with
      | Emap m ->
          let enc () =
            Wire.Obuf.clear items;
            List.fold_left
              (fun n (k, v) ->
                Wire.obuf_add_array_header items 2;
                Wire.obuf_add_int_item items k;
                Wire.obuf_add_bulk items v;
                n + 1)
              0 (Shd.Map.to_list m)
          in
          Ok (span (Shd.Map.instances m), enc)
      | Eset hs ->
          let enc () =
            Wire.Obuf.clear items;
            List.fold_left
              (fun n k ->
                Wire.obuf_add_int_item items k;
                n + 1)
              0 (Shd.Hash_set.to_list hs)
          in
          Ok (span (Shd.Hash_set.instances hs), enc)
      | Equeue (q, home) ->
          let enc () =
            Wire.Obuf.clear items;
            List.fold_left
              (fun n v ->
                Wire.obuf_add_bulk items v;
                n + 1)
              0 (Squeue.to_list q)
          in
          Ok (Single (home_of t s home), enc))

(* ---- blocking ops and subscriptions ------------------------------------ *)

(* Resolve a blocking queue pop into a thunk for the session to run
   inside its own deadline-bounded transaction on the queue's home
   instance (returned alongside).  The home shard's drain flag is read
   {e first}, so it is in the read set when [retry] parks: the
   shutdown path's [set_draining] commit on that shard wakes the
   waiter, which re-runs, sees the flag, and surfaces [`Drained] — no
   session ever sleeps through a drain.  A successful pop marks the
   slot dirty like any mutation (the mark follows the pop's own
   transaction, so it is post-commit by construction). *)
let blocking_pop t name :
    (S.t * (unit -> [ `Got of string | `Drained ]), Wire.response) result =
  match List.assoc_opt name (Atomic.get t.entries) with
  | None -> Error (err Wire.No_struct "no structure named %S" name)
  | Some s -> (
      match s.entry with
      | Equeue (q, home) ->
          let stm = home_of t s home in
          let drain = (drains_for t s.algo).(home) in
          Ok
            ( stm,
              fun () ->
                let r =
                  S.atomically stm (fun tx ->
                      if S.read tx drain then `Drained
                      else
                        match Squeue.dequeue_opt_tx tx q with
                        | Some v -> `Got v
                        | None -> S.retry tx)
                in
                (match r with `Got _ -> touch t s | `Drained -> ());
                r )
      | e -> Error (mismatch (Wire.Blpop (name, 0)) e))

type watch = { wslot : slot; wname : string }

let watch t name =
  match List.assoc_opt name (Atomic.get t.entries) with
  | None -> Error (err Wire.No_struct "no structure named %S" name)
  | Some s ->
      Atomic.incr s.watchers;
      Ok { wslot = s; wname = name }

let unwatch _t w = Atomic.decr w.wslot.watchers
let watch_name w = w.wname

module R = Polytm_runtime.Domain_runtime

(* Collect the names of watched structures that changed since the last
   call, clearing their dirty flags.  Dirty flags live on the control
   shard of their algorithm, so when every watch lives on one
   algorithm the session genuinely {e parks} ([S.retry] on the dirty
   flags plus the control shard's drain flag) until a mark's commit
   wakes it or [timeout_ns] passes — push latency is one commit, not
   one poll interval.  Watches spanning both algorithms cannot share a
   transaction, so they fall back to a non-blocking per-algorithm
   check and the caller's pacing. *)
let wait_dirty t ws ~timeout_ns =
  let collect tx ws =
    List.filter_map
      (fun w ->
        if S.read tx w.wslot.dirty then begin
          S.write tx w.wslot.dirty false;
          Some w.wname
        end
        else None)
      ws
  in
  match ws with
  | [] -> []
  | _ -> (
      match List.sort_uniq compare (List.map (fun w -> w.wslot.algo) ws) with
      | [ algo ] -> (
          let stm = stm_for t algo in
          let drain = (drains_for t algo).(0) in
          let deadline = R.now () + timeout_ns in
          match
            S.try_atomically ~deadline ~label:"watch-wait" stm (fun tx ->
                if S.read tx drain then []
                else
                  match collect tx ws with
                  | [] -> S.retry tx
                  | names -> names)
          with
          | S.Committed names -> names
          | S.Exhausted _ | S.Deadline_exceeded _ -> [])
      | algos ->
          List.concat_map
            (fun algo ->
              let wsg = List.filter (fun w -> w.wslot.algo = algo) ws in
              S.atomically ~label:"watch-check" (stm_for t algo) (fun tx ->
                  collect tx wsg))
            algos)

(* Default transaction semantics when the request carries no hint: the
   paper's novice default, except consistent iteration which is the
   snapshot showcase. *)
let default_sem = function
  | Wire.Snapshot_iter _ -> Polytm.Semantics.Snapshot
  | _ -> Polytm.Semantics.Classic

(* ---- introspection ----------------------------------------------------- *)

(* Stable name order, for INFO output and the checkpoint writer (a
   deterministic checkpoint file for a given state makes the recovery
   differential tests byte-comparable). *)
let slots t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Atomic.get t.entries)

let info t =
  let base =
    [
      ( "uptime_sec",
        string_of_int
          (int_of_float (Unix.gettimeofday () -. t.started_at)) );
      ("shards", string_of_int (shard_count t));
      ("default_algo", algo_name t.default_algo);
      ("structures", string_of_int (List.length (Atomic.get t.entries)));
      ("waiting", string_of_int (waiting t));
    ]
  in
  let per_struct =
    List.map
      (fun (name, s) ->
        ( "struct_" ^ name,
          Printf.sprintf "kind=%s,algo=%s,ops=%d"
            (Wire.kind_to_string (kind_of_entry s.entry))
            (algo_name s.algo) (Atomic.get s.ops) ))
      (slots t)
  in
  let persist =
    match t.persist with
    | None -> [ ("persist", "off") ]
    | Some p -> ("persist", "on") :: p.p_info ()
  in
  base @ per_struct @ persist

(* INFO's wire shape: one [Bulk] of "key:value" lines, so a probe can
   split on newlines without a response-tree walk. *)
let info_response t =
  let b = Buffer.create 512 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_char b ':';
      Buffer.add_string b v;
      Buffer.add_char b '\n')
    (info t);
  Wire.Bulk (Buffer.contents b)
