(** Named transactional structures hosted by the server, plus the
    translation from wire commands to STM operations.

    One registry owns two STM instances (over the domains runtime) —
    one per algorithm, TL2 and NORec — and a name -> structure table,
    so a server can host a NORec map next to a TL2 queue (DESIGN.md
    §S17).  Each structure is pinned at creation to one instance; the
    session runs the per-request transaction on the instance of the
    structure(s) it touches, which is what lets nested structure
    operations flatten into it.  The table itself is a persistent
    association list behind an [Atomic]: lookups on the request hot
    path are a single atomic load, and the rare creations CAS a new
    list in.  The {e contents} of every structure are transactional —
    the registry only maps names to roots.

    Command execution is split in two phases on purpose:

    - {!resolve} runs {e outside} any transaction: it checks the
      structure exists and the operation matches its kind, returning
      either an error response or a thunk.
    - the thunk runs {e inside} the session's [try_atomically]; the
      structure operations it calls open nested transactions that
      flatten into the session's outer one, which is how a whole
      [MULTI] batch, or a single hinted op, executes under exactly one
      transaction of the hinted semantics.

    Pre-resolving keeps failures atomic: a [MULTI] batch either
    resolves completely or executes not at all, so no partial batch is
    ever visible. *)

module S = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)
module Smap = Polytm_structs.Stm_map.Make (S)
module Sset = Polytm_structs.Stm_hash_set.Make (S)
module Squeue = Polytm_structs.Stm_queue.Make (S)

type entry =
  | Emap of string Smap.t
  | Eset of Sset.t
  | Equeue of string Squeue.t

type algo = [ `Tl2 | `Norec ]

(* A structure is pinned to the instance it was created on.  [dirty]
   and [watchers] drive WATCH push subscriptions: mutating thunks set
   [dirty] inside their own transaction — but only while [watchers] is
   positive, so unwatched structures pay a single atomic load — and a
   watching session's poll transaction reads (and clears) it, parking
   via [S.retry] until the next mutation's commit wakes it. *)
type slot = {
  entry : entry;
  algo : algo;
  dirty : bool S.tvar;
  watchers : int Atomic.t;
}

type t = {
  stm : S.t;  (** the TL2 instance *)
  stm_norec : S.t;
  default_algo : algo;  (** applied to wire [NEW] (no algo on the wire) *)
  entries : (string * slot) list Atomic.t;
  draining : bool S.tvar;  (** on the TL2 instance *)
  draining_norec : bool S.tvar;
}

let create ?stm ?stm_norec ?(default_algo = `Tl2) () =
  let stm = match stm with Some s -> s | None -> S.create () in
  let stm_norec =
    match stm_norec with Some s -> s | None -> S.create ~algo:`Norec ()
  in
  if S.algo stm <> `Tl2 then invalid_arg "Registry: stm must be a TL2 instance";
  if S.algo stm_norec <> `Norec then
    invalid_arg "Registry: stm_norec must be a NORec instance";
  {
    stm;
    stm_norec;
    default_algo;
    entries = Atomic.make [];
    draining = S.tvar stm false;
    draining_norec = S.tvar stm_norec false;
  }

let stm t = t.stm
let stm_for t = function `Tl2 -> t.stm | `Norec -> t.stm_norec
let default_algo t = t.default_algo
let draining_for t = function `Tl2 -> t.draining | `Norec -> t.draining_norec

(* Flip the drain flag on both instances, each in a transaction of its
   own: the commits wake every parked waiter whose read set includes
   the flag (all blocking server ops read it first), so parked
   sessions resurface and answer [Nil] instead of sleeping through
   shutdown. *)
let set_draining t =
  S.atomically ~label:"set-draining" t.stm (fun tx ->
      S.write tx t.draining true);
  S.atomically ~label:"set-draining" t.stm_norec (fun tx ->
      S.write tx t.draining_norec true)
let algo_name = function `Tl2 -> "tl2" | `Norec -> "norec"

let algo_of_name = function
  | "tl2" -> Some `Tl2
  | "norec" -> Some `Norec
  | _ -> None

let find t name =
  Option.map (fun s -> s.entry) (List.assoc_opt name (Atomic.get t.entries))

let algo_of t name =
  Option.map (fun s -> s.algo) (List.assoc_opt name (Atomic.get t.entries))

let kind_of_entry = function
  | Emap _ -> Wire.Kmap
  | Eset _ -> Wire.Kset
  | Equeue _ -> Wire.Kqueue

(* Idempotent creation: NEW of an existing name succeeds when the kind
   matches (so clients can ensure their structures without
   coordination) and is a typed error when it does not.  The algorithm
   is fixed at first creation — the wire carries no algo, so an
   ensure of an existing name never migrates it between instances. *)
let ensure ?algo t kind name =
  let algo = Option.value algo ~default:t.default_algo in
  let stm = stm_for t algo in
  let fresh () =
    let entry =
      match kind with
      | Wire.Kmap -> Emap (Smap.create stm)
      | Wire.Kset -> Eset (Sset.create stm)
      | Wire.Kqueue -> Equeue (Squeue.create stm)
    in
    { entry; algo; dirty = S.tvar stm false; watchers = Atomic.make 0 }
  in
  let rec go () =
    let cur = Atomic.get t.entries in
    match List.assoc_opt name cur with
    | Some s ->
        if kind_of_entry s.entry = kind then Ok `Existed
        else
          Error
            (Wire.Error
               ( Wire.Bad_op,
                 Printf.sprintf "%s exists with kind %s" name
                   (Wire.kind_to_string (kind_of_entry s.entry)) ))
    | None ->
        if Atomic.compare_and_set t.entries cur ((name, fresh ()) :: cur) then
          Ok `Created
        else go ()
  in
  go ()

let names t =
  List.sort compare (List.map fst (Atomic.get t.entries))

(* ---- command resolution ------------------------------------------------ *)

let err code fmt = Printf.ksprintf (fun m -> Wire.Error (code, m)) fmt

let bool_resp b = Wire.Int (if b then 1 else 0)

let mismatch cmd entry =
  err Wire.Bad_op "%s does not apply to a %s" (Wire.cmd_name cmd)
    (Wire.kind_to_string (kind_of_entry entry))

(* Mark [slot] changed, atomically with the mutation that calls this
   (the nested transaction flattens into the session's outer one).
   Watch-free structures pay one atomic load and no transactional
   write — enabling subscriptions costs nothing until someone
   subscribes. *)
let touch t slot =
  if Atomic.get slot.watchers > 0 then
    S.atomically ~label:"mark-dirty" (stm_for t slot.algo) (fun tx ->
        S.write tx slot.dirty true)

(* [resolve t cmd] is either an immediate error response or a thunk to
   run inside the session's transaction, paired with the algorithm of
   the instance the transaction must run on.  Only plain structure
   operations resolve here — PING/NEW/MULTI/DEBUG-ABORT and the
   blocking/subscription ops are session concerns. *)
let resolve t cmd : (algo * (unit -> Wire.response), Wire.response) result =
  let with_slot name k =
    match List.assoc_opt name (Atomic.get t.entries) with
    | None -> Error (err Wire.No_struct "no structure named %S" name)
    | Some s -> Result.map (fun thunk -> (s.algo, thunk)) (k s)
  in
  let with_entry name k = with_slot name (fun s -> k s.entry) in
  (* A mutating thunk also marks the slot dirty for its watchers. *)
  let marking s thunk () =
    let r = thunk () in
    touch t s;
    r
  in
  match cmd with
  | Wire.Get (name, key) ->
      with_entry name (function
        | Emap m ->
            Ok
              (fun () ->
                match Smap.find_opt m key with
                | Some v -> Wire.Bulk v
                | None -> Wire.Nil)
        | e -> Error (mismatch cmd e))
  | Wire.Put (name, key, v) ->
      with_slot name (fun s ->
          match s.entry with
          | Emap m -> Ok (marking s (fun () -> bool_resp (Smap.add m key v)))
          | e -> Error (mismatch cmd e))
  | Wire.Del (name, key) ->
      with_slot name (fun s ->
          match s.entry with
          | Emap m -> Ok (marking s (fun () -> bool_resp (Smap.remove m key)))
          | e -> Error (mismatch cmd e))
  | Wire.Contains (name, key) ->
      with_entry name (function
        | Emap m -> Ok (fun () -> bool_resp (Smap.mem m key))
        | Eset s -> Ok (fun () -> bool_resp (Sset.contains s key))
        | e -> Error (mismatch cmd e))
  | Wire.Add (name, key) ->
      with_slot name (fun s ->
          match s.entry with
          | Eset set -> Ok (marking s (fun () -> bool_resp (Sset.add set key)))
          | e -> Error (mismatch cmd e))
  | Wire.Remove (name, key) ->
      with_slot name (fun s ->
          match s.entry with
          | Eset set ->
              Ok (marking s (fun () -> bool_resp (Sset.remove set key)))
          | e -> Error (mismatch cmd e))
  | Wire.Size name ->
      with_entry name (function
        | Emap m -> Ok (fun () -> Wire.Int (Smap.size m))
        | Eset s -> Ok (fun () -> Wire.Int (Sset.size s))
        | Equeue q -> Ok (fun () -> Wire.Int (Squeue.length q)))
  | Wire.Snapshot_iter name ->
      with_entry name (function
        | Emap m ->
            Ok
              (fun () ->
                Wire.Array
                  (List.map
                     (fun (k, v) -> Wire.Array [ Wire.Int k; Wire.Bulk v ])
                     (Smap.to_list m)))
        | Eset s ->
            Ok
              (fun () ->
                Wire.Array (List.map (fun k -> Wire.Int k) (Sset.to_list s)))
        | Equeue q ->
            Ok
              (fun () ->
                Wire.Array (List.map (fun v -> Wire.Bulk v) (Squeue.to_list q))))
  | Wire.Enq (name, v) ->
      with_slot name (fun s ->
          match s.entry with
          | Equeue q ->
              Ok
                (marking s (fun () ->
                     Squeue.enqueue q v;
                     Wire.ok))
          | e -> Error (mismatch cmd e))
  | Wire.Deq name ->
      with_slot name (fun s ->
          match s.entry with
          | Equeue q ->
              Ok
                (marking s (fun () ->
                     match Squeue.dequeue_opt q with
                     | Some v -> Wire.Bulk v
                     | None -> Wire.Nil))
          | e -> Error (mismatch cmd e))
  | Wire.Ping | Wire.New _ | Wire.Multi | Wire.Multi_end | Wire.Debug_abort _
  | Wire.Blpop _ | Wire.Btake _ | Wire.Watch _ | Wire.Unwatch _ ->
      Error (err Wire.Bad_op "%s is not a structure operation" (Wire.cmd_name cmd))

(* ---- streaming snapshot fast path -------------------------------------- *)

(* Resolve SNAPSHOT-ITER into an encoder thunk that runs inside the
   session's transaction and writes each element straight into the
   caller's scratch {!Wire.Obuf} — never materialising the
   [Wire.Array] response tree.  The emitted bytes, once wrapped by
   [Wire.write_framed_array] with the returned element count, are
   byte-identical to [Wire.write_response] of the tree the slow path
   builds.  The thunk clears the scratch first so an aborted attempt's
   partial output never leaks into the retry. *)
let snapshot_stream t name (items : Wire.Obuf.t) :
    (algo * (unit -> int), Wire.response) result =
  match List.assoc_opt name (Atomic.get t.entries) with
  | None -> Error (err Wire.No_struct "no structure named %S" name)
  | Some s ->
      let enc =
        match s.entry with
        | Emap m ->
            fun () ->
              Wire.Obuf.clear items;
              Smap.fold m
                (fun n k v ->
                  Wire.obuf_add_array_header items 2;
                  Wire.obuf_add_int_item items k;
                  Wire.obuf_add_bulk items v;
                  n + 1)
                0
        | Eset hs ->
            fun () ->
              Wire.Obuf.clear items;
              List.fold_left
                (fun n k ->
                  Wire.obuf_add_int_item items k;
                  n + 1)
                0 (Sset.to_list hs)
        | Equeue q ->
            fun () ->
              Wire.Obuf.clear items;
              List.fold_left
                (fun n v ->
                  Wire.obuf_add_bulk items v;
                  n + 1)
                0 (Squeue.to_list q)
      in
      Ok (s.algo, enc)

(* ---- blocking ops and subscriptions ------------------------------------ *)

(* Resolve a blocking queue pop into a thunk for the session to run
   inside its own deadline-bounded transaction.  The drain flag is read
   {e first}, so it is in the read set when [retry] parks: the shutdown
   path's [set_draining] commit wakes the waiter, which re-runs, sees
   the flag, and surfaces [`Drained] — no session ever sleeps through a
   drain.  A successful pop marks the slot dirty like any mutation. *)
let blocking_pop t name :
    (algo * (unit -> [ `Got of string | `Drained ]), Wire.response) result =
  match List.assoc_opt name (Atomic.get t.entries) with
  | None -> Error (err Wire.No_struct "no structure named %S" name)
  | Some s -> (
      match s.entry with
      | Equeue q ->
          let stm = stm_for t s.algo in
          let drain = draining_for t s.algo in
          Ok
            ( s.algo,
              fun () ->
                let r =
                  S.atomically stm (fun tx ->
                      if S.read tx drain then `Drained
                      else
                        match Squeue.dequeue_opt_tx tx q with
                        | Some v -> `Got v
                        | None -> S.retry tx)
                in
                (match r with `Got _ -> touch t s | `Drained -> ());
                r )
      | e -> Error (mismatch (Wire.Blpop (name, 0)) e))

type watch = { wslot : slot; wname : string }

let watch t name =
  match List.assoc_opt name (Atomic.get t.entries) with
  | None -> Error (err Wire.No_struct "no structure named %S" name)
  | Some s ->
      Atomic.incr s.watchers;
      Ok { wslot = s; wname = name }

let unwatch _t w = Atomic.decr w.wslot.watchers
let watch_name w = w.wname

module R = Polytm_runtime.Domain_runtime

(* Collect the names of watched structures that changed since the last
   call, clearing their dirty flags.  When every watch lives on one
   instance the session genuinely {e parks} ([S.retry] on the dirty
   flags plus the drain flag) until a mutation's commit wakes it or
   [timeout_ns] passes — push latency is one commit, not one poll
   interval.  Watches spanning both instances cannot share a
   transaction, so they fall back to a non-blocking per-instance check
   and the caller's pacing. *)
let wait_dirty t ws ~timeout_ns =
  let collect tx ws =
    List.filter_map
      (fun w ->
        if S.read tx w.wslot.dirty then begin
          S.write tx w.wslot.dirty false;
          Some w.wname
        end
        else None)
      ws
  in
  match ws with
  | [] -> []
  | _ -> (
      match List.sort_uniq compare (List.map (fun w -> w.wslot.algo) ws) with
      | [ algo ] -> (
          let stm = stm_for t algo in
          let drain = draining_for t algo in
          let deadline = R.now () + timeout_ns in
          match
            S.try_atomically ~deadline ~label:"watch-wait" stm (fun tx ->
                if S.read tx drain then []
                else
                  match collect tx ws with
                  | [] -> S.retry tx
                  | names -> names)
          with
          | S.Committed names -> names
          | S.Exhausted _ | S.Deadline_exceeded _ -> [])
      | algos ->
          List.concat_map
            (fun algo ->
              let wsg = List.filter (fun w -> w.wslot.algo = algo) ws in
              S.atomically ~label:"watch-check" (stm_for t algo) (fun tx ->
                  collect tx wsg))
            algos)

(* Default transaction semantics when the request carries no hint: the
   paper's novice default, except consistent iteration which is the
   snapshot showcase. *)
let default_sem = function
  | Wire.Snapshot_iter _ -> Polytm.Semantics.Snapshot
  | _ -> Polytm.Semantics.Classic
