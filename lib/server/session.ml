(** One client connection as a resumable state machine, driven by an
    event loop ({!Evloop}) instead of a blocking thread.

    The session still executes its requests strictly in order — what
    pipelining clients rely on — but it never blocks the loop: every
    step is a non-blocking poke.  [on_readable] performs one
    [Unix.read] straight into the decoder's buffer, decodes every
    complete frame of that batch (applying the [max_inflight]
    admission bound per batch, BUSY refusals keeping their reply
    slots), and [pump] executes the admitted queue.  Replies are
    encoded directly into the session's reusable {!Wire.Obuf} — no
    per-frame string, no [Buffer.contents] copy — and [try_flush]
    hands the pending region to a single [Unix.write]; a partial
    write leaves the tail for the loop's writability notification.

    Blocking operations ([BLPOP]/[BTAKE] parks, watch waits) would
    stall the loop, so they are offloaded: the session flips to
    [parked], ships the waiting transaction to a helper thread via
    [services.submit], and the helper delivers the finished reply
    back onto the loop thread via [services.post].  The fd stays
    registered throughout (reads are simply masked while parked), the
    existing commit-driven wakeup completes the wait, and the reply
    is flushed by the loop like any other.  All session state is
    mutated on the loop thread only.

    {b Privatization safety} (the response-buffer argument, DESIGN.md
    §S16): a reply's payload is the value returned by the {e committed}
    attempt of [try_atomically] — aborted attempts' results are
    discarded with their effects — and it is serialised into the
    output buffer strictly {e after} the commit (or, for snapshot
    transactions, after the consistent read-only view completed).
    The streaming snapshot path keeps this property: the encoder
    thunk writes into a scratch buffer that is cleared on every
    attempt, and the scratch reaches the output buffer only once the
    transaction committed.  The wire never carries a value from a
    doomed transaction.

    The session knows nothing about sockets beyond a file descriptor,
    so the deterministic end-to-end tests drive it over
    [Unix.socketpair] through {!Evloop.handle}. *)

module S = Registry.S
module R = Polytm_runtime.Domain_runtime
module Hist = Polytm_util.Stats.Hist

(* ---- per-session / per-worker statistics ------------------------------- *)

type stats = {
  mutable requests : int;  (** well-formed frames received *)
  mutable replies : int;
  mutable busy : int;  (** requests refused for backpressure *)
  mutable proto_errors : int;  (** malformed or corrupt frames *)
  mutable deadline_errors : int;
  mutable exhausted_errors : int;
  mutable sem_errors : int;  (** hint forbade the operation *)
  mutable other_errors : int;  (** NOSTRUCT / BADOP replies *)
  lat_by_sem : Hist.t array;
      (** op latency (ns) per executed semantics: classic, elastic,
          snapshot — index with {!sem_index} *)
  lat_all : Hist.t;  (** op latency (ns) over every executed request *)
}

let create_stats () =
  {
    requests = 0;
    replies = 0;
    busy = 0;
    proto_errors = 0;
    deadline_errors = 0;
    exhausted_errors = 0;
    sem_errors = 0;
    other_errors = 0;
    lat_by_sem = Array.init 3 (fun _ -> Hist.create ());
    lat_all = Hist.create ();
  }

let sem_index = function
  | Polytm.Semantics.Classic -> 0
  | Polytm.Semantics.Elastic -> 1
  | Polytm.Semantics.Snapshot -> 2

let sem_of_index = function
  | 0 -> Polytm.Semantics.Classic
  | 1 -> Polytm.Semantics.Elastic
  | _ -> Polytm.Semantics.Snapshot

let merge_stats ~into src =
  into.requests <- into.requests + src.requests;
  into.replies <- into.replies + src.replies;
  into.busy <- into.busy + src.busy;
  into.proto_errors <- into.proto_errors + src.proto_errors;
  into.deadline_errors <- into.deadline_errors + src.deadline_errors;
  into.exhausted_errors <- into.exhausted_errors + src.exhausted_errors;
  into.sem_errors <- into.sem_errors + src.sem_errors;
  into.other_errors <- into.other_errors + src.other_errors;
  Array.iteri
    (fun i h -> Hist.merge_into ~into:into.lat_by_sem.(i) h)
    src.lat_by_sem;
  Hist.merge_into ~into:into.lat_all src.lat_all

(* ---- telemetry labels --------------------------------------------------

   Call-site labels are "op@semantics" ("contains@elastic",
   "size@snapshot", ...), so the per-site abort breakdown doubles as a
   per-semantics-class commit/abort table.  They are interned once at
   module load; the request hot path only does lookups (the table is
   never mutated after initialisation, so concurrent reads from worker
   domains are safe). *)

let op_classes =
  [ "PING"; "NEW"; "GET"; "PUT"; "DEL"; "CONTAINS"; "ADD"; "REMOVE"; "SIZE";
    "SNAPSHOT-ITER"; "ENQ"; "DEQ"; "BLPOP"; "BTAKE"; "WATCH"; "UNWATCH";
    "MULTI"; "MULTI-END"; "INFO"; "BGSAVE"; "LASTSAVE"; "DEBUG-ABORT" ]

let label_table : (string * int, string) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter
    (fun op ->
      for i = 0 to 2 do
        let sem = sem_of_index i in
        Hashtbl.add t (op, i)
          (String.lowercase_ascii op ^ "@" ^ Polytm.Semantics.to_string sem)
      done)
    op_classes;
  t

let label_of cmd sem =
  match Hashtbl.find_opt label_table (Wire.cmd_name cmd, sem_index sem) with
  | Some l -> l
  | None -> Wire.cmd_name cmd

(* ---- the session ------------------------------------------------------- *)

type services = {
  submit : (unit -> unit) -> unit;
      (** run a job on a helper thread that may park in the STM *)
  post : (unit -> unit) -> unit;
      (** run a closure on the loop thread (and wake the loop) *)
}

type action = Exec of Wire.request | Refuse of Wire.response

type t = {
  fd : Unix.file_descr;
  reg : Registry.t;
  limits : Limits.t;
  stats : stats;
  stop : unit -> bool;
  services : services;
  dec : Wire.Decoder.t;
  out : Wire.Obuf.t;  (** encoded replies awaiting [write] *)
  scratch : Wire.Obuf.t;  (** snapshot fast path's item staging area *)
  pending : action Queue.t;  (** decoded batch awaiting execution *)
  mutable in_multi : bool;
  mutable multi_hint : Polytm.Semantics.t option;
  mutable multi_rev : Wire.cmd list;  (** queued batch, newest first *)
  mutable multi_count : int;
  mutable watches : Registry.watch list;  (** active WATCH subscriptions *)
  mutable durables : (Polytm_persist.Aof.t * int) list;
      (** op-log append tickets awaiting fsync before their replies may
          leave the socket — only populated under [--fsync always];
          drained by [try_flush] (group commit: one wait covers the
          whole pipelined batch).  Loop-thread state, like the rest. *)
  mutable watch_inflight : bool;  (** a watch wait is out on a helper *)
  mutable parked : bool;  (** a blocking op is out on a helper *)
  mutable draining : bool;  (** stop observed: answer, flush, close *)
  mutable input_done : bool;  (** EOF or corrupt framing: read no more *)
  mutable closing : bool;  (** flush [out], then close *)
  mutable closed : bool;  (** drop everything now *)
}

let err = Registry.err

(* ---- durability arming --------------------------------------------------

   The persist layer's commit hook runs inside the STM commit and only
   knows the commit stamp; the session tells it {e what} to log by
   arming the executing thread with the encoded mutation before the
   transaction and disarming after (see [Registry.persist_ops]).  Arm
   and finish must run on the thread that commits — the loop thread
   for ordinary requests, the helper thread for parked blocking ops. *)

let arm_persist t cmds =
  match t.reg.Registry.persist with
  | None -> false
  | Some p -> (
      match List.filter Wire.is_mutation cmds with
      | [] -> false
      | muts ->
          let b = Buffer.create 64 in
          List.iter
            (fun cmd -> Wire.write_request b { Wire.hint = None; cmd })
            muts;
          p.Registry.p_arm (Buffer.contents b);
          true)

(* Disarm on the committing thread; the ticket is [Some] iff the armed
   payload reached the log (the transaction write-committed). *)
let finish_persist t ~armed =
  if not armed then None
  else
    match t.reg.Registry.persist with
    | None -> None
    | Some p -> p.Registry.p_finish ()

(* Loop thread only: under [`Always] the reply may not leave before
   the record is on disk, so queue the ticket for [try_flush]. *)
let note_durable t ticket =
  match (ticket, t.reg.Registry.persist) with
  | Some tk, Some p when p.Registry.p_always -> t.durables <- tk :: t.durables
  | _ -> ()

let with_persist t cmds (f : unit -> Wire.response) : Wire.response =
  let armed = arm_persist t cmds in
  match f () with
  | resp ->
      note_durable t (finish_persist t ~armed);
      resp
  | exception e ->
      ignore (finish_persist t ~armed);
      raise e

let reply t resp =
  Wire.write_response_obuf t.out resp;
  t.stats.replies <- t.stats.replies + 1;
  (match resp with
  | Wire.Error (code, _) -> (
      match code with
      | Wire.Busy -> t.stats.busy <- t.stats.busy + 1
      | Wire.Proto -> t.stats.proto_errors <- t.stats.proto_errors + 1
      | Wire.Deadline -> t.stats.deadline_errors <- t.stats.deadline_errors + 1
      | Wire.Exhausted ->
          t.stats.exhausted_errors <- t.stats.exhausted_errors + 1
      | Wire.Sem_violation -> t.stats.sem_errors <- t.stats.sem_errors + 1
      | Wire.No_struct | Wire.Bad_op ->
          t.stats.other_errors <- t.stats.other_errors + 1)
  | _ -> ())

(* Run [f] as one transaction of [sem] on [stm] — the owner instance
   the registry resolved, so the nested structure operations flatten
   into this transaction — translating the structured outcome and the
   semantics-violation exception into typed error replies.  This is
   where the wire meets PR 4's liveness API.  A structural-invariant
   violation surfaces here as a typed error too: the exception rode
   the abort path out of [try_atomically], so the attempt's effects
   are already discarded and the server survives a corrupted node
   instead of dying on an assertion. *)
let run_tx t ~stm ~sem ~label ?budget ?deadline_us
    (f : S.tx -> Wire.response) : Wire.response =
  let budget = match budget with Some _ as b -> b | None -> t.limits.op_budget in
  let deadline_us =
    match deadline_us with Some _ as d -> d | None -> t.limits.op_deadline_us
  in
  let t0 = R.now () in
  let deadline = Option.map (fun us -> t0 + (us * 1000)) deadline_us in
  let resp =
    match S.try_atomically ?budget ?deadline ~sem ~label stm f with
    | S.Committed r -> r
    | S.Exhausted { attempts; _ } ->
        err Wire.Exhausted "retry budget spent after %d attempts" attempts
    | S.Deadline_exceeded { attempts; _ } ->
        err Wire.Deadline "deadline passed after %d attempts" attempts
    | exception S.Invalid_operation m -> err Wire.Sem_violation "%s" m
    | exception Polytm_structs.Stm_map.Invariant_violation m ->
        err Wire.Bad_op "invariant violation (transaction aborted): %s" m
  in
  let dt = R.now () - t0 in
  Hist.record t.stats.lat_by_sem.(sem_index sem) dt;
  Hist.record t.stats.lat_all dt;
  resp

(* Run [f] as one cross-shard transaction spanning [stms] — the
   registry resolved a {!Registry.Spanning} site (a whole-structure
   aggregate on a multi-shard server, or a [MULTI] batch whose keys
   hash to several shards).  A snapshot hint takes the consistent
   bound vector; anything else is the two-phase commit over the member
   shard clocks, escalating to the serialization tokens when the
   optimistic budget runs dry ([Too_many_attempts] is the analogue of
   [Exhausted]).  Single-shard batches never reach this function: they
   keep the one-shot [run_tx] path untouched. *)
let run_spanning t ~stms ~sem ~label (f : unit -> Wire.response) :
    Wire.response =
  let t0 = R.now () in
  let resp =
    match
      if Polytm.Semantics.equal sem Polytm.Semantics.Snapshot then
        S.snapshot_multi ~label stms f
      else S.atomically_multi ~sem ~label ?budget:t.limits.op_budget stms f
    with
    | r -> r
    | exception S.Too_many_attempts (_, attempts) ->
        err Wire.Exhausted "retry budget spent after %d attempts" attempts
    | exception S.Invalid_operation m -> err Wire.Sem_violation "%s" m
    | exception Polytm_structs.Stm_map.Invariant_violation m ->
        err Wire.Bad_op "invariant violation (transaction aborted): %s" m
  in
  let dt = R.now () - t0 in
  Hist.record t.stats.lat_by_sem.(sem_index sem) dt;
  Hist.record t.stats.lat_all dt;
  resp

(* Post-commit dirty marks for watchers: a multi-shard server's
   mutators defer their mark to here (the data commit must precede the
   notification — see the registry).  An error reply means nothing
   committed, so nothing is marked. *)
let touch_committed t (resolved : Registry.resolved list) resp =
  match resp with
  | Wire.Error _ -> ()
  | _ ->
      List.iter
        (fun (r : Registry.resolved) ->
          Option.iter (Registry.touch t.reg) r.Registry.touched)
        resolved

let reset_multi t =
  t.in_multi <- false;
  t.multi_hint <- None;
  t.multi_rev <- [];
  t.multi_count <- 0

let exec_multi_end t =
  let cmds = List.rev t.multi_rev in
  let hint = t.multi_hint in
  reset_multi t;
  if cmds = [] then Wire.Array []
  else
    (* Resolve the whole batch first: a batch that cannot execute
       completely executes not at all (atomicity also for errors). *)
    let rec resolve_all acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
          match Registry.resolve t.reg c with
          | Ok r -> resolve_all ((c, r) :: acc) rest
          | Error e -> Error (c, e))
    in
    match resolve_all [] cmds with
    | Error (c, Wire.Error (code, m)) ->
        err code "batch rejected at %s: %s" (Wire.cmd_name c) m
    | Error (_, e) -> e
    | Ok resolved -> (
        (* A batch spanning structures pinned to different algorithms
           is refused before executing anything (same all-or-nothing
           rule as a resolution failure): TL2 and NORec instances
           validate against incomparable clocks, so one batch cannot
           promise one serialization point across both. *)
        let algos =
          List.sort_uniq compare
            (List.map (fun (_, (r : Registry.resolved)) -> r.Registry.algo)
               resolved)
        in
        match algos with
        | [] | _ :: _ :: _ ->
            err Wire.Bad_op
              "batch mixes structures on different algorithms (%s)"
              (String.concat ", " (List.map Registry.algo_name algos))
        | [ _ ] ->
            let sem = Option.value hint ~default:Polytm.Semantics.Classic in
            let label = label_of Wire.Multi_end sem in
            let rs = List.map snd resolved in
            let body () =
              Wire.Array
                (List.map (fun (r : Registry.resolved) -> r.Registry.run ()) rs)
            in
            (* The batch's site is the union of its commands' sites:
               one owner instance keeps the existing one-shot path
               (every batch of a 1-shard server lands here, so its
               wire behaviour is untouched); several instances commit
               through the cross-shard two-phase protocol, the thunks
               flattening into the armed member transactions. *)
            let insts =
              List.concat_map
                (fun (r : Registry.resolved) ->
                  match r.Registry.site with
                  | Registry.Single s -> [ s ]
                  | Registry.Spanning l -> l)
                rs
            in
            let distinct =
              List.fold_left
                (fun acc s -> if List.memq s acc then acc else s :: acc)
                [] insts
            in
            let resp =
              with_persist t cmds (fun () ->
                  match distinct with
                  | [ stm ] -> run_tx t ~stm ~sem ~label (fun _tx -> body ())
                  | stms -> run_spanning t ~stms ~sem ~label body)
            in
            touch_committed t rs resp;
            resp)

let exec_single t (r : Wire.request) cmd =
  let sem = Option.value r.hint ~default:(Registry.default_sem cmd) in
  match Registry.resolve t.reg cmd with
  | Error e -> e
  | Ok res ->
      let label = label_of cmd sem in
      let resp =
        with_persist t [ cmd ] (fun () ->
            match res.Registry.site with
            | Registry.Single stm ->
                run_tx t ~stm ~sem ~label (fun _tx -> res.Registry.run ())
            | Registry.Spanning stms ->
                run_spanning t ~stms ~sem ~label res.Registry.run)
      in
      touch_committed t [ res ] resp;
      resp

(* Non-parking requests: everything except BLPOP/BTAKE outside MULTI
   (those park on a helper thread, handled in [exec_step]) and the
   SNAPSHOT-ITER streaming fast path. *)
let exec_request t (r : Wire.request) : Wire.response =
  match r.cmd with
  | Wire.Ping -> Wire.pong
  | (Wire.Blpop _ | Wire.Btake _) as cmd ->
      (* only reachable inside MULTI; the parking path intercepts
         these before [exec_request] otherwise *)
      err Wire.Bad_op "%s is not allowed inside MULTI (it can park)"
        (Wire.cmd_name cmd)
  | Wire.Watch name ->
      if t.in_multi then err Wire.Bad_op "WATCH is not allowed inside MULTI"
      else if
        List.exists (fun w -> Registry.watch_name w = name) t.watches
      then Wire.ok (* already watching: idempotent *)
      else (
        match Registry.watch t.reg name with
        | Ok w ->
            t.watches <- w :: t.watches;
            Wire.ok
        | Error e -> e)
  | Wire.Unwatch name ->
      if t.in_multi then err Wire.Bad_op "UNWATCH is not allowed inside MULTI"
      else (
        match
          List.partition (fun w -> Registry.watch_name w = name) t.watches
        with
        | [], _ -> err Wire.Bad_op "not watching %S" name
        | ws, rest ->
            List.iter (Registry.unwatch t.reg) ws;
            t.watches <- rest;
            Wire.ok)
  | Wire.New (kind, name) -> (
      if t.in_multi then err Wire.Bad_op "NEW is not allowed inside MULTI"
      else
        match Registry.ensure t.reg kind name with
        | Ok `Created -> Wire.ok
        | Ok `Existed -> Wire.Simple "EXISTS"
        | Error e -> e)
  | Wire.Info ->
      if t.in_multi then err Wire.Bad_op "INFO is not allowed inside MULTI"
      else Registry.info_response t.reg
  | Wire.Lastsave -> (
      if t.in_multi then err Wire.Bad_op "LASTSAVE is not allowed inside MULTI"
      else
        match t.reg.Registry.persist with
        | None -> err Wire.Bad_op "persistence is disabled"
        | Some p -> p.Registry.p_lastsave ())
  | Wire.Bgsave ->
      (* only reachable inside MULTI; [exec_step] routes BGSAVE to a
         helper thread otherwise (a checkpoint would stall the loop) *)
      err Wire.Bad_op "BGSAVE is not allowed inside MULTI"
  | Wire.Multi ->
      if t.in_multi then err Wire.Bad_op "MULTI cannot nest"
      else begin
        t.in_multi <- true;
        t.multi_hint <- r.hint;
        Wire.ok
      end
  | Wire.Multi_end ->
      if not t.in_multi then err Wire.Bad_op "MULTI-END without MULTI"
      else exec_multi_end t
  | Wire.Debug_abort { budget; deadline_us } ->
      if t.in_multi then err Wire.Bad_op "DEBUG-ABORT inside MULTI"
      else if not t.limits.Limits.debug_ops then
        err Wire.Bad_op "debug ops are disabled"
      else
        (* A transaction that aborts every attempt: with a finite
           budget [try_atomically] reports Exhausted, with a spent
           deadline Deadline_exceeded — the two error reply paths,
           exercisable deterministically. *)
        let budget = Some (Option.value budget ~default:2) in
        run_tx t
          ~stm:(Registry.stm_for t.reg (Registry.default_algo t.reg))
          ~sem:Polytm.Semantics.Classic
          ~label:(label_of r.cmd Polytm.Semantics.Classic)
          ?budget ?deadline_us
          (fun tx -> S.abort tx)
  | cmd ->
      if t.in_multi then
        if t.multi_count >= t.limits.Limits.max_multi then begin
          reset_multi t;
          err Wire.Bad_op "MULTI batch exceeds %d commands (batch discarded)"
            t.limits.Limits.max_multi
        end
        else begin
          t.multi_rev <- cmd :: t.multi_rev;
          t.multi_count <- t.multi_count + 1;
          Wire.queued
        end
      else exec_single t r cmd

(* SNAPSHOT-ITER outside MULTI: the zero-copy path.  The registry's
   encoder thunk streams each element into [t.scratch] during the
   transaction's own traversal; on commit the items are wrapped with
   the frame and array headers straight into [t.out].  No response
   tree, no per-element boxing — the reply bytes are identical to the
   tree path's. *)
let exec_snapshot_iter t (r : Wire.request) name =
  let cmd = r.Wire.cmd in
  let sem = Option.value r.hint ~default:(Registry.default_sem cmd) in
  let label = label_of cmd sem in
  match Registry.snapshot_stream t.reg name t.scratch with
  | Error e -> reply t e
  | Ok (Registry.Single stm, enc) ->
      let budget = t.limits.Limits.op_budget in
      let deadline_us = t.limits.Limits.op_deadline_us in
      let t0 = R.now () in
      let deadline = Option.map (fun us -> t0 + (us * 1000)) deadline_us in
      (match
         S.try_atomically ?budget ?deadline ~sem ~label stm (fun _tx ->
             enc ())
       with
      | S.Committed count ->
          Wire.write_framed_array t.out ~count ~items:t.scratch;
          t.stats.replies <- t.stats.replies + 1
      | S.Exhausted { attempts; _ } ->
          reply t
            (err Wire.Exhausted "retry budget spent after %d attempts" attempts)
      | S.Deadline_exceeded { attempts; _ } ->
          reply t
            (err Wire.Deadline "deadline passed after %d attempts" attempts)
      | exception S.Invalid_operation m ->
          reply t (err Wire.Sem_violation "%s" m));
      let dt = R.now () - t0 in
      Hist.record t.stats.lat_by_sem.(sem_index sem) dt;
      Hist.record t.stats.lat_all dt
  | Ok (Registry.Spanning stms, enc) ->
      (* The structure spans several shards: the stream runs under the
         cross-instance protocol — a consistent bound vector for the
         default snapshot hint, the two-phase commit otherwise.  The
         encoder clears the scratch on every attempt, so a redrawn
         bound vector's retry never leaks a torn prefix. *)
      let t0 = R.now () in
      (match
         if Polytm.Semantics.equal sem Polytm.Semantics.Snapshot then
           S.snapshot_multi ~label stms enc
         else
           S.atomically_multi ~sem ~label ?budget:t.limits.Limits.op_budget
             stms enc
       with
      | count ->
          Wire.write_framed_array t.out ~count ~items:t.scratch;
          t.stats.replies <- t.stats.replies + 1
      | exception S.Too_many_attempts (_, attempts) ->
          reply t
            (err Wire.Exhausted "retry budget spent after %d attempts" attempts)
      | exception S.Invalid_operation m ->
          reply t (err Wire.Sem_violation "%s" m));
      let dt = R.now () - t0 in
      Hist.record t.stats.lat_by_sem.(sem_index sem) dt;
      Hist.record t.stats.lat_all dt

(* ---- output ------------------------------------------------------------- *)

(* One non-blocking coalesced write of everything pending.  A short
   write keeps the unflushed tail in the Obuf (its [start] offset
   advances); the loop retries on the next writability notification.
   EINTR and EAGAIN leave the buffer untouched for the same retry. *)
let try_flush t =
  if (not t.closed) && Wire.Obuf.pending t.out > 0 then begin
    (* Under [--fsync always] no ack may leave before its op-log
       record is synced.  One wait per distinct log writer suffices —
       syncing is ordered, so the highest sequence number covers every
       earlier ticket (group commit over the whole pipelined batch).
       Distinct writers appear only when a checkpoint rotated the log
       mid-batch. *)
    (match t.durables with
    | [] -> ()
    | ds -> (
        t.durables <- [];
        match t.reg.Registry.persist with
        | None -> ()
        | Some p ->
            let latest =
              List.fold_left
                (fun acc (aof, seq) ->
                  let rec bump = function
                    | [] -> [ (aof, seq) ]
                    | (a, s) :: rest when a == aof ->
                        (a, max s seq) :: rest
                    | x :: rest -> x :: bump rest
                  in
                  bump acc)
                [] ds
            in
            List.iter
              (fun (aof, seq) -> p.Registry.p_wait_durable aof seq)
              latest));
    let buf, off, len = Wire.Obuf.peek t.out in
    match Unix.write t.fd buf off len with
    | n -> Wire.Obuf.consumed t.out n
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception
        Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN), _, _)
      ->
        t.closed <- true
  end

(* ---- input and execution ------------------------------------------------ *)

(* One non-blocking read deposited straight into the decoder's buffer
   (no intermediate copy).  EINTR is a no-op: the loop's readiness is
   level-triggered, so the read simply happens on the next cycle. *)
let read_chunk t =
  let buf, off = Wire.Decoder.reserve t.dec 65536 in
  match Unix.read t.fd buf off 65536 with
  | 0 -> `Eof
  | n ->
      Wire.Decoder.commit t.dec n;
      `Data
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Nothing
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.ENOTCONN), _, _) ->
      `Reset

(* Decode everything buffered, applying the in-flight bound per
   batch.  Refusals (BUSY, protocol errors) take a slot in the same
   queue as admitted requests so that replies always come back in
   request order — a pipelining client matches them up positionally. *)
let decode_batch t =
  let admitted = ref 0 in
  let rec collect () =
    match Wire.Decoder.next_request t.dec with
    | `Ok r ->
        t.stats.requests <- t.stats.requests + 1;
        if !admitted >= t.limits.Limits.max_inflight then
          Queue.push
            (Refuse
               (err Wire.Busy "more than %d requests in flight"
                  t.limits.Limits.max_inflight))
            t.pending
        else begin
          incr admitted;
          Queue.push (Exec r) t.pending
        end;
        collect ()
    | `Bad m ->
        Queue.push (Refuse (err Wire.Proto "%s" m)) t.pending;
        collect ()
    | `Await -> ()
    | `Corrupt m ->
        Queue.push
          (Refuse (err Wire.Proto "corrupt stream: %s" m))
          t.pending;
        (* framing is gone: answer what decoded, then close *)
        t.input_done <- true
  in
  collect ()

(* How long one watch wait may park before its helper thread reports
   back: the ceiling on shutdown observance while watching (push
   latency stays one commit — the mutator's commit wakes the parked
   wait immediately). *)
let watch_poll_ns = 50_000_000

(* [pump] drains the pending queue in order; a blocking op consumes
   its queue slot and parks the session, and its completion resumes
   the pump.  When the queue empties after EOF or a drain request the
   session flips to [closing] (flush, then the loop closes the fd). *)
let rec pump t =
  if (not t.parked) && not t.closed then
    match Queue.take_opt t.pending with
    | Some (Refuse e) ->
        reply t e;
        pump t
    | Some (Exec r) -> (
        (* Release already-encoded replies before a full-structure
           stream: the cheap replies of a pipelined batch must not
           wait out a traversal three orders of magnitude costlier
           than they are, and the client drains them while we fold.
           This also bounds output growth across a run of consecutive
           snapshot requests to about one reply. *)
        (match r.Wire.cmd with
        | Wire.Snapshot_iter _ when Wire.Obuf.pending t.out > 0 ->
            try_flush t
        | _ -> ());
        match exec_step t r with `Done -> pump t | `Parked -> ())
    | None ->
        if t.draining || t.input_done then t.closing <- true;
        arm_watch t

and exec_step t (r : Wire.request) : [ `Done | `Parked ] =
  match r.Wire.cmd with
  | Wire.Blpop (name, ms) as cmd when not t.in_multi ->
      exec_blocking t cmd r.Wire.hint name ms ~wrap:(fun v ->
          Wire.Array [ Wire.Bulk name; Wire.Bulk v ])
  | Wire.Btake (name, ms) as cmd when not t.in_multi ->
      exec_blocking t cmd r.Wire.hint name ms ~wrap:(fun v -> Wire.Bulk v)
  | Wire.Snapshot_iter name when not t.in_multi ->
      exec_snapshot_iter t r name;
      `Done
  | Wire.Bgsave when not t.in_multi -> exec_bgsave t
  | _ ->
      reply t (exec_request t r);
      `Done

(* BGSAVE rides the same helper/park/post machinery as a blocking op:
   the checkpoint's snapshot fold and file write run off-loop, writers
   on other connections keep committing (snapshots never impede
   updaters), and this session resumes when the save is published. *)
and exec_bgsave t : [ `Done | `Parked ] =
  match t.reg.Registry.persist with
  | None ->
      reply t (err Wire.Bad_op "persistence is disabled");
      `Done
  | Some p ->
      t.parked <- true;
      t.services.submit (fun () ->
          let resp = p.Registry.p_bgsave () in
          t.services.post (fun () ->
              t.parked <- false;
              if not t.closed then begin
                reply t resp;
                pump t;
                try_flush t
              end));
      `Parked

(* A blocking queue pop ([BLPOP]/[BTAKE]).  [timeout_ms <= 0] means
   wait indefinitely — the waiter is still bounded by shutdown (its
   home shard's drain flag is in its read set) and by the server-wide
   waiter budget: a slot is {e reserved} before parking (atomically,
   so racing sessions cannot jointly overshoot the cap, whatever
   instances they park on) and released when the wait completes; a
   blocking op that cannot reserve gets [BUSY] instead of filling the
   helper pool.  Timing out is not an error for a blocking op: it
   replies [Nil], like Redis.

   The wait runs on a helper thread; the session stays registered
   with the loop (reads masked) and other sessions keep being
   served.  The helper computes the reply off-loop, then [post]s a
   closure that re-enters the session on the loop thread: record the
   latency, reply, resume the pump, flush. *)
and exec_blocking t cmd hint name timeout_ms ~wrap : [ `Done | `Parked ] =
  match Registry.blocking_pop t.reg name with
  | Error e ->
      reply t e;
      `Done
  | Ok (stm, thunk) ->
      let sem = Option.value hint ~default:Polytm.Semantics.Classic in
      let label = label_of cmd sem in
      let t0 = R.now () in
      (* Fast path: an item is already queued, so the pop cannot
         block — take it on the loop thread and skip the whole
         helper/park/post hop (no reservation needed: nothing parks).
         Under a producer backlog this is what keeps consumption at
         pop speed instead of at park-wakeup speed; the helper path
         below is only for a genuinely empty queue. *)
      let fast =
        match Registry.resolve t.reg (Wire.Deq name) with
        | Error _ -> None
        | Ok deq ->
            (* Logged as the [DEQ] it behaves as: replaying a plain
               pop reproduces the taken element. *)
            let armed = arm_persist t [ Wire.Deq name ] in
            let out =
              match
                S.try_atomically ?budget:t.limits.Limits.op_budget ~sem ~label
                  stm
                  (fun _tx -> deq.Registry.run ())
              with
              | S.Committed (Wire.Bulk v) ->
                  touch_committed t [ deq ] (Wire.Bulk v);
                  Some (wrap v)
              | S.Committed _ (* Nil: genuinely empty *)
              | S.Exhausted _ | S.Deadline_exceeded _ ->
                  None
              | exception S.Invalid_operation _ ->
                  (* e.g. a snapshot-hinted pop: let the ordinary
                     path produce its usual typed reply *)
                  None
            in
            note_durable t (finish_persist t ~armed);
            out
      in
      (match fast with
      | Some resp ->
          let dt = R.now () - t0 in
          Hist.record t.stats.lat_by_sem.(sem_index sem) dt;
          Hist.record t.stats.lat_all dt;
          reply t resp;
          `Done
      | None ->
          if
            not
              (Registry.reserve_waiter t.reg
                 ~limit:t.limits.Limits.max_waiters)
          then begin
            reply t
              (err Wire.Busy "wait table full (%d waiters)"
                 (Registry.waiting t.reg));
            `Done
          end
          else begin
            let deadline =
              if timeout_ms <= 0 then None
              else Some (t0 + (timeout_ms * 1_000_000))
            in
            t.parked <- true;
            t.services.submit (fun () ->
                (* Arm on {e this} thread: the commit (and so the
                   hook) happens here, not on the loop. *)
                let armed = arm_persist t [ Wire.Deq name ] in
                let resp =
                  match
                    S.try_atomically ?deadline ~sem ~label stm (fun _tx ->
                        thunk ())
                  with
                  | S.Committed (`Got v) -> wrap v
                  | S.Committed `Drained -> Wire.Nil
                  | S.Deadline_exceeded _ -> Wire.Nil
                  | S.Exhausted { attempts; _ } ->
                      err Wire.Exhausted "retry budget spent after %d attempts"
                        attempts
                  | exception S.Invalid_operation m ->
                      err Wire.Sem_violation "%s" m
                in
                let ticket = finish_persist t ~armed in
                (* Release on wake {e and} on timeout: the reservation
                   covers exactly the interval the helper may park. *)
                Registry.release_waiter t.reg;
                let dt = R.now () - t0 in
                t.services.post (fun () ->
                    note_durable t ticket;
                    Hist.record t.stats.lat_by_sem.(sem_index sem) dt;
                    Hist.record t.stats.lat_all dt;
                    t.parked <- false;
                    if not t.closed then begin
                      reply t resp;
                      pump t;
                      try_flush t
                    end));
            `Parked
          end)

(* Keep one watch wait outstanding while the session has
   subscriptions: the helper parks in [wait_dirty] (commit-woken,
   [watch_poll_ns]-bounded) and reports the changed names back to the
   loop, which emits the [Push] frames.  Pushes are server-initiated:
   they bypass [reply] so they never count as request replies.  The
   session keeps serving requests while the wait is out — that is the
   point of offloading it. *)
and arm_watch t =
  if
    (not t.watch_inflight)
    && t.watches <> []
    && (not t.closed)
    && (not t.closing)
    && not (t.stop ())
  then begin
    t.watch_inflight <- true;
    let ws = t.watches in
    t.services.submit (fun () ->
        let names = Registry.wait_dirty t.reg ws ~timeout_ns:watch_poll_ns in
        t.services.post (fun () ->
            t.watch_inflight <- false;
            if not t.closed then begin
              List.iter
                (fun n ->
                  if
                    List.exists
                      (fun w -> Registry.watch_name w = n)
                      t.watches
                  then Wire.write_response_obuf t.out (Wire.Push n))
                names;
              try_flush t;
              arm_watch t
            end))
  end

(* ---- loop-facing surface ------------------------------------------------ *)

let on_readable t =
  if not t.closed then begin
    (match read_chunk t with
    | `Data -> decode_batch t
    | `Eof -> t.input_done <- true
    | `Nothing -> ()
    | `Reset -> t.closed <- true);
    pump t;
    try_flush t
  end

(* After a shutdown request: consume whatever already arrived (without
   blocking), answer it, flush, and let the loop close.  In-flight
   requests are drained, not dropped — including a blocking op the
   drain decodes: it parks, [set_draining]'s commit wakes it to a
   [Nil], and its completion finishes the drain. *)
let begin_drain t =
  if (not t.draining) && not t.closed then begin
    t.draining <- true;
    let rec slurp () =
      match read_chunk t with
      | `Data -> slurp ()
      | `Eof -> t.input_done <- true
      | `Nothing -> ()
      | `Reset -> t.closed <- true
    in
    slurp ();
    if not t.closed then begin
      decode_batch t;
      pump t;
      try_flush t
    end
  end

let wants_read t =
  (not t.closed) && (not t.closing) && (not t.parked) && (not t.input_done)
  && (not t.draining)
  && Queue.is_empty t.pending
  && Wire.Obuf.pending t.out = 0

let wants_write t = (not t.closed) && Wire.Obuf.pending t.out > 0

let finished t =
  t.closed
  || t.closing
     && (not t.parked)
     && Queue.is_empty t.pending
     && Wire.Obuf.pending t.out = 0

let fd t = t.fd

(* Release watch subscriptions and mark the session dead; late helper
   completions find [closed] set and drop their output. *)
let teardown t =
  List.iter (Registry.unwatch t.reg) t.watches;
  t.watches <- [];
  t.closed <- true

let create ?(stop = fun () -> false) ~limits ~registry ~stats ~services fd =
  Limits.validate limits;
  {
    fd;
    reg = registry;
    limits;
    stats;
    stop;
    services;
    dec = Wire.Decoder.create ~max_frame:limits.Limits.max_frame ();
    out = Wire.Obuf.create ~initial:8192 ();
    scratch = Wire.Obuf.create ~initial:4096 ();
    pending = Queue.create ();
    in_multi = false;
    multi_hint = None;
    multi_rev = [];
    multi_count = 0;
    watches = [];
    durables = [];
    watch_inflight = false;
    parked = false;
    draining = false;
    input_done = false;
    closing = false;
    closed = false;
  }
