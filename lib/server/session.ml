(** One client connection: decode, execute, reply.

    The session is deliberately synchronous — it reads a batch of
    bytes, decodes every complete frame it can, executes them in
    order, and writes the replies back before reading again.  Replies
    therefore come back in request order (what pipelining clients
    rely on), and the number of decoded-but-unexecuted requests is
    bounded by what one read batch contains; anything beyond the
    [max_inflight] limit inside a batch is refused with a [BUSY] reply
    instead of being buffered.

    {b Privatization safety} (the response-buffer argument, DESIGN.md
    §S16): a reply's payload is the value returned by the {e committed}
    attempt of [try_atomically] — aborted attempts' results are
    discarded with their effects — and it is serialised into the
    output buffer strictly {e after} the commit (or, for snapshot
    transactions, after the consistent read-only view completed).  The
    wire never carries a value from a doomed transaction.

    The session knows nothing about sockets beyond a file descriptor,
    so the deterministic end-to-end tests drive it over
    [Unix.socketpair]. *)

module S = Registry.S
module R = Polytm_runtime.Domain_runtime
module Hist = Polytm_util.Stats.Hist

(* ---- per-session / per-worker statistics ------------------------------- *)

type stats = {
  mutable requests : int;  (** well-formed frames received *)
  mutable replies : int;
  mutable busy : int;  (** requests refused for backpressure *)
  mutable proto_errors : int;  (** malformed or corrupt frames *)
  mutable deadline_errors : int;
  mutable exhausted_errors : int;
  mutable sem_errors : int;  (** hint forbade the operation *)
  mutable other_errors : int;  (** NOSTRUCT / BADOP replies *)
  lat_by_sem : Hist.t array;
      (** op latency (ns) per executed semantics: classic, elastic,
          snapshot — index with {!sem_index} *)
  lat_all : Hist.t;  (** op latency (ns) over every executed request *)
}

let create_stats () =
  {
    requests = 0;
    replies = 0;
    busy = 0;
    proto_errors = 0;
    deadline_errors = 0;
    exhausted_errors = 0;
    sem_errors = 0;
    other_errors = 0;
    lat_by_sem = Array.init 3 (fun _ -> Hist.create ());
    lat_all = Hist.create ();
  }

let sem_index = function
  | Polytm.Semantics.Classic -> 0
  | Polytm.Semantics.Elastic -> 1
  | Polytm.Semantics.Snapshot -> 2

let sem_of_index = function
  | 0 -> Polytm.Semantics.Classic
  | 1 -> Polytm.Semantics.Elastic
  | _ -> Polytm.Semantics.Snapshot

let merge_stats ~into src =
  into.requests <- into.requests + src.requests;
  into.replies <- into.replies + src.replies;
  into.busy <- into.busy + src.busy;
  into.proto_errors <- into.proto_errors + src.proto_errors;
  into.deadline_errors <- into.deadline_errors + src.deadline_errors;
  into.exhausted_errors <- into.exhausted_errors + src.exhausted_errors;
  into.sem_errors <- into.sem_errors + src.sem_errors;
  into.other_errors <- into.other_errors + src.other_errors;
  Array.iteri
    (fun i h -> Hist.merge_into ~into:into.lat_by_sem.(i) h)
    src.lat_by_sem;
  Hist.merge_into ~into:into.lat_all src.lat_all

(* ---- telemetry labels --------------------------------------------------

   Call-site labels are "op@semantics" ("contains@elastic",
   "size@snapshot", ...), so the per-site abort breakdown doubles as a
   per-semantics-class commit/abort table.  They are interned once at
   module load; the request hot path only does lookups (the table is
   never mutated after initialisation, so concurrent reads from worker
   domains are safe). *)

let op_classes =
  [ "PING"; "NEW"; "GET"; "PUT"; "DEL"; "CONTAINS"; "ADD"; "REMOVE"; "SIZE";
    "SNAPSHOT-ITER"; "ENQ"; "DEQ"; "BLPOP"; "BTAKE"; "WATCH"; "UNWATCH";
    "MULTI"; "MULTI-END"; "DEBUG-ABORT" ]

let label_table : (string * int, string) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter
    (fun op ->
      for i = 0 to 2 do
        let sem = sem_of_index i in
        Hashtbl.add t (op, i)
          (String.lowercase_ascii op ^ "@" ^ Polytm.Semantics.to_string sem)
      done)
    op_classes;
  t

let label_of cmd sem =
  match Hashtbl.find_opt label_table (Wire.cmd_name cmd, sem_index sem) with
  | Some l -> l
  | None -> Wire.cmd_name cmd

(* ---- the session ------------------------------------------------------- *)

type t = {
  fd : Unix.file_descr;
  reg : Registry.t;
  limits : Limits.t;
  stats : stats;
  stop : unit -> bool;
  dec : Wire.Decoder.t;
  out : Buffer.t;
  rbuf : Bytes.t;
  mutable in_multi : bool;
  mutable multi_hint : Polytm.Semantics.t option;
  mutable multi_rev : Wire.cmd list;  (** queued batch, newest first *)
  mutable multi_count : int;
  mutable watches : Registry.watch list;  (** active WATCH subscriptions *)
  mutable closing : bool;
}

let err = Registry.err

let reply t resp =
  Wire.write_response t.out resp;
  t.stats.replies <- t.stats.replies + 1;
  (match resp with
  | Wire.Error (code, _) -> (
      match code with
      | Wire.Busy -> t.stats.busy <- t.stats.busy + 1
      | Wire.Proto -> t.stats.proto_errors <- t.stats.proto_errors + 1
      | Wire.Deadline -> t.stats.deadline_errors <- t.stats.deadline_errors + 1
      | Wire.Exhausted ->
          t.stats.exhausted_errors <- t.stats.exhausted_errors + 1
      | Wire.Sem_violation -> t.stats.sem_errors <- t.stats.sem_errors + 1
      | Wire.No_struct | Wire.Bad_op ->
          t.stats.other_errors <- t.stats.other_errors + 1)
  | _ -> ())

(* Run [f] as one transaction of [sem] on the instance of [algo] —
   the structure's pinned algorithm, so the nested structure
   operations flatten into this transaction — translating the
   structured outcome and the semantics-violation exception into
   typed error replies.  This is where the wire meets PR 4's liveness
   API. *)
let run_tx t ~algo ~sem ~label ?budget ?deadline_us
    (f : S.tx -> Wire.response) : Wire.response =
  let budget = match budget with Some _ as b -> b | None -> t.limits.op_budget in
  let deadline_us =
    match deadline_us with Some _ as d -> d | None -> t.limits.op_deadline_us
  in
  let t0 = R.now () in
  let deadline = Option.map (fun us -> t0 + (us * 1000)) deadline_us in
  let resp =
    match
      S.try_atomically ?budget ?deadline ~sem ~label
        (Registry.stm_for t.reg algo) f
    with
    | S.Committed r -> r
    | S.Exhausted { attempts; _ } ->
        err Wire.Exhausted "retry budget spent after %d attempts" attempts
    | S.Deadline_exceeded { attempts; _ } ->
        err Wire.Deadline "deadline passed after %d attempts" attempts
    | exception S.Invalid_operation m -> err Wire.Sem_violation "%s" m
  in
  let dt = R.now () - t0 in
  Hist.record t.stats.lat_by_sem.(sem_index sem) dt;
  Hist.record t.stats.lat_all dt;
  resp

(* Run a blocking queue pop ([BLPOP]/[BTAKE]).  [timeout_ms <= 0]
   means wait indefinitely — the waiter is still bounded by shutdown
   (the registry's drain flag is in its read set) and by the wait-table
   cap, checked before parking so a flood of blocking clients gets
   [BUSY] instead of pinning every worker domain.  Timing out is not an
   error for a blocking op: it replies [Nil], like Redis. *)
let exec_blocking t cmd hint name timeout_ms ~wrap =
  if t.in_multi then
    err Wire.Bad_op "%s is not allowed inside MULTI (it can park)"
      (Wire.cmd_name cmd)
  else
    match Registry.blocking_pop t.reg name with
    | Error e -> e
    | Ok (algo, thunk) ->
        let stm = Registry.stm_for t.reg algo in
        if S.waiting stm >= t.limits.Limits.max_waiters then
          err Wire.Busy "wait table full (%d waiters)" (S.waiting stm)
        else begin
          let sem = Option.value hint ~default:Polytm.Semantics.Classic in
          let t0 = R.now () in
          let deadline =
            if timeout_ms <= 0 then None
            else Some (t0 + (timeout_ms * 1_000_000))
          in
          let resp =
            match
              S.try_atomically ?deadline ~sem ~label:(label_of cmd sem) stm
                (fun _tx -> thunk ())
            with
            | S.Committed (`Got v) -> wrap v
            | S.Committed `Drained -> Wire.Nil
            | S.Deadline_exceeded _ -> Wire.Nil
            | S.Exhausted { attempts; _ } ->
                err Wire.Exhausted "retry budget spent after %d attempts"
                  attempts
            | exception S.Invalid_operation m -> err Wire.Sem_violation "%s" m
          in
          let dt = R.now () - t0 in
          Hist.record t.stats.lat_by_sem.(sem_index sem) dt;
          Hist.record t.stats.lat_all dt;
          resp
        end

let reset_multi t =
  t.in_multi <- false;
  t.multi_hint <- None;
  t.multi_rev <- [];
  t.multi_count <- 0

let exec_multi_end t =
  let cmds = List.rev t.multi_rev in
  let hint = t.multi_hint in
  reset_multi t;
  if cmds = [] then Wire.Array []
  else
    (* Resolve the whole batch first: a batch that cannot execute
       completely executes not at all (atomicity also for errors). *)
    let rec resolve_all acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
          match Registry.resolve t.reg c with
          | Ok (algo, thunk) -> resolve_all ((c, algo, thunk) :: acc) rest
          | Error e -> Error (c, e))
    in
    match resolve_all [] cmds with
    | Error (c, Wire.Error (code, m)) ->
        err code "batch rejected at %s: %s" (Wire.cmd_name c) m
    | Error (_, e) -> e
    | Ok thunks -> (
        (* One batch is one transaction, and a transaction runs on one
           instance: a batch spanning structures pinned to different
           algorithms cannot be atomic, so it is refused before
           executing anything (same all-or-nothing rule as a
           resolution failure). *)
        let algos =
          List.sort_uniq compare (List.map (fun (_, a, _) -> a) thunks)
        in
        match algos with
        | [] | _ :: _ :: _ ->
            err Wire.Bad_op
              "batch mixes structures on different algorithms (%s)"
              (String.concat ", " (List.map Registry.algo_name algos))
        | [ algo ] ->
            let sem = Option.value hint ~default:Polytm.Semantics.Classic in
            run_tx t ~algo ~sem ~label:(label_of Wire.Multi_end sem)
              (fun _tx ->
                Wire.Array (List.map (fun (_, _, thunk) -> thunk ()) thunks)))

let exec_single t (r : Wire.request) cmd =
  let sem = Option.value r.hint ~default:(Registry.default_sem cmd) in
  match Registry.resolve t.reg cmd with
  | Error e -> e
  | Ok (algo, thunk) ->
      run_tx t ~algo ~sem ~label:(label_of cmd sem) (fun _tx -> thunk ())

let exec_request t (r : Wire.request) : Wire.response =
  match r.cmd with
  | Wire.Ping -> Wire.pong
  | Wire.Blpop (name, ms) as cmd ->
      exec_blocking t cmd r.hint name ms ~wrap:(fun v ->
          Wire.Array [ Wire.Bulk name; Wire.Bulk v ])
  | Wire.Btake (name, ms) as cmd ->
      exec_blocking t cmd r.hint name ms ~wrap:(fun v -> Wire.Bulk v)
  | Wire.Watch name ->
      if t.in_multi then err Wire.Bad_op "WATCH is not allowed inside MULTI"
      else if
        List.exists (fun w -> Registry.watch_name w = name) t.watches
      then Wire.ok (* already watching: idempotent *)
      else (
        match Registry.watch t.reg name with
        | Ok w ->
            t.watches <- w :: t.watches;
            Wire.ok
        | Error e -> e)
  | Wire.Unwatch name ->
      if t.in_multi then err Wire.Bad_op "UNWATCH is not allowed inside MULTI"
      else (
        match
          List.partition (fun w -> Registry.watch_name w = name) t.watches
        with
        | [], _ -> err Wire.Bad_op "not watching %S" name
        | ws, rest ->
            List.iter (Registry.unwatch t.reg) ws;
            t.watches <- rest;
            Wire.ok)
  | Wire.New (kind, name) -> (
      if t.in_multi then err Wire.Bad_op "NEW is not allowed inside MULTI"
      else
        match Registry.ensure t.reg kind name with
        | Ok `Created -> Wire.ok
        | Ok `Existed -> Wire.Simple "EXISTS"
        | Error e -> e)
  | Wire.Multi ->
      if t.in_multi then err Wire.Bad_op "MULTI cannot nest"
      else begin
        t.in_multi <- true;
        t.multi_hint <- r.hint;
        Wire.ok
      end
  | Wire.Multi_end ->
      if not t.in_multi then err Wire.Bad_op "MULTI-END without MULTI"
      else exec_multi_end t
  | Wire.Debug_abort { budget; deadline_us } ->
      if t.in_multi then err Wire.Bad_op "DEBUG-ABORT inside MULTI"
      else if not t.limits.Limits.debug_ops then
        err Wire.Bad_op "debug ops are disabled"
      else
        (* A transaction that aborts every attempt: with a finite
           budget [try_atomically] reports Exhausted, with a spent
           deadline Deadline_exceeded — the two error reply paths,
           exercisable deterministically. *)
        let budget = Some (Option.value budget ~default:2) in
        run_tx t
          ~algo:(Registry.default_algo t.reg)
          ~sem:Polytm.Semantics.Classic
          ~label:(label_of r.cmd Polytm.Semantics.Classic)
          ?budget ?deadline_us
          (fun tx -> S.abort tx)
  | cmd ->
      if t.in_multi then
        if t.multi_count >= t.limits.Limits.max_multi then begin
          reset_multi t;
          err Wire.Bad_op "MULTI batch exceeds %d commands (batch discarded)"
            t.limits.Limits.max_multi
        end
        else begin
          t.multi_rev <- cmd :: t.multi_rev;
          t.multi_count <- t.multi_count + 1;
          Wire.queued
        end
      else exec_single t r cmd

(* ---- the read/execute/reply loop --------------------------------------- *)

let flush t =
  let s = Buffer.contents t.out in
  Buffer.clear t.out;
  let len = String.length s in
  let off = ref 0 in
  (try
     while !off < len do
       off := !off + Unix.write_substring t.fd s !off (len - !off)
     done
   with
  | Unix.Unix_error (Unix.EPIPE, _, _)
  | Unix.Unix_error (Unix.ECONNRESET, _, _)
  ->
    t.closing <- true)

(* Decode everything available, applying the in-flight bound, then
   execute the admitted requests in order.  Refusals (BUSY, protocol
   errors) take a slot in the same queue as admitted requests so that
   replies always come back in request order — a pipelining client
   matches them up positionally. *)
let process_available t =
  let pending : [ `Exec of Wire.request | `Refuse of Wire.response ] Queue.t =
    Queue.create ()
  in
  let admitted = ref 0 in
  let rec collect () =
    match Wire.Decoder.next_request t.dec with
    | `Ok r ->
        t.stats.requests <- t.stats.requests + 1;
        if !admitted >= t.limits.Limits.max_inflight then
          Queue.push
            (`Refuse
              (err Wire.Busy "more than %d requests in flight"
                 t.limits.Limits.max_inflight))
            pending
        else begin
          incr admitted;
          Queue.push (`Exec r) pending
        end;
        collect ()
    | `Bad m ->
        Queue.push (`Refuse (err Wire.Proto "%s" m)) pending;
        collect ()
    | `Await -> ()
    | `Corrupt m ->
        Queue.push (`Refuse (err Wire.Proto "corrupt stream: %s" m)) pending;
        t.closing <- true
  in
  collect ();
  Queue.iter
    (function
      | `Exec r -> reply t (exec_request t r)
      | `Refuse e -> reply t e)
    pending

(* After a shutdown request: consume whatever already arrived (without
   blocking), answer it, flush, and let the caller close.  In-flight
   requests are drained, not dropped. *)
let final_drain t =
  Unix.set_nonblock t.fd;
  (try
     let rec slurp () =
       match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
       | 0 -> ()
       | n ->
           Wire.Decoder.feed t.dec t.rbuf 0 n;
           slurp ()
     in
     slurp ()
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ -> ());
  process_available t;
  flush t

let create ?(stop = fun () -> false) ~limits ~registry ~stats fd =
  Limits.validate limits;
  {
    fd;
    reg = registry;
    limits;
    stats;
    stop;
    dec = Wire.Decoder.create ~max_frame:limits.Limits.max_frame ();
    out = Buffer.create 4096;
    rbuf = Bytes.create 65536;
    in_multi = false;
    multi_hint = None;
    multi_rev = [];
    multi_count = 0;
    watches = [];
    closing = false;
  }

(* How long one watch wait may park before the session looks at its
   socket again: the ceiling on request latency while watching (push
   latency stays one commit — the mutator's commit wakes the parked
   poll immediately). *)
let watch_poll_ns = 50_000_000

(* Emit a [Push] frame per watched structure that changed, parking up
   to {!watch_poll_ns} waiting for one.  Pushes are server-initiated:
   they bypass {!reply} so they never count as request replies. *)
let service_watches t =
  match Registry.wait_dirty t.reg t.watches ~timeout_ns:watch_poll_ns with
  | [] -> ()
  | names ->
      List.iter (fun n -> Wire.write_response t.out (Wire.Push n)) names;
      flush t

let drop_watches t =
  List.iter (Registry.unwatch t.reg) t.watches;
  t.watches <- []

let serve t =
  (* One blocking-read round; [`Closed] ends the session. *)
  let read_once () =
    match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Continue
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Closed
    | 0 ->
        (* Orderly client close: whatever was decodable has already
           been executed and flushed; nothing to drain. *)
        `Closed
    | n ->
        Wire.Decoder.feed t.dec t.rbuf 0 n;
        process_available t;
        flush t;
        if t.closing then `Closed else `Continue
  in
  let rec loop () =
    if t.stop () then final_drain t
    else if t.watches = [] then (
      match read_once () with `Closed -> () | `Continue -> loop ())
    else begin
      (* Watching: the session must notice both socket input and
         commit notifications, which cannot share one wait — so it
         alternates an instant readability check with a genuinely
         parked (commit-woken, [watch_poll_ns]-bounded) dirty wait. *)
      let readable =
        match Unix.select [ t.fd ] [] [] 0.0 with
        | r, _, _ -> r <> []
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      if readable then (
        match read_once () with `Closed -> () | `Continue -> loop ())
      else begin
        service_watches t;
        loop ()
      end
    end
  in
  loop ();
  drop_watches t

(* Convenience used by polytmd's workers. *)
let handle ?stop ~limits ~registry ~stats fd =
  let t = create ?stop ~limits ~registry ~stats fd in
  serve t
