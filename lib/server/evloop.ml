(** The event-loop core of [polytmd]: one loop multiplexes many
    {!Session}s over a [select]-based readiness cycle, so a worker
    domain serves every connection assigned to it instead of one
    blocking session at a time.

    Anatomy of one cycle:

    - thread-safe {e injections} (completed blocking ops, watch
      notifications, newly accepted connections) run first, on the
      loop thread — all session state is single-threaded by
      construction;
    - finished sessions are reaped (watches released, fd closed);
    - [select] waits on the wake pipe plus every session that wants
      readiness: reads are level-triggered and masked while a session
      is parked, mid-batch, or has unflushed output (the session
      write-before-next-read discipline, which is also the
      backpressure bound);
    - writable sessions flush their pending {!Wire.Obuf} region with
      one coalesced [write]; readable sessions read once, decode the
      batch, execute, and encode replies.

    Blocking STM waits never run on the loop thread: a {!Pool} of
    lazily-spawned helper threads (same domain, so systhread-keyed
    TLS keeps their transactions apart) carries them, and completion
    re-enters the loop via the injection queue and a self-pipe wake.

    Shutdown: when [stop] flips, the loop begins each session's drain
    (answer what already arrived, flush, close); parked waiters are
    woken by the registry's drain-flag commit exactly as before, and
    their completions finish the drain.  The loop exits when its last
    session closes, then joins its helpers. *)

module Pool = struct
  type t = {
    mu : Mutex.t;
    cv : Condition.t;
    jobs : (unit -> unit) Queue.t;
    mutable idle : int;
    mutable threads : Thread.t list;
    mutable closed : bool;
  }

  let create () =
    {
      mu = Mutex.create ();
      cv = Condition.create ();
      jobs = Queue.create ();
      idle = 0;
      threads = [];
      closed = false;
    }

  let rec worker p =
    Mutex.lock p.mu;
    let rec next () =
      if not (Queue.is_empty p.jobs) then Some (Queue.pop p.jobs)
      else if p.closed then None
      else begin
        p.idle <- p.idle + 1;
        Condition.wait p.cv p.mu;
        p.idle <- p.idle - 1;
        next ()
      end
    in
    match next () with
    | None -> Mutex.unlock p.mu
    | Some job ->
        Mutex.unlock p.mu;
        (try job () with _ -> ());
        worker p

  (* Spawn-on-demand with idle reuse: the helper population converges
     to the peak number of concurrent waits, which the session layer
     already bounds by [max_waiters] per instance. *)
  let submit p job =
    Mutex.lock p.mu;
    if p.closed then begin
      Mutex.unlock p.mu;
      invalid_arg "Evloop.Pool: submit after shutdown"
    end
    else begin
      Queue.push job p.jobs;
      if p.idle = 0 then p.threads <- Thread.create worker p :: p.threads
      else Condition.signal p.cv;
      Mutex.unlock p.mu
    end

  let shutdown p =
    Mutex.lock p.mu;
    p.closed <- true;
    Condition.broadcast p.cv;
    let threads = p.threads in
    Mutex.unlock p.mu;
    List.iter Thread.join threads
end

type conn = { sess : Session.t; on_close : unit -> unit }

type t = {
  stop : unit -> bool;
  exit_on_empty : bool;
      (** [handle] mode: return once the last session closes even if
          [stop] never flips (the server's loops outlive idle gaps) *)
  pool : Pool.t;
  mutable conns : conn list;
  load : int Atomic.t;  (** connection count, readable cross-thread *)
  inject : (unit -> unit) Queue.t;
  mu : Mutex.t;
  mutable wake_armed : bool;  (** a wake byte is already in the pipe *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let create ?(exit_on_empty = false) ~stop () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    stop;
    exit_on_empty;
    pool = Pool.create ();
    conns = [];
    load = Atomic.make 0;
    inject = Queue.create ();
    mu = Mutex.create ();
    wake_armed = false;
    wake_r;
    wake_w;
  }

let load t = Atomic.get t.load

(* Run [f] on the loop thread at the top of its next cycle.  Safe from
   any thread; the self-pipe byte interrupts a parked [select].  The
   [wake_armed] latch keeps a burst of completions to one byte. *)
let post t f =
  Mutex.lock t.mu;
  Queue.push f t.inject;
  let need_wake = not t.wake_armed in
  t.wake_armed <- true;
  Mutex.unlock t.mu;
  if need_wake then
    try ignore (Unix.write_substring t.wake_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | n -> if n = 64 then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let run_injections t =
  let batch = Queue.create () in
  Mutex.lock t.mu;
  Queue.transfer t.inject batch;
  t.wake_armed <- false;
  Mutex.unlock t.mu;
  drain_wake t;
  Queue.iter (fun f -> f ()) batch

(* Register a connection on the loop thread. *)
let attach t ?(on_close = fun () -> ()) ~limits ~registry ~stats fd =
  Unix.set_nonblock fd;
  let services =
    { Session.submit = Pool.submit t.pool; post = post t }
  in
  let sess =
    Session.create ~stop:t.stop ~limits ~registry ~stats ~services fd
  in
  Atomic.incr t.load;
  t.conns <- { sess; on_close } :: t.conns

(* Hand a connection to the loop from another thread (the acceptor). *)
let add_conn t ?on_close ~limits ~registry ~stats fd =
  Atomic.incr t.load;
  post t (fun () ->
      Atomic.decr t.load;
      attach t ?on_close ~limits ~registry ~stats fd)

let reap t =
  let finished, live =
    List.partition (fun c -> Session.finished c.sess) t.conns
  in
  if finished <> [] then begin
    t.conns <- live;
    List.iter
      (fun c ->
        Session.teardown c.sess;
        Atomic.decr t.load;
        c.on_close ())
      finished
  end

(* The stop flag is observed at most one [tick] after it flips (the
   wake pipe shortcuts completions, not flag flips from a signal
   handler). *)
let tick = 0.2

let run t =
  let rec cycle () =
    run_injections t;
    if t.stop () then
      List.iter (fun c -> Session.begin_drain c.sess) t.conns;
    reap t;
    let idle =
      t.conns = []
      && (t.exit_on_empty || t.stop ())
      &&
      (Mutex.lock t.mu;
       let empty = Queue.is_empty t.inject in
       Mutex.unlock t.mu;
       empty)
    in
    if not idle then begin
      let rds =
        t.wake_r
        :: List.filter_map
             (fun c ->
               if Session.wants_read c.sess then Some (Session.fd c.sess)
               else None)
             t.conns
      in
      let wrs =
        List.filter_map
          (fun c ->
            if Session.wants_write c.sess then Some (Session.fd c.sess)
            else None)
          t.conns
      in
      (match Unix.select rds wrs [] tick with
      | rs, ws, _ ->
          List.iter
            (fun c ->
              if List.memq (Session.fd c.sess) ws then
                Session.try_flush c.sess)
            t.conns;
          List.iter
            (fun c ->
              if List.memq (Session.fd c.sess) rs then
                Session.on_readable c.sess)
            t.conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      cycle ()
    end
  in
  cycle ();
  Pool.shutdown t.pool;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

(* Serve one already-accepted connection to completion on the calling
   thread — a single-session event loop.  This is polytmd's old
   [Session.handle] surface, kept so the deterministic socketpair
   tests drive the exact code path production uses.  The caller
   retains ownership of [fd] (it is set non-blocking but not
   closed). *)
let handle ?(stop = fun () -> false) ~limits ~registry ~stats fd =
  let t = create ~exit_on_empty:true ~stop () in
  attach t ~limits ~registry ~stats fd;
  run t
