(** Resource bounds and per-op execution policy of a [polytmd]
    session.  Everything that protects the server from an unbounded or
    hostile client lives here, so the session code reads as policy
    application rather than magic numbers.

    Backpressure is explicit: a client that pipelines more than
    [max_inflight] requests into one read batch gets [BUSY] errors for
    the excess instead of the server buffering arbitrarily — the reply
    tells the client to slow down, and server memory stays bounded by
    [max_inflight * max_frame] per connection. *)

type t = {
  max_inflight : int;
      (** decoded-but-unexecuted requests tolerated per connection;
          excess requests are answered [BUSY] and not executed *)
  max_multi : int;  (** commands accepted inside one [MULTI] batch *)
  max_frame : int;  (** bytes per wire frame (header excluded) *)
  op_budget : int option;
      (** optimistic retry budget per operation, mapped onto
          [try_atomically ~budget]; [None] uses the STM instance's
          [max_attempts] *)
  op_deadline_us : int option;
      (** per-operation deadline in microseconds, mapped onto
          [try_atomically ~deadline]; [None] means no deadline *)
  max_waiters : int;
      (** parked blocking ops ([BLPOP]/[BTAKE] waiters, watch polls)
          tolerated server-wide, across every STM instance and shard;
          a blocking op arriving when the shared budget
          ([Registry.reserve_waiter]) is exhausted is answered [BUSY]
          instead of parking, so a flood of blocking clients cannot
          pin every worker domain.  (Earlier versions checked the
          limit against one instance's wait table, so [N] instances
          admitted [N * max_waiters] parked ops.) *)
  debug_ops : bool;
      (** accept [DEBUG-ABORT] probe requests (tests and CI smoke);
          off by default *)
}

let default =
  {
    max_inflight = 128;
    max_multi = 1024;
    max_frame = 8 * 1024 * 1024;
    op_budget = None;
    op_deadline_us = None;
    max_waiters = 64;
    debug_ops = false;
  }

let validate t =
  if t.max_inflight < 1 then invalid_arg "Limits: max_inflight must be >= 1";
  if t.max_multi < 1 then invalid_arg "Limits: max_multi must be >= 1";
  if t.max_frame < 64 then invalid_arg "Limits: max_frame must be >= 64";
  if t.max_waiters < 1 then invalid_arg "Limits: max_waiters must be >= 1";
  (match t.op_budget with
  | Some b when b < 1 -> invalid_arg "Limits: op_budget must be >= 1"
  | _ -> ());
  match t.op_deadline_us with
  | Some d when d < 0 -> invalid_arg "Limits: op_deadline_us must be >= 0"
  | _ -> ()
