(** The [polytmd] driver: listeners, event-loop worker domains,
    graceful shutdown, and observability export.

    Topology: the calling domain runs the accept loop (a [select] over
    every listener with a short tick so it can notice the stop flag),
    handing each accepted connection to the least-loaded of [workers]
    event loops ({!Evloop}), one loop per domain.  A loop multiplexes
    all of its connections over one readiness cycle, so a parked or
    slow session never monopolises a domain.  All loops share one
    {!Registry} — and therefore one STM instance per algorithm over
    the domains runtime — which is the whole point: transactions from
    different connections really do contend and compose on the same
    tvars.

    Shutdown ([SIGTERM]/[SIGINT], or [max_seconds]) is graceful: the
    stop flag flips, listeners close (no new connections), the
    registry's drain-flag commit wakes every parked waiter, and every
    active connection is nudged with [shutdown SHUTDOWN_RECEIVE]; each
    loop drains its sessions — in-flight requests are answered and
    flushed, never dropped — and exits once its last connection
    closes.  Only then are the loop domains joined and the
    stats/trace files written. *)

module T = Polytm_telemetry
module S = Registry.S
module Hist = Polytm_util.Stats.Hist

type listener = Tcp of string * int | Unix_sock of string

type config = {
  listeners : listener list;
  workers : int;
  shards : int;
      (** independent STM instances per algorithm; single-key requests
          hash-route to their owner shard, cross-shard batches commit
          through the two-phase protocol (DESIGN.md §S20) *)
  limits : Limits.t;
  prestructs : (Wire.kind * string * Registry.algo) list;
      (** structures created before accepting (so clients need no
          setup round-trip), each pinned to an algorithm *)
  default_algo : Registry.algo;
      (** algorithm for structures created over the wire ([NEW]
          carries no algo) *)
  stats_json : string option;  (** write a stats snapshot here on exit *)
  trace : string option;  (** write a Chrome/Perfetto trace here on exit *)
  ring_capacity : int;  (** telemetry ring slots per lane *)
  max_seconds : float option;  (** self-terminate after this long *)
  quiet : bool;
  persist_dir : string option;
      (** durability root ([--dir]): op log + checkpoints + manifest.
          [None] (the default) disables persistence entirely — no
          hooks installed, no arming, byte-identical behaviour to the
          pre-durability server *)
  fsync : Polytm_persist.Aof.policy;
      (** when log appends reach the disk: [`Always] fsyncs before any
          mutation is acked (group commit per pipelined batch),
          [`Everysec] syncs from a background thread, [`No] leaves it
          to the OS *)
  checkpoint_sec : float;
      (** automatic checkpoint cadence; [0.] disables (BGSAVE still
          works) *)
}

let default_config =
  {
    listeners = [ Tcp ("127.0.0.1", 7411) ];
    workers = 4;
    shards = 1;
    limits = Limits.default;
    prestructs = [];
    default_algo = `Tl2;
    stats_json = None;
    trace = None;
    ring_capacity = 1 lsl 14;
    max_seconds = None;
    quiet = false;
    persist_dir = None;
    fsync = `Everysec;
    checkpoint_sec = 60.;
  }

(* Accept-level backpressure: connections held across all loops before
   accepted sockets are closed instead of served. *)
let max_conns = 1024

(* ---- active-connection tracking (for the shutdown nudge) --------------- *)

module Active = struct
  type t = { mutable fds : Unix.file_descr list; m : Mutex.t }

  let create () = { fds = []; m = Mutex.create () }

  let add t fd =
    Mutex.lock t.m;
    t.fds <- fd :: t.fds;
    Mutex.unlock t.m

  let remove t fd =
    Mutex.lock t.m;
    t.fds <- List.filter (fun f -> f != fd) t.fds;
    Mutex.unlock t.m

  let nudge t =
    Mutex.lock t.m;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      t.fds;
    Mutex.unlock t.m
end

(* ---- listeners --------------------------------------------------------- *)

let open_listener = function
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> Unix.inet_addr_loopback
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 128;
      fd
  | Unix_sock path ->
      (try Unix.unlink path with _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      fd

let close_listeners cfg fds =
  List.iter (fun fd -> try Unix.close fd with _ -> ()) fds;
  List.iter
    (function
      | Unix_sock path -> ( try Unix.unlink path with _ -> ())
      | Tcp _ -> ())
    cfg.listeners

(* ---- stats export ------------------------------------------------------ *)

let hist_json h =
  let pct p = float_of_int (Hist.percentile h p) /. 1000. in
  T.Json.Obj
    [
      ("count", T.Json.Int (Hist.count h));
      ("mean_us", T.Json.Float (Hist.mean h /. 1000.));
      ("p50_us", T.Json.Float (pct 50.));
      ("p95_us", T.Json.Float (pct 95.));
      ("p99_us", T.Json.Float (pct 99.));
      ("max_us", T.Json.Float (float_of_int (Hist.max h) /. 1000.));
    ]

(* Per-shard STM counters, labelled ["<algo>/<shard>"]: the scaling
   story in one table — commit/abort totals per instance show whether
   load actually spread across the shards, and the multi counters show
   how much of it paid the cross-shard two-phase protocol. *)
let shard_stats_json registry =
  let per algo =
    List.mapi
      (fun i stm ->
        let st = S.stats stm in
        ( Printf.sprintf "%s/%d" (Registry.algo_name algo) i,
          T.Json.Obj
            [
              ("starts", T.Json.Int st.S.starts);
              ("commits", T.Json.Int st.S.commits);
              ("aborts", T.Json.Int st.S.aborts);
              ("serial_commits", T.Json.Int st.S.serial_commits);
              ("multi_commits", T.Json.Int st.S.multi_commits);
              ("multi_escalations", T.Json.Int st.S.multi_escalations);
              ("parks", T.Json.Int st.S.parks);
              ("wakes", T.Json.Int st.S.wakes);
            ] ))
      (Registry.instances registry algo)
  in
  T.Json.Obj (per `Tl2 @ per `Norec)

let stats_json_doc ~elapsed_s ~registry ?persist (stats : Session.stats)
    ~events_lost agg_snapshot =
  let sem_name i = Polytm.Semantics.to_string (Session.sem_of_index i) in
  T.Json.Obj
    ((* the durability counters appear only when persistence is on, so
        a persistence-off run's stats document is byte-identical to
        the pre-durability server's *)
     (match persist with
     | None -> []
     | Some kvs ->
         [
           ( "persist",
             T.Json.Obj (List.map (fun (k, v) -> (k, T.Json.Int v)) kvs) );
         ])
    @ [
      ( "server",
        T.Json.Obj
          [
            ("elapsed_s", T.Json.Float elapsed_s);
            ("requests", T.Json.Int stats.Session.requests);
            ("replies", T.Json.Int stats.Session.replies);
            ("busy", T.Json.Int stats.Session.busy);
            ("proto_errors", T.Json.Int stats.Session.proto_errors);
            ("deadline_errors", T.Json.Int stats.Session.deadline_errors);
            ("exhausted_errors", T.Json.Int stats.Session.exhausted_errors);
            ("sem_errors", T.Json.Int stats.Session.sem_errors);
            ("other_errors", T.Json.Int stats.Session.other_errors);
            ( "latency",
              T.Json.Obj
                (("all", hist_json stats.Session.lat_all)
                :: List.init 3 (fun i ->
                       (sem_name i, hist_json stats.Session.lat_by_sem.(i))))
            );
          ] );
        ("shards", shard_stats_json registry);
        ("telemetry", T.Export.snapshot_json agg_snapshot);
        ("telemetry_events_lost", T.Json.Int events_lost);
      ])

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

(* ---- the server -------------------------------------------------------- *)

type handle = {
  registry : Registry.t;
  stop : bool Atomic.t;
  stats : Session.stats;  (** merged totals, valid after [run] returns *)
}

let run ?registry cfg =
  let registry =
    match registry with
    | Some r -> r
    | None ->
        Registry.create ~shards:cfg.shards ~default_algo:cfg.default_algo ()
  in
  Limits.validate cfg.limits;
  if cfg.workers < 1 then invalid_arg "Server: workers must be >= 1";
  if cfg.shards < 1 then invalid_arg "Server: shards must be >= 1";
  if cfg.listeners = [] then invalid_arg "Server: no listeners";
  (* Recovery runs first — before pre-created structures, so a
     recovered structure wins a name tie (the prestruct ensure then
     just converges on it), and before anything can commit.  The
     server refuses to serve on a recovery failure: coming up empty
     over a corrupt data directory would silently discard the store. *)
  let recovered =
    match cfg.persist_dir with
    | None -> None
    | Some dir -> (
        match Persist.recover ~dir registry with
        | Ok r -> Some (dir, r)
        | Error m -> failwith ("polytmd: recovery failed: " ^ m))
  in
  List.iter
    (fun (kind, name, algo) ->
      match Registry.ensure ~algo registry kind name with
      | Ok _ -> ()
      | Error _ ->
          invalid_arg (Printf.sprintf "Server: prestruct %S conflicts" name))
    cfg.prestructs;
  (* Activation (fresh generation checkpoint + hook install) comes
     after the prestructs so the startup checkpoint captures them —
     their creation predates the hooks, so only the checkpoint records
     them. *)
  let persist =
    Option.map
      (fun (dir, r) ->
        match Persist.activate ~dir ~policy:cfg.fsync registry r with
        | Ok p ->
            if not cfg.quiet then
              Printf.printf
                "polytmd: recovered %d records in %.1f ms (tail: %s)\n%!"
                r.Persist.r_replayed r.Persist.r_ms
                (match r.Persist.r_tear with None -> "clean" | Some m -> m);
            p
        | Error m -> failwith ("polytmd: persistence unavailable: " ^ m))
      recovered
  in
  (* Telemetry: a lock-free ring so the request path never takes a
     lock for observability; drained once after the loops join. *)
  let ring =
    if cfg.stats_json <> None || cfg.trace <> None then
      Some (T.Ring.create ~lanes:(cfg.workers + 1) ~capacity:cfg.ring_capacity ())
    else None
  in
  (* Every instance of both routers shares the ring: lanes are picked
     per domain, so transactions from any shard of either algorithm
     interleave safely in the same sink. *)
  let all_instances () =
    Registry.instances registry `Tl2 @ Registry.instances registry `Norec
  in
  Option.iter
    (fun r ->
      let sink = Some (T.Ring.sink r) in
      List.iter (fun stm -> S.set_sink stm sink) (all_instances ()))
    ring;
  let stop = Atomic.make false in
  let stop_fn () = Atomic.get stop in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let listeners = List.map open_listener cfg.listeners in
  let active = Active.create () in
  let t_start = Unix.gettimeofday () in
  let worker_stats = Array.init cfg.workers (fun _ -> Session.create_stats ()) in
  let loops = Array.init cfg.workers (fun _ -> Evloop.create ~stop:stop_fn ()) in
  let loop_doms =
    Array.map (fun l -> Domain.spawn (fun () -> Evloop.run l)) loops
  in
  (* The persistence housekeeper: the [`Everysec] group sync and the
     automatic checkpoint cadence.  A plain systhread — both duties
     are I/O-bound and sub-second-latency-tolerant. *)
  let persist_stop = Atomic.make false in
  let persist_thread =
    Option.map
      (fun p ->
        Thread.create
          (fun () ->
            let rec go last_sync last_ckpt =
              if not (Atomic.get persist_stop) then begin
                Thread.delay 0.2;
                let now = Unix.gettimeofday () in
                let last_sync =
                  if cfg.fsync = `Everysec && now -. last_sync >= 1.0 then begin
                    Persist.tick p;
                    now
                  end
                  else last_sync
                in
                let last_ckpt =
                  if
                    cfg.checkpoint_sec > 0.
                    && now -. last_ckpt >= cfg.checkpoint_sec
                  then begin
                    ignore (Persist.bgsave p);
                    now
                  end
                  else last_ckpt
                in
                go last_sync last_ckpt
              end
            in
            let t0 = Unix.gettimeofday () in
            go t0 t0)
          ())
      persist
  in
  (* Dispatch to the least-loaded loop so one loop never aggregates
     every long-lived connection while the others idle. *)
  let pick_loop () =
    let best = ref 0 and best_load = ref max_int in
    Array.iteri
      (fun i l ->
        let n = Evloop.load l in
        if n < !best_load then begin
          best := i;
          best_load := n
        end)
      loops;
    !best
  in
  let total_load () =
    Array.fold_left (fun acc l -> acc + Evloop.load l) 0 loops
  in
  (* Accept loop: select with a tick so the stop flag and the
     max_seconds deadline are observed promptly. *)
  let deadline =
    Option.map (fun s -> t_start +. s) cfg.max_seconds
  in
  let rec accept_loop () =
    if Atomic.get stop then ()
    else begin
      (match deadline with
      | Some d when Unix.gettimeofday () >= d -> Atomic.set stop true
      | _ -> ());
      if Atomic.get stop then ()
      else begin
        (match Unix.select listeners [] [] 0.2 with
        | ready, _, _ ->
            List.iter
              (fun lfd ->
                match Unix.accept ~cloexec:true lfd with
                | fd, _ ->
                    if total_load () >= max_conns then
                      (* accept-level backpressure *)
                      (try Unix.close fd with _ -> ())
                    else begin
                      (try Unix.setsockopt fd Unix.TCP_NODELAY true
                       with Unix.Unix_error _ -> ());
                      Active.add active fd;
                      let i = pick_loop () in
                      Evloop.add_conn loops.(i)
                        ~on_close:(fun () ->
                          Active.remove active fd;
                          try Unix.close fd with _ -> ())
                        ~limits:cfg.limits ~registry ~stats:worker_stats.(i) fd
                    end
                | exception Unix.Unix_error (_, _, _) -> ())
              ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        accept_loop ()
      end
    end
  in
  accept_loop ();
  (* ---- graceful drain ---- *)
  close_listeners cfg listeners;
  (* Wake every parked waiter (BLPOP/BTAKE, watch polls) before the
     socket nudge: the drain flag is in each blocking transaction's
     read set, so this commit resurfaces them to answer [Nil] — no
     session sleeps in the STM through shutdown. *)
  Registry.set_draining registry;
  Active.nudge active;
  Array.iter Domain.join loop_doms;
  (* Every session has answered and flushed, so every armed record is
     appended; [Persist.stop] syncs the tail and closes the log. *)
  Atomic.set persist_stop true;
  Option.iter Thread.join persist_thread;
  Option.iter Persist.stop persist;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  Sys.set_signal Sys.sigpipe prev_pipe;
  let elapsed_s = Unix.gettimeofday () -. t_start in
  let stats = Session.create_stats () in
  Array.iter (fun s -> Session.merge_stats ~into:stats s) worker_stats;
  List.iter (fun stm -> S.set_sink stm None) (all_instances ());
  let events = match ring with Some r -> T.Ring.drain r | None -> [] in
  let events_lost = match ring with Some r -> T.Ring.overwritten r | None -> 0 in
  Option.iter
    (fun path ->
      let doc =
        stats_json_doc ~elapsed_s ~registry
          ?persist:(Option.map (fun _ -> T.Persist.counters ()) persist)
          stats ~events_lost (T.Agg.of_events events)
      in
      write_file path (T.Json.to_string doc))
    cfg.stats_json;
  Option.iter
    (fun path ->
      write_file path
        (T.Json.to_string
           (T.Export.chrome_trace ~process_name:"polytmd"
              ~extra:(T.Persist.lane ()) events)))
    cfg.trace;
  if not cfg.quiet then
    Printf.printf
      "polytmd: served %d requests (%d replies, %d busy, %d proto errors) in %.1fs\n%!"
      stats.Session.requests stats.Session.replies stats.Session.busy
      stats.Session.proto_errors elapsed_s;
  { registry; stop; stats }
