(** Structure-level linearizability checking.

    The sibling modules ({!Serializability}, {!Opacity}, {!Elastic})
    judge {e transactional} histories of low-level reads and writes.
    This module judges {e operation} histories of whole data-structure
    calls — [add]/[remove]/[contains]/[size] on a set, [enqueue]/
    [dequeue] on a queue — recorded with invocation and response
    timestamps by concurrent workers.  A history is {e linearizable}
    (Herlihy & Wing 1990) when every operation can be assigned a single
    point inside its [inv, ret] interval such that executing the
    operations sequentially in point order yields exactly the recorded
    results.

    Two checkers are provided and cross-validated by property tests,
    mirroring {!Serializability.accepts} vs
    {!Serializability.accepts_brute_force}:

    - {!accepts} — a Wing–Gong / WGL-style search that repeatedly picks
      a minimal (real-time-first) unlinearized operation, replays the
      sequential specification, and memoizes visited
      (linearized-set, state) configurations;
    - {!accepts_brute_force} — enumeration of every real-time-respecting
      permutation, feasible only for small histories.

    For sets, {!check_set} exploits {e P-compositionality}: operations
    on distinct keys act on independent sub-objects, so the history is
    linearizable iff each per-key projection is — which turns an
    exponential whole-set check into many tiny per-key checks.  [size]
    does not partition; it is checked against {e interval consistency}:
    the reported value must fall between the smallest certain and the
    largest possible cardinality over the operation's interval, given
    the per-key witness orders.  This deliberately accepts snapshot
    (slightly stale but consistent) sizes while rejecting traversal
    counts that correspond to no instantaneous state. *)

(** {1 Operation histories} *)

type ('op, 'res) event = {
  thread : int;  (** worker identifier; a thread's events must not overlap *)
  op : 'op;
  result : 'res;
  inv : int;  (** invocation timestamp (virtual ticks or wall ns) *)
  ret : int;  (** response timestamp; [inv <= ret] *)
}

val precedes : ('op, 'res) event -> ('op, 'res) event -> bool
(** Real-time order: [a] responded strictly before [b] was invoked. *)

val well_formed : ('op, 'res) event list -> bool
(** Intervals are sane and no two events of one thread overlap. *)

(** {1 Sequential specifications}

    A specification is an initial state plus a deterministic transition
    function returning the post-state and the result the operation
    {e must} produce; results are compared with polymorphic equality,
    so keep them to immediate values and options/lists thereof. *)

type ('op, 'res) spec =
  | Spec : { init : 's; apply : 's -> 'op -> 's * 'res } -> ('op, 'res) spec

(** {1 Generic checkers} *)

val witness : ('op, 'res) spec -> ('op, 'res) event list -> int list option
(** WGL search.  [Some order] gives the indices (into the input list)
    of a valid linearization, earliest first; [None] means the history
    is not linearizable w.r.t. the specification. *)

val accepts : ('op, 'res) spec -> ('op, 'res) event list -> bool
(** [witness spec h <> None]. *)

val accepts_brute_force : ('op, 'res) spec -> ('op, 'res) event list -> bool
(** Permutation search; exponential — cross-validation of {!accepts}
    on small histories only (the qcheck property uses <= 6 events). *)

(** {1 Set histories} *)

type set_op = Add of int | Remove of int | Contains of int | Size

type set_res = Bool of bool | Int of int

val set_spec : ?init:int list -> unit -> (set_op, set_res) spec
(** Whole-set specification (state: sorted element list), including
    [Size] with a strict linearization point.  Exponential via
    {!accepts} on large histories; prefer {!check_set}. *)

val per_key_spec : ?init:bool -> unit -> (set_op, set_res) spec
(** Membership register for a single key's projection ([Size] must be
    filtered out first). *)

type violation = {
  reason : string;  (** human explanation of the failed obligation *)
  culprit : (set_op, set_res) event option;  (** the unlinearizable op *)
  witness_events : (set_op, set_res) event list;
      (** a minimized sub-history that still exhibits the failure *)
}

type verdict = Linearizable | Violation of violation

val check_set : ?init:int list -> (set_op, set_res) event list -> verdict
(** Partitioned check: per-key linearizability of
    [add]/[remove]/[contains] plus interval consistency of every
    [Size] observation — there must be a single instant [t] inside the
    size's own interval whose certain/possible cardinality bounds
    (derived from the per-key witness orders) bracket the reported
    value.  Snapshot sizes always satisfy this (their value is the
    cardinality at one real instant, possibly slightly stale);
    traversal counts over concurrent churn, which may correspond to no
    instantaneous state, are rejected.  [init] lists elements present
    before the first event. *)

val size_bounds :
  ?init:int list ->
  (set_op, set_res) event list ->
  (set_op, set_res) event ->
  int * int
(** [size_bounds h s] returns [(lo, hi)]: the smallest certain and the
    largest possible cardinality seen at any sampled instant of [s]'s
    interval.  A rejected size lies outside the pointwise bounds of
    {e every} instant; [lo, hi] is the envelope printed in failure
    reports.  Exposed for tests. *)

(** {1 Queue and stack histories} *)

type queue_op = Enqueue of int | Dequeue

type queue_res = Enqueued | Dequeued of int option

val queue_spec : (queue_op, queue_res) spec
(** FIFO: [Dequeue] returns [Dequeued None] on empty. *)

type stack_op = Push of int | Pop

type stack_res = Pushed | Popped of int option

val stack_spec : (stack_op, stack_res) spec
(** LIFO: [Pop] returns [Popped None] on empty. *)

(** {1 Rendering} *)

val pp_set_op : Format.formatter -> set_op -> unit

val pp_set_event : Format.formatter -> (set_op, set_res) event -> unit
(** e.g. [t2 [120,190] add(7) -> true]. *)

val pp_queue_event : Format.formatter -> (queue_op, queue_res) event -> unit

val pp_stack_event : Format.formatter -> (stack_op, stack_res) event -> unit

val pp_verdict : Format.formatter -> verdict -> unit

val shrink :
  keep:(('op, 'res) event -> bool) ->
  still_fails:(('op, 'res) event list -> bool) ->
  ('op, 'res) event list ->
  ('op, 'res) event list
(** Greedy delta-debugging: drop events (except those [keep] protects)
    while [still_fails] holds, yielding a locally minimal
    counterexample.  Used by {!check_set} and the conformance
    harness's queue/stack reports. *)
