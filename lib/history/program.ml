type semantics = Classic | Elastic

type t = {
  id : int;
  semantics : semantics;
  accesses : History.action list;
}

let classic id accesses = { id; semantics = Classic; accesses }
let elastic id accesses = { id; semantics = Elastic; accesses }

let interleavings programs =
  (* Backtracking merge of the per-program access sequences. *)
  let rec go pending acc_rev =
    if List.for_all (fun (_, rest) -> rest = []) pending then
      [ History.make (List.rev acc_rev) ]
    else
      List.concat_map
        (fun (p, rest) ->
          match rest with
          | [] -> []
          | a :: rest' ->
              let pending' =
                List.map
                  (fun (q, r) -> if q.id = p.id then (q, rest') else (q, r))
                  pending
              in
              go pending' ({ History.tx = p.id; action = a } :: acc_rev))
        pending
  in
  go (List.map (fun p -> (p, p.accesses)) programs) []

type acceptance = {
  total : int;
  serializable : int;
  opaque : int;
  elastic_opaque : int;
}

let count_accepted programs =
  let elastic_ids =
    List.filter_map
      (fun p -> if p.semantics = Elastic then Some p.id else None)
      programs
  in
  let hs = interleavings programs in
  let count pred = List.length (List.filter pred hs) in
  {
    total = List.length hs;
    serializable = count Serializability.accepts;
    opaque = count Opacity.accepts;
    elastic_opaque = count (Elastic.accepts ~elastic:elastic_ids);
  }

(* x = 0, y = 1, z = 2 per History.loc_name. *)
let fig4_programs =
  [
    classic 0 [ History.Read 0; History.Read 1; History.Read 2 ];
    classic 1 [ History.Write 0 ];
    classic 2 [ History.Write 2 ];
  ]

type fig4_result = {
  schedules : int;
  accepted_by_opacity : int;
  precluded : int;
  precluded_ratio : float;
}

let fig4 () =
  let a = count_accepted fig4_programs in
  {
    schedules = a.total;
    accepted_by_opacity = a.opaque;
    precluded = a.total - a.opaque;
    precluded_ratio =
      float_of_int (a.total - a.opaque) /. float_of_int a.total;
  }
