(** Elastic-opacity — the semantics of {e elastic} transactions
    (Felber, Gramoli & Guerraoui, DISC 2009; Section 4.2 of the paper).

    An elastic transaction may be {e cut} into consecutive pieces, each
    of which behaves as a little classic transaction, provided the cut
    is {e consistent}.  Formally, a history [H] with elastic
    transactions [E] is accepted iff for every [t ∈ E] there is a cut
    of [t]'s events into non-empty consecutive pieces such that:

    - {b writes last}: all of [t]'s writes fall in the final piece
      (operationally, E-STM stops cutting at the first write);
    - {b boundary consistency}: for each pair of consecutive pieces,
      with [a] the location of the piece's last access and [b] the
      location of the next piece's first access, other transactions do
      not write {e both} [a] and [b] (nor [a] at all, when [a = b])
      between those two accesses — this is the paper's “no two
      modifications on [n] and [t] have occurred between [r(n)_{s1}]
      and [r(t)_{s2}]” condition;
    - the history in which the pieces replace [t] is opaque
      ({!Opacity.accepts}).

    Classic transactions in the same history are left uncut, which is
    exactly the mixed-semantics requirement of Section 5: each
    transaction keeps its own guarantee. *)

val accepts : elastic:int list -> History.t -> bool
(** Is there a consistent cut of each elastic transaction making the
    history opaque?  Exponential in the number of possible cut points;
    intended for the small histories of the paper's examples and for
    validating the STM implementation on recorded runs. *)

val cut_consistent : History.t -> int -> int list -> bool
(** [cut_consistent h t cuts] checks the writes-last and boundary
    conditions for cutting transaction [t] at the positions [cuts]
    (each cut point [k] splits between [t]'s [k-1]-th and [k]-th
    event). *)

val apply_cut : History.t -> int -> int list -> fresh:int -> History.t * int list
(** Relabel [t]'s pieces with fresh transaction ids starting at
    [fresh]; returns the transformed history and the piece ids. *)

val consistent_cuts : History.t -> int -> int list list
(** All consistent cut position sets for transaction [t] in [h]
    (including the empty cut, when consistent). *)
