(** Opacity — the semantics of {e classic} transactions.

    Opacity (Guerraoui & Kapalka, reference [3] of the paper) is the
    "single-global-lock atomicity" the paper assigns to default
    transactions: committed transactions are serializable {e in an
    order that extends real-time precedence}, and even aborted
    transactions never observe inconsistent state.

    This module implements the conflict-based characterisation used in
    Section 3.2 of the paper to count precluded schedules:

    - committed transactions must admit a serial order preserving both
      conflict order and real-time order (strict serializability);
    - every aborted transaction's {e reads} (its writes are discarded)
      must fit the same order, i.e. adding it as a read-only node
      keeps the graph acyclic.

    On histories where every transaction commits and conflicts are
    syntactic (as in all the paper's examples), this coincides with
    opacity; in general, conflict-based acyclicity is a sufficient
    condition.  {!accepts_brute_force} cross-validates by explicit
    search over serial orders. *)

val accepts : History.t -> bool

val accepts_brute_force : History.t -> bool

val strict_serialization_graph : History.t -> Digraph.t * int array
(** The conflict graph with real-time edges added, over committed
    transactions plus the read-projections of aborted transactions. *)
