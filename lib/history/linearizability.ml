type ('op, 'res) event = {
  thread : int;
  op : 'op;
  result : 'res;
  inv : int;
  ret : int;
}

let precedes a b = a.ret < b.inv

let well_formed events =
  List.for_all (fun e -> e.inv <= e.ret) events
  && List.for_all
       (fun e ->
         List.for_all
           (fun e' ->
             e == e' || e.thread <> e'.thread || precedes e e' || precedes e' e)
           events)
       events

type ('op, 'res) spec =
  | Spec : { init : 's; apply : 's -> 'op -> 's * 'res } -> ('op, 'res) spec

(* ---- WGL search --------------------------------------------------------- *)

(* Repeatedly linearize a minimal operation (one that no other
   unlinearized operation precedes in real time) whose specified result
   matches the recorded one; backtrack on dead ends.  Visited
   (linearized-set, state) configurations are memoized — re-reaching one
   through a different order cannot succeed where the first visit
   failed, because the remaining obligation depends only on which
   operations are left and on the current abstract state. *)
let witness (type o r) (Spec { init; apply } : (o, r) spec)
    (events : (o, r) event list) =
  let evs = Array.of_list events in
  let n = Array.length evs in
  if n = 0 then Some []
  else begin
    let visited = Hashtbl.create 256 in
    let lin = Array.make n false in
    let linearized_set () = Array.to_list lin in
    let minimal i =
      (not lin.(i))
      && begin
           let ok = ref true in
           for j = 0 to n - 1 do
             if (not lin.(j)) && j <> i && precedes evs.(j) evs.(i) then
               ok := false
           done;
           !ok
         end
    in
    let rec go state acc k =
      if k = n then Some (List.rev acc)
      else begin
        let cfg = (linearized_set (), state) in
        if Hashtbl.mem visited cfg then None
        else begin
          Hashtbl.add visited cfg ();
          let rec try_candidates i =
            if i >= n then None
            else if minimal i then begin
              let state', expected = apply state evs.(i).op in
              if expected = evs.(i).result then begin
                lin.(i) <- true;
                match go state' (i :: acc) (k + 1) with
                | Some _ as w -> w
                | None ->
                    lin.(i) <- false;
                    try_candidates (i + 1)
              end
              else try_candidates (i + 1)
            end
            else try_candidates (i + 1)
          in
          try_candidates 0
        end
      end
    in
    go init [] 0
  end

let accepts spec events = witness spec events <> None

(* ---- brute force -------------------------------------------------------- *)

(* Deliberately a different algorithm: enumerate every permutation of
   the events, keep those that respect real-time precedence, and replay
   the specification over each.  Exponential; the qcheck property
   cross-validates it against {!accepts} on small histories. *)
let accepts_brute_force (type o r) (Spec { init; apply } : (o, r) spec)
    (events : (o, r) event list) =
  let respects_rt perm =
    let rec go = function
      | [] -> true
      | e :: rest -> List.for_all (fun e' -> not (precedes e' e)) rest && go rest
    in
    go perm
  in
  let replays perm =
    let rec go state = function
      | [] -> true
      | e :: rest ->
          let state', expected = apply state e.op in
          expected = e.result && go state' rest
    in
    go init perm
  in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x ->
            List.map
              (fun perm -> x :: perm)
              (permutations (List.filter (fun y -> y != x) xs)))
          xs
  in
  List.exists (fun p -> respects_rt p && replays p) (permutations events)

(* ---- shrinking ---------------------------------------------------------- *)

let shrink ~keep ~still_fails events =
  let rec drop_one prefix = function
    | [] -> None
    | e :: rest ->
        if not (keep e) && still_fails (List.rev_append prefix rest) then
          Some (List.rev_append prefix rest)
        else drop_one (e :: prefix) rest
  in
  let rec fix evs =
    match drop_one [] evs with Some evs' -> fix evs' | None -> evs
  in
  fix events

(* ---- set histories ------------------------------------------------------ *)

type set_op = Add of int | Remove of int | Contains of int | Size

type set_res = Bool of bool | Int of int

let set_spec ?(init = []) () =
  let mem k s = List.mem k s in
  (* State is kept sorted so equal sets share one memoization entry. *)
  Spec
    {
      init = List.sort_uniq compare init;
      apply =
        (fun s op ->
          match op with
          | Add k ->
              if mem k s then (s, Bool false)
              else (List.sort compare (k :: s), Bool true)
          | Remove k ->
              if mem k s then (List.filter (( <> ) k) s, Bool true)
              else (s, Bool false)
          | Contains k -> (s, Bool (mem k s))
          | Size -> (s, Int (List.length s)));
    }

let per_key_spec ?(init = false) () =
  Spec
    {
      init;
      apply =
        (fun present op ->
          match op with
          | Add _ -> (true, Bool (not present))
          | Remove _ -> (false, Bool present)
          | Contains _ -> (present, Bool present)
          | Size -> (present, Int 0));
    }

type violation = {
  reason : string;
  culprit : (set_op, set_res) event option;
  witness_events : (set_op, set_res) event list;
}

type verdict = Linearizable | Violation of violation

let key_of = function
  | Add k | Remove k | Contains k -> Some k
  | Size -> None

(* Successful updates of one key in witness order, each as
   [present-after] (true for add, false for remove). *)
let update_timeline per_key_events order =
  let arr = Array.of_list per_key_events in
  List.filter_map
    (fun i ->
      let e = arr.(i) in
      match (e.op, e.result) with
      | Add _, Bool true -> Some (e, true)
      | Remove _, Bool true -> Some (e, false)
      | _ -> None)
    order

(* Possible membership values of one key at integer time [t], given its
   successful updates [u_1 .. u_m] in witness order.  Each update's
   linearization point lies in its own interval and the points respect
   the witness order; [e_i]/[l_i] are the earliest/latest feasible
   points.  "Last update at or before t is u_i" is feasible iff
   [e_i <= t] and (i = m or [l_(i+1) >= t]); i = 0 stands for "no
   update yet" (the initial membership).  Ties are treated
   permissively: an equal timestamp never causes a rejection. *)
let possible_membership ~init updates t =
  let m = Array.length updates in
  let earliest = Array.make (m + 1) min_int in
  for i = 1 to m do
    let e, _ = updates.(i - 1) in
    earliest.(i) <- max e.inv earliest.(i - 1)
  done;
  let latest = Array.make (m + 2) max_int in
  for i = m downto 1 do
    let e, _ = updates.(i - 1) in
    latest.(i) <- min e.ret latest.(i + 1)
  done;
  let possible = ref [] in
  if m = 0 || latest.(1) >= t then possible := [ init ];
  for i = 1 to m do
    if earliest.(i) <= t && (i = m || latest.(i + 1) >= t) then
      possible := snd updates.(i - 1) :: !possible
  done;
  !possible

(* Per-key witness orders for every key appearing in the history (or
   prefilled); [Size] events are excluded from partitions.  Returns
   [Error key] when some key's projection is not linearizable. *)
let per_key_witnesses ~init events =
  let keys =
    List.sort_uniq compare
      (init @ List.filter_map (fun e -> key_of e.op) events)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | k :: rest -> (
        let evs = List.filter (fun e -> key_of e.op = Some k) events in
        match witness (per_key_spec ~init:(List.mem k init) ()) evs with
        | Some order -> go ((k, evs, order) :: acc) rest
        | None -> Error k)
  in
  go [] keys

(* Pointwise cardinality bounds: at time [t], [lo] counts keys that are
   in the set under every feasible placement of their updates' points,
   [hi] those in under at least one.  A size observation [v] is
   interval-consistent when some single [t] inside its interval has
   [lo t <= v <= hi t] — the snapshot it reports must correspond to an
   instantaneous state, stale or not. *)
let bounds_at witnesses ~init t =
  let lo = ref 0 and hi = ref 0 in
  List.iter
    (fun (k, _evs, updates) ->
      match possible_membership ~init:(List.mem k init) updates t with
      | [] -> ()
      | states ->
          if List.for_all (fun b -> b) states then incr lo;
          if List.exists (fun b -> b) states then incr hi)
    witnesses;
  (!lo, !hi)

let with_updates witnesses =
  List.map
    (fun (k, evs, order) -> (k, evs, Array.of_list (update_timeline evs order)))
    witnesses

let size_samples witnesses s =
  List.sort_uniq compare
    (s.inv :: s.ret
    :: List.concat_map
         (fun (_, _, updates) ->
           Array.to_list updates
           |> List.concat_map (fun (e, _) ->
                  List.filter
                    (fun t -> t >= s.inv && t <= s.ret)
                    [ e.inv - 1; e.inv; e.inv + 1; e.ret - 1; e.ret; e.ret + 1 ]))
         witnesses)

let interval_consistent witnesses ~init s v =
  List.exists
    (fun t ->
      let lo, hi = bounds_at witnesses ~init t in
      v >= lo && v <= hi)
    (size_samples witnesses s)

let size_bounds_of_witnesses witnesses ~init s =
  (* Tightest bounds seen at any sampled point — for failure reports:
     a rejected size lies outside [lo t, hi t] for every t. *)
  List.fold_left
    (fun (lo_min, hi_max) t ->
      let lo, hi = bounds_at witnesses ~init t in
      (min lo_min lo, max hi_max hi))
    (max_int, min_int)
    (size_samples witnesses s)

let size_bounds ?(init = []) events s =
  match per_key_witnesses ~init events with
  | Error _ -> invalid_arg "size_bounds: per-key projection not linearizable"
  | Ok ws -> size_bounds_of_witnesses (with_updates ws) ~init s

let pp_set_op ppf = function
  | Add k -> Format.fprintf ppf "add(%d)" k
  | Remove k -> Format.fprintf ppf "remove(%d)" k
  | Contains k -> Format.fprintf ppf "contains(%d)" k
  | Size -> Format.fprintf ppf "size()"

let pp_set_res ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n

let pp_set_event ppf e =
  Format.fprintf ppf "t%d [%d,%d] %a -> %a" e.thread e.inv e.ret pp_set_op e.op
    pp_set_res e.result

let pp_verdict ppf = function
  | Linearizable -> Format.fprintf ppf "linearizable"
  | Violation v ->
      Format.fprintf ppf "NOT linearizable: %s@." v.reason;
      (match v.culprit with
      | Some c -> Format.fprintf ppf "  culprit: %a@." pp_set_event c
      | None -> ());
      Format.fprintf ppf "  minimal counterexample history:@.";
      List.iter
        (fun e -> Format.fprintf ppf "    %a@." pp_set_event e)
        v.witness_events

let check_set ?(init = []) events =
  let parse_events = List.filter (fun e -> key_of e.op <> None) events in
  match per_key_witnesses ~init parse_events with
  | Error k ->
      let sub = List.filter (fun e -> key_of e.op = Some k) parse_events in
      let still_fails evs =
        witness (per_key_spec ~init:(List.mem k init) ()) evs = None
      in
      let minimal = shrink ~keep:(fun _ -> false) ~still_fails sub in
      Violation
        {
          reason =
            Printf.sprintf
              "operations on key %d admit no linearization consistent with \
               their results and real-time order"
              k;
          culprit = None;
          witness_events = minimal;
        }
  | Ok witnesses -> (
      let witnesses = with_updates witnesses in
      let sizes =
        List.filter (fun e -> e.op = Size) events
        |> List.sort (fun a b -> compare a.inv b.inv)
      in
      let check_one s =
        let v = match s.result with Int v -> v | Bool _ -> -1 in
        if interval_consistent witnesses ~init s v then None
        else begin
          let lo, hi = size_bounds_of_witnesses witnesses ~init s in
          (* Interval consistency is not monotone under event removal
             (dropping an add trivially re-fails any overcount), so
             delta-debugging here would fabricate sub-histories that
             say nothing about this run.  The faithful evidence is the
             churn the traversal raced with: every successful update
             overlapping the size's interval. *)
          let overlapping =
            List.filter
              (fun e ->
                e.result = Bool true
                && (match e.op with
                   | Add _ | Remove _ -> true
                   | Contains _ | Size -> false)
                && e.inv <= s.ret && e.ret >= s.inv)
              parse_events
          in
          let minimal = s :: overlapping in
          Some
            (Violation
               {
                 reason =
                   Printf.sprintf
                     "size() returned %d, but no instant of the operation's \
                      interval admits that cardinality (pointwise bounds \
                      stay within [%d, %d])"
                     v lo hi;
                 culprit = Some s;
                 witness_events = minimal;
               })
        end
      in
      let rec first = function
        | [] -> Linearizable
        | s :: rest -> (
            match check_one s with Some v -> v | None -> first rest)
      in
      first sizes)

(* ---- queues and stacks -------------------------------------------------- *)

type queue_op = Enqueue of int | Dequeue

type queue_res = Enqueued | Dequeued of int option

let queue_spec =
  Spec
    {
      init = [];
      apply =
        (fun q op ->
          match op with
          | Enqueue v -> (q @ [ v ], Enqueued)
          | Dequeue -> (
              match q with
              | [] -> ([], Dequeued None)
              | x :: rest -> (rest, Dequeued (Some x))));
    }

type stack_op = Push of int | Pop

type stack_res = Pushed | Popped of int option

let stack_spec =
  Spec
    {
      init = [];
      apply =
        (fun s op ->
          match op with
          | Push v -> (v :: s, Pushed)
          | Pop -> (
              match s with
              | [] -> ([], Popped None)
              | x :: rest -> (rest, Popped (Some x))));
    }

let pp_queue_event ppf e =
  let pp_op ppf = function
    | Enqueue v -> Format.fprintf ppf "enqueue(%d)" v
    | Dequeue -> Format.fprintf ppf "dequeue()"
  and pp_res ppf = function
    | Enqueued -> Format.fprintf ppf "()"
    | Dequeued None -> Format.fprintf ppf "None"
    | Dequeued (Some v) -> Format.fprintf ppf "Some %d" v
  in
  Format.fprintf ppf "t%d [%d,%d] %a -> %a" e.thread e.inv e.ret pp_op e.op
    pp_res e.result

let pp_stack_event ppf e =
  let pp_op ppf = function
    | Push v -> Format.fprintf ppf "push(%d)" v
    | Pop -> Format.fprintf ppf "pop()"
  and pp_res ppf = function
    | Pushed -> Format.fprintf ppf "()"
    | Popped None -> Format.fprintf ppf "None"
    | Popped (Some v) -> Format.fprintf ppf "Some %d" v
  in
  Format.fprintf ppf "t%d [%d,%d] %a -> %a" e.thread e.inv e.ret pp_op e.op
    pp_res e.result
