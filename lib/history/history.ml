type loc = int

type action = Read of loc | Write of loc

type event = { tx : int; action : action }

type t = { events : event list; aborted : int list }

let make ?(aborted = []) events = { events; aborted }

let read tx loc = { tx; action = Read loc }
let write tx loc = { tx; action = Write loc }

let txs h =
  List.sort_uniq compare (List.map (fun e -> e.tx) h.events)

let is_committed h tx = not (List.mem tx h.aborted)

let committed h = List.filter (is_committed h) (txs h)

let events_of h tx = List.filter (fun e -> e.tx = tx) h.events

let committed_projection h =
  { events = List.filter (fun e -> is_committed h e.tx) h.events; aborted = [] }

let loc_of = function Read l -> l | Write l -> l

let conflicts e1 e2 =
  e1.tx <> e2.tx
  && loc_of e1.action = loc_of e2.action
  && (match (e1.action, e2.action) with
     | Read _, Read _ -> false
     | Read _, Write _ | Write _, Read _ | Write _, Write _ -> true)

let precedes_rt h i j =
  (* i's last event strictly before j's first event. *)
  let rec last_index idx best tx = function
    | [] -> best
    | e :: rest ->
        last_index (idx + 1) (if e.tx = tx then idx else best) tx rest
  in
  let rec first_index idx tx = function
    | [] -> -1
    | e :: rest -> if e.tx = tx then idx else first_index (idx + 1) tx rest
  in
  let li = last_index 0 (-1) i h.events in
  let fj = first_index 0 j h.events in
  li >= 0 && fj >= 0 && li < fj

let loc_name l =
  match l with
  | 0 -> "x"
  | 1 -> "y"
  | 2 -> "z"
  | 3 -> "w"
  | n -> Printf.sprintf "v%d" n

let pp_event ppf e =
  match e.action with
  | Read l -> Format.fprintf ppf "r(%s)_%d" (loc_name l) e.tx
  | Write l -> Format.fprintf ppf "w(%s)_%d" (loc_name l) e.tx

let pp ppf h =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_event)
    h.events;
  match h.aborted with
  | [] -> ()
  | ab ->
      Format.fprintf ppf " [aborted:%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        ab

let well_formed h =
  let ids = txs h in
  List.for_all (fun a -> List.mem a ids) h.aborted
