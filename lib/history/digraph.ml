(* Minimal directed-graph utilities for the correctness checkers:
   cycle detection and topological orders over transaction conflict
   graphs. *)

type t = { n : int; mutable edges : (int * int) list }

let create n = { n; edges = [] }

let add_edge g i j =
  if i <> j && not (List.mem (i, j) g.edges) then g.edges <- (i, j) :: g.edges

let successors g i =
  List.filter_map (fun (a, b) -> if a = i then Some b else None) g.edges

let has_cycle g =
  (* Colours: 0 unvisited, 1 on stack, 2 done. *)
  let colour = Array.make g.n 0 in
  let rec visit v =
    match colour.(v) with
    | 1 -> true
    | 2 -> false
    | _ ->
        colour.(v) <- 1;
        let found = List.exists visit (successors g v) in
        colour.(v) <- 2;
        found
  in
  let rec any v = v < g.n && (visit v || any (v + 1)) in
  any 0

let is_acyclic g = not (has_cycle g)

(* All topological orders, for the brute-force cross-validation path;
   exponential, for small graphs only. *)
let topological_orders g =
  let rec extend placed remaining acc =
    if remaining = [] then List.rev placed :: acc
    else
      List.fold_left
        (fun acc v ->
          let ready =
            List.for_all
              (fun (a, b) -> b <> v || List.mem a placed || not (List.mem a remaining))
              g.edges
          in
          if ready then
            extend (v :: placed) (List.filter (( <> ) v) remaining) acc
          else acc)
        acc remaining
  in
  extend [] (List.init g.n Fun.id) []

(* Graphviz rendering, used by `tmcheck dot` to visualise conflict
   graphs; [names] maps node indices to labels. *)
let to_dot ?(names = fun i -> Printf.sprintf "n%d" i) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph conflicts {\n  rankdir=LR;\n";
  for i = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d [label=%S];\n" i (names i))
  done;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" a b))
    (List.rev g.edges);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
