(* Build the history in which aborted transactions are replaced by
   their read projection: their writes never took effect, but their
   reads must still be explainable by a serial order (that is what
   distinguishes opacity from mere serializability of the committed
   projection). *)
let observable_history h =
  let events =
    List.filter
      (fun e ->
        History.is_committed h e.History.tx
        ||
        match e.History.action with
        | History.Read _ -> true
        | History.Write _ -> false)
      h.History.events
  in
  History.make events

let rt_edges h =
  let ids = History.txs h in
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j ->
          if i <> j && History.precedes_rt h i j then Some (i, j) else None)
        ids)
    ids

let strict_serialization_graph h =
  let oh = observable_history h in
  Serializability.conflict_graph ~extra_edges:(rt_edges oh) oh

let accepts h =
  let g, _ = strict_serialization_graph h in
  Digraph.is_acyclic g

(* Independent check: explicitly enumerate serial orders of the
   transactions and verify each conflict pair and each real-time pair
   directly against the history, without the graph machinery. *)
let accepts_brute_force h =
  let oh = observable_history h in
  let ids = History.txs oh in
  let events = Array.of_list oh.History.events in
  let n = Array.length events in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x ->
            List.map
              (fun perm -> x :: perm)
              (permutations (List.filter (( <> ) x) xs)))
          xs
  in
  let witness perm =
    let pos tx =
      let rec find i = function
        | [] -> invalid_arg "perm"
        | t :: rest -> if t = tx then i else find (i + 1) rest
      in
      find 0 perm
    in
    let conflicts_ok = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if History.conflicts events.(i) events.(j) then
          if pos events.(i).History.tx > pos events.(j).History.tx then
            conflicts_ok := false
      done
    done;
    !conflicts_ok
    && List.for_all
         (fun i ->
           List.for_all
             (fun j ->
               i = j
               || (not (History.precedes_rt oh i j))
               || pos i < pos j)
             ids)
         ids
  in
  List.exists witness (permutations ids)
