let conflict_graph ?(extra_edges = []) h =
  let hc = History.committed_projection h in
  let ids = Array.of_list (History.txs hc) in
  let node_of tx =
    let rec find i = if ids.(i) = tx then i else find (i + 1) in
    find 0
  in
  let g = Digraph.create (Array.length ids) in
  (* Edge i -> j for every pair of conflicting events with i's first. *)
  let rec pairs = function
    | [] -> ()
    | e :: rest ->
        List.iter
          (fun e' ->
            if History.conflicts e e' then
              Digraph.add_edge g (node_of e.History.tx) (node_of e'.History.tx))
          rest;
        pairs rest
  in
  pairs hc.History.events;
  List.iter
    (fun (i, j) ->
      if Array.exists (( = ) i) ids && Array.exists (( = ) j) ids then
        Digraph.add_edge g (node_of i) (node_of j))
    extra_edges;
  (g, ids)

let accepts h =
  let g, _ = conflict_graph h in
  Digraph.is_acyclic g

(* Explicit search for a witness serial order: for each permutation of
   the committed transactions, check that every conflicting event pair
   appears in the order of its transactions. *)
let accepts_brute_force h =
  let hc = History.committed_projection h in
  let ids = History.txs hc in
  let events = Array.of_list hc.History.events in
  let n = Array.length events in
  let order_ok perm =
    let pos tx =
      let rec find i = function
        | [] -> invalid_arg "perm"
        | t :: rest -> if t = tx then i else find (i + 1) rest
      in
      find 0 perm
    in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if History.conflicts events.(i) events.(j) then
          if pos events.(i).History.tx > pos events.(j).History.tx then
            ok := false
      done
    done;
    !ok
  in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x ->
            List.map
              (fun perm -> x :: perm)
              (permutations (List.filter (( <> ) x) xs)))
          xs
  in
  List.exists order_ok (permutations ids)
