(** Conflict serializability of transactional histories.

    A history is (conflict-)serializable when the committed
    transactions can be totally ordered such that every pair of
    conflicting events executes in the order of their transactions
    (Papadimitriou 1979 — reference [2] of the paper).  Equivalently,
    the conflict graph is acyclic.  Unlike {!Opacity}, plain
    serializability ignores real-time precedence: a transaction may be
    serialized before another one that finished earlier. *)

val conflict_graph :
  ?extra_edges:(int * int) list -> History.t -> Digraph.t * int array
(** Conflict graph of the committed projection.  Nodes are committed
    transactions; the returned array maps node index to transaction id.
    [extra_edges] (pairs of transaction ids) lets callers add
    real-time or program-order constraints. *)

val accepts : History.t -> bool
(** Polynomial check: conflict-graph acyclicity. *)

val accepts_brute_force : History.t -> bool
(** Exponential cross-validation: search for an explicit serial order
    of the committed transactions preserving all conflict orders.
    Agrees with {!accepts} on every history (tested by property). *)
