let loc_of = function History.Read l -> l | History.Write l -> l

(* Global indices of transaction [t]'s events in [h]. *)
let indexed_events h t =
  List.filteri (fun _ _ -> true) h.History.events
  |> List.mapi (fun i e -> (i, e))
  |> List.filter (fun (_, e) -> e.History.tx = t)

let cut_consistent h t cuts =
  let tev = Array.of_list (indexed_events h t) in
  let m = Array.length tev in
  let all_events = Array.of_list h.History.events in
  let valid_positions = List.for_all (fun c -> c >= 1 && c < m) cuts in
  if not valid_positions then false
  else begin
    (* Writes-last: every cut point is at or before the first write. *)
    let first_write =
      let rec find i =
        if i >= m then m
        else
          match (snd tev.(i)).History.action with
          | History.Write _ -> i
          | History.Read _ -> find (i + 1)
      in
      find 0
    in
    List.for_all (fun c -> c <= first_write) cuts
    && List.for_all
         (fun c ->
           let gp, ep = tev.(c - 1) and gq, eq = tev.(c) in
           let a = loc_of ep.History.action
           and b = loc_of eq.History.action in
           let written_between = ref [] in
           for i = gp + 1 to gq - 1 do
             let e = all_events.(i) in
             if e.History.tx <> t then
               match e.History.action with
               | History.Write l ->
                   if not (List.mem l !written_between) then
                     written_between := l :: !written_between
               | History.Read _ -> ()
           done;
           let w = !written_between in
           if a = b then not (List.mem a w)
           else not (List.mem a w && List.mem b w))
         cuts
  end

let apply_cut h t cuts ~fresh =
  let cuts = List.sort_uniq compare cuts in
  let piece_of k =
    List.length (List.filter (fun c -> c <= k) cuts)
  in
  let counter = ref (-1) in
  let events =
    List.map
      (fun e ->
        if e.History.tx <> t then e
        else begin
          incr counter;
          { e with History.tx = fresh + piece_of !counter }
        end)
      h.History.events
  in
  let npieces = List.length cuts + 1 in
  (History.make ~aborted:h.History.aborted events,
   List.init npieces (fun i -> fresh + i))

let consistent_cuts h t =
  let m = List.length (indexed_events h t) in
  let positions = List.init (max 0 (m - 1)) (fun i -> i + 1) in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun sub -> x :: sub) s
  in
  List.filter (cut_consistent h t) (subsets positions)

let accepts ~elastic h =
  let fresh0 =
    1 + List.fold_left max 0 (History.txs h)
  in
  (* Try every combination of consistent cuts across the elastic
     transactions; opacity of any transformed history accepts H. *)
  let rec try_txs h fresh = function
    | [] -> Opacity.accepts h
    | t :: rest ->
        List.exists
          (fun cuts ->
            let h', pieces = apply_cut h t cuts ~fresh in
            try_txs h' (fresh + List.length pieces) rest)
          (consistent_cuts h t)
  in
  try_txs h fresh0 elastic
