(** Static transactional programs and exhaustive schedule enumeration.

    Section 3.2 of the paper quantifies the expressiveness loss of
    classic transactions by counting, over all interleavings of small
    transactional programs, how many schedules each correctness
    criterion accepts.  This module enumerates the interleavings and
    produces the paper's Figure 4 numbers. *)

type semantics = Classic | Elastic

type t = {
  id : int;  (** transaction identifier *)
  semantics : semantics;
  accesses : History.action list;  (** program order of accesses *)
}

val classic : int -> History.action list -> t
val elastic : int -> History.action list -> t

val interleavings : t list -> History.t list
(** All interleavings of the programs' accesses that respect each
    program's order; every transaction is committed.  The count is the
    multinomial coefficient of the access counts. *)

type acceptance = {
  total : int;
  serializable : int;
  opaque : int;
  elastic_opaque : int;
}

val count_accepted : t list -> acceptance
(** Run the three checkers over every interleaving.  The elastic
    criterion cuts exactly the transactions declared [Elastic]. *)

(** {1 The paper's Figure 4 instance} *)

val fig4_programs : t list
(** [Pt = tx{r(x) r(y) r(z)}], [P1 = tx{w(x)}], [P2 = tx{w(z)}] — all
    classic. *)

type fig4_result = {
  schedules : int;  (** 20, as in the paper *)
  accepted_by_opacity : int;  (** measured: 17 *)
  precluded : int;  (** measured: 3 — see note below *)
  precluded_ratio : float;  (** measured: 0.15 *)
}

val fig4 : unit -> fig4_result
(** {b Note on the paper's count.}  The paper reports 4 precluded
    schedules (20%).  Its own preclusion rule — [Pt ≺ P1] (Pt reads x
    before P1 writes it), [P1 ≺ P2] (P1 terminates before P2 starts)
    and [P2 ≺ Pt] (P2 writes z before Pt reads it) — is satisfied by
    exactly 3 of the 20 interleavings: [w(x)] must fall in one of the
    two gaps inside [Pt] and [w(z)] after it yet before [r(z)], giving
    the placements (gap A, gap A), (gap A, gap B) and (gap B, gap B).
    Both the polynomial checker and the independent brute-force checker
    agree.  We therefore report 3/20 = 15% and record the discrepancy
    in EXPERIMENTS.md; the phenomenon the figure illustrates — opacity
    precluding schedules that are perfectly correct for the linked
    list — reproduces either way. *)
