(** Histories of transactional shared-memory accesses.

    This is the formal model of Sections 3.1–3.2 of the paper: a
    history is a totally ordered sequence of read/write events, each
    belonging to a transaction; correctness criteria (serializability,
    opacity, elastic-opacity) are predicates over histories, defined in
    the sibling modules {!Serializability}, {!Opacity} and {!Elastic}.

    Locations are small integers; {!loc_name} prints the conventional
    names x, y, z, … used in the paper's examples. *)

type loc = int

type action = Read of loc | Write of loc

type event = { tx : int; action : action }

type t = {
  events : event list;  (** the global total order, earliest first *)
  aborted : int list;  (** transactions that aborted; others committed *)
}

val make : ?aborted:int list -> event list -> t

val read : int -> loc -> event
(** [read tx loc] is the event [r(loc)] of transaction [tx]. *)

val write : int -> loc -> event

val txs : t -> int list
(** Transaction identifiers appearing in the history, ascending. *)

val committed : t -> int list

val is_committed : t -> int -> bool

val events_of : t -> int -> event list
(** The subsequence of events belonging to one transaction. *)

val committed_projection : t -> t
(** The history restricted to committed transactions. *)

val conflicts : event -> event -> bool
(** Two events conflict when they target the same location, belong to
    different transactions, and at least one is a write. *)

val precedes_rt : t -> int -> int -> bool
(** [precedes_rt h i j] holds when transaction [i]'s last event occurs
    before transaction [j]'s first event — the real-time order. *)

val loc_name : loc -> string
(** 0,1,2,3… ↦ "x","y","z","w", then "v4","v5",… *)

val pp_event : Format.formatter -> event -> unit
(** e.g. [r(x)_1] or [w(z)_2]. *)

val pp : Format.formatter -> t -> unit

val well_formed : t -> bool
(** No transaction's events are interleaved with … nothing to check on
    the total order itself; verifies that aborted ids actually appear
    and that the events list is non-empty per declared transaction. *)
