(** Value-carrying histories and view serializability.

    The conflict-based checkers ({!Serializability}, {!Opacity}) are
    sufficient but not necessary: opacity as defined by Guerraoui &
    Kapalka (reference [3]) is about the {e values} transactions
    observe.  This module carries values on every event and decides
    {e (strict) view serializability} by explicit search: is there a
    serial order of the transactions — extending real-time order in
    the strict case — under which every read returns the value the
    replayed memory holds?

    Restricted to histories whose transactions all commit (the regime
    of the paper's examples); exponential in the number of
    transactions, meant for small instances and cross-validation
    against the polynomial conflict checkers.  The canonical
    separation witness [w1(x) r2(x)]-style blind-write histories that
    are view- but not conflict-serializable are exercised in the test
    suite. *)

type action = Read of History.loc * int | Write of History.loc * int

type event = { tx : int; action : action }

type t = { events : event list }

val make : event list -> t

val annotate : History.t -> t
(** Natural annotation of an unvalued committed history: the [i]-th
    write carries value [i + 1], and each read observes the last write
    to its location before it (0 if none) — i.e. values as an
    immediate-write (database-style) execution of the event sequence
    would produce them. *)

val view_serializable : ?strict:bool -> t -> bool
(** Is there a serial order of the transactions (extending the
    real-time precedence of the original when [strict], the default)
    that is {e value-legal}: replaying the transactions in that order,
    one at a time, every read returns its recorded value (a
    transaction's own earlier write shadows memory)?  Initial memory
    is all zeroes. *)

val txs : t -> int list
val pp : Format.formatter -> t -> unit
