type action = Read of History.loc * int | Write of History.loc * int

type event = { tx : int; action : action }

type t = { events : event list }

let make events = { events }

let txs h =
  List.sort_uniq compare (List.map (fun e -> e.tx) h.events)

(* Database-style natural annotation: writes take effect immediately in
   the order of the history; each read sees the current value. *)
let annotate (h : History.t) =
  let mem = Hashtbl.create 8 in
  let counter = ref 0 in
  let events =
    List.map
      (fun (e : History.event) ->
        match e.History.action with
        | History.Read l ->
            let v = Option.value ~default:0 (Hashtbl.find_opt mem l) in
            { tx = e.History.tx; action = Read (l, v) }
        | History.Write l ->
            incr counter;
            Hashtbl.replace mem l !counter;
            { tx = e.History.tx; action = Write (l, !counter) })
      h.History.events
  in
  { events }

(* Real-time precedence on the valued history: i's last event before
   j's first. *)
let precedes_rt h i j =
  let index_of pred =
    let rec go k last = function
      | [] -> last
      | e :: rest -> go (k + 1) (if pred e then Some k else last) rest
    in
    go 0 None
  in
  let last_i = index_of (fun e -> e.tx = i) h.events in
  let first_j =
    let rec go k = function
      | [] -> None
      | e :: rest -> if e.tx = j then Some k else go (k + 1) rest
    in
    go 0 h.events
  in
  match (last_i, first_j) with Some a, Some b -> a < b | _ -> false

(* Replay the transactions of [h] serially in [order]: every read must
   return its recorded value, with a transaction's own writes applied
   to memory as it goes (transactions are committed, so immediate
   application within the serial replay is faithful). *)
let legal_in_order h order =
  let mem = Hashtbl.create 8 in
  List.for_all
    (fun t ->
      List.for_all
        (fun e ->
          if e.tx <> t then true
          else
            match e.action with
            | Read (l, v) ->
                Option.value ~default:0 (Hashtbl.find_opt mem l) = v
            | Write (l, v) ->
                Hashtbl.replace mem l v;
                true)
        h.events)
    order

let view_serializable ?(strict = true) h =
  let ids = txs h in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x ->
            List.map
              (fun perm -> x :: perm)
              (permutations (List.filter (( <> ) x) xs)))
          xs
  in
  let respects_rt order =
    (not strict)
    ||
    let pos t =
      let rec go k = function
        | [] -> -1
        | x :: rest -> if x = t then k else go (k + 1) rest
      in
      go 0 order
    in
    List.for_all
      (fun i ->
        List.for_all
          (fun j -> i = j || (not (precedes_rt h i j)) || pos i < pos j)
          ids)
      ids
  in
  List.exists
    (fun order -> respects_rt order && legal_in_order h order)
    (permutations ids)

let pp ppf h =
  let pp_event ppf e =
    match e.action with
    | Read (l, v) ->
        Format.fprintf ppf "r(%s=%d)_%d" (History.loc_name l) v e.tx
    | Write (l, v) ->
        Format.fprintf ppf "w(%s:=%d)_%d" (History.loc_name l) v e.tx
  in
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_event)
    h.events
