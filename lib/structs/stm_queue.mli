(** Transactional FIFO queue (two-list functional queue in two
    transactional variables).

    Producers touch only [back] and consumers usually only [front], so
    they rarely conflict.  The [_tx] variants run inside a caller's
    transaction, which is how {!transfer_all} moves a whole queue
    atomically and how the composition tests move elements between a
    queue and a set in one step. *)

open Polytm

module Make (S : Stm_intf.S) : sig
  type 'a t

  val create : S.t -> 'a t

  val enqueue : 'a t -> 'a -> unit
  val dequeue_opt : 'a t -> 'a option

  val take : 'a t -> 'a
  (** Blocking dequeue: if the queue is empty, {!Stm_intf.S.retry} parks
      the calling thread until a producer's commit makes an element
      available, then dequeues it — no polling.  Bound the wait by
      running {!take_tx} under [atomically ~deadline] (or
      [try_atomically]) instead.
      @raise Stm_intf.Invalid_operation under a snapshot transaction or
        while holding the serial token (see {!Stm_intf.S.retry}). *)

  val dequeue_or : 'a t -> 'a -> 'a
  (** [dequeue_or t fallback] dequeues, or returns [fallback] atomically
      with the emptiness observation (built on {!Stm_intf.S.orelse}). *)

  val enqueue_tx : S.tx -> 'a t -> 'a -> unit
  (** In-transaction enqueue, for composing with other operations. *)

  val dequeue_opt_tx : S.tx -> 'a t -> 'a option

  val take_tx : S.tx -> 'a t -> 'a
  (** In-transaction blocking dequeue ({!Stm_intf.S.retry} on empty),
      for composing — e.g. take from one queue and enqueue to another,
      sleeping until the source is non-empty. *)

  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val to_list : 'a t -> 'a list
  (** Front to back. *)

  val transfer_all : src:'a t -> dst:'a t -> unit
  (** Atomically move every element of [src] to the back of [dst],
      preserving order — cross-structure composition in one commit. *)
end
