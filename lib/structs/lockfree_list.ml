(** Lock-free sorted linked list with logical deletion (Harris,
    DISC 2001 / Michael, SPAA 2002 — references [36] and [28] of the
    paper).

    The deletion mark lives in the same atomic cell as the next
    pointer, so marking and traversal serialise through single CAS
    operations; searches physically unlink marked nodes as they pass.
    OCaml's GC stands in for the hazard-pointer reclamation scheme the
    C versions need — the “memory management would not even be
    guaranteed to be simple” problem of Section 2.1 dissolves here.

    [size] is a non-atomic traversal count (the very limitation that
    motivates the paper's snapshot semantics). *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  type node = Tail | Node of cell
  and cell = { value : int; link : link R.atomic }
  and link = { succ : node; marked : bool }

  type t = { head : cell }

  let create () =
    { head = { value = min_int; link = R.atomic { succ = Tail; marked = false } } }

  (* Find (pred, witnessed pred link, curr) such that pred.value < v,
     curr is the first unmarked node with value >= v, and the witness
     satisfies [witness.succ == curr] for CAS-based updates.  Marked
     nodes encountered on the way are unlinked. *)
  let rec search t v =
    let rec advance pred plink =
      match plink.succ with
      | Tail -> (pred, plink, Tail)
      | Node c ->
          let clink = R.get c.link in
          if clink.marked then begin
            (* Physically remove the logically deleted node. *)
            let replacement = { succ = clink.succ; marked = false } in
            if R.cas pred.link plink replacement then advance pred replacement
            else search t v
          end
          else if c.value < v then advance c clink
          else (pred, plink, Node c)
    in
    let plink = R.get t.head.link in
    if plink.marked then search t v else advance t.head plink

  let contains t v =
    match search t v with
    | _, _, Node c -> c.value = v
    | _, _, Tail -> false

  let rec add t v =
    let pred, plink, curr = search t v in
    match curr with
    | Node c when c.value = v -> false
    | _ ->
        let cell = { value = v; link = R.atomic { succ = curr; marked = false } } in
        if R.cas pred.link plink { succ = Node cell; marked = false } then true
        else add t v

  let rec remove t v =
    match search t v with
    | _, _, Tail -> false
    | _, _, Node c when c.value <> v -> false
    | pred, plink, Node c ->
        let clink = R.get c.link in
        if clink.marked then remove t v
        else if R.cas c.link clink { clink with marked = true } then begin
          (* Best-effort physical unlink; a later search finishes the
             job if this CAS loses a race. *)
          ignore (R.cas pred.link plink { succ = clink.succ; marked = false });
          true
        end
        else remove t v

  let size t =
    let rec go n node =
      match node with
      | Tail -> n
      | Node c ->
          let l = R.get c.link in
          go (if l.marked then n else n + 1) l.succ
    in
    go 0 (R.get t.head.link).succ

  let to_list t =
    let rec go acc node =
      match node with
      | Tail -> List.rev acc
      | Node c ->
          let l = R.get c.link in
          go (if l.marked then acc else c.value :: acc) l.succ
    in
    go [] (R.get t.head.link).succ
end
