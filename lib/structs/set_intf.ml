(** Uniform integer-set interface implemented by every collection in
    this library — the STM-backed structures and all the baselines —
    so that the correctness tests and the benchmark harness treat them
    interchangeably.

    [size] is atomic for the STM structures and the copy-on-write set;
    for the fine-grained lock-based and lock-free lists it is only a
    traversal count, which is precisely the limitation of
    [java.util.concurrent] that Section 3.3 of the paper works around
    with [copyOnWriteArraySet]. *)

module type SET = sig
  type t

  val add : t -> int -> bool
  (** [add s v] inserts [v]; returns [false] if already present. *)

  val remove : t -> int -> bool
  (** [remove s v] deletes [v]; returns [false] if absent. *)

  val contains : t -> int -> bool

  val size : t -> int

  val to_list : t -> int list
  (** Ascending elements.  Only meaningful at quiescence for the
      non-atomic baselines. *)
end
