(** Unsynchronised sorted linked-list set: the sequential baseline all
    throughput figures normalise against (the paper's y-axes are
    "throughput normalised over the sequential one").

    Links go through runtime atomics so that traversal pays the same
    one-tick-per-hop memory cost as everything else under the
    simulator, but there is no synchronisation of any kind: only for
    single-threaded use. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  type node = Nil | Node of { value : int; next : node R.atomic }

  type t = { head : node R.atomic }

  let create () = { head = R.atomic Nil }

  let find t v =
    let rec go ptr =
      match R.get ptr with
      | Nil -> ptr
      | Node { value; next } -> if value < v then go next else ptr
    in
    go t.head

  let add t v =
    let ptr = find t v in
    match R.get ptr with
    | Node { value; _ } when value = v -> false
    | cur ->
        R.set ptr (Node { value = v; next = R.atomic cur });
        true

  let remove t v =
    let ptr = find t v in
    match R.get ptr with
    | Node { value; next } when value = v ->
        R.set ptr (R.get next);
        true
    | Node _ | Nil -> false

  let contains t v =
    match R.get (find t v) with
    | Node { value; _ } -> value = v
    | Nil -> false

  let size t =
    let rec go n ptr =
      match R.get ptr with Nil -> n | Node { next; _ } -> go (n + 1) next
    in
    go 0 t.head

  let to_list t =
    let rec go acc ptr =
      match R.get ptr with
      | Nil -> List.rev acc
      | Node { value; next } -> go (value :: acc) next
    in
    go [] t.head
end
