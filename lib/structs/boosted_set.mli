(** Transactional boosting (Herlihy & Koskinen, PPoPP 2008 — reference
    [39], surveyed in Section 4.1 of the paper).

    Operations execute {e eagerly} on a non-transactional hash
    structure under per-bucket {e abstract locks} held to transaction
    end; every mutation registers an {e inverse} compensation run on
    abort.  High-level operations conflict iff they do not commute —
    here, iff their keys share a bucket ({!Make.bucket_index}) — so
    boosted operations inside a long transaction never false-conflict
    the way classic parses do.

    The paper's caveats are deliberate parts of the interface: the
    programmer supplies the commutativity granularity and the inverses,
    and a busy abstract lock aborts the whole enclosing transaction.
    All operations must run inside a transaction and may be combined
    freely with tvar accesses of any semantics. *)

open Polytm

module Make
    (R : Polytm_runtime.Runtime_intf.RUNTIME)
    (S : Stm_intf.S) : sig
  type t

  val create : ?buckets:int -> unit -> t
  (** [buckets] must be a power of two (default 16). *)

  val bucket_index : t -> int -> int
  (** Which abstract lock a key maps to: operations commute iff their
      indices differ. *)

  val add : S.tx -> t -> int -> bool
  val remove : S.tx -> t -> int -> bool
  val contains : S.tx -> t -> int -> bool

  val size : S.tx -> t -> int
  (** Locks every bucket (ascending), so it is atomic — and conflicts
      with everything, like the paper's aggregate operations. *)

  val to_list : t -> int list
  (** Quiescent inspection only. *)
end
