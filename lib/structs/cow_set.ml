(** Copy-on-write array set — the stand-in for the existing concurrent
    collection the paper compares against.

    Section 3.3: “As the existing lock-free data structures do not
    support atomic size we had to use the copyOnWriteArraySet
    workaround of this package as recommended for circumventing this
    limitation.”  Like Java's [CopyOnWriteArraySet]:

    - [contains] is lock-free: it reads the current immutable array
      snapshot and scans it linearly;
    - [add]/[remove] serialise on a writer lock and copy the whole
      array;
    - [size] is O(1) and atomic: the length of the snapshot.

    Cost model: the simulator's tick is one dependent cache-missing
    access (a list-node hop).  Java's [CopyOnWriteArraySet] stores
    {e boxed} elements, so a membership scan dereferences a pointer per
    element (one tick each) and — the array being unsorted — absent
    keys scan the whole array with no early exit.  The
    [System.arraycopy] of an update, by contrast, streams the pointer
    array itself and is charged 1/8 tick per element.  Updates
    serialise on the writer lock; reads never block. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  module Lock = Polytm_runtime.Spinlock.Make (R)

  type t = { snapshot : int array R.atomic; lock : Lock.t }

  let create () = { snapshot = R.atomic [||]; lock = Lock.create () }

  (* Linear membership scan over an immutable snapshot, charging the
     cost model one tick per element looked at. *)
  let scan arr v =
    let n = Array.length arr in
    let rec go i = if i >= n then -1 else if arr.(i) = v then i else go (i + 1) in
    let i = go 0 in
    let scanned = if i < 0 then n else i + 1 in
    R.pause scanned;
    i

  let contains t v = scan (R.get t.snapshot) v >= 0

  let add t v =
    Lock.with_lock t.lock (fun () ->
        let arr = R.get t.snapshot in
        if scan arr v >= 0 then false
        else begin
          let n = Array.length arr in
          let arr' = Array.make (n + 1) v in
          Array.blit arr 0 arr' 0 n;
          R.pause (max 1 (n / 8));
          R.set t.snapshot arr';
          true
        end)

  let remove t v =
    Lock.with_lock t.lock (fun () ->
        let arr = R.get t.snapshot in
        let i = scan arr v in
        if i < 0 then false
        else begin
          let n = Array.length arr in
          let arr' = Array.make (n - 1) 0 in
          Array.blit arr 0 arr' 0 i;
          Array.blit arr (i + 1) arr' i (n - 1 - i);
          R.pause (max 1 (n / 8));
          R.set t.snapshot arr';
          true
        end)

  let size t = Array.length (R.get t.snapshot)

  let to_list t =
    List.sort compare (Array.to_list (R.get t.snapshot))
end
