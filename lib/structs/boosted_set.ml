(** Transactional boosting (Herlihy & Koskinen, PPoPP 2008 — reference
    [39] of the paper, discussed in Section 4.1).

    A boosted integer set: operations execute {e eagerly} on an
    underlying non-transactional hash structure, guarded by per-bucket
    {e abstract locks} held until the enclosing transaction finishes;
    each mutation registers its {e inverse} to compensate on abort.
    Two high-level operations conflict iff they do not commute — here,
    iff they touch the same bucket — so a long transaction performing
    boosted operations never false-conflicts with STM reads the way a
    classic parse does.

    The section 4.1 caveats are visible right in the interface: the
    programmer must supply commutativity (the bucket granularity) and
    inverses, and the paper's point that such models "lost the
    appealing aspects of transactions" is what the mixed-semantics
    proposal answers.  Boosted operations must run inside a
    transaction ([S.tx]) and may be freely combined with tvar accesses
    of any semantics. *)

open Polytm

module Make
    (R : Polytm_runtime.Runtime_intf.RUNTIME)
    (S : Stm_intf.S) =
struct
  type t = {
    buckets : int list R.atomic array;  (** sorted member lists *)
    locks : int R.atomic array;  (** 0 = free, otherwise owner serial + 1 *)
  }

  let create ?(buckets = 16) () =
    {
      buckets = Array.init buckets (fun _ -> R.atomic []);
      locks = Array.init buckets (fun _ -> R.atomic 0);
    }

  let bucket_of t v =
    let h = v * 0x9E3779B1 in
    (h lxor (h lsr 16)) land (Array.length t.buckets - 1)

  (* Exposed so callers can reason about which operations commute:
     operations conflict iff their keys share a bucket index. *)
  let bucket_index = bucket_of

  (* Acquire the abstract lock for [idx] on behalf of [tx]: idempotent
     when already held; registers the release as a cleanup.  A busy
     lock aborts the transaction (two-phase locking with abort-based
     deadlock avoidance, as open nesting requires care with — the
     abort/retry loop takes the place of a lock ordering). *)
  let acquire tx t idx =
    let me = S.serial tx + 1 in
    let lock = t.locks.(idx) in
    let current = R.get lock in
    if current = me then ()
    else if current = 0 && R.cas lock 0 me then
      S.on_cleanup tx (fun () -> R.set lock 0)
    else S.abort tx

  let add tx t v =
    let idx = bucket_of t v in
    acquire tx t idx;
    let b = t.buckets.(idx) in
    let members = R.get b in
    if List.mem v members then false
    else begin
      R.set b (List.sort compare (v :: members));
      (* Inverse: take [v] back out if the transaction aborts. *)
      S.on_abort tx (fun () ->
          R.set b (List.filter (fun x -> x <> v) (R.get b)));
      true
    end

  let remove tx t v =
    let idx = bucket_of t v in
    acquire tx t idx;
    let b = t.buckets.(idx) in
    let members = R.get b in
    if not (List.mem v members) then false
    else begin
      R.set b (List.filter (fun x -> x <> v) members);
      S.on_abort tx (fun () -> R.set b (List.sort compare (v :: R.get b)));
      true
    end

  let contains tx t v =
    let idx = bucket_of t v in
    acquire tx t idx;
    List.mem v (R.get t.buckets.(idx))

  (* Whole-set size: locks every bucket (in index order, which is
     consistent across transactions, though abort-retry would recover
     from any order). *)
  let size tx t =
    Array.iteri (fun idx _ -> acquire tx t idx) t.buckets;
    Array.fold_left (fun acc b -> acc + List.length (R.get b)) 0 t.buckets

  (* Quiescent inspection. *)
  let to_list t =
    List.sort compare
      (Array.fold_left (fun acc b -> R.get b @ acc) [] t.buckets)
end
