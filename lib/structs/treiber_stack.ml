(** Treiber's lock-free stack (IBM technical report, 1986): the
    classic CAS-retry structure, as a baseline companion to the STM
    stack.  Like every lock-free design in Section 2.1's discussion,
    the OCaml GC stands in for the safe-memory-reclamation machinery a
    C implementation would need.

    [length] is a plain traversal of an immutable snapshot of the
    head, so it IS atomic here — stacks are the easy case; the paper's
    atomic-[size] problem bites structures whose snapshot cannot be
    captured in one pointer. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  type 'a node = Nil | Cons of 'a * 'a node

  type 'a t = { head : 'a node R.atomic }

  let create () = { head = R.atomic Nil }

  let rec push t x =
    let current = R.get t.head in
    if not (R.cas t.head current (Cons (x, current))) then push t x

  let rec pop t =
    match R.get t.head with
    | Nil -> None
    | Cons (x, rest) as current ->
        if R.cas t.head current rest then Some x else pop t

  let peek t = match R.get t.head with Nil -> None | Cons (x, _) -> Some x

  let length t =
    let rec go n = function Nil -> n | Cons (_, rest) -> go (n + 1) rest in
    go 0 (R.get t.head)

  let to_list t =
    let rec go acc = function
      | Nil -> List.rev acc
      | Cons (x, rest) -> go (x :: acc) rest
    in
    go [] (R.get t.head)
end
