(** Coarse-grained locking baseline: the sequential list behind one
    spinlock.  Trivially correct and atomic (including [size]),
    trivially non-scalable. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) : sig
  type t

  val create : unit -> t
  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool
  val size : t -> int
  val to_list : t -> int list
end
