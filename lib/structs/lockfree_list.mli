(** Lock-free sorted linked list with logical deletion (Harris
    DISC 2001 / Michael SPAA 2002 — references [36] and [28]).

    The deletion mark shares an atomic cell with the next pointer;
    searches unlink marked nodes as they pass.  [size] and [to_list]
    are plain traversals — {e not} atomic snapshots, which is precisely
    the limitation that motivates the paper's snapshot semantics. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) : sig
  type t

  val create : unit -> t
  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool

  val size : t -> int
  (** Traversal count; only meaningful at quiescence. *)

  val to_list : t -> int list
end
