(** Lazy synchronisation sorted list (Heller, Herlihy, Luchangco, Moir,
    Scherer & Shavit, OPODIS 2005 — reference [29] of the paper).

    [contains] is wait-free: a plain traversal plus a check of the
    logical-deletion mark.  Updates lock just the two affected nodes
    and re-validate after locking (the “additional validation phase”
    Section 2.1 mentions as the price of lock-based fine-grained
    designs).  [size] is a non-atomic traversal count.

    The list runs between two sentinels; the tail sentinel has value
    [max_int] and no successor. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  module Lock = Polytm_runtime.Spinlock.Make (R)

  type node = {
    value : int;
    lock : Lock.t;
    marked : bool R.atomic;
    next : node option R.atomic;  (** [None] only in the tail sentinel *)
  }

  type t = { head : node }

  let make_node value next =
    { value; lock = Lock.create (); marked = R.atomic false; next = R.atomic next }

  let create () =
    let tail = make_node max_int None in
    { head = make_node min_int (Some tail) }

  (* Unsynchronised walk to (pred, curr) with pred.value < v <= curr.value;
     curr may be the tail sentinel. *)
  let locate t v =
    let rec go pred =
      match R.get pred.next with
      | None -> invalid_arg "Lazy_list: walked past the tail sentinel"
      | Some curr -> if curr.value < v then go curr else (pred, curr)
    in
    go t.head

  let validate pred curr =
    (not (R.get pred.marked))
    && (not (R.get curr.marked))
    && (match R.get pred.next with Some n -> n == curr | None -> false)

  let contains t v =
    let _, curr = locate t v in
    curr.value = v && not (R.get curr.marked)

  let rec add t v =
    let pred, curr = locate t v in
    Lock.lock pred.lock;
    Lock.lock curr.lock;
    if validate pred curr then begin
      let result =
        if curr.value = v then false
        else begin
          R.set pred.next (Some (make_node v (Some curr)));
          true
        end
      in
      Lock.unlock curr.lock;
      Lock.unlock pred.lock;
      result
    end
    else begin
      Lock.unlock curr.lock;
      Lock.unlock pred.lock;
      add t v
    end

  let rec remove t v =
    let pred, curr = locate t v in
    Lock.lock pred.lock;
    Lock.lock curr.lock;
    if validate pred curr then begin
      let result =
        if curr.value <> v then false
        else begin
          (* Logical deletion first, then physical unlink. *)
          R.set curr.marked true;
          R.set pred.next (R.get curr.next);
          true
        end
      in
      Lock.unlock curr.lock;
      Lock.unlock pred.lock;
      result
    end
    else begin
      Lock.unlock curr.lock;
      Lock.unlock pred.lock;
      remove t v
    end

  let fold t f init =
    let rec go acc node =
      if node.value = max_int then acc
      else
        let acc = if R.get node.marked then acc else f acc node.value in
        match R.get node.next with
        | None -> acc
        | Some next -> go acc next
    in
    match R.get t.head.next with None -> init | Some first -> go init first

  let size t = fold t (fun n _ -> n + 1) 0
  let to_list t = List.rev (fold t (fun acc v -> v :: acc) [])
end
