(** First-class adapters: every set implementation behind one record of
    closures, so the correctness tests and the benchmark harness can
    sweep over implementations uniformly.

    [Make (R)] instantiates the whole zoo — the STM structures over an
    [Stm.Make (R)] instance and all baselines — for one runtime. *)

open Polytm
module Lin = Polytm_history.Linearizability

type set = {
  name : string;
  add : int -> bool;
  remove : int -> bool;
  contains : int -> bool;
  size : unit -> int;
  to_list : unit -> int list;
}

(** Queue and stack counterparts of {!set}, for the conformance
    harness's FIFO/LIFO workloads. *)
type queue = { q_name : string; enq : int -> unit; deq : unit -> int option }

type stack = { s_name : string; push : int -> unit; pop : unit -> int option }

(** Per-operation semantics assignment for the STM structures: the
    three configurations of the paper's evaluation. *)
type profile = {
  profile_name : string;
  parse_sem : Semantics.t;
  size_sem : Semantics.t;
}

let classic_profile =
  { profile_name = "classic"; parse_sem = Classic; size_sem = Classic }

(** Figure 7's configuration: elastic parses, classic size. *)
let elastic_classic_profile =
  { profile_name = "elastic+classic"; parse_sem = Elastic; size_sem = Classic }

(** Figure 9's configuration: elastic parses, snapshot size. *)
let mixed_profile =
  { profile_name = "elastic+snapshot"; parse_sem = Elastic; size_sem = Snapshot }

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  module S = Stm.Make (R)
  module Sharded = Sharded.Make (S)
  module List_set = Stm_list_set.Make (S)
  module Hash_set = Stm_hash_set.Make (S)
  module Skiplist = Stm_skiplist.Make (S)
  module Queue = Stm_queue.Make (S)
  module Stack = Stm_stack.Make (S)
  module Boosted = Boosted_set.Make (R) (S)
  module Treiber = Treiber_stack.Make (R)
  module Seq = Seq_list.Make (R)
  module Coarse = Coarse_list.Make (R)
  module Hoh = Hoh_list.Make (R)
  module Lazy_l = Lazy_list.Make (R)
  module Lockfree = Lockfree_list.Make (R)
  module Cow = Cow_set.Make (R)

  let seq () =
    let t = Seq.create () in
    {
      name = "seq-list";
      add = Seq.add t;
      remove = Seq.remove t;
      contains = Seq.contains t;
      size = (fun () -> Seq.size t);
      to_list = (fun () -> Seq.to_list t);
    }

  let coarse () =
    let t = Coarse.create () in
    {
      name = "coarse-lock-list";
      add = Coarse.add t;
      remove = Coarse.remove t;
      contains = Coarse.contains t;
      size = (fun () -> Coarse.size t);
      to_list = (fun () -> Coarse.to_list t);
    }

  let hand_over_hand () =
    let t = Hoh.create () in
    {
      name = "hand-over-hand-list";
      add = Hoh.add t;
      remove = Hoh.remove t;
      contains = Hoh.contains t;
      size = (fun () -> Hoh.size t);
      to_list = (fun () -> Hoh.to_list t);
    }

  let lazy_list () =
    let t = Lazy_l.create () in
    {
      name = "lazy-list";
      add = Lazy_l.add t;
      remove = Lazy_l.remove t;
      contains = Lazy_l.contains t;
      size = (fun () -> Lazy_l.size t);
      to_list = (fun () -> Lazy_l.to_list t);
    }

  let lockfree () =
    let t = Lockfree.create () in
    {
      name = "lock-free-list";
      add = Lockfree.add t;
      remove = Lockfree.remove t;
      contains = Lockfree.contains t;
      size = (fun () -> Lockfree.size t);
      to_list = (fun () -> Lockfree.to_list t);
    }

  let cow () =
    let t = Cow.create () in
    {
      name = "cow-array-set";
      add = Cow.add t;
      remove = Cow.remove t;
      contains = Cow.contains t;
      size = (fun () -> Cow.size t);
      to_list = (fun () -> Cow.to_list t);
    }

  let stm_list ?(profile = classic_profile) stm =
    let t =
      List_set.create ~parse_sem:profile.parse_sem ~size_sem:profile.size_sem
        stm
    in
    {
      name = "stm-list(" ^ profile.profile_name ^ ")";
      add = List_set.add t;
      remove = List_set.remove t;
      contains = List_set.contains t;
      size = (fun () -> List_set.size t);
      to_list = (fun () -> List_set.to_list t);
    }

  let stm_hash ?(profile = classic_profile) ?buckets stm =
    let t =
      Hash_set.create ~parse_sem:profile.parse_sem ~size_sem:profile.size_sem
        ?buckets stm
    in
    {
      name = "stm-hash(" ^ profile.profile_name ^ ")";
      add = Hash_set.add t;
      remove = Hash_set.remove t;
      contains = Hash_set.contains t;
      size = (fun () -> Hash_set.size t);
      to_list = (fun () -> Hash_set.to_list t);
    }

  let stm_skiplist ?(profile = classic_profile) stm =
    let t =
      Skiplist.create ~parse_sem:profile.parse_sem ~size_sem:profile.size_sem
        stm
    in
    {
      name = "stm-skiplist(" ^ profile.profile_name ^ ")";
      add = Skiplist.add t;
      remove = Skiplist.remove t;
      contains = Skiplist.contains t;
      size = (fun () -> Skiplist.size t);
      to_list = (fun () -> Skiplist.to_list t);
    }

  (* Sharded variants: the same structure APIs, key ranges partitioned
     across a shard router (one STM instance per shard, point ops
     routed to the owner, aggregates through the cross-instance
     protocols).  [mk] creates each shard's instance, so callers pin
     the contention manager and algorithm per shard. *)

  let sharded_map ?(profile = classic_profile) ?(shards = 4) mk =
    let router = Sharded.Router.create ~shards mk in
    let t = Sharded.Map.create ~size_sem:profile.size_sem router in
    {
      name = Printf.sprintf "sharded-map(%s,%d)" profile.profile_name shards;
      add = (fun k -> Sharded.Map.add t k ());
      remove = Sharded.Map.remove t;
      contains = Sharded.Map.mem t;
      size = (fun () -> Sharded.Map.size t);
      to_list = (fun () -> List.map fst (Sharded.Map.to_list t));
    }

  let sharded_hash ?(profile = classic_profile) ?(shards = 4) ?buckets mk =
    let router = Sharded.Router.create ~shards mk in
    let t =
      Sharded.Hash_set.create ~parse_sem:profile.parse_sem
        ~size_sem:profile.size_sem ?buckets router
    in
    {
      name = Printf.sprintf "sharded-hash(%s,%d)" profile.profile_name shards;
      add = Sharded.Hash_set.add t;
      remove = Sharded.Hash_set.remove t;
      contains = Sharded.Hash_set.contains t;
      size = (fun () -> Sharded.Hash_set.size t);
      to_list = (fun () -> Sharded.Hash_set.to_list t);
    }

  (* A sharded queue is pinned whole to its key's owner shard (FIFO
     cannot be hash-partitioned element-wise); the adapter's point is
     that the pinned queue behaves exactly like a single-instance
     one. *)
  let sharded_queue ?(shards = 4) mk =
    let router = Sharded.Router.create ~shards mk in
    let t = Sharded.queue_on router "conformance-queue" in
    {
      q_name = "sharded-queue";
      enq = Sharded.Queue_part.enqueue t;
      deq = (fun () -> Sharded.Queue_part.dequeue_opt t);
    }

  let boosted ?buckets stm =
    let t = Boosted.create ?buckets () in
    {
      name = "boosted-set";
      add =
        (fun k -> S.atomically ~label:"add" stm (fun tx -> Boosted.add tx t k));
      remove =
        (fun k ->
          S.atomically ~label:"remove" stm (fun tx -> Boosted.remove tx t k));
      contains =
        (fun k ->
          S.atomically ~label:"contains" stm (fun tx -> Boosted.contains tx t k));
      size =
        (fun () -> S.atomically ~label:"size" stm (fun tx -> Boosted.size tx t));
      to_list = (fun () -> Boosted.to_list t);
    }

  let stm_queue stm =
    let t = Queue.create stm in
    {
      q_name = "stm-queue";
      enq = Queue.enqueue t;
      deq = (fun () -> Queue.dequeue_opt t);
    }

  (* Same queue, but consumers *block*: an empty dequeue parks via
     [retry] until a producer's commit wakes it, bounded by
     [deadline_delta] (runtime clock units) so a workload that drains
     the queue ends with [None] instead of a deadlock.  Exists so the
     conformance matrix can check that parking consumers observe
     exactly the histories spinning ones do. *)
  let stm_queue_blocking ~deadline_delta stm =
    let t = Queue.create stm in
    {
      q_name = "stm-queue-blocking";
      enq = Queue.enqueue t;
      deq =
        (fun () ->
          match
            S.try_atomically ~label:"take"
              ~deadline:(R.now () + deadline_delta)
              stm
              (fun tx -> Queue.take_tx tx t)
          with
          | S.Committed v -> Some v
          | S.Exhausted _ | S.Deadline_exceeded _ -> None);
    }

  let stm_stack stm =
    let t = Stack.create stm in
    {
      s_name = "stm-stack";
      push = Stack.push t;
      pop = (fun () -> Stack.pop t);
    }

  let treiber () =
    let t = Treiber.create () in
    {
      s_name = "treiber-stack";
      push = Treiber.push t;
      pop = (fun () -> Treiber.pop t);
    }

  (* ---- operation-history recording -------------------------------------

     [record_set s] (and the queue/stack variants) wraps an adapter so
     every call is logged as a timed {!Lin.event} the linearizability
     checker consumes.  Timestamps come from a shared completion
     counter, not from clocks: an operation's [inv] is the number of
     completions it observed before starting, its [ret] the index its
     own completion received.  [ret_a < inv_b] then certifies that [a]'s
     effect landed before [b] began — sound under the simulator with
     {e any} scheduling policy (per-thread virtual clocks drift apart
     under [Random_sched]) and under real domains alike, and the
     deliberately widened intervals can only make the checker more
     permissive, never trigger a false alarm. *)

  type 'e log = { cells : 'e list R.atomic; completions : int R.atomic }

  let make_log () = { cells = R.atomic []; completions = R.atomic 0 }

  let timed log mk f =
    let thread = R.self_id () in
    let inv = R.get log.completions in
    let r = f () in
    let ret = R.fetch_and_add log.completions 1 in
    let e = mk ~thread ~inv ~ret r in
    let rec push () =
      let cur = R.get log.cells in
      if not (R.cas log.cells cur (e :: cur)) then push ()
    in
    push ();
    r

  let recorded log =
    List.sort
      (fun a b -> compare (a.Lin.inv, a.Lin.ret) (b.Lin.inv, b.Lin.ret))
      (R.get log.cells)

  let record_set (s : set) =
    let log = make_log () in
    let ev op result ~thread ~inv ~ret = { Lin.thread; op; result; inv; ret } in
    ( {
        s with
        add =
          (fun k ->
            timed log
              (fun ~thread ~inv ~ret r -> ev (Lin.Add k) (Lin.Bool r) ~thread ~inv ~ret)
              (fun () -> s.add k));
        remove =
          (fun k ->
            timed log
              (fun ~thread ~inv ~ret r ->
                ev (Lin.Remove k) (Lin.Bool r) ~thread ~inv ~ret)
              (fun () -> s.remove k));
        contains =
          (fun k ->
            timed log
              (fun ~thread ~inv ~ret r ->
                ev (Lin.Contains k) (Lin.Bool r) ~thread ~inv ~ret)
              (fun () -> s.contains k));
        size =
          (fun () ->
            timed log
              (fun ~thread ~inv ~ret r -> ev Lin.Size (Lin.Int r) ~thread ~inv ~ret)
              s.size);
      },
      fun () -> recorded log )

  let record_queue (q : queue) =
    let log = make_log () in
    ( {
        q with
        enq =
          (fun v ->
            timed log
              (fun ~thread ~inv ~ret () ->
                { Lin.thread; op = Lin.Enqueue v; result = Lin.Enqueued; inv; ret })
              (fun () -> q.enq v));
        deq =
          (fun () ->
            timed log
              (fun ~thread ~inv ~ret r ->
                { Lin.thread; op = Lin.Dequeue; result = Lin.Dequeued r; inv; ret })
              q.deq);
      },
      fun () -> recorded log )

  let record_stack (s : stack) =
    let log = make_log () in
    ( {
        s with
        push =
          (fun v ->
            timed log
              (fun ~thread ~inv ~ret () ->
                { Lin.thread; op = Lin.Push v; result = Lin.Pushed; inv; ret })
              (fun () -> s.push v));
        pop =
          (fun () ->
            timed log
              (fun ~thread ~inv ~ret r ->
                { Lin.thread; op = Lin.Pop; result = Lin.Popped r; inv; ret })
              s.pop);
      },
      fun () -> recorded log )
end
