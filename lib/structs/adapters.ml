(** First-class adapters: every set implementation behind one record of
    closures, so the correctness tests and the benchmark harness can
    sweep over implementations uniformly.

    [Make (R)] instantiates the whole zoo — the STM structures over an
    [Stm.Make (R)] instance and all baselines — for one runtime. *)

open Polytm

type set = {
  name : string;
  add : int -> bool;
  remove : int -> bool;
  contains : int -> bool;
  size : unit -> int;
  to_list : unit -> int list;
}

(** Per-operation semantics assignment for the STM structures: the
    three configurations of the paper's evaluation. *)
type profile = {
  profile_name : string;
  parse_sem : Semantics.t;
  size_sem : Semantics.t;
}

let classic_profile =
  { profile_name = "classic"; parse_sem = Classic; size_sem = Classic }

(** Figure 7's configuration: elastic parses, classic size. *)
let elastic_classic_profile =
  { profile_name = "elastic+classic"; parse_sem = Elastic; size_sem = Classic }

(** Figure 9's configuration: elastic parses, snapshot size. *)
let mixed_profile =
  { profile_name = "elastic+snapshot"; parse_sem = Elastic; size_sem = Snapshot }

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  module S = Stm.Make (R)
  module List_set = Stm_list_set.Make (S)
  module Hash_set = Stm_hash_set.Make (S)
  module Skiplist = Stm_skiplist.Make (S)
  module Queue = Stm_queue.Make (S)
  module Seq = Seq_list.Make (R)
  module Coarse = Coarse_list.Make (R)
  module Hoh = Hoh_list.Make (R)
  module Lazy_l = Lazy_list.Make (R)
  module Lockfree = Lockfree_list.Make (R)
  module Cow = Cow_set.Make (R)

  let seq () =
    let t = Seq.create () in
    {
      name = "seq-list";
      add = Seq.add t;
      remove = Seq.remove t;
      contains = Seq.contains t;
      size = (fun () -> Seq.size t);
      to_list = (fun () -> Seq.to_list t);
    }

  let coarse () =
    let t = Coarse.create () in
    {
      name = "coarse-lock-list";
      add = Coarse.add t;
      remove = Coarse.remove t;
      contains = Coarse.contains t;
      size = (fun () -> Coarse.size t);
      to_list = (fun () -> Coarse.to_list t);
    }

  let hand_over_hand () =
    let t = Hoh.create () in
    {
      name = "hand-over-hand-list";
      add = Hoh.add t;
      remove = Hoh.remove t;
      contains = Hoh.contains t;
      size = (fun () -> Hoh.size t);
      to_list = (fun () -> Hoh.to_list t);
    }

  let lazy_list () =
    let t = Lazy_l.create () in
    {
      name = "lazy-list";
      add = Lazy_l.add t;
      remove = Lazy_l.remove t;
      contains = Lazy_l.contains t;
      size = (fun () -> Lazy_l.size t);
      to_list = (fun () -> Lazy_l.to_list t);
    }

  let lockfree () =
    let t = Lockfree.create () in
    {
      name = "lock-free-list";
      add = Lockfree.add t;
      remove = Lockfree.remove t;
      contains = Lockfree.contains t;
      size = (fun () -> Lockfree.size t);
      to_list = (fun () -> Lockfree.to_list t);
    }

  let cow () =
    let t = Cow.create () in
    {
      name = "cow-array-set";
      add = Cow.add t;
      remove = Cow.remove t;
      contains = Cow.contains t;
      size = (fun () -> Cow.size t);
      to_list = (fun () -> Cow.to_list t);
    }

  let stm_list ?(profile = classic_profile) stm =
    let t =
      List_set.create ~parse_sem:profile.parse_sem ~size_sem:profile.size_sem
        stm
    in
    {
      name = "stm-list(" ^ profile.profile_name ^ ")";
      add = List_set.add t;
      remove = List_set.remove t;
      contains = List_set.contains t;
      size = (fun () -> List_set.size t);
      to_list = (fun () -> List_set.to_list t);
    }

  let stm_hash ?(profile = classic_profile) ?buckets stm =
    let t =
      Hash_set.create ~parse_sem:profile.parse_sem ~size_sem:profile.size_sem
        ?buckets stm
    in
    {
      name = "stm-hash(" ^ profile.profile_name ^ ")";
      add = Hash_set.add t;
      remove = Hash_set.remove t;
      contains = Hash_set.contains t;
      size = (fun () -> Hash_set.size t);
      to_list = (fun () -> Hash_set.to_list t);
    }

  let stm_skiplist ?(profile = classic_profile) stm =
    let t =
      Skiplist.create ~parse_sem:profile.parse_sem ~size_sem:profile.size_sem
        stm
    in
    {
      name = "stm-skiplist(" ^ profile.profile_name ^ ")";
      add = Skiplist.add t;
      remove = Skiplist.remove t;
      contains = Skiplist.contains t;
      size = (fun () -> Skiplist.size t);
      to_list = (fun () -> Skiplist.to_list t);
    }
end
