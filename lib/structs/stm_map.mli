(** Transactional ordered map: an AVL tree whose mutable fields live in
    transactional variables.

    Lookups and updates are classic transactions (rebalancing rewrites
    several ancestors — outside any bounded elastic window); [size],
    [fold] and [to_list] honour [size_sem], so a [Snapshot] map gives
    consistent iteration that never aborts concurrent updaters
    (Section 5.1's Iterator, on a tree). *)

open Polytm

exception Invariant_violation of string
(** A structural invariant did not hold mid-operation (e.g. an
    interior node with two children but no successor — a rebalance
    bug).  Raised inside the enclosing transaction so the attempt's
    effects are discarded through the ordinary abort path: the
    transaction fails, the process survives, and a server can answer a
    typed error instead of dying. *)

module Make (S : Stm_intf.S) : sig
  type 'v t

  val create : ?size_sem:Semantics.t -> S.t -> 'v t

  val add : 'v t -> int -> 'v -> bool
  (** [add m k v] binds [k] to [v]; [false] when [k] was already bound
      (the value is replaced either way). *)

  val remove : 'v t -> int -> bool
  val find_opt : 'v t -> int -> 'v option
  val mem : 'v t -> int -> bool

  val size : 'v t -> int
  (** Atomic (or snapshot-consistent) binding count. *)

  val fold : 'v t -> ('a -> int -> 'v -> 'a) -> 'a -> 'a
  (** In-order fold, as one transaction of [size_sem]. *)

  val to_list : 'v t -> (int * 'v) list
  (** Bindings in ascending key order. *)

  val invariants_hold : 'v t -> bool
  (** Structural self-check (AVL balance, key order, cached heights);
      used by the property tests. *)
end
