(** Transactional skip-list integer set.

    The second search structure of the library: logarithmic expected
    parses, with per-operation semantics exactly like
    {!Stm_list_set}.  Tower heights are derived deterministically from
    the key (trailing zeros of a hash), so no shared random state
    exists and simulator runs stay reproducible. *)

open Polytm

module Make (S : Stm_intf.S) = struct
  let max_level = 8

  type node = Nil | Node of { value : int; nexts : node S.tvar array }

  type t = {
    stm : S.t;
    heads : node S.tvar array;  (** heads.(l) = first node at level l *)
    parse_sem : Semantics.t;
    size_sem : Semantics.t;
  }

  let create ?(parse_sem = Semantics.Classic) ?(size_sem = Semantics.Classic)
      stm =
    {
      stm;
      heads = Array.init max_level (fun _ -> S.tvar stm Nil);
      parse_sem;
      size_sem;
    }

  (* Deterministic tower height in [1, max_level]: geometric via the
     trailing-zero count of a mixed hash. *)
  let height v =
    let h = (v * 0x9E3779B1) lxor ((v * 0x85EBCA77) lsr 13) in
    let rec tz n acc =
      if acc >= max_level - 1 || n land 1 = 1 then acc else tz (n lsr 1) (acc + 1)
    in
    1 + tz (h lor 0x40000000) 0

  let node_value = function Nil -> max_int | Node { value; _ } -> value

  (* Collect, per level, the tvar that precedes the position of [v]:
     walk each level starting from the node where the previous level
     stopped (its tower has a pointer one level down), otherwise from
     that level's head. *)
  let find_preds tx t v =
    let preds = Array.make max_level t.heads.(0) in
    let start = ref None in
    for level = max_level - 1 downto 0 do
      let ptr0 =
        match !start with
        | Some (Node { nexts; _ }) -> nexts.(level)
        | Some Nil | None -> t.heads.(level)
      in
      let rec walk prev_node ptr =
        match S.read tx ptr with
        | Node { value; nexts } as n when value < v -> walk (Some n) nexts.(level)
        | Nil | Node _ -> (prev_node, ptr)
      in
      let prev_node, p = walk !start ptr0 in
      preds.(level) <- p;
      start := prev_node
    done;
    preds

  (* Updates run under CLASSIC semantics regardless of [parse_sem]:
     their write set spans towers across several levels, whose
     predecessor pointers were read far apart during the parse — more
     than any bounded elastic window can keep protecting.  [contains]
     and [size] still honour the configured semantics, which is where
     the paper's gains live (read operations dominate search-structure
     workloads). *)
  let add t v =
    S.atomically ~sem:Semantics.Classic ~label:"add" t.stm (fun tx ->
        let preds = find_preds tx t v in
        if node_value (S.read tx preds.(0)) = v then false
        else begin
          let h = height v in
          let nexts =
            Array.init h (fun l -> S.tvar t.stm (S.read tx preds.(l)))
          in
          let node = Node { value = v; nexts } in
          for l = 0 to h - 1 do
            S.write tx preds.(l) node
          done;
          true
        end)

  let remove t v =
    S.atomically ~sem:Semantics.Classic ~label:"remove" t.stm (fun tx ->
        let preds = find_preds tx t v in
        match S.read tx preds.(0) with
        | Node { value; nexts } when value = v ->
            for l = 0 to Array.length nexts - 1 do
              if node_value (S.read tx preds.(l)) = v then
                S.write tx preds.(l) (S.read tx nexts.(l))
            done;
            true
        | Node _ | Nil -> false)

  let contains t v =
    S.atomically ~sem:t.parse_sem ~label:"contains" t.stm (fun tx ->
        let rec walk level ptr prev_node =
          let step_down n =
            if level = 0 then false
            else
              let ptr' =
                match n with
                | Some (Node { nexts; _ }) -> nexts.(level - 1)
                | Some Nil | None -> t.heads.(level - 1)
              in
              walk (level - 1) ptr' n
          in
          match S.read tx ptr with
          | Node { value; _ } when value = v -> true
          | Node { value; nexts } as n when value < v ->
              walk level nexts.(level) (Some n)
          | Nil | Node _ -> step_down prev_node
        in
        walk (max_level - 1) t.heads.(max_level - 1) None)

  let fold tx t f init =
    let rec go acc ptr =
      match S.read tx ptr with
      | Nil -> acc
      | Node { value; nexts } -> go (f acc value) nexts.(0)
    in
    go init t.heads.(0)

  let size t =
    S.atomically ~sem:t.size_sem ~label:"size" t.stm (fun tx ->
        fold tx t (fun n _ -> n + 1) 0)

  let to_list t =
    S.atomically ~sem:t.size_sem ~label:"to-list" t.stm (fun tx ->
        List.rev (fold tx t (fun acc v -> v :: acc) []))
end
