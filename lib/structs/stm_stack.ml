(** Transactional LIFO stack: one list in one transactional variable.

    Deliberately the simplest possible transactional structure — it
    exists to contrast with {!Treiber_stack}: the sequential code is
    untouched (push is [head := x :: head]), and unlike the lock-free
    version its operations compose: {!pop_push} moves an element
    between stacks in one atomic step, something Treiber stacks cannot
    offer without DCAS (Section 2.2 cites exactly that problem,
    Greenwald's two-handed emulation). *)

open Polytm

module Make (S : Stm_intf.S) = struct
  type 'a t = { stm : S.t; head : 'a list S.tvar }

  let create stm = { stm; head = S.tvar stm [] }

  let push_tx tx t x = S.write tx t.head (x :: S.read tx t.head)

  let pop_tx tx t =
    match S.read tx t.head with
    | [] -> None
    | x :: rest ->
        S.write tx t.head rest;
        Some x

  let push t x = S.atomically ~label:"push" t.stm (fun tx -> push_tx tx t x)
  let pop t = S.atomically ~label:"pop" t.stm (fun tx -> pop_tx tx t)

  (* Blocking pop: [S.retry] on empty parks until a push commits to
     [head] (which is in the read set), then re-runs and pops. *)
  let pop_wait_tx tx t =
    match pop_tx tx t with Some x -> x | None -> S.retry tx

  let pop_wait t =
    S.atomically ~label:"pop-wait" t.stm (fun tx -> pop_wait_tx tx t)

  let peek t =
    S.atomically ~label:"peek" t.stm (fun tx ->
        match S.read tx t.head with [] -> None | x :: _ -> Some x)

  let length t =
    S.atomically ~label:"length" t.stm (fun tx ->
        List.length (S.read tx t.head))

  let to_list t = S.atomically ~label:"to-list" t.stm (fun tx -> S.read tx t.head)

  (* Atomically move the top of [src] onto [dst]; [None] when [src] is
     empty.  The composition the lock-free stack cannot express. *)
  let pop_push ~src ~dst =
    S.atomically ~label:"pop-push" src.stm (fun tx ->
        match pop_tx tx src with
        | None -> None
        | Some x ->
            push_tx tx dst x;
            Some x)
end
