(** Unsynchronised sorted linked list: the sequential baseline every
    throughput figure normalises against.  Links go through runtime
    atomics only so traversals pay the same one-tick-per-hop simulator
    cost as the concurrent designs; there is no synchronisation —
    single-threaded use only. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) : sig
  type t

  val create : unit -> t
  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool
  val size : t -> int
  val to_list : t -> int list
end
