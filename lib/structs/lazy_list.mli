(** Lazy synchronisation sorted list (Heller et al., OPODIS 2005 —
    reference [29]): wait-free unsynchronised [contains]; updates lock
    two nodes and re-validate (the “additional validation phase” of
    Section 2.1). *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) : sig
  type t

  val create : unit -> t
  val add : t -> int -> bool
  val remove : t -> int -> bool

  val contains : t -> int -> bool
  (** Wait-free: one traversal plus a deletion-mark check. *)

  val size : t -> int
  (** Non-atomic traversal count. *)

  val to_list : t -> int list
end
