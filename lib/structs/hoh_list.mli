(** Hand-over-hand (lock-coupling) sorted linked list — the paper's
    Algorithm 3, its exhibit of lock expressiveness that classic
    transactions cannot match (Section 3.1).

    A traversal holds at most two node locks at a time.  [size] and
    [to_list] are lock-coupled traversals: consistent step by step but
    {e not} atomic snapshots of the whole list. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) : sig
  type t

  val create : unit -> t
  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool

  val size : t -> int
  (** Lock-coupled count; may correspond to no instantaneous state
      (demonstrated in [test_baselines.ml]). *)

  val to_list : t -> int list
end
