(** Coarse-grained locking baseline: a sequential sorted list behind a
    single spinlock.  Trivially correct, trivially non-scalable — the
    floor every other design is measured against. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  module Lock = Polytm_runtime.Spinlock.Make (R)
  module Inner = Seq_list.Make (R)

  type t = { lock : Lock.t; inner : Inner.t }

  let create () = { lock = Lock.create (); inner = Inner.create () }

  let add t v = Lock.with_lock t.lock (fun () -> Inner.add t.inner v)
  let remove t v = Lock.with_lock t.lock (fun () -> Inner.remove t.inner v)
  let contains t v = Lock.with_lock t.lock (fun () -> Inner.contains t.inner v)
  let size t = Lock.with_lock t.lock (fun () -> Inner.size t.inner)
  let to_list t = Lock.with_lock t.lock (fun () -> Inner.to_list t.inner)
end
