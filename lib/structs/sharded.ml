(** Sharded transactional structures: key ranges partitioned across a
    {!Polytm.Shard} router's instances, behind the existing structure
    APIs.

    Each shard holds an ordinary single-instance structure (an
    {!Stm_map} part, an {!Stm_hash_set} part) on that shard's own STM
    instance.  Point operations hash-route to the owner part and run
    exactly the one-shot single-instance transaction they always did —
    no cross-shard cost.  Whole-structure aggregates ([size], [fold],
    [to_list]) span every shard through the STM's cross-instance
    protocols: a consistent bound vector when the structure's
    [size_sem] is [Snapshot], a cross-shard atomic transaction
    otherwise — so the polymorphic-semantics story survives sharding
    unchanged.  A [MULTI]-style batch touching several shards wraps
    its point operations in {!Polytm.Stm_intf.S.atomically_multi}; the
    nested calls flatten into the members exactly as they flatten into
    a single instance.

    With a 1-shard router every operation degenerates to the
    single-instance code path, which is what the differential battery
    checks: any op sequence must leave a 1-shard and a 16-shard store
    with identical committed contents. *)

open Polytm

module Make (S : Stm_intf.S) = struct
  module Router = Shard.Make (S)
  module Map_part = Stm_map.Make (S)
  module Hash_part = Stm_hash_set.Make (S)
  module Queue_part = Stm_queue.Make (S)

  (* Aggregate dispatch shared by the structures: one consistent cut
     across every member shard. *)
  let aggregate router size_sem label f =
    match size_sem with
    | Semantics.Snapshot -> Router.snapshot_all ~label router f
    | sem -> Router.atomically_all ~sem ~label router f

  module Map = struct
    type 'v t = {
      router : Router.t;
      parts : 'v Map_part.t array;
      size_sem : Semantics.t;
    }

    let create ?(size_sem = Semantics.Classic) router =
      {
        router;
        parts =
          Array.init (Router.count router) (fun i ->
              Map_part.create ~size_sem (Router.shard router i));
        size_sem;
      }

    let part t k = t.parts.(Router.index_of_hash t.router k)

    (* Placement introspection, for callers (the server session) that
       must open their outer transaction on the key's owner instance
       so the routed point operation flattens into it. *)
    let owner t k = Router.owner_of_hash t.router k
    let instances t = Router.all t.router
    let shard_count t = Router.count t.router

    (* Point operations: the owner part's ordinary one-shot path. *)
    let add t k v = Map_part.add (part t k) k v
    let remove t k = Map_part.remove (part t k) k
    let find_opt t k = Map_part.find_opt (part t k) k
    let mem t k = Map_part.mem (part t k) k

    let size t =
      aggregate t.router t.size_sem "size" (fun () ->
          Array.fold_left (fun acc m -> acc + Map_part.size m) 0 t.parts)

    (* Each part folds in ascending key order; a k-way merge keeps the
       global order without re-sorting. *)
    let to_list t =
      aggregate t.router t.size_sem "to-list" (fun () ->
          Array.fold_left
            (fun acc m ->
              List.merge
                (fun (a, _) (b, _) -> compare a b)
                acc (Map_part.to_list m))
            [] t.parts)

    let fold t f init =
      List.fold_left (fun acc (k, v) -> f acc k v) init (to_list t)

    let invariants_hold t = Array.for_all Map_part.invariants_hold t.parts
  end

  module Hash_set = struct
    type t = {
      router : Router.t;
      parts : Hash_part.t array;
      size_sem : Semantics.t;
    }

    let create ?(parse_sem = Semantics.Classic)
        ?(size_sem = Semantics.Classic) ?buckets router =
      {
        router;
        parts =
          Array.init (Router.count router) (fun i ->
              Hash_part.create ~parse_sem ~size_sem ?buckets
                (Router.shard router i));
        size_sem;
      }

    let part t v = t.parts.(Router.index_of_hash t.router v)
    let owner t v = Router.owner_of_hash t.router v
    let instances t = Router.all t.router
    let shard_count t = Router.count t.router
    let add t v = Hash_part.add (part t v) v
    let remove t v = Hash_part.remove (part t v) v
    let contains t v = Hash_part.contains (part t v) v

    let size t =
      aggregate t.router t.size_sem "size" (fun () ->
          Array.fold_left (fun acc s -> acc + Hash_part.size s) 0 t.parts)

    let to_list t =
      aggregate t.router t.size_sem "to-list" (fun () ->
          List.sort compare
            (Array.fold_left
               (fun acc s -> List.rev_append (Hash_part.to_list s) acc)
               [] t.parts))
  end

  (* FIFO order cannot be hash-partitioned element-wise, so a
     "sharded" queue is pinned whole to the shard owning its key:
     distinct queues land on distinct shards and stop contending with
     each other (and with the maps' keyspace), while each queue keeps
     the plain single-instance code — including parked [retry]
     consumers, which wait on the owner instance's queue. *)
  let queue_on router key = Queue_part.create (Router.owner router key)
end
