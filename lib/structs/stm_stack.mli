(** Transactional LIFO stack.  Exists to contrast with
    {!Treiber_stack}: the sequential code is untouched, and operations
    compose — {!Make.pop_push} moves an element between stacks in one
    atomic step, which lock-free stacks cannot express without DCAS
    (Section 2.2 cites Greenwald's two-handed emulation for exactly
    this gap). *)

open Polytm

module Make (S : Stm_intf.S) : sig
  type 'a t

  val create : S.t -> 'a t

  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option

  val pop_wait : 'a t -> 'a
  (** Blocking pop: if the stack is empty, {!Stm_intf.S.retry} parks the
      caller until a push commits, then pops — no polling.  Bound the
      wait with [atomically ~deadline] around {!pop_wait_tx}.
      @raise Stm_intf.Invalid_operation under a snapshot transaction or
        while holding the serial token (see {!Stm_intf.S.retry}). *)

  val peek : 'a t -> 'a option
  val length : 'a t -> int

  val to_list : 'a t -> 'a list
  (** Top to bottom. *)

  val push_tx : S.tx -> 'a t -> 'a -> unit
  (** In-transaction push, for composition. *)

  val pop_tx : S.tx -> 'a t -> 'a option

  val pop_wait_tx : S.tx -> 'a t -> 'a
  (** In-transaction blocking pop ({!Stm_intf.S.retry} on empty), for
      composition. *)

  val pop_push : src:'a t -> dst:'a t -> 'a option
  (** Atomically move the top of [src] onto [dst]. *)
end
