(** Transactional skip-list integer set: the library's logarithmic
    search structure.

    [contains], [size] and [to_list] honour the configured semantics;
    {b updates always run classically} regardless of [parse_sem],
    because an insert/remove write set spans tower pointers read far
    apart during the parse — more than a bounded elastic window can
    keep protecting (see the implementation note).  Read operations
    are where the paper's relaxations pay on search structures, so the
    mixed profile still applies.

    Tower heights derive deterministically from the key, keeping
    simulator runs reproducible without shared random state. *)

open Polytm

module Make (S : Stm_intf.S) : sig
  type t

  val max_level : int

  val create : ?parse_sem:Semantics.t -> ?size_sem:Semantics.t -> S.t -> t

  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool
  val size : t -> int
  val to_list : t -> int list
end
