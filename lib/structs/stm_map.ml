(** Transactional ordered map (AVL tree over per-node transactional
    variables).

    The sequential AVL algorithm, with every mutable field (child
    pointers, heights, values) in a tvar and each operation delimited
    by one transaction — sequential-code preservation on a structure
    with non-trivial rebalancing.  Lookups and updates run classically
    (rotations rewrite several ancestors, which a bounded elastic
    window cannot protect); read-only aggregates ([size], [fold],
    [to_list]) honour [size_sem], so a [Snapshot] map supports
    consistent iteration that never aborts concurrent inserts —
    Section 5.1's Iterator story on a tree. *)

open Polytm

exception Invariant_violation of string
(** A structural invariant did not hold mid-operation.  Raised {e
    inside} the enclosing transaction, so it propagates through the
    abort path: the attempt's effects are discarded, locks released,
    accounting done — the transaction fails, the process survives.  A
    server catches it per-request and answers a typed error. *)

module Make (S : Stm_intf.S) = struct
  type 'v node = Leaf | Node of 'v cell

  and 'v cell = {
    key : int;
    value : 'v S.tvar;
    left : 'v node S.tvar;
    right : 'v node S.tvar;
    height : int S.tvar;
  }

  type 'v t = { stm : S.t; root : 'v node S.tvar; size_sem : Semantics.t }

  let create ?(size_sem = Semantics.Classic) stm =
    { stm; root = S.tvar stm Leaf; size_sem }

  let node_height tx = function
    | Leaf -> 0
    | Node c -> S.read tx c.height

  let update_height tx c =
    let h =
      1 + max (node_height tx (S.read tx c.left)) (node_height tx (S.read tx c.right))
    in
    if S.read tx c.height <> h then S.write tx c.height h

  let balance_factor tx c =
    node_height tx (S.read tx c.left) - node_height tx (S.read tx c.right)

  (* Right rotation of the subtree held in [ptr]; [c] is its root cell
     whose left child [l] becomes the new subtree root. *)
  let rotate_right tx ptr c =
    match S.read tx c.left with
    | Leaf -> ()
    | Node l ->
        S.write tx c.left (S.read tx l.right);
        update_height tx c;
        S.write tx l.right (Node c);
        update_height tx l;
        S.write tx ptr (Node l)

  let rotate_left tx ptr c =
    match S.read tx c.right with
    | Leaf -> ()
    | Node r ->
        S.write tx c.right (S.read tx r.left);
        update_height tx c;
        S.write tx r.left (Node c);
        update_height tx r;
        S.write tx ptr (Node r)

  (* Restore the AVL invariant at [ptr] after a child subtree changed
     height by at most one. *)
  let rebalance tx ptr =
    match S.read tx ptr with
    | Leaf -> ()
    | Node c ->
        update_height tx c;
        let bf = balance_factor tx c in
        if bf > 1 then begin
          (match S.read tx c.left with
          | Node l when balance_factor tx l < 0 -> rotate_left tx c.left l
          | Node _ | Leaf -> ());
          rotate_right tx ptr c
        end
        else if bf < -1 then begin
          (match S.read tx c.right with
          | Node r when balance_factor tx r > 0 -> rotate_right tx c.right r
          | Node _ | Leaf -> ());
          rotate_left tx ptr c
        end

  let make_cell stm k v =
    {
      key = k;
      value = S.tvar stm v;
      left = S.tvar stm Leaf;
      right = S.tvar stm Leaf;
      height = S.tvar stm 1;
    }

  let add t k v =
    S.atomically ~label:"add" t.stm (fun tx ->
        let rec go ptr =
          match S.read tx ptr with
          | Leaf ->
              S.write tx ptr (Node (make_cell t.stm k v));
              true
          | Node c ->
              if k = c.key then begin
                S.write tx c.value v;
                false
              end
              else begin
                let added = go (if k < c.key then c.left else c.right) in
                if added then rebalance tx ptr;
                added
              end
        in
        go t.root)

  let find_opt t k =
    S.atomically ~label:"find" t.stm (fun tx ->
        let rec go ptr =
          match S.read tx ptr with
          | Leaf -> None
          | Node c ->
              if k = c.key then Some (S.read tx c.value)
              else go (if k < c.key then c.left else c.right)
        in
        go t.root)

  let mem t k = Option.is_some (find_opt t k)

  (* Remove the minimum of the subtree in [ptr], returning its
     (key, value); the caller re-keys the deleted node's slot. *)
  let rec take_min tx ptr =
    match S.read tx ptr with
    | Leaf -> None
    | Node c -> (
        match S.read tx c.left with
        | Leaf ->
            let kv = (c.key, S.read tx c.value) in
            S.write tx ptr (S.read tx c.right);
            Some kv
        | Node _ ->
            let kv = take_min tx c.left in
            rebalance tx ptr;
            kv)

  let remove t k =
    S.atomically ~label:"remove" t.stm (fun tx ->
        let rec go ptr =
          match S.read tx ptr with
          | Leaf -> false
          | Node c ->
              if k < c.key then begin
                let removed = go c.left in
                if removed then rebalance tx ptr;
                removed
              end
              else if k > c.key then begin
                let removed = go c.right in
                if removed then rebalance tx ptr;
                removed
              end
              else begin
                (match (S.read tx c.left, S.read tx c.right) with
                | Leaf, other | other, Leaf -> S.write tx ptr other
                | Node _, Node _ -> (
                    (* Replace by the successor: splice the right
                       subtree's minimum into this slot. *)
                    match take_min tx c.right with
                    | None ->
                        (* Both children read [Node] above, yet the
                           right subtree produced no minimum: the tree
                           is structurally corrupt (a rebalance bug,
                           not a data race — the transaction reread
                           the same tvars).  Fail the transaction, not
                           the process. *)
                        raise
                          (Invariant_violation
                             "stm_map.remove: interior node with two \
                              children has no successor")
                    | Some (sk, sv) ->
                        let cell = make_cell t.stm sk sv in
                        S.write tx cell.left (S.read tx c.left);
                        S.write tx cell.right (S.read tx c.right);
                        S.write tx ptr (Node cell);
                        rebalance tx ptr));
                true
              end
        in
        go t.root)

  let fold t f init =
    S.atomically ~sem:t.size_sem ~label:"fold" t.stm (fun tx ->
        let rec go acc ptr =
          match S.read tx ptr with
          | Leaf -> acc
          | Node c ->
              let acc = go acc c.left in
              let acc = f acc c.key (S.read tx c.value) in
              go acc c.right
        in
        go init t.root)

  let size t = fold t (fun n _ _ -> n + 1) 0

  let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

  (* Structure check for tests: AVL balance and key order. *)
  let invariants_hold t =
    S.atomically ~label:"invariants" t.stm (fun tx ->
        let rec check lo hi ptr =
          match S.read tx ptr with
          | Leaf -> Some 0
          | Node c -> (
              if (match lo with Some l -> c.key <= l | None -> false) then None
              else if (match hi with Some h -> c.key >= h | None -> false)
              then None
              else
                match
                  (check lo (Some c.key) c.left, check (Some c.key) hi c.right)
                with
                | Some hl, Some hr when abs (hl - hr) <= 1 ->
                    let h = 1 + max hl hr in
                    if S.read tx c.height = h then Some h else None
                | _ -> None)
        in
        Option.is_some (check None None t.root))
end
