(** Sorted transactional linked-list integer set — the paper's running
    example (Algorithms 1, 4 and 5).

    Every operation is one transaction whose semantics is chosen per
    structure at creation time:

    - [parse_sem] governs [contains], [add] and [remove] (the paper
      labels these {e elastic} in Section 4.3);
    - [size_sem] governs [size] (labelled {e classic} in Section 4.3
      and {e snapshot} in Section 5.1) and [to_list].

    The code is the sequential sorted-list algorithm with operations
    delimited by [atomically] — sequential-code preservation is the
    whole point (Section 2.1). *)

open Polytm

module Make (S : Stm_intf.S) = struct
  type node = Nil | Node of { value : int; next : node S.tvar }

  type t = {
    stm : S.t;
    head : node S.tvar;
    parse_sem : Semantics.t;
    size_sem : Semantics.t;
  }

  let create ?(parse_sem = Semantics.Classic) ?(size_sem = Semantics.Classic)
      stm =
    (* A remove's write neighbourhood spans two adjacent pointers; an
       elastic window of 1 would drop the first from validation and
       let a concurrent insert-before vanish. *)
    if parse_sem = Semantics.Elastic && S.elastic_window_size stm < 2 then
      invalid_arg
        "Stm_list_set: elastic parses need an elastic_window of at least 2";
    { stm; head = S.tvar stm Nil; parse_sem; size_sem }

  (* [find tx t v] walks to the first node with value >= [v]; returns
     both the tvar holding that node and the node itself, WITHOUT
     re-reading the tvar afterwards.  The access discipline matters
     under elastic semantics: the transaction's final two reads are
     then exactly (predecessor pointer, current pointer), so the
     bounded elastic window gives the same neighbour protection as
     hand-over-hand locking.  An extra re-read of the insertion point
     would evict the predecessor from the window and let a concurrent
     unlink of the predecessor slip past commit validation. *)
  let find tx t v =
    let rec go ptr =
      match S.read tx ptr with
      | Nil -> (ptr, Nil)
      | Node { value; _ } as n when value = v -> (ptr, n)
      | Node { value; next } as n -> if value < v then go next else (ptr, n)
    in
    go t.head

  let add t v =
    S.atomically ~sem:t.parse_sem ~label:"add" t.stm (fun tx ->
        match find tx t v with
        | _, Node { value; _ } when value = v -> false
        | ptr, cur ->
            S.write tx ptr (Node { value = v; next = S.tvar t.stm cur });
            true)

  let remove t v =
    S.atomically ~sem:t.parse_sem ~label:"remove" t.stm (fun tx ->
        match find tx t v with
        | ptr, Node { value; next } when value = v ->
            let succ = S.read tx next in
            S.write tx ptr succ;
            (* Also rewrite the removed node's own pointer (same value,
               bumped version): this materialises a write-write
               conflict with any transaction about to write into the
               now-unlinked node — an insert-after, or the remove of
               the successor — which a bounded elastic window would
               otherwise miss.  Without it, two adjacent removes can
               both commit and resurrect the second victim. *)
            S.write tx next succ;
            true
        | _, (Node _ | Nil) -> false)

  let contains t v =
    S.atomically ~sem:t.parse_sem ~label:"contains" t.stm (fun tx ->
        match find tx t v with
        | _, Node { value; _ } -> value = v
        | _, Nil -> false)

  let fold tx t f init =
    let rec go acc ptr =
      match S.read tx ptr with
      | Nil -> acc
      | Node { value; next } -> go (f acc value) next
    in
    go init t.head

  let size t =
    S.atomically ~sem:t.size_sem ~label:"size" t.stm (fun tx ->
        fold tx t (fun n _ -> n + 1) 0)

  let to_list t =
    S.atomically ~sem:t.size_sem ~label:"to-list" t.stm (fun tx ->
        List.rev (fold tx t (fun acc v -> v :: acc) []))

  (* Composite operation in the style of Section 4.1: insert [v] only
     if [absent_witness] is not in the set, atomically — Bob composing
     Alice's parses into a classic transaction. *)
  let add_if_absent t v ~absent_witness =
    S.atomically ~sem:Semantics.Classic ~label:"add-if-absent" t.stm (fun tx ->
        let witness_present =
          match find tx t absent_witness with
          | _, Node { value; _ } -> value = absent_witness
          | _, Nil -> false
        in
        if witness_present then false
        else
          match find tx t v with
          | _, Node { value; _ } when value = v -> false
          | ptr, cur ->
              S.write tx ptr (Node { value = v; next = S.tvar t.stm cur });
              true)
end
