(** Sorted transactional linked-list integer set — the paper's running
    example (Algorithms 1, 4 and 5).

    Each operation is one transaction; the semantics used by parses
    ([contains]/[add]/[remove]) and by aggregates ([size]/[to_list])
    are fixed per structure at {!Make.create}:

    - the all-[Classic] profile is the paper's “classic transactions”
      system (Figure 5);
    - [~parse_sem:Elastic] is Algorithm 4 (Figure 7);
    - additionally [~size_sem:Snapshot] is Algorithm 5 — the full
      mixed-semantics collection of Figure 9.

    The implementation follows the E-STM access discipline: a parse's
    final two reads are exactly (predecessor pointer, current pointer),
    and [remove] version-bumps the unlinked node's own pointer so that
    writes into dead nodes surface as write-write conflicts even under
    the bounded elastic window (see the comments in the
    implementation — both points are load-bearing and were found by
    the bounded model checker). *)

open Polytm

module Make (S : Stm_intf.S) : sig
  (** List cells.  Exposed (rather than abstract) so composite
      operations can be built outside the module — the test suite's
      early-release hazard demonstration does exactly that. *)
  type node = Nil | Node of { value : int; next : node S.tvar }

  type t

  val create :
    ?parse_sem:Semantics.t -> ?size_sem:Semantics.t -> S.t -> t
  (** [create stm] makes an empty set.  [parse_sem] (default
      [Classic]) governs [contains]/[add]/[remove]; [size_sem]
      (default [Classic]) governs [size]/[to_list].
      @raise Invalid_argument when [parse_sem] is [Elastic] and the
      instance's elastic window is narrower than a remove's write
      neighbourhood (2). *)

  val add : t -> int -> bool
  (** [add t v] inserts [v]; [false] if already present. *)

  val remove : t -> int -> bool
  (** [remove t v] deletes [v]; [false] if absent. *)

  val contains : t -> int -> bool

  val size : t -> int
  (** Atomic element count (under [Snapshot] semantics it may reflect
      a slightly stale but consistent state). *)

  val to_list : t -> int list
  (** Ascending elements, as one atomic (or snapshot) traversal. *)

  val add_if_absent : t -> int -> absent_witness:int -> bool
  (** [add_if_absent t v ~absent_witness] inserts [v] only if
      [absent_witness] is not in the set, atomically — Section 4.1's
      composite, always a classic transaction. *)

  val find : S.tx -> t -> int -> node S.tvar * node
  (** In-transaction search: the pointer holding the first node with
      value >= [v], and that node.  Building block for user-defined
      composites; read the access-discipline note above before using
      it under elastic semantics. *)

  val fold : S.tx -> t -> ('a -> int -> 'a) -> 'a -> 'a
  (** In-transaction left fold over the elements in ascending order. *)
end
