(** Transactional FIFO queue: the classic two-list functional queue
    held in two transactional variables.

    Enqueues touch only [back]; dequeues usually touch only [front]
    (amortised O(1)), so producers and consumers rarely conflict.  The
    queue demonstrates composing STM operations with {!Stm.S.orelse}:
    {!dequeue_or} falls back when the queue is empty without busy
    waiting in the caller. *)

open Polytm

module Make (S : Stm_intf.S) = struct
  type 'a t = { stm : S.t; front : 'a list S.tvar; back : 'a list S.tvar }

  let create stm = { stm; front = S.tvar stm []; back = S.tvar stm [] }

  let enqueue_tx tx t x = S.write tx t.back (x :: S.read tx t.back)

  let dequeue_opt_tx tx t =
    match S.read tx t.front with
    | x :: rest ->
        S.write tx t.front rest;
        Some x
    | [] -> (
        match List.rev (S.read tx t.back) with
        | [] -> None
        | x :: rest ->
            S.write tx t.back [];
            S.write tx t.front rest;
            Some x)

  let enqueue t x =
    S.atomically ~label:"enqueue" t.stm (fun tx -> enqueue_tx tx t x)

  let dequeue_opt t =
    S.atomically ~label:"dequeue" t.stm (fun tx -> dequeue_opt_tx tx t)

  (* Blocking take: on empty, [S.retry] parks the transaction until a
     producer's commit writes [front] or [back] — both are in the read
     set by the time emptiness is observed, so either enqueue path wakes
     us.  No polling loop anywhere: the consumer sleeps in the runtime
     until a commit notifies it. *)
  let take_tx tx t =
    match dequeue_opt_tx tx t with Some x -> x | None -> S.retry tx

  let take t = S.atomically ~label:"take" t.stm (fun tx -> take_tx tx t)

  (* [dequeue_or t f] returns an element or, atomically with the
     emptiness observation, the fallback. *)
  let dequeue_or t fallback =
    S.atomically ~label:"dequeue-or" t.stm (fun tx ->
        S.orelse tx
          (fun tx ->
            match dequeue_opt_tx tx t with
            | Some x -> x
            | None -> S.abort tx)
          (fun _ -> fallback))

  let length t =
    S.atomically ~label:"length" t.stm (fun tx ->
        List.length (S.read tx t.front) + List.length (S.read tx t.back))

  let is_empty t = length t = 0

  let to_list t =
    S.atomically ~label:"to-list" t.stm (fun tx ->
        S.read tx t.front @ List.rev (S.read tx t.back))

  (* Move every element of [src] into [dst] in one atomic step —
     composition across two queues (Section 2.2's rename example,
     queue-flavoured). *)
  let transfer_all ~src ~dst =
    S.atomically ~label:"transfer-all" src.stm (fun tx ->
        let rec drain () =
          match dequeue_opt_tx tx src with
          | Some x ->
              enqueue_tx tx dst x;
              drain ()
          | None -> ()
        in
        drain ())
end
