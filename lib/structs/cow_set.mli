(** Copy-on-write array set — the stand-in for the paper's “existing
    concurrent collection” (Section 3.3 uses Java's
    [copyOnWriteArraySet] because lock-free structures lack an atomic
    [size]).

    Reads are lock-free scans of an immutable snapshot; updates copy
    the whole array under a writer lock; [size] is O(1) and atomic.
    Cost model (why array scans are cheaper per element than list
    hops) is documented in the implementation. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) : sig
  type t

  val create : unit -> t
  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool

  val size : t -> int
  (** Atomic: the length of the current immutable snapshot. *)

  val to_list : t -> int list
end
