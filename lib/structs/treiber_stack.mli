(** Treiber's lock-free stack: the classic CAS-retry baseline,
    companion to {!Stm_stack} (which adds what CAS alone cannot —
    composition across structures). *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val peek : 'a t -> 'a option

  val length : 'a t -> int
  (** Atomic (the head pointer snapshots the whole immutable spine). *)

  val to_list : 'a t -> 'a list
  (** Top to bottom. *)
end
