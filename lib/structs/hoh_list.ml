(** Hand-over-hand (lock-coupling) sorted linked list — the paper's
    Algorithm 3.

    Every node carries its own spinlock; a traversal holds at most two
    locks at a time, releasing the predecessor only after the
    successor is locked.  This is the construction Section 3.1 uses to
    show what locks can express that classic transactions cannot:
    atomicity of neighbouring accesses without whole-parse atomicity.

    [size] is a lock-coupled traversal count: it is {e not} an atomic
    snapshot (the count may correspond to no instantaneous state),
    which is exactly the [java.util.concurrent] limitation that forces
    the paper's copy-on-write workaround. *)

module Make (R : Polytm_runtime.Runtime_intf.RUNTIME) = struct
  module Lock = Polytm_runtime.Spinlock.Make (R)

  type node = { value : int; lock : Lock.t; next : node option R.atomic }

  type t = { head : node }  (* sentinel, value = min_int *)

  let create () =
    { head = { value = min_int; lock = Lock.create (); next = R.atomic None } }

  (* Walk with lock coupling until [prev] is the last node with value
     < v; returns with [prev] (and [curr] when present) locked. *)
  let rec locate_locked prev v =
    match R.get prev.next with
    | None -> (prev, None)
    | Some curr ->
        Lock.lock curr.lock;
        if curr.value < v then begin
          Lock.unlock prev.lock;
          locate_locked curr v
        end
        else (prev, Some curr)

  let with_position t v f =
    Lock.lock t.head.lock;
    let prev, curr = locate_locked t.head v in
    let result = f prev curr in
    (match curr with Some c -> Lock.unlock c.lock | None -> ());
    Lock.unlock prev.lock;
    result

  let contains t v =
    with_position t v (fun _ curr ->
        match curr with Some c -> c.value = v | None -> false)

  let add t v =
    with_position t v (fun prev curr ->
        match curr with
        | Some c when c.value = v -> false
        | _ ->
            let node =
              { value = v; lock = Lock.create (); next = R.atomic curr }
            in
            R.set prev.next (Some node);
            true)

  let remove t v =
    with_position t v (fun prev curr ->
        match curr with
        | Some c when c.value = v ->
            R.set prev.next (R.get c.next);
            true
        | Some _ | None -> false)

  (* Lock-coupled count: linearizable per-step but not an atomic
     snapshot of the whole list. *)
  let size t =
    Lock.lock t.head.lock;
    let rec go n prev =
      match R.get prev.next with
      | None ->
          Lock.unlock prev.lock;
          n
      | Some curr ->
          Lock.lock curr.lock;
          Lock.unlock prev.lock;
          go (n + 1) curr
    in
    go 0 t.head

  let to_list t =
    Lock.lock t.head.lock;
    let rec go acc prev =
      match R.get prev.next with
      | None ->
          Lock.unlock prev.lock;
          List.rev acc
      | Some curr ->
          Lock.lock curr.lock;
          Lock.unlock prev.lock;
          go (curr.value :: acc) curr
    in
    go [] t.head
end
