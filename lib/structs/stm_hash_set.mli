(** Transactional hash set built by {e composing} {!Stm_list_set}
    buckets with nested transactions (Section 2.2 of the paper).

    Per-element operations are single-bucket transactions; the atomic
    [size] wraps every bucket's own [size] in one outer transaction —
    the nested [atomically] calls flatten, so the whole scan is one
    snapshot (or one classic transaction) without touching the bucket
    code.  That is the composition story: Bob reuses Alice's bucket
    operations without understanding their synchronisation. *)

open Polytm

module Make (S : Stm_intf.S) : sig
  type t

  val create :
    ?parse_sem:Semantics.t ->
    ?size_sem:Semantics.t ->
    ?buckets:int ->
    S.t ->
    t
  (** [create stm] makes an empty set with [buckets] power-of-two
      buckets (default 16); semantics as in {!Stm_list_set.Make.create}. *)

  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool

  val size : t -> int
  (** Atomic count across every bucket — one flattened transaction. *)

  val to_list : t -> int list
  (** Ascending elements, as one atomic (or snapshot) scan. *)
end
