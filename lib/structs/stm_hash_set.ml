(** Transactional hash set: fixed bucket array of transactional sorted
    lists, composed with nested transactions.

    The point of this structure is compositionality (Section 2.2):
    each bucket is an off-the-shelf {!Stm_list_set}, and the atomic
    [size] is written by wrapping the per-bucket operations in one
    outer transaction — the nested [atomically] calls flatten into it,
    so the whole scan is one snapshot (or one classic transaction)
    without touching the bucket code. *)

open Polytm

module Make (S : Stm_intf.S) = struct
  module Bucket = Stm_list_set.Make (S)

  type t = {
    stm : S.t;
    buckets : Bucket.t array;
    size_sem : Semantics.t;
  }

  let create ?(parse_sem = Semantics.Classic) ?(size_sem = Semantics.Classic)
      ?(buckets = 16) stm =
    {
      stm;
      buckets =
        Array.init buckets (fun _ -> Bucket.create ~parse_sem ~size_sem stm);
      size_sem;
    }

  (* Cheap deterministic integer mix so that consecutive keys spread. *)
  let bucket t v =
    let h = v * 0x9E3779B1 in
    t.buckets.((h lxor (h lsr 16)) land (Array.length t.buckets - 1))

  let add t v = Bucket.add (bucket t v) v
  let remove t v = Bucket.remove (bucket t v) v
  let contains t v = Bucket.contains (bucket t v) v

  (* One outer transaction spanning every bucket: the nested
     [Bucket.size] transactions flatten into it. *)
  let size t =
    S.atomically ~sem:t.size_sem ~label:"size" t.stm (fun _tx ->
        Array.fold_left (fun acc b -> acc + Bucket.size b) 0 t.buckets)

  let to_list t =
    S.atomically ~sem:t.size_sem ~label:"to-list" t.stm (fun _tx ->
        List.sort compare
          (Array.fold_left (fun acc b -> Bucket.to_list b @ acc) [] t.buckets))
end
