(** A reusable growable flat array.

    The STM's read set and undo/cleanup logs are [Vec]s: a push per
    transactional read with no per-entry allocation (amortised array
    doubling only), validation as a cache-friendly array scan, and
    [clear]/[truncate] that keep the backing store so a retrying
    transaction reuses its descriptor instead of reallocating it.

    Cleared or truncated slots are overwritten with the [dummy]
    element passed at creation, so dropped entries do not keep dead
    objects reachable across reuses. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] makes an empty vector.  [dummy] fills unused
    capacity; it is never returned by the accessors. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-store size (monotone under reuse). *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument outside [0, length). *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument outside [0, length). *)

val push : 'a t -> 'a -> unit
(** Append, doubling the backing store when full. *)

val clear : 'a t -> unit
(** Empty the vector, keeping its capacity. *)

val truncate : 'a t -> int -> unit
(** [truncate t n] drops every element at index >= [n]; no effect when
    [n >= length t]. *)

val iter : ('a -> unit) -> 'a t -> unit
val iter_rev : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order,
    compacting in place (the STM's early release). *)

val to_array : 'a t -> 'a array
(** Fresh array copy of the live elements (savepoints). *)

val load : 'a t -> 'a array -> unit
(** Replace the contents with a copy of the array (savepoint
    restore). *)

val to_list : 'a t -> 'a list
