(** An open-addressed, int-keyed hash table with a Bloom-style
    signature fast path and insertion-order entry storage.

    Built for the STM's write set:

    - {!find} is screened by a 63-bit two-probe signature, so a lookup
      for a key that was never inserted — the overwhelmingly common
      case, a transactional read of an unwritten location — usually
      costs two bit operations and no memory probe;
    - entries keep a dense insertion-order index ([0 .. length-1]):
      values can be updated in place through {!set_at} without
      re-hashing, and a savepoint is just the current {!length} plus
      the saved values;
    - {!iter_ascending} visits entries in ascending key order (the
      STM's deadlock-free lock-acquisition order) using a reusable
      scratch array — no per-commit allocation;
    - {!reset} and {!truncate} keep the backing stores, so a retrying
      transaction reuses its descriptor.

    Keys must be non-negative.  Not thread-safe: one table belongs to
    one transaction descriptor. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] makes an empty table.  [dummy] fills unused value
    slots; it is never returned by the accessors. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val maybe_mem : 'a t -> int -> bool
(** Signature test: [false] means the key is definitely absent;
    [true] means a {!find} probe is needed (false positives shrink as
    the table stays small). *)

val find : 'a t -> int -> int
(** Entry index of the key, or [-1] when absent.  Includes the
    signature fast path. *)

val put : 'a t -> int -> 'a -> int
(** Insert or overwrite; returns the entry index.
    @raise Invalid_argument on a negative key. *)

val add : 'a t -> int -> 'a -> int
(** Insert a key the caller knows is absent (e.g. after a negative
    {!find}), skipping the duplicate check; returns the entry index.
    Inserting a present key this way corrupts the table.
    @raise Invalid_argument on a negative key. *)

val key_at : 'a t -> int -> int
val value_at : 'a t -> int -> 'a
val set_at : 'a t -> int -> 'a -> unit
(** Entry accessors by dense index; indices are stable until
    {!truncate} or {!reset}.
    @raise Invalid_argument outside [0, length). *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Insertion order. *)

val iter_ascending : (int -> 'a -> unit) -> 'a t -> unit
(** Ascending key order (commit-time lock acquisition). *)

val truncate : 'a t -> int -> unit
(** Drop every entry with index >= [n] (savepoint rollback), rebuild
    the index and tighten the signature. *)

val reset : 'a t -> unit
(** Empty the table, keeping capacity. *)
