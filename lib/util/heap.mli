(** Imperative binary min-heap with a user-supplied priority.

    The simulator's event scheduler keeps every runnable virtual thread
    in such a heap keyed by (virtual clock, arrival sequence), so the
    thread with the smallest clock is always dispatched next and ties
    break deterministically. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] when empty. *)

val peek : 'a t -> 'a option

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument when the heap is empty. *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order; does not modify the heap. *)

val clear : 'a t -> unit

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Keep only the elements satisfying the predicate; O(n) rebuild. *)
