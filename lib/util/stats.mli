(** Small statistics toolkit used by the benchmark harness.

    Provides streaming mean/variance (Welford's algorithm), percentile
    extraction, and simple fixed-width histograms for reporting abort
    and latency distributions. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

(** Streaming accumulator. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val variance : t -> float
  (** Sample variance (Bessel-corrected); [0.] when fewer than two
      observations were added. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val summary : t -> summary
  (** Snapshot of the accumulated statistics. *)
end

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val percentile : float array -> float -> float
(** [percentile data p] with [p] in [\[0,100\]] returns the linearly
    interpolated percentile.  [data] need not be sorted; it is copied.
    @raise Invalid_argument on an empty array or [p] outside range. *)

val median : float array -> float

type histogram = {
  bucket_width : float;
  lo : float;
  counts : int array;  (** one cell per bucket, plus overflow in the last *)
}

val histogram : buckets:int -> lo:float -> hi:float -> float array -> histogram
(** Fixed-width histogram of the data between [lo] and [hi]; samples
    below [lo] clamp to the first bucket and above [hi] to the last. *)

val pp_summary : Format.formatter -> summary -> unit

(** HDR-style latency histogram: log-linear buckets (relative
    quantization error <= 1/64), O(1) record, constant memory, and
    cheap merging — one instance per domain, merged after joining.
    Values are non-negative integers in the caller's unit (nanoseconds
    on real hardware, virtual ticks under the simulator); negative
    samples clamp to 0. *)
module Hist : sig
  type t

  val create : unit -> t
  val clear : t -> unit

  val record : t -> int -> unit
  (** O(1): one array increment, no allocation. *)

  val count : t -> int

  val min : t -> int
  (** Exact smallest recorded value; [0] when empty. *)

  val max : t -> int
  (** Exact largest recorded value; [0] when empty. *)

  val mean : t -> float

  val merge_into : into:t -> t -> unit
  (** Add every bucket of the source into [into] (the source is left
      untouched).  This is how per-domain histograms combine after the
      domains are joined. *)

  val percentile : t -> float -> int
  (** [percentile t p] with [p] in [\[0,100\]]: the upper bound of the
      bucket containing the rank-[ceil (p/100 * count)] sample, clamped
      to the exact observed min/max (so [percentile t 0.] and
      [percentile t 100.] are exact).  [0] when empty.
      @raise Invalid_argument when [p] is outside [\[0,100\]]. *)

  val buckets : t -> (int * int * int) list
  (** Non-empty buckets in ascending order as [(lo, hi, count)] with
      inclusive value bounds — the raw export for JSON figures. *)

  val pp : Format.formatter -> t -> unit
  (** One line: count, mean, p50/p95/p99, max. *)
end
