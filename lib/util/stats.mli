(** Small statistics toolkit used by the benchmark harness.

    Provides streaming mean/variance (Welford's algorithm), percentile
    extraction, and simple fixed-width histograms for reporting abort
    and latency distributions. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

(** Streaming accumulator. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val variance : t -> float
  (** Sample variance (Bessel-corrected); [0.] when fewer than two
      observations were added. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val summary : t -> summary
  (** Snapshot of the accumulated statistics. *)
end

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val percentile : float array -> float -> float
(** [percentile data p] with [p] in [\[0,100\]] returns the linearly
    interpolated percentile.  [data] need not be sorted; it is copied.
    @raise Invalid_argument on an empty array or [p] outside range. *)

val median : float array -> float

type histogram = {
  bucket_width : float;
  lo : float;
  counts : int array;  (** one cell per bucket, plus overflow in the last *)
}

val histogram : buckets:int -> lo:float -> hi:float -> float array -> histogram
(** Fixed-width histogram of the data between [lo] and [hi]; samples
    below [lo] clamp to the first bucket and above [hi] to the last. *)

val pp_summary : Format.formatter -> summary -> unit
