(* Entries live in insertion order in [keys]/[vals]; [slots] is the
   open-addressed index (entry index or -1) over a power-of-two array;
   [signature] is a 63-bit two-probe Bloom filter of every key ever
   inserted since the last [reset]/[truncate]. *)

type 'a t = {
  dummy : 'a;
  mutable keys : int array;
  mutable vals : 'a array;
  mutable count : int;
  mutable slots : int array;
  mutable mask : int;  (** [Array.length slots - 1]; -1 while empty *)
  mutable signature : int;
  mutable order : int array;  (** scratch for {!iter_ascending} *)
}

let create ?(capacity = 0) dummy =
  {
    dummy;
    keys = (if capacity <= 0 then [||] else Array.make capacity 0);
    vals = (if capacity <= 0 then [||] else Array.make capacity dummy);
    count = 0;
    slots = [||];
    mask = -1;
    signature = 0;
    order = [||];
  }

let[@inline] length t = t.count
let[@inline] is_empty t = t.count = 0

(* Multiplicative mixing: tvar ids are sequential small ints, so
   spread them before masking with a power of two. *)
let[@inline] hash k =
  let h = k * 0x9E3779B1 in
  (h lxor (h lsr 16)) land max_int

(* Two probe bits inside the 63 usable bits of an OCaml int: the first
   in [0,31], the second in [31,62]. *)
let[@inline] key_signature k =
  let h = hash k in
  (1 lsl (h land 31)) lor (1 lsl (31 + ((h lsr 5) land 31)))

let[@inline] maybe_mem t k =
  let s = key_signature k in
  t.signature land s = s

let rec probe t k i =
  match t.slots.(i) with
  | -1 -> -1
  | e when t.keys.(e) = k -> e
  | _ -> probe t k ((i + 1) land t.mask)

(* Entry index for [k], or -1; the Bloom signature screens out misses
   without touching the slot array (the hot case: a transactional read
   of a location never written by this transaction). *)
let[@inline] find t k =
  if t.count = 0 || not (maybe_mem t k) then -1
  else probe t k (hash k land t.mask)

let insert_slot t k e =
  let rec free i =
    if t.slots.(i) = -1 then t.slots.(i) <- e else free ((i + 1) land t.mask)
  in
  free (hash k land t.mask)

let rebuild_slots t size =
  t.slots <- Array.make size (-1);
  t.mask <- size - 1;
  for e = 0 to t.count - 1 do
    insert_slot t t.keys.(e) e
  done

let grow_entries t =
  let cap = Array.length t.keys in
  if t.count = cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nkeys = Array.make ncap 0 and nvals = Array.make ncap t.dummy in
    Array.blit t.keys 0 nkeys 0 t.count;
    Array.blit t.vals 0 nvals 0 t.count;
    t.keys <- nkeys;
    t.vals <- nvals
  end

let add t k v =
  if k < 0 then invalid_arg "Flat_table.add: negative key";
  grow_entries t;
  (* Keep the load factor at or below 1/2. *)
  if (t.count + 1) * 2 > t.mask + 1 then
    rebuild_slots t (max 16 ((t.mask + 1) * 2));
  let e = t.count in
  t.keys.(e) <- k;
  t.vals.(e) <- v;
  t.count <- e + 1;
  (* One hash feeds the slot probe and both signature bits. *)
  let h = hash k in
  let rec free i =
    if t.slots.(i) = -1 then t.slots.(i) <- e else free ((i + 1) land t.mask)
  in
  free (h land t.mask);
  t.signature <-
    t.signature lor (1 lsl (h land 31)) lor (1 lsl (31 + ((h lsr 5) land 31)));
  e

let put t k v =
  if k < 0 then invalid_arg "Flat_table.put: negative key";
  let e = find t k in
  if e >= 0 then begin
    t.vals.(e) <- v;
    e
  end
  else add t k v

let key_at t e =
  if e < 0 || e >= t.count then invalid_arg "Flat_table.key_at";
  t.keys.(e)

let value_at t e =
  if e < 0 || e >= t.count then invalid_arg "Flat_table.value_at";
  t.vals.(e)

let set_at t e v =
  if e < 0 || e >= t.count then invalid_arg "Flat_table.set_at";
  t.vals.(e) <- v

let iter f t =
  for e = 0 to t.count - 1 do
    f t.keys.(e) t.vals.(e)
  done

(* In-place quicksort (middle pivot, with insertion sort for short
   spans) of the entry-index prefix [order[lo..hi]] keyed by [keys]:
   no allocation, monomorphic int comparisons, well-behaved on the
   already-sorted input of a repeated commit-time iteration. *)
let rec sort_range keys order lo hi =
  if hi - lo < 8 then
    for i = lo + 1 to hi do
      let e = order.(i) and k = keys.(order.(i)) in
      let j = ref (i - 1) in
      while !j >= lo && keys.(order.(!j)) > k do
        order.(!j + 1) <- order.(!j);
        decr j
      done;
      order.(!j + 1) <- e
    done
  else begin
    let pivot = keys.(order.((lo + hi) / 2)) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while keys.(order.(!i)) < pivot do
        incr i
      done;
      while keys.(order.(!j)) > pivot do
        decr j
      done;
      if !i <= !j then begin
        let tmp = order.(!i) in
        order.(!i) <- order.(!j);
        order.(!j) <- tmp;
        incr i;
        decr j
      end
    done;
    if lo < !j then sort_range keys order lo !j;
    if !i < hi then sort_range keys order !i hi
  end

(* Keys are unique, so insertion order strictly ascending means the
   sorted order IS the insertion order — the common case for write
   sets built by ordered traversals, worth a linear scan to detect. *)
let inserted_ascending t =
  let ok = ref true in
  let i = ref 1 in
  while !ok && !i < t.count do
    if t.keys.(!i - 1) > t.keys.(!i) then ok := false else incr i
  done;
  !ok

let iter_ascending f t =
  if t.count = 1 then f t.keys.(0) t.vals.(0)
  else if t.count > 1 then
    if inserted_ascending t then iter f t
    else begin
      if Array.length t.order < t.count then
        t.order <- Array.make (Array.length t.keys) 0;
      for i = 0 to t.count - 1 do
        t.order.(i) <- i
      done;
      sort_range t.keys t.order 0 (t.count - 1);
      for i = 0 to t.count - 1 do
        let e = t.order.(i) in
        f t.keys.(e) t.vals.(e)
      done
    end

let recompute_signature t =
  let s = ref 0 in
  for e = 0 to t.count - 1 do
    s := !s lor key_signature t.keys.(e)
  done;
  t.signature <- !s

let truncate t n =
  if n < 0 then invalid_arg "Flat_table.truncate";
  if n < t.count then begin
    Array.fill t.vals n (t.count - n) t.dummy;
    t.count <- n;
    if t.mask >= 0 then begin
      Array.fill t.slots 0 (t.mask + 1) (-1);
      for e = 0 to t.count - 1 do
        insert_slot t t.keys.(e) e
      done
    end;
    recompute_signature t
  end

let reset t =
  if t.count > 0 then begin
    Array.fill t.vals 0 t.count t.dummy;
    if t.mask >= 0 then Array.fill t.slots 0 (t.mask + 1) (-1);
    t.count <- 0;
    t.signature <- 0
  end
