type 'a t = { dummy : 'a; mutable data : 'a array; mutable len : int }

let create ?(capacity = 0) dummy =
  {
    dummy;
    data = (if capacity <= 0 then [||] else Array.make capacity dummy);
    len = 0;
  }

let[@inline] length t = t.len
let[@inline] is_empty t = t.len = 0
let capacity t = Array.length t.data

let[@inline never] erase t =
  (* Erase, so entries dropped by reuse do not keep dead objects
     reachable across transactions. *)
  Array.fill t.data 0 t.len t.dummy

let[@inline] clear t =
  if t.len > 0 then erase t;
  t.len <- 0

let[@inline] get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  Array.unsafe_get t.data i

let[@inline] set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  Array.unsafe_set t.data i x

let[@inline never] grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap t.dummy in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let[@inline] push t x =
  if t.len = Array.length t.data then grow t;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let truncate t n =
  if n < 0 then invalid_arg "Vec.truncate";
  if n < t.len then begin
    Array.fill t.data n (t.len - n) t.dummy;
    t.len <- n
  end

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iter_rev f t =
  for i = t.len - 1 downto 0 do
    f (Array.unsafe_get t.data i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let filter_in_place keep t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let x = Array.unsafe_get t.data i in
    if keep x then begin
      if !j < i then Array.unsafe_set t.data !j x;
      incr j
    end
  done;
  truncate t !j

let to_array t = Array.sub t.data 0 t.len

let load t arr =
  clear t;
  let n = Array.length arr in
  if n > Array.length t.data then t.data <- Array.make (max n 8) t.dummy;
  Array.blit arr 0 t.data 0 n;
  t.len <- n

let to_list t = List.init t.len (fun i -> Array.unsafe_get t.data i)
