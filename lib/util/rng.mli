(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the library (workload generators,
    random schedulers, property tests) draws from an explicit [Rng.t]
    so that runs are reproducible from a single seed.  The generator is
    the SplitMix64 algorithm of Steele, Lea and Flood, which has a
    64-bit state, passes BigCrush, and supports cheap splitting into
    statistically independent streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived
    from [seed].  Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the rest of [t]'s stream.  Used to
    give each simulated thread its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive.
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** Uniform boolean. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element of [arr].
    @raise Invalid_argument if [arr] is empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
