type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  (* Welford's online update: numerically stable single-pass variance. *)
  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let summary t =
    { n = t.n; mean = t.mean; stddev = stddev t; min = t.min; max = t.max }
end

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentile data p =
  if Array.length data = 0 then invalid_arg "Stats.percentile: empty data";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median data = percentile data 50.

type histogram = {
  bucket_width : float;
  lo : float;
  counts : int array;
}

let histogram ~buckets ~lo ~hi data =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: hi must exceed lo";
  let width = (hi -. lo) /. float_of_int buckets in
  let counts = Array.make buckets 0 in
  let clamp i = Stdlib.max 0 (Stdlib.min (buckets - 1) i) in
  Array.iter
    (fun x ->
      let i = clamp (int_of_float ((x -. lo) /. width)) in
      counts.(i) <- counts.(i) + 1)
    data;
  { bucket_width = width; lo; counts }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g stddev=%.4g min=%.4g max=%.4g" s.n s.mean
    s.stddev s.min s.max

(* ---- HDR-style latency histogram --------------------------------------- *)

module Hist = struct
  (* Log-linear bucketing (the HdrHistogram layout): values below
     [2 * sub_count] get their own bucket; above that, each power of
     two is split into [sub_count] linear sub-buckets, so the relative
     quantization error is bounded by 1/sub_count everywhere.  With
     [sub_bits = 6] that is <= 1.6% — plenty for latency percentiles —
     and the whole non-negative int range fits in < 4k buckets. *)

  let sub_bits = 6
  let sub_count = 1 lsl sub_bits

  (* Highest bucket index reachable for max_int (msb 61 on 64-bit):
     shift = 61 - sub_bits, top < 2 * sub_count. *)
  let num_buckets = ((62 - sub_bits) * sub_count) + (2 * sub_count)

  type t = {
    counts : int array;
    mutable total : int;
    mutable sum : float;  (** float: sums of ns values overflow int *)
    mutable vmin : int;
    mutable vmax : int;
  }

  let create () =
    {
      counts = Array.make num_buckets 0;
      total = 0;
      sum = 0.;
      vmin = max_int;
      vmax = 0;
    }

  let clear t =
    Array.fill t.counts 0 num_buckets 0;
    t.total <- 0;
    t.sum <- 0.;
    t.vmin <- max_int;
    t.vmax <- 0

  let msb v =
    (* Position of the highest set bit (v > 0), by binary search. *)
    let v = ref v and r = ref 0 in
    if !v lsr 32 <> 0 then (r := !r + 32; v := !v lsr 32);
    if !v lsr 16 <> 0 then (r := !r + 16; v := !v lsr 16);
    if !v lsr 8 <> 0 then (r := !r + 8; v := !v lsr 8);
    if !v lsr 4 <> 0 then (r := !r + 4; v := !v lsr 4);
    if !v lsr 2 <> 0 then (r := !r + 2; v := !v lsr 2);
    if !v lsr 1 <> 0 then incr r;
    !r

  let index v =
    if v < 2 * sub_count then v
    else
      let m = msb v in
      let shift = m - sub_bits in
      (shift * sub_count) + (v lsr shift)

  (* Inclusive value range covered by bucket [i] (inverse of [index]). *)
  let bounds i =
    if i < 2 * sub_count then (i, i)
    else
      let shift = (i / sub_count) - 1 in
      let top = i - (shift * sub_count) in
      (top lsl shift, ((top + 1) lsl shift) - 1)

  let record t v =
    let v = if v < 0 then 0 else v in
    let i = index v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. float_of_int v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let count t = t.total
  let max t = if t.total = 0 then 0 else t.vmax
  let min t = if t.total = 0 then 0 else t.vmin
  let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total

  let merge_into ~into src =
    Array.iteri
      (fun i c -> if c <> 0 then into.counts.(i) <- into.counts.(i) + c)
      src.counts;
    into.total <- into.total + src.total;
    into.sum <- into.sum +. src.sum;
    if src.total > 0 then begin
      if src.vmin < into.vmin then into.vmin <- src.vmin;
      if src.vmax > into.vmax then into.vmax <- src.vmax
    end

  let percentile t p =
    if p < 0. || p > 100. then invalid_arg "Stats.Hist.percentile";
    if t.total = 0 then 0
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100. *. float_of_int t.total)) in
        if r < 1 then 1 else Stdlib.min r t.total
      in
      let acc = ref 0 and i = ref 0 and res = ref t.vmax in
      (try
         while !i < num_buckets do
           acc := !acc + t.counts.(!i);
           if !acc >= rank then begin
             (* Report the bucket's upper bound, clamped to the true
                extremes so p0/p100 are exact. *)
             let _, hi = bounds !i in
             res := Stdlib.max t.vmin (Stdlib.min hi t.vmax);
             raise Exit
           end;
           incr i
         done
       with Exit -> ());
      !res
    end

  let buckets t =
    let out = ref [] in
    for i = num_buckets - 1 downto 0 do
      if t.counts.(i) <> 0 then
        let lo, hi = bounds i in
        out := (lo, hi, t.counts.(i)) :: !out
    done;
    !out

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d" (count t)
      (mean t) (percentile t 50.) (percentile t 95.) (percentile t 99.)
      (max t)
end
