type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  (* Welford's online update: numerically stable single-pass variance. *)
  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let summary t =
    { n = t.n; mean = t.mean; stddev = stddev t; min = t.min; max = t.max }
end

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentile data p =
  if Array.length data = 0 then invalid_arg "Stats.percentile: empty data";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median data = percentile data 50.

type histogram = {
  bucket_width : float;
  lo : float;
  counts : int array;
}

let histogram ~buckets ~lo ~hi data =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: hi must exceed lo";
  let width = (hi -. lo) /. float_of_int buckets in
  let counts = Array.make buckets 0 in
  let clamp i = Stdlib.max 0 (Stdlib.min (buckets - 1) i) in
  Array.iter
    (fun x ->
      let i = clamp (int_of_float ((x -. lo) /. width)) in
      counts.(i) <- counts.(i) + 1)
    data;
  { bucket_width = width; lo; counts }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g stddev=%.4g min=%.4g max=%.4g" s.n s.mean
    s.stddev s.min s.max
