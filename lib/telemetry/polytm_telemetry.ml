(* Implementation notes live in the interface; this file keeps only
   the mechanics. *)

type cause =
  | Read_validation
  | Lock_busy
  | Elastic_cut
  | Snapshot_overwrite
  | Cm_kill
  | Explicit

let all_causes =
  [ Read_validation; Lock_busy; Elastic_cut; Snapshot_overwrite; Cm_kill;
    Explicit ]

let num_causes = List.length all_causes

let cause_index = function
  | Read_validation -> 0
  | Lock_busy -> 1
  | Elastic_cut -> 2
  | Snapshot_overwrite -> 3
  | Cm_kill -> 4
  | Explicit -> 5

let cause_label = function
  | Read_validation -> "read-validation"
  | Lock_busy -> "lock-busy"
  | Elastic_cut -> "elastic-cut"
  | Snapshot_overwrite -> "snapshot-overwrite"
  | Cm_kill -> "cm-kill"
  | Explicit -> "explicit"

let cause_short = function
  | Read_validation -> "rdval"
  | Lock_busy -> "lockb"
  | Elastic_cut -> "cut"
  | Snapshot_overwrite -> "snap"
  | Cm_kill -> "kill"
  | Explicit -> "expl"

type kind =
  | Begin of { sem : string; attempt : int }
  | Read of { loc : int }
  | Write of { loc : int }
  | Lock_acquire of { loc : int }
  | Commit of { reads : int; writes : int; lock_hold : int }
  | Abort of { cause : cause; reads : int; writes : int }
  | Serialize of { attempt : int }
  | Budget_exhausted of { attempts : int; cause : cause }
  | Park of { locs : int }
  | Wake of { timed_out : bool }

type event = {
  time : int;
  thread : int;
  serial : int;
  label : string;
  kind : kind;
}

type sink = { emit : event -> unit }

let null = { emit = (fun _ -> ()) }

let fan_out sinks =
  match sinks with
  | [] -> null
  | [ s ] -> s
  | sinks -> { emit = (fun e -> List.iter (fun s -> s.emit e) sinks) }

let is_access e = match e.kind with Read _ | Write _ -> true | _ -> false

(* ---------------------------------------------------------------- *)
(* Recorder                                                          *)

module Recorder = struct
  type t = {
    capacity : int;
    accesses : bool;
    mutable rev : event list;
    mutable kept : int;
    mutable dropped : int;
  }

  let create ?(capacity = 2_000_000) ?(accesses = true) () =
    { capacity; accesses; rev = []; kept = 0; dropped = 0 }

  let sink t =
    {
      emit =
        (fun e ->
          if (not t.accesses) && is_access e then ()
          else if t.kept >= t.capacity then t.dropped <- t.dropped + 1
          else begin
            t.rev <- e :: t.rev;
            t.kept <- t.kept + 1
          end);
    }

  let events t = List.rev t.rev
  let dropped t = t.dropped

  let clear t =
    t.rev <- [];
    t.kept <- 0;
    t.dropped <- 0
end

(* ---------------------------------------------------------------- *)
(* Ring                                                              *)

module Ring = struct
  (* Write cursors are spread [pad] ints apart so two lanes never
     share a cache line (64-byte lines hold 8 boxed-int words; 16 is
     comfortably clear).  Each lane has a single writer, so the bump
     is a plain load/store — no CAS on the hot path. *)
  let pad = 16

  type t = {
    lanes : int;  (** power of two *)
    capacity : int;  (** per lane, power of two *)
    slots : event option array array;  (** [lanes][capacity] *)
    cursors : int array;  (** lane i's count at [i * pad] *)
    mutable lost : int;  (** overwrites carried over past drains *)
  }

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let create ?(lanes = 64) ?(capacity = 8192) () =
    let lanes = pow2 (max 1 lanes) 1 in
    let capacity = pow2 (max 1 capacity) 1 in
    {
      lanes;
      capacity;
      slots = Array.init lanes (fun _ -> Array.make capacity None);
      cursors = Array.make (lanes * pad) 0;
      lost = 0;
    }

  let sink t =
    {
      emit =
        (fun e ->
          let lane = e.thread land (t.lanes - 1) in
          let c = t.cursors.(lane * pad) in
          t.slots.(lane).(c land (t.capacity - 1)) <- Some e;
          t.cursors.(lane * pad) <- c + 1);
    }

  let overwritten t =
    let n = ref t.lost in
    for lane = 0 to t.lanes - 1 do
      n := !n + max 0 (t.cursors.(lane * pad) - t.capacity)
    done;
    !n

  let drain t =
    let out = ref [] in
    for lane = 0 to t.lanes - 1 do
      let count = t.cursors.(lane * pad) in
      let first = max 0 (count - t.capacity) in
      t.lost <- t.lost + first;
      (* Oldest surviving entry first, so each lane contributes in
         emission order. *)
      for c = count - 1 downto first do
        match t.slots.(lane).(c land (t.capacity - 1)) with
        | Some e -> out := e :: !out
        | None -> ()
      done;
      Array.fill t.slots.(lane) 0 t.capacity None;
      t.cursors.(lane * pad) <- 0
    done;
    List.stable_sort
      (fun a b -> compare (a.time, a.thread, a.serial) (b.time, b.thread, b.serial))
      !out
end

(* ---------------------------------------------------------------- *)
(* Aggregation                                                       *)

module Agg = struct
  type site_stats = {
    site : string;
    attempts : int;
    commits : int;
    aborts : int;
    aborts_by_cause : (cause * int) list;
    retries : int;
    lock_acquires : int;
    reads_committed : int;
    max_read_set : int;
    writes_committed : int;
    lock_hold : int;
  }

  let abort_count s c =
    match List.assoc_opt c s.aborts_by_cause with Some n -> n | None -> 0

  type cell = {
    mutable a_attempts : int;
    mutable a_commits : int;
    a_causes : int array;  (** indexed by {!cause_index} *)
    mutable a_retries : int;
    mutable a_locks : int;
    mutable a_reads : int;
    mutable a_max_reads : int;
    mutable a_writes : int;
    mutable a_hold : int;
  }

  type t = (string, cell) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let cell t label =
    match Hashtbl.find_opt t label with
    | Some c -> c
    | None ->
        let c =
          {
            a_attempts = 0;
            a_commits = 0;
            a_causes = Array.make num_causes 0;
            a_retries = 0;
            a_locks = 0;
            a_reads = 0;
            a_max_reads = 0;
            a_writes = 0;
            a_hold = 0;
          }
        in
        Hashtbl.replace t label c;
        c

  let feed t e =
    let c = cell t e.label in
    match e.kind with
    | Begin { attempt; _ } ->
        c.a_attempts <- c.a_attempts + 1;
        if attempt > 1 then c.a_retries <- c.a_retries + 1
    | Read _ | Write _ -> ()
    | Lock_acquire _ -> c.a_locks <- c.a_locks + 1
    | Commit { reads; writes; lock_hold } ->
        c.a_commits <- c.a_commits + 1;
        c.a_reads <- c.a_reads + reads;
        c.a_max_reads <- max c.a_max_reads reads;
        c.a_writes <- c.a_writes + writes;
        c.a_hold <- c.a_hold + lock_hold
    | Abort { cause; reads; _ } ->
        c.a_causes.(cause_index cause) <- c.a_causes.(cause_index cause) + 1;
        c.a_max_reads <- max c.a_max_reads reads
    (* Liveness escalations and blocking park/wake annotate attempts
       that are already counted through their Begin/Commit/Abort
       events; the snapshot layout (and with it the JSON goldens)
       stays unchanged. *)
    | Serialize _ | Budget_exhausted _ | Park _ | Wake _ -> ()

  let sink t = { emit = feed t }

  let stats_of site (c : cell) =
    let aborts = Array.fold_left ( + ) 0 c.a_causes in
    {
      site;
      attempts = c.a_attempts;
      commits = c.a_commits;
      aborts;
      aborts_by_cause =
        List.map (fun k -> (k, c.a_causes.(cause_index k))) all_causes;
      retries = c.a_retries;
      lock_acquires = c.a_locks;
      reads_committed = c.a_reads;
      max_read_set = c.a_max_reads;
      writes_committed = c.a_writes;
      lock_hold = c.a_hold;
    }

  type snapshot = { sites : site_stats list; total : site_stats }

  let snapshot t =
    let sites =
      Hashtbl.fold (fun label c acc -> stats_of label c :: acc) t []
      |> List.sort (fun a b -> compare a.site b.site)
    in
    let total =
      List.fold_left
        (fun acc s ->
          {
            site = "TOTAL";
            attempts = acc.attempts + s.attempts;
            commits = acc.commits + s.commits;
            aborts = acc.aborts + s.aborts;
            aborts_by_cause =
              List.map
                (fun k -> (k, abort_count acc k + abort_count s k))
                all_causes;
            retries = acc.retries + s.retries;
            lock_acquires = acc.lock_acquires + s.lock_acquires;
            reads_committed = acc.reads_committed + s.reads_committed;
            max_read_set = max acc.max_read_set s.max_read_set;
            writes_committed = acc.writes_committed + s.writes_committed;
            lock_hold = acc.lock_hold + s.lock_hold;
          })
        (stats_of "TOTAL"
           {
             a_attempts = 0;
             a_commits = 0;
             a_causes = Array.make num_causes 0;
             a_retries = 0;
             a_locks = 0;
             a_reads = 0;
             a_max_reads = 0;
             a_writes = 0;
             a_hold = 0;
           })
        sites
    in
    { sites; total }

  let of_events events =
    let t = create () in
    List.iter (feed t) events;
    snapshot t
end

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let rec render b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f ->
        (* JSON has no NaN/infinity literals; degrade to null. *)
        if not (Float.is_finite f) then Buffer.add_string b "null"
        else if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.1f" f)
        else Buffer.add_string b (Printf.sprintf "%.6g" f)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            render b x)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            render b (Str k);
            Buffer.add_char b ':';
            render b v)
          fields;
        Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 1024 in
    render b j;
    Buffer.contents b

  let pp ppf j = Format.pp_print_string ppf (to_string j)
end

(* ---------------------------------------------------------------- *)
(* Exporters                                                         *)

module Export = struct
  let pp_table ppf (s : Agg.snapshot) =
    let open Agg in
    let site_width =
      List.fold_left
        (fun acc st -> max acc (String.length st.site))
        12 (s.total :: s.sites)
      + 2
    in
    Format.fprintf ppf "%-*s %8s %8s %7s %7s |" site_width "site" "attempts"
      "commits" "aborts" "retries";
    List.iter (fun c -> Format.fprintf ppf " %5s" (cause_short c)) all_causes;
    Format.fprintf ppf " | %9s %6s %9s@." "rds/cmt" "max" "lockhold";
    let width =
      site_width + 35 + (6 * num_causes) + 30
    in
    Format.fprintf ppf "%s@." (String.make width '-');
    let row st =
      Format.fprintf ppf "%-*s %8d %8d %7d %7d |" site_width st.site
        st.attempts st.commits st.aborts st.retries;
      List.iter
        (fun c -> Format.fprintf ppf " %5d" (abort_count st c))
        all_causes;
      let mean_reads =
        if st.commits = 0 then 0.
        else float_of_int st.reads_committed /. float_of_int st.commits
      in
      Format.fprintf ppf " | %9.1f %6d %9d@." mean_reads st.max_read_set
        st.lock_hold
    in
    List.iter row s.sites;
    if s.sites <> [] then Format.fprintf ppf "%s@." (String.make width '-');
    row s.total

  let site_json (st : Agg.site_stats) =
    Json.Obj
      [
        ("site", Json.Str st.site);
        ("attempts", Json.Int st.attempts);
        ("commits", Json.Int st.commits);
        ("aborts", Json.Int st.aborts);
        ( "aborts_by_cause",
          Json.Obj
            (List.map
               (fun (c, n) -> (cause_label c, Json.Int n))
               st.aborts_by_cause) );
        ("retries", Json.Int st.retries);
        ("lock_acquires", Json.Int st.lock_acquires);
        ("reads_committed", Json.Int st.reads_committed);
        ("max_read_set", Json.Int st.max_read_set);
        ("writes_committed", Json.Int st.writes_committed);
        ("lock_hold", Json.Int st.lock_hold);
      ]

  let snapshot_json (s : Agg.snapshot) =
    Json.Obj
      [
        ("sites", Json.Arr (List.map site_json s.sites));
        ("total", site_json s.total);
      ]

  let kind_json = function
    | Begin { sem; attempt } ->
        [ ("type", Json.Str "begin"); ("sem", Json.Str sem);
          ("attempt", Json.Int attempt) ]
    | Read { loc } -> [ ("type", Json.Str "read"); ("loc", Json.Int loc) ]
    | Write { loc } -> [ ("type", Json.Str "write"); ("loc", Json.Int loc) ]
    | Lock_acquire { loc } ->
        [ ("type", Json.Str "lock"); ("loc", Json.Int loc) ]
    | Commit { reads; writes; lock_hold } ->
        [ ("type", Json.Str "commit"); ("reads", Json.Int reads);
          ("writes", Json.Int writes); ("lock_hold", Json.Int lock_hold) ]
    | Abort { cause; reads; writes } ->
        [ ("type", Json.Str "abort"); ("cause", Json.Str (cause_label cause));
          ("reads", Json.Int reads); ("writes", Json.Int writes) ]
    | Serialize { attempt } ->
        [ ("type", Json.Str "serialize"); ("attempt", Json.Int attempt) ]
    | Budget_exhausted { attempts; cause } ->
        [ ("type", Json.Str "budget-exhausted");
          ("attempts", Json.Int attempts);
          ("cause", Json.Str (cause_label cause)) ]
    | Park { locs } -> [ ("type", Json.Str "park"); ("locs", Json.Int locs) ]
    | Wake { timed_out } ->
        [ ("type", Json.Str "wake"); ("timed_out", Json.Bool timed_out) ]

  let events_json events =
    Json.Arr
      (List.map
         (fun e ->
           Json.Obj
             (("time", Json.Int e.time) :: ("thread", Json.Int e.thread)
             :: ("serial", Json.Int e.serial) :: ("label", Json.Str e.label)
             :: kind_json e.kind))
         events)

  (* Chrome trace-event format: every attempt becomes one complete
     ("X") slice on its thread's lane, lock acquisitions become
     instant ("i") events.  Perfetto interprets [ts]/[dur] as
     microseconds; we map one tick (or one nanosecond, under domains)
     to one microsecond rather than scaling. *)
  let chrome_trace ?(process_name = "polytm") ?(extra = []) events =
    let slice_name label sem = if label = "" then "tx:" ^ sem else label in
    let threads = Hashtbl.create 8 in
    let pending = Hashtbl.create 64 in
    let out = ref [] in
    let push j = out := j :: !out in
    let complete ~(b : event) ~sem ~attempt ~ts_end ~outcome ~args =
      push
        (Json.Obj
           [
             ("name", Json.Str (slice_name b.label sem));
             ("cat", Json.Str "tx");
             ("ph", Json.Str "X");
             ("ts", Json.Int b.time);
             ("dur", Json.Int (max 1 (ts_end - b.time)));
             ("pid", Json.Int 0);
             ("tid", Json.Int b.thread);
             ( "args",
               Json.Obj
                 (("serial", Json.Int b.serial) :: ("sem", Json.Str sem)
                 :: ("attempt", Json.Int attempt)
                 :: ("outcome", Json.Str outcome) :: args) );
           ])
    in
    List.iter
      (fun e ->
        if not (Hashtbl.mem threads e.thread) then
          Hashtbl.replace threads e.thread ();
        match e.kind with
        | Begin { sem; attempt } ->
            Hashtbl.replace pending e.serial (e, sem, attempt)
        | Read _ | Write _ -> ()
        | Lock_acquire { loc } ->
            push
              (Json.Obj
                 [
                   ("name", Json.Str "lock-acquire");
                   ("cat", Json.Str "lock");
                   ("ph", Json.Str "i");
                   ("ts", Json.Int e.time);
                   ("pid", Json.Int 0);
                   ("tid", Json.Int e.thread);
                   ("s", Json.Str "t");
                   ("args", Json.Obj [ ("loc", Json.Int loc) ]);
                 ])
        | Serialize { attempt } ->
            push
              (Json.Obj
                 [
                   ("name", Json.Str "serialize");
                   ("cat", Json.Str "liveness");
                   ("ph", Json.Str "i");
                   ("ts", Json.Int e.time);
                   ("pid", Json.Int 0);
                   ("tid", Json.Int e.thread);
                   ("s", Json.Str "t");
                   ("args", Json.Obj [ ("attempt", Json.Int attempt) ]);
                 ])
        | Budget_exhausted { attempts; cause } ->
            push
              (Json.Obj
                 [
                   ("name", Json.Str "budget-exhausted");
                   ("cat", Json.Str "liveness");
                   ("ph", Json.Str "i");
                   ("ts", Json.Int e.time);
                   ("pid", Json.Int 0);
                   ("tid", Json.Int e.thread);
                   ("s", Json.Str "t");
                   ( "args",
                     Json.Obj
                       [ ("attempts", Json.Int attempts);
                         ("cause", Json.Str (cause_label cause)) ] );
                 ])
        | Park { locs } ->
            push
              (Json.Obj
                 [
                   ("name", Json.Str "park");
                   ("cat", Json.Str "blocking");
                   ("ph", Json.Str "i");
                   ("ts", Json.Int e.time);
                   ("pid", Json.Int 0);
                   ("tid", Json.Int e.thread);
                   ("s", Json.Str "t");
                   ("args", Json.Obj [ ("locs", Json.Int locs) ]);
                 ])
        | Wake { timed_out } ->
            push
              (Json.Obj
                 [
                   ("name", Json.Str "wake");
                   ("cat", Json.Str "blocking");
                   ("ph", Json.Str "i");
                   ("ts", Json.Int e.time);
                   ("pid", Json.Int 0);
                   ("tid", Json.Int e.thread);
                   ("s", Json.Str "t");
                   ("args", Json.Obj [ ("timed_out", Json.Bool timed_out) ]);
                 ])
        | Commit { reads; writes; lock_hold } -> (
            match Hashtbl.find_opt pending e.serial with
            | None -> ()
            | Some (b, sem, attempt) ->
                Hashtbl.remove pending e.serial;
                complete ~b ~sem ~attempt ~ts_end:e.time ~outcome:"commit"
                  ~args:
                    [ ("reads", Json.Int reads); ("writes", Json.Int writes);
                      ("lock_hold", Json.Int lock_hold) ])
        | Abort { cause; reads; writes } -> (
            match Hashtbl.find_opt pending e.serial with
            | None -> ()
            | Some (b, sem, attempt) ->
                Hashtbl.remove pending e.serial;
                complete ~b ~sem ~attempt ~ts_end:e.time ~outcome:"abort"
                  ~args:
                    [ ("cause", Json.Str (cause_label cause));
                      ("reads", Json.Int reads); ("writes", Json.Int writes) ]))
      events;
    (* In-flight attempts at drain time: zero-length slices, so they
       stay visible rather than silently vanishing. *)
    Hashtbl.fold (fun serial v acc -> (serial, v) :: acc) pending []
    |> List.sort compare
    |> List.iter (fun (_, (b, sem, attempt)) ->
           complete ~b ~sem ~attempt ~ts_end:b.time ~outcome:"in-flight"
             ~args:[]);
    let meta =
      Json.Obj
        [
          ("name", Json.Str "process_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.Str process_name) ]);
        ]
      :: (Hashtbl.fold (fun tid () acc -> tid :: acc) threads []
         |> List.sort compare
         |> List.map (fun tid ->
                Json.Obj
                  [
                    ("name", Json.Str "thread_name");
                    ("ph", Json.Str "M");
                    ("pid", Json.Int 0);
                    ("tid", Json.Int tid);
                    ( "args",
                      Json.Obj
                        [ ("name", Json.Str (Printf.sprintf "vthread %d" tid)) ]
                    );
                  ]))
    in
    Json.Obj
      [
        ("traceEvents", Json.Arr (meta @ List.rev !out @ extra));
        ("displayTimeUnit", Json.Str "ms");
      ]
end

(* -------------------------------------------------------------------- *)
(* Durability-side counters and trace lane                               *)

module Persist = struct
  (* Process-global counters: the durability subsystem is per-process
     (one data directory), and keeping these out of the event taxonomy
     means the exhaustive [cause]/[kind] matches — and every golden
     trace — are untouched.  Updated from inside commit hooks, so
     plain [Atomic]s, no locks. *)
  let appends = Atomic.make 0
  let append_bytes = Atomic.make 0
  let fsyncs = Atomic.make 0
  let replayed = Atomic.make 0
  let checkpoints = Atomic.make 0
  let hook_errors = Atomic.make 0

  let counters () =
    [
      ("appends", Atomic.get appends);
      ("append_bytes", Atomic.get append_bytes);
      ("fsyncs", Atomic.get fsyncs);
      ("replayed", Atomic.get replayed);
      ("checkpoints", Atomic.get checkpoints);
      ("hook_errors", Atomic.get hook_errors);
    ]

  (* The trace lane: a lock-free overwrite ring of completed
     persist-side spans (fsync, checkpoint, replay), exported as
     Chrome-trace "X" slices on a dedicated synthetic thread so they
     line up under the transaction lanes in Perfetto. *)
  let lane_tid = 9999
  let ring_cap = 4096

  type span = { s_name : string; s_ts : int; s_dur : int }

  let ring : span option array = Array.make ring_cap None
  let cursor = Atomic.make 0

  let span ~name ~ts_us ~dur_us =
    let i = Atomic.fetch_and_add cursor 1 in
    ring.(i mod ring_cap) <- Some { s_name = name; s_ts = ts_us; s_dur = dur_us }

  let spans () =
    let out = ref [] in
    Array.iter (function None -> () | Some s -> out := s :: !out) ring;
    List.sort (fun a b -> compare a.s_ts b.s_ts) !out

  let lane () =
    match spans () with
    | [] -> []
    | spans ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int lane_tid);
            ("args", Json.Obj [ ("name", Json.Str "persist") ]);
          ]
        :: List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.Str s.s_name);
                   ("cat", Json.Str "persist");
                   ("ph", Json.Str "X");
                   ("ts", Json.Int s.s_ts);
                   ("dur", Json.Int (max 1 s.s_dur));
                   ("pid", Json.Int 0);
                   ("tid", Json.Int lane_tid);
                 ])
             spans

  let reset () =
    List.iter
      (fun c -> Atomic.set c 0)
      [ appends; append_bytes; fsyncs; replayed; checkpoints; hook_errors ];
    Array.fill ring 0 ring_cap None;
    Atomic.set cursor 0
end
