(** Transaction-lifecycle telemetry.

    The paper's performance story is a story about {e why} transactions
    abort: classic [size] aborting against updates (§3.3), elastic
    parses removing false read-validation conflicts (§4.3), snapshot
    reads never aborting anyone (§5.1).  This library makes those
    claims observable: the STM emits one {!event} per lifecycle point
    (begin, read, write, lock acquisition, commit, abort) into a
    pluggable {!sink}, tagged with a full abort-cause taxonomy and a
    per-call-site label, and this module aggregates and exports them.

    The library sits {e below} the STM: it knows nothing about
    transactions beyond the event vocabulary, so [lib/core] can depend
    on it without a cycle.  Timestamps and thread ids are stamped by
    the emitter (virtual ticks and virtual thread ids under the
    simulator — fully deterministic per seed; wall-clock nanoseconds
    and domain ids under real domains).

    Three backends:
    - {!Recorder} — deterministic in-order event log for single-domain
      use (the simulator);
    - {!Ring} — lock-free per-domain ring buffers with padded write
      cursors for {!Polytm_runtime.Domain_runtime}, drained at quiesce;
    - {!Agg} — streaming per-site aggregation when only the summary is
      wanted (no event storage).

    Three exporters ({!Export}): a pretty-printed table, JSON, and the
    Chrome trace-event format loadable in Perfetto / [chrome://tracing]
    with one lane per (virtual) thread. *)

(** {1 Abort-cause taxonomy} *)

type cause =
  | Read_validation  (** classic read-set validation failed *)
  | Lock_busy  (** a needed lock stayed held past the spin budget *)
  | Elastic_cut  (** an elastic cut was impossible: the window broke *)
  | Snapshot_overwrite
      (** every retained version is newer than the snapshot *)
  | Cm_kill  (** the contention manager killed this transaction *)
  | Explicit  (** user abort, [orelse] rollback, or a user exception *)

val all_causes : cause list
(** Every constructor, in declaration order. *)

val num_causes : int

val cause_index : cause -> int
(** Position in {!all_causes}; dense, for counter arrays. *)

val cause_label : cause -> string
(** Stable machine-readable name, e.g. ["read-validation"]. *)

val cause_short : cause -> string
(** <= 5-char column heading for tables, e.g. ["rdval"]. *)

(** {1 Events} *)

type kind =
  | Begin of { sem : string; attempt : int }
      (** transaction attempt start; [attempt] counts from 1 *)
  | Read of { loc : int }  (** shared read of location [loc] *)
  | Write of { loc : int }  (** buffered write to location [loc] *)
  | Lock_acquire of { loc : int }  (** commit-time lock taken *)
  | Commit of { reads : int; writes : int; lock_hold : int }
      (** successful commit; [reads]/[writes] are final set sizes,
          [lock_hold] the ticks between first acquisition and release *)
  | Abort of { cause : cause; reads : int; writes : int }
  | Serialize of { attempt : int }
      (** the transaction escalated to the serial-irrevocable fallback
          (budget exhausted or the adaptive CM gave up on optimism);
          [attempt] is the attempt about to run under the token *)
  | Budget_exhausted of { attempts : int; cause : cause }
      (** a retry budget ran out after [attempts] tries; [cause] is the
          last abort's cause.  Followed by a [Serialize] event when the
          instance's exhaustion policy is to fall back rather than
          raise. *)
  | Park of { locs : int }
      (** a [retry]ing transaction parked on its wait set of [locs]
          locations (the whole instance, for NORec's coarse wakeups).
          Emitted only when the thread actually goes to sleep — a
          pre-park validation failure re-runs immediately and emits
          nothing. *)
  | Wake of { timed_out : bool }
      (** the parked thread resumed: woken by a committing writer
          ([timed_out = false]) or by its deadline ([true]).  Always
          paired with the preceding [Park] on the same thread. *)

type event = {
  time : int;  (** virtual ticks (simulator) or ns (domains) *)
  thread : int;  (** emitting (virtual) thread id *)
  serial : int;  (** transaction-attempt serial *)
  label : string;  (** call-site label from [atomically ~label], or "" *)
  kind : kind;
}

(** {1 Sinks} *)

type sink = { emit : event -> unit }

val null : sink
(** Swallows everything (for plumbing that needs {e a} sink). *)

val fan_out : sink list -> sink
(** Deliver every event to each sink, in list order. *)

(** {1 Backends} *)

(** Deterministic in-order recorder.  Single-writer: use under the
    simulator (one domain) or from one thread.  Two runs of the same
    seeded simulation produce byte-identical event lists. *)
module Recorder : sig
  type t

  val create : ?capacity:int -> ?accesses:bool -> unit -> t
  (** [capacity] bounds retained events (default 2_000_000; later
      events are dropped and counted).  [accesses:false] drops [Read]
      and [Write] events at the door — lifecycle tracing without the
      per-read cost. *)

  val sink : t -> sink
  val events : t -> event list  (** in emission order *)

  val dropped : t -> int
  val clear : t -> unit
end

(** Lock-free per-domain ring buffers.  Each emitting thread writes
    only the lane indexed by its id, so emission is a plain store plus
    a cursor bump; cursors live 16 ints apart (one cache line) to
    avoid false sharing.  A full lane overwrites its oldest events —
    the ring keeps the {e most recent} [capacity] per lane.  Drain
    after all emitters have quiesced (e.g. after [Domain.join]). *)
module Ring : sig
  type t

  val create : ?lanes:int -> ?capacity:int -> unit -> t
  (** [lanes] (default 64) and [capacity] per lane (default 8192) are
      rounded up to powers of two.  Threads are mapped to lanes by
      [thread land (lanes - 1)]; distinct threads sharing a lane can
      lose events but never corrupt memory. *)

  val sink : t -> sink

  val drain : t -> event list
  (** Merge every lane's surviving events, sorted by [(time, thread,
      serial)], and reset the rings.  Call only while no thread is
      emitting. *)

  val overwritten : t -> int
  (** Events lost to lane wrap-around since creation. *)
end

(** {1 Aggregation} *)

module Agg : sig
  type site_stats = {
    site : string;  (** call-site label ("" = unlabelled) *)
    attempts : int;  (** [Begin] events *)
    commits : int;
    aborts : int;
    aborts_by_cause : (cause * int) list;  (** all causes, taxonomy order *)
    retries : int;  (** attempts with attempt number > 1 *)
    lock_acquires : int;
    reads_committed : int;  (** summed read-set sizes at commit *)
    max_read_set : int;  (** largest read set seen at commit or abort *)
    writes_committed : int;  (** summed write-set sizes at commit *)
    lock_hold : int;  (** summed lock-hold ticks over commits *)
  }

  type snapshot = {
    sites : site_stats list;  (** sorted by label *)
    total : site_stats;  (** [site = "TOTAL"] *)
  }

  val abort_count : site_stats -> cause -> int

  type t

  val create : unit -> t

  val sink : t -> sink
  (** Streaming aggregation: counters update per event, nothing is
      stored.  Single-writer like {!Recorder} — under domains,
      aggregate a {!Ring.drain} with {!of_events} instead. *)

  val snapshot : t -> snapshot
  val of_events : event list -> snapshot
end

(** {1 JSON} *)

(** A minimal JSON document builder (no external dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering; strings are escaped per RFC 8259. *)

  val pp : Format.formatter -> t -> unit
end

(** {1 Exporters} *)

module Export : sig
  val pp_table : Format.formatter -> Agg.snapshot -> unit
  (** Pretty-printed per-site table: attempts, commits, aborts by
      cause, retries, read-set sizes, lock-hold ticks. *)

  val snapshot_json : Agg.snapshot -> Json.t
  (** The aggregation snapshot as a JSON object. *)

  val events_json : event list -> Json.t
  (** Raw events as a JSON array (lossless). *)

  val chrome_trace :
    ?process_name:string -> ?extra:Json.t list -> event list -> Json.t
  (** Chrome trace-event JSON ([{"traceEvents": [...]}]) with one lane
      per thread: each transaction attempt becomes a complete ("X")
      slice from its [Begin] to its [Commit]/[Abort], named after its
      call-site label, with serial, semantics, outcome, abort cause
      and set sizes in [args]; lock acquisitions become instant
      events.  Timestamps are emitted as microseconds, so one virtual
      tick displays as 1 µs in Perfetto.  [extra] appends
      caller-supplied trace events verbatim (see {!Persist.lane}). *)
end

(** {1 Durability counters}

    Process-global counters and a trace lane for the persistence
    subsystem ([lib/persist] + the server glue).  Kept apart from the
    event taxonomy on purpose: persist activity is not a transaction
    lifecycle, and extending {!kind} would touch every exhaustive
    match and golden trace.  Updated from commit hooks, so everything
    here is lock-free. *)
module Persist : sig
  val appends : int Atomic.t
  (** op-log records appended *)

  val append_bytes : int Atomic.t
  (** op-log bytes appended *)

  val fsyncs : int Atomic.t
  (** [fsync] calls issued on the log *)

  val replayed : int Atomic.t
  (** records applied during recovery *)

  val checkpoints : int Atomic.t
  (** checkpoints published *)

  val hook_errors : int Atomic.t
  (** exceptions swallowed by the commit hook — always zero unless the
      log device failed mid-run (the store stays up; durability is
      degraded and INFO exposes the count) *)

  val counters : unit -> (string * int) list
  (** Name/value snapshot of every counter above, for INFO. *)

  val span : name:string -> ts_us:int -> dur_us:int -> unit
  (** Record a completed persist-side span (an fsync, a checkpoint, a
      recovery replay) into a bounded overwrite ring. *)

  val lane : unit -> Json.t list
  (** The recorded spans as Chrome-trace slices on a dedicated
      "persist" thread lane, for {!Export.chrome_trace}'s [extra]. *)

  val reset : unit -> unit
end
