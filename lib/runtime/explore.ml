type outcome = { executions : int; truncated : bool }

exception Violation of { schedule : int array; exn : exn }

(* Depth-first search over the schedule tree.  Each stack entry is a
   decision prefix; running it yields a trace whose suffix beyond the
   prefix was chosen deterministically (continue the yielder when
   runnable, else smallest thread id), and every unexplored sibling
   along that suffix (up to [max_depth], and within the
   [max_preemptions] budget) becomes a new prefix.  Prefixes are
   unique, so no schedule is executed twice.

   [max_preemptions] is CHESS-style preemption bounding: choosing a
   thread other than a still-runnable yielder costs one preemption,
   and schedules beyond the budget are not explored.  Small bounds
   (2-3) catch most concurrency bugs while keeping the tree
   polynomial.

   Runs that exceed [step_limit] — livelocking schedules such as a
   spin-lock waiter being scheduled unfairly forever — are pruned:
   counted and marked as truncation, not treated as violations.  Their
   unexplored siblings are dropped, so exploration of programs that can
   livelock is bounded rather than complete. *)
let check ?(max_executions = 100_000) ?(max_depth = max_int)
    ?(max_preemptions = max_int) ?(step_limit = 100_000)
    ?(prune_exn = fun _ -> false) program =
  let stack = ref [ [||] ] in
  let executions = ref 0 in
  let truncated = ref false in
  let is_preemption (d : Sim.decision) choice =
    d.Sim.yielder >= 0 && choice <> d.Sim.yielder
  in
  let run_one prefix =
    incr executions;
    match
      Sim.run ~policy:(Scripted prefix) ~record_trace:true ~step_limit program
    with
    | (), info -> info.Sim.trace
    | exception Sim.Step_limit_exceeded ->
        truncated := true;
        []
    | exception e when prune_exn e ->
        (* A benign artefact of unfair schedules (e.g. retry-budget
           exhaustion while the lock holder is starved): prune, like a
           livelock. *)
        truncated := true;
        []
    | exception e -> raise (Violation { schedule = prefix; exn = e })
  in
  let continue_search () =
    match !stack with
    | [] -> false
    | _ when !executions >= max_executions ->
        truncated := true;
        false
    | prefix :: rest ->
        stack := rest;
        let trace = run_one prefix in
        let plen = Array.length prefix in
        let decisions =
          Array.of_list (List.map (fun d -> d.Sim.chosen) trace)
        in
        let preemptions_before = ref 0 in
        List.iteri
          (fun i (d : Sim.decision) ->
            if i >= plen && i < max_depth then
              List.iter
                (fun alt ->
                  if
                    alt <> d.Sim.chosen
                    && !preemptions_before
                       + (if is_preemption d alt then 1 else 0)
                       <= max_preemptions
                  then begin
                    let prefix' = Array.make (i + 1) 0 in
                    Array.blit decisions 0 prefix' 0 i;
                    prefix'.(i) <- alt;
                    stack := prefix' :: !stack
                  end)
                d.Sim.ready;
            if is_preemption d d.Sim.chosen then incr preemptions_before)
          trace;
        true
  in
  while continue_search () do
    ()
  done;
  { executions = !executions; truncated = !truncated }

let count_schedules ?max_executions program =
  (check ?max_executions program).executions
