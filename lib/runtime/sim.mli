(** Deterministic discrete-event simulator of parallel threads.

    The paper's evaluation ran on a 64-way Niagara 2; this container
    has a single core.  [Sim] substitutes for that hardware: it runs N
    cooperative {e virtual threads} inside one OCaml domain, using
    effect handlers to suspend a thread at every shared-memory access.
    Each thread owns a virtual clock; an access costs a configurable
    number of ticks.  Under the {!Event_driven} policy the scheduler
    always resumes the thread with the smallest clock, which is exactly
    how N truly parallel threads interleave in time, so the {e
    makespan} (largest final clock) plays the role of wall-clock time
    on a real multiprocessor: work wasted by aborts, retries and lock
    spinning lengthens it just as it would lengthen real executions.

    Two further policies serve testing: {!Random_sched} explores seeded
    random interleavings, and {!Scripted} replays a recorded choice
    prefix, which is the primitive the {!Explore} model checker is
    built on. *)

exception Deadlock of int list
(** Raised when no thread is runnable but some are alive: all blocked
    in [join], or parked with no deadline and nobody left to wake them
    (a {e lost wakeup}).  Carries the blocked/parked thread ids.  The
    {!Explore} model checker treats this as a violation, which is how
    lost-wakeup freedom of the STM's [retry] protocol is checked. *)

exception Step_limit_exceeded
(** Raised when a run exceeds its [step_limit] (used by {!Explore} to
    prune livelocking schedules, e.g. unfair spinning). *)

type costs = {
  get : int;
  set : int;
  cas : int;
  faa : int;
  yield : int;
  spawn : int;
}
(** Virtual-time cost of each primitive, in ticks. *)

val default_costs : costs
(** [{get = 1; set = 1; cas = 2; faa = 2; yield = 1; spawn = 0}] —
    an atomic read-modify-write costs twice a plain cache access. *)

type policy =
  | Event_driven
      (** Resume the thread with the smallest virtual clock
          (deterministic; FIFO tie-break).  Models true parallelism. *)
  | Random_sched of int
      (** Uniform choice among runnable threads, seeded. *)
  | Scripted of int array
      (** Follow the given thread-id choices at the first scheduling
          points, then smallest thread id.  Record the trace. *)

type decision = {
  ready : int list;  (** runnable thread ids, ascending *)
  chosen : int;
  yielder : int;
      (** the thread that yielded just before this decision while still
          runnable, or [-1] when it blocked or finished — choosing a
          different thread than a runnable yielder is a {e preemption}
          (the quantity {!Explore} can bound, CHESS-style) *)
}

type info = {
  makespan : int;  (** largest final thread clock, in ticks *)
  steps : int;  (** number of charged primitive operations *)
  switches : int;  (** number of context switches taken *)
  trace : decision list;
      (** scheduling decisions in order, one entry per point where more
          than one thread was runnable; recorded only under [Scripted]
          or when [record_trace]. *)
}

val run :
  ?policy:policy ->
  ?costs:costs ->
  ?record_trace:bool ->
  ?step_limit:int ->
  (unit -> 'a) ->
  'a * info
(** [run main] executes [main] as virtual thread 0 and schedules every
    thread it transitively spawns until all complete.  Returns [main]'s
    result and run statistics.  Any exception raised by any thread
    aborts the run and is re-raised.  Runs must not nest.
    @raise Deadlock on a join cycle. *)

(** {1 Operations available inside a run}

    All of these are no-ops or zero-cost defaults when called outside a
    run, so data structures can be built and inspected uncharged before
    and after the timed section. *)

val spawn : (unit -> unit) -> int
(** Create a new virtual thread; returns its id. *)

val join : int -> unit
(** Block until the given thread completes. *)

val tick : int -> unit
(** Charge the calling thread [n] ticks and allow a context switch. *)

val yield : unit -> unit
(** [tick] with the configured yield cost. *)

val now : unit -> int
(** Virtual clock of the calling thread (0 outside a run). *)

val self : unit -> int
(** Id of the calling thread (0 outside a run). *)

val park : ?deadline:int -> unit -> [ `Woken | `Timeout ]
(** Park the calling thread: it stops running until another thread
    {!unpark}s it ([`Woken]) or its virtual clock would pass [deadline]
    (an {e absolute} tick count; [`Timeout]).  Deterministic: under
    {!Event_driven} a due deadline competes with runnable threads by
    clock; under {!Random_sched}/{!Scripted} deadlines fire only when
    nothing else is runnable, so parking is never a decision point and
    recorded traces stay replayable.  A parked thread with no deadline
    that nobody wakes deadlocks the run (see {!Deadlock}).  Outside a
    run: returns [`Woken] immediately.  Callers must treat [`Woken] as
    possibly spurious and re-check their condition. *)

val unpark : int -> unit
(** Wake the given thread if it is currently parked (no-op otherwise —
    permit semantics for unpark-before-park live one layer up, in the
    runtime's parker).  The wakee's virtual clock advances to at least
    the waker's, so a wakeup never appears to precede the commit that
    caused it. *)

val inside_run : unit -> bool
(** Whether a simulation is currently executing on this domain. *)

val current_costs : unit -> costs
(** Cost model of the running simulation ([default_costs] outside). *)
