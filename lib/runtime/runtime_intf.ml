(** The execution-substrate abstraction.

    Every concurrent algorithm in this repository — the STM, the
    lock-based and lock-free baselines, the benchmark workloads — is
    written against this signature instead of against [Stdlib.Atomic]
    and [Domain] directly.  Two implementations are provided:

    - {!Domain_runtime}: real OCaml domains and atomics, for preemptive
      stress testing on actual hardware;
    - {!Sim_runtime}: deterministic cooperative virtual threads over the
      {!Sim} discrete-event scheduler, for reproducible benchmarks with
      1–64 virtual threads on any machine, and for exhaustive
      interleaving exploration ({!Explore}).

    The contract mirrors [Stdlib.Atomic]: [cas] compares with physical
    equality, which is also value equality for immediate values
    (integers, booleans, constant constructors). *)

module type RUNTIME = sig
  val name : string
  (** Human-readable backend name, for reports. *)

  (** {1 Shared atomic cells}

      Each operation on an atomic cell is a scheduling point and is
      charged by the simulator's cost model; algorithms therefore pay
      virtual time proportional to the number of shared-memory accesses
      they perform, which is the quantity the paper's performance
      arguments are about. *)

  type 'a atomic

  val atomic : 'a -> 'a atomic
  (** Allocate a fresh cell.  Allocation itself is not charged. *)

  val get : 'a atomic -> 'a
  val set : 'a atomic -> 'a -> unit

  val cas : 'a atomic -> 'a -> 'a -> bool
  (** [cas cell expected desired] atomically replaces the contents with
      [desired] if it is physically equal to [expected]. *)

  val fetch_and_add : int atomic -> int -> int
  (** Atomic fetch-and-add; returns the previous value. *)

  (** {1 Global serialization token}

      A single-owner token used by the STM's serial-irrevocable mode:
      the holder is guaranteed to commit because everyone else's write
      commits stall while the token is held.  The operations are
      charged by the simulator's cost model exactly like the atomic
      operations they correspond to ([token_held] as a read,
      [token_try_acquire] as a CAS, [token_release] as a write), so a
      backend may simply represent the token as a boolean cell —
      exposing it as a primitive lets a backend with a cheaper native
      notion (a futex, a kernel mutex) substitute one without touching
      the STM. *)

  type token

  val token : unit -> token
  (** Allocate a released token.  Allocation is not charged. *)

  val token_held : token -> bool
  (** Observe the token; charged like {!get}. *)

  val token_try_acquire : token -> bool
  (** Acquire if free; [true] on success.  Charged like {!cas}. *)

  val token_release : token -> unit
  (** Release; only the holder may call this.  Charged like {!set}. *)

  (** {1 Uncharged statistics counters}

      Commit/abort counters must not perturb the virtual clock, so they
      bypass the cost model.  Under domains they are plain atomics. *)

  type counter

  val counter : unit -> counter
  val add_counter : counter -> int -> unit
  val read_counter : counter -> int

  (** {1 Threads} *)

  type handle

  val spawn : (unit -> unit) -> handle
  val join : handle -> unit

  val parallel : (unit -> unit) list -> unit
  (** Run all thunks to completion concurrently (spawn all, join all). *)

  val yield : unit -> unit
  (** Politeness point: lets another thread run; charges a small cost. *)

  val pause : int -> unit
  (** [pause n] backs off for [n] cost units (spin loop under domains). *)

  val charge : int -> unit
  (** [charge n] accounts [n] cost units in the simulator's virtual
      cost model {e without} physically waiting: under simulation it is
      exactly [pause n] (a charge and a scheduling point), under
      domains it is a no-op.  Use it where an algorithm models a cost
      it does not actually pay on real hardware (e.g. TL2's read-set
      bookkeeping charge); use {!pause} for genuine backoff and
      spin-waits, which must burn real time under domains. *)

  val now : unit -> int
  (** Current time: virtual ticks under simulation, wall-clock
      nanoseconds under domains. *)

  val self_id : unit -> int
  (** Identifier of the calling thread, unique within a run. *)

  (** {1 Parking}

      The primitive under the STM's blocking [retry]: a thread that
      found nothing to do parks until a committing writer wakes it.  A
      parker carries a {e permit} (binary semaphore semantics): if
      {!unpark} runs before {!park}, the pending permit makes the next
      [park] return immediately, so registration/validation/park races
      resolve safely without the waiter holding any lock across the
      park.  Under simulation, parking is deterministic in virtual time
      and a forgotten waiter surfaces as {!Sim.Deadlock}; under domains
      it is futex-style [Mutex]/[Condition] waiting with no busy-wait. *)

  type parker

  val parker : unit -> parker
  (** Allocate a parker with no pending permit.  Not charged. *)

  val park_prepare : parker -> unit
  (** Clear any stale permit left over from a previous wait round.  Call
      before registering interest, so only wakeups issued {e after} this
      point make the next {!park} return. *)

  val park : parker -> deadline:int option -> [ `Woken | `Timeout ]
  (** Consume the permit, blocking until one is available ([`Woken]) or
      until the absolute deadline — in {!now} units — passes
      ([`Timeout]).  Wakeups may be spurious; callers re-check their
      condition.  Not charged (the waiter is off-CPU, not spinning). *)

  val unpark : parker -> unit
  (** Deposit a permit and wake the parked thread, if any.  Safe to call
      from any thread, at any time, including before [park].  Not
      charged (wakers call it after releasing all STM locks). *)

  (** {1 Mutual exclusion for uncharged registries}

      Protects small shared registries (the waiter table) that live
      outside the transactional cost model.  The critical section must
      be short and must not contain charged operations: under
      simulation [exclusive] is a plain call (cooperative threads
      cannot interleave without a scheduling point), under domains it
      is a real [Mutex]. *)

  type exclusion

  val exclusion : unit -> exclusion

  val exclusive : exclusion -> (unit -> 'a) -> 'a
  (** Run the thunk under the exclusion; always releases, also on
      exceptions. *)

  (** {1 Thread-local storage}

      Uncharged bookkeeping (used by the STM to detect nested
      transactions).  [tls default] creates a slot; each thread sees
      its own value, initialised lazily from [default]. *)

  type 'a tls

  val tls : (unit -> 'a) -> 'a tls
  val tls_get : 'a tls -> 'a
  val tls_set : 'a tls -> 'a -> unit
end
