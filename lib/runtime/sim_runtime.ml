(** {!Runtime_intf.RUNTIME} backend over the {!Sim} discrete-event
    simulator.

    Atomic cells are plain mutable records: the simulator runs on a
    single domain and only switches threads at [Sim.tick] points, so
    placing the tick immediately before the memory operation makes each
    operation atomic at its scheduling point — the same granularity as
    a hardware atomic instruction.  The per-operation tick is what
    charges the virtual-time cost model. *)

let name = "sim"

type 'a atomic = { mutable v : 'a }

let atomic v = { v }

let get a =
  Sim.tick (Sim.current_costs ()).Sim.get;
  a.v

let set a x =
  Sim.tick (Sim.current_costs ()).Sim.set;
  a.v <- x

let cas a expected desired =
  Sim.tick (Sim.current_costs ()).Sim.cas;
  if a.v == expected then begin
    a.v <- desired;
    true
  end
  else false

let fetch_and_add a n =
  Sim.tick (Sim.current_costs ()).Sim.faa;
  let old = a.v in
  a.v <- old + n;
  old

(* The serialization token is a boolean cell: each operation ticks the
   cost model exactly as the corresponding atomic operation would, so
   swapping the STM's hand-rolled flag for this primitive left every
   charge sequence byte-identical (goldens-checked). *)
type token = bool atomic

let token () = atomic false
let token_held = get
let token_try_acquire t = cas t false true
let token_release t = set t false

type counter = int ref

let counter () = ref 0
let add_counter c n = c := !c + n
let read_counter c = !c

(* Parking delegates to the simulator's deterministic virtual-time
   park/unpark.  The permit lives here (uncharged plain field): the
   simulator is cooperative and none of these operations tick, so a
   permit check and the subsequent park cannot be separated by another
   thread — no atomicity gymnastics needed. *)
type parker = { mutable permit : bool; mutable parked_tid : int }

let parker () = { permit = false; parked_tid = -1 }

(* The tick models the window real hardware has between the decision to
   wait and becoming findable by a waker: without it the simulator would
   run abort → register → park atomically and the classic lost-wakeup
   race (a commit landing before registration) could never be scheduled,
   so [Explore] would pass even a waiter that skips re-validation.  Only
   retry paths park, so golden traces never see this charge. *)
let park_prepare p =
  Sim.tick 1;
  p.permit <- false

let park p ~deadline =
  if p.permit then begin
    p.permit <- false;
    `Woken
  end
  else begin
    p.parked_tid <- Sim.self ();
    let r = Sim.park ?deadline () in
    p.parked_tid <- -1;
    (* Consume the permit on a wakeup; on a timeout a racing permit (the
       waker lost the race with the timer) is left for [park_prepare] to
       clear next round — the waiter deregisters on timeout anyway. *)
    if r = `Woken then p.permit <- false;
    r
  end

let unpark p =
  p.permit <- true;
  if p.parked_tid >= 0 then Sim.unpark p.parked_tid

(* Cooperative threads cannot interleave without a scheduling point and
   registry bodies are tick-free by contract, so exclusion is free. *)
type exclusion = unit

let exclusion () = ()
let exclusive () f = f ()

type handle = int

let spawn = Sim.spawn
let join = Sim.join

let parallel thunks =
  if Sim.inside_run () then List.iter Sim.join (List.map Sim.spawn thunks)
  else begin
    (* Convenience: allow calling [parallel] at top level by opening a
       run around it, so tests can use one entry point for both
       backends. *)
    let ((), _info) = Sim.run (fun () -> List.iter Sim.join (List.map Sim.spawn thunks)) in
    ()
  end

let yield = Sim.yield
let pause n = Sim.tick n

(* Virtual charges are indistinguishable from pauses under the cost
   model: both advance this thread's clock and yield a scheduling
   point, so traces are unchanged whichever the caller picks. *)
let charge n = Sim.tick n
let now = Sim.now
let self_id = Sim.self

(* Thread-local storage: keyed by the current virtual thread id.  The
   STM sets and restores slots around each transaction, so entries
   cannot leak across simulation runs. *)
type 'a tls = { default : unit -> 'a; table : (int, 'a) Hashtbl.t }

let tls default = { default; table = Hashtbl.create 16 }

let tls_get t =
  let id = Sim.self () in
  match Hashtbl.find_opt t.table id with
  | Some v -> v
  | None ->
      let v = t.default () in
      Hashtbl.replace t.table id v;
      v

let tls_set t v = Hashtbl.replace t.table (Sim.self ()) v
