(** {!Runtime_intf.RUNTIME} backend over real OCaml domains.

    Used by the preemptive stress tests and the Bechamel
    micro-benchmarks.  Thread counts should stay near the machine's
    core count; the figure-scale 1–64-thread sweeps use {!Sim_runtime}
    instead (see DESIGN.md §2, substitution S1). *)

let name = "domains"

type 'a atomic = 'a Atomic.t

let atomic = Atomic.make
let get = Atomic.get
let set = Atomic.set
let cas = Atomic.compare_and_set
let fetch_and_add = Atomic.fetch_and_add

type token = bool Atomic.t

let token () = Atomic.make false
let token_held = Atomic.get
let token_try_acquire t = Atomic.compare_and_set t false true
let token_release t = Atomic.set t false

type counter = int Atomic.t

let counter () = Atomic.make 0
let add_counter c n = ignore (Atomic.fetch_and_add c n)
let read_counter = Atomic.get

type handle = unit Domain.t

let spawn f = Domain.spawn f
let join = Domain.join

let parallel thunks = List.iter Domain.join (List.map Domain.spawn thunks)

let yield () = Domain.cpu_relax ()

let pause n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

(* Simulator cost-model charges have no physical counterpart: the real
   cost of the modelled work (read-set appends and the like) is paid by
   the work itself. *)
let charge _ = ()

let now () = int_of_float (Unix.gettimeofday () *. 1e9)
let self_id () = (Domain.self () :> int)

type 'a tls = 'a Domain.DLS.key

let tls default = Domain.DLS.new_key default
let tls_get = Domain.DLS.get
let tls_set = Domain.DLS.set
