(** {!Runtime_intf.RUNTIME} backend over real OCaml domains.

    Used by the preemptive stress tests and the Bechamel
    micro-benchmarks.  Thread counts should stay near the machine's
    core count; the figure-scale 1–64-thread sweeps use {!Sim_runtime}
    instead (see DESIGN.md §2, substitution S1). *)

let name = "domains"

type 'a atomic = 'a Atomic.t

let atomic = Atomic.make
let get = Atomic.get
let set = Atomic.set
let cas = Atomic.compare_and_set
let fetch_and_add = Atomic.fetch_and_add

type token = bool Atomic.t

let token () = Atomic.make false
let token_held = Atomic.get
let token_try_acquire t = Atomic.compare_and_set t false true
let token_release t = Atomic.set t false

type counter = int Atomic.t

let counter () = Atomic.make 0
let add_counter c n = ignore (Atomic.fetch_and_add c n)
let read_counter = Atomic.get

(* Futex-style parking: a mutex/condvar pair guarding a permit bit.  An
   untimed park is a plain [Condition.wait] loop — zero busy-wait, the
   thread is off-CPU until [unpark] signals it.  The stdlib [Condition]
   has no timed wait, so a parker lazily grows a self-pipe on its first
   {e timed} park and waits in [Unix.select] with the remaining-time
   bound; [unpark] writes a nudge byte so a timed waiter also wakes
   immediately.  The pipe is per-parker (parkers are pooled one per
   thread context), both ends non-blocking, drained on each wakeup and
   in [park_prepare]. *)
type parker = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable permit : bool;
  mutable pipe : (Unix.file_descr * Unix.file_descr) option;
}

let parker () =
  { mu = Mutex.create (); cv = Condition.create (); permit = false; pipe = None }

let drain_pipe rfd =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read rfd buf 0 64 with
    | n -> if n = 64 then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let pipe_of p =
  match p.pipe with
  | Some pp -> pp
  | None ->
      let r, w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock r;
      Unix.set_nonblock w;
      p.pipe <- Some (r, w);
      (r, w)

let park_prepare p =
  Mutex.lock p.mu;
  p.permit <- false;
  (match p.pipe with Some (r, _) -> drain_pipe r | None -> ());
  Mutex.unlock p.mu

let now () = int_of_float (Unix.gettimeofday () *. 1e9)

let park p ~deadline =
  Mutex.lock p.mu;
  let r =
    match deadline with
    | None ->
        while not p.permit do
          Condition.wait p.cv p.mu
        done;
        p.permit <- false;
        `Woken
    | Some d ->
        (* [select] runs outside the mutex; the race with [unpark] is
           benign because the nudge byte persists in the pipe until
           drained, acting as a second, level-triggered permit. *)
        let rfd, _ = pipe_of p in
        let rec loop () =
          if p.permit then begin
            p.permit <- false;
            drain_pipe rfd;
            `Woken
          end
          else
            let dt = float_of_int (d - now ()) /. 1e9 in
            if dt <= 0.0 then `Timeout
            else begin
              Mutex.unlock p.mu;
              (match Unix.select [ rfd ] [] [] dt with
              | rs, _, _ -> if rs <> [] then drain_pipe rfd
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
              Mutex.lock p.mu;
              loop ()
            end
        in
        loop ()
  in
  Mutex.unlock p.mu;
  r

let unpark p =
  Mutex.lock p.mu;
  p.permit <- true;
  Condition.signal p.cv;
  let pipe = p.pipe in
  Mutex.unlock p.mu;
  match pipe with
  | None -> ()
  | Some (_, w) -> (
      (* A full pipe already holds a pending nudge; any other failure
         just degrades a timed wait to its deadline. *)
      try ignore (Unix.write_substring w "x" 0 1) with Unix.Unix_error _ -> ())

type exclusion = Mutex.t

let exclusion () = Mutex.create ()

let exclusive mu f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

type handle = unit Domain.t

let spawn f = Domain.spawn f
let join = Domain.join

let parallel thunks = List.iter Domain.join (List.map Domain.spawn thunks)

let yield () = Domain.cpu_relax ()

let pause n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

(* Simulator cost-model charges have no physical counterpart: the real
   cost of the modelled work (read-set appends and the like) is paid by
   the work itself. *)
let charge _ = ()
let self_id () = (Domain.self () :> int)

(* Thread-local storage keyed by {e systhread}, not just domain.  The
   server's event loops offload blocking operations (BLPOP parks,
   watch waits) to helper threads that live in the same domain as the
   loop; with plain [Domain.DLS] those threads would share one
   [thread_ctx] — one descriptor pool, one [cur_tx] — and corrupt each
   other's transactions.  Each domain therefore keeps a small
   registry of per-thread values inside its DLS slot.

   Concurrency: systhreads of one domain never run in parallel (the
   runtime lock serializes them), but a thread switch can occur at any
   allocation point.  The fast path reads the immutable [(tid, value)]
   pair through a single field load, so it can never observe a torn
   update; the slow path serializes its read-modify-write of the
   registry under a mutex. *)
type 'a cell = {
  mutable last : int * 'a;  (** most recent thread's binding *)
  mutable others : (int * 'a) list;  (** colder threads of this domain *)
  mu : Mutex.t;
}

type 'a tls = { init : unit -> 'a; key : 'a cell Domain.DLS.key }

let tls init =
  {
    init;
    key =
      Domain.DLS.new_key (fun () ->
          {
            last = (Thread.id (Thread.self ()), init ());
            others = [];
            mu = Mutex.create ();
          });
  }

let tls_slow t (c : _ cell) tid =
  Mutex.lock c.mu;
  let (last_tid, _) = c.last in
  let v =
    if last_tid = tid then snd c.last
    else begin
      let v =
        match List.assoc_opt tid c.others with
        | Some v ->
            c.others <- List.remove_assoc tid c.others;
            v
        | None -> t.init ()
      in
      c.others <- c.last :: c.others;
      c.last <- (tid, v);
      v
    end
  in
  Mutex.unlock c.mu;
  v

let tls_get t =
  let c = Domain.DLS.get t.key in
  let tid = Thread.id (Thread.self ()) in
  let (last_tid, v) = c.last in
  if last_tid = tid then v else tls_slow t c tid

let tls_set t v =
  let c = Domain.DLS.get t.key in
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock c.mu;
  if fst c.last = tid then c.last <- (tid, v)
  else begin
    c.others <- List.remove_assoc tid c.others;
    c.others <- c.last :: c.others;
    c.last <- (tid, v)
  end;
  Mutex.unlock c.mu
