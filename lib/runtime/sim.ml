open Effect
open Effect.Deep

exception Deadlock of int list

exception Step_limit_exceeded

type costs = {
  get : int;
  set : int;
  cas : int;
  faa : int;
  yield : int;
  spawn : int;
}

let default_costs = { get = 1; set = 1; cas = 2; faa = 2; yield = 1; spawn = 0 }

type policy =
  | Event_driven
  | Random_sched of int
  | Scripted of int array

type decision = {
  ready : int list;  (** runnable thread ids, ascending *)
  chosen : int;
  yielder : int;  (** thread that just yielded; -1 if it blocked/finished *)
}

type info = {
  makespan : int;
  steps : int;
  switches : int;
  trace : decision list;
}

type status = Runnable | Running | Blocked | Parked | Finished

type wake = [ `Woken | `Timeout ]

type tstate = {
  tid : int;
  mutable clock : int;
  mutable status : status;
  mutable resume : (unit -> unit) option;
  mutable joiners : tstate list;
  mutable wake : wake;
      (** why a [Parked] thread was made ready: [`Woken] by {!unpark},
          [`Timeout] by its deadline timer *)
  mutable park_seq : int;
      (** parking generation, so a stale timer entry (the thread was
          unparked, or even parked again) can be recognised and skipped *)
}

type sched = {
  policy : policy;
  costs : costs;
  record_trace : bool;
  step_limit : int;
  rng : Polytm_util.Rng.t option;
  script : int array;
  mutable script_pos : int;
  (* Event_driven keeps runnables in a min-heap keyed by (clock, seq);
     the other policies use a list kept sorted ascending by tid so the
     full runnable set is visible to the choice function without a
     per-decision sort. *)
  heap : (int * int * tstate) Polytm_util.Heap.t;
  (* Pending park deadlines as (deadline, seq, thread, park_seq); entries
     whose thread is no longer [Parked] with the same generation are
     stale and get skipped lazily. *)
  timers : (int * int * tstate * int) Polytm_util.Heap.t;
  mutable ready : tstate list;
  mutable seq : int;
  mutable threads : tstate list; (* all, most recent first *)
  mutable nthreads : int;
  mutable nlive : int;
  mutable current : tstate option;
  mutable steps : int;
  mutable switches : int;
  mutable trace_rev : decision list;
  mutable last_yielder : int;  (** tid of the last thread to suspend while
                                   still runnable; -1 otherwise *)
  mutable failure : exn option;
}

type _ Effect.t +=
  | Suspend : unit Effect.t
  | Block : int -> unit Effect.t
  | Park : int option -> wake Effect.t

(* The simulator is single-domain by construction, so a global current
   scheduler is safe; it also lets algorithm code call [tick] without
   threading a handle everywhere. *)
let current_sched : sched option ref = ref None

let inside_run () =
  match !current_sched with
  | None -> false
  | Some s -> Option.is_some s.current

let current_costs () =
  match !current_sched with None -> default_costs | Some s -> s.costs

let cur_thread s =
  match s.current with
  | Some t -> t
  | None -> invalid_arg "Sim: no current thread"

let heap_cmp (c1, s1, _) (c2, s2, _) =
  if c1 <> c2 then Int.compare c1 c2 else Int.compare s1 s2

let timer_cmp (d1, s1, _, _) (d2, s2, _, _) =
  if d1 <> d2 then Int.compare d1 d2 else Int.compare s1 s2

(* The ready list is kept sorted ascending by tid at insertion, so a
   decision point reads it as-is instead of re-sorting (with a
   polymorphic compare, no less) on every step. *)
let rec insert_ready t = function
  | [] -> [ t ]
  | x :: _ as l when t.tid < x.tid -> t :: l
  | x :: rest -> x :: insert_ready t rest

let make_ready s t =
  t.status <- Runnable;
  match s.policy with
  | Event_driven ->
      s.seq <- s.seq + 1;
      Polytm_util.Heap.push s.heap (t.clock, s.seq, t)
  | Random_sched _ | Scripted _ -> s.ready <- insert_ready t s.ready

(* Drop stale timer entries (thread no longer parked, or re-parked under
   a newer generation) off the top of the timer heap, then report the
   earliest live deadline. *)
let rec live_timer_deadline s =
  match Polytm_util.Heap.peek s.timers with
  | None -> None
  | Some (d, _, t, pseq) ->
      if t.status = Parked && t.park_seq = pseq then Some d
      else begin
        ignore (Polytm_util.Heap.pop s.timers);
        live_timer_deadline s
      end

(* Fire the earliest live timer: the parked thread wakes with [`Timeout]
   at its deadline (virtual time never runs backwards for it). Returns
   false when no live timer exists or the earliest one is not due before
   [min_run_clock] (the clock of the best runnable thread, if any). *)
let fire_due_timer s ~min_run_clock =
  match live_timer_deadline s with
  | None -> false
  | Some d -> (
      match min_run_clock with
      | Some c when d > c -> false
      | Some _ | None -> (
          match Polytm_util.Heap.pop s.timers with
          | None -> false
          | Some (_, _, t, _) ->
              t.wake <- `Timeout;
              t.clock <- max t.clock d;
              make_ready s t;
              true))

(* Pick the next thread to run according to the policy; [None] when no
   thread is runnable. Park-deadline timers fire deterministically in
   virtual time: under [Event_driven] a due timer competes with runnable
   threads by clock; under [Random_sched]/[Scripted] timers only fire
   when nothing else is runnable, so they are never a decision point and
   recorded traces stay replayable. *)
let rec next_ready s =
  match s.policy with
  | Event_driven -> (
      let min_run_clock =
        match Polytm_util.Heap.peek s.heap with
        | Some (c, _, _) -> Some c
        | None -> None
      in
      if fire_due_timer s ~min_run_clock then next_ready s
      else
        match Polytm_util.Heap.pop s.heap with
        | None -> None
        | Some (_, _, t) -> Some t)
  | Random_sched _ | Scripted _ -> (
      match s.ready with
      | [] ->
          if fire_due_timer s ~min_run_clock:None then next_ready s else None
      | [ t ] ->
          (* Not a decision point: no trace entry, no script consumption,
             so recorded traces align with script replay positions. *)
          s.ready <- [];
          Some t
      | sorted ->
          let ids = List.map (fun t -> t.tid) sorted in
          let chosen =
            match s.policy with
            | Random_sched _ ->
                let rng = Option.get s.rng in
                List.nth sorted (Polytm_util.Rng.int rng (List.length sorted))
            | Scripted script when s.script_pos < Array.length script ->
                let want = script.(s.script_pos) in
                s.script_pos <- s.script_pos + 1;
                (match List.find_opt (fun t -> t.tid = want) sorted with
                | Some t -> t
                | None ->
                    invalid_arg
                      (Printf.sprintf
                         "Sim: scripted choice %d not runnable at step %d" want
                         s.script_pos))
            | Scripted _ | Event_driven -> (
                (* Past the script: continue the yielding thread when
                   possible (non-preemptive fallback, which lets the
                   explorer bound preemptions), else the smallest id. *)
                match
                  List.find_opt (fun t -> t.tid = s.last_yielder) sorted
                with
                | Some t -> t
                | None -> List.hd sorted)
          in
          s.ready <- List.filter (fun t -> t.tid <> chosen.tid) sorted;
          if s.record_trace then
            s.trace_rev <-
              { ready = ids; chosen = chosen.tid; yielder = s.last_yielder }
              :: s.trace_rev;
          Some chosen)

let finish_thread s t =
  t.status <- Finished;
  s.nlive <- s.nlive - 1;
  List.iter (make_ready s) t.joiners;
  t.joiners <- []

(* Wrap a thread body with the effect handler that turns [Suspend] and
   [Block] into stored continuations for the scheduler loop. *)
let thread_body s t f () =
  match_with
    (fun () ->
      f ();
      s.last_yielder <- -1;
      finish_thread s t)
    ()
    {
      retc = Fun.id;
      exnc =
        (fun e ->
          finish_thread s t;
          if s.failure = None then s.failure <- Some e);
      effc =
        (fun (type a) (e : a Effect.t) ->
          match e with
          | Suspend ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.resume <- Some (fun () -> continue k ());
                  s.last_yielder <- t.tid;
                  make_ready s t)
          | Block target_tid ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let target =
                    List.find (fun x -> x.tid = target_tid) s.threads
                  in
                  t.resume <- Some (fun () -> continue k ());
                  t.status <- Blocked;
                  s.last_yielder <- -1;
                  target.joiners <- t :: target.joiners)
          | Park deadline ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.resume <- Some (fun () -> continue k t.wake);
                  t.status <- Parked;
                  t.wake <- `Woken;
                  t.park_seq <- t.park_seq + 1;
                  s.last_yielder <- -1;
                  (match deadline with
                  | None -> ()
                  | Some d ->
                      s.seq <- s.seq + 1;
                      Polytm_util.Heap.push s.timers (d, s.seq, t, t.park_seq)))
          | _ -> None);
    }

let sched_ref () =
  match !current_sched with
  | Some s -> s
  | None -> invalid_arg "Sim: operation outside a simulation run"

let spawn f =
  let s = sched_ref () in
  let parent = cur_thread s in
  let t =
    {
      tid = s.nthreads;
      clock = parent.clock;
      status = Runnable;
      resume = None;
      joiners = [];
      wake = `Woken;
      park_seq = 0;
    }
  in
  s.nthreads <- s.nthreads + 1;
  s.nlive <- s.nlive + 1;
  s.threads <- t :: s.threads;
  t.resume <- Some (thread_body s t f);
  make_ready s t;
  if s.costs.spawn > 0 then parent.clock <- parent.clock + s.costs.spawn;
  t.tid

let tick n =
  match !current_sched with
  | None -> ()
  | Some s -> (
      let t = cur_thread s in
      t.clock <- t.clock + n;
      s.steps <- s.steps + 1;
      if s.steps > s.step_limit then raise Step_limit_exceeded;
      (* Fast path for the event policy: if this thread still has the
         smallest clock it would be rescheduled immediately, so keep
         running without the effect round-trip. *)
      match s.policy with
      | Event_driven -> (
          let timer_due =
            (* Cheap when no thread is parked: the timer heap is empty
               and [live_timer_deadline] is a single [None] peek. *)
            match live_timer_deadline s with
            | Some d -> d < t.clock
            | None -> false
          in
          if timer_due then begin
            s.switches <- s.switches + 1;
            perform Suspend
          end
          else
            match Polytm_util.Heap.peek s.heap with
            | Some (c, _, _) when c < t.clock ->
                s.switches <- s.switches + 1;
                perform Suspend
            | Some _ | None -> ())
      | Random_sched _ | Scripted _ ->
          s.switches <- s.switches + 1;
          perform Suspend)

(* Park the calling thread until {!unpark} or the (virtual-time)
   deadline. Outside a run this is a no-op returning [`Woken] — there is
   no scheduler to wake us, and callers treat spurious wakeups as
   harmless. *)
let park ?deadline () =
  if inside_run () then perform (Park deadline) else `Woken

(* Wake a parked thread. The wakee's clock advances to the waker's (a
   wakeup cannot land before the commit that caused it); no-op when the
   target is not currently parked. *)
let unpark tid =
  match !current_sched with
  | None -> ()
  | Some s -> (
      match List.find_opt (fun t -> t.tid = tid) s.threads with
      | None -> ()
      | Some t ->
          if t.status = Parked then begin
            let waker_clock =
              match s.current with Some w -> w.clock | None -> 0
            in
            t.wake <- `Woken;
            t.clock <- max t.clock waker_clock;
            make_ready s t
          end)

let join tid =
  let s = sched_ref () in
  let target = List.find_opt (fun x -> x.tid = tid) s.threads in
  match target with
  | None -> invalid_arg "Sim.join: unknown thread id"
  | Some target -> if target.status <> Finished then perform (Block tid)

let yield () =
  match !current_sched with
  | None -> ()
  | Some s -> tick s.costs.yield

let now () =
  match !current_sched with
  | None -> 0
  | Some s -> ( match s.current with Some t -> t.clock | None -> 0)

let self () =
  match !current_sched with
  | None -> 0
  | Some s -> ( match s.current with Some t -> t.tid | None -> 0)

let run ?(policy = Event_driven) ?(costs = default_costs) ?(record_trace = false)
    ?(step_limit = max_int) main =
  if Option.is_some !current_sched then invalid_arg "Sim.run: runs must not nest";
  let record_trace =
    record_trace || match policy with Scripted _ -> true | _ -> false
  in
  let s =
    {
      policy;
      costs;
      record_trace;
      step_limit;
      rng =
        (match policy with
        | Random_sched seed -> Some (Polytm_util.Rng.create seed)
        | Event_driven | Scripted _ -> None);
      script = (match policy with Scripted a -> a | _ -> [||]);
      script_pos = 0;
      heap = Polytm_util.Heap.create ~cmp:heap_cmp;
      timers = Polytm_util.Heap.create ~cmp:timer_cmp;
      ready = [];
      seq = 0;
      threads = [];
      nthreads = 0;
      nlive = 0;
      current = None;
      steps = 0;
      switches = 0;
      trace_rev = [];
      last_yielder = -1;
      failure = None;
    }
  in
  let result = ref None in
  let t0 =
    {
      tid = 0;
      clock = 0;
      status = Runnable;
      resume = None;
      joiners = [];
      wake = `Woken;
      park_seq = 0;
    }
  in
  s.nthreads <- 1;
  s.nlive <- 1;
  s.threads <- [ t0 ];
  t0.resume <- Some (thread_body s t0 (fun () -> result := Some (main ())));
  make_ready s t0;
  current_sched := Some s;
  let cleanup () = current_sched := None in
  let rec loop () =
    if Option.is_some s.failure then ()
    else
      match next_ready s with
      | None ->
          if s.nlive > 0 then begin
            let blocked =
              List.filter_map
                (fun t ->
                  if t.status = Blocked || t.status = Parked then Some t.tid
                  else None)
                s.threads
            in
            s.failure <- Some (Deadlock (List.sort Int.compare blocked))
          end
      | Some t ->
          s.current <- Some t;
          t.status <- Running;
          let resume = Option.get t.resume in
          t.resume <- None;
          resume ();
          s.current <- None;
          loop ()
  in
  (try loop () with e -> cleanup (); raise e);
  cleanup ();
  (match s.failure with Some e -> raise e | None -> ());
  let makespan = List.fold_left (fun acc t -> max acc t.clock) 0 s.threads in
  let info =
    {
      makespan;
      steps = s.steps;
      switches = s.switches;
      trace = List.rev s.trace_rev;
    }
  in
  match !result with
  | Some v -> (v, info)
  | None -> assert false
