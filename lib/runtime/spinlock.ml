(** Test-and-test-and-set spinlock with exponential backoff, over any
    runtime.  This is the mutual-exclusion primitive used by the
    lock-based baseline structures (coarse, hand-over-hand and lazy
    lists, the copy-on-write set's writer lock). *)

module Make (R : Runtime_intf.RUNTIME) = struct
  type t = { flag : bool R.atomic }

  let create () = { flag = R.atomic false }

  let try_lock t = (not (R.get t.flag)) && R.cas t.flag false true

  let lock t =
    let rec attempt backoff =
      if R.get t.flag then begin
        R.pause backoff;
        attempt (min (backoff * 2) 64)
      end
      else if not (R.cas t.flag false true) then attempt (min (backoff * 2) 64)
    in
    attempt 1

  let unlock t = R.set t.flag false

  let is_locked t = R.get t.flag

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e ->
        unlock t;
        raise e
end
