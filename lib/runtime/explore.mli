(** Bounded exhaustive interleaving explorer (stateless model checking).

    [Explore] systematically enumerates every scheduling decision the
    simulator can make while running a program, in the style of
    CHESS/dscheck: the program is re-executed from scratch once per
    distinct schedule, each time replaying a recorded decision prefix
    ({!Sim.Scripted}) and then diverging.  Exploration is sound and
    complete for terminating programs whose only nondeterminism is the
    scheduler, because every shared-memory access in {!Sim_runtime} is
    a scheduling point.

    It is meant for {e small} scenarios (a handful of threads doing a
    handful of accesses): the schedule tree is exponential.  The test
    suite uses it to verify atomicity of STM commits and the baselines'
    hand-over-hand locking on minimal examples. *)

type outcome = {
  executions : int;  (** number of schedules explored *)
  truncated : bool;
      (** true when [max_executions] was hit or a run was pruned at
          [step_limit]; the property then holds for the explored subset
          of schedules only *)
}

exception Violation of { schedule : int array; exn : exn }
(** A program run raised [exn] under the thread-choice sequence
    [schedule] (replayable with [Sim.run ~policy:(Scripted schedule)]). *)

val check :
  ?max_executions:int ->
  ?max_depth:int ->
  ?max_preemptions:int ->
  ?step_limit:int ->
  ?prune_exn:(exn -> bool) ->
  (unit -> unit) ->
  outcome
(** [check program] runs [program] under every schedule, up to
    [max_executions] executions (default [100_000]); decision points
    beyond [max_depth] are not branched on; schedules requiring more
    than [max_preemptions] preemptions (switching away from a thread
    that yielded but is still runnable — CHESS-style bounding, default
    unlimited) are skipped; and runs longer than [step_limit] charged
    operations (default [100_000]) are pruned as livelocks.  [program]
    must create all of its own state so that executions are
    independent, and should [assert] (or raise) when an invariant
    breaks.
    @raise Violation on the first failing schedule. *)

val count_schedules : ?max_executions:int -> (unit -> unit) -> int
(** Number of distinct schedules of [program]; convenience over
    {!check}. *)
