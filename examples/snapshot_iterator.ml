(* A consistent iterator over a hot structure — the use case Section
   5.1 motivates with java.util.Iterator.

   Run with:  dune exec examples/snapshot_iterator.exe

   A mover keeps relabelling elements (remove k, add k+1000 in one
   transaction), so the set churns constantly while always holding
   exactly [n] elements.  The iterator walks the whole list in a
   snapshot transaction: every iteration sees a consistent — possibly
   slightly stale — state with exactly [n] elements, and the mover is
   NEVER aborted by the iterations.  The same iterator under classic
   semantics keeps aborting against the mover; we count its retries
   for contrast. *)

module Sim = Polytm_runtime.Sim
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module LS = Polytm_structs.Stm_list_set.Make (S)
open Polytm

let run_with ~size_sem =
  let stm = S.create ~max_attempts:10_000 () in
  let set = LS.create ~parse_sem:Semantics.Elastic ~size_sem stm in
  let n = 64 in
  for i = 0 to n - 1 do
    ignore (LS.add set i)
  done;
  let iterations_ok = ref 0 and iterations_bad = ref 0 in
  let (), _ =
    Sim.run (fun () ->
        let mover =
          Sim.spawn (fun () ->
              for i = 0 to n - 1 do
                S.atomically stm (fun _tx ->
                    ignore (LS.remove set i);
                    ignore (LS.add set (1000 + i)))
              done)
        in
        let iterator =
          Sim.spawn (fun () ->
              for _ = 1 to 10 do
                let seen = LS.to_list set in
                if List.length seen = n then incr iterations_ok
                else incr iterations_bad
              done)
        in
        Sim.join mover;
        Sim.join iterator)
  in
  let st = S.stats stm in
  (!iterations_ok, !iterations_bad, st)

let () =
  let ok, bad, st = run_with ~size_sem:Semantics.Snapshot in
  Printf.printf "snapshot iterator: %d consistent iterations, %d inconsistent\n"
    ok bad;
  Printf.printf "  iterator aborts: %d, updater aborts caused: %d, stale reads served: %d\n"
    st.S.snapshot_too_old (st.S.read_invalid + st.S.lock_busy) st.S.stale_reads;
  assert (bad = 0);
  let ok_c, bad_c, st_c = run_with ~size_sem:Semantics.Classic in
  Printf.printf "classic iterator:  %d consistent iterations, %d inconsistent\n"
    ok_c bad_c;
  Printf.printf "  aborts while iterating: %d\n"
    (st_c.S.read_invalid + st_c.S.lock_busy);
  assert (bad_c = 0);
  print_endline "snapshot_iterator OK"
