(* A travel-reservation service (in the spirit of STAMP's `vacation`
   benchmark): three inventory tables and a customer table, updated by
   multi-table transactions while an auditor takes snapshot reports.

   Run with:  dune exec examples/reservation.exe

   What it demonstrates:
   - transactions spanning several data structures (two Stm_maps per
     booking) with no visible locking;
   - the snapshot semantics on a *composite* read: the auditor sums
     inventory across all three tables plus every customer's bookings
     in one consistent view, without ever aborting the booking threads;
   - failure atomicity: a booking that finds any leg unavailable
     aborts the whole itinerary via orelse. *)

module Sim = Polytm_runtime.Sim
module R = Polytm_runtime.Sim_runtime
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module Map = Polytm_structs.Stm_map.Make (S)
open Polytm

type world = {
  stm : S.t;
  cars : unit Map.t;  (* available resource units, one binding each *)
  rooms : unit Map.t;
  flights : unit Map.t;
  bookings : int Map.t;  (* customer id -> number of reserved legs *)
}

let capacity = 30

let make_world () =
  let stm = S.create () in
  let table () =
    let m = Map.create stm in
    for i = 0 to capacity - 1 do
      ignore (Map.add m i ())
    done;
    m
  in
  {
    stm;
    cars = table ();
    rooms = table ();
    flights = table ();
    bookings = Map.create ~size_sem:Semantics.Snapshot stm;
  }

(* Take any available unit out of a table; abort the enclosing
   transaction when the table is empty (rolled back by orelse). *)
let take tx w table =
  let rec try_from i =
    if i >= capacity then S.abort tx
    else if Map.remove table i then ()
    else try_from (i + 1)
  in
  ignore w;
  try_from 0

(* Book an itinerary: one unit from each requested table, all or
   nothing. *)
let book w customer ~car ~room ~flight =
  S.atomically w.stm (fun tx ->
      S.orelse tx
        (fun tx ->
          if car then take tx w w.cars;
          if room then take tx w w.rooms;
          if flight then take tx w w.flights;
          let legs = Bool.to_int car + Bool.to_int room + Bool.to_int flight in
          let current = Option.value ~default:0 (Map.find_opt w.bookings customer) in
          ignore (Map.add w.bookings customer (current + legs));
          true)
        (fun _ -> false))

(* The auditor: inventory remaining + legs booked must always equal
   3 * capacity, across four structures, read in one snapshot. *)
let audit w =
  S.atomically ~sem:Semantics.Snapshot w.stm (fun _tx ->
      let remaining =
        Map.size w.cars + Map.size w.rooms + Map.size w.flights
      in
      let booked = Map.fold w.bookings (fun acc _ legs -> acc + legs) 0 in
      (remaining, booked))

let () =
  let w = make_world () in
  let booked_ok = ref 0 and booked_failed = ref 0 in
  let audits = ref 0 and bad_audits = ref 0 in
  let (), info =
    Sim.run (fun () ->
        let customers =
          List.init 6 (fun c ->
              Sim.spawn (fun () ->
                  let rng = Polytm_util.Rng.create (c + 1) in
                  for _ = 1 to 8 do
                    let car = Polytm_util.Rng.bool rng
                    and room = Polytm_util.Rng.bool rng
                    and flight = Polytm_util.Rng.bool rng in
                    if car || room || flight then
                      if book w c ~car ~room ~flight then incr booked_ok
                      else incr booked_failed
                  done))
        in
        let auditor =
          Sim.spawn (fun () ->
              for _ = 1 to 10 do
                let remaining, booked = audit w in
                incr audits;
                if remaining + booked <> 3 * capacity then incr bad_audits;
                Sim.yield ()
              done)
        in
        List.iter Sim.join customers;
        Sim.join auditor)
  in
  let remaining, booked = audit w in
  Printf.printf "bookings: %d succeeded, %d rejected (sold out)\n" !booked_ok
    !booked_failed;
  Printf.printf "final state: %d units remaining, %d legs booked (total %d)\n"
    remaining booked (remaining + booked);
  Printf.printf "audits while booking: %d, inconsistent: %d\n" !audits
    !bad_audits;
  Printf.printf "virtual makespan: %d ticks\n" info.Sim.makespan;
  Format.printf "stm stats: %a@." S.pp_stats (S.stats w.stm);
  assert (remaining + booked = 3 * capacity);
  assert (!bad_audits = 0);
  print_endline "reservation OK"
