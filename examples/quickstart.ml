(* Quickstart: transactional bank accounts on real OCaml domains.
   Run with:  dune exec examples/quickstart.exe

   Demonstrates the 60-second tour of the API:
   - create an STM instance and transactional variables;
   - delimit sequential code with [atomically] (the novice's view);
   - pick relaxed semantics per transaction (the expert's view):
     a [Snapshot] transaction sums every account without aborting the
     transfers racing against it;
   - compose alternatives with [orelse]. *)

module S = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)
open Polytm

let () =
  let stm = S.create () in
  let accounts = Array.init 8 (fun _ -> S.tvar stm 1000) in

  (* A transfer is the sequential code, wrapped in a transaction. *)
  let transfer ~src ~dst amount =
    S.atomically stm (fun tx ->
        let s = S.read tx accounts.(src) in
        S.write tx accounts.(src) (s - amount);
        let d = S.read tx accounts.(dst) in
        S.write tx accounts.(dst) (d + amount))
  in

  (* The audit is read-only and touches every account: as a classic
     transaction it would abort whenever any transfer commits underneath
     it; as a snapshot transaction it reads a consistent past instead. *)
  let total () =
    S.atomically ~sem:Semantics.Snapshot stm (fun tx ->
        Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
  in

  (* A guarded withdrawal with a fallback, composed with orelse. *)
  let withdraw_or_log account amount =
    S.atomically stm (fun tx ->
        S.orelse tx
          (fun tx ->
            let balance = S.read tx accounts.(account) in
            if balance < amount then S.abort tx;
            S.write tx accounts.(account) (balance - amount);
            `Withdrew amount)
          (fun _ -> `Insufficient))
  in

  let audits_ok = Atomic.make 0 and audits_bad = Atomic.make 0 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Polytm_util.Rng.create (d + 1) in
            for _ = 1 to 500 do
              if Polytm_util.Rng.int rng 10 = 0 then begin
                (* Concurrent audit: the global balance is invariant. *)
                if total () = 8000 then Atomic.incr audits_ok
                else Atomic.incr audits_bad
              end
              else
                transfer
                  ~src:(Polytm_util.Rng.int rng 8)
                  ~dst:(Polytm_util.Rng.int rng 8)
                  (Polytm_util.Rng.int rng 100)
            done))
  in
  List.iter Domain.join domains;

  Printf.printf "final balances: %s\n"
    (String.concat " "
       (Array.to_list
          (Array.map
             (fun a -> string_of_int (S.atomically stm (fun tx -> S.read tx a)))
             accounts)));
  Printf.printf "total: %d (expected 8000)\n" (total ());
  Printf.printf "concurrent audits: %d consistent, %d inconsistent\n"
    (Atomic.get audits_ok) (Atomic.get audits_bad);
  (match withdraw_or_log 0 1_000_000 with
  | `Withdrew _ -> print_endline "withdraw: unexpectedly succeeded"
  | `Insufficient -> print_endline "withdraw of 1,000,000: insufficient funds (orelse fallback)");
  let st = S.stats stm in
  Format.printf "stm stats: %a@." S.pp_stats st;
  assert (total () = 8000);
  assert (Atomic.get audits_bad = 0);
  print_endline "quickstart OK"
