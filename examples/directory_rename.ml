(* The paper's Figure 3: Bob composes Alice's component operations
   [remove] and [create] into a new operation [rename] that preserves
   the safety and liveness of its components.

   Run with:  dune exec examples/directory_rename.exe

   Two directories, two threads renaming files in opposite directions
   (d1 -> d2 while d2 -> d1): the scenario that deadlocks naive
   lock-based designs unless every programmer knows the global lock
   ordering (the paper cites GFS's depth-ordered directory locks and
   Linux's mm/filemap.c comment block).  With transactions, Bob writes
   [rename] without knowing anything about Alice's implementation, and
   the simulator runs every seed to completion: conflicts are resolved
   by the contention manager, not by programmer-supplied ordering. *)

module Sim = Polytm_runtime.Sim
module R = Polytm_runtime.Sim_runtime
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module Dir = Polytm_structs.Stm_hash_set.Make (S)
open Polytm

let () =
  let deadlocks = ref 0 and runs = ref 0 in
  for seed = 1 to 50 do
    incr runs;
    let stm = S.create () in
    (* Alice's module: a directory holding file ids, with remove and
       create operations. *)
    let d1 = Dir.create ~size_sem:Semantics.Snapshot stm in
    let d2 = Dir.create ~size_sem:Semantics.Snapshot stm in
    for f = 0 to 9 do
      ignore (Dir.add d1 f);
      ignore (Dir.add d2 (100 + f))
    done;

    (* Bob's composite: atomically move a file between directories.
       The nested Dir operations flatten into this outer classic
       transaction. *)
    let rename ~from_dir ~to_dir file =
      S.atomically stm (fun _tx ->
          if Dir.remove from_dir file then ignore (Dir.add to_dir file))
    in

    let total () =
      S.atomically ~sem:Semantics.Snapshot stm (fun _tx ->
          Dir.size d1 + Dir.size d2)
    in

    match
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            [
              (fun () ->
                for f = 0 to 9 do
                  rename ~from_dir:d1 ~to_dir:d2 f
                done);
              (fun () ->
                for f = 100 to 109 do
                  rename ~from_dir:d2 ~to_dir:d1 f
                done);
              (fun () ->
                (* An auditor sees a constant total throughout. *)
                for _ = 1 to 5 do
                  assert (total () = 20)
                done);
            ])
    with
    | (), _ -> ()
    | exception Sim.Deadlock _ -> incr deadlocks
  done;
  Printf.printf "cross-directory renames: %d/%d seeds completed, %d deadlocks\n"
    (!runs - !deadlocks) !runs !deadlocks;
  assert (!deadlocks = 0);
  print_endline "directory_rename OK"
