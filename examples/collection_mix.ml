(* The paper's collection benchmark in miniature, with the abort
   statistics that explain Figures 5, 7 and 9.

   Run with:  dune exec examples/collection_mix.exe

   Three configurations of the SAME data structure — only the
   per-operation semantics hints differ — run the same workload at 32
   virtual threads.  Watch the abort columns: classic burns retries on
   read-validation failures (false conflicts, Section 3.2); the
   elastic profile trades them for cuts; the mixed profile also stops
   the size transactions from aborting by reading versioned history. *)

module F = Polytm_bench_kit.Figures
module H = Polytm_bench_kit.Harness
module A = Polytm_structs.Adapters
module AM = Polytm_structs.Adapters.Make (Polytm_runtime.Sim_runtime)
module W = Polytm_bench_kit.Workload

let () =
  let spec = W.spec_of_size 512 in
  let duration = 150_000 and threads = 32 in
  let baseline =
    (H.run ~make:F.seq_system.F.make ~spec ~threads:1 ~duration ~seed:1 ())
      .H.throughput
  in
  Printf.printf
    "collection of %d elements, %d%% updates, %d%% size, %d virtual threads\n\n"
    spec.W.initial_size spec.W.update_pct spec.W.size_pct threads;
  Printf.printf "%-18s %8s %9s %8s %8s %6s %7s %7s\n" "profile" "speedup"
    "completed" "aborts" "r-inval" "cuts" "stale" "failed";
  List.iter
    (fun (name, profile, extend_on_stale) ->
      let stm = ref None in
      let make () =
        let s = AM.S.create ~max_attempts:200 ~extend_on_stale () in
        stm := Some s;
        ( AM.stm_list ~profile s,
          (function AM.S.Too_many_attempts _ -> true | _ -> false),
          fun () -> None )
      in
      let r = H.run ~make ~spec ~threads ~duration ~seed:7 () in
      let st = AM.S.stats (Option.get !stm) in
      Printf.printf "%-18s %8.2f %9d %8d %8d %6d %7d %7d\n" name
        (r.H.throughput /. baseline)
        r.H.completed st.AM.S.aborts st.AM.S.read_invalid st.AM.S.cuts
        st.AM.S.stale_reads r.H.failed)
    [
      ("classic (TL2)", A.classic_profile, false);
      ("elastic+classic", A.elastic_classic_profile, true);
      ("elastic+snapshot", A.mixed_profile, true);
    ];
  print_endline "\ncollection_mix OK"
