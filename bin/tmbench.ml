(* tmbench — parameterised driver for the paper's collection benchmark.

   Everything the figures depend on is a flag here: list size, update
   and size ratios, run duration (virtual ticks), thread counts,
   effective hardware parallelism, RNG seed, and which systems to
   sweep.  `tmbench figures` regenerates Figures 4/5/7/9 like
   bench/main.exe; `tmbench sweep` runs a single system and prints its
   points with full STM statistics, which is what the ablation studies
   in EXPERIMENTS.md use. *)

module F = Polytm_bench_kit.Figures
module H = Polytm_bench_kit.Harness
module W = Polytm_bench_kit.Workload
module Report = Polytm_bench_kit.Report
module T = Polytm_telemetry
open Cmdliner

(* ---- shared options ---------------------------------------------------- *)

let size_t =
  Arg.(value & opt int 1024 & info [ "size"; "n" ] ~docv:"N"
         ~doc:"Initial number of elements in the collection.")

let update_t =
  Arg.(value & opt int 10 & info [ "update" ] ~docv:"PCT"
         ~doc:"Percentage of update operations (add+remove).")

let sizepct_t =
  Arg.(value & opt int 10 & info [ "sizepct" ] ~docv:"PCT"
         ~doc:"Percentage of size operations.")

let duration_t =
  Arg.(value & opt int 300_000 & info [ "duration" ] ~docv:"TICKS"
         ~doc:"Virtual ticks per run.")

let threads_t =
  Arg.(value & opt (list int) [ 1; 2; 4; 8; 16; 32; 64 ]
       & info [ "threads"; "t" ] ~docv:"LIST"
           ~doc:"Comma-separated virtual thread counts to sweep.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let cores_t =
  Arg.(value & opt int 16 & info [ "cores" ] ~docv:"P"
         ~doc:"Effective hardware parallelism for the Brent bound \
               (the Niagara 2 substitute; see DESIGN.md).")

let structure_t =
  let parse = function
    | "list" -> Ok F.List_structure
    | "hash" -> Ok F.Hash_structure
    | "skiplist" -> Ok F.Skiplist_structure
    | s -> Error (`Msg (Printf.sprintf "unknown structure %S" s))
  in
  let print ppf st = Format.pp_print_string ppf (F.structure_name st) in
  Arg.(value
       & opt (conv (parse, print)) F.List_structure
       & info [ "structure" ] ~docv:"KIND"
           ~doc:"Search structure backing the STM systems: list (the                  paper's), hash, or skiplist.")

let paper_t =
  Arg.(value & flag & info [ "paper" ]
         ~doc:"Use the paper's parameters (4096 elements, longer runs); \
               overrides $(b,--size) and $(b,--duration).")

let params_of size update sizepct duration threads seed cores structure paper
    =
  if paper then
    { F.paper_params with F.threads_list = threads; seed; cores; structure }
  else
    {
      F.spec =
        {
          W.initial_size = size;
          key_range = 2 * size;
          update_pct = update;
          size_pct = sizepct;
        };
      duration;
      threads_list = threads;
      seed;
      cores;
      structure;
    }

let params_t =
  Term.(
    const params_of $ size_t $ update_t $ sizepct_t $ duration_t $ threads_t
    $ seed_t $ cores_t $ structure_t $ paper_t)

let progress () =
  let t0 = Unix.gettimeofday () in
  fun msg -> Format.eprintf "[%6.1fs] %s@." (Unix.gettimeofday () -. t0) msg

(* ---- figures command --------------------------------------------------- *)

let csv_t =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~docv:"FILE"
           ~doc:"Also write every measured point as CSV (for plotting).")

let write_csv file m =
  let oc = open_out file in
  output_string oc "figure,system,threads,speedup,throughput,completed,failed\n";
  List.iter
    (fun (fig, series) ->
      List.iter
        (fun s ->
          List.iter
            (fun p ->
              Printf.fprintf oc "%s,%s,%d,%f,%f,%d,%d\n" fig
                s.F.series_label p.F.threads p.F.speedup p.F.throughput
                p.F.completed p.F.failed)
            s.F.points)
        series)
    [
      ("fig5", (F.fig5_of m).F.series);
      ("fig7", (F.fig7_of m).F.series);
      ("fig9", (F.fig9_of m).F.series);
    ];
  close_out oc

let figures_cmd =
  let run params csv =
    Format.printf "%a" Report.pp_fig4 ();
    let m = F.run_all ~progress:(progress ()) params in
    Format.printf "%a" Report.pp_figure (F.fig5_of m);
    Format.printf "%a" Report.pp_figure (F.fig7_of m);
    Format.printf "%a" Report.pp_figure (F.fig9_of m);
    Format.printf "%a" Report.pp_claims (F.claims m);
    match csv with
    | Some file ->
        write_csv file m;
        Format.printf "@.points written to %s@." file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate Figures 4, 5, 7 and 9 plus the \
                              headline ratio table.")
    Term.(const run $ params_t $ csv_t)

(* ---- sweep command ----------------------------------------------------- *)

let system_of_name = function
  | "seq" -> Ok (fun ?trace:_ _ -> F.seq_system)
  | "classic" -> Ok F.classic_system_of
  | "collection" | "cow" -> Ok (fun ?trace:_ _ -> F.collection_system)
  | "elastic" -> Ok F.elastic_system_of
  | "mixed" -> Ok F.mixed_system_of
  | s -> Error (Printf.sprintf "unknown system %S" s)

let system_t =
  let parse s = Result.map_error (fun m -> `Msg m) (system_of_name s) in
  let print ppf (sys_of : ?trace:T.Recorder.t -> F.structure -> F.system) =
    Format.pp_print_string ppf (sys_of F.List_structure).F.sys_label
  in
  Arg.(
    required
    & pos 0 (some (conv (parse, print))) None
    & info [] ~docv:"SYSTEM"
        ~doc:"One of: seq, classic, collection, elastic, mixed.")

let trace_t =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"After the sweep, rerun the system once at the highest \
                 thread count with full lifecycle tracing and write a \
                 Chrome trace-event JSON (load in Perfetto or \
                 chrome://tracing; one lane per virtual thread).")

let write_trace ~params
    ~(sys_of : ?trace:T.Recorder.t -> F.structure -> F.system) file =
  let top = List.fold_left max 1 params.F.threads_list in
  (* Lifecycle-only recording: transaction slices and lock instants,
     no per-read events (the trace stays small and loads fast). *)
  let recorder = T.Recorder.create ~accesses:false () in
  let sys = sys_of ~trace:recorder params.F.structure in
  ignore
    (H.run ~cores:params.F.cores ~label:sys.F.sys_label ~make:sys.F.make
       ~spec:params.F.spec ~threads:top ~duration:params.F.duration
       ~seed:(params.F.seed + top) ());
  let events = T.Recorder.events recorder in
  let oc = open_out file in
  output_string oc
    (T.Json.to_string
       (T.Export.chrome_trace ~process_name:sys.F.sys_label events));
  output_char oc '\n';
  close_out oc;
  Format.printf
    "@.trace of %s @@ %d threads (%d events) written to %s@."
    sys.F.sys_label top (List.length events) file

let sweep_cmd =
  let run params (sys_of : ?trace:T.Recorder.t -> F.structure -> F.system)
      trace =
    let sys = sys_of params.F.structure in
    let baseline = F.sequential_baseline params in
    Format.printf "system: %s@." sys.F.sys_label;
    Format.printf "baseline: %.3f ops/ktick@.@." baseline;
    let series = F.run_series ~progress:(progress ()) params ~baseline sys in
    Format.printf "%8s %10s %10s %10s %8s@." "threads" "speedup" "ops/ktick"
      "completed" "failed";
    List.iter
      (fun p ->
        Format.printf "%8d %10.2f %10.3f %10d %8d@." p.F.threads p.F.speedup
          p.F.throughput p.F.completed p.F.failed;
        Format.printf "         latency(ticks): %a@." Polytm_util.Stats.Hist.pp
          p.F.latency;
        match p.F.telemetry with
        | Some snap -> Format.printf "         %a@." Report.pp_point_telemetry snap
        | None -> ())
      series.F.points;
    Option.iter (write_trace ~params ~sys_of) trace
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep one system over the thread counts and \
                            print points with full STM statistics.")
    Term.(const run $ params_t $ system_t $ trace_t)

(* ---- fig4 command ------------------------------------------------------ *)

let fig4_cmd =
  let run () = Format.printf "%a" Report.pp_fig4 () in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Schedule enumeration for Figure 4 only (fast).")
    Term.(const run $ const ())

let ablations_cmd =
  let run () =
    List.iter
      (fun t -> Format.printf "%a" Polytm_bench_kit.Ablations.pp_table t)
      (Polytm_bench_kit.Ablations.all ())
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Run the design-choice ablations: contention managers, elastic              window size, timestamp extension, semantics decomposition,              global-clock scheme (GV1 vs GV4).")
    Term.(const run $ const ())

let bank_cmd =
  let run () =
    Format.printf "%a" Polytm_bench_kit.Bank.pp_results
      (Polytm_bench_kit.Bank.compare_semantics ())
  in
  Cmd.v
    (Cmd.info "bank"
       ~doc:"The bank benchmark: transfers vs whole-bank balance audits,              classic vs snapshot (Section 4.3's toxic read-only              transactions).")
    Term.(const run $ const ())

let () =
  let doc =
    "Benchmarks reproducing 'Democratizing Transactional Programming' \
     (Middleware 2011)."
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "tmbench" ~version:"1.0.0" ~doc)
          [ figures_cmd; sweep_cmd; fig4_cmd; ablations_cmd; bank_cmd ]))
