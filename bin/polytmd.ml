(* polytmd — the PolyTM transactional store daemon.

   Hosts named STM structures (maps, hash sets, queues) over TCP
   and/or Unix-domain sockets, speaking the length-prefixed protocol
   of Polytm_server.Wire.  Every request runs as one transaction whose
   semantics comes from the request's hint (~classic / ~elastic /
   ~snapshot) — the paper's polymorphic-transaction interface, served
   over a socket.  See DESIGN.md §S16. *)

module Srv = Polytm_server.Server
module Limits = Polytm_server.Limits
module Wire = Polytm_server.Wire
open Cmdliner

let listen_t =
  Arg.(value & opt_all string []
       & info [ "listen"; "l" ] ~docv:"ADDR"
           ~doc:"Listen address: $(b,HOST:PORT) for TCP or
                 $(b,unix:PATH) for a Unix-domain socket.  Repeatable.
                 Default: 127.0.0.1:7411.")

let workers_t =
  Arg.(value & opt int 4
       & info [ "workers"; "w" ] ~docv:"N"
           ~doc:"Worker domains serving connections.")

let shards_t =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"K"
           ~doc:"Independent STM instances per algorithm.  Keys
                 hash-route to their owner shard, so single-key
                 requests never contend across shards; MULTI batches
                 spanning shards commit through the cross-shard
                 two-phase protocol.  Default 1 (the classic
                 single-instance server).")

let max_inflight_t =
  Arg.(value & opt int Limits.default.Limits.max_inflight
       & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Pipelined requests admitted per read batch before the
                 server answers BUSY.")

let max_multi_t =
  Arg.(value & opt int Limits.default.Limits.max_multi
       & info [ "max-multi" ] ~docv:"N"
           ~doc:"Commands accepted inside one MULTI batch.")

let budget_t =
  Arg.(value & opt (some int) None
       & info [ "op-budget" ] ~docv:"N"
           ~doc:"Optimistic retry budget per operation; exhaustion is
                 reported to the client as an EXHAUSTED error.")

let deadline_t =
  Arg.(value & opt (some int) None
       & info [ "op-deadline-us" ] ~docv:"USEC"
           ~doc:"Per-operation deadline in microseconds; expiry is
                 reported to the client as a DEADLINE error.")

let debug_ops_t =
  Arg.(value & flag
       & info [ "debug-ops" ]
           ~doc:"Accept DEBUG-ABORT probe requests (tests and CI).")

let struct_t =
  Arg.(value & opt_all string []
       & info [ "struct" ] ~docv:"KIND:NAME[@ALGO]"
           ~doc:"Create a structure before accepting connections, e.g.
                 $(b,map:accounts) or $(b,queue:jobs).  An optional
                 $(b,@tl2) or $(b,@norec) suffix pins the structure to
                 that algorithm's STM instance (default: the server's
                 $(b,--algo)), so a NORec map can be hosted next to a
                 TL2 queue.  Repeatable.")

let algo_t =
  let algo_conv = Arg.enum [ ("tl2", `Tl2); ("norec", `Norec) ] in
  Arg.(value & opt algo_conv `Tl2
       & info [ "algo" ] ~docv:"ALGO"
           ~doc:"STM algorithm backing structures created over the
                 wire and $(b,--struct) entries without an explicit
                 $(b,@ALGO) suffix: $(b,tl2) or $(b,norec).")

let stats_json_t =
  Arg.(value & opt (some string) None
       & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"On exit, write a JSON snapshot of server counters,
                 latency percentiles per semantics class, and the
                 telemetry commit/abort table.")

let trace_t =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"On exit, write a Chrome/Perfetto trace of transaction
                 lifecycle events.")

let max_seconds_t =
  Arg.(value & opt (some float) None
       & info [ "max-seconds" ] ~docv:"SEC"
           ~doc:"Self-terminate (gracefully) after this long — for
                 smoke tests; normally the daemon runs until SIGTERM.")

let quiet_t =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No exit summary.")

let dir_t =
  Arg.(value & opt (some string) None
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Durability root: append-only op log, checkpoints and
                 manifest live here, and the store recovers from it on
                 startup.  Omitting $(b,--dir) runs fully in memory
                 (the pre-durability server, byte for byte).")

let fsync_t =
  let fsync_conv =
    Arg.enum [ ("always", `Always); ("everysec", `Everysec); ("no", `No) ]
  in
  Arg.(value & opt fsync_conv `Everysec
       & info [ "fsync" ] ~docv:"WHEN"
           ~doc:"When op-log appends reach the disk: $(b,always) syncs
                 before any mutation is acknowledged (group commit per
                 pipelined batch), $(b,everysec) syncs from a
                 background thread (at most ~1s of acked writes at
                 risk), $(b,no) leaves it to the OS.  Only meaningful
                 with $(b,--dir).")

let checkpoint_sec_t =
  Arg.(value & opt float 60.
       & info [ "checkpoint-sec" ] ~docv:"SEC"
           ~doc:"Automatic checkpoint cadence: fold every structure
                 into a fresh checkpoint and truncate the op log every
                 SEC seconds.  0 disables the cadence (BGSAVE still
                 checkpoints on demand).  Only meaningful with
                 $(b,--dir).")

let no_persist_t =
  Arg.(value & flag
       & info [ "no-persist" ]
           ~doc:"Ignore $(b,--dir) and run in memory — for comparing a
                 durable configuration against its in-memory baseline
                 without editing the command line.")

let parse_listener s =
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Srv.Unix_sock (String.sub s 5 (String.length s - 5)))
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        with
        | Some port -> Ok (Srv.Tcp (host, port))
        | None -> Error (Printf.sprintf "bad port in %S" s))
    | None -> Error (Printf.sprintf "bad listen address %S (want HOST:PORT or unix:PATH)" s)

let parse_struct ~default_algo s =
  let algo_res, spec =
    match String.index_opt s '@' with
    | Some i -> (
        let a = String.sub s (i + 1) (String.length s - i - 1) in
        match Polytm_server.Registry.algo_of_name a with
        | Some algo -> (Ok algo, String.sub s 0 i)
        | None ->
            ( Error
                (Printf.sprintf "bad algo %S in %S (want tl2 or norec)" a s),
              s ))
    | None -> (Ok default_algo, s)
  in
  match algo_res with
  | Error _ as e -> e
  | Ok algo -> (
      match String.index_opt spec ':' with
      | Some i -> (
          let kind = String.sub spec 0 i in
          let name = String.sub spec (i + 1) (String.length spec - i - 1) in
          match Wire.kind_of_string kind with
          | Some k when name <> "" -> Ok (k, name, algo)
          | _ -> Error (Printf.sprintf "bad struct spec %S" s))
      | None ->
          Error (Printf.sprintf "bad struct spec %S (want KIND:NAME[@ALGO])" s))

let collect parse = function
  | [] -> Ok []
  | xs ->
      List.fold_left
        (fun acc x ->
          match (acc, parse x) with
          | Ok l, Ok v -> Ok (l @ [ v ])
          | (Error _ as e), _ -> e
          | _, Error m -> Error m)
        (Ok []) xs

let main listen workers shards max_inflight max_multi op_budget op_deadline_us
    debug_ops structs default_algo stats_json trace max_seconds quiet dir fsync
    checkpoint_sec no_persist =
  let listeners =
    match collect parse_listener listen with
    | Ok [] -> Ok [ Srv.Tcp ("127.0.0.1", 7411) ]
    | r -> r
  in
  match (listeners, collect (parse_struct ~default_algo) structs) with
  | Error m, _ | _, Error m -> `Error (false, m)
  | Ok listeners, Ok prestructs -> (
      let limits =
        {
          Limits.default with
          Limits.max_inflight;
          max_multi;
          op_budget;
          op_deadline_us;
          debug_ops;
        }
      in
      let cfg =
        {
          Srv.default_config with
          Srv.listeners;
          workers;
          shards;
          limits;
          prestructs;
          default_algo;
          stats_json;
          trace;
          max_seconds;
          quiet;
          persist_dir = (if no_persist then None else dir);
          fsync;
          checkpoint_sec;
        }
      in
      match Srv.run cfg with
      | _handle -> `Ok ()
      | exception Invalid_argument m -> `Error (false, m)
      | exception Failure m -> `Error (false, m)
      | exception Unix.Unix_error (e, fn, arg) ->
          `Error
            (false, Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))

let () =
  let doc =
    "PolyTM transactional store daemon: named STM structures served \
     over TCP/Unix sockets with per-request semantics hints."
  in
  let term =
    Term.(ret
            (const main $ listen_t $ workers_t $ shards_t $ max_inflight_t
           $ max_multi_t
           $ budget_t $ deadline_t $ debug_ops_t $ struct_t $ algo_t
           $ stats_json_t $ trace_t $ max_seconds_t $ quiet_t $ dir_t
           $ fsync_t $ checkpoint_sec_t $ no_persist_t))
  in
  exit (Cmd.eval (Cmd.v (Cmd.info "polytmd" ~version:"1.0.0" ~doc) term))
