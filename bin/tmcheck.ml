(* tmcheck — correctness-checking playground.

   Exposes the history checkers and the bounded model checker on the
   command line:

     tmcheck fig4                 enumerate the Figure 4 schedules
     tmcheck paper-history        analyse the Section 4.2 history H
     tmcheck enumerate ...        enumerate custom 3-transaction programs
     tmcheck explore SCENARIO     exhaustively model-check a scenario
     tmcheck record               run a random STM workload and verify
                                  its recorded history against opacity
     tmcheck stats                run a seeded workload with telemetry
                                  and print the per-site abort table
     tmcheck liveness             hammer a hot workload under the adaptive
                                  contention manager and verify the
                                  livelock-freedom guarantee *)

open Cmdliner
module Hist = Polytm_history.History
module Program = Polytm_history.Program
module T = Polytm_telemetry

(* ---- fig4 -------------------------------------------------------------- *)

let fig4_cmd =
  let run () =
    let a = Program.count_accepted Program.fig4_programs in
    Format.printf "programs: Pt = tx{r(x) r(y) r(z)}, P1 = tx{w(x)}, P2 = tx{w(z)}@.";
    Format.printf "interleavings:          %d@." a.Program.total;
    Format.printf "serializable:           %d@." a.Program.serializable;
    Format.printf "opaque:                 %d@." a.Program.opaque;
    Format.printf "elastic-opaque:         %d  (no elastic transaction declared;@.                            with Pt elastic all 20 are accepted — try:@.                            tmcheck enumerate e:rx,ry,rz wx wz)@." a.Program.elastic_opaque;
    Format.printf "@.precluded by opacity:@.";
    List.iter
      (fun h ->
        if not (Polytm_history.Opacity.accepts h) then
          Format.printf "  %a@." Hist.pp h)
      (Program.interleavings Program.fig4_programs)
  in
  Cmd.v (Cmd.info "fig4" ~doc:"Enumerate the Figure 4 schedules.")
    Term.(const run $ const ())

(* ---- the paper's Section 4.2 history ----------------------------------- *)

let paper_history_cmd =
  let run () =
    let r = Hist.read and w = Hist.write in
    let h = Hist.make [ r 1 0; r 1 1; r 2 0; r 2 1; w 2 0; r 1 2; w 1 1 ] in
    Format.printf "H = %a@." Hist.pp h;
    Format.printf "   (x = head, y = n, z = t; i = 1, j = 2)@.@.";
    Format.printf "serializable:        %b@." (Polytm_history.Serializability.accepts h);
    Format.printf "opaque:              %b@." (Polytm_history.Opacity.accepts h);
    Format.printf "elastic (1 elastic): %b@."
      (Polytm_history.Elastic.accepts ~elastic:[ 1 ] h);
    Format.printf "@.consistent cuts of transaction 1:@.";
    List.iter
      (fun cuts ->
        Format.printf "  positions [%s]@."
          (String.concat "; " (List.map string_of_int cuts)))
      (Polytm_history.Elastic.consistent_cuts h 1)
  in
  Cmd.v
    (Cmd.info "paper-history"
       ~doc:"Analyse the paper's Section 4.2 history H.")
    Term.(const run $ const ())

(* ---- custom enumeration ------------------------------------------------ *)

let parse_accesses s =
  (* "rx,ry,wz" -> [Read 0; Read 1; Write 2] *)
  let loc_of_char c =
    match c with
    | 'x' -> 0
    | 'y' -> 1
    | 'z' -> 2
    | 'w' -> 3
    | c -> Char.code c - Char.code 'a' + 4
  in
  List.map
    (fun tok ->
      if String.length tok <> 2 then failwith "access must be like rx or wz";
      let loc = loc_of_char tok.[1] in
      match tok.[0] with
      | 'r' -> Hist.Read loc
      | 'w' -> Hist.Write loc
      | _ -> failwith "access must start with r or w")
    (String.split_on_char ',' s)

let program_t idx name =
  Arg.(
    value
    & pos idx (some string) None
    & info [] ~docv:name
        ~doc:
          (Printf.sprintf
             "Accesses of transaction %s: comma-separated rl/wl tokens with \
              l in x,y,z,w (e.g. rx,ry,wz).  Prefix with e: for elastic."
             name))

let enumerate_cmd =
  let run p0 p1 p2 =
    let parse id = function
      | None -> None
      | Some s ->
          let elastic = String.length s > 2 && String.sub s 0 2 = "e:" in
          let body = if elastic then String.sub s 2 (String.length s - 2) else s in
          let accesses = parse_accesses body in
          Some
            (if elastic then Program.elastic id accesses
             else Program.classic id accesses)
    in
    let programs = List.filter_map Fun.id [ parse 0 p0; parse 1 p1; parse 2 p2 ] in
    if programs = [] then Format.printf "no programs given@."
    else begin
      let a = Program.count_accepted programs in
      Format.printf "interleavings:  %d@." a.Program.total;
      Format.printf "serializable:   %d@." a.Program.serializable;
      Format.printf "opaque:         %d@." a.Program.opaque;
      Format.printf "elastic-opaque: %d@." a.Program.elastic_opaque
    end
  in
  Cmd.v
    (Cmd.info "enumerate"
       ~doc:"Enumerate all schedules of up to three transactions and count \
             acceptance under each criterion.")
    Term.(const run $ program_t 0 "T0" $ program_t 1 "T1" $ program_t 2 "T2")

(* ---- model checking ----------------------------------------------------- *)

module Sim = Polytm_runtime.Sim
module Explore = Polytm_runtime.Explore
module R = Polytm_runtime.Sim_runtime
module AM = Polytm_structs.Adapters.Make (Polytm_runtime.Sim_runtime)

(* The cross-shard 2PC window (DESIGN.md §S20): one transaction writes
   [a] on shard 0 and [b] on shard 1; a spanning snapshot must observe
   the two writes atomically.  [stabilize:false] skips the bound
   vector's re-check pass, deliberately reintroducing the torn read
   for the [--expect-violation] self-test. *)
let shard_2pc_program ~stabilize () =
  let s0 = AM.S.create ~cm:Polytm.Contention.Suicide () in
  let s1 = AM.S.create ~cm:Polytm.Contention.Suicide () in
  let stms = [ s0; s1 ] in
  let a = AM.S.tvar s0 0 and b = AM.S.tvar s1 0 in
  let writer () =
    AM.S.atomically_multi ~label:"span-write" stms (fun () ->
        AM.S.atomically s0 (fun tx -> AM.S.write tx a 1);
        AM.S.atomically s1 (fun tx -> AM.S.write tx b 1))
  in
  let reader () =
    let av, bv =
      AM.S.snapshot_multi ~label:"span-read"
        ~unsafe_no_stabilize:(not stabilize) stms (fun () ->
          ( AM.S.atomically s0 (fun tx -> AM.S.read tx a),
            AM.S.atomically s1 (fun tx -> AM.S.read tx b) ))
    in
    assert (av = bv)
  in
  let t1 = Sim.spawn writer and t2 = Sim.spawn reader in
  Sim.join t1;
  Sim.join t2;
  assert (AM.S.atomically s0 (fun tx -> AM.S.read tx a) = 1);
  assert (AM.S.atomically s1 (fun tx -> AM.S.read tx b) = 1)

let scenarios : (string * string * (unit -> unit)) list =
  [
    ( "stm-increments",
      "two concurrent transactional increments never lose an update",
      fun () ->
        let stm = AM.S.create ~cm:Polytm.Contention.Suicide () in
        let v = AM.S.tvar stm 0 in
        let incr () =
          AM.S.atomically stm (fun tx -> AM.S.write tx v (AM.S.read tx v + 1))
        in
        let t1 = Sim.spawn incr and t2 = Sim.spawn incr in
        Sim.join t1;
        Sim.join t2;
        assert (AM.S.atomically stm (fun tx -> AM.S.read tx v) = 2) );
    ( "elastic-adjacent-removes",
      "adjacent removes on the elastic list leave exactly the third element",
      fun () ->
        let stm = AM.S.create ~cm:Polytm.Contention.Suicide () in
        let t = AM.List_set.create ~parse_sem:Polytm.Semantics.Elastic stm in
        ignore (AM.List_set.add t 1);
        ignore (AM.List_set.add t 2);
        ignore (AM.List_set.add t 3);
        let t1 = Sim.spawn (fun () -> ignore (AM.List_set.remove t 1)) in
        let t2 = Sim.spawn (fun () -> ignore (AM.List_set.remove t 2)) in
        Sim.join t1;
        Sim.join t2;
        assert (AM.List_set.to_list t = [ 3 ]) );
    ( "lockfree-add-remove",
      "the Harris list stays correct under a concurrent add and remove",
      fun () ->
        let t = AM.Lockfree.create () in
        ignore (AM.Lockfree.add t 1);
        ignore (AM.Lockfree.add t 2);
        let t1 = Sim.spawn (fun () -> ignore (AM.Lockfree.remove t 1)) in
        let t2 = Sim.spawn (fun () -> ignore (AM.Lockfree.add t 3)) in
        Sim.join t1;
        Sim.join t2;
        assert (AM.Lockfree.to_list t = [ 2; 3 ]) );
    ( "retry-lost-wakeup",
      "a blocking dequeue races a producer's commit into the \
       read-empty/park window and never misses the wakeup",
      fun () ->
        let stm = AM.S.create ~cm:Polytm.Contention.Suicide () in
        let q = AM.Queue.create stm in
        let got = ref None in
        let c = Sim.spawn (fun () -> got := Some (AM.Queue.take q)) in
        let p = Sim.spawn (fun () -> AM.Queue.enqueue q 7) in
        Sim.join c;
        Sim.join p;
        assert (!got = Some 7) );
    ( "retry-lost-wakeup-broken",
      "self-test, run with --expect-violation: a waiter that skips the \
       pre-park re-validation misses a commit that lands before its \
       registration and parks forever (deadlock)",
      fun () ->
        let stm =
          AM.S.create ~cm:Polytm.Contention.Suicide
            ~unsafe_skip_wake_validation:true ()
        in
        let q = AM.Queue.create stm in
        let got = ref None in
        let c = Sim.spawn (fun () -> got := Some (AM.Queue.take q)) in
        let p = Sim.spawn (fun () -> AM.Queue.enqueue q 7) in
        Sim.join c;
        Sim.join p;
        assert (!got = Some 7) );
    ( "shard-2pc",
      "a cross-shard transaction writing two shards is never read torn: \
       a concurrent spanning snapshot sees neither write or both, under \
       every schedule of the two-phase commit window",
      fun () -> shard_2pc_program ~stabilize:true () );
    ( "shard-2pc-broken",
      "self-test, run with --expect-violation: a spanning snapshot that \
       skips the bound vector's re-check pass can collect one shard's \
       clock before a cross-shard commit and the other's after it, \
       observing the torn intermediate state",
      fun () -> shard_2pc_program ~stabilize:false () );
  ]

let scenario_t =
  let parse s =
    match List.find_opt (fun (n, _, _) -> n = s) scenarios with
    | Some sc -> Ok sc
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown scenario %S; available: %s" s
                (String.concat ", " (List.map (fun (n, _, _) -> n) scenarios))))
  in
  let print ppf (n, _, _) = Format.pp_print_string ppf n in
  Arg.(
    required
    & pos 0 (some (conv (parse, print))) None
    & info [] ~docv:"SCENARIO" ~doc:"Scenario name (see command doc).")

let explore_cmd =
  let run (name, doc, program) max_executions expect_violation =
    Format.printf "scenario %s: %s@." name doc;
    match
      Explore.check ~max_executions ~max_depth:120 ~step_limit:2_000 program
    with
    | outcome ->
        Format.printf "explored %d schedules%s — no violation@."
          outcome.Explore.executions
          (if outcome.Explore.truncated then " (bounded)" else " (complete)");
        if expect_violation then begin
          Format.printf "ERROR: expected a violation but none was found@.";
          exit 1
        end
    | exception Explore.Violation { schedule; exn } ->
        Format.printf "VIOLATION (%s) under schedule [%s]@."
          (Printexc.to_string exn)
          (String.concat "; "
             (List.map string_of_int (Array.to_list schedule)));
        if expect_violation then
          Format.printf
            "violation observed, as expected: the checker has teeth@."
        else exit 1
  in
  let max_t =
    Arg.(value & opt int 100_000 & info [ "max-executions" ] ~docv:"N")
  in
  let expect_violation_t =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:
            "Invert the exit status: succeed only if the explorer finds a \
             violating schedule (self-test of deliberately broken \
             scenarios).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         (Printf.sprintf
            "Exhaustively model-check a scenario.  Scenarios: %s."
            (String.concat ", " (List.map (fun (n, _, _) -> n) scenarios))))
    Term.(const run $ scenario_t $ max_t $ expect_violation_t)

(* ---- record & verify ---------------------------------------------------- *)

let record_cmd =
  let run seed threads txs =
    let stm = AM.S.create () in
    let vars = Array.init 4 (fun _ -> AM.S.tvar stm 0) in
    AM.S.record stm true;
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init threads (fun t () ->
                 let rng = Polytm_util.Rng.create (seed + t) in
                 for _ = 1 to txs do
                   AM.S.atomically stm (fun tx ->
                       let a = vars.(Polytm_util.Rng.int rng 4) in
                       let v = AM.S.read tx a in
                       if Polytm_util.Rng.bool rng then
                         AM.S.write tx
                           vars.(Polytm_util.Rng.int rng 4)
                           (v + 1))
                 done)))
    in
    AM.S.record stm false;
    let events = AM.S.recorded_events stm in
    let aborted = AM.S.recorded_aborted stm in
    let h =
      Hist.make ~aborted
        (List.map
           (fun e ->
             {
               Hist.tx = e.AM.S.rec_tx;
               action =
                 (if e.AM.S.rec_write then Hist.Write e.AM.S.rec_loc
                  else Hist.Read e.AM.S.rec_loc);
             })
           events)
    in
    Format.printf "recorded %d events, %d transactions (%d aborted)@."
      (List.length events)
      (List.length (Hist.txs h))
      (List.length aborted);
    Format.printf "history: %a@." Hist.pp h;
    Format.printf "opacity checker accepts: %b@." (Polytm_history.Opacity.accepts h)
  in
  let seed_t = Arg.(value & opt int 7 & info [ "seed" ]) in
  let threads_t = Arg.(value & opt int 3 & info [ "threads" ]) in
  let txs_t = Arg.(value & opt int 3 & info [ "txs" ]) in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Run a random STM workload under the simulator, record its \
             history, and verify it against the opacity checker.")
    Term.(const run $ seed_t $ threads_t $ txs_t)

(* ---- telemetry statistics ----------------------------------------------- *)

let stats_cmd =
  let run seed threads ops json trace =
    let stm = AM.S.create () in
    let agg = T.Agg.create () in
    let recorder = T.Recorder.create () in
    AM.S.set_sink stm
      (Some (T.fan_out [ T.Agg.sink agg; T.Recorder.sink recorder ]));
    let set =
      AM.List_set.create ~parse_sem:Polytm.Semantics.Elastic
        ~size_sem:Polytm.Semantics.Snapshot stm
    in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init threads (fun t () ->
                 let rng = Polytm_util.Rng.create (seed + t) in
                 for _ = 1 to ops do
                   let key () = Polytm_util.Rng.int rng 32 in
                   match Polytm_util.Rng.int rng 10 with
                   | 0 | 1 -> ignore (AM.List_set.add set (key ()))
                   | 2 | 3 -> ignore (AM.List_set.remove set (key ()))
                   | 4 -> ignore (AM.List_set.size set)
                   | _ -> ignore (AM.List_set.contains set (key ()))
                 done)))
    in
    let snap = T.Agg.snapshot agg in
    Format.printf "%a" T.Export.pp_table snap;
    let write file doc =
      let oc = open_out file in
      output_string oc (T.Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Format.printf "written %s@." file
    in
    Option.iter (fun f -> write f (T.Export.snapshot_json snap)) json;
    Option.iter
      (fun f ->
        write f
          (T.Export.chrome_trace ~process_name:"tmcheck stats"
             (T.Recorder.events recorder)))
      trace
  in
  let seed_t = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED") in
  let threads_t = Arg.(value & opt int 8 & info [ "threads" ] ~docv:"T") in
  let ops_t =
    Arg.(value & opt int 200
         & info [ "ops" ] ~docv:"N" ~doc:"Operations per virtual thread.")
  in
  let json_t =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the aggregation snapshot as JSON.")
  in
  let trace_t =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Also write the full event trace as Chrome trace-event \
                   JSON (load in Perfetto or chrome://tracing).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a seeded random list-set workload (elastic parses, \
             snapshot sizes) under the simulator with a telemetry sink \
             installed and print the per-call-site statistics: attempts, \
             commits, aborts by cause, retries, read-set sizes, lock-hold \
             ticks.  Deterministic per seed.")
    Term.(const run $ seed_t $ threads_t $ ops_t $ json_t $ trace_t)

(* ---- structure-level conformance ---------------------------------------- *)

module Conf = Polytm_bench_kit.Conformance

let conformance_cmd =
  let run runtime seed iters impls threads ops cm algo expect_fail =
    let impls = match impls with [] -> Conf.default_impls | l -> l in
    (match List.filter (fun i -> not (List.mem i Conf.all_impls)) impls with
    | [] -> ()
    | unknown ->
        Format.eprintf "tmcheck: unknown implementation%s %s; known: %s@."
          (if List.length unknown > 1 then "s" else "")
          (String.concat ", " unknown)
          (String.concat ", " Conf.all_impls);
        exit 2);
    let runtime_name = match runtime with `Sim -> "sim" | `Domains -> "domains" in
    let algos =
      match algo with
      | `Tl2 -> [ `Tl2 ]
      | `Norec -> [ `Norec ]
      | `Both -> [ `Tl2; `Norec ]
    in
    let results =
      List.concat_map
        (fun algo ->
          List.map
            (fun name ->
              let outcome =
                match runtime with
                | `Sim ->
                    Conf.run_sim ~threads ~ops ?cm ~algo ~name ~seed ~iters ()
                | `Domains ->
                    Conf.run_domains ~threads ~ops ?cm ~algo ~name ~seed
                      ~iters ()
              in
              (name, algo, outcome))
            impls)
        algos
    in
    let failed = ref false in
    List.iter
      (fun (name, algo, outcome) ->
        match outcome with
        | Conf.Pass n ->
            Format.printf "%-22s %-6s PASS  (%d rounds, runtime %s, seed %d)@."
              name (Conf.algo_name algo) n runtime_name seed
        | Conf.Fail msg ->
            failed := true;
            Format.printf "%-22s %-6s FAIL@.%s@." name (Conf.algo_name algo)
              msg)
      results;
    if expect_fail then
      if !failed then begin
        Format.printf
          "@.rejection observed, as expected: the checker has teeth@.";
        exit 0
      end
      else begin
        Format.printf "@.ERROR: expected a rejection but every run passed@.";
        exit 1
      end
    else if !failed then exit 1
  in
  let runtime_t =
    let parse = function
      | "sim" -> Ok `Sim
      | "domains" -> Ok `Domains
      | s -> Error (`Msg (Printf.sprintf "unknown runtime %S (sim|domains)" s))
    in
    let print ppf r =
      Format.pp_print_string ppf (match r with `Sim -> "sim" | `Domains -> "domains")
    in
    Arg.(
      value
      & opt (conv (parse, print)) `Sim
      & info [ "runtime" ] ~docv:"RT"
          ~doc:
            "Execution substrate: $(b,sim) (deterministic, seeded random \
             schedules) or $(b,domains) (real preemption).")
  in
  let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let iters_t =
    Arg.(
      value & opt int 50
      & info [ "iters" ] ~docv:"N" ~doc:"Randomized rounds per implementation.")
  in
  let impl_t =
    Arg.(
      value
      & opt (list string) []
      & info [ "impl" ] ~docv:"NAMES"
          ~doc:
            (Printf.sprintf
               "Comma-separated implementation filter.  Known: %s.  The \
                $(b,buggy-*) self-tests are excluded by default and expected \
                to be rejected."
               (String.concat ", " Conf.all_impls)))
  in
  let threads_t = Arg.(value & opt int 3 & info [ "threads" ] ~docv:"T") in
  let ops_t =
    Arg.(
      value & opt int 10
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker per round.")
  in
  let cm_t =
    let parse = function
      | "default" -> Ok None
      | "suicide" -> Ok (Some Polytm.Contention.Suicide)
      | "greedy" -> Ok (Some Polytm.Contention.Greedy)
      | "adaptive" -> Ok (Some Polytm.Contention.default_adaptive)
      | s ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown contention manager %S \
                   (default|suicide|greedy|adaptive)"
                  s))
    in
    let print ppf = function
      | None -> Format.pp_print_string ppf "default"
      | Some cm -> Format.pp_print_string ppf (Polytm.Contention.to_string cm)
    in
    Arg.(
      value
      & opt (conv (parse, print)) None
      & info [ "cm" ] ~docv:"CM"
          ~doc:
            "Contention manager for the STM-backed implementations: \
             $(b,default), $(b,suicide), $(b,greedy) (kill-based) or \
             $(b,adaptive) (escalates to the serial fallback under \
             pressure).  Linearizability must hold under all of them.")
  in
  let algo_t =
    let parse = function
      | "tl2" -> Ok `Tl2
      | "norec" -> Ok `Norec
      | "both" -> Ok `Both
      | s ->
          Error (`Msg (Printf.sprintf "unknown algo %S (tl2|norec|both)" s))
    in
    let print ppf a =
      Format.pp_print_string ppf
        (match a with `Tl2 -> "tl2" | `Norec -> "norec" | `Both -> "both")
    in
    Arg.(
      value
      & opt (conv (parse, print)) `Both
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:
            "Ownership/validation policy for the STM-backed \
             implementations: $(b,tl2), $(b,norec), or $(b,both) (default) \
             to run the whole matrix under each in turn.  \
             $(b,buggy-norec-validation) always builds its own broken NOrec \
             backend regardless.")
  in
  let expect_fail_t =
    Arg.(
      value & flag
      & info [ "expect-fail" ]
          ~doc:
            "Invert the exit status: succeed only if at least one \
             implementation is rejected (self-test of the checker).")
  in
  Cmd.v
    (Cmd.info "conformance"
       ~doc:
         "Run every structure implementation under randomized concurrent \
          workloads on the chosen runtime — the STM-backed ones under the \
          selected algorithm(s) — and check the recorded operation \
          histories for linearizability (interval consistency for snapshot \
          sizes).  Failures print a minimized counterexample history and \
          reproduce by seed.")
    Term.(
      const run $ runtime_t $ seed_t $ iters_t $ impl_t $ threads_t $ ops_t
      $ cm_t $ algo_t $ expect_fail_t)

(* ---- liveness smoke ------------------------------------------------------ *)

let liveness_cmd =
  let run seed threads ops accounts algo =
    let module S = AM.S in
    let stm = S.create ~cm:Polytm.Contention.default_adaptive ~algo () in
    let accs = Array.init accounts (fun _ -> S.tvar stm 100) in
    let exhausted = Polytm_runtime.Sim_runtime.counter () in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init threads (fun t () ->
                 let rng = Polytm_util.Rng.create ((seed * 131) + t + 1) in
                 for _ = 1 to ops do
                   try
                     if Polytm_util.Rng.int rng 100 < 90 then
                       (* Update: move one unit between two hot
                          accounts — every pair of transfers
                          conflicts on this tiny account array. *)
                       let src = Polytm_util.Rng.int rng accounts in
                       let dst = Polytm_util.Rng.int rng accounts in
                       S.atomically stm (fun tx ->
                           S.write tx accs.(src) (S.read tx accs.(src) - 1);
                           S.write tx accs.(dst) (S.read tx accs.(dst) + 1))
                     else
                       ignore
                         (S.atomically stm (fun tx ->
                              Array.fold_left
                                (fun acc v -> acc + S.read tx v)
                                0 accs))
                   with S.Too_many_attempts _ ->
                     Polytm_runtime.Sim_runtime.add_counter exhausted 1
                 done)))
    in
    let st = S.stats stm in
    let total =
      Sim.run (fun () ->
          S.atomically stm (fun tx ->
              Array.fold_left (fun acc v -> acc + S.read tx v) 0 accs))
      |> fst
    in
    let locked =
      Array.exists (fun v -> fst (Sim.run (fun () -> S.tvar_locked v))) accs
    in
    let escapes = Polytm_runtime.Sim_runtime.read_counter exhausted in
    Format.printf
      "threads=%d ops/thread=%d accounts=%d seed=%d algo=%s@.starts=%d \
       commits=%d aborts=%d killed=%d@.serial_commits=%d \
       budget_exhaustions=%d exhaustion_escapes=%d@.total=%d (expected %d) \
       locks_free=%b@."
      threads ops accounts seed (Conf.algo_name algo) st.S.starts st.S.commits
      st.S.aborts st.S.killed st.S.serial_commits st.S.budget_exhaustions
      escapes total (100 * accounts) (not locked);
    let fail fmt = Format.kasprintf (fun m -> Format.printf "FAIL: %s@." m;
                                      exit 1) fmt in
    if escapes > 0 then
      fail "%d Too_many_attempts escaped under the default adaptive config"
        escapes;
    if total <> 100 * accounts then
      fail "money not conserved: %d <> %d" total (100 * accounts);
    if locked then fail "a lock word is still held after quiescence";
    if st.S.serial_commits = 0 then
      fail "the serial fallback never triggered: the workload is not hot \
            enough to smoke-test liveness";
    (* Blocking-waiter phase: a parked [retry] waiter whose budget runs
       out must surface as [Exhausted] data and vanish from the wait
       table — a ghost entry would receive (and swallow) future
       wakeups.  The pokes write the watched variable without ever
       satisfying the waiter, so every wake burns one attempt. *)
    let woutcome, wleft =
      fst
        (Sim.run (fun () ->
             let v = S.tvar stm 0 in
             let r = ref None in
             let waiter =
               Sim.spawn (fun () ->
                   r :=
                     Some
                       (S.try_atomically ~budget:2 stm (fun tx ->
                            ignore (S.read tx v);
                            S.retry tx)))
             in
             let poker =
               Sim.spawn (fun () ->
                   for i = 1 to 2 do
                     Sim.tick 100;
                     S.atomically stm (fun tx -> S.write tx v i)
                   done)
             in
             Sim.join waiter;
             Sim.join poker;
             (Option.get !r, S.waiting stm)))
    in
    (match woutcome with
    | S.Exhausted { reason = S.Retry; _ } -> ()
    | S.Committed _ | S.Exhausted _ | S.Deadline_exceeded _ ->
        fail "parked waiter did not surface budget exhaustion as Exhausted");
    if wleft <> 0 then fail "%d waiter(s) survived budget exhaustion" wleft;
    Format.printf "waiters_left=%d after a parked waiter exhausted its budget@."
      wleft;
    Format.printf "PASS: livelock-free under adaptive contention management@."
  in
  let seed_t = Arg.(value & opt int 23 & info [ "seed" ] ~docv:"SEED") in
  let threads_t =
    Arg.(value & opt int 64
         & info [ "threads" ] ~docv:"T" ~doc:"Virtual threads.")
  in
  let ops_t =
    Arg.(value & opt int 20
         & info [ "ops" ] ~docv:"N" ~doc:"Transactions per virtual thread.")
  in
  let accounts_t =
    Arg.(value & opt int 8
         & info [ "accounts" ] ~docv:"K"
             ~doc:"Hot accounts shared by every transfer.")
  in
  let algo_t =
    let parse = function
      | "tl2" -> Ok `Tl2
      | "norec" -> Ok `Norec
      | s -> Error (`Msg (Printf.sprintf "unknown algo %S (tl2|norec)" s))
    in
    let print ppf a = Format.pp_print_string ppf (Conf.algo_name a) in
    Arg.(
      value
      & opt (conv (parse, print)) `Tl2
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:
            "Ownership/validation policy under test: $(b,tl2) or \
             $(b,norec).  The liveness guarantee must hold under both.")
  in
  Cmd.v
    (Cmd.info "liveness"
       ~doc:
         "Hammer a tiny account array with 90%-update transfers from 64 \
          virtual threads under the adaptive contention manager and verify \
          the liveness guarantee: no transaction exhausts its attempts \
          ($(b,Too_many_attempts) never escapes), money is conserved, every \
          lock word ends unlocked, and the serial fallback actually fired \
          ($(b,serial_commits) > 0).  Deterministic per seed.")
    Term.(const run $ seed_t $ threads_t $ ops_t $ accounts_t $ algo_t)

(* ---- conflict-graph visualisation --------------------------------------- *)

let dot_cmd =
  let run seed threads txs =
    let stm = AM.S.create () in
    let vars = Array.init 4 (fun _ -> AM.S.tvar stm 0) in
    AM.S.record stm true;
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init threads (fun t () ->
                 let rng = Polytm_util.Rng.create (seed + t) in
                 for _ = 1 to txs do
                   AM.S.atomically stm (fun tx ->
                       let a = vars.(Polytm_util.Rng.int rng 4) in
                       let v = AM.S.read tx a in
                       if Polytm_util.Rng.bool rng then
                         AM.S.write tx
                           vars.(Polytm_util.Rng.int rng 4)
                           (v + 1))
                 done)))
    in
    AM.S.record stm false;
    let h =
      Hist.make
        ~aborted:(AM.S.recorded_aborted stm)
        (List.map
           (fun e ->
             {
               Hist.tx = e.AM.S.rec_tx;
               action =
                 (if e.AM.S.rec_write then Hist.Write e.AM.S.rec_loc
                  else Hist.Read e.AM.S.rec_loc);
             })
           (AM.S.recorded_events stm))
    in
    let g, ids = Polytm_history.Opacity.strict_serialization_graph h in
    print_string
      (Polytm_history.Digraph.to_dot
         ~names:(fun i -> Printf.sprintf "tx%d" ids.(i))
         g)
  in
  let seed_t = Arg.(value & opt int 7 & info [ "seed" ]) in
  let threads_t = Arg.(value & opt int 3 & info [ "threads" ]) in
  let txs_t = Arg.(value & opt int 3 & info [ "txs" ]) in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Record a random STM workload and print its strict              serialisation graph (conflict + real-time edges) as              Graphviz DOT.")
    Term.(const run $ seed_t $ threads_t $ txs_t)

let () =
  let doc = "History checkers and bounded model checking for PolyTM." in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "tmcheck" ~version:"1.0.0" ~doc)
          [
            fig4_cmd;
            paper_history_cmd;
            enumerate_cmd;
            explore_cmd;
            record_cmd;
            stats_cmd;
            conformance_cmd;
            liveness_cmd;
            dot_cmd;
          ]))
