(* tmload — load generator for polytmd.

   Drives a running daemon over TCP or a Unix socket with a
   configurable operation mix, key skew and pipeline depth, from one
   or more client domains (one connection each).  The semantics hints
   exercise all three transaction classes the way the paper assigns
   them: point reads travel ~elastic, updates ~classic, and full
   iterations ~snapshot.

   Closed loop (default): each connection keeps a window of
   [--pipeline] requests outstanding — load tracks service capacity.
   Open loop ([--rate R]): requests are dispatched on a fixed schedule
   regardless of completions, so measured latency includes queueing
   delay when the server falls behind.

   Latency is measured per request, send-to-reply, and aggregated in
   the log-bucketed histogram of Polytm_util.Stats.Hist; --json emits
   BENCH_*.json-compatible records ({"name", "ns_per_op"}). *)

module Wire = Polytm_server.Wire
module Hist = Polytm_util.Stats.Hist
module R = Polytm_runtime.Domain_runtime
open Cmdliner

type counters = {
  mutable sent : int;
  mutable got : int;
  ops_by_sem : int array;  (* committed replies per hint class *)
  mutable nils : int;  (* Nil replies: misses, or timed-out blocking ops *)
  mutable busy : int;
  mutable app_errors : int;  (* typed server errors other than BUSY *)
  mutable proto_errors : int;  (* malformed/corrupt replies *)
  mutable reconnects : int;  (* --restart-after: connections re-established *)
  mutable lost : int;  (* in-flight requests dropped by a connection death *)
  lat : Hist.t;
}

let new_counters () =
  {
    sent = 0;
    got = 0;
    ops_by_sem = Array.make 3 0;
    nils = 0;
    busy = 0;
    app_errors = 0;
    proto_errors = 0;
    reconnects = 0;
    lost = 0;
    lat = Hist.create ();
  }

let sem_index = function
  | Polytm.Semantics.Classic -> 0
  | Polytm.Semantics.Elastic -> 1
  | Polytm.Semantics.Snapshot -> 2

(* ---- workload ---------------------------------------------------------- *)

type mix = {
  keys : int;
  update_pct : int;
  snapshot_pct : int;
  hot_pct : int;  (* % of ops aimed at the hottest 10% of the keyspace *)
  hot_set : int array;  (* the hot keys themselves, balanced per shard *)
}

(* The server's placement function (Polytm.Shard.index_of_hash),
   replicated so the generator can reason about key ownership — the
   hash is deterministic across processes by design. *)
let shard_of ~shards k =
  let h = k * 0x9E3779B1 in
  let h = h lxor (h lsr 16) in
  (h land max_int) mod shards

(* The hot set is 10% of the keyspace.  Against a 1-shard server it is
   simply the lowest keys, as before.  Against a K-shard server a
   prefix hot set would hash to an arbitrary (and possibly lopsided)
   subset of shards, silently diluting the requested skew on some
   shards and sparing others; instead the hot set takes the first
   [10% / K] keys OWNED BY each shard, so every shard sees the same
   hot/cold contrast and --hot keeps meaning what it says. *)
let build_hot_set ~shards ~keys =
  let target = max 1 (keys / 10) in
  if shards <= 1 then Array.init target Fun.id
  else begin
    let per = max 1 (target / shards) in
    let buckets = Array.make shards [] in
    let counts = Array.make shards 0 in
    let remaining = ref (shards * per) in
    let k = ref 0 in
    while !remaining > 0 && !k < keys do
      let s = shard_of ~shards !k in
      if counts.(s) < per then begin
        buckets.(s) <- !k :: buckets.(s);
        counts.(s) <- counts.(s) + 1;
        decr remaining
      end;
      incr k
    done;
    Array.of_list (List.concat_map List.rev (Array.to_list buckets))
  end

let pick_key mix rng =
  let r = Random.State.int rng 100 in
  if r < mix.hot_pct then
    mix.hot_set.(Random.State.int rng (Array.length mix.hot_set))
  else Random.State.int rng mix.keys

let gen_request mix rng : Wire.request * Polytm.Semantics.t =
  let r = Random.State.int rng 100 in
  if r < mix.snapshot_pct then
    ( { Wire.hint = Some Polytm.Semantics.Snapshot;
        cmd = Wire.Snapshot_iter "bench" },
      Polytm.Semantics.Snapshot )
  else if r < mix.snapshot_pct + mix.update_pct then
    let k = pick_key mix rng in
    let cmd =
      if Random.State.bool rng then Wire.Put ("bench", k, "v" ^ string_of_int k)
      else Wire.Del ("bench", k)
    in
    ({ Wire.hint = Some Polytm.Semantics.Classic; cmd }, Polytm.Semantics.Classic)
  else
    ( { Wire.hint = Some Polytm.Semantics.Elastic;
        cmd = Wire.Get ("bench", pick_key mix rng) },
      Polytm.Semantics.Elastic )

(* ---- one client connection --------------------------------------------- *)

let connect = function
  | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> Unix.inet_addr_loopback
      in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      fd
  | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd

let send_all fd buf =
  let s = Buffer.contents buf in
  Buffer.clear buf;
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

exception Dead of string

(* Read until [want] more responses have been consumed.  Replies are
   classified, not parsed: a snapshot reply of thousands of items is
   one O(1) frame hop ({!Wire.Decoder.next_response_brief}), so the
   client stays off the critical path it is measuring. *)
let read_responses fd dec rbuf c (inflight : (int * int) Queue.t) want =
  let consumed = ref 0 in
  while !consumed < want do
    (let rec pop () =
       if !consumed < want then
         match Wire.Decoder.next_response_brief dec with
         | `Ok cls ->
             let t_send, semi = Queue.pop inflight in
             c.got <- c.got + 1;
             Hist.record c.lat (R.now () - t_send);
             (match cls with
             | `Busy -> c.busy <- c.busy + 1
             | `Err -> c.app_errors <- c.app_errors + 1
             | `Nil ->
                 c.nils <- c.nils + 1;
                 c.ops_by_sem.(semi) <- c.ops_by_sem.(semi) + 1
             | `Value -> c.ops_by_sem.(semi) <- c.ops_by_sem.(semi) + 1);
             incr consumed;
             pop ()
         | `Bad _ ->
             c.proto_errors <- c.proto_errors + 1;
             ignore (Queue.pop inflight);
             incr consumed;
             pop ()
         | `Corrupt m ->
             c.proto_errors <- c.proto_errors + 1;
             raise (Dead ("corrupt response stream: " ^ m))
         | `Await -> ()
     in
     pop ());
    if !consumed < want then
      match Unix.read fd rbuf 0 (Bytes.length rbuf) with
      | 0 -> raise (Dead "server closed the connection")
      | n -> Wire.Decoder.feed dec rbuf 0 n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Sleep until [t] (absolute gettimeofday seconds); EINTR just
   returns early — callers re-check the schedule. *)
let sleep_until t =
  let now = Unix.gettimeofday () in
  if now < t then
    try ignore (Unix.select [] [] [] (t -. now))
    with Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* All mixed-scenario connections are multiplexed from ONE domain: on
   a small machine, one domain per connection makes the measuring
   client the dominant cost (every extra domain joins the runtime's
   stop-the-world minor collections), and the load generator must stay
   off the critical path it is measuring.  Each connection still owns
   an independent socket, decoder and [pipeline]-deep window, so the
   server-side workload is identical. *)
type cstate = {
  mutable cfd : Unix.file_descr;
  rng : Random.State.t;
  mutable cdec : Wire.Decoder.t;
  cout : Buffer.t;
  cinflight : (int * int) Queue.t;
  mutable alive : bool;
}

let mixed_driver ~addr ~mix ~conns ~pipeline ~rate ~warmup ~seconds ~seed
    ~restart_after =
  let c = ref (new_counters ()) in
  let states =
    Array.init conns (fun i ->
        {
          cfd = connect addr;
          rng = Random.State.make [| seed; i; 0x7A0AD |];
          cdec = Wire.Decoder.create ();
          cout = Buffer.create 4096;
          cinflight = Queue.create ();
          alive = true;
        })
  in
  let rbuf = Bytes.create 65536 in
  (* With --restart-after SEC, connection deaths from SEC into the
     measured run on are an *expected* server restart, not a failure:
     the in-flight window is written off (counted, not erroring) and
     the connection re-established against the recovered server. *)
  let t_allow = ref infinity in
  let allow () = Unix.gettimeofday () >= !t_allow in
  let kill s =
    if s.alive then begin
      !c.lost <- !c.lost + Queue.length s.cinflight;
      s.alive <- false;
      Queue.clear s.cinflight;
      Buffer.clear s.cout;
      try Unix.close s.cfd with Unix.Unix_error _ -> ()
    end
  in
  let reconnect s =
    match connect addr with
    | exception Unix.Unix_error _ -> ()
    | fd -> (
        try
          s.cfd <- fd;
          s.cdec <- Wire.Decoder.create ();
          Buffer.clear s.cout;
          (* the restart may have lost a last-moment NEW under --fsync
             everysec; re-ensure before resuming traffic *)
          Wire.write_request s.cout
            { Wire.hint = None; cmd = Wire.New (Wire.Kmap, "bench") };
          send_all s.cfd s.cout;
          let q = Queue.create () in
          Queue.push (R.now (), 0) q;
          read_responses s.cfd s.cdec rbuf (new_counters ()) q 1;
          s.alive <- true;
          !c.reconnects <- !c.reconnects + 1
        with Unix.Unix_error _ | Dead _ -> (
          try Unix.close fd with Unix.Unix_error _ -> ()))
  in
  let revive () =
    if allow () then
      Array.iter (fun s -> if not s.alive then reconnect s) states
  in
  let enqueue ?at s =
    let req, sem = gen_request mix s.rng in
    Wire.write_request s.cout req;
    let t = match at with Some t -> t | None -> R.now () in
    Queue.push (t, sem_index sem) s.cinflight;
    !c.sent <- !c.sent + 1
  in
  let refill s =
    for _ = 1 to pipeline do
      enqueue s
    done;
    try send_all s.cfd s.cout
    with Unix.Unix_error _ ->
      if not (allow ()) then !c.proto_errors <- !c.proto_errors + 1;
      kill s
  in
  (* Consume every complete reply currently buffered for [s]. *)
  let consume s =
    let rec pop () =
      match Wire.Decoder.next_response_brief s.cdec with
      | `Ok cls ->
          let t_send, semi = Queue.pop s.cinflight in
          !c.got <- !c.got + 1;
          Hist.record !c.lat (R.now () - t_send);
          (match cls with
          | `Busy -> !c.busy <- !c.busy + 1
          | `Err -> !c.app_errors <- !c.app_errors + 1
          | `Nil ->
              !c.nils <- !c.nils + 1;
              !c.ops_by_sem.(semi) <- !c.ops_by_sem.(semi) + 1
          | `Value -> !c.ops_by_sem.(semi) <- !c.ops_by_sem.(semi) + 1);
          pop ()
      | `Bad _ ->
          !c.proto_errors <- !c.proto_errors + 1;
          ignore (Queue.pop s.cinflight);
          pop ()
      | `Corrupt _ ->
          if not (allow ()) then !c.proto_errors <- !c.proto_errors + 1;
          kill s
      | `Await -> ()
    in
    pop ()
  in
  (* In closed-loop mode the window is refilled right here, the
     moment it fully drains — waiting for the next loop turn would
     leave the server idle for the gap (a pipeline bubble). *)
  let filling = ref false in
  let read_into s =
    match Unix.read s.cfd rbuf 0 (Bytes.length rbuf) with
    | 0 -> kill s
    | n ->
        Wire.Decoder.feed s.cdec rbuf 0 n;
        consume s;
        if !filling && s.alive && Queue.is_empty s.cinflight then refill s
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> kill s
  in
  let waiting () =
    Array.fold_left
      (fun acc s ->
        if s.alive && not (Queue.is_empty s.cinflight) then s.cfd :: acc
        else acc)
      [] states
  in
  let state_of fd =
    let found = ref None in
    Array.iter (fun s -> if s.cfd == fd then found := Some s) states;
    Option.get !found
  in
  (* Block until every outstanding request has been answered. *)
  let drain_all () =
    filling := false;
    let rec go () =
      match waiting () with
      | [] -> ()
      | rds ->
          (match Unix.select rds [] [] 1.0 with
          | rs, _, _ -> List.iter (fun fd -> read_into (state_of fd)) rs
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go ()
    in
    go ()
  in
  (* Closed loop: each connection keeps a [pipeline]-deep window
     outstanding; a window is refilled the moment it fully drains. *)
  let run_closed t_stop =
    filling := true;
    while Unix.gettimeofday () < t_stop do
      revive ();
      Array.iter
        (fun s -> if s.alive && Queue.is_empty s.cinflight then refill s)
        states;
      match waiting () with
      | [] ->
          if allow () then
            (* server down, restart pending: poll the reconnect *)
            sleep_until (Unix.gettimeofday () +. 0.05)
          else raise (Dead "all connections lost")
      | rds -> (
          match Unix.select rds [] [] 0.2 with
          | rs, _, _ -> List.iter (fun fd -> read_into (state_of fd)) rs
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    filling := false
  in
  (* Open loop: dispatch round-robin across connections on a fixed
     aggregate schedule.  Latency runs from the *intended* dispatch
     instant, so when the server falls behind the schedule the
     queueing delay lands in the histogram instead of being
     coordinated away.  Replies are consumed between ticks; a
     connection whose backlog exceeds [pipeline] blocks the schedule
     (bounded memory), which is exactly the overload signal the
     intended-time histogram then shows. *)
  let run_open rate_total t_stop =
    let interval = 1.0 /. rate_total in
    let next = ref (Unix.gettimeofday ()) in
    let rr = ref 0 in
    while Unix.gettimeofday () < t_stop do
      revive ();
      let now = Unix.gettimeofday () in
      if now < !next then (
        match waiting () with
        | [] -> sleep_until !next
        | rds -> (
            match Unix.select rds [] [] (!next -. now) with
            | rs, _, _ -> List.iter (fun fd -> read_into (state_of fd)) rs
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
      else begin
        let intended = !next in
        next := !next +. interval;
        let s = states.(!rr mod conns) in
        incr rr;
        if s.alive then begin
          enqueue ~at:(int_of_float (intended *. 1e9)) s;
          (try send_all s.cfd s.cout
           with Unix.Unix_error _ ->
             !c.proto_errors <- !c.proto_errors + 1;
             kill s);
          while s.alive && Queue.length s.cinflight > pipeline do
            match Unix.select [ s.cfd ] [] [] 1.0 with
            | _ :: _, _, _ -> read_into s
            | _ -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done
        end
      end
    done
  in
  let run t_stop =
    match rate with
    | None -> run_closed t_stop
    | Some rate_total -> run_open rate_total t_stop
  in
  (try
     (* Ensure the bench structure exists (idempotent). *)
     Array.iter
       (fun s ->
         Wire.write_request s.cout
           { Wire.hint = None; cmd = Wire.New (Wire.Kmap, "bench") };
         Queue.push (R.now (), 0) s.cinflight;
         send_all s.cfd s.cout)
       states;
     drain_all ();
     (* Warmup phase: same traffic, counters discarded — steady-state
        figures exclude cold caches and the fill ramp of the map. *)
     if warmup > 0. then begin
       run (Unix.gettimeofday () +. warmup);
       drain_all ()
     end;
     c := new_counters ();
     (match restart_after with
     | Some sec -> t_allow := Unix.gettimeofday () +. sec
     | None -> ());
     run (Unix.gettimeofday () +. seconds);
     (* Drain the tail so every sent request is accounted for. *)
     drain_all ()
   with Dead _ -> ());
  Array.iter (fun s -> try Unix.close s.cfd with _ -> ()) states;
  !c

(* ---- prodcons scenario -------------------------------------------------- *)

(* Producers pipeline ENQ into one shared queue; each consumer keeps a
   single BLPOP outstanding and genuinely parks server-side whenever
   the queue is empty.  A consumer's send-to-reply time is therefore
   wait + wakeup + service: with producers throttled below consumer
   capacity (--rate) the queue stays near-empty, almost every BLPOP
   parks, and the consumer histogram measures commit-to-wakeup
   latency.  Unthrottled producers keep the queue non-empty instead,
   measuring blocking-path service time. *)
let prodcons_client ~addr ~queue ~timeout_ms ~pipeline ~rate ~producers
    ~warmup ~seconds id =
  let c = ref (new_counters ()) in
  let fd = connect addr in
  let dec = Wire.Decoder.create () in
  let rbuf = Bytes.create 65536 in
  let out = Buffer.create 4096 in
  let inflight : (int * int) Queue.t = Queue.create () in
  (try
     Wire.write_request out
       { Wire.hint = None; cmd = Wire.New (Wire.Kqueue, queue) };
     Queue.push (R.now (), 0) inflight;
     send_all fd out;
     read_responses fd dec rbuf !c inflight 1;
     let n = ref 0 in
     let enq ?at () =
       incr n;
       Wire.write_request out
         {
           Wire.hint = Some Polytm.Semantics.Classic;
           cmd = Wire.Enq (queue, Printf.sprintf "p%d-%d" id !n);
         };
       let t = match at with Some t -> t | None -> R.now () in
       Queue.push (t, 0) inflight;
       !c.sent <- !c.sent + 1
     in
     let run t_stop =
       if id < producers then (
         match rate with
         | None ->
             while Unix.gettimeofday () < t_stop do
               for _ = 1 to pipeline do
                 enq ()
               done;
               send_all fd out;
               read_responses fd dec rbuf !c inflight pipeline
             done
         | Some per_prod_rate ->
             (* Open loop: latency from the intended dispatch instant
                (see [client]). *)
             let interval = 1.0 /. per_prod_rate in
             let next = ref (Unix.gettimeofday ()) in
             while Unix.gettimeofday () < t_stop do
               let now = Unix.gettimeofday () in
               if now < !next then sleep_until !next
               else begin
                 let intended = !next in
                 next := !next +. interval;
                 enq ~at:(int_of_float (intended *. 1e9)) ();
                 send_all fd out;
                 if Queue.length inflight > pipeline then
                   read_responses fd dec rbuf !c inflight 1
               end
             done)
       else
         while Unix.gettimeofday () < t_stop do
           Wire.write_request out
             {
               Wire.hint = Some Polytm.Semantics.Classic;
               cmd = Wire.Blpop (queue, timeout_ms);
             };
           Queue.push (R.now (), 0) inflight;
           !c.sent <- !c.sent + 1;
           send_all fd out;
           read_responses fd dec rbuf !c inflight 1
         done
     in
     if warmup > 0. then begin
       run (Unix.gettimeofday () +. warmup);
       read_responses fd dec rbuf !c inflight (Queue.length inflight)
     end;
     c := new_counters ();
     run (Unix.gettimeofday () +. seconds);
     read_responses fd dec rbuf !c inflight (Queue.length inflight)
   with
  | Dead _ -> ()
  | Unix.Unix_error _ -> !c.proto_errors <- !c.proto_errors + 1);
  (try Unix.close fd with _ -> ());
  !c

(* ---- aggregation and reporting ----------------------------------------- *)

let merge cs =
  let tot = new_counters () in
  List.iter
    (fun c ->
      tot.sent <- tot.sent + c.sent;
      tot.got <- tot.got + c.got;
      Array.iteri (fun i n -> tot.ops_by_sem.(i) <- tot.ops_by_sem.(i) + n)
        c.ops_by_sem;
      tot.nils <- tot.nils + c.nils;
      tot.busy <- tot.busy + c.busy;
      tot.app_errors <- tot.app_errors + c.app_errors;
      tot.proto_errors <- tot.proto_errors + c.proto_errors;
      tot.reconnects <- tot.reconnects + c.reconnects;
      tot.lost <- tot.lost + c.lost;
      Hist.merge_into ~into:tot.lat c.lat)
    cs;
  tot

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

(* BENCH_*.json-compatible: a top-level section of {"name","ns_per_op"}
   records, the shape CI's seed comparison already parses. *)
let write_json path label elapsed (c : counters) =
  let thr = float_of_int c.got /. elapsed in
  let rec_ name v =
    Printf.sprintf "{\"name\":\"server/%s %s\",\"ns_per_op\":%g}"
      (json_escape label) name v
  in
  let pct p = float_of_int (Hist.percentile c.lat p) in
  let records =
    [
      rec_ "mean latency" (Hist.mean c.lat);
      rec_ "p50 latency" (pct 50.);
      rec_ "p95 latency" (pct 95.);
      rec_ "p99 latency" (pct 99.);
      rec_ "max latency" (float_of_int (Hist.max c.lat));
    ]
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"server\":[%s],\n\
    \ \"throughput_ops_per_sec\":%g,\n\
    \ \"elapsed_s\":%g,\n\
    \ \"ops\":{\"total\":%d,\"classic\":%d,\"elastic\":%d,\"snapshot\":%d},\n\
    \ \"errors\":{\"busy\":%d,\"app\":%d,\"protocol\":%d},\n\
    \ \"restart\":{\"reconnects\":%d,\"lost_inflight\":%d}}\n"
    (String.concat "," records)
    thr elapsed c.got c.ops_by_sem.(0) c.ops_by_sem.(1) c.ops_by_sem.(2)
    c.busy c.app_errors c.proto_errors c.reconnects c.lost;
  close_out oc

(* Same BENCH_*.json record shape, one section of rows plus a meta
   object, so CI's seed comparison can parse prodcons runs unchanged. *)
let write_prodcons_json path elapsed (p : counters) (c : counters) =
  let rec_ name v =
    Printf.sprintf "{\"name\":\"server/prodcons %s\",\"ns_per_op\":%g}" name v
  in
  let pct h q = float_of_int (Hist.percentile h q) in
  let taken = c.got - c.nils in
  let records =
    [
      rec_ "enq mean latency" (Hist.mean p.lat);
      rec_ "blpop mean latency" (Hist.mean c.lat);
      rec_ "blpop p50 latency" (pct c.lat 50.);
      rec_ "blpop p95 latency" (pct c.lat 95.);
      rec_ "blpop p99 latency" (pct c.lat 99.);
      rec_ "blpop max latency" (float_of_int (Hist.max c.lat));
    ]
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"server_prodcons\":[%s],\n\
    \ \"server_prodcons_meta\":{\"produced_ops_per_sec\":%g,\
     \"consumed_ops_per_sec\":%g,\n\
    \  \"ops\":{\"produced\":%d,\"consumed\":%d,\"blpop_timeouts\":%d},\n\
    \  \"errors\":{\"busy\":%d,\"app\":%d,\"protocol\":%d}}}\n"
    (String.concat "," records)
    (float_of_int p.got /. elapsed)
    (float_of_int taken /. elapsed)
    p.got taken c.nils (p.busy + c.busy) (p.app_errors + c.app_errors)
    (p.proto_errors + c.proto_errors);
  close_out oc

let report_prodcons elapsed ~producers ~consumers (p : counters) (c : counters)
    =
  let pct h q = float_of_int (Hist.percentile h q) /. 1000. in
  let taken = c.got - c.nils in
  Printf.printf "tmload: prodcons, %d producer%s + %d blocking consumer%s, %.2fs\n"
    producers
    (if producers = 1 then "" else "s")
    consumers
    (if consumers = 1 then "" else "s")
    elapsed;
  Printf.printf "  produced:   %.0f ops/s (%d ops), enq p95=%.0fus\n"
    (float_of_int p.got /. elapsed)
    p.got (pct p.lat 95.);

  Printf.printf "  consumed:   %.0f items/s (%d items, %d BLPOP timeouts)\n"
    (float_of_int taken /. elapsed)
    taken c.nils;
  Printf.printf
    "  blpop us:   p50=%.0f p95=%.0f p99=%.0f max=%.0f mean=%.1f\n"
    (pct c.lat 50.) (pct c.lat 95.) (pct c.lat 99.)
    (float_of_int (Hist.max c.lat) /. 1000.)
    (Hist.mean c.lat /. 1000.);
  Printf.printf "  errors:     busy=%d app=%d protocol=%d\n%!"
    (p.busy + c.busy) (p.app_errors + c.app_errors)
    (p.proto_errors + c.proto_errors)

let report label elapsed conns (c : counters) =
  let pct p = float_of_int (Hist.percentile c.lat p) /. 1000. in
  Printf.printf "tmload: %s, %d connection%s, %.2fs\n" label conns
    (if conns = 1 then "" else "s")
    elapsed;
  Printf.printf "  throughput: %.0f ops/s (%d ops)\n"
    (float_of_int c.got /. elapsed)
    c.got;
  Printf.printf "  by hint:    classic=%d elastic=%d snapshot=%d\n"
    c.ops_by_sem.(0) c.ops_by_sem.(1) c.ops_by_sem.(2);
  Printf.printf "  latency us: p50=%.0f p95=%.0f p99=%.0f max=%.0f mean=%.1f\n"
    (pct 50.) (pct 95.) (pct 99.)
    (float_of_int (Hist.max c.lat) /. 1000.)
    (Hist.mean c.lat /. 1000.);
  Printf.printf "  errors:     busy=%d app=%d protocol=%d\n%!" c.busy
    c.app_errors c.proto_errors;
  if c.reconnects > 0 || c.lost > 0 then
    Printf.printf "  restarts:   reconnects=%d lost_inflight=%d\n%!"
      c.reconnects c.lost

(* ---- cmdliner ---------------------------------------------------------- *)

let addr_t =
  Arg.(value & opt string "127.0.0.1:7411"
       & info [ "addr"; "a" ] ~docv:"ADDR"
           ~doc:"Server address: $(b,HOST:PORT) or $(b,unix:PATH).")

let conns_t =
  Arg.(value & opt int 4
       & info [ "conns"; "c" ] ~docv:"N" ~doc:"Client connections (domains).")

let pipeline_t =
  Arg.(value & opt int 16
       & info [ "pipeline"; "p" ] ~docv:"D"
           ~doc:"Requests kept outstanding per connection.")

let seconds_t =
  Arg.(value & opt float 2.0
       & info [ "seconds"; "s" ] ~docv:"SEC" ~doc:"Run duration.")

let warmup_t =
  Arg.(value & opt float 0.0
       & info [ "warmup" ] ~docv:"SEC"
           ~doc:"Run the workload this long before measuring; warmup
                 traffic is excluded from every histogram and counter,
                 so reported figures are steady-state (the keyspace
                 fill ramp and cold caches don't pollute them).")

let keys_t =
  Arg.(value & opt int 4096 & info [ "keys" ] ~docv:"N" ~doc:"Keyspace size.")

let update_t =
  Arg.(value & opt int 20
       & info [ "update" ] ~docv:"PCT"
           ~doc:"Percentage of update operations (PUT/DEL, hinted
                 ~classic).")

let snapshot_t =
  Arg.(value & opt int 2
       & info [ "snapshot" ] ~docv:"PCT"
           ~doc:"Percentage of SNAPSHOT-ITER operations (hinted
                 ~snapshot); the rest are GETs hinted ~elastic.")

let hot_t =
  Arg.(value & opt int 0
       & info [ "hot" ] ~docv:"PCT"
           ~doc:"Key skew: percentage of ops aimed at the hottest 10%
                 of the keyspace (0 = uniform).")

let shards_t =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"K"
           ~doc:"Match the server's $(b,--shards): the hot set is
                 drawn per shard (using the server's placement hash)
                 instead of as a key-range prefix, so $(b,--hot) skew
                 lands with the same intensity on every shard.")

let rate_t =
  Arg.(value & opt (some float) None
       & info [ "rate" ] ~docv:"OPS_PER_SEC"
           ~doc:"Open-loop mode: total dispatch rate across all
                 connections (default: closed loop).")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let json_t =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write BENCH-style JSON figures here.")

let fail_errors_t =
  Arg.(value & flag
       & info [ "fail-on-errors" ]
           ~doc:"Exit nonzero if any protocol error occurred or any
                 semantics class completed zero operations (CI).")

let scenario_t =
  let parse = function
    | "mixed" -> Ok `Mixed
    | "prodcons" -> Ok `Prodcons
    | s -> Error (`Msg (Printf.sprintf "unknown scenario %S (mixed|prodcons)" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with `Mixed -> "mixed" | `Prodcons -> "prodcons")
  in
  Arg.(value & opt (conv (parse, print)) `Mixed
       & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Workload shape: $(b,mixed) (default; the paper's
                 get/put/iterate mix) or $(b,prodcons) (producers ENQ
                 into one queue, the remaining connections block in
                 BLPOP; --rate throttles production so consumers
                 genuinely park and the consumer histogram measures
                 wakeup latency).")

let producers_t =
  Arg.(value & opt (some int) None
       & info [ "producers" ] ~docv:"N"
           ~doc:"prodcons only: connections acting as producers
                 (default: half, at least one of each role).")

let timeout_t =
  Arg.(value & opt int 1000
       & info [ "timeout" ] ~docv:"MS"
           ~doc:"prodcons only: per-BLPOP timeout in milliseconds
                 (0 = wait until shutdown).")

let restart_after_t =
  Arg.(value & opt (some float) None
       & info [ "restart-after" ] ~docv:"SEC"
           ~doc:"Expect the server to restart (kill + recovery) any
                 time from SEC seconds into the measured run:
                 connection deaths after that point are not fatal —
                 the in-flight window is written off, the client
                 reconnects (re-ensuring the bench structure) and
                 keeps driving load against the recovered server,
                 reporting reconnects and lost in-flight requests
                 instead of protocol errors.  Mixed scenario only.")

let main addr conns pipeline seconds warmup keys update snapshot hot shards
    rate seed json fail_on_errors scenario producers timeout_ms restart_after =
  let addr =
    if String.length addr > 5 && String.sub addr 0 5 = "unix:" then
      `Unix (String.sub addr 5 (String.length addr - 5))
    else
      match String.rindex_opt addr ':' with
      | Some i ->
          `Tcp
            ( String.sub addr 0 i,
              int_of_string (String.sub addr (i + 1) (String.length addr - i - 1))
            )
      | None -> `Tcp (addr, 7411)
  in
  match scenario with
  | `Prodcons ->
      let producers =
        match producers with
        | Some p -> max 1 (min p (conns - 1))
        | None -> max 1 (conns / 2)
      in
      let consumers = conns - producers in
      let rate = Option.map (fun r -> r /. float_of_int producers) rate in
      let t0 = Unix.gettimeofday () in
      let doms =
        List.init conns (fun i ->
            Domain.spawn (fun () ->
                prodcons_client ~addr ~queue:"bench-q" ~timeout_ms ~pipeline
                  ~rate ~producers ~warmup ~seconds i))
      in
      let results = List.map Domain.join doms in
      let elapsed = Unix.gettimeofday () -. t0 -. warmup in
      let prod = merge (List.filteri (fun i _ -> i < producers) results) in
      let cons = merge (List.filteri (fun i _ -> i >= producers) results) in
      report_prodcons elapsed ~producers ~consumers prod cons;
      Option.iter (fun p -> write_prodcons_json p elapsed prod cons) json;
      if
        fail_on_errors
        && (prod.proto_errors + cons.proto_errors > 0
           || prod.got = 0
           || cons.got - cons.nils = 0)
      then begin
        prerr_endline
          "tmload: FAIL (protocol errors, nothing produced, or nothing \
           consumed)";
        exit 1
      end
  | `Mixed ->
  let mix =
    {
      keys;
      update_pct = update;
      snapshot_pct = snapshot;
      hot_pct = hot;
      hot_set = build_hot_set ~shards ~keys;
    }
  in
  let t0 = Unix.gettimeofday () in
  let total =
    mixed_driver ~addr ~mix ~conns ~pipeline ~rate ~warmup ~seconds ~seed
      ~restart_after
  in
  let elapsed = Unix.gettimeofday () -. t0 -. warmup in
  let label =
    Printf.sprintf "%s%d%%upd/%d%%snap"
      (match rate with None -> "closed " | Some _ -> "open ")
      update snapshot
  in
  report label elapsed conns total;
  Option.iter (fun p -> write_json p label elapsed total) json;
  if
    fail_on_errors
    && (total.proto_errors > 0
       || Array.exists (fun n -> n = 0) total.ops_by_sem)
  then begin
    prerr_endline "tmload: FAIL (protocol errors or an idle semantics class)";
    exit 1
  end

let () =
  let doc = "Load generator for the polytmd transactional store daemon." in
  let term =
    Term.(const main $ addr_t $ conns_t $ pipeline_t $ seconds_t $ warmup_t
          $ keys_t $ update_t $ snapshot_t $ hot_t $ shards_t $ rate_t
          $ seed_t $ json_t $ fail_errors_t $ scenario_t $ producers_t
          $ timeout_t $ restart_after_t)
  in
  exit (Cmd.eval (Cmd.v (Cmd.info "tmload" ~version:"1.0.0" ~doc) term))
