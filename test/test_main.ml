(* Aggregates every test suite in the repository. *)

let () =
  Alcotest.run "polytm"
    [
      Test_util.suite;
      Test_sim.suite;
      Test_explore.suite;
      Test_history.suite;
      Test_linearizability.suite;
      Test_stm.suite;
      Test_stm_domains.suite;
      Test_structs.suite;
      Test_baselines.suite;
      Test_boosted.suite;
      Test_composition.suite;
      Test_bench_kit.suite;
      Test_telemetry.suite;
      Test_stacks.suite;
      Test_stm_map.suite;
      Test_expressiveness.suite;
      Test_failure_injection.suite;
      Test_irrevocable.suite;
      Test_norec.suite;
      Test_retry.suite;
      Test_flat_structs.suite;
      Test_sharded.suite;
      Test_wire.suite;
      Test_server.suite;
      Test_persist.suite;
      Test_goldens.suite;
    ]
