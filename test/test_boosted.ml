(* Tests for transactional boosting: eager execution with inverses,
   abstract-lock conflict behaviour, abort compensation (including
   orelse branch rollback), and concurrent correctness. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module B = Polytm_structs.Boosted_set.Make (Polytm_runtime.Sim_runtime) (S)

let test_basic_ops () =
  let stm = S.create () in
  let t = B.create () in
  let r =
    S.atomically stm (fun tx ->
        let a = B.add tx t 1 in
        let b = B.add tx t 1 in
        let c = B.contains tx t 1 in
        let d = B.remove tx t 2 in
        (a, b, c, d))
  in
  Alcotest.(check (pair (pair bool bool) (pair bool bool)))
    "results" ((true, false), (true, false))
    ((fun (a, b, c, d) -> ((a, b), (c, d))) r);
  Alcotest.(check (list int)) "contents" [ 1 ] (B.to_list t)

let test_abort_compensates () =
  let stm = S.create () in
  let t = B.create () in
  S.atomically stm (fun tx -> ignore (B.add tx t 5));
  (* The eager add of 7 and remove of 5 must both be compensated when
     the transaction raises. *)
  (try
     S.atomically stm (fun tx ->
         ignore (B.add tx t 7);
         ignore (B.remove tx t 5);
         Alcotest.(check (list int)) "eager effects visible inside" [ 7 ]
           (B.to_list t);
         raise Exit)
   with Exit -> ());
  Alcotest.(check (list int)) "rolled back" [ 5 ] (B.to_list t)

let test_locks_released_after_commit () =
  let stm = S.create () in
  let t = B.create () in
  S.atomically stm (fun tx -> ignore (B.add tx t 1));
  (* A second transaction can acquire the same bucket. *)
  S.atomically stm (fun tx ->
      ignore (B.contains tx t 1);
      ignore (B.remove tx t 1));
  Alcotest.(check (list int)) "empty" [] (B.to_list t)

let test_orelse_branch_compensated () =
  let stm = S.create () in
  let t = B.create () in
  let r =
    S.atomically stm (fun tx ->
        S.orelse tx
          (fun tx ->
            ignore (B.add tx t 9);
            S.abort tx)
          (fun tx ->
            ignore (B.add tx t 3);
            "fallback"))
  in
  Alcotest.(check string) "fallback ran" "fallback" r;
  Alcotest.(check (list int)) "branch effect compensated" [ 3 ] (B.to_list t)

let test_busy_abstract_lock_aborts_and_retries () =
  (* Two transactions fight over one bucket: both must eventually
     commit (abort + retry), and the final state reflects both. *)
  for seed = 1 to 10 do
    let stm = S.create () in
    let t = B.create ~buckets:1 () in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 2 (fun i () ->
                 S.atomically stm (fun tx ->
                     ignore (B.add tx t i);
                     (* Hold the lock across some work. *)
                     Sim.tick 20;
                     ignore (B.contains tx t i)))))
    in
    Alcotest.(check (list int)) "both committed" [ 0; 1 ] (B.to_list t)
  done

let test_commuting_ops_dont_conflict () =
  (* Operations on different buckets commute: two long transactions
     interleave without a single abort. *)
  let stm = S.create () in
  let t = B.create ~buckets:8 () in
  (* Partition candidate keys by actual bucket so the two threads
     provably touch disjoint buckets. *)
  let keys_a, keys_b =
    let rec pick a b k =
      if List.length a >= 4 && List.length b >= 4 then
        (List.filteri (fun i _ -> i < 4) a, List.filteri (fun i _ -> i < 4) b)
      else
        let bucket = B.bucket_index t k in
        if bucket < 4 && List.length a < 4 then pick (k :: a) b (k + 1)
        else if bucket >= 4 && List.length b < 4 then pick a (k :: b) (k + 1)
        else pick a b (k + 1)
    in
    pick [] [] 0
  in
  let (), _ =
    Sim.run (fun () ->
        R.parallel
          (List.map
             (fun keys () ->
               S.atomically stm (fun tx ->
                   List.iter
                     (fun k ->
                       ignore (B.add tx t k);
                       Sim.tick 10)
                     keys))
             [ keys_a; keys_b ]))
  in
  Alcotest.(check int) "all present" 8 (List.length (B.to_list t));
  Alcotest.(check int) "no aborts" 0 (S.stats stm).S.aborts

let test_concurrent_boosted_counter_workload () =
  for seed = 1 to 10 do
    let stm = S.create () in
    let t = B.create () in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun i () ->
                 for k = 0 to 5 do
                   S.atomically stm (fun tx ->
                       ignore (B.add tx t ((k * 3) + i)))
                 done)))
    in
    Alcotest.(check int) "18 elements" 18 (List.length (B.to_list t));
    let l = B.to_list t in
    Alcotest.(check (list int)) "exact contents" (List.init 18 Fun.id) l
  done

let test_mixes_with_tvars () =
  (* A transaction combining a boosted add with a tvar update: both
     effects commit together; on abort both disappear. *)
  let stm = S.create () in
  let t = B.create () in
  let counter = S.tvar stm 0 in
  S.atomically stm (fun tx ->
      ignore (B.add tx t 42);
      S.write tx counter (S.read tx counter + 1));
  Alcotest.(check (list int)) "boosted committed" [ 42 ] (B.to_list t);
  Alcotest.(check int) "tvar committed" 1
    (S.atomically stm (fun tx -> S.read tx counter));
  (try
     S.atomically stm (fun tx ->
         ignore (B.add tx t 43);
         S.write tx counter 99;
         raise Exit)
   with Exit -> ());
  Alcotest.(check (list int)) "boosted rolled back" [ 42 ] (B.to_list t);
  Alcotest.(check int) "tvar discarded" 1
    (S.atomically stm (fun tx -> S.read tx counter))

let test_boosted_size_atomic () =
  for seed = 1 to 6 do
    let stm = S.create () in
    let t = B.create ~buckets:4 () in
    for i = 0 to 7 do
      S.atomically stm (fun tx -> ignore (B.add tx t i))
    done;
    let bad = ref 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let mover =
            Sim.spawn (fun () ->
                for i = 0 to 7 do
                  S.atomically stm (fun tx ->
                      ignore (B.remove tx t i);
                      ignore (B.add tx t (100 + i)))
                done)
          in
          let observer =
            Sim.spawn (fun () ->
                for _ = 1 to 4 do
                  let n = S.atomically stm (fun tx -> B.size tx t) in
                  if n <> 8 then incr bad
                done)
          in
          Sim.join mover;
          Sim.join observer)
    in
    Alcotest.(check int) "size always 8" 0 !bad
  done

let suite =
  ( "boosted",
    [
      Alcotest.test_case "basic ops" `Quick test_basic_ops;
      Alcotest.test_case "abort compensates" `Quick test_abort_compensates;
      Alcotest.test_case "locks released" `Quick test_locks_released_after_commit;
      Alcotest.test_case "orelse branch compensated" `Quick
        test_orelse_branch_compensated;
      Alcotest.test_case "busy lock aborts and retries" `Quick
        test_busy_abstract_lock_aborts_and_retries;
      Alcotest.test_case "commuting ops don't conflict" `Quick
        test_commuting_ops_dont_conflict;
      Alcotest.test_case "concurrent workload" `Quick
        test_concurrent_boosted_counter_workload;
      Alcotest.test_case "mixes with tvars" `Quick test_mixes_with_tvars;
      Alcotest.test_case "boosted size atomic" `Quick test_boosted_size_atomic;
    ] )
