(* Tests for the utility layer: RNG determinism and distribution,
   statistics accumulators, and the binary heap. *)

open Polytm_util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_bound_invalid () =
  let r = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let c = Rng.split a in
  Alcotest.(check bool) "split streams differ" true (Rng.int64 b <> Rng.int64 c)

let test_rng_uniformity () =
  (* Chi-squared-ish sanity check on 8 buckets. *)
  let r = Rng.create 11 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let i = Rng.int r 8 in
    buckets.(i) <- buckets.(i) + 1
  done;
  let expect = n / 8 in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket within 5%" true
        (abs (c - expect) < expect / 20))
    buckets

let test_rng_shuffle_permutation () =
  let r = Rng.create 13 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_stats_acc () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  let s = Stats.Acc.summary acc in
  Alcotest.(check int) "count" 8 s.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.mean;
  (* Sample stddev of this classic data set: sqrt(32/7). *)
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (32. /. 7.)) s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Stats.max

let test_stats_acc_single () =
  let acc = Stats.Acc.create () in
  Stats.Acc.add acc 3.5;
  Alcotest.(check (float 1e-9)) "variance of one sample" 0. (Stats.Acc.variance acc)

let test_stats_percentile () =
  let data = [| 15.; 20.; 35.; 40.; 50. |] in
  Alcotest.(check (float 1e-9)) "median" 35. (Stats.median data);
  Alcotest.(check (float 1e-9)) "p0" 15. (Stats.percentile data 0.);
  Alcotest.(check (float 1e-9)) "p100" 50. (Stats.percentile data 100.);
  Alcotest.(check (float 1e-9)) "p25" 20. (Stats.percentile data 25.);
  Alcotest.(check (float 1e-9)) "p90" 46. (Stats.percentile data 90.)

let test_stats_percentile_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty data")
    (fun () -> ignore (Stats.percentile [||] 50.))

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Stats.mean []);
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ])

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:4 ~lo:0. ~hi:4. [| 0.5; 1.5; 1.7; 3.2; 9.; -1. |] in
  Alcotest.(check (array int)) "counts" [| 2; 2; 0; 2 |] h.Stats.counts

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  let input = [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ] in
  List.iter (Heap.push h) input;
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted output" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h)

let test_heap_peek () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "length" 2 (Heap.length h)

let test_heap_filter () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 1; 2; 3; 4; 5; 6 ];
  Heap.filter_in_place h (fun x -> x mod 2 = 0);
  Alcotest.(check int) "length after filter" 3 (Heap.length h);
  Alcotest.(check (option int)) "min after filter" (Some 2) (Heap.pop h)

let heap_property =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun input ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) input;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare input)

let percentile_property =
  QCheck.Test.make ~name:"percentile is bounded by min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (data, p) ->
      let arr = Array.of_list data in
      let v = Stats.percentile arr p in
      let lo = Array.fold_left min infinity arr
      and hi = Array.fold_left max neg_infinity arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let test_rng_copy_and_pick () =
  let a = Rng.create 21 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b);
  let arr = [| 5; 6; 7 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick from array" true
      (Array.exists (( = ) (Rng.pick a arr)) arr)
  done;
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick a [||]))

let test_heap_pop_exn_and_to_list () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h));
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "to_list holds all" [ 1; 2; 3 ]
    (List.sort compare (Heap.to_list h));
  Alcotest.(check int) "pop_exn min" 1 (Heap.pop_exn h)

let test_stats_pp () =
  let acc = Stats.Acc.create () in
  Stats.Acc.add acc 1.0;
  Stats.Acc.add acc 3.0;
  let s = Format.asprintf "%a" Stats.pp_summary (Stats.Acc.summary acc) in
  Alcotest.(check bool) "mentions n=2" true
    (let rec find i =
       i + 3 <= String.length s && (String.sub s i 3 = "n=2" || find (i + 1))
     in
     find 0)

let suite =
  ( "util",
    [
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng invalid bound" `Quick test_rng_bound_invalid;
      Alcotest.test_case "rng float range" `Quick test_rng_float_range;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
      Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
      Alcotest.test_case "stats acc" `Quick test_stats_acc;
      Alcotest.test_case "stats acc single" `Quick test_stats_acc_single;
      Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
      Alcotest.test_case "stats percentile invalid" `Quick test_stats_percentile_invalid;
      Alcotest.test_case "stats mean" `Quick test_stats_mean;
      Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
      Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
      Alcotest.test_case "heap empty" `Quick test_heap_empty;
      Alcotest.test_case "heap peek" `Quick test_heap_peek;
      Alcotest.test_case "heap filter" `Quick test_heap_filter;
      Alcotest.test_case "rng copy and pick" `Quick test_rng_copy_and_pick;
      Alcotest.test_case "heap pop_exn/to_list" `Quick
        test_heap_pop_exn_and_to_list;
      Alcotest.test_case "stats pp" `Quick test_stats_pp;
      Test_seed.to_alcotest heap_property;
      Test_seed.to_alcotest percentile_property;
    ] )
