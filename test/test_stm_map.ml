(* Tests for the transactional AVL map: model-based equivalence with
   Stdlib.Map, structural invariants after every operation (qcheck),
   concurrent correctness, and snapshot-consistent iteration. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module M = Polytm_structs.Stm_map.Make (S)
module IMap = Map.Make (Int)

let test_basic () =
  let stm = S.create () in
  let m = M.create stm in
  Alcotest.(check bool) "fresh add" true (M.add m 5 "five");
  Alcotest.(check bool) "replace" false (M.add m 5 "FIVE");
  Alcotest.(check (option string)) "find" (Some "FIVE") (M.find_opt m 5);
  Alcotest.(check bool) "mem" true (M.mem m 5);
  Alcotest.(check bool) "remove" true (M.remove m 5);
  Alcotest.(check bool) "remove again" false (M.remove m 5);
  Alcotest.(check (option string)) "gone" None (M.find_opt m 5)

let test_ordered_iteration () =
  let stm = S.create () in
  let m = M.create stm in
  List.iter (fun k -> ignore (M.add m k (k * 10))) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (list (pair int int))) "sorted pairs"
    [ (1, 10); (3, 30); (5, 50); (7, 70); (9, 90) ]
    (M.to_list m);
  Alcotest.(check int) "size" 5 (M.size m)

let model_property =
  QCheck.Test.make ~name:"stm_map behaves like Map.Make(Int)" ~count:120
    QCheck.(
      list_of_size Gen.(0 -- 80)
        (pair (int_range 0 2) (int_range 0 30)))
    (fun ops ->
      let stm = S.create () in
      let m = M.create stm in
      let model = ref IMap.empty in
      let ok = ref true in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
              let expected = not (IMap.mem k !model) in
              model := IMap.add k (k * 2) !model;
              if M.add m k (k * 2) <> expected then ok := false
          | 1 ->
              let expected = IMap.mem k !model in
              model := IMap.remove k !model;
              if M.remove m k <> expected then ok := false
          | _ ->
              if M.find_opt m k <> IMap.find_opt k !model then ok := false)
        ops;
      !ok
      && M.to_list m = IMap.bindings !model
      && M.invariants_hold m)

let balance_property =
  (* After any sequence of inserts, the tree height is logarithmic and
     the AVL invariants hold. *)
  QCheck.Test.make ~name:"stm_map stays AVL-balanced" ~count:60
    QCheck.(list_of_size Gen.(1 -- 120) (int_range 0 1000))
    (fun keys ->
      let stm = S.create () in
      let m = M.create stm in
      List.iter (fun k -> ignore (M.add m k k)) keys;
      M.invariants_hold m)

let test_concurrent_disjoint () =
  for seed = 1 to 8 do
    let stm = S.create () in
    let m = M.create stm in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun t () ->
                 for i = 0 to 7 do
                   ignore (M.add m ((i * 3) + t) t)
                 done)))
    in
    Alcotest.(check int) "24 keys" 24 (M.size m);
    Alcotest.(check bool) "invariants" true (M.invariants_hold m)
  done

let test_concurrent_contended () =
  for seed = 1 to 8 do
    let stm = S.create () in
    let m = M.create stm in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun t () ->
                 let rng = Polytm_util.Rng.create (seed * 7 + t) in
                 for _ = 1 to 12 do
                   let k = Polytm_util.Rng.int rng 10 in
                   if Polytm_util.Rng.bool rng then ignore (M.add m k t)
                   else ignore (M.remove m k)
                 done)))
    in
    Alcotest.(check bool) "invariants after contention" true
      (M.invariants_hold m);
    let l = M.to_list m in
    Alcotest.(check int) "size consistent" (List.length l) (M.size m)
  done

let test_snapshot_iteration_consistent () =
  (* A snapshot-profile map: iteration sees a count-invariant state
     while a mover re-keys entries, and the mover is never aborted. *)
  for seed = 1 to 6 do
    let stm = S.create () in
    let m = M.create ~size_sem:Polytm.Semantics.Snapshot stm in
    let n = 10 in
    for i = 0 to n - 1 do
      ignore (M.add m i i)
    done;
    let bad = ref 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let mover =
            Sim.spawn (fun () ->
                for i = 0 to n - 1 do
                  S.atomically stm (fun _tx ->
                      ignore (M.remove m i);
                      ignore (M.add m (100 + i) i))
                done)
          in
          let observer =
            Sim.spawn (fun () ->
                for _ = 1 to 5 do
                  if M.size m <> n then incr bad
                done)
          in
          Sim.join mover;
          Sim.join observer)
    in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: snapshot size always %d" seed n)
      0 !bad;
    Alcotest.(check int) "no updater aborts from snapshots" 0
      ((S.stats stm).S.read_invalid + (S.stats stm).S.lock_busy)
  done

let test_invariant_violation_aborts_not_crashes () =
  (* A corrupt-structure detection ([Invariant_violation]) raised
     mid-operation must travel the abort path: the transaction's
     buffered effects are discarded, its locks are released, and the
     exception surfaces to the caller typed — the process survives and
     the instance stays fully usable.  The raise site itself guards a
     state unreachable without genuine memory corruption (the
     transaction rereads the same tvars), so the injection raises the
     exception from inside a transaction that has already buffered map
     writes — exactly the state a detected corruption would abort
     from. *)
  let stm = S.create () in
  let m = M.create stm in
  List.iter (fun k -> ignore (M.add m k (k * 10))) [ 5; 1; 9; 3; 7 ];
  (match
     S.atomically stm (fun _tx ->
         (* flattens into this transaction: buffered, not yet visible *)
         ignore (M.add m 42 420);
         ignore (M.remove m 5);
         raise
           (Polytm_structs.Stm_map.Invariant_violation "injected corruption"))
   with
  | () -> Alcotest.fail "injected violation should have raised"
  | exception Polytm_structs.Stm_map.Invariant_violation m ->
      Alcotest.(check string) "typed exception surfaces" "injected corruption"
        m);
  Alcotest.(check (option int)) "buffered add discarded" None
    (M.find_opt m 42);
  Alcotest.(check (option int)) "buffered remove discarded" (Some 50)
    (M.find_opt m 5);
  Alcotest.(check bool) "tree invariants intact" true (M.invariants_hold m);
  (* No lock survives the abort: a fresh transaction commits. *)
  Alcotest.(check bool) "instance usable afterwards" true (M.add m 42 420);
  Alcotest.(check int) "size reflects only committed ops" 6 (M.size m)

let suite =
  ( "stm-map",
    [
      Alcotest.test_case "basics" `Quick test_basic;
      Alcotest.test_case "invariant violation aborts, not crashes" `Quick
        test_invariant_violation_aborts_not_crashes;
      Alcotest.test_case "ordered iteration" `Quick test_ordered_iteration;
      Test_seed.to_alcotest model_property;
      Test_seed.to_alcotest balance_property;
      Alcotest.test_case "concurrent disjoint" `Quick test_concurrent_disjoint;
      Alcotest.test_case "concurrent contended" `Quick test_concurrent_contended;
      Alcotest.test_case "snapshot iteration" `Quick
        test_snapshot_iteration_consistent;
    ] )
