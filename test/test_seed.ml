(** Deterministic seeding for every property test in the repository.

    QCheck draws its generator randomness from a [Random.State.t]; left
    implicit, each run explores different cases and a red CI run can go
    green on retry without anything being fixed.  All suites therefore
    route their property tests through {!to_alcotest}, which seeds the
    generator from the [POLYTM_TEST_SEED] environment variable
    (default 42) and stamps failures with the seed that produced them:

    {v POLYTM_TEST_SEED=1234 dune runtest v}

    reruns the exact same cases.  Note this seeds {e generation};
    concurrency interleavings under the simulator are pinned by the
    workload seeds inside the individual tests. *)

let seed =
  match Sys.getenv_opt "POLYTM_TEST_SEED" with
  | None | Some "" -> 42
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None ->
          invalid_arg
            (Printf.sprintf "POLYTM_TEST_SEED must be an integer, got %S" s))

(* A fresh state per test: tests stay independent of suite order. *)
let rand () = Random.State.make [| seed |]

let to_alcotest test =
  let name, speed, run = QCheck_alcotest.to_alcotest ~rand:(rand ()) test in
  ( name,
    speed,
    fun args ->
      try run args
      with e ->
        Printf.eprintf
          "[polytm] property %S failed under POLYTM_TEST_SEED=%d; export it \
           to reproduce this exact run\n\
           %!"
          name seed;
        raise e )
