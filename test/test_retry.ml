(* Blocking transactions: [retry] parks until a commit touches the wait
   set, [orElse] composes waiting, deadlines bound it.

   - Deterministic wakeup in the simulator: the consumer parks (no
     polling: exactly one park) and the producer's commit wakes it.
   - Exhaustive model check of the classic lost-wakeup race (writer
     commits between the empty read and the park): the real protocol
     (register, then re-validate, then park) survives every schedule; a
     deliberately broken waiter that skips re-validation deadlocks on a
     schedule the explorer finds.
   - orElse: a retrying left branch falls through; when both branches
     retry the waiter wakes on the *union* of both read sets; an
     [abort]ed (not retried) left branch leaks nothing into the wait
     set.
   - Deadline-bounded retry surfaces as [Deadline_exceeded] with no
     lock held and no waiter left registered.
   - QCheck producer/consumer conservation through blocking takes, on
     randomised simulator schedules and on real domains, TL2 and NOrec
     alike. *)

module Sim = Polytm_runtime.Sim
module Explore = Polytm_runtime.Explore
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module Q = Polytm_structs.Stm_queue.Make (S)
module D = Polytm_runtime.Domain_runtime
module Sd = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)
module Qd = Polytm_structs.Stm_queue.Make (Sd)
open Polytm

(* {1 Simulator: deterministic park/wake} *)

(* One consumer blocks on an empty queue; a producer fills it 50 ticks
   later.  The consumer must park exactly once (no polling loop) and be
   woken by the commit, and the whole execution must be reproducible
   tick-for-tick. *)
let wakeup_run algo =
  Sim.run (fun () ->
      let stm = S.create ~algo () in
      let q = Q.create stm in
      let got = ref None in
      let c = Sim.spawn (fun () -> got := Some (Q.take q)) in
      let p =
        Sim.spawn (fun () ->
            Sim.tick 50;
            Q.enqueue q "job")
      in
      Sim.join c;
      Sim.join p;
      (!got, S.stats stm, S.waiting stm))

let test_sim_wakeup_deterministic () =
  List.iter
    (fun algo ->
      let (got, st, waiting), info = wakeup_run algo in
      Alcotest.(check (option string)) "consumer got the item" (Some "job") got;
      Alcotest.(check int) "parked once" 1 st.S.parks;
      Alcotest.(check int) "woken once" 1 st.S.wakes;
      Alcotest.(check int) "no timeouts" 0 st.S.wake_timeouts;
      Alcotest.(check bool) "retry aborts counted" true (st.S.retry_waits >= 1);
      Alcotest.(check int) "no waiter left behind" 0 waiting;
      let _, info' = wakeup_run algo in
      Alcotest.(check int) "virtual time reproducible" info.Sim.makespan
        info'.Sim.makespan)
    [ `Tl2; `Norec ]

let test_deadline_bounded_retry () =
  let (outcome, locked, waiting, st), _info =
    Sim.run (fun () ->
        let stm = S.create () in
        let v = S.tvar stm 0 in
        let r = ref None in
        let t =
          Sim.spawn (fun () ->
              r :=
                Some
                  (S.try_atomically ~deadline:500 stm (fun tx ->
                       ignore (S.read tx v);
                       S.retry tx)))
        in
        Sim.join t;
        (Option.get !r, S.tvar_locked v, S.waiting stm, S.stats stm))
  in
  (match outcome with
  | S.Deadline_exceeded { reason = S.Retry; _ } -> ()
  | S.Deadline_exceeded _ | S.Committed _ | S.Exhausted _ ->
      Alcotest.fail "expected Deadline_exceeded with reason Retry");
  Alcotest.(check bool) "no lock held" false locked;
  Alcotest.(check int) "no waiter leaked" 0 waiting;
  Alcotest.(check int) "park ended by timer" 1 st.S.wake_timeouts;
  Alcotest.(check int) "never woken" 0 st.S.wakes

let test_retry_misuse_rejected () =
  let check_invalid name f =
    match Sim.run f with
    | exception S.Invalid_operation _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_operation")
  in
  check_invalid "empty read set" (fun () ->
      let stm = S.create () in
      S.atomically stm (fun tx -> S.retry tx));
  check_invalid "snapshot" (fun () ->
      let stm = S.create () in
      let v = S.tvar stm 0 in
      S.atomically ~sem:Semantics.Snapshot stm (fun tx ->
          ignore (S.read tx v);
          S.retry tx))

(* {1 orElse composition} *)

let test_orelse_retry_falls_through () =
  let (res, st), _ =
    Sim.run (fun () ->
        let stm = S.create () in
        let v = S.tvar stm 0 in
        let res =
          S.atomically stm (fun tx ->
              S.orelse tx
                (fun tx ->
                  ignore (S.read tx v);
                  S.retry tx)
                (fun _tx -> "right"))
        in
        (res, S.stats stm))
  in
  Alcotest.(check string) "right branch ran" "right" res;
  Alcotest.(check int) "no park: alternative was enabled" 0 st.S.parks

(* Both branches retry; the producer then enables only the LEFT branch
   — the one that was rolled back before parking.  A waiter that waits
   only on the live (right) branch's reads sleeps forever here; waiting
   on the union wakes it and the left branch succeeds. *)
let test_orelse_waits_on_union () =
  let (res, st), _ =
    Sim.run (fun () ->
        let stm = S.create () in
        let q1 = Q.create stm and q2 = Q.create stm in
        let r = ref None in
        let c =
          Sim.spawn (fun () ->
              r :=
                Some
                  (S.atomically stm (fun tx ->
                       S.orelse tx
                         (fun tx -> Q.take_tx tx q1)
                         (fun tx -> Q.take_tx tx q2))))
        in
        let p =
          Sim.spawn (fun () ->
              Sim.tick 100;
              Q.enqueue q1 "left")
        in
        Sim.join c;
        Sim.join p;
        (Option.get !r, S.stats stm))
  in
  Alcotest.(check string) "woken through the rolled-back branch" "left" res;
  Alcotest.(check int) "single park" 1 st.S.parks;
  Alcotest.(check int) "single wake" 1 st.S.wakes

(* The left branch aborts explicitly (fall-through, not retry): its
   rolled-back read of [aux] must NOT end up in the wait set, so a
   commit that only writes [aux] must not wake the parked waiter.  The
   later enqueue is what wakes it — exactly one park, one wake. *)
let test_orelse_abort_leaks_nothing () =
  let (res, st), _ =
    Sim.run (fun () ->
        let stm = S.create () in
        let aux = S.tvar stm 0 in
        let q = Q.create stm in
        let r = ref None in
        let c =
          Sim.spawn (fun () ->
              r :=
                Some
                  (S.atomically stm (fun tx ->
                       S.orelse tx
                         (fun tx ->
                           ignore (S.read tx aux);
                           S.abort tx)
                         (fun tx -> Q.take_tx tx q))))
        in
        let p =
          Sim.spawn (fun () ->
              Sim.tick 100;
              (* Touches only the aborted branch's read: no wakeup. *)
              S.atomically stm (fun tx -> S.write tx aux 1);
              Sim.tick 100;
              Q.enqueue q "item")
        in
        Sim.join c;
        Sim.join p;
        (Option.get !r, S.stats stm))
  in
  Alcotest.(check string) "woken by the enqueue" "item" res;
  Alcotest.(check int) "aux write did not wake the waiter" 1 st.S.parks;
  Alcotest.(check int) "one wake" 1 st.S.wakes

(* A conflict abort (not retry) of the left branch restarts the WHOLE
   transaction: under exploration there must be no schedule in which the
   right branch runs merely because the left lost a race.  The left
   branch always finds [flag] set in a serial world, so any right-branch
   execution would be a broken fall-through. *)
let test_orelse_conflict_abort_restarts_whole_tx () =
  let program () =
    let stm = S.create () in
    let flag = S.tvar stm 1 in
    let right_runs = ref 0 in
    let t1 =
      Sim.spawn (fun () ->
          let r =
            S.atomically stm (fun tx ->
                S.orelse tx
                  (fun tx -> if S.read tx flag >= 1 then "left" else S.retry tx)
                  (fun _tx ->
                    incr right_runs;
                    "right"))
          in
          assert (r = "left"))
    in
    let t2 =
      Sim.spawn (fun () ->
          S.atomically stm (fun tx -> S.write tx flag (S.read tx flag + 1)))
    in
    Sim.join t1;
    Sim.join t2;
    assert (!right_runs = 0)
  in
  let outcome =
    Explore.check ~max_executions:20_000 ~max_depth:80 ~step_limit:2_000
      program
  in
  Alcotest.(check bool) "schedules explored" true
    (outcome.Explore.executions > 10)

(* {1 Explore: lost-wakeup freedom} *)

(* Writer and blocking reader race on a one-element queue.  The
   simulator charges a tick between the decision to wait and the wait
   registration, so the explorer can schedule the producer's commit
   inside that window — the classic lost-wakeup race.  The protocol
   (register, re-validate, park) must survive every interleaving. *)
let lost_wakeup_program ~skip_wake_validation algo () =
  let stm =
    S.create ~algo ~unsafe_skip_wake_validation:skip_wake_validation ()
  in
  let q = Q.create stm in
  let got = ref None in
  let c = Sim.spawn (fun () -> got := Some (Q.take q)) in
  let p = Sim.spawn (fun () -> Q.enqueue q 7) in
  Sim.join c;
  Sim.join p;
  assert (!got = Some 7)

let test_explore_no_lost_wakeup () =
  List.iter
    (fun algo ->
      let outcome =
        Explore.check ~max_executions:40_000 ~max_depth:120 ~step_limit:2_000
          (lost_wakeup_program ~skip_wake_validation:false algo)
      in
      Alcotest.(check bool) "schedules explored" true
        (outcome.Explore.executions > 50))
    [ `Tl2; `Norec ]

let test_explore_catches_broken_waiter () =
  List.iter
    (fun algo ->
      let found =
        try
          ignore
            (Explore.check ~max_executions:40_000 ~max_depth:120
               ~step_limit:2_000
               (lost_wakeup_program ~skip_wake_validation:true algo));
          false
        with Explore.Violation _ -> true
      in
      Alcotest.(check bool)
        "skipping pre-park validation loses a wakeup on some schedule" true
        found)
    [ `Tl2; `Norec ]

(* {1 Conservation through blocking consumers} *)

(* [producers] threads each enqueue [per] tagged items, then one poison
   pill per consumer; [consumers] threads block on [take] until they see
   a pill.  Every produced item must be consumed exactly once. *)
let conserved items =
  let sorted = List.sort compare items in
  let rec distinct = function
    | a :: (b :: _ as rest) -> a <> b && distinct rest
    | _ -> true
  in
  distinct sorted

let pill = -1

let sim_prodcons algo seed ~producers ~consumers ~per =
  let (consumed, st, waiting), _info =
    Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
        let stm = S.create ~algo () in
        let q = Q.create stm in
        let eaten = Array.make consumers [] in
        let cs =
          List.init consumers (fun i ->
              Sim.spawn (fun () ->
                  let rec go () =
                    let v = Q.take q in
                    if v <> pill then begin
                      eaten.(i) <- v :: eaten.(i);
                      go ()
                    end
                  in
                  go ()))
        in
        let ps =
          List.init producers (fun p ->
              Sim.spawn (fun () ->
                  for k = 0 to per - 1 do
                    Q.enqueue q ((p * per) + k)
                  done))
        in
        List.iter Sim.join ps;
        (* Pills go in only after all real items: a consumer stopping
           early could strand an item otherwise. *)
        let closer =
          Sim.spawn (fun () ->
              for _ = 1 to consumers do
                Q.enqueue q pill
              done)
        in
        Sim.join closer;
        List.iter Sim.join cs;
        (Array.to_list eaten |> List.concat, S.stats stm, S.waiting stm))
  in
  Alcotest.(check int)
    (Printf.sprintf "every item consumed once (seed %d)" seed)
    (producers * per) (List.length consumed);
  Alcotest.(check bool) "no duplicates" true (conserved consumed);
  Alcotest.(check int) "no waiter left" 0 waiting;
  Alcotest.(check int) "every park accounted" st.S.parks
    (st.S.wakes + st.S.wake_timeouts)

let qcheck_sim_conservation =
  QCheck.Test.make ~count:60 ~name:"sim prodcons conservation (both algos)"
    (QCheck.make
       ~print:(fun (s, p, c, n) -> Printf.sprintf "seed=%d p=%d c=%d per=%d" s p c n)
       QCheck.Gen.(
         quad (int_bound 1_000_000) (int_range 1 3) (int_range 1 3)
           (int_range 1 8)))
    (fun (seed, producers, consumers, per) ->
      sim_prodcons `Tl2 seed ~producers ~consumers ~per;
      sim_prodcons `Norec (seed + 1) ~producers ~consumers ~per;
      true)

let domains_prodcons algo ~producers ~consumers ~per =
  let stm = Sd.create ~algo () in
  let q = Qd.create stm in
  let eaten = Array.make consumers [] in
  let live_producers = Atomic.make producers in
  D.parallel
    (List.init consumers (fun i () ->
         let rec go () =
           let v = Qd.take q in
           if v <> pill then begin
             eaten.(i) <- v :: eaten.(i);
             go ()
           end
         in
         go ())
    @ List.init producers (fun p () ->
          for k = 0 to per - 1 do
            Qd.enqueue q ((p * per) + k)
          done;
          (* Only the last producer standing seals the queue — earlier
             pills would stop consumers while items are still coming. *)
          if Atomic.fetch_and_add live_producers (-1) = 1 then
            for _ = 1 to consumers do
              Qd.enqueue q pill
            done));
  let consumed = Array.to_list eaten |> List.concat in
  let real = List.filter (fun v -> v <> pill) consumed in
  Alcotest.(check int) "every item consumed once" (producers * per)
    (List.length real);
  Alcotest.(check bool) "no duplicates" true (conserved real);
  Alcotest.(check int) "no waiter left" 0 (Sd.waiting stm)

let test_domains_conservation () =
  List.iter
    (fun algo -> domains_prodcons algo ~producers:2 ~consumers:3 ~per:100)
    [ `Tl2; `Norec ]

(* Real-time sanity on domains: a consumer blocked on an empty queue
   parks (is visible in the wait table) rather than spinning, and a
   producer's commit wakes it. *)
let test_domains_parked_waiter_visible () =
  let stm = Sd.create () in
  let q = Qd.create stm in
  let got = Atomic.make None in
  let d = Domain.spawn (fun () -> Atomic.set got (Some (Qd.take q))) in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Sd.waiting stm = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check int) "consumer parked, not spinning" 1 (Sd.waiting stm);
  Qd.enqueue q "wake";
  Domain.join d;
  Alcotest.(check (option string)) "woken by the commit" (Some "wake")
    (Atomic.get got);
  Alcotest.(check int) "wait table empty again" 0 (Sd.waiting stm);
  let st = Sd.stats stm in
  Alcotest.(check bool) "park and wake recorded" true
    (st.Sd.parks >= 1 && st.Sd.wakes >= 1)

let suite =
  ( "retry",
    [
      Alcotest.test_case "sim wakeup deterministic" `Quick
        test_sim_wakeup_deterministic;
      Alcotest.test_case "deadline-bounded retry" `Quick
        test_deadline_bounded_retry;
      Alcotest.test_case "misuse rejected" `Quick test_retry_misuse_rejected;
      Alcotest.test_case "orElse falls through" `Quick
        test_orelse_retry_falls_through;
      Alcotest.test_case "orElse waits on union" `Quick
        test_orelse_waits_on_union;
      Alcotest.test_case "orElse abort leaks nothing" `Quick
        test_orelse_abort_leaks_nothing;
      Alcotest.test_case "orElse conflict abort restarts (explore)" `Slow
        test_orelse_conflict_abort_restarts_whole_tx;
      Alcotest.test_case "no lost wakeup (explore)" `Slow
        test_explore_no_lost_wakeup;
      Alcotest.test_case "broken waiter caught (explore)" `Slow
        test_explore_catches_broken_waiter;
      QCheck_alcotest.to_alcotest qcheck_sim_conservation;
      Alcotest.test_case "domains conservation" `Quick
        test_domains_conservation;
      Alcotest.test_case "domains parked waiter visible" `Quick
        test_domains_parked_waiter_visible;
    ] )
