(* Model-based differential tests for the STM hot-path containers —
   {!Polytm_util.Vec} against a plain list, {!Polytm_util.Flat_table}
   against an association list — plus charge-accounting checks that
   the commit fast paths (read-only commits, GV1 vs GV4 clock access)
   touch the shared clock exactly as specified. *)

module Vec = Polytm_util.Vec
module Flat_table = Polytm_util.Flat_table
module Sim = Polytm_runtime.Sim
module R = Polytm_runtime.Sim_runtime
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)

(* --- Vec vs list -------------------------------------------------------- *)

type vec_op =
  | Vpush of int
  | Vset of int  (** index taken modulo current length *)
  | Vtruncate of int
  | Vclear
  | Vfilter_odd
  | Vsave_load  (** round-trip through to_array/load *)

let vec_op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun x -> Vpush x) (int_bound 1000));
        (2, map (fun i -> Vset i) (int_bound 1000));
        (1, map (fun n -> Vtruncate n) (int_bound 40));
        (1, return Vclear);
        (1, return Vfilter_odd);
        (1, return Vsave_load);
      ])

let show_vec_op = function
  | Vpush x -> Printf.sprintf "push %d" x
  | Vset i -> Printf.sprintf "set %d" i
  | Vtruncate n -> Printf.sprintf "truncate %d" n
  | Vclear -> "clear"
  | Vfilter_odd -> "filter_odd"
  | Vsave_load -> "save_load"

(* Apply one op to the vector and to the reference list in lockstep. *)
let vec_step v model op =
  match op with
  | Vpush x ->
      Vec.push v x;
      model @ [ x ]
  | Vset i ->
      let n = List.length model in
      if n = 0 then model
      else begin
        let i = i mod n in
        Vec.set v i 7777;
        List.mapi (fun j x -> if j = i then 7777 else x) model
      end
  | Vtruncate n ->
      Vec.truncate v n;
      List.filteri (fun j _ -> j < n) model
  | Vclear ->
      Vec.clear v;
      []
  | Vfilter_odd ->
      Vec.filter_in_place (fun x -> x land 1 = 1) v;
      List.filter (fun x -> x land 1 = 1) model
  | Vsave_load ->
      let a = Vec.to_array v in
      Vec.clear v;
      Vec.push v (-1);
      Vec.load v a;
      model

let vec_agrees v model =
  Vec.length v = List.length model
  && Vec.to_list v = model
  && Vec.is_empty v = (model = [])
  && Vec.fold_left (fun acc x -> acc + x) 0 v
     = List.fold_left (fun acc x -> acc + x) 0 model

let vec_differential =
  QCheck.Test.make ~count:500 ~name:"Vec behaves like a list"
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map show_vec_op ops))
       QCheck.Gen.(list_size (int_range 0 80) vec_op_gen))
    (fun ops ->
      let v = Vec.create 0 in
      let final =
        List.fold_left
          (fun model op ->
            let model = vec_step v model op in
            if not (vec_agrees v model) then
              QCheck.Test.fail_reportf "diverged: vec=%s model=%s"
                (String.concat "," (List.map string_of_int (Vec.to_list v)))
                (String.concat "," (List.map string_of_int model));
            model)
          [] ops
      in
      vec_agrees v final)

(* --- Flat_table vs association list ------------------------------------- *)

type tbl_op =
  | Tput of int * int
  | Tfind of int
  | Ttruncate of int
  | Treset

let tbl_op_gen =
  (* Keys in a small range so puts collide with existing entries and
     the signature accumulates real false positives. *)
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Tput (k, v)) (int_bound 50) (int_bound 1000));
        (3, map (fun k -> Tfind k) (int_bound 80));
        (1, map (fun n -> Ttruncate n) (int_bound 20));
        (1, return Treset);
      ])

let show_tbl_op = function
  | Tput (k, v) -> Printf.sprintf "put %d %d" k v
  | Tfind k -> Printf.sprintf "find %d" k
  | Ttruncate n -> Printf.sprintf "truncate %d" n
  | Treset -> "reset"

(* The model is an insertion-ordered (key, value) list without
   duplicate keys — exactly the table's dense-entry view. *)
let model_put model k v =
  if List.mem_assoc k model then
    List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) model
  else model @ [ (k, v) ]

let tbl_agrees t model =
  Flat_table.length t = List.length model
  && Flat_table.is_empty t = (model = [])
  && List.for_all
       (fun (k, v) ->
         let e = Flat_table.find t k in
         e >= 0 && Flat_table.key_at t e = k && Flat_table.value_at t e = v
         && Flat_table.maybe_mem t k)
       model
  && (* insertion order *)
  (let got = ref [] in
   Flat_table.iter (fun k v -> got := (k, v) :: !got) t;
   List.rev !got = model)
  && (* ascending key order, no duplicates *)
  (let got = ref [] in
   Flat_table.iter_ascending (fun k v -> got := (k, v) :: !got) t;
   List.rev !got
   = List.sort (fun (a, _) (b, _) -> Int.compare a b) model)

let tbl_step t model op =
  match op with
  | Tput (k, v) ->
      ignore (Flat_table.put t k v);
      model_put model k v
  | Tfind k ->
      let e = Flat_table.find t k in
      (match List.assoc_opt k model with
      | Some v ->
          if e < 0 || Flat_table.value_at t e <> v then
            QCheck.Test.fail_reportf "find %d: wrong entry" k
      | None -> if e >= 0 then QCheck.Test.fail_reportf "find %d: phantom" k);
      model
  | Ttruncate n ->
      Flat_table.truncate t n;
      List.filteri (fun j _ -> j < n) model
  | Treset ->
      Flat_table.reset t;
      []

let tbl_differential =
  QCheck.Test.make ~count:500 ~name:"Flat_table behaves like an assoc list"
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map show_tbl_op ops))
       QCheck.Gen.(list_size (int_range 0 100) tbl_op_gen))
    (fun ops ->
      let t = Flat_table.create (-1) in
      let final =
        List.fold_left
          (fun model op ->
            let model = tbl_step t model op in
            if not (tbl_agrees t model) then
              QCheck.Test.fail_reportf "diverged after %s" (show_tbl_op op);
            model)
          [] ops
      in
      tbl_agrees t final)

let test_tbl_negative_key () =
  let t = Flat_table.create 0 in
  Alcotest.check_raises "negative key rejected"
    (Invalid_argument "Flat_table.put: negative key") (fun () ->
      ignore (Flat_table.put t (-3) 1))

let test_tbl_sparse_keys () =
  (* Large, widely spread keys: exercises the hash mixing and the
     quicksort path of iter_ascending (> 8 entries). *)
  let t = Flat_table.create 0 in
  let keys = List.init 64 (fun i -> ((i * 7919) lxor (i lsl 13)) land 0xFFFFF) in
  List.iter (fun k -> ignore (Flat_table.put t k (k * 2))) keys;
  let sorted = List.sort_uniq Int.compare keys in
  let got = ref [] in
  Flat_table.iter_ascending (fun k _ -> got := k :: !got) t;
  Alcotest.(check (list int)) "ascending visit" sorted (List.rev !got);
  List.iter
    (fun k ->
      let e = Flat_table.find t k in
      Alcotest.(check int) "value" (k * 2) (Flat_table.value_at t e))
    keys

(* --- commit charge accounting ------------------------------------------- *)

(* Virtual cost of one [atomically] call running [f], measured on a
   single simulated thread (no contention, no retries). *)
let tx_cost ?gv f =
  let cost, _ =
    Sim.run (fun () ->
        let stm = S.create ?gv () in
        let v = S.tvar stm 0 in
        (* Burn the cold start: the first write commit moves the clock
           off its initial value. *)
        S.atomically stm (fun tx -> S.write tx v 1);
        let t0 = R.now () in
        S.atomically stm (fun tx -> f stm tx v);
        R.now () - t0)
  in
  cost

(* A read-only commit must not touch the global clock: its whole
   virtual cost is arming the descriptor (serial faa = 2, clock get =
   1) plus the one classic read (data get = 1, lock get = 1, read-set
   pause = 2).  A clock fetch-and-add at commit would add 2. *)
let test_ro_commit_no_clock_access () =
  let cost = tx_cost (fun _ tx v -> ignore (S.read tx v)) in
  Alcotest.(check int) "read-only commit adds no commit-phase charge" 7 cost

(* The same transaction with a write commits through the full path: on
   top of arming (3), the commit charges the serial-token check (1),
   active_commits faa in and out (2 + 2), lock get + cas (1 + 2), the
   kill check (1), the clock faa (2), and write-back data get + set
   plus lock release set (3) — 14 in all, 17 with arming.  The wv =
   rv + 1 fast path makes validation free here. *)
let test_write_commit_gv1_cost () =
  let cost = tx_cost (fun _ tx v -> S.write tx v 9) in
  Alcotest.(check int) "gv1 write commit charge" 17 cost

(* GV4's uncontended commit swaps the clock faa (2) for a get + cas
   (1 + 2): one charge more here, but the CAS can be absorbed by a
   concurrent committer where the faa never can. *)
let test_write_commit_gv4_cost () =
  let cost = tx_cost ~gv:`Gv4 (fun _ tx v -> S.write tx v 9) in
  Alcotest.(check int) "gv4 write commit charge" 18 cost

let test_ro_commit_counted () =
  let (), _ =
    Sim.run (fun () ->
        let stm = S.create () in
        let v = S.tvar stm 0 in
        S.atomically stm (fun tx -> S.write tx v 1);
        List.iter
          (fun sem -> S.atomically ~sem stm (fun tx -> ignore (S.read tx v)))
          [ Polytm.Semantics.Classic; Elastic; Snapshot ];
        let st = S.stats stm in
        Alcotest.(check int) "ro_commits" 3 st.S.ro_commits;
        Alcotest.(check int) "commits" 4 st.S.commits)
  in
  ()

(* GV4 under write contention: concurrent committers still serialise
   correctly (the adopting side validates), and the total is exact. *)
let test_gv4_concurrent_counter () =
  let total, _ =
    Sim.run ~policy:(Sim.Random_sched 21) (fun () ->
        let stm = S.create ~gv:`Gv4 () in
        let v = S.tvar stm 0 in
        let tids =
          List.init 8 (fun _ ->
              Sim.spawn (fun () ->
                  for _ = 1 to 50 do
                    S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
                  done))
        in
        List.iter Sim.join tids;
        S.atomically stm (fun tx -> S.read tx v))
  in
  Alcotest.(check int) "all increments applied" 400 total

let test_gv_scheme_exposed () =
  Alcotest.(check bool) "default gv1" true (S.gv_scheme (S.create ()) = `Gv1);
  Alcotest.(check bool) "gv4 opt-in" true
    (S.gv_scheme (S.create ~gv:`Gv4 ()) = `Gv4)

let suite =
  ( "flat-structs",
    [
      Test_seed.to_alcotest vec_differential;
      Test_seed.to_alcotest tbl_differential;
      Alcotest.test_case "table rejects negative keys" `Quick
        test_tbl_negative_key;
      Alcotest.test_case "table sparse keys ascending" `Quick
        test_tbl_sparse_keys;
      Alcotest.test_case "read-only commit never touches clock" `Quick
        test_ro_commit_no_clock_access;
      Alcotest.test_case "gv1 write commit charge" `Quick
        test_write_commit_gv1_cost;
      Alcotest.test_case "gv4 write commit charge" `Quick
        test_write_commit_gv4_cost;
      Alcotest.test_case "ro_commits statistic" `Quick test_ro_commit_counted;
      Alcotest.test_case "gv4 concurrent increments" `Quick
        test_gv4_concurrent_counter;
      Alcotest.test_case "gv scheme exposed" `Quick test_gv_scheme_exposed;
    ] )
