(* Tests for the non-STM baselines: sequential model equivalence, and
   concurrent correctness under the simulator for the thread-safe ones
   (coarse, hand-over-hand, lazy, lock-free, copy-on-write).  The
   lock-free list additionally gets a bounded exhaustive model check
   of its minimal racy scenarios. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module Explore = Polytm_runtime.Explore
module A = Polytm_structs.Adapters
module AM = Polytm_structs.Adapters.Make (Polytm_runtime.Sim_runtime)

let all_impls : (string * (unit -> A.set)) list =
  [
    ("seq-list", AM.seq);
    ("coarse-lock-list", AM.coarse);
    ("hand-over-hand-list", AM.hand_over_hand);
    ("lazy-list", AM.lazy_list);
    ("lock-free-list", AM.lockfree);
    ("cow-array-set", AM.cow);
  ]

let concurrent_impls = List.tl all_impls

(* --- sequential model equivalence ---------------------------------------- *)

module ISet = Set.Make (Int)

let sequential_property (impl_name, make) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s behaves like Set.Make(Int)" impl_name)
    ~count:100
    (QCheck.make
       ~print:(fun ops ->
         String.concat "; "
           (List.map
              (fun (op, v) ->
                Printf.sprintf "%s %d"
                  (match op with 0 -> "add" | 1 -> "remove" | _ -> "contains")
                  v)
              ops))
       QCheck.Gen.(
         list_size (int_range 0 60) (pair (int_range 0 2) (int_range 0 25))))
    (fun ops ->
      let s = make () in
      let ok = ref true in
      let model = ref ISet.empty in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
              let expected = not (ISet.mem v !model) in
              model := ISet.add v !model;
              if s.A.add v <> expected then ok := false
          | 1 ->
              let expected = ISet.mem v !model in
              model := ISet.remove v !model;
              if s.A.remove v <> expected then ok := false
          | _ -> if s.A.contains v <> ISet.mem v !model then ok := false)
        ops;
      !ok
      && s.A.to_list () = ISet.elements !model
      && s.A.size () = ISet.cardinal !model)

(* --- concurrent correctness ---------------------------------------------- *)

let test_disjoint_threads () =
  List.iter
    (fun (impl_name, make) ->
      for seed = 1 to 5 do
        let s = make () in
        let threads = 3 and per = 8 in
        let (), _ =
          Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
              R.parallel
                (List.init threads (fun t () ->
                     for i = 0 to per - 1 do
                       let key = (i * threads) + t in
                       ignore (s.A.add key);
                       if i mod 3 = 0 then ignore (s.A.remove key)
                     done)))
        in
        let expected =
          List.concat_map
            (fun t ->
              List.filter_map
                (fun i ->
                  if i mod 3 = 0 then None else Some ((i * threads) + t))
                (List.init per Fun.id))
            (List.init threads Fun.id)
          |> List.sort compare
        in
        Alcotest.(check (list int))
          (Printf.sprintf "%s seed %d" impl_name seed)
          expected (s.A.to_list ())
      done)
    concurrent_impls

let test_contended_consistency () =
  List.iter
    (fun (impl_name, make) ->
      for seed = 1 to 5 do
        let s = make () in
        let (), _ =
          Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
              R.parallel
                (List.init 3 (fun t () ->
                     let rng = Polytm_util.Rng.create (seed * 13 + t) in
                     for _ = 1 to 10 do
                       let key = Polytm_util.Rng.int rng 6 in
                       if Polytm_util.Rng.bool rng then ignore (s.A.add key)
                       else ignore (s.A.remove key)
                     done)))
        in
        let l = s.A.to_list () in
        Alcotest.(check (list int))
          (Printf.sprintf "%s seed %d: sorted unique" impl_name seed)
          (List.sort_uniq compare l)
          l;
        Alcotest.(check int)
          (Printf.sprintf "%s seed %d: size agrees at quiescence" impl_name seed)
          (List.length l) (s.A.size ());
        List.iter
          (fun v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: member %d" impl_name v)
              true (s.A.contains v))
          l
      done)
    concurrent_impls

(* The copy-on-write set is the only baseline whose size is an atomic
   snapshot: under count-preserving moves it must always read the
   exact count (the STM structures share this guarantee; the
   fine-grained lists do not — see the non-atomic-size test below). *)
let test_cow_size_atomic_under_moves () =
  for seed = 1 to 6 do
    let module C = AM.Cow in
    let t = C.create () in
    let n = 8 in
    for i = 0 to n - 1 do
      ignore (C.add t (2 * i))
    done;
    let violations = ref [] in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let mover =
            Sim.spawn (fun () ->
                for i = 0 to n - 1 do
                  (* A move is NOT atomic on a COW set (two separate
                     copies), so move by add-then-remove and accept
                     size in {n, n+1} — never below n, never above n+1. *)
                  ignore (C.add t ((2 * i) + 1));
                  ignore (C.remove t (2 * i))
                done)
          in
          let observer =
            Sim.spawn (fun () ->
                for _ = 1 to 8 do
                  let k = C.size t in
                  if k < n || k > n + 1 then violations := k :: !violations;
                  Sim.yield ()
                done)
          in
          Sim.join mover;
          Sim.join observer)
    in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: cow size within bounds" seed)
      [] !violations
  done

(* Demonstrate the paper's Section 3.3 motivation: a traversal-based
   size CAN observe a count that never corresponds to any atomic state
   when elements move around it.  We assert the *possibility* (at
   least one seed shows a tear) for the hand-over-hand list. *)
let test_hoh_size_not_atomic () =
  let module H = AM.Hoh in
  let tear_seen = ref false in
  let seed = ref 0 in
  while (not !tear_seen) && !seed < 400 do
    incr seed;
    let t = H.create () in
    let n = 6 in
    (* Elements 10,20,...; the mover repeatedly moves the SMALLEST
       element to the LARGEST position, hopping over the traversal. *)
    for i = 1 to n do
      ignore (H.add t (10 * i))
    done;
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched !seed) (fun () ->
          let mover =
            Sim.spawn (fun () ->
                for i = 1 to n do
                  ignore (H.remove t (10 * i));
                  ignore (H.add t ((10 * i) + 100))
                done)
          in
          let observer =
            Sim.spawn (fun () ->
                for _ = 1 to 4 do
                  if H.size t <> n then tear_seen := true
                done)
          in
          Sim.join mover;
          Sim.join observer)
    in
    ()
  done;
  Alcotest.(check bool) "a torn size was observed" true !tear_seen

(* --- bounded exhaustive checks for the lock-free list -------------------- *)

let test_lockfree_concurrent_adds_exhaustive () =
  let program () =
    let module L = AM.Lockfree in
    let t = L.create () in
    let t1 = Sim.spawn (fun () -> ignore (L.add t 1)) in
    let t2 = Sim.spawn (fun () -> ignore (L.add t 2)) in
    Sim.join t1;
    Sim.join t2;
    assert (L.to_list t = [ 1; 2 ])
  in
  let outcome =
    Explore.check ~max_executions:50_000 ~max_depth:40 ~step_limit:1_000 program
  in
  Alcotest.(check bool) "no truncation" false outcome.Explore.truncated

let test_lockfree_add_remove_exhaustive () =
  let program () =
    let module L = AM.Lockfree in
    let t = L.create () in
    ignore (L.add t 1);
    ignore (L.add t 2);
    let t1 = Sim.spawn (fun () -> ignore (L.remove t 1)) in
    let t2 = Sim.spawn (fun () -> ignore (L.add t 3)) in
    Sim.join t1;
    Sim.join t2;
    assert (L.to_list t = [ 2; 3 ])
  in
  let outcome =
    Explore.check ~max_executions:50_000 ~max_depth:40 ~step_limit:1_000 program
  in
  Alcotest.(check bool) "no truncation" false outcome.Explore.truncated

let test_lockfree_adjacent_removes_exhaustive () =
  (* The schedule shape that broke the first elastic list draft: two
     adjacent removes.  The lock-free marks make it safe. *)
  let program () =
    let module L = AM.Lockfree in
    let t = L.create () in
    ignore (L.add t 1);
    ignore (L.add t 2);
    ignore (L.add t 3);
    let t1 = Sim.spawn (fun () -> ignore (L.remove t 1)) in
    let t2 = Sim.spawn (fun () -> ignore (L.remove t 2)) in
    Sim.join t1;
    Sim.join t2;
    assert (L.to_list t = [ 3 ])
  in
  let outcome =
    Explore.check ~max_executions:100_000 ~max_depth:50 ~step_limit:1_000
      program
  in
  Alcotest.(check bool) "no truncation" false outcome.Explore.truncated

(* The same adjacent-removes scenario, exhaustively, for the elastic
   STM list — the regression test for the resurrect bug found during
   development. *)
let test_elastic_list_adjacent_removes_exhaustive () =
  let program () =
    let stm = AM.S.create ~cm:Polytm.Contention.Suicide () in
    let module LS = AM.List_set in
    let t = LS.create ~parse_sem:Polytm.Semantics.Elastic stm in
    ignore (LS.add t 1);
    ignore (LS.add t 2);
    ignore (LS.add t 3);
    let t1 = Sim.spawn (fun () -> ignore (LS.remove t 1)) in
    let t2 = Sim.spawn (fun () -> ignore (LS.remove t 2)) in
    Sim.join t1;
    Sim.join t2;
    assert (LS.to_list t = [ 3 ])
  in
  let outcome =
    Explore.check ~max_executions:100_000 ~max_depth:50 ~step_limit:2_000
      program
  in
  Alcotest.(check bool) "explored" true (outcome.Explore.executions > 100)

let suite =
  ( "baselines",
    List.map (fun p -> Test_seed.to_alcotest (sequential_property p))
      all_impls
    @ [
        Alcotest.test_case "disjoint threads" `Quick test_disjoint_threads;
        Alcotest.test_case "contended consistency" `Quick
          test_contended_consistency;
        Alcotest.test_case "cow size atomic" `Quick
          test_cow_size_atomic_under_moves;
        Alcotest.test_case "hoh size not atomic" `Quick test_hoh_size_not_atomic;
        Alcotest.test_case "lockfree adds exhaustive" `Quick
          test_lockfree_concurrent_adds_exhaustive;
        Alcotest.test_case "lockfree add/remove exhaustive" `Quick
          test_lockfree_add_remove_exhaustive;
        Alcotest.test_case "lockfree adjacent removes exhaustive" `Quick
          test_lockfree_adjacent_removes_exhaustive;
        Alcotest.test_case "elastic adjacent removes exhaustive" `Quick
          test_elastic_list_adjacent_removes_exhaustive;
      ] )
