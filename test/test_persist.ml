(* Durability tests (DESIGN.md §S21): the record format, the op log +
   checkpoint + recovery pipeline, and the server glue.

   - Frame fuzz (qcheck): a file cut at a random byte, or with a
     random byte flipped, scans as {e exactly} the longest valid
     prefix of its records plus a typed tear — never an exception,
     never a short or long prefix.
   - Deterministic recovery differential: a seeded mixed workload
     (pipelined ops, a MULTI batch, a mid-run BGSAVE) against a live
     server under [`Always], then a simulated crash (no shutdown, no
     final sync); recovery into a fresh registry must reproduce the
     live store byte for byte — for both algorithms and both 1- and
     8-shard routers.
   - Torn-tail cut exactness on a {e real} crash log: truncating the
     log mid-record recovers the same state as truncating at the
     preceding record boundary, and the boundary states are exactly
     the write prefixes.
   - BGSAVE concurrency: the server keeps answering writes while a
     checkpoint folds, and the checkpoint truncates the log
     (generation bump, old files deleted).
   - INFO: uptime/struct/persist lines, and the persistence-off
     server's typed refusals for BGSAVE/LASTSAVE. *)

module Wire = Polytm_server.Wire
module Limits = Polytm_server.Limits
module Registry = Polytm_server.Registry
module Session = Polytm_server.Session
module Evloop = Polytm_server.Evloop
module Persist = Polytm_server.Persist
module P = Polytm_persist
module S = Registry.S

let prop = Test_seed.to_alcotest

(* ---- plumbing ---------------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let send fd cmds =
  let b = Buffer.create 256 in
  List.iter (fun cmd -> Wire.write_request b { Wire.hint = None; cmd }) cmds;
  write_all fd (Buffer.contents b)

let recv_n fd n =
  let dec = Wire.Decoder.create () in
  let buf = Bytes.create 65536 in
  let out = ref [] in
  let got = ref 0 in
  while !got < n do
    (let rec pop () =
       if !got < n then
         match Wire.Decoder.next_response dec with
         | `Ok r ->
             out := r :: !out;
             incr got;
             pop ()
         | `Await -> ()
         | `Bad m -> Alcotest.failf "malformed reply: %s" m
         | `Corrupt m -> Alcotest.failf "corrupt reply stream: %s" m
     in
     pop ());
    if !got < n then
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> Alcotest.failf "server closed with %d/%d replies" !got n
      | len -> Wire.Decoder.feed dec buf 0 len
  done;
  List.rev !out

let roundtrip fd cmds =
  send fd cmds;
  recv_n fd (List.length cmds)

let rec resp_str = function
  | Wire.Simple s -> "+" ^ s
  | Wire.Int n -> ":" ^ string_of_int n
  | Wire.Bulk s -> "$" ^ s
  | Wire.Nil -> "_"
  | Wire.Error (c, m) -> "-" ^ Wire.err_code_to_string c ^ " " ^ m
  | Wire.Array l -> "[" ^ String.concat "," (List.map resp_str l) ^ "]"
  | Wire.Push s -> ">" ^ s

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir =
  let c = ref 0 in
  fun tag ->
    incr c;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "polytm-persist-%d-%s-%d" (Unix.getpid ()) tag !c)
    in
    rm_rf d;
    d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Canonical whole-store dump via one consistent snapshot — the
   equality oracle for recovery (map/set entries sorted, queue order
   preserved). *)
let dump reg =
  let insts = Registry.instances reg `Tl2 @ Registry.instances reg `Norec in
  S.snapshot_multi insts (fun () ->
      String.concat "\n"
        (List.map
           (fun (name, (slot : Registry.slot)) ->
             let body =
               match slot.Registry.entry with
               | Registry.Emap m ->
                   String.concat ";"
                     (List.map
                        (fun (k, v) -> Printf.sprintf "%d=%s" k v)
                        (List.sort compare (Registry.Shd.Map.to_list m)))
               | Registry.Eset h ->
                   String.concat ";"
                     (List.map string_of_int
                        (List.sort compare (Registry.Shd.Hash_set.to_list h)))
               | Registry.Equeue (q, _) ->
                   String.concat ";" (Registry.Squeue.to_list q)
             in
             name ^ "{" ^ body ^ "}")
           (Registry.slots reg)))

(* Run [f client_fd registry persist] against one live session with
   durability active.  [graceful:false] simulates a crash: the session
   drains (so every acked reply is out) but [Persist.stop] — the final
   sync and close — never runs; under [`Always] everything acked is
   already on disk, which is exactly the durability contract. *)
let run_session ?(limits = Limits.default) ?(shards = 1) ?(algo = `Tl2)
    ?(graceful = false) ~dir ~policy f =
  let registry = Registry.create ~shards ~default_algo:algo () in
  let recovered =
    match Persist.recover ~dir registry with
    | Ok r -> r
    | Error m -> Alcotest.failf "recover: %s" m
  in
  let p =
    match Persist.activate ~dir ~policy registry recovered with
    | Ok p -> p
    | Error m -> Alcotest.failf "activate: %s" m
  in
  let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stop = Atomic.make false in
  let stats = Session.create_stats () in
  let dom =
    Domain.spawn (fun () ->
        Evloop.handle
          ~stop:(fun () -> Atomic.get stop)
          ~limits ~registry ~stats server_fd)
  in
  let finally () =
    (try Unix.shutdown client_fd Unix.SHUTDOWN_SEND with _ -> ());
    Domain.join dom;
    (try Unix.close client_fd with _ -> ());
    (try Unix.close server_fd with _ -> ());
    if graceful then Persist.stop p
  in
  match f client_fd registry p with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

let recover_fresh ?(shards = 1) ?(algo = `Tl2) ~dir () =
  let reg = Registry.create ~shards ~default_algo:algo () in
  match Persist.recover ~dir reg with
  | Ok r -> (reg, r)
  | Error m -> Alcotest.failf "recover: %s" m

(* ---- frame-level fuzz --------------------------------------------------- *)

let gen_record =
  QCheck.Gen.(
    let* rtype = oneofl [ P.Frame.rt_op; P.Frame.rt_new ] in
    let* algo = int_range 0 1 in
    let* shard = int_range 0 64 in
    let* stamp = int_range 0 1_000_000 in
    let+ payload = string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 60) in
    { P.Frame.hdr = { P.Frame.rtype; algo; shard; stamp }; payload })

let encode_log records =
  let b = Buffer.create 1024 in
  Buffer.add_string b P.Frame.log_magic;
  let ends = ref [ Buffer.length b ] in
  List.iter
    (fun (r : P.Frame.record) ->
      P.Frame.encode b r.hdr ~payload:r.payload;
      ends := Buffer.length b :: !ends)
    records;
  (Buffer.contents b, List.rev !ends)

let scan_records path =
  let acc = ref [] in
  let scan =
    P.Frame.scan_file ~magic:P.Frame.log_magic ~path ~f:(fun _ r ->
        acc := r :: !acc)
  in
  (List.rev !acc, scan)

let record_eq (a : P.Frame.record) (b : P.Frame.record) =
  a.hdr = b.hdr && String.equal a.payload b.payload

(* A file cut at byte [x] scans as exactly the records fully before
   [x], with a tear unless [x] is a record boundary. *)
let prop_torn_tail =
  QCheck.Test.make ~count:300 ~name:"scan of a cut log = longest valid prefix"
    QCheck.(
      make
        Gen.(
          let* records = list_size (int_range 1 15) gen_record in
          let+ cut = float_range 0. 1. in
          (records, cut)))
    (fun (records, cutf) ->
      let bytes, ends = encode_log records in
      let cut = int_of_float (cutf *. float_of_int (String.length bytes)) in
      let cut = min cut (String.length bytes) in
      let path = Filename.temp_file "polytm-cut" ".ptmlog" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          write_file path (String.sub bytes 0 cut);
          let got, scan = scan_records path in
          let expected =
            if cut < P.Frame.magic_len then []
            else
              List.filteri
                (fun i _ -> List.nth ends (i + 1) <= cut)
                records
          in
          let boundary = List.exists (fun e -> e = cut) ends in
          List.length got = List.length expected
          && List.for_all2 record_eq got expected
          && scan.P.Frame.tear = None = (boundary && cut >= P.Frame.magic_len)
          && scan.P.Frame.records = List.length expected))

(* Flipping one byte inside record [j]'s frame loses [j] and its
   suffix, never a record before it, and never raises. *)
let prop_bitflip =
  QCheck.Test.make ~count:300 ~name:"scan of a corrupted log stops at the flip"
    QCheck.(
      make
        Gen.(
          let* records = list_size (int_range 1 12) gen_record in
          let* posf = float_range 0. 1. in
          let+ delta = int_range 1 255 in
          (records, posf, delta)))
    (fun (records, posf, delta) ->
      let bytes, ends = encode_log records in
      let body_len = String.length bytes - P.Frame.magic_len in
      QCheck.assume (body_len > 0);
      let pos =
        P.Frame.magic_len
        + min (body_len - 1) (int_of_float (posf *. float_of_int body_len))
      in
      let flipped = Bytes.of_string bytes in
      Bytes.set flipped pos
        (Char.chr ((Char.code bytes.[pos] + delta) land 0xff));
      let path = Filename.temp_file "polytm-flip" ".ptmlog" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          write_file path (Bytes.to_string flipped);
          let got, scan = scan_records path in
          (* index of the record whose frame contains [pos] *)
          let j =
            let rec go i = function
              | e :: _ when pos < e -> i
              | _ :: rest -> go (i + 1) rest
              | [] -> i
            in
            go (-1) ends
          in
          let expected = List.filteri (fun i _ -> i < j) records in
          List.length got = List.length expected
          && List.for_all2 record_eq got expected
          && scan.P.Frame.tear <> None))

(* ---- deterministic recovery differential -------------------------------- *)

let gen_ops st n =
  List.init n (fun i ->
      let k = Random.State.int st 50 in
      let v = Printf.sprintf "v%d-%d" i k in
      match Random.State.int st 8 with
      | 0 | 1 | 2 -> Wire.Put ("m", k, v)
      | 3 -> Wire.Del ("m", k)
      | 4 -> Wire.Add ("s", k)
      | 5 -> Wire.Remove ("s", k)
      | 6 -> Wire.Enq ("q", v)
      | _ -> Wire.Deq "q")

let chunks n l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let test_recovery_differential ~algo ~shards () =
  let dir = fresh_dir "diff" in
  let st =
    Random.State.make
      [| Test_seed.seed; shards; (match algo with `Tl2 -> 1 | `Norec -> 2) |]
  in
  let live =
    run_session ~dir ~policy:`Always ~shards ~algo (fun fd reg _p ->
        let r =
          roundtrip fd
            [
              Wire.New (Wire.Kmap, "m");
              Wire.New (Wire.Kset, "s");
              Wire.New (Wire.Kqueue, "q");
            ]
        in
        List.iter
          (function Wire.Simple _ -> () | _ -> Alcotest.fail "NEW failed")
          r;
        List.iter
          (fun batch -> ignore (roundtrip fd batch))
          (chunks 32 (gen_ops st 150));
        (* mid-run checkpoint: log rotation + compaction while the
           session keeps going afterwards *)
        (match roundtrip fd [ Wire.Bgsave ] with
        | [ Wire.Simple "OK" ] -> ()
        | [ r ] ->
            Alcotest.failf "BGSAVE: %s"
              (resp_str r)
        | _ -> assert false);
        List.iter
          (fun batch -> ignore (roundtrip fd batch))
          (chunks 32 (gen_ops st 150));
        (* one cross-key MULTI batch: logged as one record *)
        let batch =
          [ Wire.Put ("m", 1001, "multi-a"); Wire.Add ("s", 1002);
            Wire.Enq ("q", "multi-c") ]
        in
        ignore
          (roundtrip fd
             ((Wire.Multi :: batch) @ [ Wire.Multi_end ]));
        dump reg)
  in
  (* crash: no Persist.stop ran.  Recover into a fresh registry. *)
  let reg2, r = recover_fresh ~shards ~algo ~dir () in
  Alcotest.(check (option string)) "clean tail" None r.Persist.r_tear;
  Alcotest.(check string) "recovered store = live store" live (dump reg2);
  rm_rf dir

(* ---- torn-tail cut exactness on a real crash log ------------------------ *)

let test_torn_tail_real () =
  let dir = fresh_dir "torn" in
  let n = 30 in
  run_session ~dir ~policy:`Always (fun fd _reg _p ->
      ignore (roundtrip fd [ Wire.New (Wire.Kmap, "m") ]);
      (* one op per roundtrip: commit order = key order, so the log is
         NEW, PUT 0, PUT 1, ... and a prefix of it is a known state *)
      for i = 0 to n - 1 do
        match roundtrip fd [ Wire.Put ("m", i, "v" ^ string_of_int i) ] with
        | [ Wire.Int _ ] -> ()
        | _ -> Alcotest.fail "PUT failed"
      done);
  let gen =
    match P.Layout.read_manifest ~dir with
    | Some g -> g
    | None -> Alcotest.fail "no manifest"
  in
  let path = P.Layout.log_path ~dir gen in
  let full = read_file path in
  (* record boundaries from the length prefixes *)
  let boundaries =
    let rec go off acc =
      if off >= String.length full then List.rev acc
      else
        let len = Int32.to_int (String.get_int32_le full off) in
        let e = off + 8 + len in
        go e (e :: acc)
    in
    go P.Frame.magic_len [ P.Frame.magic_len ]
  in
  Alcotest.(check int) "one NEW + n PUTs" (n + 2) (List.length boundaries);
  let state_at_cut cut ~expect_tear =
    write_file path (String.sub full 0 cut);
    let reg, r = recover_fresh ~dir () in
    (match (expect_tear, r.Persist.r_tear) with
    | true, None -> Alcotest.fail "expected a reported tear"
    | false, Some m -> Alcotest.failf "unexpected tear: %s" m
    | _ -> ());
    dump reg
  in
  let expected_at k =
    (* state after NEW + the first [k - 1] puts (record 0 is the NEW) *)
    if k = 0 then ""
    else
      "m{"
      ^ String.concat ";"
          (List.init (k - 1) (fun i -> Printf.sprintf "%d=v%d" i i))
      ^ "}"
  in
  List.iteri
    (fun k b ->
      let clean = state_at_cut b ~expect_tear:false in
      Alcotest.(check string)
        (Printf.sprintf "clean cut after %d records" k)
        (expected_at k) clean;
      (* a cut one byte short of the next boundary tears mid-record
         and must recover exactly the boundary state *)
      if k + 1 < List.length boundaries then begin
        let next = List.nth boundaries (k + 1) in
        let torn = state_at_cut (next - 1) ~expect_tear:true in
        Alcotest.(check string)
          (Printf.sprintf "torn cut inside record %d" k)
          clean torn
      end)
    boundaries;
  write_file path full;
  rm_rf dir

(* ---- BGSAVE concurrency and log truncation ------------------------------ *)

let test_bgsave_concurrent () =
  let dir = fresh_dir "bgsave" in
  let registry = Registry.create ~shards:1 ~default_algo:`Tl2 () in
  let recovered =
    match Persist.recover ~dir registry with
    | Ok r -> r
    | Error m -> Alcotest.failf "recover: %s" m
  in
  let p =
    match Persist.activate ~dir ~policy:`No registry recovered with
    | Ok p -> p
    | Error m -> Alcotest.failf "activate: %s" m
  in
  let stop = Atomic.make false in
  let pairs =
    Array.init 2 (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  let doms =
    Array.map
      (fun (sfd, _) ->
        Domain.spawn (fun () ->
            Evloop.handle
              ~stop:(fun () -> Atomic.get stop)
              ~limits:Limits.default ~registry
              ~stats:(Session.create_stats ())
              sfd))
      pairs
  in
  let writer = snd pairs.(0) and saver = snd pairs.(1) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun (_, cfd) ->
          try Unix.shutdown cfd Unix.SHUTDOWN_SEND with _ -> ())
        pairs;
      Array.iter Domain.join doms;
      Array.iter
        (fun (sfd, cfd) ->
          (try Unix.close cfd with _ -> ());
          try Unix.close sfd with _ -> ())
        pairs;
      Persist.stop p)
    (fun () ->
      ignore (roundtrip writer [ Wire.New (Wire.Kmap, "m") ]);
      (* fatten the store so the checkpoint fold takes real time *)
      List.iter
        (fun batch -> ignore (roundtrip writer batch))
        (chunks 64
           (List.init 20_000 (fun i -> Wire.Put ("m", i, "x" ^ string_of_int i))));
      let gen0 =
        match P.Layout.read_manifest ~dir with Some g -> g | None -> 0
      in
      (* launch the checkpoint, then keep writing while it runs: the
         writer's replies prove the server stayed available *)
      send saver [ Wire.Bgsave ];
      List.iter
        (fun batch ->
          List.iter
            (function
              | Wire.Int _ -> ()
              | r ->
                  Alcotest.failf "write during BGSAVE: %s"
                    (resp_str r))
            (roundtrip writer batch))
        (chunks 32
           (List.init 200 (fun i -> Wire.Put ("m", 50_000 + i, "y"))));
      (match recv_n saver 1 with
      | [ Wire.Simple "OK" ] -> ()
      | [ r ] ->
          Alcotest.failf "BGSAVE: %s" (resp_str r)
      | _ -> assert false);
      (* generation bumped; the old generation's files are gone *)
      let gen1 =
        match P.Layout.read_manifest ~dir with Some g -> g | None -> 0
      in
      Alcotest.(check int) "generation bumped" (gen0 + 1) gen1;
      Alcotest.(check bool)
        "old log truncated" false
        (Sys.file_exists (P.Layout.log_path ~dir gen0));
      Alcotest.(check bool)
        "old checkpoint deleted" false
        (Sys.file_exists (P.Layout.ckpt_path ~dir gen0));
      Alcotest.(check bool)
        "new checkpoint exists" true
        (Sys.file_exists (P.Layout.ckpt_path ~dir gen1));
      (* LASTSAVE moved; INFO reports the new generation *)
      (match roundtrip saver [ Wire.Lastsave ] with
      | [ Wire.Int ts ] ->
          Alcotest.(check bool) "LASTSAVE is recent" true (ts > 0)
      | _ -> Alcotest.fail "LASTSAVE failed");
      match roundtrip saver [ Wire.Info ] with
      | [ Wire.Bulk info ] ->
          let has line =
            List.exists
              (fun l -> String.length l >= String.length line
                        && String.sub l 0 (String.length line) = line)
              (String.split_on_char '\n' info)
          in
          Alcotest.(check bool) "INFO persist:on" true (has "persist:on");
          Alcotest.(check bool)
            "INFO persist_gen" true
            (has (Printf.sprintf "persist_gen:%d" gen1));
          Alcotest.(check bool) "INFO struct ops" true (has "struct_m:")
      | _ -> Alcotest.fail "INFO failed");
  (* the checkpointed store recovers *)
  let reg2, r = recover_fresh ~dir () in
  Alcotest.(check (option string)) "clean tail" None r.Persist.r_tear;
  let d = dump reg2 in
  Alcotest.(check bool) "recovered the fattened map" true
    (String.length d > 100_000);
  rm_rf dir

(* ---- INFO / persistence-off refusals ------------------------------------ *)

let test_info_and_off_refusals () =
  let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let registry = Registry.create () in
  let stop = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        Evloop.handle
          ~stop:(fun () -> Atomic.get stop)
          ~limits:Limits.default ~registry
          ~stats:(Session.create_stats ())
          server_fd)
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.shutdown client_fd Unix.SHUTDOWN_SEND with _ -> ());
      Domain.join dom;
      (try Unix.close client_fd with _ -> ());
      try Unix.close server_fd with _ -> ())
    (fun () ->
      ignore (roundtrip client_fd [ Wire.New (Wire.Kmap, "m") ]);
      ignore (roundtrip client_fd [ Wire.Put ("m", 1, "a") ]);
      (match roundtrip client_fd [ Wire.Info ] with
      | [ Wire.Bulk info ] ->
          let lines = String.split_on_char '\n' info in
          let has prefix =
            List.exists
              (fun l ->
                String.length l >= String.length prefix
                && String.sub l 0 (String.length prefix) = prefix)
              lines
          in
          Alcotest.(check bool) "uptime" true (has "uptime_sec:");
          Alcotest.(check bool) "structures" true (has "structures:1");
          Alcotest.(check bool) "struct ops" true (has "struct_m:kind=map");
          Alcotest.(check bool) "persist off" true (has "persist:off")
      | _ -> Alcotest.fail "INFO failed");
      (match roundtrip client_fd [ Wire.Bgsave ] with
      | [ Wire.Error (Wire.Bad_op, _) ] -> ()
      | _ -> Alcotest.fail "BGSAVE should be refused without --dir");
      match roundtrip client_fd [ Wire.Lastsave ] with
      | [ Wire.Error (Wire.Bad_op, _) ] -> ()
      | _ -> Alcotest.fail "LASTSAVE should be refused without --dir")

(* ---- blocking ops are logged -------------------------------------------- *)

let test_blocking_pop_logged () =
  let dir = fresh_dir "blpop" in
  let live =
    run_session ~dir ~policy:`Always (fun fd reg _p ->
        ignore (roundtrip fd [ Wire.New (Wire.Kqueue, "q") ]);
        ignore
          (roundtrip fd [ Wire.Enq ("q", "a"); Wire.Enq ("q", "b") ]);
        (* BLPOP with an item ready takes the fast path; it must be
           logged (as a DEQ) like any other mutation *)
        (match roundtrip fd [ Wire.Blpop ("q", 1000) ] with
        | [ Wire.Array [ Wire.Bulk "q"; Wire.Bulk "a" ] ] -> ()
        | _ -> Alcotest.fail "BLPOP fast path failed");
        dump reg)
  in
  let reg2, _ = recover_fresh ~dir () in
  Alcotest.(check string) "pop survived the crash" live (dump reg2);
  Alcotest.(check bool) "queue holds only b" true
    (String.length live > 0 && live = "q{b}");
  rm_rf dir

let suite =
  ( "persist",
    [
      prop prop_torn_tail;
      prop prop_bitflip;
      Alcotest.test_case "recovery differential (tl2, 1 shard)" `Quick
        (test_recovery_differential ~algo:`Tl2 ~shards:1);
      Alcotest.test_case "recovery differential (tl2, 8 shards)" `Quick
        (test_recovery_differential ~algo:`Tl2 ~shards:8);
      Alcotest.test_case "recovery differential (norec, 1 shard)" `Quick
        (test_recovery_differential ~algo:`Norec ~shards:1);
      Alcotest.test_case "recovery differential (norec, 8 shards)" `Quick
        (test_recovery_differential ~algo:`Norec ~shards:8);
      Alcotest.test_case "torn-tail cut exactness on a crash log" `Quick
        test_torn_tail_real;
      Alcotest.test_case "BGSAVE concurrent with writers truncates the log"
        `Quick test_bgsave_concurrent;
      Alcotest.test_case "INFO lines; BGSAVE/LASTSAVE refused without --dir"
        `Quick test_info_and_off_refusals;
      Alcotest.test_case "blocking pop is logged and recovers" `Quick
        test_blocking_pop_logged;
    ] )
