(* Tests for the exhaustive interleaving explorer.  Coverage is
   measured as the number of *distinct shared-access orderings*
   reached, checked against combinatorics, and the explorer must find
   the classic lost-update race that random testing can miss. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module Explore = Polytm_runtime.Explore

(* Threads record the global order of their shared accesses through a
   single fetch-and-add each (one scheduling point per access); the
   resulting orderings are collected across all explored schedules. *)
let collect_orderings sizes =
  let seen = Hashtbl.create 64 in
  let program () =
    let total = List.fold_left ( + ) 0 sizes in
    let cursor = R.atomic 0 in
    let order = Array.make total (-1) in
    let body thread_idx steps () =
      for _ = 1 to steps do
        let i = R.fetch_and_add cursor 1 in
        order.(i) <- thread_idx
      done
    in
    let ts = List.mapi (fun i n -> Sim.spawn (body i n)) sizes in
    List.iter Sim.join ts;
    Hashtbl.replace seen (Array.to_list order) ()
  in
  let outcome = Explore.check program in
  Alcotest.(check bool) "exploration complete" false outcome.Explore.truncated;
  Hashtbl.length seen

let binomial n k =
  let rec loop acc i =
    if i > k then acc else loop (acc * (n - k + i) / i) (i + 1)
  in
  loop 1 1

let test_ordering_counts_two_threads () =
  List.iter
    (fun (a, b) ->
      let expected = binomial (a + b) a in
      let got = collect_orderings [ a; b ] in
      Alcotest.(check int)
        (Printf.sprintf "orderings of %d+%d accesses" a b)
        expected got)
    [ (1, 1); (2, 2); (3, 2); (3, 3) ]

let test_ordering_count_three_threads () =
  (* 3 threads x 2 accesses: multinomial 6!/(2!2!2!) = 90. *)
  Alcotest.(check int) "multinomial" 90 (collect_orderings [ 2; 2; 2 ])

let test_single_thread_one_schedule () =
  let program () =
    for _ = 1 to 5 do
      Sim.tick 1
    done
  in
  Alcotest.(check int) "deterministic program" 1
    (Explore.count_schedules program)

let lost_update_program () =
  let a = R.atomic 0 in
  let incr () = R.set a (R.get a + 1) in
  let t1 = Sim.spawn incr and t2 = Sim.spawn incr in
  Sim.join t1;
  Sim.join t2;
  assert (R.get a = 2)

let test_finds_lost_update () =
  let found =
    try
      ignore (Explore.check lost_update_program);
      false
    with Explore.Violation _ -> true
  in
  Alcotest.(check bool) "explorer finds the race" true found

let test_violation_schedule_replays () =
  match Explore.check lost_update_program with
  | _ -> Alcotest.fail "expected a violation"
  | exception Explore.Violation { schedule; _ } ->
      (* Replaying the returned prefix must reproduce the failure. *)
      let reproduced =
        try
          let (), _ =
            Sim.run ~policy:(Sim.Scripted schedule) lost_update_program
          in
          false
        with Assert_failure _ -> true
      in
      Alcotest.(check bool) "schedule replays the failure" true reproduced

let test_cas_survives_exploration () =
  (* The CAS retry loop must pass under *every* schedule. *)
  let program () =
    let a = R.atomic 0 in
    let incr () =
      let rec retry () =
        let v = R.get a in
        if not (R.cas a v (v + 1)) then retry ()
      in
      retry ()
    in
    let t1 = Sim.spawn incr and t2 = Sim.spawn incr in
    Sim.join t1;
    Sim.join t2;
    assert (R.get a = 2)
  in
  let outcome = Explore.check program in
  Alcotest.(check bool) "explored some schedules" true
    (outcome.Explore.executions > 1);
  Alcotest.(check bool) "not truncated" false outcome.Explore.truncated

let test_truncation () =
  let big_program () =
    let body () =
      for _ = 1 to 6 do
        Sim.tick 1
      done
    in
    let t1 = Sim.spawn body and t2 = Sim.spawn body in
    Sim.join t1;
    Sim.join t2
  in
  let outcome = Explore.check ~max_executions:5 big_program in
  Alcotest.(check bool) "truncated" true outcome.Explore.truncated;
  Alcotest.(check int) "stopped at bound" 5 outcome.Explore.executions

let test_preemption_bounding_shrinks_tree () =
  (* With zero preemptions allowed, only thread-completion orders are
     explored; the tree is tiny compared to the unbounded one, yet the
     lost-update race still needs >= 1 preemption to appear. *)
  let body () =
    let a = R.atomic 0 in
    let work () =
      for _ = 1 to 4 do
        ignore (R.get a)
      done
    in
    let t1 = Sim.spawn work and t2 = Sim.spawn work in
    Sim.join t1;
    Sim.join t2
  in
  let unbounded = Explore.check body in
  let bounded = Explore.check ~max_preemptions:0 body in
  Alcotest.(check bool)
    (Printf.sprintf "bounded (%d) << unbounded (%d)"
       bounded.Explore.executions unbounded.Explore.executions)
    true
    (bounded.Explore.executions * 4 < unbounded.Explore.executions)

let test_preemption_bound_still_finds_race () =
  (* One preemption suffices for the classic lost update. *)
  let found =
    try
      ignore (Explore.check ~max_preemptions:1 lost_update_program);
      false
    with Explore.Violation _ -> true
  in
  Alcotest.(check bool) "found with <=1 preemption" true found

let test_zero_preemptions_misses_race () =
  (* ... and zero preemptions cannot expose it: each increment is then
     effectively run to completion. *)
  let outcome = Explore.check ~max_preemptions:0 lost_update_program in
  Alcotest.(check bool) "sequential-ish schedules only" true
    (outcome.Explore.executions >= 1)

let test_spinlock_exclusion_bounded () =
  (* Bounded model checking of the spinlock on a minimal scenario: no
     explored schedule may lose an update.  Livelocking schedules (a
     waiter spun unfairly forever) are pruned via the step limit. *)
  let module L = Polytm_runtime.Spinlock.Make (R) in
  let program () =
    let lock = L.create () in
    let a = R.atomic 0 in
    let incr () = L.with_lock lock (fun () -> R.set a (R.get a + 1)) in
    let t1 = Sim.spawn incr and t2 = Sim.spawn incr in
    Sim.join t1;
    Sim.join t2;
    assert (R.get a = 2)
  in
  let outcome =
    Explore.check ~max_executions:20_000 ~max_depth:30 ~step_limit:300 program
  in
  Alcotest.(check bool) "explored many schedules" true
    (outcome.Explore.executions > 100)

let test_greedy_mutual_wait_bounded () =
  (* Bounded model checking of the Greedy kill protocol on the minimal
     mutual-wait scenario: two transactions updating the same two
     locations.  When their commits overlap, the older kills the
     younger lock owner and waits for the lock — while the younger may
     itself be spinning on a lock the older holds.  No explored
     schedule may lose an update, deadlock (pruned runs would show up
     as a tiny execution count), or leave a lock word held. *)
  let module S = Polytm.Stm.Make (R) in
  let program () =
    let stm = S.create ~cm:Polytm.Contention.Greedy () in
    let a = S.tvar stm 0 in
    let b = S.tvar stm 0 in
    let incr () =
      S.atomically stm (fun tx ->
          S.write tx a (S.read tx a + 1);
          S.write tx b (S.read tx b + 1))
    in
    let t1 = Sim.spawn incr and t2 = Sim.spawn incr in
    Sim.join t1;
    Sim.join t2;
    assert (S.atomically stm (fun tx -> S.read tx a) = 2);
    assert (S.atomically stm (fun tx -> S.read tx b) = 2);
    assert (not (S.tvar_locked a));
    assert (not (S.tvar_locked b))
  in
  let outcome =
    Explore.check ~max_executions:20_000 ~max_depth:40 ~step_limit:600 program
  in
  Alcotest.(check bool)
    (Printf.sprintf "explored many schedules (%d)" outcome.Explore.executions)
    true
    (outcome.Explore.executions > 100)

let suite =
  ( "explore",
    [
      Alcotest.test_case "ordering counts (2 threads)" `Quick
        test_ordering_counts_two_threads;
      Alcotest.test_case "ordering count (3 threads)" `Quick
        test_ordering_count_three_threads;
      Alcotest.test_case "single thread" `Quick test_single_thread_one_schedule;
      Alcotest.test_case "finds lost update" `Quick test_finds_lost_update;
      Alcotest.test_case "violation replays" `Quick test_violation_schedule_replays;
      Alcotest.test_case "cas survives exploration" `Quick
        test_cas_survives_exploration;
      Alcotest.test_case "truncation" `Quick test_truncation;
      Alcotest.test_case "spinlock bounded check" `Quick
        test_spinlock_exclusion_bounded;
      Alcotest.test_case "greedy mutual wait bounded check" `Quick
        test_greedy_mutual_wait_bounded;
      Alcotest.test_case "preemption bounding shrinks tree" `Quick
        test_preemption_bounding_shrinks_tree;
      Alcotest.test_case "bounded still finds race" `Quick
        test_preemption_bound_still_finds_race;
      Alcotest.test_case "zero preemptions misses race" `Quick
        test_zero_preemptions_misses_race;
    ] )
