(* End-to-end tests for the polytmd session layer, driven
   deterministically over [Unix.socketpair] — no TCP, no timing
   assumptions.  The session runs in its own domain; because one
   session executes its requests sequentially and the reply order is
   the request order, every assertion below is exact.

   Covered here, per DESIGN.md §S16:
   - a pipelined mixed-semantics workload against a sequential oracle;
   - MULTI batches: all-or-nothing execution, rejection of unresolvable
     batches, semantics violations discarding the whole batch;
   - BUSY backpressure under a shrunk in-flight limit, replies in
     request order;
   - deterministic DEADLINE / EXHAUSTED typed error replies via the
     DEBUG-ABORT probe;
   - graceful shutdown: in-flight requests drained and answered, locks
     released (the registry remains fully usable afterwards). *)

module Wire = Polytm_server.Wire
module Limits = Polytm_server.Limits
module Registry = Polytm_server.Registry
module Session = Polytm_server.Session
module Evloop = Polytm_server.Evloop
module Sem = Polytm.Semantics
module S = Registry.S

(* ---- plumbing ---------------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let encode reqs =
  let b = Buffer.create 256 in
  List.iter (Wire.write_request b) reqs;
  Buffer.contents b

(* Read exactly [n] responses. *)
let recv_n fd n =
  let dec = Wire.Decoder.create () in
  let buf = Bytes.create 65536 in
  let out = ref [] in
  let got = ref 0 in
  while !got < n do
    (let rec pop () =
       if !got < n then
         match Wire.Decoder.next_response dec with
         | `Ok r ->
             out := r :: !out;
             incr got;
             pop ()
         | `Await -> ()
         | `Bad m -> Alcotest.failf "malformed reply: %s" m
         | `Corrupt m -> Alcotest.failf "corrupt reply stream: %s" m
     in
     pop ());
    if !got < n then
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> Alcotest.failf "server closed with %d/%d replies" !got n
      | len -> Wire.Decoder.feed dec buf 0 len
  done;
  List.rev !out

(* Run [f client_fd registry stats stop_flag] against a live session.
   [?shards] sizes the registry's per-algorithm router (default: the
   classic single-instance server). *)
let with_session ?(limits = Limits.default) ?(shards = 1) f =
  let server_fd, client_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let registry = Registry.create ~shards () in
  let stats = Session.create_stats () in
  let stop = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        Evloop.handle
          ~stop:(fun () -> Atomic.get stop)
          ~limits ~registry ~stats server_fd)
  in
  let finally () =
    (try Unix.shutdown client_fd Unix.SHUTDOWN_SEND with _ -> ());
    Domain.join dom;
    (try Unix.close client_fd with _ -> ());
    try Unix.close server_fd with _ -> ()
  in
  match f client_fd registry stats (stop, server_fd) with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

(* Run [f client_fds registry] against [conns] live sessions sharing
   one registry — one socketpair and one session domain each. *)
let with_sessions ?(limits = Limits.default) ?(shards = 1) ~conns f =
  let registry = Registry.create ~shards () in
  let stop = Atomic.make false in
  let pairs =
    Array.init conns (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  let doms =
    Array.map
      (fun (server_fd, _) ->
        Domain.spawn (fun () ->
            Evloop.handle
              ~stop:(fun () -> Atomic.get stop)
              ~limits ~registry ~stats:(Session.create_stats ()) server_fd))
      pairs
  in
  let finally () =
    Array.iter
      (fun (_, cfd) ->
        try Unix.shutdown cfd Unix.SHUTDOWN_SEND with _ -> ())
      pairs;
    Array.iter Domain.join doms;
    Array.iter
      (fun (sfd, cfd) ->
        (try Unix.close cfd with _ -> ());
        try Unix.close sfd with _ -> ())
      pairs
  in
  match f (Array.map snd pairs) registry with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

let rec pp_resp = function
  | Wire.Simple s -> "+" ^ s
  | Wire.Int n -> ":" ^ string_of_int n
  | Wire.Bulk s -> "$" ^ String.escaped s
  | Wire.Nil -> "_"
  | Wire.Error (c, m) -> "-" ^ Wire.err_code_to_string c ^ " " ^ m
  | Wire.Array l -> "[" ^ String.concat "; " (List.map pp_resp l) ^ "]"
  | Wire.Push s -> ">" ^ s

let resp_t : Wire.response Alcotest.testable =
  Alcotest.testable (fun ppf r -> Format.pp_print_string ppf (pp_resp r)) ( = )

let resps_t = Alcotest.(list resp_t)

let req ?hint cmd = { Wire.hint; cmd }

(* ---- pipelined mixed-semantics workload vs a sequential oracle --------- *)

(* The oracle interprets the same command stream against plain OCaml
   structures.  Because one session is sequential, the transactional
   answers must be exactly the oracle's, whatever semantics each
   request is hinted with. *)
let oracle_step maps sets queue cmd : Wire.response =
  match cmd with
  | Wire.Put (_, k, v) ->
      let fresh = not (Hashtbl.mem maps k) in
      Hashtbl.replace maps k v;
      Wire.Int (if fresh then 1 else 0)
  | Wire.Get (_, k) -> (
      match Hashtbl.find_opt maps k with
      | Some v -> Wire.Bulk v
      | None -> Wire.Nil)
  | Wire.Del (_, k) ->
      let had = Hashtbl.mem maps k in
      Hashtbl.remove maps k;
      Wire.Int (if had then 1 else 0)
  | Wire.Contains (s, k) ->
      if s = "m" then Wire.Int (if Hashtbl.mem maps k then 1 else 0)
      else Wire.Int (if Hashtbl.mem sets k then 1 else 0)
  | Wire.Add (_, k) ->
      let fresh = not (Hashtbl.mem sets k) in
      Hashtbl.replace sets k ();
      Wire.Int (if fresh then 1 else 0)
  | Wire.Remove (_, k) ->
      let had = Hashtbl.mem sets k in
      Hashtbl.remove sets k;
      Wire.Int (if had then 1 else 0)
  | Wire.Size s ->
      Wire.Int
        (if s = "m" then Hashtbl.length maps
         else if s = "s" then Hashtbl.length sets
         else Queue.length queue)
  | Wire.Snapshot_iter s ->
      if s = "m" then
        Wire.Array
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) maps []
          |> List.sort compare
          |> List.map (fun (k, v) -> Wire.Array [ Wire.Int k; Wire.Bulk v ]))
      else if s = "s" then
        Wire.Array
          (Hashtbl.fold (fun k () acc -> k :: acc) sets []
          |> List.sort compare
          |> List.map (fun k -> Wire.Int k))
      else
        Wire.Array
          (Queue.fold (fun acc v -> Wire.Bulk v :: acc) [] queue |> List.rev)
  | Wire.Enq (_, v) ->
      Queue.push v queue;
      Wire.ok
  | Wire.Deq _ -> (
      match Queue.take_opt queue with
      | Some v -> Wire.Bulk v
      | None -> Wire.Nil)
  | _ -> Alcotest.fail "oracle: unexpected command"

let gen_op rng : Wire.request =
  let k = Random.State.int rng 24 in
  let v = "v" ^ string_of_int (Random.State.int rng 100) in
  match Random.State.int rng 13 with
  | 0 | 1 -> req ~hint:Sem.Classic (Wire.Put ("m", k, v))
  | 2 | 3 -> req ~hint:Sem.Elastic (Wire.Get ("m", k))
  | 4 -> req ~hint:Sem.Classic (Wire.Del ("m", k))
  | 5 -> req ~hint:Sem.Elastic (Wire.Contains ("m", k))
  | 6 -> req ~hint:Sem.Classic (Wire.Add ("s", k))
  | 7 -> req ~hint:Sem.Classic (Wire.Remove ("s", k))
  | 8 -> req ~hint:Sem.Elastic (Wire.Contains ("s", k))
  | 9 -> req (Wire.Size (if k mod 3 = 0 then "m" else if k mod 3 = 1 then "s" else "q"))
  | 10 ->
      req ~hint:Sem.Snapshot
        (Wire.Snapshot_iter
           (if k mod 3 = 0 then "m" else if k mod 3 = 1 then "s" else "q"))
  | 11 -> req ~hint:Sem.Classic (Wire.Enq ("q", v))
  | _ -> req ~hint:Sem.Classic (Wire.Deq "q")

let test_pipeline_matches_oracle ?(shards = 1) () =
  let rng = Random.State.make [| 0xBEEF |] in
  let ops = List.init 150 (fun _ -> gen_op rng) in
  let setup =
    [
      req (Wire.New (Wire.Kmap, "m"));
      req (Wire.New (Wire.Kset, "s"));
      req (Wire.New (Wire.Kqueue, "q"));
    ]
  in
  let maps = Hashtbl.create 64 and sets = Hashtbl.create 64 in
  let queue = Queue.create () in
  let expected =
    List.map (fun (r : Wire.request) -> oracle_step maps sets queue r.Wire.cmd) ops
  in
  let limits = { Limits.default with Limits.max_inflight = 4096 } in
  with_session ~limits ~shards (fun fd _reg stats _ ->
      write_all fd (encode setup);
      let got_setup = recv_n fd (List.length setup) in
      Alcotest.check resps_t "setup replies"
        [ Wire.ok; Wire.ok; Wire.ok ] got_setup;
      (* the whole mixed-semantics workload, pipelined in one write *)
      write_all fd (encode ops);
      let got = recv_n fd (List.length ops) in
      Alcotest.check resps_t "pipelined replies match the oracle" expected got;
      Alcotest.(check int) "no busy" 0 stats.Session.busy;
      Alcotest.(check int) "no protocol errors" 0 stats.Session.proto_errors)

(* ---- MULTI atomicity --------------------------------------------------- *)

let test_multi_commits_atomically () =
  with_session (fun fd _ _ _ ->
      write_all fd
        (encode
           [
             req (Wire.New (Wire.Kmap, "m"));
             req Wire.Multi;
             req (Wire.Put ("m", 1, "a"));
             req (Wire.Put ("m", 2, "b"));
             req (Wire.Del ("m", 3));
             req Wire.Multi_end;
             req (Wire.Get ("m", 1));
             req (Wire.Size "m");
           ]);
      let got = recv_n fd 8 in
      Alcotest.check resps_t "batch executes as one transaction"
        [
          Wire.ok;
          Wire.ok;
          Wire.queued;
          Wire.queued;
          Wire.queued;
          Wire.Array [ Wire.Int 1; Wire.Int 1; Wire.Int 0 ];
          Wire.Bulk "a";
          Wire.Int 2;
        ]
        got)

let test_multi_unresolvable_executes_nothing () =
  with_session (fun fd _ _ _ ->
      write_all fd
        (encode
           [
             req (Wire.New (Wire.Kmap, "m"));
             req Wire.Multi;
             req (Wire.Put ("m", 7, "x"));
             req (Wire.Get ("ghost", 1));
             req Wire.Multi_end;
             req (Wire.Contains ("m", 7));
           ]);
      match recv_n fd 6 with
      | [ _; _; _; _; Wire.Error (Wire.No_struct, _); Wire.Int 0 ] -> ()
      | got ->
          Alcotest.failf "batch with unknown structure leaked effects: %s"
            (String.concat " | " (List.map pp_resp got)))

let test_multi_snapshot_write_discards_batch () =
  with_session (fun fd _ stats _ ->
      write_all fd
        (encode
           [
             req (Wire.New (Wire.Kmap, "m"));
             req ~hint:Sem.Snapshot Wire.Multi;
             req (Wire.Put ("m", 9, "z"));
             req Wire.Multi_end;
             req (Wire.Contains ("m", 9));
           ]);
      (match recv_n fd 5 with
      | [ _; _; _; Wire.Error (Wire.Sem_violation, _); Wire.Int 0 ] -> ()
      | got ->
          Alcotest.failf "snapshot-hinted write was not rejected atomically: %s"
            (String.concat " | " (List.map pp_resp got)));
      Alcotest.(check int) "counted as semantics violation" 1
        stats.Session.sem_errors)

(* ---- BUSY backpressure ------------------------------------------------- *)

let test_busy_under_shrunk_inflight_limit () =
  let limits = { Limits.default with Limits.max_inflight = 2 } in
  with_session ~limits (fun fd _ stats _ ->
      (* One write delivers one read batch over a socketpair, so the
         admission decision is deterministic: 2 admitted, 3 refused —
         and replies stay in request order. *)
      write_all fd (encode (List.init 5 (fun _ -> req Wire.Ping)));
      let got = recv_n fd 5 in
      (match got with
      | [ Wire.Simple "PONG"; Wire.Simple "PONG";
          Wire.Error (Wire.Busy, _); Wire.Error (Wire.Busy, _);
          Wire.Error (Wire.Busy, _) ] ->
          ()
      | _ ->
          Alcotest.failf "expected 2 PONG then 3 BUSY in order, got %s"
            (String.concat " | " (List.map pp_resp got)));
      Alcotest.(check int) "busy counted" 3 stats.Session.busy;
      (* the connection survives backpressure *)
      write_all fd (encode [ req Wire.Ping ]);
      Alcotest.check resps_t "still serving" [ Wire.pong ] (recv_n fd 1))

(* ---- typed liveness error replies -------------------------------------- *)

let test_deadline_and_budget_replies () =
  let limits = { Limits.default with Limits.debug_ops = true } in
  with_session ~limits (fun fd _ stats _ ->
      write_all fd
        (encode
           [
             req (Wire.Debug_abort { budget = Some 3; deadline_us = None });
             req (Wire.Debug_abort { budget = None; deadline_us = Some 0 });
             req Wire.Ping;
           ]);
      (match recv_n fd 3 with
      | [ Wire.Error (Wire.Exhausted, m1); Wire.Error (Wire.Deadline, _);
          Wire.Simple "PONG" ] ->
          Alcotest.(check bool) "attempts reported" true
            (String.length m1 > 0)
      | got ->
          Alcotest.failf "expected EXHAUSTED, DEADLINE, PONG; got %s"
            (String.concat " | " (List.map pp_resp got)));
      Alcotest.(check int) "exhausted counted" 1 stats.Session.exhausted_errors;
      Alcotest.(check int) "deadline counted" 1 stats.Session.deadline_errors)

let test_debug_ops_gated () =
  with_session (fun fd _ _ _ ->
      write_all fd
        (encode [ req (Wire.Debug_abort { budget = None; deadline_us = None }) ]);
      match recv_n fd 1 with
      | [ Wire.Error (Wire.Bad_op, _) ] -> ()
      | got ->
          Alcotest.failf "DEBUG-ABORT should be refused by default, got %s"
            (String.concat " | " (List.map pp_resp got)))

(* ---- graceful shutdown -------------------------------------------------- *)

let test_shutdown_drains_and_releases () =
  let puts = List.init 40 (fun i -> req (Wire.Put ("m", i, "v"))) in
  let registry_after =
    with_session (fun fd reg _ (stop, server_fd) ->
        write_all fd (encode (req (Wire.New (Wire.Kmap, "m")) :: puts));
        let got = recv_n fd 41 in
        Alcotest.(check int) "every in-flight request answered" 41
          (List.length got);
        List.iter
          (function
            | Wire.Error _ -> Alcotest.fail "unexpected error during load"
            | _ -> ())
          got;
        (* The server-side nudge polytmd uses: stop flag plus
           SHUTDOWN_RECEIVE unblocks the session's read; the session
           must exit cleanly (Domain.join in the harness would hang
           otherwise). *)
        Atomic.set stop true;
        (try Unix.shutdown server_fd Unix.SHUTDOWN_RECEIVE with _ -> ());
        reg)
  in
  (* Locks released: the same registry serves a fresh session with no
     leftover lock wedging its transactions. *)
  let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stats = Session.create_stats () in
  let dom =
    Domain.spawn (fun () ->
        Evloop.handle ~limits:Limits.default ~registry:registry_after ~stats
          server_fd)
  in
  write_all client_fd
    (encode
       [
         req (Wire.Size "m");
         req ~hint:Sem.Snapshot (Wire.Snapshot_iter "m");
         req (Wire.Put ("m", 1000, "late"));
       ]);
  let got = recv_n client_fd 3 in
  (match got with
  | [ Wire.Int 40; Wire.Array items; Wire.Int 1 ] ->
      Alcotest.(check int) "snapshot sees all committed puts" 40
        (List.length items)
  | _ ->
      Alcotest.failf "registry unusable after shutdown: %s"
        (String.concat " | " (List.map pp_resp got)));
  Unix.shutdown client_fd Unix.SHUTDOWN_SEND;
  Domain.join dom;
  Unix.close client_fd;
  Unix.close server_fd

(* ---- blocking ops and subscriptions ------------------------------------ *)

let eventually ?(timeout_s = 10.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    || Unix.gettimeofday () -. t0 <= timeout_s
       && begin
            Unix.sleepf 0.002;
            go ()
          end
  in
  go ()

(* Enqueue through the registry from the test domain — a second
   "producer connection" without a second session. *)
let produce reg name v =
  match Registry.resolve reg (Wire.Enq (name, v)) with
  | Ok r ->
      ignore (r.Registry.run () : Wire.response);
      (* a session marks watched structures dirty post-commit *)
      Option.iter (Registry.touch reg) r.Registry.touched
  | Error _ -> Alcotest.fail "producer could not resolve ENQ"

(* The acceptance-criteria scenario: the server answers a BLPOP issued
   {e before} the corresponding push.  The session parks (observable as
   a registered waiter — no polling loop to hide in) and the producer's
   commit wakes it. *)
let test_blpop_before_push () =
  with_session (fun fd reg _ _ ->
      write_all fd (encode [ req (Wire.New (Wire.Kqueue, "q")) ]);
      Alcotest.check resps_t "queue created" [ Wire.ok ] (recv_n fd 1);
      write_all fd (encode [ req (Wire.Blpop ("q", 0)) ]);
      (* The consumer must actually be parked before anything is
         produced: a waiter registered on the TL2 instance. *)
      Alcotest.(check bool) "consumer parked on the empty queue" true
        (eventually (fun () -> S.waiting (Registry.stm reg) = 1));
      produce reg "q" "job-1";
      Alcotest.check resps_t "woken by the producer's commit"
        [ Wire.Array [ Wire.Bulk "q"; Wire.Bulk "job-1" ] ]
        (recv_n fd 1);
      Alcotest.(check bool) "no waiter leaked" true
        (eventually (fun () -> S.waiting (Registry.stm reg) = 0));
      (* BTAKE takes an already-present element without parking. *)
      produce reg "q" "job-2";
      write_all fd (encode [ req (Wire.Btake ("q", 0)) ]);
      Alcotest.check resps_t "BTAKE replies the bare value"
        [ Wire.Bulk "job-2" ] (recv_n fd 1))

let test_blocking_timeout_and_refusals () =
  with_session (fun fd reg _ _ ->
      write_all fd (encode [ req (Wire.New (Wire.Kqueue, "q")) ]);
      Alcotest.check resps_t "queue created" [ Wire.ok ] (recv_n fd 1);
      (* Timing out is data, not an error: Nil, like Redis. *)
      write_all fd (encode [ req (Wire.Btake ("q", 30)) ]);
      Alcotest.check resps_t "timeout replies Nil" [ Wire.Nil ] (recv_n fd 1);
      Alcotest.(check bool) "timed-out waiter deregistered" true
        (eventually (fun () -> S.waiting (Registry.stm reg) = 0));
      (* A snapshot-hinted blocking op is a typed semantics violation
         (retry cannot park a read-only snapshot). *)
      write_all fd (encode [ req ~hint:Sem.Snapshot (Wire.Blpop ("q", 10)) ]);
      (match recv_n fd 1 with
      | [ Wire.Error (Wire.Sem_violation, _) ] -> ()
      | got ->
          Alcotest.failf "snapshot BLPOP should be SEM, got %s"
            (String.concat " | " (List.map pp_resp got)));
      (* Inside MULTI a parking op is refused up front. *)
      write_all fd
        (encode
           [ req Wire.Multi; req (Wire.Blpop ("q", 0)); req Wire.Multi_end ]);
      match recv_n fd 3 with
      | [ Wire.Simple "OK"; Wire.Error (Wire.Bad_op, _); Wire.Array [] ] -> ()
      | got ->
          Alcotest.failf "BLPOP in MULTI should be BADOP, got %s"
            (String.concat " | " (List.map pp_resp got)))

(* The waiter budget is one server-wide account, not a per-instance
   table: a slot consumed by a waiter parked against the TL2 instance
   must refuse admission to a blocking op on the NORec one, and
   vice versa.  (The old per-instance check let two backends jointly
   park 2x the cap, and K shards would have made it Kx.) *)
let test_blpop_busy_when_wait_table_full () =
  let limits = { Limits.default with Limits.max_waiters = 1 } in
  with_session ~limits (fun fd reg _ _ ->
      write_all fd (encode [ req (Wire.New (Wire.Kqueue, "q")) ]);
      Alcotest.check resps_t "queue created" [ Wire.ok ] (recv_n fd 1);
      (match Registry.ensure ~algo:`Norec reg Wire.Kqueue "nq" with
      | Ok `Created -> ()
      | _ -> Alcotest.fail "could not create the NORec queue");
      (* Take the single budget slot the way a parked waiter from
         another session does: reserve before parking. *)
      Alcotest.(check bool) "slot reserved" true
        (Registry.reserve_waiter reg ~limit:limits.Limits.max_waiters);
      Alcotest.(check bool) "budget exhausted for a second waiter" false
        (Registry.reserve_waiter reg ~limit:limits.Limits.max_waiters);
      (* Blocking ops now bounce on BOTH backends' structures — the
         instances cannot jointly exceed the cap. *)
      write_all fd
        (encode [ req (Wire.Blpop ("q", 0)); req (Wire.Blpop ("nq", 0)) ]);
      (match recv_n fd 2 with
      | [ Wire.Error (Wire.Busy, _); Wire.Error (Wire.Busy, _) ] -> ()
      | got ->
          Alcotest.failf "full waiter budget should be BUSY twice, got %s"
            (String.concat " | " (List.map pp_resp got)));
      (* Releasing the slot restores service; the wake hands it back. *)
      Registry.release_waiter reg;
      write_all fd (encode [ req (Wire.Blpop ("nq", 0)) ]);
      Alcotest.(check bool) "waiter admitted after release" true
        (eventually (fun () -> Registry.waiting reg = 1));
      produce reg "nq" "wake";
      Alcotest.check resps_t "woken after the slot freed up"
        [ Wire.Array [ Wire.Bulk "nq"; Wire.Bulk "wake" ] ]
        (recv_n fd 1);
      Alcotest.(check bool) "budget returned on wake" true
        (eventually (fun () -> Registry.waiting reg = 0)))

let test_watch_pushes_notifications () =
  with_session (fun fd reg _ _ ->
      write_all fd
        (encode [ req (Wire.New (Wire.Kmap, "m")); req (Wire.Watch "m") ]);
      Alcotest.check resps_t "watch accepted" [ Wire.ok; Wire.ok ]
        (recv_n fd 2);
      (* A mutation committed by another client pushes a frame. *)
      (match Registry.resolve reg (Wire.Put ("m", 1, "x")) with
      | Ok r -> ignore (r.Registry.run () : Wire.response)
      | Error _ -> Alcotest.fail "resolve PUT");
      Alcotest.check resps_t "push notification arrives" [ Wire.Push "m" ]
        (recv_n fd 1);
      (* Requests are still served while watching, and UNWATCH stops
         the pushes. *)
      write_all fd (encode [ req (Wire.Get ("m", 1)); req (Wire.Unwatch "m") ]);
      Alcotest.check resps_t "served while watching"
        [ Wire.Bulk "x"; Wire.ok ] (recv_n fd 2);
      (match Registry.resolve reg (Wire.Put ("m", 2, "y")) with
      | Ok r -> ignore (r.Registry.run () : Wire.response)
      | Error _ -> Alcotest.fail "resolve PUT");
      write_all fd (encode [ req Wire.Ping ]);
      (* No Push frame precedes the PONG: the subscription is gone. *)
      Alcotest.check resps_t "no push after UNWATCH" [ Wire.pong ]
        (recv_n fd 1))

(* Shutdown must wake parked waiters and answer them — a session
   sleeping in the STM cannot be allowed to sleep through its own
   drain. *)
let test_shutdown_wakes_parked_waiter () =
  with_session (fun fd reg _ (stop, server_fd) ->
      write_all fd (encode [ req (Wire.New (Wire.Kqueue, "q")) ]);
      Alcotest.check resps_t "queue created" [ Wire.ok ] (recv_n fd 1);
      write_all fd (encode [ req (Wire.Blpop ("q", 0)) ]);
      Alcotest.(check bool) "session parked with no timeout" true
        (eventually (fun () -> S.waiting (Registry.stm reg) = 1));
      (* polytmd's drain sequence: stop flag, drain-flag commit (wakes
         the waiter), then the socket nudge. *)
      Atomic.set stop true;
      Registry.set_draining reg;
      (try Unix.shutdown server_fd Unix.SHUTDOWN_RECEIVE with _ -> ());
      Alcotest.check resps_t "parked BLPOP answered Nil on drain"
        [ Wire.Nil ] (recv_n fd 1);
      Alcotest.(check bool) "no waiter survives the drain" true
        (eventually (fun () -> S.waiting (Registry.stm reg) = 0)))

(* ---- sharded server: --shards K behind the same wire protocol ---------- *)

(* Cross-shard MULTI, spanning snapshots, blocking and WATCH against an
   8-shard registry: every reply must be exactly the single-instance
   one — sharding is invisible on the wire. *)
let test_sharded_server_surface () =
  with_session ~shards:8 (fun fd reg _ _ ->
      Alcotest.(check int) "registry routes across 8 shards" 8
        (Registry.shard_count reg);
      write_all fd
        (encode
           [ req (Wire.New (Wire.Kmap, "m")); req (Wire.New (Wire.Kqueue, "q")) ]);
      Alcotest.check resps_t "created" [ Wire.ok; Wire.ok ] (recv_n fd 2);
      (* Point ops hash-route to owner shards. *)
      let n = 32 in
      write_all fd
        (encode
           (List.init n (fun k -> req (Wire.Put ("m", k, "v" ^ string_of_int k)))));
      Alcotest.check resps_t "every put lands fresh on its owner shard"
        (List.init n (fun _ -> Wire.Int 1))
        (recv_n fd n);
      (* Aggregates span shards: SIZE counts them all, SNAPSHOT-ITER
         merges the parts in global key order. *)
      write_all fd
        (encode
           [ req (Wire.Size "m"); req ~hint:Sem.Snapshot (Wire.Snapshot_iter "m") ]);
      Alcotest.check resps_t "spanning aggregates"
        [
          Wire.Int n;
          Wire.Array
            (List.init n (fun k ->
                 Wire.Array [ Wire.Int k; Wire.Bulk ("v" ^ string_of_int k) ]));
        ]
        (recv_n fd 2);
      (* A MULTI batch whose keys live on different shards commits as
         one cross-shard transaction; its effects land together. *)
      write_all fd
        (encode
           [
             req Wire.Multi;
             req (Wire.Put ("m", 100, "hundred"));
             req (Wire.Put ("m", 101, "hundred-one"));
             req (Wire.Del ("m", 0));
             req Wire.Multi_end;
             req (Wire.Size "m");
           ]);
      Alcotest.check resps_t "cross-shard MULTI commits atomically"
        [
          Wire.ok;
          Wire.queued;
          Wire.queued;
          Wire.queued;
          Wire.Array [ Wire.Int 1; Wire.Int 1; Wire.Int 1 ];
          Wire.Int (n + 1);
        ]
        (recv_n fd 6);
      (* A snapshot write inside a spanning MULTI still discards the
         whole batch with a typed error. *)
      write_all fd
        (encode
           [
             req ~hint:Sem.Snapshot Wire.Multi;
             req (Wire.Put ("m", 200, "nope"));
             req (Wire.Put ("m", 201, "nope"));
             req Wire.Multi_end;
             req (Wire.Contains ("m", 200));
           ]);
      (match recv_n fd 5 with
      | [ Wire.Simple "OK"; Wire.Simple "QUEUED"; Wire.Simple "QUEUED";
          Wire.Error (Wire.Sem_violation, _); Wire.Int 0 ] ->
          ()
      | got ->
          Alcotest.failf "snapshot write in spanning MULTI: %s"
            (String.concat " | " (List.map pp_resp got)));
      (* Blocking pops park on the queue's home shard and are woken by
         a commit there. *)
      write_all fd (encode [ req (Wire.Blpop ("q", 0)) ]);
      Alcotest.(check bool) "consumer parked on the home shard" true
        (eventually (fun () -> Registry.waiting reg = 1));
      produce reg "q" "job";
      Alcotest.check resps_t "woken by the producer's commit"
        [ Wire.Array [ Wire.Bulk "q"; Wire.Bulk "job" ] ]
        (recv_n fd 1);
      (* WATCH still observes commits: with K > 1 the dirty mark is
         made after the data commit, and must still arrive. *)
      write_all fd (encode [ req (Wire.Watch "m") ]);
      Alcotest.check resps_t "watch accepted" [ Wire.ok ] (recv_n fd 1);
      (match Registry.resolve reg (Wire.Put ("m", 7, "update")) with
      | Ok r ->
          ignore (r.Registry.run () : Wire.response);
          Option.iter (Registry.touch reg) r.Registry.touched
      | Error _ -> Alcotest.fail "resolve PUT");
      Alcotest.check resps_t "push notification crosses the shard router"
        [ Wire.Push "m" ] (recv_n fd 1))

(* ---- registry creation races (4 connections) ---------------------------- *)

(* First touch: four connections race NEW on the same names, then
   write through whichever instance they resolved.  All writes must
   land in ONE converged structure — a loser writing to an orphaned
   duplicate would simply vanish from the final snapshot. *)
let test_first_touch_creation_race () =
  with_sessions ~conns:4 (fun fds reg ->
      let n = Array.length fds in
      let barrier = Atomic.make 0 in
      let drivers =
        Array.mapi
          (fun i fd ->
            Domain.spawn (fun () ->
                (* all four fire their NEW batch as close together as
                   the scheduler allows *)
                Atomic.incr barrier;
                while Atomic.get barrier < n do
                  Domain.cpu_relax ()
                done;
                write_all fd
                  (encode
                     [
                       req (Wire.New (Wire.Kmap, "x"));
                       req (Wire.New (Wire.Kqueue, "jobs"));
                       req (Wire.Put ("x", i, "conn" ^ string_of_int i));
                       req (Wire.Enq ("jobs", "job" ^ string_of_int i));
                     ]);
                recv_n fd 4))
          fds
      in
      let replies = Array.map Domain.join drivers in
      (* Exactly one connection created each structure; every other
         reply is EXISTS — never an error, never a second instance. *)
      let created name_idx =
        Array.fold_left
          (fun acc rs ->
            match List.nth rs name_idx with
            | Wire.Simple "OK" -> acc + 1
            | Wire.Simple "EXISTS" -> acc
            | r -> Alcotest.failf "NEW race reply: %s" (pp_resp r))
          0 replies
      in
      Alcotest.(check int) "one creator for the map" 1 (created 0);
      Alcotest.(check int) "one creator for the queue" 1 (created 1);
      Array.iteri
        (fun i rs ->
          Alcotest.(check resp_t)
            (Printf.sprintf "conn %d's put landed" i)
            (Wire.Int 1) (List.nth rs 2))
        replies;
      (* All four writes are in the one converged map and queue. *)
      write_all fds.(0)
        (encode
           [
             req (Wire.Size "x");
             req ~hint:Sem.Snapshot (Wire.Snapshot_iter "x");
             req (Wire.Size "jobs");
           ]);
      (match recv_n fds.(0) 3 with
      | [ Wire.Int sx; Wire.Array items; Wire.Int sq ] ->
          Alcotest.(check int) "map holds all four writes" 4 sx;
          Alcotest.(check int) "snapshot sees all four" 4 (List.length items);
          Alcotest.(check int) "queue holds all four jobs" 4 sq
      | got ->
          Alcotest.failf "converged check: %s"
            (String.concat " | " (List.map pp_resp got)));
      ignore reg)

(* ---- misc surface ------------------------------------------------------ *)

let test_kind_mismatch_and_unknown () =
  with_session (fun fd _ _ _ ->
      write_all fd
        (encode
           [
             req (Wire.New (Wire.Kqueue, "q"));
             req (Wire.Get ("q", 1));
             req (Wire.New (Wire.Kmap, "q"));
             req (Wire.Deq "nope");
           ]);
      match recv_n fd 4 with
      | [ Wire.Simple "OK"; Wire.Error (Wire.Bad_op, _);
          Wire.Error (Wire.Bad_op, _); Wire.Error (Wire.No_struct, _) ] ->
          ()
      | got ->
          Alcotest.failf "typed errors expected, got %s"
            (String.concat " | " (List.map pp_resp got)))

(* ---- dual-backend hosting: a NORec structure next to a TL2 one --------- *)

let test_mixed_algo_structures () =
  with_session (fun fd registry _stats _ ->
      (* Pin a NORec set before the session traffic; wire NEW keeps
         creating on the default (TL2) instance. *)
      (match Registry.ensure ~algo:`Norec registry Wire.Kset "nset" with
      | Ok `Created -> ()
      | _ -> Alcotest.fail "could not create the NORec set");
      write_all fd
        (encode
           [
             req (Wire.New (Wire.Kmap, "m"));
             req (Wire.Put ("m", 1, "one"));
             req (Wire.Add ("nset", 7));
             req ~hint:Sem.Snapshot (Wire.Snapshot_iter "nset");
             req (Wire.Get ("m", 1));
           ]);
      Alcotest.check resps_t "ops on both backends"
        [
          Wire.ok;
          Wire.Int 1;
          Wire.Int 1;
          Wire.Array [ Wire.Int 7 ];
          Wire.Bulk "one";
        ]
        (recv_n fd 5);
      Alcotest.(check bool) "entries pinned to their instances" true
        (Registry.algo_of registry "m" = Some `Tl2
        && Registry.algo_of registry "nset" = Some `Norec);
      (* A MULTI confined to the NORec instance commits atomically... *)
      write_all fd
        (encode
           [
             req Wire.Multi;
             req (Wire.Add ("nset", 8));
             req (Wire.Add ("nset", 9));
             req Wire.Multi_end;
           ]);
      Alcotest.check resps_t "NORec-only batch commits"
        [
          Wire.ok;
          Wire.queued;
          Wire.queued;
          Wire.Array [ Wire.Int 1; Wire.Int 1 ];
        ]
        (recv_n fd 4);
      (* ...while a batch spanning both instances cannot be one
         transaction: typed error, nothing executed. *)
      write_all fd
        (encode
           [
             req Wire.Multi;
             req (Wire.Put ("m", 2, "two"));
             req (Wire.Add ("nset", 10));
             req Wire.Multi_end;
             req (Wire.Contains ("nset", 10));
             req (Wire.Get ("m", 2));
           ]);
      match recv_n fd 6 with
      | [
       Wire.Simple "OK";
       Wire.Simple "QUEUED";
       Wire.Simple "QUEUED";
       Wire.Error (Wire.Bad_op, m);
       Wire.Int 0;
       Wire.Nil;
      ] ->
          Alcotest.(check bool)
            (Printf.sprintf "error names both algorithms: %s" m)
            true
            (let has needle =
               let lh = String.length m and ln = String.length needle in
               let rec at i =
                 i + ln <= lh && (String.sub m i ln = needle || at (i + 1))
               in
               at 0
             in
             has "tl2" && has "norec")
      | got ->
          Alcotest.failf "mixed-algo batch: unexpected replies %s"
            (String.concat " | " (List.map pp_resp got)))

(* ---- short-I/O fuzz: the state machine vs pathological scheduling ------ *)

(* The session must be insensitive to how bytes arrive and leave: the
   same pipelined batch, fed one byte at a time into a session whose
   peer drains replies in dribbles through shrunken kernel buffers
   (short writes, EAGAIN on both directions, reads with nothing
   buffered), must produce the exact reply byte stream of a
   well-behaved run.  This drives [Session] directly — no event loop —
   so the poke order is the property's random input. *)

(* The generated batches contain no parking op (BLPOP/BTAKE) and no
   WATCH, so neither helper hook fires. *)
let inline_services =
  { Session.submit = (fun f -> f ()); post = (fun f -> f ()) }

let drive_session ~rng ~pathological batch_bytes =
  let server_fd, client_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  Unix.set_nonblock server_fd;
  Unix.set_nonblock client_fd;
  if pathological then begin
    (* Kernel buffers at their floor: a snapshot reply no longer fits,
       so flushing must survive short writes and EAGAIN tails. *)
    (try Unix.setsockopt_int server_fd Unix.SO_SNDBUF 4096 with _ -> ());
    try Unix.setsockopt_int client_fd Unix.SO_RCVBUF 4096 with _ -> ()
  end;
  let registry = Registry.create () in
  List.iter
    (fun (k, n) ->
      match Registry.ensure registry k n with
      | Ok _ -> ()
      | Error _ -> assert false)
    [ (Wire.Kmap, "m"); (Wire.Kset, "s"); (Wire.Kqueue, "q") ];
  let stats = Session.create_stats () in
  let sess =
    Session.create ~limits:Limits.default ~registry ~stats
      ~services:inline_services server_fd
  in
  let out = Buffer.create 4096 in
  let rbuf = Bytes.create 65536 in
  let len = String.length batch_bytes in
  let sent = ref 0 in
  let input_closed = ref false in
  let send n =
    (match Unix.write_substring client_fd batch_bytes !sent n with
    | w -> sent := !sent + w
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ());
    if !sent = len && not !input_closed then begin
      input_closed := true;
      Unix.shutdown client_fd Unix.SHUTDOWN_SEND
    end
  in
  let drain budget =
    match Unix.read client_fd rbuf 0 (min budget (Bytes.length rbuf)) with
    | 0 -> ()
    | n -> Buffer.add_subbytes out rbuf 0 n
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
  in
  let steps = ref 0 in
  while not (Session.finished sess) do
    incr steps;
    if !steps > 2_000_000 then Alcotest.fail "fuzz driver made no progress";
    if pathological then
      match Random.State.int rng 5 with
      | 0 -> if !sent < len then send (min (1 + Random.State.int rng 3) (len - !sent))
      | 1 -> Session.on_readable sess (* often with nothing buffered *)
      | 2 -> Session.try_flush sess (* often against a full peer buffer *)
      | 3 -> drain (1 + Random.State.int rng 7)
      | _ -> drain 65536
    else begin
      if !sent < len then send (len - !sent);
      Session.on_readable sess;
      Session.try_flush sess;
      drain 65536
    end
  done;
  Session.teardown sess;
  (try Unix.close server_fd with _ -> ());
  (* the flushed tail is buffered in the socket; EOF ends it *)
  let rec tail () =
    match Unix.read client_fd rbuf 0 65536 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes out rbuf 0 n;
        tail ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        tail ()
  in
  tail ();
  (try Unix.close client_fd with _ -> ());
  Buffer.contents out

let fuzz_batch_gen =
  QCheck.Gen.(
    let key = int_range 0 50 in
    let value =
      string_size
        ~gen:(map (fun n -> Char.chr (97 + n)) (int_range 0 25))
        (int_range 0 120)
    in
    let cmd =
      frequency
        [
          (3, map2 (fun k v -> Wire.Put ("m", k, v)) key value);
          (2, map (fun k -> Wire.Get ("m", k)) key);
          (1, map (fun k -> Wire.Del ("m", k)) key);
          (1, map (fun k -> Wire.Contains ("m", k)) key);
          (1, map (fun k -> Wire.Add ("s", k)) key);
          (1, map (fun k -> Wire.Remove ("s", k)) key);
          (1, return (Wire.Size "m"));
          (2, return (Wire.Snapshot_iter "m"));
          (1, map (fun v -> Wire.Enq ("q", v)) value);
          (1, return (Wire.Deq "q"));
          (1, return Wire.Ping);
          (1, return Wire.Multi);
          (1, return Wire.Multi_end);
        ]
    in
    let hint =
      frequency
        [
          (4, return None);
          (1, return (Some Sem.Classic));
          (1, return (Some Sem.Elastic));
          (1, return (Some Sem.Snapshot));
        ]
    in
    (* <= 60 requests: both runs stay under the in-flight admission
       bound however the reads batch up, so BUSY cannot diverge. *)
    list_size (int_range 1 60) (pair hint cmd))

let pp_batch batch =
  String.concat "; "
    (List.map
       (fun (hint, cmd) ->
         let h =
           match hint with None -> "" | Some s -> "~" ^ Sem.to_string s ^ " "
         in
         h ^ Wire.cmd_name cmd)
       batch)

let session_short_io_property =
  QCheck.Test.make ~count:30
    ~name:"short-I/O fuzz round-trips batches byte-identically"
    (QCheck.make fuzz_batch_gen ~print:pp_batch)
    (fun batch ->
      let bytes =
        encode (List.map (fun (hint, cmd) -> { Wire.hint; cmd }) batch)
      in
      let rng = Random.State.make [| Test_seed.seed; Hashtbl.hash batch |] in
      let clean = drive_session ~rng ~pathological:false bytes in
      let fuzzed = drive_session ~rng ~pathological:true bytes in
      if not (String.equal clean fuzzed) then
        QCheck.Test.fail_reportf
          "reply streams diverge: clean %d bytes, fuzzed %d bytes"
          (String.length clean) (String.length fuzzed);
      true)

(* ---- steady-state allocation probe -------------------------------------- *)

(* The reply path must not allocate per-frame strings: replies are
   encoded straight into the session's reusable output buffer and
   written from it.  [Gc.minor_words] counts every minor allocation
   exactly, and it is per-domain, so the session is driven inline on
   the test thread (the driver itself allocates nothing per op).  Two
   budgets pin the property: a lean bound on PING (no transaction),
   and a bound on GETs of a 1 KiB value that a single per-frame copy
   of the reply payload (~128 words) would already blow. *)
let alloc_words_per_op ~warm_rounds ~rounds batch n_replies =
  let server_fd, client_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  Unix.set_nonblock server_fd;
  Unix.set_nonblock client_fd;
  let registry = Registry.create () in
  (match Registry.ensure registry Wire.Kmap "m" with
  | Ok _ -> ()
  | Error _ -> assert false);
  let stats = Session.create_stats () in
  let sess =
    Session.create ~limits:Limits.default ~registry ~stats
      ~services:inline_services server_fd
  in
  let rbuf = Bytes.create 65536 in
  let drain () =
    let rec go () =
      match Unix.read client_fd rbuf 0 65536 with
      | 0 -> ()
      | _ -> go ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
    in
    go ()
  in
  let target = ref 0 in
  let round () =
    (* the batch fits the (previously drained) kernel buffer, so the
       non-blocking write goes through whole *)
    write_all client_fd batch;
    target := !target + n_replies;
    let guard = ref 0 in
    while stats.Session.replies < !target do
      incr guard;
      if !guard > 10_000 then Alcotest.fail "alloc probe made no progress";
      Session.on_readable sess;
      Session.try_flush sess;
      drain ()
    done;
    Session.try_flush sess;
    drain ()
  in
  for _ = 1 to warm_rounds do
    round ()
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    round ()
  done;
  let dw = Gc.minor_words () -. w0 in
  Session.teardown sess;
  (try Unix.close server_fd with _ -> ());
  (try Unix.close client_fd with _ -> ());
  dw /. float_of_int (rounds * n_replies)

let test_steady_state_allocation () =
  let n = 256 in
  let pings = encode (List.init n (fun _ -> req Wire.Ping)) in
  let ping_words = alloc_words_per_op ~warm_rounds:2 ~rounds:4 pings n in
  if ping_words > 64.0 then
    Alcotest.failf "PING path allocates %.1f words/op (budget 64)" ping_words;
  (* seed one 1 KiB value, then hammer GETs of it: the ~1 KiB reply
     payload must stream through the output buffer without being
     copied into any per-frame string *)
  let seed_and_get =
    encode
      (req (Wire.Put ("m", 7, String.make 1024 'x'))
      :: List.init n (fun _ -> req (Wire.Get ("m", 7))))
  in
  let get_words =
    alloc_words_per_op ~warm_rounds:2 ~rounds:4 seed_and_get (n + 1)
  in
  (* measured ~151 words/op of decode + transaction machinery; one
     per-frame copy of the 1 KiB payload alone is ~128 words more *)
  if get_words > 192.0 then
    Alcotest.failf "GET(1KiB) path allocates %.1f words/op (budget 192)"
      get_words

let suite =
  ( "server",
    [
      Alcotest.test_case "pipelined mixed semantics match oracle" `Quick
        (test_pipeline_matches_oracle ~shards:1);
      Alcotest.test_case "same pipeline, 8-shard registry" `Quick
        (test_pipeline_matches_oracle ~shards:8);
      Alcotest.test_case "sharded server surface" `Quick
        test_sharded_server_surface;
      Alcotest.test_case "first-touch creation race converges" `Quick
        test_first_touch_creation_race;
      Alcotest.test_case "MULTI commits atomically" `Quick
        test_multi_commits_atomically;
      Alcotest.test_case "unresolvable MULTI executes nothing" `Quick
        test_multi_unresolvable_executes_nothing;
      Alcotest.test_case "snapshot write discards MULTI batch" `Quick
        test_multi_snapshot_write_discards_batch;
      Alcotest.test_case "BUSY under shrunk in-flight limit" `Quick
        test_busy_under_shrunk_inflight_limit;
      Alcotest.test_case "deadline and budget typed replies" `Quick
        test_deadline_and_budget_replies;
      Alcotest.test_case "DEBUG-ABORT gated by default" `Quick
        test_debug_ops_gated;
      Alcotest.test_case "shutdown drains and releases locks" `Quick
        test_shutdown_drains_and_releases;
      Alcotest.test_case "BLPOP issued before the push is answered" `Quick
        test_blpop_before_push;
      Alcotest.test_case "blocking timeout Nil and typed refusals" `Quick
        test_blocking_timeout_and_refusals;
      Alcotest.test_case "BUSY when the wait table is full" `Quick
        test_blpop_busy_when_wait_table_full;
      Alcotest.test_case "WATCH pushes commit notifications" `Quick
        test_watch_pushes_notifications;
      Alcotest.test_case "shutdown wakes and answers parked waiters" `Quick
        test_shutdown_wakes_parked_waiter;
      Alcotest.test_case "kind mismatch and unknown structure" `Quick
        test_kind_mismatch_and_unknown;
      Alcotest.test_case "NORec structure next to a TL2 one" `Quick
        test_mixed_algo_structures;
      Test_seed.to_alcotest session_short_io_property;
      Alcotest.test_case "steady-state reply path allocation budget" `Quick
        test_steady_state_allocation;
    ] )
