(* Tests for the history-theory library: the checkers are exercised on
   the paper's own examples (Sections 3.2 and 4.2) plus classic
   textbook histories, and the polynomial checkers are cross-validated
   against brute-force search on random histories. *)

open Polytm_history

let x = 0 and y = 1 and z = 2

let r = History.read
let w = History.write

(* --- History basics --------------------------------------------------- *)

let test_txs_and_commit () =
  let h = History.make ~aborted:[ 2 ] [ r 1 x; w 2 y; r 1 y ] in
  Alcotest.(check (list int)) "txs" [ 1; 2 ] (History.txs h);
  Alcotest.(check (list int)) "committed" [ 1 ] (History.committed h);
  Alcotest.(check bool) "1 committed" true (History.is_committed h 1);
  Alcotest.(check bool) "2 aborted" false (History.is_committed h 2);
  Alcotest.(check int) "events of 1" 2 (List.length (History.events_of h 1));
  Alcotest.(check bool) "well formed" true (History.well_formed h)

let test_conflicts () =
  Alcotest.(check bool) "r/w same loc" true (History.conflicts (r 1 x) (w 2 x));
  Alcotest.(check bool) "w/w same loc" true (History.conflicts (w 1 x) (w 2 x));
  Alcotest.(check bool) "r/r no" false (History.conflicts (r 1 x) (r 2 x));
  Alcotest.(check bool) "different locs" false (History.conflicts (w 1 x) (w 2 y));
  Alcotest.(check bool) "same tx" false (History.conflicts (r 1 x) (w 1 x))

let test_precedes_rt () =
  let h = History.make [ r 1 x; r 1 y; w 2 x; r 3 z ] in
  Alcotest.(check bool) "1 before 2" true (History.precedes_rt h 1 2);
  Alcotest.(check bool) "2 before 3" true (History.precedes_rt h 2 3);
  Alcotest.(check bool) "2 not before 1" false (History.precedes_rt h 2 1);
  let h2 = History.make [ r 1 x; w 2 x; r 1 y ] in
  Alcotest.(check bool) "overlapping" false (History.precedes_rt h2 1 2);
  Alcotest.(check bool) "overlapping rev" false (History.precedes_rt h2 2 1)

let test_pp () =
  let h = History.make [ r 1 x; w 2 z ] in
  Alcotest.(check string) "printed" "r(x)_1, w(z)_2"
    (Format.asprintf "%a" History.pp h)

(* --- Serializability --------------------------------------------------- *)

let test_serializable_simple () =
  (* r(x)1 w(x)2 — order 1 < 2 works. *)
  let h = History.make [ r 1 x; w 2 x ] in
  Alcotest.(check bool) "accepted" true (Serializability.accepts h)

let test_not_serializable_cycle () =
  (* 1 reads x before 2 writes it, and 2 reads y before 1 writes it:
     cycle 1 <-> 2. *)
  let h = History.make [ r 1 x; r 2 y; w 2 x; w 1 y ] in
  Alcotest.(check bool) "rejected" false (Serializability.accepts h);
  Alcotest.(check bool) "brute force agrees" false
    (Serializability.accepts_brute_force h)

let test_serializable_ignores_real_time () =
  (* 2 finishes before 3 starts, but serialization order 3 < 1 < 2 is
     still fine for plain serializability. *)
  let h = History.make [ r 1 x; w 2 x; r 3 z; w 1 z ] in
  Alcotest.(check bool) "accepted" true (Serializability.accepts h)

let test_aborted_writes_ignored () =
  (* The aborted writer's conflict must not force an order. *)
  let h = History.make ~aborted:[ 2 ] [ r 1 x; w 2 x; w 2 y; r 1 y ] in
  Alcotest.(check bool) "accepted" true (Serializability.accepts h)

(* --- Opacity ----------------------------------------------------------- *)

let test_opacity_respects_real_time () =
  (* Pt reads x, then P1 writes x (Pt < P1); P1 ends before P2 starts
     (P1 < P2); P2 writes z before Pt reads it (P2 < Pt): cycle under
     opacity, fine under serializability.  This is the shape of the
     four schedules Figure 4 says opacity precludes. *)
  let h = History.make [ r 0 x; w 1 x; w 2 z; r 0 z ] in
  Alcotest.(check bool) "serializable" true (Serializability.accepts h);
  Alcotest.(check bool) "not opaque" false (Opacity.accepts h);
  Alcotest.(check bool) "brute force agrees" false (Opacity.accepts_brute_force h)

let test_opacity_aborted_reads_matter () =
  (* Aborted transaction 3 reads x and y around a committed update of
     both: its two reads cannot belong to one consistent snapshot.
     Serializability of committed transactions alone would accept. *)
  let h =
    History.make ~aborted:[ 3 ]
      [ r 3 x; w 1 x; w 1 y; r 3 y ]
  in
  Alcotest.(check bool) "committed projection serializable" true
    (Serializability.accepts h);
  Alcotest.(check bool) "not opaque" false (Opacity.accepts h);
  Alcotest.(check bool) "brute force agrees" false (Opacity.accepts_brute_force h)

let test_opaque_simple () =
  let h = History.make [ r 1 x; w 2 y; r 1 y ] in
  Alcotest.(check bool) "opaque" true (Opacity.accepts h);
  Alcotest.(check bool) "brute force agrees" true (Opacity.accepts_brute_force h)

(* --- Elastic ----------------------------------------------------------- *)

(* The paper's Section 4.2 history:
   H = r(h)i, r(n)i, r(h)j, r(n)j, w(h)j, r(t)i, w(n)i
   with h=x, n=y, t=z; i=1 parses to insert at the tail while j=2
   inserts at the head. *)
let paper_h =
  History.make [ r 1 x; r 1 y; r 2 x; r 2 y; w 2 x; r 1 z; w 1 y ]

let test_paper_history_not_opaque () =
  Alcotest.(check bool) "not serializable" false (Serializability.accepts paper_h);
  Alcotest.(check bool) "not opaque" false (Opacity.accepts paper_h)

let test_paper_history_elastic_ok () =
  Alcotest.(check bool) "accepted with i elastic" true
    (Elastic.accepts ~elastic:[ 1 ] paper_h)

let test_paper_cut_is_consistent () =
  (* The cut the paper exhibits: s1 = r(h) r(n), s2 = r(t) w(n) — a
     single cut point at position 2. *)
  Alcotest.(check bool) "cut {2} consistent" true
    (Elastic.cut_consistent paper_h 1 [ 2 ]);
  (* Cutting inside the write suffix is not allowed: position 3 splits
     r(t) from w(n), still fine (write last); but a cut at 4 would not
     even exist (only 4 events).  Cut at 1 separates r(h) | r(n)…: the
     boundary pair is (x, y); j writes x between them?  j's w(h) occurs
     after r(n)i, so no. *)
  Alcotest.(check bool) "cut {1} consistent" true
    (Elastic.cut_consistent paper_h 1 [ 1 ])

let test_elastic_rejects_double_modification () =
  (* Between r(y) and r(z) of elastic 1, transaction 2 writes BOTH y
     and z: the boundary condition fails for every cut, and the uncut
     history is not opaque either. *)
  let h =
    History.make [ r 1 y; w 2 y; w 2 z; r 1 z; w 1 y ]
  in
  Alcotest.(check bool) "not opaque" false (Opacity.accepts h);
  Alcotest.(check bool) "elastic rejects" false (Elastic.accepts ~elastic:[ 1 ] h)

let test_elastic_single_modification_ok () =
  (* Only z changes between the two reads: the elastic cut tolerates
     it (this is the linked-list false-conflict of Section 3.2). *)
  let h = History.make [ r 1 y; w 2 z; r 1 z; w 1 y ] in
  Alcotest.(check bool) "elastic accepts" true (Elastic.accepts ~elastic:[ 1 ] h);
  Alcotest.(check bool) "the boundary cut is consistent" true
    (Elastic.cut_consistent h 1 [ 1 ])

let test_elastic_dynamic_commutativity () =
  (* Section 4.2's second example: two concurrent adds,
     r(h)t1, r(n)t2, w(h)t2, w(n)t1 — neither pair commutes statically,
     yet both elastic transactions may commit. *)
  let h = History.make [ r 1 x; r 2 y; w 2 x; w 1 y ] in
  Alcotest.(check bool) "not opaque" false (Opacity.accepts h);
  Alcotest.(check bool) "accepted with both elastic" true
    (Elastic.accepts ~elastic:[ 1; 2 ] h)

let test_elastic_cut_rules () =
  (* Writes must all live in the last piece. *)
  let h = History.make [ r 1 x; w 1 y; r 1 z ] in
  Alcotest.(check bool) "cut after write invalid" false
    (Elastic.cut_consistent h 1 [ 2 ]);
  Alcotest.(check bool) "cut before write valid" true
    (Elastic.cut_consistent h 1 [ 1 ]);
  (* Out-of-range cut positions. *)
  Alcotest.(check bool) "cut 0 invalid" false (Elastic.cut_consistent h 1 [ 0 ]);
  Alcotest.(check bool) "cut 3 invalid" false (Elastic.cut_consistent h 1 [ 3 ])

let test_apply_cut () =
  let h', pieces = Elastic.apply_cut paper_h 1 [ 2 ] ~fresh:10 in
  Alcotest.(check (list int)) "pieces" [ 10; 11 ] pieces;
  Alcotest.(check (list int)) "txs of cut history" [ 2; 10; 11 ]
    (History.txs h');
  Alcotest.(check int) "piece 10 has 2 events" 2
    (List.length (History.events_of h' 10));
  Alcotest.(check int) "piece 11 has 2 events" 2
    (List.length (History.events_of h' 11))

(* --- Figure 4 ---------------------------------------------------------- *)

let test_fig4 () =
  (* The paper reports 4/20 = 20%; the rule it states yields 3/20 = 15%
     (see the note on [Program.fig4] and EXPERIMENTS.md).  We assert
     the verified count. *)
  let f = Program.fig4 () in
  Alcotest.(check int) "20 schedules" 20 f.Program.schedules;
  Alcotest.(check int) "17 accepted" 17 f.Program.accepted_by_opacity;
  Alcotest.(check int) "3 precluded" 3 f.Program.precluded;
  Alcotest.(check (float 1e-9)) "15%" 0.15 f.Program.precluded_ratio

let test_fig4_precluded_are_the_predicted_ones () =
  (* The three precluded interleavings are exactly those satisfying the
     paper's rule r(x)_t < w(x)_1 < w(z)_2 < r(z)_t. *)
  let satisfies_rule h =
    let events = Array.of_list h.History.events in
    let idx p =
      let rec find i =
        if i >= Array.length events then -1
        else if p events.(i) then i
        else find (i + 1)
      in
      find 0
    in
    let rx = idx (fun e -> e = r 0 x)
    and wx = idx (fun e -> e = w 1 x)
    and wz = idx (fun e -> e = w 2 z)
    and rz = idx (fun e -> e = r 0 z) in
    rx < wx && wx < wz && wz < rz
  in
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (Format.asprintf "%a" History.pp h)
        (satisfies_rule h) (not (Opacity.accepts h)))
    (Program.interleavings Program.fig4_programs)

let test_fig4_all_serializable () =
  let a = Program.count_accepted Program.fig4_programs in
  Alcotest.(check int) "all serializable" a.Program.total a.Program.serializable

let test_fig4_elastic_accepts_all () =
  (* With Pt elastic, the four precluded schedules become acceptable:
     each boundary of Pt sees at most one modified location. *)
  let programs =
    [
      Program.elastic 0 [ History.Read x; History.Read y; History.Read z ];
      Program.classic 1 [ History.Write x ];
      Program.classic 2 [ History.Write z ];
    ]
  in
  let a = Program.count_accepted programs in
  Alcotest.(check int) "elastic accepts all 20" 20 a.Program.elastic_opaque

let test_interleaving_count () =
  let programs =
    [
      Program.classic 0 [ History.Read x; History.Read y ];
      Program.classic 1 [ History.Write x; History.Write y ];
    ]
  in
  Alcotest.(check int) "C(4,2)=6" 6
    (List.length (Program.interleavings programs))

(* --- Valued histories (view serializability) ----------------------------- *)

let test_view_vs_conflict_separation () =
  (* The textbook separation: r1(x) w2(x) w1(x) w3(x) is
     view-serializable (T1 T2 T3: T1 reads the initial x, T3 writes
     last) but its conflict graph has the 1<->2 cycle. *)
  let h = History.make [ r 1 x; w 2 x; w 1 x; w 3 x ] in
  Alcotest.(check bool) "not conflict-serializable" false
    (Serializability.accepts h);
  let vh = Valued.annotate h in
  Alcotest.(check bool) "view-serializable (non-strict)" true
    (Valued.view_serializable ~strict:false vh)

let test_view_rejects_inconsistent_reads () =
  (* A read that observes a value no serial order can produce. *)
  let vh =
    Valued.make
      [
        { Valued.tx = 1; action = Valued.Write (x, 5) };
        { Valued.tx = 2; action = Valued.Read (x, 3) };
      ]
  in
  Alcotest.(check bool) "rejected" false
    (Valued.view_serializable ~strict:false vh)

let test_strict_view_fig4_counts () =
  (* The value-based criterion agrees with the conflict-based one on
     the Figure 4 enumeration: 17 of 20 accepted. *)
  let accepted =
    List.length
      (List.filter
         (fun h -> Valued.view_serializable (Valued.annotate h))
         (Program.interleavings Program.fig4_programs))
  in
  Alcotest.(check int) "17 accepted under strict view" 17 accepted

let prop_conflict_implies_view =
  (* Conflict serializability is sufficient for view serializability
     on naturally annotated committed histories. *)
  QCheck.Test.make ~name:"conflict-serializable => view-serializable"
    ~count:200
    (QCheck.make ~print:(Format.asprintf "%a" History.pp)
       QCheck.Gen.(
         map
           (fun events -> History.make events)
           (list_size (int_range 1 6)
              (map2
                 (fun tx (is_write, loc) ->
                   if is_write then w tx loc else r tx loc)
                 (int_range 1 3)
                 (pair bool (int_range 0 2))))))
    (fun h ->
      (not (Opacity.accepts h))
      || Valued.view_serializable (Valued.annotate h))

(* --- Digraph utilities --------------------------------------------------- *)

let test_digraph_cycles () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Alcotest.(check bool) "acyclic chain" true (Digraph.is_acyclic g);
  Digraph.add_edge g 2 0;
  Alcotest.(check bool) "cycle detected" false (Digraph.is_acyclic g)

let test_digraph_topological_orders () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1;
  (* 2 is unconstrained: orders are the 3 positions it can take. *)
  let orders = Digraph.topological_orders g in
  Alcotest.(check int) "three linear extensions" 3 (List.length orders);
  List.iter
    (fun order ->
      let pos v =
        let rec go i = function
          | [] -> -1
          | x :: r -> if x = v then i else go (i + 1) r
        in
        go 0 order
      in
      Alcotest.(check bool) "0 before 1" true (pos 0 < pos 1))
    orders

let test_digraph_dot () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 1;
  let dot = Digraph.to_dot ~names:(fun i -> Printf.sprintf "tx%d" i) g in
  Alcotest.(check bool) "has header" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "has edge" true
    (let rec find i =
       i + 6 <= String.length dot
       && (String.sub dot i 6 = "0 -> 1" || find (i + 1))
     in
     find 0)

(* --- Cross-validation properties --------------------------------------- *)

let history_gen =
  (* Random small histories: up to 3 transactions, 3 locations, 6
     events; last transaction sometimes aborted. *)
  QCheck.Gen.(
    let event_gen =
      map2
        (fun tx (is_write, loc) ->
          if is_write then w tx loc else r tx loc)
        (int_range 1 3)
        (pair bool (int_range 0 2))
    in
    map2
      (fun events abort3 ->
        History.make ~aborted:(if abort3 then [ 3 ] else []) events)
      (list_size (int_range 1 6) event_gen)
      bool)

let arbitrary_history =
  QCheck.make ~print:(Format.asprintf "%a" History.pp) history_gen

let prop_serializability_brute_force_agrees =
  QCheck.Test.make ~name:"serializability: graph = brute force" ~count:300
    arbitrary_history (fun h ->
      Serializability.accepts h = Serializability.accepts_brute_force h)

let prop_opacity_brute_force_agrees =
  QCheck.Test.make ~name:"opacity: graph = brute force" ~count:300
    arbitrary_history (fun h -> Opacity.accepts h = Opacity.accepts_brute_force h)

let prop_opacity_implies_serializability =
  QCheck.Test.make ~name:"opaque => serializable" ~count:300 arbitrary_history
    (fun h -> (not (Opacity.accepts h)) || Serializability.accepts h)

let prop_elastic_weaker_than_opacity =
  QCheck.Test.make ~name:"opaque => elastic-opaque" ~count:150
    arbitrary_history (fun h ->
      (not (Opacity.accepts h)) || Elastic.accepts ~elastic:[ 1 ] h)

let suite =
  ( "history",
    [
      Alcotest.test_case "txs and commit status" `Quick test_txs_and_commit;
      Alcotest.test_case "conflicts" `Quick test_conflicts;
      Alcotest.test_case "real-time precedence" `Quick test_precedes_rt;
      Alcotest.test_case "pretty printing" `Quick test_pp;
      Alcotest.test_case "serializable simple" `Quick test_serializable_simple;
      Alcotest.test_case "non-serializable cycle" `Quick test_not_serializable_cycle;
      Alcotest.test_case "serializability ignores real time" `Quick
        test_serializable_ignores_real_time;
      Alcotest.test_case "aborted writes ignored" `Quick test_aborted_writes_ignored;
      Alcotest.test_case "opacity respects real time" `Quick
        test_opacity_respects_real_time;
      Alcotest.test_case "opacity sees aborted reads" `Quick
        test_opacity_aborted_reads_matter;
      Alcotest.test_case "opaque simple" `Quick test_opaque_simple;
      Alcotest.test_case "paper H not opaque" `Quick test_paper_history_not_opaque;
      Alcotest.test_case "paper H elastic-ok" `Quick test_paper_history_elastic_ok;
      Alcotest.test_case "paper cut consistent" `Quick test_paper_cut_is_consistent;
      Alcotest.test_case "elastic rejects double modification" `Quick
        test_elastic_rejects_double_modification;
      Alcotest.test_case "elastic single modification ok" `Quick
        test_elastic_single_modification_ok;
      Alcotest.test_case "elastic dynamic commutativity" `Quick
        test_elastic_dynamic_commutativity;
      Alcotest.test_case "elastic cut rules" `Quick test_elastic_cut_rules;
      Alcotest.test_case "apply cut" `Quick test_apply_cut;
      Alcotest.test_case "figure 4 numbers" `Quick test_fig4;
      Alcotest.test_case "figure 4 precluded set" `Quick
        test_fig4_precluded_are_the_predicted_ones;
      Alcotest.test_case "figure 4 all serializable" `Quick
        test_fig4_all_serializable;
      Alcotest.test_case "figure 4 elastic accepts all" `Quick
        test_fig4_elastic_accepts_all;
      Alcotest.test_case "interleaving count" `Quick test_interleaving_count;
      Alcotest.test_case "digraph cycles" `Quick test_digraph_cycles;
      Alcotest.test_case "digraph topological orders" `Quick
        test_digraph_topological_orders;
      Alcotest.test_case "digraph dot" `Quick test_digraph_dot;
      Test_seed.to_alcotest prop_serializability_brute_force_agrees;
      Test_seed.to_alcotest prop_opacity_brute_force_agrees;
      Test_seed.to_alcotest prop_opacity_implies_serializability;
      Test_seed.to_alcotest prop_elastic_weaker_than_opacity;
      Alcotest.test_case "view vs conflict separation" `Quick
        test_view_vs_conflict_separation;
      Alcotest.test_case "view rejects inconsistent reads" `Quick
        test_view_rejects_inconsistent_reads;
      Alcotest.test_case "strict view on figure 4" `Quick
        test_strict_view_fig4_counts;
      Test_seed.to_alcotest prop_conflict_implies_view;
    ] )
