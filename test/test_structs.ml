(* Tests for the transactional data structures: sequential
   model-based equivalence (qcheck), concurrent correctness under the
   simulator, atomic-size guarantees, and the composability showcase
   of Section 2.2. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module A = Polytm_structs.Adapters
module AM = Polytm_structs.Adapters.Make (Polytm_runtime.Sim_runtime)
open Polytm

let stm_impls : (string * (unit -> A.set)) list =
  [
    ("stm-list classic", fun () -> AM.stm_list (AM.S.create ()));
    ( "stm-list elastic",
      fun () -> AM.stm_list ~profile:A.elastic_classic_profile (AM.S.create ()) );
    ( "stm-list mixed",
      fun () -> AM.stm_list ~profile:A.mixed_profile (AM.S.create ()) );
    ( "stm-list elastic w8",
      fun () ->
        AM.stm_list ~profile:A.elastic_classic_profile
          (AM.S.create ~elastic_window:8 ()) );
    ("stm-hash classic", fun () -> AM.stm_hash (AM.S.create ()));
    ( "stm-hash mixed",
      fun () -> AM.stm_hash ~profile:A.mixed_profile (AM.S.create ()) );
    ("stm-skiplist classic", fun () -> AM.stm_skiplist (AM.S.create ()));
    ( "stm-skiplist mixed",
      fun () -> AM.stm_skiplist ~profile:A.mixed_profile (AM.S.create ()) );
  ]

(* --- sequential model-based testing ------------------------------------- *)

module ISet = Set.Make (Int)

type op = Add of int | Remove of int | Contains of int | Size

let apply_model (model, results) op =
  match op with
  | Add v -> (ISet.add v model, `B (not (ISet.mem v model)) :: results)
  | Remove v -> (ISet.remove v model, `B (ISet.mem v model) :: results)
  | Contains v -> (model, `B (ISet.mem v model) :: results)
  | Size -> (model, `I (ISet.cardinal model) :: results)

let apply_set (s : A.set) op =
  match op with
  | Add v -> `B (s.A.add v)
  | Remove v -> `B (s.A.remove v)
  | Contains v -> `B (s.A.contains v)
  | Size -> `I (s.A.size ())

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun v -> Add v) (int_range 0 30));
        (3, map (fun v -> Remove v) (int_range 0 30));
        (4, map (fun v -> Contains v) (int_range 0 30));
        (1, return Size);
      ])

let show_op = function
  | Add v -> Printf.sprintf "add %d" v
  | Remove v -> Printf.sprintf "remove %d" v
  | Contains v -> Printf.sprintf "contains %d" v
  | Size -> "size"

let sequential_property (impl_name, make) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s behaves like Set.Make(Int)" impl_name)
    ~count:100
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map show_op ops))
       QCheck.Gen.(list_size (int_range 0 60) op_gen))
    (fun ops ->
      let s = make () in
      let final_model, expected_rev =
        List.fold_left apply_model (ISet.empty, []) ops
      in
      let got_rev =
        List.fold_left (fun acc op -> apply_set s op :: acc) [] ops
      in
      expected_rev = got_rev && s.A.to_list () = ISet.elements final_model)

(* --- concurrent correctness --------------------------------------------- *)

(* Each thread owns a disjoint key range; the final contents must equal
   the union of each thread's sequential net effect. *)
let test_disjoint_threads () =
  List.iter
    (fun (impl_name, make) ->
      for seed = 1 to 5 do
        let s = make () in
        let threads = 3 and per = 8 in
        let (), _ =
          Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
              R.parallel
                (List.init threads (fun t () ->
                     for i = 0 to per - 1 do
                       let key = (i * threads) + t in
                       ignore (s.A.add key);
                       if i mod 3 = 0 then ignore (s.A.remove key)
                     done)))
        in
        let expected =
          List.concat_map
            (fun t ->
              List.filter_map
                (fun i ->
                  if i mod 3 = 0 then None else Some ((i * threads) + t))
                (List.init per Fun.id))
            (List.init threads Fun.id)
          |> List.sort compare
        in
        Alcotest.(check (list int))
          (Printf.sprintf "%s seed %d" impl_name seed)
          expected (s.A.to_list ())
      done)
    stm_impls

(* Threads fight over the same keys; afterwards the structure must be
   internally consistent: size = |to_list| and membership agrees. *)
let test_contended_consistency () =
  List.iter
    (fun (impl_name, make) ->
      for seed = 1 to 5 do
        let s = make () in
        let (), _ =
          Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
              R.parallel
                (List.init 3 (fun t () ->
                     let rng = Polytm_util.Rng.create (seed * 17 + t) in
                     for _ = 1 to 10 do
                       let key = Polytm_util.Rng.int rng 6 in
                       if Polytm_util.Rng.bool rng then ignore (s.A.add key)
                       else ignore (s.A.remove key)
                     done)))
        in
        let l = s.A.to_list () in
        Alcotest.(check int)
          (Printf.sprintf "%s seed %d: size consistent" impl_name seed)
          (List.length l) (s.A.size ());
        Alcotest.(check (list int))
          (Printf.sprintf "%s seed %d: sorted unique" impl_name seed)
          (List.sort_uniq compare l)
          l;
        List.iter
          (fun v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: member %d" impl_name v)
              true (s.A.contains v))
          l
      done)
    stm_impls

(* The atomic-size guarantee: with updaters preserving the total count
   (every step removes one key and adds another in one transaction),
   every concurrent size observation must equal the initial count.
   This is the invariant a hand-over-hand or lock-free size cannot
   give (Section 3.3), and it must hold for ALL profiles, including
   snapshot size. *)
let test_size_is_atomic_under_moves () =
  List.iter
    (fun (profile : A.profile) ->
      for seed = 1 to 6 do
        let stm = AM.S.create () in
        let module LS = AM.List_set in
        let t =
          LS.create ~parse_sem:profile.A.parse_sem ~size_sem:profile.A.size_sem
            stm
        in
        let n = 8 in
        for i = 0 to n - 1 do
          ignore (LS.add t (2 * i))
        done;
        let violations = ref [] in
        let (), _ =
          Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
              let mover =
                Sim.spawn (fun () ->
                    for i = 0 to n - 1 do
                      (* Atomically move 2i -> 2i+1: count invariant. *)
                      AM.S.atomically stm (fun _tx ->
                          ignore (LS.remove t (2 * i));
                          ignore (LS.add t ((2 * i) + 1)))
                    done)
              in
              let observer =
                Sim.spawn (fun () ->
                    for _ = 1 to 6 do
                      let k = LS.size t in
                      if k <> n then violations := k :: !violations
                    done)
              in
              Sim.join mover;
              Sim.join observer)
        in
        Alcotest.(check (list int))
          (Printf.sprintf "%s seed %d: every size saw %d" profile.A.profile_name
             seed n)
          [] !violations
      done)
    [ A.classic_profile; A.elastic_classic_profile; A.mixed_profile ]

(* Composition across hash-set buckets (Section 2.2): moving elements
   between buckets inside one outer transaction keeps the atomic size
   constant for every observer. *)
let test_hash_set_compose_moves () =
  for seed = 1 to 6 do
    let stm = AM.S.create () in
    let module HS = AM.Hash_set in
    let t = HS.create ~size_sem:Semantics.Snapshot ~buckets:8 stm in
    let n = 10 in
    for i = 0 to n - 1 do
      ignore (HS.add t i)
    done;
    let violations = ref [] in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let mover =
            Sim.spawn (fun () ->
                for i = 0 to n - 1 do
                  AM.S.atomically stm (fun _tx ->
                      ignore (HS.remove t i);
                      ignore (HS.add t (i + 100)))
                done)
          in
          let observer =
            Sim.spawn (fun () ->
                for _ = 1 to 5 do
                  let k = HS.size t in
                  if k <> n then violations := k :: !violations
                done)
          in
          Sim.join mover;
          Sim.join observer)
    in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: atomic size across buckets" seed)
      [] !violations
  done

(* The elastic profile must actually exercise cuts on long parses with
   concurrent updates, and commit more parses than classic under the
   same schedule. *)
let test_elastic_profile_cuts () =
  let stm = AM.S.create () in
  let module LS = AM.List_set in
  let t = LS.create ~parse_sem:Semantics.Elastic stm in
  for i = 0 to 63 do
    ignore (LS.add t (2 * i))
  done;
  AM.S.reset_stats stm;
  let (), _ =
    Sim.run (fun () ->
        let parser_thread =
          Sim.spawn (fun () ->
              for _ = 1 to 4 do
                ignore (LS.contains t 120)
              done)
        in
        let updater =
          Sim.spawn (fun () ->
              for i = 0 to 15 do
                ignore (LS.add t ((2 * i) + 1))
              done)
        in
        Sim.join parser_thread;
        Sim.join updater)
  in
  let st = AM.S.stats stm in
  Alcotest.(check bool) "cuts happened" true (st.AM.S.cuts > 0);
  Alcotest.(check int) "no aborts for elastic parses" 0 st.AM.S.window_broken

(* --- queue --------------------------------------------------------------- *)

let test_queue_fifo () =
  let stm = AM.S.create () in
  let q = AM.Queue.create stm in
  List.iter (AM.Queue.enqueue q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "1" (Some 1) (AM.Queue.dequeue_opt q);
  AM.Queue.enqueue q 4;
  Alcotest.(check (option int)) "2" (Some 2) (AM.Queue.dequeue_opt q);
  Alcotest.(check (option int)) "3" (Some 3) (AM.Queue.dequeue_opt q);
  Alcotest.(check (option int)) "4" (Some 4) (AM.Queue.dequeue_opt q);
  Alcotest.(check (option int)) "empty" None (AM.Queue.dequeue_opt q)

let test_queue_dequeue_or () =
  let stm = AM.S.create () in
  let q = AM.Queue.create stm in
  Alcotest.(check int) "fallback" (-1) (AM.Queue.dequeue_or q (-1));
  AM.Queue.enqueue q 5;
  Alcotest.(check int) "element" 5 (AM.Queue.dequeue_or q (-1))

let test_queue_concurrent_producers_consumers () =
  for seed = 1 to 8 do
    let stm = AM.S.create () in
    let q = AM.Queue.create stm in
    let consumed = ref [] in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let producers =
            List.init 2 (fun p ->
                Sim.spawn (fun () ->
                    for i = 1 to 6 do
                      AM.Queue.enqueue q ((p * 100) + i)
                    done))
          in
          let consumer =
            Sim.spawn (fun () ->
                let got = ref 0 in
                while !got < 12 do
                  match AM.Queue.dequeue_opt q with
                  | Some x ->
                      consumed := x :: !consumed;
                      incr got
                  | None -> Sim.yield ()
                done)
          in
          List.iter Sim.join producers;
          Sim.join consumer)
    in
    let consumed = List.rev !consumed in
    Alcotest.(check int) "all consumed" 12 (List.length consumed);
    (* FIFO per producer. *)
    List.iter
      (fun p ->
        let mine = List.filter (fun x -> x / 100 = p) consumed in
        Alcotest.(check (list int))
          (Printf.sprintf "producer %d order" p)
          (List.init 6 (fun i -> (p * 100) + i + 1))
          mine)
      [ 0; 1 ]
  done

let test_queue_transfer_all_atomic () =
  for seed = 1 to 6 do
    let stm = AM.S.create () in
    let src = AM.Queue.create stm and dst = AM.Queue.create stm in
    List.iter (AM.Queue.enqueue src) [ 1; 2; 3; 4; 5 ];
    let observed_splits = ref [] in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let mover = Sim.spawn (fun () -> AM.Queue.transfer_all ~src ~dst) in
          let observer =
            Sim.spawn (fun () ->
                for _ = 1 to 4 do
                  let total =
                    AM.S.atomically stm (fun _ ->
                        AM.Queue.length src + AM.Queue.length dst)
                  in
                  let in_src = AM.Queue.length src in
                  observed_splits := (total, in_src) :: !observed_splits
                done)
          in
          Sim.join mover;
          Sim.join observer)
    in
    List.iter
      (fun (total, in_src) ->
        Alcotest.(check int) "total conserved" 5 total;
        Alcotest.(check bool) "all-or-nothing" true (in_src = 5 || in_src = 0))
      !observed_splits;
    Alcotest.(check (list int)) "order preserved" [ 1; 2; 3; 4; 5 ]
      (AM.Queue.to_list dst)
  done

let test_undersized_elastic_window_rejected () =
  let stm = AM.S.create ~elastic_window:1 () in
  Alcotest.check_raises "window 1 rejected for elastic lists"
    (Invalid_argument
       "Stm_list_set: elastic parses need an elastic_window of at least 2")
    (fun () ->
      ignore (AM.List_set.create ~parse_sem:Semantics.Elastic stm))

let suite =
  ( "structs",
    List.map (fun p -> Test_seed.to_alcotest (sequential_property p))
      stm_impls
    @ [
        Alcotest.test_case "undersized elastic window rejected" `Quick
          test_undersized_elastic_window_rejected;
        Alcotest.test_case "disjoint threads" `Quick test_disjoint_threads;
        Alcotest.test_case "contended consistency" `Quick
          test_contended_consistency;
        Alcotest.test_case "size is atomic under moves" `Quick
          test_size_is_atomic_under_moves;
        Alcotest.test_case "hash-set composition" `Quick
          test_hash_set_compose_moves;
        Alcotest.test_case "elastic profile cuts" `Quick
          test_elastic_profile_cuts;
        Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
        Alcotest.test_case "queue dequeue_or" `Quick test_queue_dequeue_or;
        Alcotest.test_case "queue producers/consumers" `Quick
          test_queue_concurrent_producers_consumers;
        Alcotest.test_case "queue transfer atomic" `Quick
          test_queue_transfer_all_atomic;
      ] )
