(* Tests for serial-irrevocable transactions: run-exactly-once
   semantics (safe side effects), zero aborts under contention, mutual
   exclusion of the serial token, and correct interaction with
   ordinary committing transactions. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
open Polytm

let test_basic_commit () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  let r =
    S.atomically ~irrevocable:true stm (fun tx ->
        S.write tx v 5;
        S.read tx v)
  in
  Alcotest.(check int) "result" 5 r;
  Alcotest.(check int) "one start, one commit" 1 (S.stats stm).S.starts;
  Alcotest.(check int) "committed" 5 (S.atomically stm (fun tx -> S.read tx v))

let test_side_effect_runs_exactly_once () =
  (* Under heavy contention an ordinary transaction re-runs its body;
     an irrevocable one must not.  Count body executions while
     updaters hammer the same variables. *)
  for seed = 1 to 10 do
    let stm = S.create () in
    let v = S.tvar stm 0 in
    let body_runs = ref 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let noisy =
            List.init 3 (fun _ ->
                Sim.spawn (fun () ->
                    for _ = 1 to 6 do
                      S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
                    done))
          in
          let io =
            Sim.spawn (fun () ->
                S.atomically ~irrevocable:true stm (fun tx ->
                    incr body_runs;
                    (* a long parse over contended state *)
                    let a = S.read tx v in
                    Sim.tick 50;
                    let b = S.read tx v in
                    assert (a = b);
                    S.write tx v (b + 100)))
          in
          List.iter Sim.join noisy;
          Sim.join io)
    in
    Alcotest.(check int) (Printf.sprintf "seed %d: body ran once" seed) 1
      !body_runs;
    Alcotest.(check int) "all updates and the +100 applied" 118
      (S.atomically stm (fun tx -> S.read tx v))
  done

let test_reads_frozen_while_token_held () =
  (* Between two reads of an irrevocable transaction nobody can
     commit, so long irrevocable parses always see stable state. *)
  let stm = S.create () in
  let a = S.tvar stm 0 and b = S.tvar stm 0 in
  let observed = ref (0, 0) in
  let (), _ =
    Sim.run (fun () ->
        let io =
          Sim.spawn (fun () ->
              S.atomically ~irrevocable:true stm (fun tx ->
                  let va = S.read tx a in
                  Sim.tick 500;
                  let vb = S.read tx b in
                  observed := (va, vb)))
        in
        let updater =
          Sim.spawn (fun () ->
              Sim.tick 100;
              S.atomically stm (fun tx ->
                  S.write tx a 1;
                  S.write tx b 1))
        in
        Sim.join io;
        Sim.join updater)
  in
  Alcotest.(check (pair int int)) "no commit slipped inside" (0, 0) !observed;
  Alcotest.(check int) "updater committed afterwards" 2
    (S.atomically stm (fun tx -> S.read tx a + S.read tx b))

let test_two_irrevocables_serialize () =
  for seed = 1 to 10 do
    let stm = S.create () in
    let v = S.tvar stm 0 in
    let in_serial = ref 0 and max_in_serial = ref 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 2 (fun _ () ->
                 S.atomically ~irrevocable:true stm (fun tx ->
                     incr in_serial;
                     if !in_serial > !max_in_serial then
                       max_in_serial := !in_serial;
                     Sim.tick 20;
                     S.write tx v (S.read tx v + 1);
                     decr in_serial))))
    in
    Alcotest.(check int) "never two inside" 1 !max_in_serial;
    Alcotest.(check int) "both applied" 2
      (S.atomically stm (fun tx -> S.read tx v))
  done

let test_irrevocable_snapshot_rejected () =
  let stm = S.create () in
  let rejected =
    try
      S.atomically ~sem:Semantics.Snapshot ~irrevocable:true stm (fun _ -> ());
      false
    with S.Invalid_operation _ -> true
  in
  Alcotest.(check bool) "rejected" true rejected

let test_abort_inside_irrevocable_rejected () =
  let stm = S.create () in
  let rejected =
    try S.atomically ~irrevocable:true stm (fun tx -> S.abort tx)
    with S.Invalid_operation _ -> true
  in
  Alcotest.(check bool) "rejected" true rejected;
  (* And the token was released: ordinary work proceeds. *)
  let v = S.tvar stm 0 in
  S.atomically stm (fun tx -> S.write tx v 1);
  Alcotest.(check int) "token released" 1
    (S.atomically stm (fun tx -> S.read tx v))

let test_exception_releases_token () =
  let stm = S.create () in
  (try S.atomically ~irrevocable:true stm (fun _ -> raise Exit)
   with Exit -> ());
  let v = S.tvar stm 0 in
  S.atomically stm (fun tx -> S.write tx v 2);
  Alcotest.(check int) "token released after raise" 2
    (S.atomically stm (fun tx -> S.read tx v))

(* The liveness layers sit above the algorithm policy: under NORec the
   serial fallback must fire on budget exhaustion exactly as under
   TL2, and the token's mutual exclusion must hold even though NORec
   publishes no per-location ownership. *)
let test_norec_serial_fallback () =
  for seed = 1 to 10 do
    let stm = S.create ~algo:`Norec ~max_attempts:2 ~on_exhaustion:`Serialize () in
    let v = S.tvar stm 0 in
    let threads = 4 and ops = 8 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init threads (fun _ () ->
                 for _ = 1 to ops do
                   S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
                 done)))
    in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: every increment committed" seed)
      (threads * ops)
      (S.atomically stm (fun tx -> S.read tx v));
    let st = S.stats stm in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: fallback fired" seed)
      true
      (st.S.budget_exhaustions = 0 || st.S.serial_commits > 0);
    Alcotest.(check int) "no kills under norec" 0 st.S.killed
  done

let test_norec_irrevocable_commit () =
  let stm = S.create ~algo:`Norec () in
  let v = S.tvar stm 0 in
  let r =
    S.atomically ~irrevocable:true stm (fun tx ->
        S.write tx v 5;
        S.read tx v)
  in
  Alcotest.(check int) "result" 5 r;
  Alcotest.(check int) "serial commit counted" 1
    (S.stats stm).S.serial_commits;
  Alcotest.(check int) "committed" 5 (S.atomically stm (fun tx -> S.read tx v))

let test_norec_try_atomically_outcomes () =
  let stm = S.create ~algo:`Norec ~max_attempts:100 () in
  let v = S.tvar stm 0 in
  (match S.try_atomically stm (fun tx -> S.write tx v 7; "ok") with
  | S.Committed s -> Alcotest.(check string) "committed result" "ok" s
  | _ -> Alcotest.fail "expected Committed");
  (match S.try_atomically ~budget:3 stm (fun tx -> S.abort tx) with
  | S.Exhausted { reason = S.Explicit; attempts = 3 } -> ()
  | _ -> Alcotest.fail "expected Exhausted{Explicit; 3}");
  let st = S.stats stm in
  Alcotest.(check int) "exhaustion counted" 1 st.S.budget_exhaustions;
  Alcotest.(check int) "no serial commit" 0 st.S.serial_commits;
  (match S.try_atomically ~deadline:0 stm (fun tx -> S.abort tx) with
  | S.Deadline_exceeded { reason = S.Explicit; attempts = 1 } -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded after one attempt");
  (match S.try_atomically ~deadline:0 stm (fun tx -> S.read tx v) with
  | S.Committed 7 -> ()
  | _ -> Alcotest.fail "expected Committed despite stale deadline")

let suite =
  ( "irrevocable",
    [
      Alcotest.test_case "basic commit" `Quick test_basic_commit;
      Alcotest.test_case "side effect once" `Quick
        test_side_effect_runs_exactly_once;
      Alcotest.test_case "reads frozen" `Quick test_reads_frozen_while_token_held;
      Alcotest.test_case "two irrevocables serialize" `Quick
        test_two_irrevocables_serialize;
      Alcotest.test_case "snapshot rejected" `Quick
        test_irrevocable_snapshot_rejected;
      Alcotest.test_case "abort rejected" `Quick
        test_abort_inside_irrevocable_rejected;
      Alcotest.test_case "exception releases token" `Quick
        test_exception_releases_token;
      Alcotest.test_case "norec serial fallback" `Quick
        test_norec_serial_fallback;
      Alcotest.test_case "norec irrevocable commit" `Quick
        test_norec_irrevocable_commit;
      Alcotest.test_case "norec try_atomically outcomes" `Quick
        test_norec_try_atomically_outcomes;
    ] )
